package mesh

import (
	"fmt"
	"testing"

	"gpunoc/internal/config"
	"gpunoc/internal/device"
)

// BenchmarkEngineTick extends the engine's per-cycle benchmark to the mesh:
// two Volta GPUs saturating the NVLink fabric in both directions (every SM of
// each device streams uncoalesced writes into the other device's window), in
// steady state. The number prices a whole global cycle — both devices' ticks
// plus the remote outbox/inbox hand-off and the fabric links — so it is
// compared against the single-GPU "saturated" entry to see what meshing
// costs. Gated nightly against BENCH_tick.json like the engine's entries.
func BenchmarkEngineTick(b *testing.B) {
	b.Run("mesh-2gpu", func(b *testing.B) {
		cfg := config.Volta()
		cfg.WarpIssueJitter = 0
		cfg.L2ServiceJitter = 0
		m, err := New(cfg, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(m.Close)
		const window = uint64(8192)
		for d := 0; d < 2; d++ {
			peer := 1 - d
			base := DevBase(peer) + 0x200000 + uint64(d)*0x40000
			m.Preload(peer, base, window*uint64(cfg.NumSMs()))
			spec := device.KernelSpec{
				Name:          fmt.Sprintf("bench-cross%d", d),
				Blocks:        cfg.NumSMs(),
				WarpsPerBlock: 2,
				New: func(bk, w int) device.Program {
					return &device.Streamer{
						Base:        base + uint64(bk)*window,
						LineBytes:   cfg.L2LineBytes,
						Write:       true,
						Count:       1 << 30,
						Uncoalesced: true,
						WrapBytes:   window,
					}
				},
			}
			if _, err := m.Launch(d, spec); err != nil {
				b.Fatal(err)
			}
		}
		m.RunFor(10_000) // past dispatch jitter and into steady state
		b.ResetTimer()
		m.RunFor(uint64(b.N))
	})
}
