package snap

import "math/rand"

// CountingSource wraps math/rand's seeded source and counts raw 64-bit
// draws. Because every RNG stream in the simulator is derived from a seed
// that is itself derivable from the configuration, the stream's position
// snapshots as a single number: restore rebuilds the source from the same
// seed and discards the counted draws.
type CountingSource struct {
	src  rand.Source64
	seed int64
	n    uint64
}

// NewCountingSource returns a counting source seeded like
// rand.NewSource(seed).
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

// Int63 draws 63 uniform bits, counting one draw.
func (s *CountingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

// Uint64 draws 64 uniform bits, counting one draw.
func (s *CountingSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

// Seed reseeds the underlying source and resets the draw count.
func (s *CountingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.seed = seed
	s.n = 0
}

// Draws returns the number of raw draws made so far; this is the stream's
// snapshot state.
func (s *CountingSource) Draws() uint64 { return s.n }

// SeekTo advances a freshly seeded source until exactly n draws have been
// made, restoring the stream position recorded by Draws. It reseeds with
// the construction seed first, so it is safe to call on a source that has
// already been used.
func (s *CountingSource) SeekTo(n uint64) {
	s.Seed(s.seed)
	for s.n < n {
		s.src.Uint64()
		s.n++
	}
}
