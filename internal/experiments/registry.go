// Registry of paper artifacts. Every Fig*/Table* regenerator registers
// itself here (from init funcs next to its implementation), so the CLI, the
// benchmark harness, and the parallel Runner all discover experiments from
// one place instead of maintaining hand-written closure tables.
// (The package doc comment lives in experiments.go.)

package experiments

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"

	"gpunoc/internal/config"
)

// Experiment is one registered paper artifact: an id, provenance, and the
// functions that regenerate and validate it.
type Experiment struct {
	// ID is the stable short name used by `ccbench -only` and benchmark
	// sub-names (e.g. "fig10", "table2", "srr-defeat").
	ID string
	// Title is a one-line description of what the artifact shows.
	Title string
	// Section names the paper artifact this regenerates (e.g.
	// "§4.5, Figure 10"), or "beyond the paper" for extra ablations.
	Section string
	// Order positions the experiment in reports; ties break by ID. The
	// registered set uses the paper's presentation order.
	Order int
	// Run regenerates the artifact. It must be a pure function of
	// (cfg, opt): no package-level mutable state, so registered
	// experiments may run concurrently on distinct Config values.
	Run func(cfg *config.Config, opt Options) (*Figure, error)
	// Check, if non-nil, asserts the qualitative shape the paper reports
	// (who wins, by what factor). It receives the configuration the
	// experiment ran with, since some shapes depend on the topology. The
	// Runner applies it when Check mode is on; the benchmark harness
	// always does.
	Check func(cfg *config.Config, f *Figure) error
	// Metrics, if non-nil, extracts the artifact's headline numbers for
	// benchmark reporting (metric name -> value).
	Metrics func(f *Figure) map[string]float64
	// FixedScale is true when Run ignores Options.Scale (the artifact has
	// one natural size, e.g. a configuration table). The default false
	// means the experiment honors `ccbench -scale`.
	FixedScale bool
}

// Registry holds a set of experiments keyed by ID. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu   sync.Mutex
	byID map[string]Experiment
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: map[string]Experiment{}}
}

// Register adds e to the registry. It rejects empty or duplicate IDs and a
// nil Run function.
func (r *Registry) Register(e Experiment) error {
	if e.ID == "" {
		return fmt.Errorf("experiments: register: empty ID")
	}
	if e.Run == nil {
		return fmt.Errorf("experiments: register %q: nil Run", e.ID)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[e.ID]; dup {
		return fmt.Errorf("experiments: register %q: duplicate ID", e.ID)
	}
	r.byID[e.ID] = e
	return nil
}

// MustRegister is Register, panicking on error; it is the form used by the
// package init funcs, where a failure is a programming error.
func (r *Registry) MustRegister(e Experiment) {
	if err := r.Register(e); err != nil {
		panic(err)
	}
}

// Get returns the experiment registered under id.
func (r *Registry) Get(id string) (Experiment, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byID[id]
	return e, ok
}

// Experiments returns every registered experiment sorted by (Order, ID).
// The slice is freshly allocated; callers may reorder it.
func (r *Registry) Experiments() []Experiment {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Experiment, 0, len(r.byID))
	for _, e := range r.byID {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Order != out[j].Order {
			return out[i].Order < out[j].Order
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// IDs returns the registered ids in report order.
func (r *Registry) IDs() []string {
	exps := r.Experiments()
	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	return ids
}

// defaultRegistry holds every experiment in this package; the init funcs in
// ablations.go, channel.go, contention.go, defense.go, and tables.go fill it.
// It is the documented exception to the no-package-state rule: init()
// self-registration writes it exactly once, before main starts, and every
// read afterwards goes through the registry's own mutex.
//
//lint:allow purity registry filled once by init() self-registration, mutex-guarded afterwards
var defaultRegistry = NewRegistry()

// Register adds an experiment to the default registry.
func Register(e Experiment) error { return defaultRegistry.Register(e) }

// MustRegister adds an experiment to the default registry, panicking on a
// duplicate or malformed entry.
func MustRegister(e Experiment) { defaultRegistry.MustRegister(e) }

// Lookup returns the experiment registered under id in the default registry.
func Lookup(id string) (Experiment, bool) { return defaultRegistry.Get(id) }

// All returns every experiment in the default registry in report order.
func All() []Experiment { return defaultRegistry.Experiments() }

// DeriveSeed maps (suiteSeed, id) to the private seed an experiment runs
// with. Deriving per-experiment seeds — rather than sharing the suite seed —
// makes each experiment's output a function of its own id only, so a suite
// renders bit-identically regardless of worker count, completion order, or
// which subset of experiments runs (FNV-1a over the seed bytes and id; the
// result is positive, since 0 means "use the default seed" elsewhere).
func DeriveSeed(suiteSeed int64, id string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(suiteSeed))
	h.Write(b[:])
	io.WriteString(h, id)
	s := int64(h.Sum64() >> 1) // clear the sign bit
	if s == 0 {
		s = 1
	}
	return s
}
