package clockreg

import (
	"testing"
	"testing/quick"

	"gpunoc/internal/config"
)

func mkBank(t *testing.T) (*Bank, config.Config) {
	t.Helper()
	cfg := config.Volta()
	b, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b, cfg
}

func TestNewValidation(t *testing.T) {
	cfg := config.Volta()
	cfg.ClockSkewGPCMax = 2
	cfg.ClockSkewTPCMax = 5 // GPC bound below TPC bound
	if _, err := New(&cfg); err == nil {
		t.Error("inconsistent skew bounds should fail")
	}
	bad := config.Volta()
	bad.NumGPCs = 0
	if _, err := New(&bad); err == nil {
		t.Error("invalid config should fail")
	}
}

// TestTPCSkewBound pins the §4.1 measurement: SMs within a TPC read clocks
// that differ by fewer than 5 cycles.
func TestTPCSkewBound(t *testing.T) {
	b, cfg := mkBank(t)
	for tpc := 0; tpc < cfg.NumTPCs(); tpc++ {
		sms := cfg.SMsOfTPC(tpc)
		skew := b.Skew(sms[0], sms[1])
		if skew > uint64(cfg.ClockSkewTPCMax) {
			t.Errorf("TPC %d intra-TPC skew %d exceeds %d", tpc, skew, cfg.ClockSkewTPCMax)
		}
	}
}

// TestGPCSkewBound: all SMs within one GPC stay within the 15-cycle bound.
func TestGPCSkewBound(t *testing.T) {
	b, cfg := mkBank(t)
	for g := 0; g < cfg.NumGPCs; g++ {
		var sms []int
		for _, tpc := range cfg.TPCsOfGPC(g) {
			sms = append(sms, cfg.SMsOfTPC(tpc)...)
		}
		for i := 0; i < len(sms); i++ {
			for j := i + 1; j < len(sms); j++ {
				if skew := b.Skew(sms[i], sms[j]); skew > uint64(cfg.ClockSkewGPCMax) {
					t.Errorf("GPC %d: SM%d vs SM%d skew %d exceeds %d",
						g, sms[i], sms[j], skew, cfg.ClockSkewGPCMax)
				}
			}
		}
	}
}

// TestCrossGPCSpread: clocks from different GPCs are far apart (the Fig 6
// structure that makes cross-GPC synchronization impossible while intra-GPC
// synchronization works).
func TestCrossGPCSpread(t *testing.T) {
	b, cfg := mkBank(t)
	maxIntra := uint64(0)
	maxCross := uint64(0)
	for a := 0; a < cfg.NumSMs(); a++ {
		for c := a + 1; c < cfg.NumSMs(); c++ {
			s := b.Skew(a, c)
			if cfg.GPCOfSM(a) == cfg.GPCOfSM(c) {
				if s > maxIntra {
					maxIntra = s
				}
			} else if s > maxCross {
				maxCross = s
			}
		}
	}
	if maxCross <= maxIntra*100 {
		t.Errorf("cross-GPC spread (%d) should dwarf intra-GPC skew (%d)", maxCross, maxIntra)
	}
}

func TestReadWraps32Bit(t *testing.T) {
	b, _ := mkBank(t)
	// Near the 32-bit boundary the register wraps but Read64 does not.
	now := uint64(1)<<32 - 1
	r32 := b.Read(0, now)
	r64 := b.Read64(0, now)
	if uint64(r32) == r64 {
		t.Skip("offset happens to keep value below 2^32; wrap not exercised")
	}
	if uint64(r32) != r64&0xFFFFFFFF {
		t.Errorf("Read = %d, want low 32 bits of %d", r32, r64)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := config.Volta()
	b1, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	for sm := 0; sm < cfg.NumSMs(); sm++ {
		if b1.Read(sm, 1000) != b2.Read(sm, 1000) {
			t.Fatal("same seed must give identical clocks")
		}
	}
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	b3, err := New(&cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for sm := 0; sm < cfg.NumSMs(); sm++ {
		if b1.Read(sm, 1000) != b3.Read(sm, 1000) {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different clock offsets")
	}
}

func TestNumSMs(t *testing.T) {
	b, cfg := mkBank(t)
	if b.NumSMs() != cfg.NumSMs() {
		t.Errorf("NumSMs = %d, want %d", b.NumSMs(), cfg.NumSMs())
	}
}

// Property: clocks advance monotonically with the global cycle and exactly
// track elapsed time (the register is a cycle counter, not an oscillator).
func TestQuickClockTracksCycles(t *testing.T) {
	b, cfg := mkBank(t)
	f := func(smRaw uint8, t0 uint32, dt uint16) bool {
		sm := int(smRaw) % cfg.NumSMs()
		a := b.Read64(sm, uint64(t0))
		c := b.Read64(sm, uint64(t0)+uint64(dt))
		return c-a == uint64(dt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: skew is symmetric and zero against itself.
func TestQuickSkewMetric(t *testing.T) {
	b, cfg := mkBank(t)
	f := func(x, y uint8) bool {
		a := int(x) % cfg.NumSMs()
		c := int(y) % cfg.NumSMs()
		return b.Skew(a, c) == b.Skew(c, a) && b.Skew(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestClockFuzzQuantizes: the §6 clock-fuzzing countermeasure strips the low
// bits of every read, degrading synchronization precision.
func TestClockFuzzQuantizes(t *testing.T) {
	cfg := config.Volta()
	cfg.ClockFuzzBits = 9
	b, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Readings advance in 512-cycle epochs on a per-SM grid: consecutive
	// reads within one epoch return the same value.
	v0 := b.Read64(0, 10_000)
	changes := 0
	for now := uint64(10_000); now < 11_024; now++ {
		if v := b.Read64(0, now); v != v0 {
			changes++
			v0 = v
		}
	}
	if changes > 3 {
		t.Errorf("fuzzed clock changed %d times over two epochs, want <=2-3", changes)
	}
	// Different SMs sit on de-correlated grids (phases differ).
	sameGrid := true
	for now := uint64(0); now < 2048; now += 64 {
		if b.Read64(0, now)-b.Read64(1, now) != b.Read64(0, 0)-b.Read64(1, 0) {
			sameGrid = false
		}
	}
	if sameGrid {
		t.Error("fuzz phases identical across SMs; fuzzing would not break sync")
	}
	// Unfuzzed bank still advances cycle by cycle.
	cfg2 := config.Volta()
	b2, err := New(&cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Read64(0, 101)-b2.Read64(0, 100) != 1 {
		t.Error("unfuzzed clock must tick every cycle")
	}
}
