package tbsched

import "gpunoc/internal/snap"

// Snapshot appends the scheduler's mutable state (per-SM resident block
// counts; the visit order is derived from configuration) to the encoder.
func (s *Scheduler) Snapshot(e *snap.Encoder) {
	e.Int(len(s.load))
	for _, n := range s.load {
		e.Int(n)
	}
}

// Restore reads state written by Snapshot into a scheduler built from the
// same configuration.
func (s *Scheduler) Restore(d *snap.Decoder) error {
	if n := d.Int(); d.Err() == nil && n != len(s.load) {
		return snap.Corruptf("snapshot holds %d SM loads, scheduler has %d", n, len(s.load))
	}
	for i := range s.load {
		s.load[i] = d.Int()
	}
	return d.Err()
}
