// Package tbsched implements the thread-block scheduler whose placement
// policy §4.3 of the paper reverse-engineers: blocks are interleaved across
// the GPCs first; within a GPC they are interleaved across TPCs; and only
// after every TPC holds one block does a second block land on a TPC (on its
// other SM). Launching a 40-block sender followed by a 40-block receiver
// therefore co-locates one sender and one receiver on every TPC — the
// placement the multi-TPC covert channel relies on.
package tbsched

import (
	"fmt"

	"gpunoc/internal/config"
)

// Scheduler tracks SM occupancy and assigns blocks in the reverse-engineered
// order.
type Scheduler struct {
	cfg   *config.Config
	order []int // SM visit order for placement
	load  []int // resident blocks per SM
}

// New builds a scheduler for cfg.
func New(cfg *config.Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Scheduler{cfg: cfg, load: make([]int, cfg.NumSMs())}
	s.order = placementOrder(cfg)
	return s, nil
}

// placementOrder lists SMs in assignment order: SM slot 0 of every TPC in
// GPC-interleaved TPC order, then SM slot 1 of every TPC, and so on.
func placementOrder(cfg *config.Config) []int {
	// GPC-interleaved TPC order: round r takes the r-th TPC of each GPC.
	var tpcs []int
	maxLen := 0
	perGPC := make([][]int, cfg.NumGPCs)
	for g := 0; g < cfg.NumGPCs; g++ {
		perGPC[g] = cfg.TPCsOfGPC(g)
		if len(perGPC[g]) > maxLen {
			maxLen = len(perGPC[g])
		}
	}
	for r := 0; r < maxLen; r++ {
		for g := 0; g < cfg.NumGPCs; g++ {
			if r < len(perGPC[g]) {
				tpcs = append(tpcs, perGPC[g][r])
			}
		}
	}
	order := make([]int, 0, cfg.NumSMs())
	for slot := 0; slot < cfg.SMsPerTPC; slot++ {
		for _, t := range tpcs {
			order = append(order, cfg.SMsOfTPC(t)[slot])
		}
	}
	return order
}

// Assign places n blocks and returns the SM id hosting each block, in block
// order. Placement fills the least-loaded SMs in the reverse-engineered
// visit order, so a fresh GPU sees blocks 0..39 land on distinct TPCs.
func (s *Scheduler) Assign(n int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tbsched: non-positive block count %d", n)
	}
	out := make([]int, n)
	for b := 0; b < n; b++ {
		best := -1
		for _, smID := range s.order {
			if best == -1 || s.load[smID] < s.load[best] {
				best = smID
			}
		}
		s.load[best]++
		out[b] = best
	}
	return out, nil
}

// Release removes one resident block from SM smID (called when a block's
// warps all finish).
func (s *Scheduler) Release(smID int) error {
	if smID < 0 || smID >= len(s.load) {
		//lint:allow hotalloc error path, never taken by a well-formed engine
		return fmt.Errorf("tbsched: SM %d out of range", smID)
	}
	if s.load[smID] == 0 {
		//lint:allow hotalloc error path, never taken by a well-formed engine
		return fmt.Errorf("tbsched: SM %d has no resident blocks", smID)
	}
	s.load[smID]--
	return nil
}

// Load reports the number of resident blocks on SM smID.
func (s *Scheduler) Load(smID int) int { return s.load[smID] }

// Order exposes the placement visit order (reverse-engineering tests
// validate it against the paper's observation).
func (s *Scheduler) Order() []int { return append([]int(nil), s.order...) }
