// Package config defines the GPU, NoC, and memory-system parameters used by
// the simulator. The default configuration reproduces Table 1 of the paper
// (a Volta V100-like GPU: 1200 MHz, 40 TPCs with 2 SMs each grouped into 6
// GPCs, 48 L2 slices, 24 memory controllers, a crossbar interconnect with
// 40-byte flits and two subnets).
package config

import (
	"fmt"
	"sync/atomic"

	"gpunoc/internal/probe"
	"gpunoc/internal/telemetry"
)

// ArbPolicy selects the arbitration algorithm used by NoC muxes (§6).
type ArbPolicy int

const (
	// ArbRR is the baseline locally-fair round-robin arbitration.
	ArbRR ArbPolicy = iota
	// ArbCRR is coarse-grain round-robin: the grant is held so that the
	// packets of one warp travel back-to-back (per-warp arbitration).
	ArbCRR
	// ArbSRR is strict round-robin: time slots are statically assigned to
	// inputs even when they are idle (temporal partitioning; the paper's
	// countermeasure).
	ArbSRR
	// ArbAge grants the oldest packet first (globally fair, but it does
	// not mitigate the covert channel, §6).
	ArbAge
	// ArbFixed always prefers the lowest-numbered input; used in tests to
	// demonstrate starvation and as a worst-case reference.
	ArbFixed
)

// String returns the short name used in experiment output.
func (p ArbPolicy) String() string {
	switch p {
	case ArbRR:
		return "RR"
	case ArbCRR:
		return "CRR"
	case ArbSRR:
		return "SRR"
	case ArbAge:
		return "AGE"
	case ArbFixed:
		return "FIXED"
	default:
		return fmt.Sprintf("ArbPolicy(%d)", int(p))
	}
}

// DRAMTiming holds the HBM2 bank timing parameters of Table 1, in memory
// controller cycles.
type DRAMTiming struct {
	TCL  int // CAS latency
	TRP  int // row precharge
	TRC  int // row cycle
	TRAS int // row active time
	TRCD int // RAS-to-CAS delay
	TRRD int // row-to-row activation delay
}

// NoCConfig holds the interconnect parameters. Link rates are expressed as
// rational flits/cycle (Num/Den) so that calibrated non-integer speedups (for
// example the reply-side GPC speedup that yields the 2.14x seven-TPC read
// degradation of Fig 5b) can be modeled exactly.
type NoCConfig struct {
	FlitSizeBytes int // flit width (Table 1: 40 bytes)
	NumVCs        int // virtual channels per link (Table 1: 1)
	Subnets       int // independent request/reply subnets (Table 1: 2)

	// LSUInjectPeriod is the minimum number of cycles between consecutive
	// packet injections by one SM's load/store unit. With one packet every
	// 3 cycles, two reading SMs stay under the TPC channel capacity (reads
	// show no TPC contention, Fig 5a) while write packets (4 flits each)
	// still oversubscribe it and contend 2:1.
	LSUInjectPeriod int

	// Request-path rates in flits/cycle.
	TPCReqRateNum, TPCReqRateDen       int // TPC channel (the 2:1 mux output)
	GPCReqRateNum, GPCReqRateDen       int // GPC channel (the 7:1 mux output)
	XbarPortRateNum, XbarPortRateDen   int // crossbar port toward an L2 slice
	SliceAcceptRateNum, SliceAcceptDen int // L2 slice ingress

	// Reply-path rates in flits/cycle.
	SliceEjectRateNum, SliceEjectRateDen int // L2 slice egress
	XbarRetRateNum, XbarRetRateDen       int // crossbar return port per GPC
	GPCRepRateNum, GPCRepRateDen         int // GPC reply channel (speedup)
	TPCRepRateNum, TPCRepRateDen         int // TPC reply channel

	// Fixed pipeline latencies (cycles) per hop.
	TPCLinkLatency  int
	GPCLinkLatency  int
	XbarLatency     int
	ReplyXbarLat    int
	ReplyGPCLatency int
	ReplyTPCLatency int

	// Arbitration policy applied at every mux.
	Arbitration ArbPolicy
	// CRRHoldLimit bounds how many packets a CRR grant can hold for one
	// warp before the arbiter moves on (guards against livelock).
	CRRHoldLimit int
}

// MeshTopology selects how the GPUs of a multi-device mesh (internal/mesh)
// are wired together by NVLink links.
type MeshTopology int

const (
	// TopoFullMesh wires every ordered device pair with a dedicated
	// point-to-point link (the DGX-style fully-connected fabric for small
	// device counts). This is the default.
	TopoFullMesh MeshTopology = iota
	// TopoRing wires device d to d+1 and d-1 (mod N) only; longer routes
	// forward hop by hop in the shorter direction, ties clockwise.
	TopoRing
	// TopoNVSwitch routes every pair through a central switch: one ingress
	// link per device into the switch and one arbitrated egress link per
	// device out of it, adding SwitchLatency per traversal.
	TopoNVSwitch
)

// String returns the flag/name spelling of the topology.
func (t MeshTopology) String() string {
	switch t {
	case TopoFullMesh:
		return "full"
	case TopoRing:
		return "ring"
	case TopoNVSwitch:
		return "nvswitch"
	default:
		return fmt.Sprintf("MeshTopology(%d)", int(t))
	}
}

// ParseTopology maps the -topology flag spellings back to a MeshTopology.
func ParseTopology(s string) (MeshTopology, error) {
	switch s {
	case "full", "fullmesh", "all-to-all":
		return TopoFullMesh, nil
	case "ring":
		return TopoRing, nil
	case "nvswitch", "switch":
		return TopoNVSwitch, nil
	default:
		return 0, fmt.Errorf("config: unknown mesh topology %q (want full, ring, or nvswitch)", s)
	}
}

// NVLinkConfig parameterizes the inter-GPU links of a mesh. The zero value
// means "use the NVLink3 defaults" — mesh construction normalizes it with
// WithDefaults, so a Config that never touches NVLink still builds a
// realistic fabric.
type NVLinkConfig struct {
	// Topology selects the fabric wiring (full mesh, ring, NVSwitch).
	Topology MeshTopology
	// RateNum/RateDen is the per-direction link bandwidth in flits/cycle.
	// The NVLink3 default models one link of the bundle — 25 GB/s per
	// direction / (40-byte flits x 1.2 GHz) = 25/48 ~ 0.52 flits/cycle —
	// the granularity at which cross-GPU contention is observable: traffic
	// between a device pair rides a fixed link of the bundle, so a flood on
	// that link backs it up even while sibling links stay idle. Set 25/4
	// (6.25 flits/cycle) to model the full 300 GB/s 12-link aggregate
	// instead.
	RateNum, RateDen int
	// HopLatency is the one-way latency of a single NVLink hop in core
	// cycles. NVBleed-style microbenchmarks put remote GPU access around
	// 2-3x local; 180 cycles per direction lands in that band on the
	// Table 1 clock.
	HopLatency int
	// SwitchLatency is the extra latency an NVSwitch traversal adds on top
	// of the two hops (TopoNVSwitch only).
	SwitchLatency int
}

// WithDefaults returns the config with every zero field replaced by the
// NVLink3-derived default.
func (n NVLinkConfig) WithDefaults() NVLinkConfig {
	if n.RateNum == 0 && n.RateDen == 0 {
		n.RateNum, n.RateDen = 25, 48 // one NVLink3 link, ~0.52 flits/cycle
	}
	if n.RateDen == 0 {
		n.RateDen = 1
	}
	if n.HopLatency == 0 {
		n.HopLatency = 180
	}
	if n.SwitchLatency == 0 {
		n.SwitchLatency = 60
	}
	return n
}

// Config is the full simulated-GPU configuration.
type Config struct {
	Name string

	// Core features (Table 1).
	CoreClockMHz int // 1200 MHz
	SIMTWidth    int // 32 lanes per warp
	SMsPerTPC    int // 2
	NumGPCs      int // 6
	// MaxTPCsPerGPC is the number of physical TPC slots per GPC (7 on
	// GV100). Physical slots are interleaved across GPCs: slot s sits at
	// position s/NumGPCs of GPC s%NumGPCs.
	MaxTPCsPerGPC int
	// DisabledTPCSlots lists physical slots fused off for yield. The
	// evaluated V100 disables one TPC in each of two GPCs (§3.3); slots 34
	// and 35 reproduce the Fig 4 logical mapping, where GPC5 holds TPC39
	// instead of TPC35. Logical TPC ids enumerate enabled slots in slot
	// order.
	DisabledTPCSlots []int

	// Caches (Table 1).
	L1SizeBytes      int // 128 KB unified L1/shared memory per SM
	L1LineBytes      int
	L1Ways           int
	NumL2Slices      int // 48
	L2SliceSizeBytes int // 96 KB per slice
	L2LineBytes      int
	L2Ways           int
	L2HitLatency     int // tag+data pipeline latency, cycles
	L2MSHRs          int

	// Memory model (Table 1).
	NumMCs       int // 24
	DRAM         DRAMTiming
	DRAMBanksPME int // banks per memory controller
	MCQueueDepth int

	NoC NoCConfig

	// SM microarchitecture.
	MaxWarpsPerSM   int
	LSUQueueDepth   int // per-SM pending request budget (MSHR-like)
	WarpIssueJitter int // max scheduler start jitter, cycles (noise model)
	L2ServiceJitter int // max per-request L2 service jitter, cycles (noise)
	ClockSkewTPCMax int // |clock() difference| bound within a TPC (<5, §4.1)
	ClockSkewGPCMax int // bound within a GPC (<15, §4.1)
	// ClockFuzzBits implements the clock-fuzzing countermeasure discussed
	// in §6 (TimeWarp-style): clock() reads are quantized to multiples of
	// 2^ClockFuzzBits, degrading the precision of clock-register
	// synchronization. Zero disables fuzzing.
	ClockFuzzBits    int
	ClockGPCSpreadLo uint32
	ClockGPCSpreadHi uint32 // per-GPC base clock offsets span (Fig 6: ~0..5e9 scaled to 32-bit)

	Seed int64 // deterministic RNG seed for all noise sources

	// MeshGPUs is the device count a multi-GPU mesh built from this
	// configuration should have. It is advisory: a standalone engine.New
	// ignores it, and experiments that build meshes treat 0 as "the
	// experiment's default" (typically 2). Negative values fail Validate.
	MeshGPUs int

	// NVLink parameterizes the inter-GPU fabric of a mesh built from this
	// configuration. The zero value selects the NVLink3 defaults (see
	// NVLinkConfig.WithDefaults); a standalone engine never reads it.
	NVLink NVLinkConfig

	// ExhaustiveTick disables the engine's activity-driven scheduling: every
	// SM, NoC link, L2 slice, and memory controller is ticked on every cycle
	// whether or not it holds work, exactly as the original run loop did.
	// Activity-driven runs are cycle-for-cycle identical to exhaustive runs
	// by construction (components are only skipped when ticking them is a
	// no-op), so this flag never influences simulation results — it exists
	// as the reference mode the bit-identity regressions compare against,
	// and is ignored by Validate.
	ExhaustiveTick bool

	// EngineWorkers selects how many workers the engine's sharded parallel
	// tick loop may use. 0 (the default) is GOMAXPROCS-aware automatic
	// selection; 1 forces the classic single-goroutine tick loop; higher
	// values are capped at the topology's shard count (max of NumGPCs and
	// NumMCs). Whatever the setting, the engine clamps to 1 when
	// ExhaustiveTick is set (the reference mode is the single-goroutine
	// loop by definition) or when Probes is non-nil (probe instruments are
	// deliberately lock-free and shared across components). The sharded
	// engine is state-identical to the sequential one at every worker
	// count — see docs/DETERMINISM.md — so like Meter and Probes this knob
	// never influences simulation results and is ignored by Validate.
	EngineWorkers int

	// Meter, when non-nil, accumulates the number of simulated cycles
	// executed by every engine instance built from this configuration
	// (copies of the Config share the pointer). The experiment runner
	// attaches one meter per experiment to attribute simulation work even
	// when experiments run concurrently. It never influences simulation
	// behavior and is ignored by Validate.
	Meter *CycleMeter

	// Probes, when non-nil, is the instrumentation registry every component
	// built from this configuration registers its metrics with (copies of
	// the Config share the pointer, so an experiment that builds several
	// engines accumulates one metric set). nil disables instrumentation
	// entirely — components keep a single nil check on their hot paths and
	// the simulation output is byte-identical either way. Like Meter it
	// never influences simulation behavior and is ignored by Validate.
	Probes *probe.Registry

	// Telemetry, when non-nil, is the windowed-aggregation sampler the
	// engine steps once per simulated cycle (and across idle fast-forward
	// jumps), turning Probes snapshots into the per-window stream
	// internal/telemetry documents. Copies of the Config share the pointer,
	// so the window timeline is continuous across every engine instance
	// built from one configuration. Requires Probes to be set — engine.New
	// rejects a sampler with no registry to aggregate — and therefore
	// inherits the probe contract with the parallel engine (EngineWorkers
	// clamps to 1). Like Probes it never influences simulation behavior and
	// is ignored by Validate.
	Telemetry *telemetry.Sampler
}

// CycleMeter is a concurrency-safe counter of simulated engine cycles. The
// zero value is ready to use; both methods are safe on a nil receiver, so
// unmetered configurations pay only a nil check.
type CycleMeter struct{ n atomic.Uint64 }

// Add records n additional simulated cycles.
func (m *CycleMeter) Add(n uint64) {
	if m != nil {
		m.n.Add(n)
	}
}

// Load returns the cycles recorded so far (0 on a nil meter).
func (m *CycleMeter) Load() uint64 {
	if m == nil {
		return 0
	}
	return m.n.Load()
}

// Volta returns the Table 1 configuration: a Volta V100-like GPU with 40
// enabled TPCs across 6 GPCs, 48 L2 slices, 24 HBM2 memory controllers, and a
// hierarchical crossbar NoC with 40-byte flits and separate request/reply
// subnets. Link rates are calibrated so the contention shapes of §3.4 hold
// (see DESIGN.md §3).
func Volta() Config {
	return Config{
		Name:          "volta-v100",
		CoreClockMHz:  1200,
		SIMTWidth:     32,
		SMsPerTPC:     2,
		NumGPCs:       6,
		MaxTPCsPerGPC: 7,
		// One TPC disabled in each of GPC4 and GPC5 (40 of 42 enabled).
		DisabledTPCSlots: []int{34, 35},

		L1SizeBytes:      128 * 1024,
		L1LineBytes:      32,
		L1Ways:           4,
		NumL2Slices:      48,
		L2SliceSizeBytes: 96 * 1024,
		L2LineBytes:      32,
		L2Ways:           16,
		L2HitLatency:     34,
		L2MSHRs:          64,

		NumMCs:       24,
		DRAM:         DRAMTiming{TCL: 12, TRP: 12, TRC: 40, TRAS: 28, TRCD: 12, TRRD: 3},
		DRAMBanksPME: 16,
		MCQueueDepth: 64,

		NoC: NoCConfig{
			FlitSizeBytes: 40,
			NumVCs:        1,
			Subnets:       2,

			LSUInjectPeriod: 3,
			TPCReqRateNum:   1, TPCReqRateDen: 1,
			GPCReqRateNum: 6, GPCReqRateDen: 1,
			XbarPortRateNum: 2, XbarPortRateDen: 1,
			SliceAcceptRateNum: 1, SliceAcceptDen: 1,

			SliceEjectRateNum: 1, SliceEjectRateDen: 1,
			XbarRetRateNum: 6, XbarRetRateDen: 1,
			// Reply-side GPC speedup: each reading SM demands ~1.33 reply
			// flits/cycle (one 4-flit reply per 3-cycle injection slot), so
			// 7 fully-active TPCs demand ~18.7 flits/cycle; a capacity of
			// 8.72 reproduces the 2.14x degradation at 7 TPCs while <=3
			// TPCs (8.0) stay just under capacity (Fig 5b).
			GPCRepRateNum: 872, GPCRepRateDen: 100,
			// Reply-side TPC speedup 3x: two reading SMs in one TPC
			// (2.67 flits/cycle) do not contend (Fig 5a, read bar ~1x).
			TPCRepRateNum: 3, TPCRepRateDen: 1,

			TPCLinkLatency:  6,
			GPCLinkLatency:  8,
			XbarLatency:     10,
			ReplyXbarLat:    10,
			ReplyGPCLatency: 8,
			ReplyTPCLatency: 6,

			Arbitration:  ArbRR,
			CRRHoldLimit: 32,
		},

		MaxWarpsPerSM:    32,
		LSUQueueDepth:    32,
		WarpIssueJitter:  96,
		L2ServiceJitter:  6,
		ClockSkewTPCMax:  4,
		ClockSkewGPCMax:  14,
		ClockGPCSpreadLo: 0,
		ClockGPCSpreadHi: 5_000_000_000 & 0xFFFFFFFF, // wraps into 32-bit space like the real register

		Seed: 1,
	}
}

// Small returns a reduced configuration (2 GPCs x 2 TPCs x 2 SMs, 8 L2
// slices) that keeps unit and property tests fast while exercising every
// code path of the full topology.
func Small() Config {
	c := Volta()
	c.Name = "small"
	c.NumGPCs = 2
	c.MaxTPCsPerGPC = 2
	c.DisabledTPCSlots = nil
	c.NumL2Slices = 8
	c.NumMCs = 4
	// Rescale the GPC reply speedup to the smaller topology: one fully
	// reading TPC (2.67 flits/cycle) fits under the 3.2 capacity, while
	// the whole 2-TPC GPC (5.33) oversubscribes by ~1.7x, mirroring the
	// Volta calibration where <=3 TPCs are free and 7 contend.
	c.NoC.GPCRepRateNum = 320
	c.NoC.GPCRepRateDen = 100
	return c
}

// NumTPCs returns the number of enabled TPCs (physical slots minus disabled).
func (c *Config) NumTPCs() int {
	return c.NumGPCs*c.MaxTPCsPerGPC - len(c.DisabledTPCSlots)
}

// TPCsPerGPC returns the number of enabled TPCs in each GPC.
func (c *Config) TPCsPerGPC() []int {
	out := make([]int, c.NumGPCs)
	for i := range out {
		out[i] = c.MaxTPCsPerGPC
	}
	for _, s := range c.DisabledTPCSlots {
		if g := s % c.NumGPCs; g >= 0 && g < c.NumGPCs {
			out[g]--
		}
	}
	return out
}

// NumSMs returns the total number of enabled SMs.
func (c *Config) NumSMs() int { return c.NumTPCs() * c.SMsPerTPC }

// TPCOfSM returns the TPC index housing SM id (SM 2i and 2i+1 share TPC i,
// the co-location found by the Fig 2 reverse engineering).
func (c *Config) TPCOfSM(sm int) int { return sm / c.SMsPerTPC }

// SMsOfTPC returns the SM ids inside TPC tpc.
func (c *Config) SMsOfTPC(tpc int) []int {
	out := make([]int, c.SMsPerTPC)
	for i := range out {
		out[i] = tpc*c.SMsPerTPC + i
	}
	return out
}

// GPCOfTPC returns the GPC index of logical TPC tpc under the interleaved
// physical mapping reverse-engineered in §3.3/Fig 4. Logical ids enumerate
// enabled physical slots in slot order, and slot s belongs to GPC
// s mod NumGPCs; with the Volta disabled slots this yields
// GPC5 = {5,11,17,23,29,39}, matching the paper.
func (c *Config) GPCOfTPC(tpc int) int {
	if tpc < 0 || tpc >= c.NumTPCs() {
		return -1
	}
	logical := 0
	for s := 0; s < c.NumGPCs*c.MaxTPCsPerGPC; s++ {
		if c.slotDisabled(s) {
			continue
		}
		if logical == tpc {
			return s % c.NumGPCs
		}
		logical++
	}
	return -1
}

// TPCsOfGPC returns the logical TPC ids assigned to GPC gpc, ascending.
func (c *Config) TPCsOfGPC(gpc int) []int {
	var out []int
	logical := 0
	for s := 0; s < c.NumGPCs*c.MaxTPCsPerGPC; s++ {
		if c.slotDisabled(s) {
			continue
		}
		if s%c.NumGPCs == gpc {
			out = append(out, logical)
		}
		logical++
	}
	return out
}

func (c *Config) slotDisabled(s int) bool {
	for _, d := range c.DisabledTPCSlots {
		if d == s {
			return true
		}
	}
	return false
}

// GPCOfSM returns the GPC housing SM sm.
func (c *Config) GPCOfSM(sm int) int { return c.GPCOfTPC(c.TPCOfSM(sm)) }

// SlicesPerMC returns the number of L2 slices that share one memory
// controller.
func (c *Config) SlicesPerMC() int { return c.NumL2Slices / c.NumMCs }

// CyclesToSeconds converts a core-clock cycle count to seconds.
func (c *Config) CyclesToSeconds(cycles uint64) float64 {
	return float64(cycles) / (float64(c.CoreClockMHz) * 1e6)
}

// BitsPerSecond converts "bits transferred in cycles" to a bitrate.
func (c *Config) BitsPerSecond(bits int, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(bits) / c.CyclesToSeconds(cycles)
}

// Validate checks internal consistency and returns a descriptive error for
// the first violated constraint.
func (c *Config) Validate() error {
	switch {
	case c.CoreClockMHz <= 0:
		return fmt.Errorf("config: non-positive core clock %d", c.CoreClockMHz)
	case c.SIMTWidth <= 0:
		return fmt.Errorf("config: non-positive SIMT width %d", c.SIMTWidth)
	case c.SMsPerTPC <= 0:
		return fmt.Errorf("config: bad SMs-per-TPC count %d", c.SMsPerTPC)
	case c.NumGPCs <= 0:
		return fmt.Errorf("config: bad GPC count %d", c.NumGPCs)
	case c.MaxTPCsPerGPC <= 0:
		return fmt.Errorf("config: bad TPC slots per GPC %d", c.MaxTPCsPerGPC)
	}
	slots := c.NumGPCs * c.MaxTPCsPerGPC
	seen := make(map[int]bool)
	for _, s := range c.DisabledTPCSlots {
		if s < 0 || s >= slots {
			return fmt.Errorf("config: disabled slot %d out of range [0,%d)", s, slots)
		}
		if seen[s] {
			return fmt.Errorf("config: disabled slot %d listed twice", s)
		}
		seen[s] = true
	}
	for g, n := range c.TPCsPerGPC() {
		if n <= 0 {
			return fmt.Errorf("config: GPC %d has %d enabled TPCs", g, n)
		}
	}
	switch {
	case c.NumL2Slices <= 0 || c.L2SliceSizeBytes <= 0 || c.L2LineBytes <= 0 || c.L2Ways <= 0:
		return fmt.Errorf("config: bad L2 geometry")
	case c.L2SliceSizeBytes%(c.L2LineBytes*c.L2Ways) != 0:
		return fmt.Errorf("config: L2 slice size %d not divisible by line*ways", c.L2SliceSizeBytes)
	case c.NumMCs <= 0 || c.NumL2Slices%c.NumMCs != 0:
		return fmt.Errorf("config: %d slices not divisible across %d MCs", c.NumL2Slices, c.NumMCs)
	case c.L2HitLatency < 1:
		return fmt.Errorf("config: L2 hit latency %d < 1", c.L2HitLatency)
	case c.L2MSHRs <= 0:
		return fmt.Errorf("config: bad L2 MSHR count %d", c.L2MSHRs)
	case c.DRAM.TRC < c.DRAM.TRAS:
		return fmt.Errorf("config: tRC %d < tRAS %d", c.DRAM.TRC, c.DRAM.TRAS)
	case c.MaxWarpsPerSM <= 0 || c.LSUQueueDepth <= 0:
		return fmt.Errorf("config: bad SM limits")
	}
	for _, r := range []struct {
		name     string
		num, den int
	}{
		{"TPCReq", c.NoC.TPCReqRateNum, c.NoC.TPCReqRateDen},
		{"GPCReq", c.NoC.GPCReqRateNum, c.NoC.GPCReqRateDen},
		{"XbarPort", c.NoC.XbarPortRateNum, c.NoC.XbarPortRateDen},
		{"SliceAccept", c.NoC.SliceAcceptRateNum, c.NoC.SliceAcceptDen},
		{"SliceEject", c.NoC.SliceEjectRateNum, c.NoC.SliceEjectRateDen},
		{"XbarRet", c.NoC.XbarRetRateNum, c.NoC.XbarRetRateDen},
		{"GPCRep", c.NoC.GPCRepRateNum, c.NoC.GPCRepRateDen},
		{"TPCRep", c.NoC.TPCRepRateNum, c.NoC.TPCRepRateDen},
	} {
		if r.num <= 0 || r.den <= 0 {
			return fmt.Errorf("config: non-positive %s link rate %d/%d", r.name, r.num, r.den)
		}
	}
	if c.NoC.FlitSizeBytes <= 0 {
		return fmt.Errorf("config: bad flit size %d", c.NoC.FlitSizeBytes)
	}
	if c.NoC.LSUInjectPeriod <= 0 {
		return fmt.Errorf("config: bad LSU inject period %d", c.NoC.LSUInjectPeriod)
	}
	if c.NoC.CRRHoldLimit <= 0 {
		return fmt.Errorf("config: bad CRR hold limit %d", c.NoC.CRRHoldLimit)
	}
	if c.MeshGPUs < 0 {
		return fmt.Errorf("config: negative mesh GPU count %d", c.MeshGPUs)
	}
	switch c.NVLink.Topology {
	case TopoFullMesh, TopoRing, TopoNVSwitch:
	default:
		return fmt.Errorf("config: unknown mesh topology %d", int(c.NVLink.Topology))
	}
	if n := c.NVLink; n.RateNum < 0 || n.RateDen < 0 || n.HopLatency < 0 || n.SwitchLatency < 0 {
		return fmt.Errorf("config: negative NVLink parameter (rate %d/%d, hop %d, switch %d)",
			n.RateNum, n.RateDen, n.HopLatency, n.SwitchLatency)
	}
	return nil
}

// Clone returns a deep copy suitable for handing to a second engine
// instance: the shared-pointer fields that would otherwise alias state
// across devices are replaced. Probes and Meter, when set, become fresh
// instances (a registry and meter must have exactly one engine's worth of
// components behind each name for per-device metrics to mean anything);
// Telemetry is dropped to nil, because a sampler aggregates exactly one
// registry and the clone no longer feeds the original's. DisabledTPCSlots
// is copied so the clone's topology cannot be mutated through the parent.
// Plain-value fields (including NVLink and NoC) copy as usual.
func (c *Config) Clone() Config {
	out := *c
	if c.DisabledTPCSlots != nil {
		out.DisabledTPCSlots = append([]int(nil), c.DisabledTPCSlots...)
	}
	if c.Probes != nil {
		out.Probes = probe.NewRegistry()
	}
	if c.Meter != nil {
		out.Meter = &CycleMeter{}
	}
	out.Telemetry = nil
	return out
}

// DeviceSeed derives the per-device RNG seed for device dev of a mesh built
// with base seed. Device 0 keeps the base seed unchanged, so a 1-GPU mesh is
// bit-identical to a standalone engine; higher devices mix the device index
// through FNV-1a so no two devices replay one noise stream (the same scheme
// experiments.DeriveSeed uses for per-experiment seeds).
func DeviceSeed(seed int64, dev int) int64 {
	if dev == 0 {
		return seed
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(seed>>(8*i)) & 0xFF
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= uint64(dev>>(8*i)) & 0xFF
		h *= prime64
	}
	h &^= 1 << 63 // keep the seed non-negative for readability in logs
	if h == 0 {
		h = 1
	}
	return int64(h)
}
