// A full exfiltration scenario per the paper's threat model (§2.2): a trojan
// kernel holding a 128-bit key leaks it to a co-located spy kernel through
// the GPC interconnect channel, framed with a length byte and a parity
// checksum so the spy can verify integrity.
//
//	go run ./examples/exfiltrate
package main

import (
	"fmt"
	"log"

	"gpunoc"
)

func frame(payload []byte) []byte {
	out := []byte{byte(len(payload))}
	out = append(out, payload...)
	var parity byte
	for _, b := range payload {
		parity ^= b
	}
	return append(out, parity)
}

func unframe(raw []byte) ([]byte, error) {
	if len(raw) < 2 {
		return nil, fmt.Errorf("frame too short")
	}
	n := int(raw[0])
	if len(raw) < n+2 {
		return nil, fmt.Errorf("truncated frame (%d < %d)", len(raw), n+2)
	}
	payload := raw[1 : 1+n]
	var parity byte
	for _, b := range payload {
		parity ^= b
	}
	if parity != raw[1+n] {
		return nil, fmt.Errorf("parity mismatch: key corrupted in transit")
	}
	return payload, nil
}

func main() {
	cfg := gpunoc.VoltaConfig()
	key := []byte{
		0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
	}

	// The GPC channel works even when the trojan and spy cannot share a
	// TPC (§4.5). Using all six GPCs in parallel maximizes bandwidth but
	// carries the paper's ~3%% cross-GPC noise floor; for an
	// integrity-critical 128-bit key the attacker instead uses a single
	// GPC channel (near-zero error, ~500 kbps) and verifies the parity
	// frame, retransmitting on corruption.
	framed := frame(key)
	payload, err := gpunoc.BytesToSymbols(framed, 1)
	if err != nil {
		log.Fatal(err)
	}
	var recovered []byte
	for attempt, iters := 1, 4; attempt <= 3; attempt, iters = attempt+1, iters+1 {
		params, err := gpunoc.Calibrate(&cfg, gpunoc.ChannelParams{
			Kind: gpunoc.GPCChannel, Iterations: iters, SyncPeriod: 16,
			Seed: int64(12 * attempt),
		})
		if err != nil {
			log.Fatal(err)
		}
		tr, err := gpunoc.NewGPCTransmission(&cfg, payload, []int{0}, params)
		if err != nil {
			log.Fatal(err)
		}
		res, err := tr.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("attempt %d (%d iterations/bit): %d framed bytes over GPC0, "+
			"%.1f kbps, %.2f%% bit error\n",
			attempt, iters, len(framed), res.BitsPerSecond/1e3, res.ErrorRate*100)
		raw, err := gpunoc.SymbolsToBytes(res.Pairs[0].Received, 1)
		if err != nil {
			log.Fatal(err)
		}
		recovered, err = unframe(raw)
		if err != nil {
			fmt.Printf("  spy-side verification failed (%v); retransmitting\n", err)
			recovered = nil
			continue
		}
		break
	}
	if recovered == nil {
		log.Fatal("exfiltration failed after 3 attempts")
	}
	fmt.Printf("trojan key : %x\n", key)
	fmt.Printf("spy key    : %x\n", recovered)
	if string(recovered) == string(key) {
		fmt.Println("key exfiltrated intact.")
	} else {
		fmt.Println("key corrupted despite parity check (collision).")
	}
}
