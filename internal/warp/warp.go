// Package warp models SIMT warps and the memory-access coalescer. A warp
// executes one memory operation across its (up to 32) active lanes; the
// coalescer merges lane addresses that fall into the same cache line into a
// single memory request. §5 of the paper shows the covert channel depends
// critically on this stage: a fully-coalesced sender emits one packet per
// warp and cannot create reliable contention (error > 50%), while an
// uncoalesced sender emits 32 packets and drives the error rate to ~0.1%.
package warp

import (
	"fmt"
)

// LanesNone marks a MemOp with no active lanes (zero requests).
const LanesNone = -1

// MemOp describes one warp-level memory instruction.
type MemOp struct {
	Write  bool
	Atomic bool
	// Base is the address accessed by lane 0.
	Base uint64
	// StrideBytes separates consecutive lanes' addresses. A stride equal
	// to the cache line size makes every lane touch a distinct line
	// (fully uncoalesced, 32 requests); a stride of 4 bytes packs eight
	// lanes per 32-byte line (mostly coalesced).
	StrideBytes uint64
	// Lanes is the number of active lanes; 0 means all SIMT lanes and
	// LanesNone means no lane is active (the op issues no requests, used
	// by the multi-level channel to signal its zero level).
	Lanes int
	// BypassL1 marks the op as compiled with the -dlcm=cg analogue.
	BypassL1 bool
}

// Coalesce computes the unique line addresses touched by op, in lane order.
// This is the number of NoC request packets the op generates.
func Coalesce(op MemOp, simtWidth, lineBytes int) ([]uint64, error) {
	if simtWidth <= 0 {
		//lint:allow hotalloc error path, config is validated before ticking
		return nil, fmt.Errorf("warp: non-positive SIMT width %d", simtWidth)
	}
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		//lint:allow hotalloc error path, config is validated before ticking
		return nil, fmt.Errorf("warp: line size %d not a positive power of two", lineBytes)
	}
	lanes := op.Lanes
	switch {
	case lanes == LanesNone:
		return nil, nil
	case lanes == 0:
		lanes = simtWidth
	case lanes < 0 || lanes > simtWidth:
		//lint:allow hotalloc error path, ops are validated at construction
		return nil, fmt.Errorf("warp: %d active lanes out of range for SIMT width %d", lanes, simtWidth)
	}
	mask := ^uint64(lineBytes - 1)
	//lint:allow hotalloc per-instruction coalescing scratch; buffer reuse needs an API change
	seen := make(map[uint64]struct{}, lanes)
	var lines []uint64
	for lane := 0; lane < lanes; lane++ {
		la := (op.Base + uint64(lane)*op.StrideBytes) & mask
		if _, ok := seen[la]; !ok {
			seen[la] = struct{}{}
			//lint:allow hotalloc per-instruction result slice; buffer reuse needs an API change
			lines = append(lines, la)
		}
	}
	return lines, nil
}

// UncoalescedOp builds a MemOp whose 32 lanes each touch a distinct cache
// line starting at base — the paper's contention-generating pattern.
func UncoalescedOp(base uint64, write bool, lineBytes int) MemOp {
	return MemOp{Write: write, Base: base, StrideBytes: uint64(lineBytes), BypassL1: true}
}

// CoalescedOp builds a MemOp whose lanes all fall into a single line.
func CoalescedOp(base uint64, write bool) MemOp {
	return MemOp{Write: write, Base: base, StrideBytes: 0, BypassL1: true}
}

// PartialOp builds a MemOp touching exactly uniqueLines distinct lines using
// a subset of lanes — the knob behind the multi-level (2-bit) channel of §5,
// which signals with 0, 8, 16, or 32 unique requests per warp.
func PartialOp(base uint64, write bool, lineBytes, uniqueLines, simtWidth int) (MemOp, error) {
	if uniqueLines < 0 || uniqueLines > simtWidth {
		//lint:allow hotalloc error path, experiment specs are validated up front
		return MemOp{}, fmt.Errorf("warp: uniqueLines %d out of [0, %d]", uniqueLines, simtWidth)
	}
	lanes := uniqueLines
	if lanes == 0 {
		lanes = LanesNone
	}
	return MemOp{
		Write:       write,
		Base:        base,
		StrideBytes: uint64(lineBytes),
		Lanes:       lanes,
		BypassL1:    true,
	}, nil
}

// State tracks one resident warp on an SM.
type State int

const (
	// Ready means the warp can issue its next operation.
	Ready State = iota
	// WaitingMem means a memory operation is outstanding.
	WaitingMem
	// WaitingCycle means the warp is busy-waiting until a target cycle.
	WaitingCycle
	// Finished means the warp's program completed.
	Finished
)

// String names the state.
func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case WaitingMem:
		return "waiting-mem"
	case WaitingCycle:
		return "waiting-cycle"
	case Finished:
		return "finished"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Warp is the scheduling record for one resident warp.
type Warp struct {
	ID    int
	State State

	// Outstanding is the number of memory requests in flight for the
	// current MemOp; the op completes when it reaches zero (warp latency
	// is the latency of the last returning request, §5).
	Outstanding int
	// OpSeq numbers the warp's memory operations for reply matching and
	// CRR grouping.
	OpSeq uint64
	// OpStart is the cycle the current memory op began (first injection).
	OpStart uint64
	// WakeAt is the cycle a WaitingCycle warp becomes ready.
	WakeAt uint64
	// LastLatency is the observed latency of the most recent completed
	// memory op — the receiver's measurement (Fig 7).
	LastLatency uint64
}
