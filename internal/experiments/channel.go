package experiments

import (
	"fmt"

	"gpunoc/internal/config"
	"gpunoc/internal/core"
)

// The covert-channel artifacts (§4–§5) register themselves with the
// experiment registry.
func init() {
	MustRegister(Experiment{
		ID: "fig9", Order: 80,
		Title:   "'0101...' latency trace, slot-only vs slot+synchronization",
		Section: "§4.2, Figure 9",
		Run:     Fig9,
		Check:   func(_ *config.Config, f *Figure) error { return CheckFig9(f, nil) },
	})
	MustRegister(Experiment{
		ID: "fig10", Order: 90,
		Title:   "Bitrate and error rate over the iteration sweep, all channel variants",
		Section: "§4.5, Figure 10",
		Run:     Fig10,
		Check: func(cfg *config.Config, f *Figure) error {
			return CheckFig10(f, cfg.NumTPCs())
		},
		Metrics: func(f *Figure) map[string]float64 {
			m := map[string]float64{}
			if s, ok := f.seriesByName("multi-TPC bitrate (kbps)"); ok && len(s.Y) > 3 {
				m["multi-tpc-Mbps"] = s.Y[3] * 1e3 / 1e6
			}
			if s, ok := f.seriesByName("TPC bitrate (kbps)"); ok && len(s.Y) > 3 {
				m["tpc-kbps"] = s.Y[3]
			}
			if s, ok := f.seriesByName("multi-GPC bitrate (kbps)"); ok && len(s.Y) > 3 {
				m["multi-gpc-Mbps"] = s.Y[3] * 1e3 / 1e6
			}
			return m
		},
	})
	MustRegister(Experiment{
		ID: "fig13", Order: 110,
		Title:   "Error rate across the sender/receiver coalescing combinations",
		Section: "§5, Figure 13",
		Run:     Fig13,
		Check:   func(_ *config.Config, f *Figure) error { return CheckFig13(f) },
	})
	MustRegister(Experiment{
		ID: "fig14", Order: 120,
		Title:   "2-bit multi-level channel trace and bandwidth gain",
		Section: "§5, Figure 14",
		Run:     Fig14,
		Check:   func(_ *config.Config, f *Figure) error { return CheckFig14(f) },
		Metrics: func(f *Figure) map[string]float64 {
			if s, ok := f.seriesByName("bandwidth gain"); ok && len(s.Y) > 0 {
				return map[string]float64{"gain-x": s.Y[0]}
			}
			return nil
		},
	})
	MustRegister(Experiment{
		ID: "mps", Order: 160,
		Title:   "MPS-style launch skew: one-time synchronization overhead only",
		Section: "§2.2 (MPS launch skew)",
		Run:     MPSOverhead,
		Check: func(_ *config.Config, f *Figure) error {
			if len(f.Rows) != 3 {
				return fmt.Errorf("mps: %d rows, want 3", len(f.Rows))
			}
			for _, s := range f.Series {
				if len(s.Y) > 0 && s.Y[0] > 0.1 {
					return fmt.Errorf("mps: %s error rate %.3f", s.Name, s.Y[0])
				}
			}
			return nil
		},
	})
}

// calibratedParams runs the §4.4 empirical threshold determination once per
// (kind, iterations) pair.
func calibratedParams(cfg *config.Config, kind core.Kind, iterations, bitsPerSymbol int, seed int64) (core.Params, error) {
	p := core.Params{
		Kind:          kind,
		Iterations:    iterations,
		SyncPeriod:    16,
		BitsPerSymbol: bitsPerSymbol,
		Seed:          seed,
	}
	return core.Calibrate(cfg, p, 32*bitsPerSymbol)
}

// Fig9 regenerates Figure 9: the receiver's per-slot latency while a
// '0101...' sequence is transmitted, (a) with timing slots only and (b) with
// periodic clock synchronization.
func Fig9(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "fig9",
		Title:  "Receiver timing for a '0101...' sequence, slot-only vs slot+sync",
		XLabel: "bit sequence index",
		YLabel: "mean slot latency (cycles)",
	}
	// The model's busy-wait drift random-walks more slowly than the real
	// GPU's, so the slot-only divergence needs a longer sequence than the
	// paper's 30 bits to become visible.
	bits := opt.pick(120, 240)
	payload := core.AlternatingPayload(bits, 2)
	p, err := calibratedParams(cfg, core.TPCChannel, 2, 1, opt.seed())
	if err != nil {
		return nil, err
	}
	for _, mode := range []struct {
		name string
		sync int
	}{
		{"timing slot only", 0},
		{"slot + local synchronization", 8},
	} {
		pm := p
		pm.SyncPeriod = mode.sync
		tr, err := core.NewTPCTransmission(cfg, payload, []int{0}, pm)
		if err != nil {
			return nil, err
		}
		res, err := tr.Run()
		if err != nil {
			return nil, err
		}
		var xs, ys []float64
		for i, st := range res.Pairs[0].Trace {
			xs = append(xs, float64(i+1))
			ys = append(ys, st.MeanLatency)
		}
		f.addSeries(mode.name, xs, ys)
		half := res.SymbolsSent / 2
		lateErrs := 0
		pair := res.Pairs[0]
		for i := half; i < len(pair.Sent); i++ {
			if i >= len(pair.Received) || pair.Received[i] != pair.Sent[i] {
				lateErrs++
			}
		}
		f.note("%s: error rate %.3f (%.3f over the second half)",
			mode.name, res.ErrorRate, float64(lateErrs)/float64(res.SymbolsSent-half))
	}
	return f, nil
}

// CheckFig9 asserts the Fig 9 contrast: the synchronized run decodes the
// alternating pattern while the slot-only run accumulates errors.
func CheckFig9(f *Figure, sentPattern []core.Symbol) error {
	synced, ok := f.seriesByName("slot + local synchronization")
	if !ok {
		return fmt.Errorf("fig9: missing synchronized series")
	}
	var sum0, sum1 float64
	var n0, n1 int
	for i, y := range synced.Y {
		if i%2 == 0 {
			sum0 += y
			n0++
		} else {
			sum1 += y
			n1++
		}
	}
	if n0 == 0 || n1 == 0 {
		return fmt.Errorf("fig9: empty trace")
	}
	if sum1/float64(n1) <= sum0/float64(n0) {
		return fmt.Errorf("fig9: synchronized '1' slots (%.1f) not slower than '0' slots (%.1f)",
			sum1/float64(n1), sum0/float64(n0))
	}
	return nil
}

// Fig10Point is one operating point of Fig 10.
type Fig10Point struct {
	Iterations int
	Kbps       float64
	ErrorRate  float64
}

// fig10Variant runs one channel variant across the iteration sweep.
func fig10Variant(cfg *config.Config, kind core.Kind, units []int, bitsTotal int, seed int64) ([]Fig10Point, error) {
	var out []Fig10Point
	for iters := 1; iters <= 5; iters++ {
		p, err := calibratedParams(cfg, kind, iters, 1, seed)
		if err != nil {
			return nil, err
		}
		payload := core.AlternatingPayload(bitsTotal, 2)
		var tr *core.Transmission
		switch kind {
		case core.GPCChannel:
			tr, err = core.NewGPCTransmission(cfg, payload, units, p)
		default:
			tr, err = core.NewTPCTransmission(cfg, payload, units, p)
		}
		if err != nil {
			return nil, err
		}
		res, err := tr.Run()
		if err != nil {
			return nil, err
		}
		out = append(out, Fig10Point{
			Iterations: iters,
			Kbps:       res.BitsPerSecond / 1e3,
			ErrorRate:  res.ErrorRate,
		})
	}
	return out, nil
}

// Fig10 regenerates Figure 10: bitrate and error rate versus the number of
// iterations for (a) a single TPC channel, (b) the multi-TPC channel across
// all TPCs, (c) a single GPC channel and (d) the multi-GPC channel.
func Fig10(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "fig10",
		Title:  "Covert channel bitrate and error rate vs iterations",
		XLabel: "iterations (memory ops per bit)",
		YLabel: "kbps / error rate",
	}
	perUnit := opt.pick(48, 200)
	variants := []struct {
		name  string
		kind  core.Kind
		units []int
		bits  int
	}{
		{"TPC", core.TPCChannel, []int{0}, perUnit},
		{"multi-TPC", core.TPCChannel, nil, perUnit * cfg.NumTPCs()},
		{"GPC", core.GPCChannel, []int{0}, perUnit},
		{"multi-GPC", core.GPCChannel, nil, perUnit * cfg.NumGPCs},
	}
	for _, v := range variants {
		points, err := fig10Variant(cfg, v.kind, v.units, v.bits, opt.seed())
		if err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", v.name, err)
		}
		var xs, rate, errs []float64
		for _, p := range points {
			xs = append(xs, float64(p.Iterations))
			rate = append(rate, p.Kbps)
			errs = append(errs, p.ErrorRate)
		}
		f.addSeries(v.name+" bitrate (kbps)", xs, rate)
		f.addSeries(v.name+" error rate", xs, errs)
		f.note("%s at 4 iterations: %.0f kbps, %.3f error", v.name, rate[3], errs[3])
	}
	return f, nil
}

// CheckFig10 asserts the headline shapes: bitrate falls with iterations,
// error falls to near zero by 4-5 iterations, multi-TPC is roughly NumTPCs
// times the single channel, and the GPC channel is slower than the TPC
// channel.
func CheckFig10(f *Figure, numTPCs int) error {
	get := func(name string) ([]float64, error) {
		s, ok := f.seriesByName(name)
		if !ok {
			return nil, fmt.Errorf("fig10: missing series %q", name)
		}
		return s.Y, nil
	}
	tpcRate, err := get("TPC bitrate (kbps)")
	if err != nil {
		return err
	}
	tpcErr, err := get("TPC error rate")
	if err != nil {
		return err
	}
	multiRate, err := get("multi-TPC bitrate (kbps)")
	if err != nil {
		return err
	}
	gpcRate, err := get("GPC bitrate (kbps)")
	if err != nil {
		return err
	}
	for i := 1; i < len(tpcRate); i++ {
		if tpcRate[i] >= tpcRate[i-1] {
			return fmt.Errorf("fig10: TPC bitrate not decreasing with iterations: %v", tpcRate)
		}
	}
	if tpcErr[len(tpcErr)-1] > 0.05 {
		return fmt.Errorf("fig10: TPC error at 5 iterations %.3f, want ~0", tpcErr[len(tpcErr)-1])
	}
	if tpcErr[0] < tpcErr[len(tpcErr)-1] {
		return fmt.Errorf("fig10: error should fall with iterations: %v", tpcErr)
	}
	scale := multiRate[3] / tpcRate[3]
	if scale < float64(numTPCs)*0.6 {
		return fmt.Errorf("fig10: multi-TPC scales only %.1fx over single TPC (want ~%dx)", scale, numTPCs)
	}
	if gpcRate[3] >= tpcRate[3] {
		return fmt.Errorf("fig10: GPC channel (%.0f kbps) should be slower than TPC (%.0f kbps)",
			gpcRate[3], tpcRate[3])
	}
	return nil
}

// Fig13 regenerates Figure 13: the channel error rate across the four
// combinations of coalesced/uncoalesced sender and receiver.
func Fig13(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "fig13",
		Title:  "Impact of memory coalescing on the error rate",
		Header: []string{"sender", "receiver", "error rate"},
	}
	bits := opt.pick(64, 400)
	payload := core.AlternatingPayload(bits, 2)
	// Calibrate on the fully-uncoalesced channel; the other combos reuse
	// the same threshold (a coalesced sender cannot be calibrated at all).
	base, err := calibratedParams(cfg, core.TPCChannel, 4, 1, opt.seed())
	if err != nil {
		return nil, err
	}
	combos := []struct {
		senderCoal, receiverCoal bool
	}{
		{true, true}, {true, false}, {false, true}, {false, false},
	}
	name := func(coal bool) string {
		if coal {
			return "coalesced"
		}
		return "uncoalesced"
	}
	for _, c := range combos {
		p := base
		p.SenderCoalesced = c.senderCoal
		p.ReceiverCoalesced = c.receiverCoal
		tr, err := core.NewTPCTransmission(cfg, payload, []int{0}, p)
		if err != nil {
			return nil, err
		}
		res, err := tr.Run()
		if err != nil {
			return nil, err
		}
		f.Rows = append(f.Rows, []string{
			name(c.senderCoal), name(c.receiverCoal), fmt.Sprintf("%.4f", res.ErrorRate),
		})
		f.addSeries(fmt.Sprintf("sender %s / receiver %s", name(c.senderCoal), name(c.receiverCoal)),
			[]float64{0}, []float64{res.ErrorRate})
	}
	return f, nil
}

// CheckFig13 asserts the Fig 13 shape: a coalesced sender breaks the channel
// (error near 50%), while the fully-uncoalesced pair is near zero.
func CheckFig13(f *Figure) error {
	get := func(name string) (float64, error) {
		s, ok := f.seriesByName(name)
		if !ok {
			return 0, fmt.Errorf("fig13: missing %q", name)
		}
		return s.Y[0], nil
	}
	coalSender, err := get("sender coalesced / receiver uncoalesced")
	if err != nil {
		return err
	}
	bothUn, err := get("sender uncoalesced / receiver uncoalesced")
	if err != nil {
		return err
	}
	unSenderCoalRecv, err := get("sender uncoalesced / receiver coalesced")
	if err != nil {
		return err
	}
	switch {
	case coalSender < 0.25:
		return fmt.Errorf("fig13: coalesced sender still communicates (%.3f error)", coalSender)
	case bothUn > 0.05:
		return fmt.Errorf("fig13: uncoalesced pair error %.3f, want ~0", bothUn)
	case unSenderCoalRecv < bothUn:
		return fmt.Errorf("fig13: coalesced receiver (%.3f) should not beat uncoalesced (%.3f)",
			unSenderCoalRecv, bothUn)
	}
	return nil
}

// Fig14 regenerates Figure 14: the receiver's latency trace for the
// multi-level sequence '010203...' plus the bandwidth comparison against the
// binary channel (§5: ~1.6x at higher error).
func Fig14(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "fig14",
		Title:  "Multi-level (2-bit) channel: latency trace and bandwidth gain",
		XLabel: "bit sequence index",
		YLabel: "mean slot latency (cycles)",
	}
	p2, err := calibratedParams(cfg, core.TPCChannel, 4, 2, opt.seed())
	if err != nil {
		return nil, err
	}
	// '0102030102...' — every other symbol is 0, the rest cycle 1,2,3.
	n := opt.pick(32, 64)
	payload := make([]core.Symbol, n)
	level := 1
	for i := range payload {
		if i%2 == 1 {
			payload[i] = core.Symbol(level)
			level = level%3 + 1
		}
	}
	tr, err := core.NewTPCTransmission(cfg, payload, []int{0}, p2)
	if err != nil {
		return nil, err
	}
	res, err := tr.Run()
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for i, st := range res.Pairs[0].Trace {
		xs = append(xs, float64(i+1))
		ys = append(ys, st.MeanLatency)
	}
	f.addSeries("multi-level latency", xs, ys)
	f.note("multi-level: %.1f kbps at %.3f symbol error (thresholds %v)",
		res.BitsPerSecond/1e3, res.ErrorRate, p2.Thresholds)

	// Binary reference at identical slot parameters.
	p1, err := calibratedParams(cfg, core.TPCChannel, 4, 1, opt.seed())
	if err != nil {
		return nil, err
	}
	trBin, err := core.NewTPCTransmission(cfg, core.AlternatingPayload(n, 2), []int{0}, p1)
	if err != nil {
		return nil, err
	}
	resBin, err := trBin.Run()
	if err != nil {
		return nil, err
	}
	gain := res.BitsPerSecond / resBin.BitsPerSecond
	f.note("bandwidth gain over binary: %.2fx (paper: ~1.6x); binary error %.3f vs multi-level %.3f",
		gain, resBin.ErrorRate, res.ErrorRate)
	f.addSeries("bandwidth gain", []float64{0}, []float64{gain})
	f.addSeries("error rates (binary, multilevel)", []float64{0, 1},
		[]float64{resBin.ErrorRate, res.ErrorRate})
	return f, nil
}

// CheckFig14 asserts the §5 multi-level trade-off: meaningful bandwidth gain
// (>1.2x) at an error rate that may exceed (but not collapse relative to)
// the binary channel.
func CheckFig14(f *Figure) error {
	gain, ok := f.seriesByName("bandwidth gain")
	if !ok {
		return fmt.Errorf("fig14: missing gain series")
	}
	if gain.Y[0] < 1.2 {
		return fmt.Errorf("fig14: multi-level gain %.2fx, want >1.2x", gain.Y[0])
	}
	errs, ok := f.seriesByName("error rates (binary, multilevel)")
	if !ok {
		return fmt.Errorf("fig14: missing error series")
	}
	if errs.Y[1] > 0.5 {
		return fmt.Errorf("fig14: multi-level error %.3f no better than random", errs.Y[1])
	}
	return nil
}

// MPSOverhead quantifies the §2.2 observation: launching the receiver with a
// large cross-process skew (the MPS case) only costs the one-time initial
// synchronization; bitrate and error are otherwise unchanged.
func MPSOverhead(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "mps",
		Title:  "cudaStream vs MPS-style launch skew (one-time sync overhead)",
		Header: []string{"launch skew (cycles)", "error rate", "kbps"},
	}
	p, err := calibratedParams(cfg, core.TPCChannel, 4, 1, opt.seed())
	if err != nil {
		return nil, err
	}
	payload := core.AlternatingPayload(opt.pick(48, 200), 2)
	// MPS co-processes coordinate launches on the CPU, so the device-side
	// skew is bounded well below the initial synchronization window.
	for _, skew := range []uint64{0, 2000, 6000} {
		tr, err := core.NewTPCTransmission(cfg, payload, []int{0}, p)
		if err != nil {
			return nil, err
		}
		g, err := newGPU(cfg)
		if err != nil {
			return nil, err
		}
		res, err := tr.RunOn(g, skew)
		if err != nil {
			return nil, err
		}
		f.Rows = append(f.Rows, []string{
			fmt.Sprintf("%d", skew),
			fmt.Sprintf("%.4f", res.ErrorRate),
			fmt.Sprintf("%.1f", res.BitsPerSecond/1e3),
		})
		f.addSeries(fmt.Sprintf("skew %d", skew), []float64{0, 1},
			[]float64{res.ErrorRate, res.BitsPerSecond / 1e3})
	}
	return f, nil
}
