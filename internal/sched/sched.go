// Package sched provides the activity tracking that lets the engine skip
// provably idle components. Exhaustively ticking all 80 SMs, every NoC link,
// and all 48 L2 slices + 24 memory controllers each cycle wastes almost all
// of the tick loop on idle silicon: the paper's protocols are dominated by
// sparse traffic (a couple of SMs probing while the rest of the chip is
// dark), so the engine instead keeps one ActiveSet per component tier and
// ticks only the members that can do work.
//
// The contract that keeps activity-driven ticking cycle-for-cycle identical
// to exhaustive ticking:
//
//   - A component may be parked only when ticking it is a no-op: no queued
//     or in-flight work, no internal future event (a sleeping warp, a due
//     reply, a pipelined packet). Components expose this as Idle() or a
//     finer-grained quiescence predicate; parking is always conservative.
//   - Every externally visible input edge wakes the component again:
//     link.Enqueue, mem's Slice.Accept, dram's Controller.Enqueue, and the
//     SM's AddWarp/OnReply all fire the waker their container registered.
//   - Iteration order over an ActiveSet is the component index order, which
//     is exactly the order the exhaustive loops used — so the components
//     that do tick observe the same cycle-local sequencing either way.
//
// Wakes are idempotent and may arrive mid-cycle: a component woken by a tier
// that ticks earlier in the same cycle (an SM injecting into its TPC link)
// is ticked later that same cycle, while one woken by a later tier (a slice
// emitting a reply into the return network) first ticks next cycle — again
// matching the exhaustive schedule, where those links were ticked before the
// packet existed.
//
// Under the sharded parallel engine (internal/engine/parallel.go) the same
// tiers are tracked by per-shard ActiveSets: one set per GPC for its SMs and
// links, one per memory-controller group for its slices and crossbar ports.
// Each set is still indexed by the component's global id (member lists pick
// out the shard's slice of the index space), and each is only ever touched
// by the goroutine that owns its shard during that barrier phase — every
// wake edge is rewired at sharding time to the owning shard's set, so an
// individual ActiveSet never needs to be concurrency-safe. The sequential
// engine keeps the original one-set-per-tier layout.
package sched

import "fmt"

// ActiveSet tracks which members of a fixed-size component tier need to be
// ticked. The zero value is unusable; use NewActiveSet. It is not safe for
// concurrent use: the sequential tick loop is single-goroutine, and the
// parallel engine gives each shard its own sets, owned by one goroutine per
// barrier phase — no set is ever shared between concurrent tickers.
type ActiveSet struct {
	active []bool
	n      int
}

// NewActiveSet returns a set over members [0, size), all initially parked.
func NewActiveSet(size int) *ActiveSet {
	if size < 0 {
		panic(fmt.Sprintf("sched: negative active-set size %d", size))
	}
	return &ActiveSet{active: make([]bool, size)}
}

// Wake marks member i active. Waking an already-active member is a no-op,
// so wake edges can fire once per event without guarding.
func (s *ActiveSet) Wake(i int) {
	if !s.active[i] {
		s.active[i] = true
		s.n++
	}
}

// Park marks member i inactive. Parking must only happen when ticking the
// member is a no-op until its next wake edge.
func (s *ActiveSet) Park(i int) {
	if s.active[i] {
		s.active[i] = false
		s.n--
	}
}

// Active reports whether member i is awake.
func (s *ActiveSet) Active(i int) bool { return s.active[i] }

// Len returns the number of awake members.
func (s *ActiveSet) Len() int { return s.n }

// Empty reports whether no member is awake — the whole tier can be skipped.
func (s *ActiveSet) Empty() bool { return s.n == 0 }

// Size returns the tier size.
func (s *ActiveSet) Size() int { return len(s.active) }
