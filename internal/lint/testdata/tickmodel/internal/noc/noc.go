// Fixture: deliberate tick-model violations. Goroutines, channels, selects,
// and locks have no place inside the engine's single-goroutine tick loop.
package noc

import "sync"

// Router carries a lock the tick model forbids.
type Router struct {
	mu sync.Mutex
}

// Spawn starts a goroutine and speaks over a channel.
func Spawn(n int) int {
	ch := make(chan int)
	go func() {
		ch <- n
	}()
	select {
	case v := <-ch:
		return v
	}
}
