package config

import (
	"sync"
	"testing"
)

// TestCycleMeterConcurrentAdd exercises the one sanctioned atomic in the
// simulator: concurrent engine instances (one per experiment worker) share a
// meter pointer, so Add must be safe and lossless under contention. CI runs
// this under -race.
func TestCycleMeterConcurrentAdd(t *testing.T) {
	const goroutines, adds, delta = 8, 1000, 3
	var m CycleMeter
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				m.Add(delta)
			}
		}()
	}
	wg.Wait()
	if got, want := m.Load(), uint64(goroutines*adds*delta); got != want {
		t.Errorf("Load() = %d after concurrent Adds, want %d", got, want)
	}
}

// TestCycleMeterNil pins the documented nil-receiver contract: unmetered
// configurations pay only a nil check.
func TestCycleMeterNil(t *testing.T) {
	var m *CycleMeter
	m.Add(5) // must not panic
	if got := m.Load(); got != 0 {
		t.Errorf("nil meter Load() = %d, want 0", got)
	}
}

// TestCycleMeterZeroValue pins that the zero value is ready to use.
func TestCycleMeterZeroValue(t *testing.T) {
	var m CycleMeter
	if got := m.Load(); got != 0 {
		t.Errorf("zero meter Load() = %d, want 0", got)
	}
	m.Add(7)
	if got := m.Load(); got != 7 {
		t.Errorf("Load() = %d after Add(7), want 7", got)
	}
}
