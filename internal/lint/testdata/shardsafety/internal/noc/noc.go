// Package noc is the shardsafety fixture's fabric: a Network with owned
// per-GPC collections and the xbox/rbox hand-off boxes, containing both the
// sanctioned shapes (which must stay silent) and deliberate violations.
package noc

import "gpunoc/internal/packet"

// Network is the fixture fabric.
type Network struct {
	reqGPC []int
	sh     *shardState
}

type shardState struct {
	xbox [][]int
	rbox [][]int
}

// DrainReplies is sanctioned: it may loop plainly over the boxes owned by
// gpc, draining every source shard.
func (n *Network) DrainReplies(gpc int) {
	for m := range n.sh.rbox {
		n.sh.rbox[m][gpc] = 0
	}
}

// TickGPCShard ticks gpc's slice of the fabric. The derived index is clean;
// the literal index, the un-sanctioned hand-off touch, and the coordinator
// field write are findings.
func (n *Network) TickGPCShard(now uint64, gpc int) {
	n.reqGPC[gpc] = int(now)
	n.reqGPC[0]++
	n.sh.xbox[gpc][0] = 5
	n.sh = nil
}

// TickOther receives its index from a call site that passes a constant, so
// the parameter is not shard-derived and the indexing inside is a finding.
func (n *Network) TickOther(g int) {
	n.reqGPC[g] = 3
}

// Route indexes by packet fields: a packet belongs to its owner shard, so
// this is clean.
func (n *Network) Route(now uint64, p *packet.Packet) {
	n.reqGPC[p.Slice] = 2
}
