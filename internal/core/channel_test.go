package core

import (
	"testing"
	"testing/quick"

	"gpunoc/internal/config"
	"gpunoc/internal/engine"
)

// fastCfg shrinks the GPU so channel integration tests stay quick while
// keeping the full hierarchy (2 GPCs x 2 TPCs x 2 SMs).
func fastCfg() config.Config {
	return config.Small()
}

func calibrated(t *testing.T, cfg *config.Config, p Params) Params {
	t.Helper()
	cal, err := Calibrate(cfg, p, 24)
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	return cal
}

func TestNewTPCTransmissionValidation(t *testing.T) {
	cfg := fastCfg()
	p := Params{Kind: TPCChannel}
	if _, err := NewTPCTransmission(&cfg, nil, nil, p); err == nil {
		t.Error("empty payload should fail")
	}
	if _, err := NewTPCTransmission(&cfg, AlternatingPayload(4, 2), []int{99}, p); err == nil {
		t.Error("out-of-range TPC should fail")
	}
	if _, err := NewTPCTransmission(&cfg, AlternatingPayload(4, 2), []int{0, 0}, p); err == nil {
		t.Error("duplicate TPC should fail")
	}
	bad := p
	bad.Iterations = -1
	if _, err := NewTPCTransmission(&cfg, AlternatingPayload(4, 2), nil, bad); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestNewGPCTransmissionValidation(t *testing.T) {
	cfg := fastCfg()
	p := Params{Kind: GPCChannel}
	if _, err := NewGPCTransmission(&cfg, nil, nil, p); err == nil {
		t.Error("empty payload should fail")
	}
	if _, err := NewGPCTransmission(&cfg, AlternatingPayload(4, 2), []int{9}, p); err == nil {
		t.Error("out-of-range GPC should fail")
	}
	if _, err := NewGPCTransmission(&cfg, AlternatingPayload(4, 2), []int{1, 1}, p); err == nil {
		t.Error("duplicate GPC should fail")
	}
}

func TestSplitPayload(t *testing.T) {
	p := AlternatingPayload(10, 2)
	chunks := splitPayload(p, 3)
	if len(chunks) != 3 {
		t.Fatalf("%d chunks", len(chunks))
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	if total != 10 {
		t.Errorf("chunks cover %d symbols", total)
	}
	if len(chunks[0]) != 4 || len(chunks[1]) != 3 || len(chunks[2]) != 3 {
		t.Errorf("chunk sizes %d/%d/%d", len(chunks[0]), len(chunks[1]), len(chunks[2]))
	}
}

// TestTPCChannelEndToEnd transmits a real byte payload over one TPC pair and
// expects near-perfect recovery at 4 iterations (Fig 10a: near-zero error).
func TestTPCChannelEndToEnd(t *testing.T) {
	cfg := fastCfg()
	p := calibrated(t, &cfg, Params{Kind: TPCChannel, Iterations: 4, SyncPeriod: 16, Seed: 11})
	payload, err := BytesToSymbols([]byte("covert!"), 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTPCTransmission(&cfg, payload, []int{0}, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SymbolsSent != len(payload) {
		t.Errorf("sent %d symbols, want %d", res.SymbolsSent, len(payload))
	}
	if res.ErrorRate > 0.05 {
		t.Errorf("error rate %.3f too high for 4 iterations", res.ErrorRate)
	}
	if res.BitsPerSecond < 100e3 {
		t.Errorf("bandwidth %.0f bps implausibly low", res.BitsPerSecond)
	}
	if len(res.Pairs[0].Trace) != len(payload) {
		t.Errorf("trace has %d slots", len(res.Pairs[0].Trace))
	}
}

// TestMultiTPCScalesBandwidth: using all TPCs multiplies throughput without
// destroying the error rate (Fig 10b).
func TestMultiTPCScalesBandwidth(t *testing.T) {
	cfg := fastCfg()
	p := calibrated(t, &cfg, Params{Kind: TPCChannel, Iterations: 4, SyncPeriod: 16, Seed: 11})

	single, err := NewTPCTransmission(&cfg, AlternatingPayload(32, 2), []int{0}, p)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := single.Run()
	if err != nil {
		t.Fatal(err)
	}
	multi, err := NewTPCTransmission(&cfg, AlternatingPayload(32*cfg.NumTPCs(), 2), nil, p)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := multi.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rm.Pairs) != cfg.NumTPCs() {
		t.Fatalf("multi-TPC used %d pairs", len(rm.Pairs))
	}
	scale := rm.BitsPerSecond / rs.BitsPerSecond
	if scale < float64(cfg.NumTPCs())*0.7 {
		t.Errorf("multi-TPC scaled only %.1fx over single (want ~%dx)", scale, cfg.NumTPCs())
	}
	if rm.ErrorRate > 0.12 {
		t.Errorf("multi-TPC error rate %.3f too high", rm.ErrorRate)
	}
}

// TestGPCChannelEndToEnd: the read-based GPC channel also carries data
// (Fig 10c).
func TestGPCChannelEndToEnd(t *testing.T) {
	cfg := fastCfg()
	p := calibrated(t, &cfg, Params{Kind: GPCChannel, Iterations: 4, SyncPeriod: 16, Seed: 11})
	tr, err := NewGPCTransmission(&cfg, AlternatingPayload(32, 2), []int{0}, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRate > 0.10 {
		t.Errorf("GPC error rate %.3f too high", res.ErrorRate)
	}
}

// TestMoreIterationsFewerErrors pins the Fig 10 trade-off direction: going
// from 1 iteration to 4 cannot increase the error rate (on aggregate) and
// strictly lowers the bitrate.
func TestMoreIterationsFewerErrors(t *testing.T) {
	cfg := fastCfg()
	run := func(iters int) Result {
		p := calibrated(t, &cfg, Params{Kind: TPCChannel, Iterations: iters, SyncPeriod: 16, Seed: 3})
		tr, err := NewTPCTransmission(&cfg, AlternatingPayload(96, 2), []int{0}, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tr.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lo := run(1)
	hi := run(4)
	if hi.ErrorRate > lo.ErrorRate+0.02 {
		t.Errorf("error rate rose with iterations: %.3f -> %.3f", lo.ErrorRate, hi.ErrorRate)
	}
	if hi.BitsPerSecond >= lo.BitsPerSecond {
		t.Errorf("bitrate did not fall with iterations: %.0f -> %.0f", lo.BitsPerSecond, hi.BitsPerSecond)
	}
}

// TestCoalescedSenderBreaksChannel reproduces Fig 13's headline: with a
// fully-coalesced sender the channel collapses toward coin-flipping.
func TestCoalescedSenderBreaksChannel(t *testing.T) {
	cfg := fastCfg()
	p, err := Params{Kind: TPCChannel, Iterations: 4, SyncPeriod: 16, Seed: 5,
		SenderCoalesced: true, Threshold: 200}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTPCTransmission(&cfg, AlternatingPayload(64, 2), []int{0}, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRate < 0.25 {
		t.Errorf("coalesced sender still communicates (error %.3f); Fig 13 expects >50%%", res.ErrorRate)
	}
}

// TestNoResyncAccumulatesErrors reproduces the Fig 9(a)/(b) contrast: with
// periodic synchronization disabled, a long transmission degrades relative
// to the synchronized one.
func TestNoResyncAccumulatesErrors(t *testing.T) {
	cfg := fastCfg()
	base := calibrated(t, &cfg, Params{Kind: TPCChannel, Iterations: 2, SyncPeriod: 8, Seed: 9})
	run := func(syncPeriod int) float64 {
		p := base
		p.SyncPeriod = syncPeriod
		tr, err := NewTPCTransmission(&cfg, AlternatingPayload(160, 2), []int{0}, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tr.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.ErrorRate
	}
	withSync := run(8)
	noSync := run(0)
	if noSync < withSync {
		t.Errorf("no-resync error %.3f should be >= synced %.3f", noSync, withSync)
	}
}

// TestMultiLevelChannel runs the 2-bit channel of Fig 14 and checks the
// bandwidth gain over binary at equal slot length.
func TestMultiLevelChannel(t *testing.T) {
	cfg := fastCfg()
	p := Params{Kind: TPCChannel, Iterations: 4, SyncPeriod: 16, Seed: 13, BitsPerSymbol: 2}
	cal, err := Calibrate(&cfg, p, 48)
	if err != nil {
		t.Fatalf("multi-level calibration: %v", err)
	}
	if len(cal.Thresholds) != 3 {
		t.Fatalf("thresholds = %v", cal.Thresholds)
	}
	tr, err := NewTPCTransmission(&cfg, AlternatingPayload(64, 4), []int{0}, cal)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BitsSent != 128 {
		t.Errorf("BitsSent = %d, want 128 (2 bits per symbol)", res.BitsSent)
	}
	// The paper reports higher error alongside ~1.6x bandwidth; accept a
	// moderate error but require better-than-random symbol recovery.
	if res.ErrorRate > 0.5 {
		t.Errorf("multi-level error rate %.3f no better than random", res.ErrorRate)
	}
}

// TestLaunchSkewTolerated: an MPS-style launch skew only costs the one-time
// initial synchronization (§2.2).
func TestLaunchSkewTolerated(t *testing.T) {
	cfg := fastCfg()
	p := calibrated(t, &cfg, Params{Kind: TPCChannel, Iterations: 4, SyncPeriod: 16, Seed: 17})
	tr, err := NewTPCTransmission(&cfg, AlternatingPayload(32, 2), []int{0}, p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := newGPUForTest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.RunOn(g, 5000) // well within the 32768 init window
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRate > 0.08 {
		t.Errorf("launch skew broke the channel: error %.3f", res.ErrorRate)
	}
}

// TestCalibrateRejectsDeadChannel: calibrating a channel whose sender cannot
// create contention (coalesced) fails with a no-separation error.
func TestCalibrateRejectsDeadChannel(t *testing.T) {
	cfg := fastCfg()
	p := Params{Kind: TPCChannel, Iterations: 2, SyncPeriod: 8, Seed: 21, SenderCoalesced: true}
	if _, err := Calibrate(&cfg, p, 16); err == nil {
		t.Error("calibration of a coalesced sender should find no separation")
	}
}

// Property: transmissions are deterministic given identical seeds.
func TestQuickTransmissionDeterministic(t *testing.T) {
	cfg := fastCfg()
	f := func(seedRaw uint8) bool {
		p := Params{Kind: TPCChannel, Iterations: 2, SyncPeriod: 8,
			Seed: int64(seedRaw) + 1, Threshold: 205}
		run := func() Result {
			tr, err := NewTPCTransmission(&cfg, AlternatingPayload(24, 2), []int{0}, p)
			if err != nil {
				return Result{}
			}
			res, err := tr.Run()
			if err != nil {
				return Result{}
			}
			return res
		}
		a, b := run(), run()
		return a.SymbolsSent == 24 && a.SymbolErrors == b.SymbolErrors && a.Cycles == b.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

// newGPUForTest builds a GPU for RunOn tests.
func newGPUForTest(cfg config.Config) (*engine.GPU, error) {
	return engine.New(cfg)
}

// Property: random byte payloads round-trip through the single-TPC channel
// at 4 iterations with at most a stray bit flip.
func TestQuickRandomPayloadRoundTrip(t *testing.T) {
	cfg := fastCfg()
	p := calibrated(t, &cfg, Params{Kind: TPCChannel, Iterations: 4, SyncPeriod: 16, Seed: 23})
	f := func(data [3]byte) bool {
		payload, err := BytesToSymbols(data[:], 1)
		if err != nil {
			return false
		}
		tr, err := NewTPCTransmission(&cfg, payload, []int{0}, p)
		if err != nil {
			return false
		}
		res, err := tr.Run()
		if err != nil {
			return false
		}
		return res.SymbolErrors <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

// TestResultAccounting cross-checks the Result bookkeeping against the pair
// contents.
func TestResultAccounting(t *testing.T) {
	cfg := fastCfg()
	p := calibrated(t, &cfg, Params{Kind: TPCChannel, Iterations: 3, SyncPeriod: 8, Seed: 31})
	payload := AlternatingPayload(40, 2)
	tr, err := NewTPCTransmission(&cfg, payload, nil, p) // all TPCs
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	total, errs := 0, 0
	for _, pair := range res.Pairs {
		total += len(pair.Sent)
		errs += pair.Errors
		if len(pair.Received) != len(pair.Sent) {
			t.Errorf("pair %d received %d of %d symbols", pair.Unit, len(pair.Received), len(pair.Sent))
		}
		if len(pair.Trace) != len(pair.Sent) {
			t.Errorf("pair %d trace %d of %d slots", pair.Unit, len(pair.Trace), len(pair.Sent))
		}
	}
	if total != res.SymbolsSent || errs != res.SymbolErrors {
		t.Errorf("aggregates %d/%d vs pairs %d/%d", res.SymbolsSent, res.SymbolErrors, total, errs)
	}
	if res.BitsSent != res.SymbolsSent {
		t.Errorf("BitsSent %d != symbols %d for binary channel", res.BitsSent, res.SymbolsSent)
	}
	if res.Cycles == 0 || res.BitsPerSecond == 0 {
		t.Error("missing throughput accounting")
	}
}
