// Package stats provides the small statistics toolkit used by the
// reverse-engineering probes, the covert-channel quality metrics, and the
// experiment harness. Everything operates on float64 slices and is
// allocation-light so it can run inside benchmark loops.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
// Slices with fewer than two elements have zero variance.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// LinearFit fits y = a + b*x by least squares and returns the intercept a,
// slope b, and the coefficient of determination r2.
func LinearFit(x, y []float64) (a, b, r2 float64, err error) {
	if len(x) != len(y) {
		return 0, 0, 0, errors.New("stats: mismatched lengths")
	}
	if len(x) < 2 {
		return 0, 0, 0, ErrEmpty
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, errors.New("stats: degenerate x values")
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		return a, b, 1, nil
	}
	r2 = sxy * sxy / (sxx * syy)
	return a, b, r2, nil
}

// Histogram bins xs into n equal-width buckets between min and max and
// returns the per-bucket counts along with the bucket edges (n+1 values).
func Histogram(xs []float64, n int) (counts []int, edges []float64, err error) {
	if len(xs) == 0 {
		return nil, nil, ErrEmpty
	}
	if n <= 0 {
		return nil, nil, errors.New("stats: non-positive bucket count")
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	if lo == hi {
		hi = lo + 1
	}
	counts = make([]int, n)
	edges = make([]float64, n+1)
	width := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + width*float64(i)
	}
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx >= n {
			idx = n - 1
		}
		if idx < 0 {
			idx = 0
		}
		counts[idx]++
	}
	return counts, edges, nil
}

// Normalize divides every element of xs by base and returns a new slice.
// A zero base yields a copy of xs unchanged, which keeps ratio plots sane
// when a baseline measurement failed.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if base != 0 {
			out[i] = x / base
		} else {
			out[i] = x
		}
	}
	return out
}

// Running accumulates streaming statistics without retaining samples.
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator (Welford's algorithm).
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples added.
func (r *Running) N() int { return r.n }

// Mean returns the running mean.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased running variance.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the unbiased running standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest sample seen (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample seen (0 when empty).
func (r *Running) Max() float64 { return r.max }
