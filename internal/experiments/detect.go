// The detection arm of the §6 defense discussion: experiments that point the
// internal/telemetry detector at the live channel. detect-latency measures
// how long the detector needs to flag senders of different rates;
// detector-roc sweeps the detection threshold against background noise and
// tabulates true/false positives, with noise-only runs producing the
// false-positive column.

package experiments

import (
	"fmt"

	"gpunoc/internal/config"
	"gpunoc/internal/core"
	"gpunoc/internal/engine"
	"gpunoc/internal/noise"
	"gpunoc/internal/probe"
	"gpunoc/internal/telemetry"
)

func init() {
	MustRegister(Experiment{
		ID: "detect-latency", Order: 260,
		Title:   "Online detection latency vs channel rate",
		Section: "beyond the paper (§6 defense: detection)",
		Run:     DetectLatency,
		Check:   func(_ *config.Config, f *Figure) error { return CheckDetectLatency(f) },
		Metrics: func(f *Figure) map[string]float64 {
			m := map[string]float64{}
			if s, ok := f.seriesByName("cycles to first detection"); ok && len(s.Y) > 0 {
				m["fastest-sender-latency-cycles"] = s.Y[0]
				m["slowest-sender-latency-cycles"] = s.Y[len(s.Y)-1]
			}
			return m
		},
	})
	MustRegister(Experiment{
		ID: "detector-roc", Order: 270,
		Title:   "Detector operating points: TP/FP across thresholds under noise",
		Section: "beyond the paper (§6 defense: detection)",
		Run:     DetectorROC,
		Check:   CheckDetectorROC,
	})
}

// detectorWindow picks the sampler window for a channel of the given slot
// period: a quarter slot, so the detector's lag grid lands exactly on the
// slot (lag = 4 windows) and an alternating payload's occupancy square wave
// is sampled well above Nyquist.
func detectorWindow(slotCycles uint64) uint64 {
	w := slotCycles / 4
	if w == 0 {
		w = 1
	}
	return w
}

// attachDetector equips the config copy with a fresh registry, a
// quarter-slot sampler, a recorder, and an online detector tuned to the
// given slot period (threshold 0 selects the default). Every engine built
// from c afterwards feeds the same window stream.
func attachDetector(c *config.Config, slotCycles uint64, threshold float64) (*telemetry.Recorder, *telemetry.Detector) {
	w := detectorWindow(slotCycles)
	rec := &telemetry.Recorder{}
	det := telemetry.NewDetector(telemetry.DetectorConfig{
		SlotCycles:   slotCycles,
		WindowCycles: w,
		Threshold:    threshold,
	})
	c.Probes = probe.NewRegistry()
	c.Telemetry = telemetry.NewSampler(w, rec, det)
	return rec, det
}

// replayDetector replays a recorded window stream through a fresh detector
// at the given threshold. The detector is pure over the stream, so the
// replay reproduces what an online detector at that threshold would have
// emitted — detector-roc scores one simulation at many thresholds this way.
func replayDetector(rec *telemetry.Recorder, slotCycles uint64, threshold float64) []telemetry.Event {
	det := telemetry.NewDetector(telemetry.DetectorConfig{
		SlotCycles:   slotCycles,
		WindowCycles: detectorWindow(slotCycles),
		Threshold:    threshold,
	})
	for _, w := range rec.Windows() {
		det.ObserveWindow(w)
	}
	return det.Events()
}

// noiseOnlyRun executes the background generators with no transmission —
// the detector's null hypothesis.
func noiseOnlyRun(cfg *config.Config, specs ...noise.Spec) error {
	g, err := engine.New(*cfg)
	if err != nil {
		return err
	}
	ks, err := noise.Kernels(cfg, specs...)
	if err != nil {
		return err
	}
	var budget uint64 = 1_000_000
	for _, spec := range specs {
		budget += spec.DurationCycles * 4
	}
	for _, k := range ks {
		if _, err := g.Launch(k); err != nil {
			return err
		}
	}
	return g.RunKernels(budget)
}

// DetectLatency transmits an alternating payload over the TPC channel at
// several sender rates (delay iterations widen the timing slot) with the
// online detector watching, and reports the cycles from the link first
// going active to the first detection event. The detector needs a full ring
// of windows — 6 slot periods' worth — before it can score, so slower
// senders (wider slots) take proportionally longer to flag.
func DetectLatency(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "detect-latency",
		Title:  "Cycles to first detection vs channel rate",
		XLabel: "slot cycles (slower sender →)",
		YLabel: "cycles from first activity to first detection",
		Header: []string{"iterations", "slot cycles", "kbps", "error rate", "events", "since-active (cycles)"},
	}
	iters := []int{2, 4, 8}
	if opt.Scale == Full {
		iters = []int{2, 3, 4, 6, 8}
	}
	bits := opt.pick(48, 96)
	payload := core.AlternatingPayload(bits, 2)
	var xs, ys []float64
	for _, it := range iters {
		p, err := calibratedParams(cfg, core.TPCChannel, it, 1, opt.seed())
		if err != nil {
			return nil, fmt.Errorf("detect-latency: calibrate at %d iterations: %w", it, err)
		}
		c := *cfg
		_, det := attachDetector(&c, p.SlotCycles, 0)
		res, err := noisySend(&c, payload, p)
		if err != nil {
			return nil, fmt.Errorf("detect-latency: send at %d iterations: %w", it, err)
		}
		evs := det.Events()
		latency := -1.0
		if len(evs) > 0 {
			latency = float64(evs[0].SinceActive)
		}
		xs = append(xs, float64(p.SlotCycles))
		ys = append(ys, latency)
		f.Rows = append(f.Rows, []string{
			fmt.Sprintf("%d", it),
			fmt.Sprintf("%d", p.SlotCycles),
			fmt.Sprintf("%.1f", res.BitsPerSecond/1e3),
			fmt.Sprintf("%.4f", res.ErrorRate),
			fmt.Sprintf("%d", len(evs)),
			fmt.Sprintf("%.0f", latency),
		})
	}
	f.addSeries("cycles to first detection", xs, ys)
	f.note("quarter-slot windows, default threshold; the detector scores a 6-slot " +
		"ring of occupancy windows, so detection latency scales with the slot " +
		"period — slower senders take longer to flag")
	return f, nil
}

// CheckDetectLatency asserts the latency curve's shape: every sender rate
// was detected, latency never shrinks as the sender slows down, and even the
// slowest sender is flagged within 3 sync frames (48 slots) of the link
// going active.
func CheckDetectLatency(f *Figure) error {
	s, ok := f.seriesByName("cycles to first detection")
	if !ok || len(s.Y) < 3 {
		return fmt.Errorf("detect-latency: malformed series")
	}
	for i, y := range s.Y {
		if y < 0 {
			return fmt.Errorf("detect-latency: sender at %.0f-cycle slots never detected", s.X[i])
		}
		if frames := y / (16 * s.X[i]); frames > 3 {
			return fmt.Errorf("detect-latency: %.0f-cycle slots flagged after %.1f frames, want <= 3",
				s.X[i], frames)
		}
	}
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] < s.Y[i-1] {
			return fmt.Errorf("detect-latency: latency not monotone in slot period: %v", s.Y)
		}
	}
	return nil
}

// rocIntensities and rocThresholds return fresh copies of the detector-roc
// sweep grids (functions, not package vars, per the state-purity lint). The
// intensities bracket the noise-sweep's "channel still works" region; the
// thresholds bracket the default.
func rocIntensities() []float64 { return []float64{0.02, 0.05, 0.1} }

func rocThresholds() []float64 {
	return []float64{0.25, 0.40, telemetry.DefaultDetectorThreshold, 0.70, 0.85}
}

// rocSpec is noiseSpec with the generator switched to Random gaps: the
// detector's null hypothesis must be aperiodic traffic. The sweep's default
// Stream co-runner issues on a fixed inter-op gap — it is itself a periodic
// process, and its window-rate series shows genuine slot-scale oscillations
// (measured r ≈ +0.95 at a 2-slot lag at intensity 0.1) that any periodicity
// detector rightly flags. Random offers the same mean load at seeded random
// instants, which is the "innocent co-runner" a false-positive column is
// about.
func rocSpec(cfg *config.Config, intensity float64, slots int, slotCycles uint64, seed int64) noise.Spec {
	spec := noiseSpec(cfg, intensity, slots, slotCycles, seed)
	spec.Kind = noise.Random
	return spec
}

// DetectorROC runs the paper-rate TPC channel under aperiodic (Random-gap)
// background noise at several intensities, and the same noise with no
// transmission, recording each run's window stream once. Replaying the
// recordings through detectors across a threshold grid yields the operating
// table: true positives = noisy channel runs detected, false positives =
// events fired by noise-only runs. A third series reports, at the default
// threshold, how many sync frames (SyncPeriod slots) into each noisy
// transmission the first detection landed. See rocSpec for why the null is
// Random rather than the sweep's usual Stream co-runner.
func DetectorROC(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "detector-roc",
		Title:  "Detector TP/FP vs threshold under background noise",
		XLabel: "detection threshold (autocorrelation score)",
		YLabel: "count",
		Header: []string{"threshold", "true positives", "false positives"},
	}
	p, err := calibratedParams(cfg, core.TPCChannel, 4, 1, opt.seed())
	if err != nil {
		return nil, fmt.Errorf("detector-roc: calibrate: %w", err)
	}
	bits := opt.pick(48, 96)
	payload := core.AlternatingPayload(bits, 2)

	var chanRecs, noiseRecs []*telemetry.Recorder
	for _, in := range rocIntensities() {
		spec := rocSpec(cfg, in, len(payload), p.SlotCycles, opt.seed())

		c := *cfg
		rec, _ := attachDetector(&c, p.SlotCycles, 0)
		if _, err := noisySend(&c, payload, p, spec); err != nil {
			return nil, fmt.Errorf("detector-roc: channel at intensity %.2f: %w", in, err)
		}
		chanRecs = append(chanRecs, rec)

		n := *cfg
		recN, _ := attachDetector(&n, p.SlotCycles, 0)
		if err := noiseOnlyRun(&n, spec); err != nil {
			return nil, fmt.Errorf("detector-roc: noise-only at intensity %.2f: %w", in, err)
		}
		noiseRecs = append(noiseRecs, recN)
	}

	var tps, fps []float64
	for _, th := range rocThresholds() {
		tp, fp := 0, 0
		for _, rec := range chanRecs {
			if len(replayDetector(rec, p.SlotCycles, th)) > 0 {
				tp++
			}
		}
		for _, rec := range noiseRecs {
			fp += len(replayDetector(rec, p.SlotCycles, th))
		}
		tps = append(tps, float64(tp))
		fps = append(fps, float64(fp))
		f.Rows = append(f.Rows, []string{
			fmt.Sprintf("%.2f", th),
			fmt.Sprintf("%d", tp),
			fmt.Sprintf("%d", fp),
		})
	}
	f.addSeries("true positives", rocThresholds(), tps)
	f.addSeries("false positives", rocThresholds(), fps)

	// Detection earliness at the default threshold, in sync frames.
	frame := float64(uint64(p.SyncPeriod) * p.SlotCycles)
	var frames []float64
	for _, rec := range chanRecs {
		evs := replayDetector(rec, p.SlotCycles, telemetry.DefaultDetectorThreshold)
		if len(evs) == 0 {
			frames = append(frames, -1)
			continue
		}
		frames = append(frames, float64(evs[0].SinceActive)/frame)
	}
	f.addSeries("frames to detection (default threshold)", rocIntensities(), frames)
	f.note("TP counts noisy paper-rate transmissions detected (of %d); FP counts "+
		"events fired by noise-only runs at the same intensities; earliness is "+
		"first-event latency in %d-slot sync frames", len(rocIntensities()), p.SyncPeriod)
	f.note("background is the Random-gap co-runner: a fixed-gap Stream co-runner " +
		"is itself periodic at slot scale and the detector legitimately flags it, " +
		"so the false-positive null must be aperiodic")
	return f, nil
}

// CheckDetectorROC asserts the operating table: both columns shrink (weakly)
// as the threshold rises; at the default threshold every noisy channel run
// is detected within its first 3 sync frames while the noise-only runs fire
// nothing.
func CheckDetectorROC(_ *config.Config, f *Figure) error {
	tp, ok1 := f.seriesByName("true positives")
	fp, ok2 := f.seriesByName("false positives")
	fr, ok3 := f.seriesByName("frames to detection (default threshold)")
	if !ok1 || !ok2 || !ok3 || len(tp.Y) != len(fp.Y) || len(tp.Y) < 3 {
		return fmt.Errorf("detector-roc: malformed series")
	}
	for i := 1; i < len(tp.Y); i++ {
		if tp.Y[i] > tp.Y[i-1] {
			return fmt.Errorf("detector-roc: TP rises with threshold: %v", tp.Y)
		}
		if fp.Y[i] > fp.Y[i-1] {
			return fmt.Errorf("detector-roc: FP rises with threshold: %v", fp.Y)
		}
	}
	def := -1
	for i, x := range tp.X {
		if x == telemetry.DefaultDetectorThreshold {
			def = i
		}
	}
	if def < 0 {
		return fmt.Errorf("detector-roc: default threshold missing from sweep")
	}
	if fp.Y[def] != 0 {
		return fmt.Errorf("detector-roc: %d false positive(s) at the default threshold", int(fp.Y[def]))
	}
	if want := float64(len(fr.Y)); tp.Y[def] != want {
		return fmt.Errorf("detector-roc: %.0f/%.0f noisy transmissions detected at the default threshold",
			tp.Y[def], want)
	}
	for i, y := range fr.Y {
		if y < 0 || y > 3 {
			return fmt.Errorf("detector-roc: intensity %.2f first detected %.1f frames in, want (0, 3]",
				rocIntensities()[i], y)
		}
	}
	return nil
}
