// Fixture: deliberate determinism violations, plus the patterns the analyzer
// must accept — a seeded *rand.Rand, a sorted map collection, an order-free
// map accumulation, and a reasoned waiver.
package noc

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

// Bad reads ambient state four ways.
func Bad() int64 {
	t := time.Now()
	_ = time.Since(t)
	_ = os.Getenv("GPUNOC_SEED")
	return rand.Int63()
}

// PrintUnsorted leaks map iteration order into printed output.
func PrintUnsorted(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// CollectUnsorted leaks map iteration order into a returned slice.
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// CollectSorted is the sanctioned shape: collect, then sort.
func CollectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Accumulate writes into another map — order-free, not flagged.
func Accumulate(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] += v
	}
	return out
}

// Seeded derives its RNG from a caller-supplied seed: allowed.
func Seeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(16)
}

// Waived reads the wall clock under a reasoned waiver.
func Waived() int64 {
	return time.Now().UnixNano() //lint:allow determinism fixture: diagnostics-only timestamp
}
