package device

import (
	"errors"

	"gpunoc/internal/snap"
)

// ErrNotCheckpointable reports a resident program that does not implement
// Checkpointable — typically a StepFunc closure, whose captured variables
// are opaque. A kernel built from such a program cannot survive a snapshot;
// engine.(*GPU).Snapshot surfaces this error wrapped with the SM and warp.
var ErrNotCheckpointable = errors.New("device: program is not checkpointable")

// Checkpointable is implemented by programs whose warp-local state can be
// serialized into an engine snapshot and rebuilt on restore. Closure-based
// programs (StepFunc) cannot implement it — captured variables are opaque —
// so a kernel that must survive a snapshot uses the concrete program types
// of this package instead.
type Checkpointable interface {
	Program
	// CheckpointID names the concrete program type inside snapshots; the
	// restoring process maps it back to a factory via
	// engine.RestoreOptions.Programs.
	CheckpointID() string
	// MarshalState appends every field — construction parameters and
	// mutable progress — to the encoder, in a fixed order.
	MarshalState(e *snap.Encoder)
	// UnmarshalState reads the same fields back into a freshly
	// constructed (zero-valued) program. Errors surface through the
	// decoder's sticky error.
	UnmarshalState(d *snap.Decoder)
}

// CheckpointID implements Checkpointable.
func (s *Streamer) CheckpointID() string { return "streamer" }

// MarshalState implements Checkpointable.
func (s *Streamer) MarshalState(e *snap.Encoder) {
	e.U64(s.Base)
	e.Int(s.LineBytes)
	e.Bool(s.Write)
	e.Bool(s.Atomic)
	e.Int(s.Count)
	e.Bool(s.Uncoalesced)
	e.U64(s.WrapBytes)
	e.U64(s.StartDelay)
	e.Int(len(s.Latencies))
	for _, l := range s.Latencies {
		e.U64(l)
	}
	e.Int(s.issued)
	e.Bool(s.started)
}

// UnmarshalState implements Checkpointable.
func (s *Streamer) UnmarshalState(d *snap.Decoder) {
	s.Base = d.U64()
	s.LineBytes = d.Int()
	s.Write = d.Bool()
	s.Atomic = d.Bool()
	s.Count = d.Int()
	s.Uncoalesced = d.Bool()
	s.WrapBytes = d.U64()
	s.StartDelay = d.U64()
	n := d.Len()
	s.Latencies = nil
	for i := 0; i < n; i++ {
		s.Latencies = append(s.Latencies, d.U64())
	}
	s.issued = d.Int()
	s.started = d.Bool()
}

// CheckpointID implements Checkpointable.
func (c *ClockReader) CheckpointID() string { return "clock-reader" }

// MarshalState implements Checkpointable.
func (c *ClockReader) MarshalState(e *snap.Encoder) {
	e.U32(c.Value)
	e.Int(c.SMID)
	e.Bool(c.read)
}

// UnmarshalState implements Checkpointable.
func (c *ClockReader) UnmarshalState(d *snap.Decoder) {
	c.Value = d.U32()
	c.SMID = d.Int()
	c.read = d.Bool()
}

// CheckpointID implements Checkpointable.
func (c *ComputeLoop) CheckpointID() string { return "compute-loop" }

// MarshalState implements Checkpointable.
func (c *ComputeLoop) MarshalState(e *snap.Encoder) {
	e.Int(c.Count)
	e.U64(c.IterCost)
	e.Int(c.iterations)
}

// UnmarshalState implements Checkpointable.
func (c *ComputeLoop) UnmarshalState(d *snap.Decoder) {
	c.Count = d.Int()
	c.IterCost = d.U64()
	c.iterations = d.Int()
}

// MaskedStreamer is a Streamer that binds itself to a target SM set on its
// first step: warps whose block landed on an SM outside the mask terminate
// immediately, and active warps stream from a base address derived from
// their physical SM. It exists so canned CLI workloads ("stream on SMs 0
// and 1") are expressible without closures and therefore checkpointable;
// it also records the warp's start and end clocks for per-SM reporting.
type MaskedStreamer struct {
	// SMs is the ascending list of target physical SM ids; empty means
	// every SM participates.
	SMs []int
	// Warp is this warp's index within its block, WarpsPerSM the block's
	// warp count; together with SpanBytes they place each active warp in
	// a disjoint address window: Base = (SMID*WarpsPerSM+Warp)*SpanBytes.
	Warp       int
	WarpsPerSM int
	SpanBytes  uint64
	// LineBytes, Write, Count, Uncoalesced, and WrapBytes configure the
	// inner Streamer.
	LineBytes   int
	Write       bool
	Count       int
	Uncoalesced bool
	WrapBytes   uint64

	// StartClock and EndClock are the warp's unwrapped SM clock at
	// activation and at completion; SMID is the physical SM the warp
	// bound to. They are read back for reports after the run.
	StartClock uint64
	EndClock   uint64
	SMID       int

	checked bool
	active  bool
	done    bool
	inner   Streamer
}

// Step implements Program.
func (m *MaskedStreamer) Step(ctx *Ctx) Op {
	if !m.checked {
		m.checked = true
		m.active = len(m.SMs) == 0
		for _, id := range m.SMs {
			if id == ctx.SMID {
				m.active = true
				break
			}
		}
		if m.active {
			m.SMID = ctx.SMID
			m.StartClock = ctx.Clock64
			m.inner = Streamer{
				Base:        uint64(ctx.SMID*m.WarpsPerSM+m.Warp) * m.SpanBytes,
				LineBytes:   m.LineBytes,
				Write:       m.Write,
				Count:       m.Count,
				Uncoalesced: m.Uncoalesced,
				WrapBytes:   m.WrapBytes,
			}
		}
	}
	if !m.active {
		return Done()
	}
	op := m.inner.Step(ctx)
	if op.Kind == OpDone && !m.done {
		m.done = true
		m.EndClock = ctx.Clock64
	}
	return op
}

// Active reports whether the warp bound to a target SM.
func (m *MaskedStreamer) Active() bool { return m.active }

// CheckpointID implements Checkpointable.
func (m *MaskedStreamer) CheckpointID() string { return "masked-streamer" }

// MarshalState implements Checkpointable.
func (m *MaskedStreamer) MarshalState(e *snap.Encoder) {
	e.Int(len(m.SMs))
	for _, id := range m.SMs {
		e.Int(id)
	}
	e.Int(m.Warp)
	e.Int(m.WarpsPerSM)
	e.U64(m.SpanBytes)
	e.Int(m.LineBytes)
	e.Bool(m.Write)
	e.Int(m.Count)
	e.Bool(m.Uncoalesced)
	e.U64(m.WrapBytes)
	e.U64(m.StartClock)
	e.U64(m.EndClock)
	e.Int(m.SMID)
	e.Bool(m.checked)
	e.Bool(m.active)
	e.Bool(m.done)
	m.inner.MarshalState(e)
}

// UnmarshalState implements Checkpointable.
func (m *MaskedStreamer) UnmarshalState(d *snap.Decoder) {
	n := d.Len()
	m.SMs = nil
	for i := 0; i < n; i++ {
		m.SMs = append(m.SMs, d.Int())
	}
	m.Warp = d.Int()
	m.WarpsPerSM = d.Int()
	m.SpanBytes = d.U64()
	m.LineBytes = d.Int()
	m.Write = d.Bool()
	m.Count = d.Int()
	m.Uncoalesced = d.Bool()
	m.WrapBytes = d.U64()
	m.StartClock = d.U64()
	m.EndClock = d.U64()
	m.SMID = d.Int()
	m.checked = d.Bool()
	m.active = d.Bool()
	m.done = d.Bool()
	m.inner.UnmarshalState(d)
}

// interface conformance guards (compile-time).
var (
	_ Checkpointable = (*Streamer)(nil)
	_ Checkpointable = (*ClockReader)(nil)
	_ Checkpointable = (*ComputeLoop)(nil)
	_ Checkpointable = (*MaskedStreamer)(nil)
)
