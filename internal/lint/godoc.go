// The godoc analyzer: a go vet-style doc-comment check. Every exported
// symbol in scope — functions, methods, types, and package-level consts and
// vars — must carry a doc comment. The simulator's API is its documentation
// surface (docs/ARCHITECTURE.md deliberately defers symbol-level detail to
// godoc), so an undocumented export is doc drift. A grouped const/var
// declaration is covered by a comment on the group; a genuinely
// self-describing name can be waived with //lint:allow godoc <reason>.

package lint

import (
	"go/ast"
)

func godocAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "godoc",
		Doc:  "require a doc comment on every exported symbol",
		Run:  runGodoc,
	}
}

func runGodoc(pass *Pass) {
	if !pass.Rules.Godoc.Scope.Match(pass.Pkg.Rel) {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(pass, decl)
			case *ast.GenDecl:
				checkGenDoc(pass, decl)
			}
		}
	}
}

// checkFuncDoc flags an exported function or method without a doc comment.
// Methods on unexported types are skipped: they are not reachable from
// outside the package, so godoc never renders them.
func checkFuncDoc(pass *Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Doc != nil {
		return
	}
	if fd.Recv != nil {
		recv := receiverTypeName(fd)
		if recv == "" || !ast.IsExported(recv) {
			return
		}
		pass.Report(fd.Pos(), "exported method %s.%s has no doc comment", recv, fd.Name.Name)
		return
	}
	pass.Report(fd.Pos(), "exported function %s has no doc comment", fd.Name.Name)
}

// checkGenDoc flags exported types, consts, and vars without a doc comment.
// A comment on the declaration group ("// The default latencies." above a
// const block) documents every name in the group.
func checkGenDoc(pass *Pass, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		switch spec := spec.(type) {
		case *ast.TypeSpec:
			if spec.Name.IsExported() && spec.Doc == nil && gd.Doc == nil {
				pass.Report(spec.Pos(), "exported type %s has no doc comment", spec.Name.Name)
			}
		case *ast.ValueSpec:
			if gd.Doc != nil || spec.Doc != nil || spec.Comment != nil {
				continue
			}
			for _, name := range spec.Names {
				if name.IsExported() {
					pass.Report(name.Pos(), "exported %s %s has no doc comment", kindOf(gd), name.Name)
				}
			}
		}
	}
}

// kindOf renders a GenDecl's keyword for the finding message.
func kindOf(gd *ast.GenDecl) string {
	return gd.Tok.String()
}
