// Package engine is the tickmodel fixture's engine package: parallel.go is
// the sanctioned engine-parallel tier, and the blanket bans still hold in
// every other file of the same package.
package engine

// Tick violates the ban outside the sanctioned file.
func Tick() {
	go func() {}()
}
