package noise

import (
	"reflect"
	"testing"

	"gpunoc/internal/config"
	"gpunoc/internal/device"
)

func cfg(t *testing.T) *config.Config {
	t.Helper()
	c := config.Small()
	if err := c.Validate(); err != nil {
		t.Fatalf("small config invalid: %v", err)
	}
	return &c
}

func TestSpecValidation(t *testing.T) {
	c := cfg(t)
	cases := []struct {
		name string
		s    Spec
		ok   bool
	}{
		{"minimal", Spec{Intensity: 0.5, DurationCycles: 1000}, true},
		{"no duration", Spec{Intensity: 0.5}, false},
		{"negative intensity", Spec{Intensity: -0.1, DurationCycles: 1000}, false},
		{"intensity above one", Spec{Intensity: 1.5, DurationCycles: 1000}, false},
		{"too many warps", Spec{Intensity: 0.5, DurationCycles: 1000, Warps: c.MaxWarpsPerSM + 1}, false},
		{"bad victim SM", Spec{Intensity: 0.5, DurationCycles: 1000, SMs: []int{c.NumSMs()}}, false},
		{"victim SMs", Spec{Intensity: 0.5, DurationCycles: 1000, SMs: []int{0, c.NumSMs() - 1}}, true},
	}
	for _, tc := range cases {
		_, err := tc.s.withDefaults(c)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error, got none", tc.name)
		}
	}
}

func TestDefaults(t *testing.T) {
	c := cfg(t)
	s, err := Spec{Intensity: 0.5, DurationCycles: 1000}.withDefaults(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.Warps != 4 || s.PeriodCycles != 4096 || s.Seed != 1 || s.WindowBytes != 4096 || s.Base != DefaultBase {
		t.Errorf("unexpected defaults: %+v", s)
	}
}

func TestSilentSpecProducesNoKernel(t *testing.T) {
	c := cfg(t)
	_, ok, err := Kernel(c, Spec{Intensity: 0, DurationCycles: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("zero-intensity spec produced a kernel; it must produce none for bit-identity")
	}
	ks, err := Kernels(c,
		Spec{Intensity: 0, DurationCycles: 1000},
		Spec{Intensity: 0.5, DurationCycles: 1000},
		Spec{Kind: Burst, Intensity: 0, DurationCycles: 1000},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 1 {
		t.Fatalf("Kernels kept %d kernels, want 1 (silent specs skipped)", len(ks))
	}
	if ks[0].Name != "noise-stream" || ks[0].Blocks != c.NumSMs() {
		t.Errorf("kernel shape: name=%q blocks=%d, want noise-stream with one block per SM", ks[0].Name, ks[0].Blocks)
	}
}

func TestGapCycles(t *testing.T) {
	c := cfg(t)
	if g := gapCycles(c, 1); g != 0 {
		t.Errorf("full intensity gap = %d, want 0", g)
	}
	drain := uint64(c.SIMTWidth * c.NoC.LSUInjectPeriod)
	if g := gapCycles(c, 0.5); g != drain {
		t.Errorf("half intensity gap = %d, want opDrain %d", g, drain)
	}
	// Lower intensity must never shrink the gap.
	prev := uint64(0)
	for _, in := range []float64{0.9, 0.5, 0.25, 0.1, 0.05} {
		g := gapCycles(c, in)
		if g < prev {
			t.Errorf("gap not monotone: intensity %.2f gap %d < previous %d", in, g, prev)
		}
		prev = g
	}
}

// drive steps a fresh program on the given SM and returns the op sequence up
// to limit steps, advancing a fake clock by each wait.
func drive(p device.Program, smid int, limit int) []device.Op {
	ctx := &device.Ctx{SMID: smid}
	var ops []device.Op
	for i := 0; i < limit; i++ {
		op := p.Step(ctx)
		ops = append(ops, op)
		switch op.Kind {
		case device.OpDone:
			return ops
		case device.OpWait:
			ctx.Clock64 += op.Cycles
		case device.OpMem:
			ctx.Clock64 += 1 // issue cost; latency modeled elsewhere
		}
	}
	return ops
}

func TestNonVictimExitsImmediately(t *testing.T) {
	c := cfg(t)
	k, ok, err := Kernel(c, Spec{Intensity: 1, DurationCycles: 1000, SMs: []int{0}})
	if err != nil || !ok {
		t.Fatalf("Kernel: ok=%v err=%v", ok, err)
	}
	ops := drive(k.New(1, 0), 1, 4)
	if len(ops) != 1 || ops[0].Kind != device.OpDone {
		t.Errorf("non-victim warp ran %d ops, want immediate Done", len(ops))
	}
}

func TestGeneratorRespectsDuration(t *testing.T) {
	c := cfg(t)
	for _, kind := range []Kind{Stream, Burst, Random} {
		k, ok, err := Kernel(c, Spec{Kind: kind, Intensity: 0.5, DurationCycles: 5000})
		if err != nil || !ok {
			t.Fatalf("%v: ok=%v err=%v", kind, ok, err)
		}
		ops := drive(k.New(0, 0), 0, 100000)
		last := ops[len(ops)-1]
		if last.Kind != device.OpDone {
			t.Errorf("%v: generator never finished within step budget", kind)
		}
		mems := 0
		for _, op := range ops {
			if op.Kind == device.OpMem {
				mems++
			}
		}
		if mems == 0 {
			t.Errorf("%v: generator issued no memory operations", kind)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	c := cfg(t)
	for _, kind := range []Kind{Stream, Burst, Random} {
		s := Spec{Kind: kind, Intensity: 0.3, DurationCycles: 20000, Seed: 7}
		k1, _, err := Kernel(c, s)
		if err != nil {
			t.Fatal(err)
		}
		k2, _, err := Kernel(c, s)
		if err != nil {
			t.Fatal(err)
		}
		a := drive(k1.New(0, 1), 0, 100000)
		b := drive(k2.New(0, 1), 0, 100000)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: same spec, same warp produced different op streams", kind)
		}
	}
}

func TestIntensityOrdersOfferedLoad(t *testing.T) {
	c := cfg(t)
	memCount := func(intensity float64) int {
		k, _, err := Kernel(c, Spec{Intensity: intensity, DurationCycles: 50000})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, op := range drive(k.New(0, 0), 0, 200000) {
			if op.Kind == device.OpMem {
				n++
			}
		}
		return n
	}
	lo, mid, hi := memCount(0.1), memCount(0.5), memCount(1.0)
	if !(lo < mid && mid < hi) {
		t.Errorf("offered load not ordered by intensity: %d (0.1) %d (0.5) %d (1.0)", lo, mid, hi)
	}
}

func TestBurstHasSilentPhases(t *testing.T) {
	c := cfg(t)
	k, _, err := Kernel(c, Spec{Kind: Burst, Intensity: 0.25, DurationCycles: 40000, PeriodCycles: 4096})
	if err != nil {
		t.Fatal(err)
	}
	longWaits := 0
	for _, op := range drive(k.New(0, 0), 0, 200000) {
		if op.Kind == device.OpWait && op.Cycles > 1024 {
			longWaits++
		}
	}
	if longWaits < 5 {
		t.Errorf("burst generator produced %d off-phase sleeps, want several", longWaits)
	}
}
