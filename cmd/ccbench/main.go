// Command ccbench regenerates the paper's tables and figures on the
// simulated GPU and prints them as a plain-text report. It is the
// command-line face of the internal/experiments harness; the testing.B
// benchmarks at the repository root wrap the same functions.
//
// Usage:
//
//	ccbench [-config volta|small] [-scale quick|full] [-seed N] [-only fig10,table2,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpunoc/internal/config"
	"gpunoc/internal/experiments"
)

func main() {
	cfgName := flag.String("config", "volta", "GPU configuration: volta or small")
	scaleName := flag.String("scale", "quick", "experiment scale: quick or full")
	seed := flag.Int64("seed", 1, "deterministic seed for all noise sources")
	only := flag.String("only", "", "comma-separated subset of experiments (e.g. fig10,table2)")
	csvDir := flag.String("csv", "", "directory to also write per-experiment CSV files into")
	flag.Parse()

	var cfg config.Config
	switch *cfgName {
	case "volta":
		cfg = config.Volta()
	case "small":
		cfg = config.Small()
	default:
		fmt.Fprintf(os.Stderr, "ccbench: unknown config %q\n", *cfgName)
		os.Exit(2)
	}
	cfg.Seed = *seed

	opt := experiments.Options{Seed: *seed}
	switch *scaleName {
	case "quick":
		opt.Scale = experiments.Quick
	case "full":
		opt.Scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "ccbench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	type runner struct {
		id  string
		run func() (*experiments.Figure, error)
	}
	refs := []int{0}
	if cfg.NumTPCs() > 5 {
		refs = append(refs, 5)
	}
	runners := []runner{
		{"table1", func() (*experiments.Figure, error) { return experiments.Table1(&cfg), nil }},
		{"fig2", func() (*experiments.Figure, error) { return experiments.Fig2(&cfg, opt) }},
		{"fig3", func() (*experiments.Figure, error) { return experiments.Fig3(&cfg, refs, opt) }},
		{"fig4", func() (*experiments.Figure, error) { return experiments.Fig4(&cfg, opt) }},
		{"fig5", func() (*experiments.Figure, error) { return experiments.Fig5(&cfg, opt) }},
		{"fig6", func() (*experiments.Figure, error) { return experiments.Fig6(&cfg, opt) }},
		{"fig8", func() (*experiments.Figure, error) { return experiments.Fig8(&cfg, opt) }},
		{"fig9", func() (*experiments.Figure, error) { return experiments.Fig9(&cfg, opt) }},
		{"fig10", func() (*experiments.Figure, error) { return experiments.Fig10(&cfg, opt) }},
		{"fig11", func() (*experiments.Figure, error) { return experiments.Fig11(&cfg, opt) }},
		{"fig13", func() (*experiments.Figure, error) { return experiments.Fig13(&cfg, opt) }},
		{"fig14", func() (*experiments.Figure, error) { return experiments.Fig14(&cfg, opt) }},
		{"fig15", func() (*experiments.Figure, error) { return experiments.Fig15(&cfg, opt) }},
		{"srr-defeat", func() (*experiments.Figure, error) { return experiments.SRRChannelDefeat(&cfg, opt) }},
		{"srr-tradeoff", func() (*experiments.Figure, error) { return experiments.SRRTradeoff(&cfg, opt) }},
		{"mps", func() (*experiments.Figure, error) { return experiments.MPSOverhead(&cfg, opt) }},
		{"noise", func() (*experiments.Figure, error) { return experiments.NoiseExperiment(&cfg, opt) }},
		{"ablation-warps", func() (*experiments.Figure, error) { return experiments.SenderWarpsAblation(&cfg, opt) }},
		{"ablation-slot", func() (*experiments.Figure, error) { return experiments.SlotAblation(&cfg, opt) }},
		{"ablation-speedup", func() (*experiments.Figure, error) { return experiments.SpeedupAblation(&cfg, opt) }},
		{"clock-fuzz", func() (*experiments.Figure, error) { return experiments.ClockFuzzExperiment(&cfg, opt) }},
		{"side-channel", func() (*experiments.Figure, error) { return experiments.SideChannelExperiment(&cfg, opt) }},
		{"table2", func() (*experiments.Figure, error) {
			f, _, err := experiments.Table2(&cfg, opt)
			return f, err
		}},
	}

	fmt.Printf("gpunoc ccbench: config=%s scale=%s seed=%d\n\n", cfg.Name, *scaleName, *seed)
	failed := false
	for _, r := range runners {
		if !want(r.id) {
			continue
		}
		f, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %s failed: %v\n", r.id, err)
			failed = true
			continue
		}
		fmt.Println(f.Render())
		if *csvDir != "" {
			path := fmt.Sprintf("%s/%s.csv", *csvDir, f.ID)
			if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "ccbench: writing %s: %v\n", path, err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
