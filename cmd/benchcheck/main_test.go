package main

import (
	"strings"
	"testing"
)

func boolPtr(b bool) *bool { return &b }

func TestCompareUngatedIsPrintedNotEnforced(t *testing.T) {
	base := map[string]baselineEntry{
		"idle":      {After: 1.0, Gate: boolPtr(false)},
		"saturated": {After: 100.0},
	}
	measured := map[string]float64{
		"idle":      50.0, // 50x drift, but ungated
		"saturated": 101.0,
	}
	var out strings.Builder
	if err := compare(&out, base, measured, 0.25, "BENCH_tick.json"); err != nil {
		t.Fatalf("ungated drift must not fail: %v", err)
	}
	if !strings.Contains(out.String(), "UNGATED") {
		t.Errorf("gate:false entry must print an UNGATED line, got:\n%s", out.String())
	}
}

func TestCompareGatedDriftFails(t *testing.T) {
	base := map[string]baselineEntry{"saturated": {After: 100.0}}
	measured := map[string]float64{"saturated": 200.0}
	var out strings.Builder
	err := compare(&out, base, measured, 0.25, "BENCH_tick.json")
	if err == nil {
		t.Fatal("a 2x regression on a gated metric must fail")
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("want a FAIL line, got:\n%s", out.String())
	}
}

func TestCompareMissingBenchmarksAllReported(t *testing.T) {
	base := map[string]baselineEntry{
		"saturated": {After: 100.0},
		"gone-b":    {After: 1.0},
		"gone-a":    {After: 1.0, Gate: boolPtr(false)},
	}
	measured := map[string]float64{"saturated": 100.0}
	var out strings.Builder
	err := compare(&out, base, measured, 0.25, "BENCH_tick.json")
	if err == nil {
		t.Fatal("baseline entries naming vanished benchmarks must fail")
	}
	msg := err.Error()
	// Every stale entry is listed, in sorted order, gated or not.
	if !strings.Contains(msg, "gone-a, gone-b") {
		t.Errorf("error must list all missing entries sorted, got: %v", err)
	}
}

func TestParseBench(t *testing.T) {
	in := strings.NewReader(`goos: linux
BenchmarkEngineTick/idle-8         	200000	         0.5 ns/op
BenchmarkEngineTick/saturated      	200000	       184.7 ns/op
BenchmarkSnapshotRestore/snapshot-8	      20	  16300000 ns/op
PASS
`)
	got, err := parseBench(in)
	if err != nil {
		t.Fatal(err)
	}
	tick := got["EngineTick"]
	if tick["idle"] != 0.5 || tick["saturated"] != 184.7 {
		t.Errorf("parseBench EngineTick = %v", tick)
	}
	if got["SnapshotRestore"]["snapshot"] != 16300000 {
		t.Errorf("parseBench SnapshotRestore = %v", got["SnapshotRestore"])
	}
}
