package cache

import (
	"testing"
	"testing/quick"
)

func mk(t *testing.T, size, lineB, ways, mshrs int) *Cache {
	t.Helper()
	c, err := New(size, lineB, ways, mshrs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	bad := [][4]int{
		{0, 32, 4, 8},
		{1024, 0, 4, 8},
		{1024, 32, 0, 8},
		{1024, 32, 4, 0},
		{1024, 48, 4, 8}, // line not power of two
		{1000, 32, 4, 8}, // size not divisible
	}
	for _, b := range bad {
		if _, err := New(b[0], b[1], b[2], b[3]); err == nil {
			t.Errorf("New(%v) should fail", b)
		}
	}
	c := mk(t, 4096, 32, 4, 8)
	if c.Sets() != 32 || c.Ways() != 4 || c.LineBytes() != 32 {
		t.Errorf("geometry %d/%d/%d", c.Sets(), c.Ways(), c.LineBytes())
	}
}

func TestMissThenHit(t *testing.T) {
	c := mk(t, 1024, 32, 2, 4)
	if r := c.Access(0x100, false); r != Miss {
		t.Fatalf("first access = %v, want miss", r)
	}
	// Merged access to the same line while outstanding.
	if r := c.Access(0x104, false); r != MissMerged {
		t.Fatalf("same-line access = %v, want merged", r)
	}
	waiters, wb := c.Fill(0x100, false)
	if waiters != 2 || wb {
		t.Fatalf("Fill = %d waiters, wb=%v", waiters, wb)
	}
	if r := c.Access(0x11F, false); r != Hit {
		t.Fatalf("post-fill access = %v, want hit", r)
	}
	if c.PendingMSHRs() != 0 {
		t.Error("MSHR not released")
	}
}

func TestMSHRStall(t *testing.T) {
	c := mk(t, 4096, 32, 4, 2)
	if c.Access(0x0, false) != Miss || c.Access(0x1000, false) != Miss {
		t.Fatal("setup misses failed")
	}
	if r := c.Access(0x2000, false); r != Stall {
		t.Fatalf("access with full MSHRs = %v, want stall", r)
	}
	if st := c.Stats(); st.Stalls != 1 {
		t.Errorf("stall counter = %d", st.Stalls)
	}
}

func TestLRUReplacement(t *testing.T) {
	// One set: 64 bytes, 32-byte lines, 2 ways.
	c := mk(t, 64, 32, 2, 8)
	fill := func(addr uint64) {
		if c.Access(addr, false) == Miss {
			c.Fill(addr, false)
		}
	}
	fill(0x000)
	fill(0x100)
	// Touch 0x000 so 0x100 becomes LRU.
	if c.Access(0x000, false) != Hit {
		t.Fatal("expected hit on 0x000")
	}
	fill(0x200) // evicts 0x100
	if !c.Probe(0x000) {
		t.Error("recently used line evicted")
	}
	if c.Probe(0x100) {
		t.Error("LRU line survived")
	}
	if !c.Probe(0x200) {
		t.Error("new line absent")
	}
}

func TestDirtyEvictionWriteback(t *testing.T) {
	c := mk(t, 64, 32, 2, 8)
	c.Access(0x000, true)
	c.Fill(0x000, true) // dirty line
	c.Access(0x100, false)
	c.Fill(0x100, false)
	c.Access(0x200, false)
	_, wb := c.Fill(0x200, false) // evicts dirty 0x000
	if !wb {
		t.Error("dirty eviction must report writeback")
	}
	if st := c.Stats(); st.Writebacks != 1 || st.Evictions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := mk(t, 64, 32, 2, 8)
	c.Access(0x000, false)
	c.Fill(0x000, false)
	if c.Access(0x010, true) != Hit {
		t.Fatal("write should hit")
	}
	if _, dirty := c.Invalidate(0x000); !dirty {
		t.Error("write hit did not mark line dirty")
	}
}

func TestInvalidate(t *testing.T) {
	c := mk(t, 64, 32, 2, 8)
	if p, _ := c.Invalidate(0x40); p {
		t.Error("invalidate of absent line reported present")
	}
	c.Access(0x40, false)
	c.Fill(0x40, false)
	if p, d := c.Invalidate(0x40); !p || d {
		t.Errorf("invalidate = %v/%v, want present/clean", p, d)
	}
	if c.Probe(0x40) {
		t.Error("line survived invalidate")
	}
}

func TestFillWithoutMSHRIsPreload(t *testing.T) {
	c := mk(t, 1024, 32, 2, 4)
	waiters, _ := c.Fill(0x500, false)
	if waiters != 0 {
		t.Errorf("preload fill reported %d waiters", waiters)
	}
	if c.Access(0x500, false) != Hit {
		t.Error("preload did not install line")
	}
}

func TestRefillResidentLineKeepsOneCopy(t *testing.T) {
	c := mk(t, 64, 32, 2, 8)
	c.Fill(0x0, false)
	c.Fill(0x0, true) // refresh, now dirty
	if p, d := c.Invalidate(0x0); !p || !d {
		t.Errorf("refresh fill lost dirtiness: %v/%v", p, d)
	}
	if c.Probe(0x0) {
		t.Error("duplicate copy present after invalidate")
	}
}

func TestResultString(t *testing.T) {
	for r, want := range map[Result]string{
		Hit: "hit", Miss: "miss", MissMerged: "miss-merged", Stall: "stall",
		Result(9): "Result(9)",
	} {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(r), got, want)
		}
	}
}

// Property: after Access(a) reports Miss and Fill(a), Access(a) hits, for
// arbitrary addresses; and line occupancy never exceeds ways per set.
func TestQuickFillThenHit(t *testing.T) {
	c := mk(t, 4096, 32, 4, 64)
	f := func(addr uint64) bool {
		switch c.Access(addr, false) {
		case Miss:
			c.Fill(addr, false)
		case Stall:
			return true // MSHR pressure from earlier iterations
		}
		return c.Access(addr, false) == Hit || c.PendingMSHRs() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: counters are consistent — hits+misses+merged+stalls equals the
// number of Access calls.
func TestQuickCounterConservation(t *testing.T) {
	c := mk(t, 2048, 32, 2, 4)
	calls := uint64(0)
	f := func(addr uint64, write bool) bool {
		r := c.Access(addr%8192, write)
		calls++
		if r == Miss {
			c.Fill(addr%8192, write)
		}
		st := c.Stats()
		return st.Hits+st.Misses+st.Merged+st.Stalls == calls
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
