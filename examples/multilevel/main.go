// Demonstrate the §5 multi-level channel: modulating the degree of memory
// coalescing (0/8/16/32 unique requests per warp) encodes two bits per
// timing slot, trading error rate for ~1.6x bandwidth.
//
//	go run ./examples/multilevel
package main

import (
	"fmt"
	"log"

	"gpunoc"
)

func run(cfg *gpunoc.Config, bits int, data []byte) {
	params, err := gpunoc.Calibrate(cfg, gpunoc.ChannelParams{
		Kind: gpunoc.TPCChannel, Iterations: 4, SyncPeriod: 16,
		BitsPerSymbol: bits, Seed: 9,
	})
	if err != nil {
		log.Fatalf("%d-bit calibration: %v", bits, err)
	}
	res, recovered, err := gpunoc.SendBytes(cfg, data, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d bit(s)/slot: %7.1f kbps, %5.2f%% symbol error, recovered %q\n",
		bits, res.BitsPerSecond/1e3, res.ErrorRate*100, recovered)
	if bits == 2 {
		fmt.Printf("  level thresholds: %.1f / %.1f / %.1f cycles\n",
			params.Thresholds[0], params.Thresholds[1], params.Thresholds[2])
	}
}

func main() {
	cfg := gpunoc.SmallConfig()
	data := []byte("4-level PAM over a NoC mux")
	run(&cfg, 1, data)
	run(&cfg, 2, data)
}
