package engine

import (
	"testing"

	"gpunoc/internal/config"
	"gpunoc/internal/device"
)

// TestEngineDeterminismSameConfig pins the engine-level determinism contract
// that gpunoc-lint guards statically: two GPUs built from the same
// config.Config (same Seed, jitters enabled so every noise source is
// exercised) must evolve identically — same partition stats and clock
// readings at every checkpoint over a few thousand cycles, and identical
// per-warp latency traces and kernel durations at the end.
func TestEngineDeterminismSameConfig(t *testing.T) {
	cfg := config.Small() // keeps the Volta jitters: noise must derive from Seed alone
	cfg.Seed = 42

	type instance struct {
		g     *GPU
		progs map[[2]int]*device.Streamer
		k     *Kernel
	}
	build := func() instance {
		g := mkGPU(t, cfg)
		preloadStreamers(g, 8)
		spec, progs := streamerKernel("det", 4, 2, 25, true, true, cfg.L2LineBytes)
		k, err := g.Launch(spec)
		if err != nil {
			t.Fatal(err)
		}
		return instance{g: g, progs: progs, k: k}
	}
	a, b := build(), build()

	const step, checkpoints = 250, 20 // 5000 cycles, compared in lockstep
	for i := 1; i <= checkpoints; i++ {
		a.g.RunFor(step)
		b.g.RunFor(step)
		if a.g.Now() != b.g.Now() {
			t.Fatalf("checkpoint %d: clocks diverged: %d vs %d", i, a.g.Now(), b.g.Now())
		}
		if a.g.Idle() != b.g.Idle() {
			t.Fatalf("cycle %d: idle state diverged", a.g.Now())
		}
		sa, sb := a.g.Partition().Stats(), b.g.Partition().Stats()
		if sa != sb {
			t.Fatalf("cycle %d: partition stats diverged: %+v vs %+v", a.g.Now(), sa, sb)
		}
		for sm := 0; sm < cfg.NumSMs(); sm++ {
			ca, cb := a.g.Clocks().Read(sm, a.g.Now()), b.g.Clocks().Read(sm, b.g.Now())
			if ca != cb {
				t.Fatalf("cycle %d: SM %d clock register diverged: %d vs %d", a.g.Now(), sm, ca, cb)
			}
		}
	}

	traced := 0
	for key, s := range a.progs {
		o, ok := b.progs[key]
		if !ok {
			t.Fatalf("warp %v missing from second run", key)
		}
		if len(s.Latencies) != len(o.Latencies) {
			t.Fatalf("warp %v: latency trace lengths diverged: %d vs %d",
				key, len(s.Latencies), len(o.Latencies))
		}
		for i := range s.Latencies {
			if s.Latencies[i] != o.Latencies[i] {
				t.Fatalf("warp %v: latency %d diverged: %d vs %d",
					key, i, s.Latencies[i], o.Latencies[i])
			}
		}
		traced += len(s.Latencies)
	}
	if traced == 0 {
		t.Fatal("no latencies recorded; the workload never exercised the memory path")
	}

	if a.k.Running() != b.k.Running() {
		t.Fatalf("kernel completion diverged: running=%v vs %v", a.k.Running(), b.k.Running())
	}
	if !a.k.Running() && a.k.Duration() != b.k.Duration() {
		t.Fatalf("kernel durations diverged: %d vs %d", a.k.Duration(), b.k.Duration())
	}
}
