package config

import (
	"testing"
	"testing/quick"
)

func TestVoltaValidates(t *testing.T) {
	c := Volta()
	if err := c.Validate(); err != nil {
		t.Fatalf("Volta config invalid: %v", err)
	}
	if c.NumSMs() != 80 {
		t.Errorf("NumSMs = %d, want 80", c.NumSMs())
	}
	if c.SlicesPerMC() != 2 {
		t.Errorf("SlicesPerMC = %d, want 2", c.SlicesPerMC())
	}
}

func TestSmallValidates(t *testing.T) {
	c := Small()
	if err := c.Validate(); err != nil {
		t.Fatalf("Small config invalid: %v", err)
	}
	if c.NumSMs() != 8 {
		t.Errorf("NumSMs = %d, want 8", c.NumSMs())
	}
}

func TestTPCOfSM(t *testing.T) {
	c := Volta()
	cases := []struct{ sm, tpc int }{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {78, 39}, {79, 39}}
	for _, cse := range cases {
		if got := c.TPCOfSM(cse.sm); got != cse.tpc {
			t.Errorf("TPCOfSM(%d) = %d, want %d", cse.sm, got, cse.tpc)
		}
	}
	sms := c.SMsOfTPC(3)
	if len(sms) != 2 || sms[0] != 6 || sms[1] != 7 {
		t.Errorf("SMsOfTPC(3) = %v", sms)
	}
}

// TestFig4Mapping checks the reverse-engineered TPC->GPC mapping of Fig 4:
// TPCs are interleaved across GPCs, but because GPC4 and GPC5 have only six
// TPCs each, the last TPCs spill: GPC5 = {5,11,17,23,29,39} (TPC35 missing,
// TPC39 present), as the paper reports.
func TestFig4Mapping(t *testing.T) {
	c := Volta()
	got := c.TPCsOfGPC(5)
	want := []int{5, 11, 17, 23, 29, 39}
	if len(got) != len(want) {
		t.Fatalf("GPC5 TPCs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GPC5 TPCs = %v, want %v", got, want)
		}
	}
	// GPC0 keeps a full interleave plus one spilled TPC.
	g0 := c.TPCsOfGPC(0)
	if len(g0) != 7 {
		t.Fatalf("GPC0 has %d TPCs, want 7: %v", len(g0), g0)
	}
	for _, tpc := range []int{0, 6, 12, 18, 24, 30} {
		if c.GPCOfTPC(tpc) != 0 {
			t.Errorf("GPCOfTPC(%d) = %d, want 0", tpc, c.GPCOfTPC(tpc))
		}
	}
}

func TestMappingIsPartition(t *testing.T) {
	for _, c := range []Config{Volta(), Small()} {
		seen := make(map[int]bool)
		for g := 0; g < c.NumGPCs; g++ {
			tpcs := c.TPCsOfGPC(g)
			if len(tpcs) != c.TPCsPerGPC()[g] {
				t.Errorf("%s: GPC%d has %d TPCs, want %d", c.Name, g, len(tpcs), c.TPCsPerGPC()[g])
			}
			for _, tpc := range tpcs {
				if seen[tpc] {
					t.Errorf("%s: TPC%d assigned twice", c.Name, tpc)
				}
				seen[tpc] = true
			}
		}
		if len(seen) != c.NumTPCs() {
			t.Errorf("%s: %d TPCs mapped, want %d", c.Name, len(seen), c.NumTPCs())
		}
	}
}

func TestGPCOfTPCOutOfRange(t *testing.T) {
	c := Volta()
	if c.GPCOfTPC(40) != -1 || c.GPCOfTPC(-1) != -1 {
		t.Error("out-of-range TPC should map to -1")
	}
}

func TestBitsPerSecond(t *testing.T) {
	c := Volta()
	// 1200 cycles per bit at 1200 MHz = 1 Mbps, the paper's single-TPC
	// channel operating point.
	got := c.BitsPerSecond(1, 1200)
	if got < 0.99e6 || got > 1.01e6 {
		t.Errorf("BitsPerSecond(1, 1200) = %v, want ~1e6", got)
	}
	if c.BitsPerSecond(10, 0) != 0 {
		t.Error("zero cycles must give zero rate")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"clock", func(c *Config) { c.CoreClockMHz = 0 }},
		{"simt", func(c *Config) { c.SIMTWidth = -1 }},
		{"gpcs", func(c *Config) { c.NumGPCs = 0 }},
		{"slots", func(c *Config) { c.MaxTPCsPerGPC = 0 }},
		{"disabledRange", func(c *Config) { c.DisabledTPCSlots = []int{42} }},
		{"disabledDup", func(c *Config) { c.DisabledTPCSlots = []int{3, 3} }},
		{"gpcEmpty", func(c *Config) { c.DisabledTPCSlots = []int{0, 6, 12, 18, 24, 30, 36} }},
		{"l2geom", func(c *Config) { c.L2LineBytes = 0 }},
		{"l2divide", func(c *Config) { c.L2SliceSizeBytes = 96*1024 + 7 }},
		{"mcdivide", func(c *Config) { c.NumMCs = 7 }},
		{"l2lat", func(c *Config) { c.L2HitLatency = 0 }},
		{"mshr", func(c *Config) { c.L2MSHRs = 0 }},
		{"dram", func(c *Config) { c.DRAM.TRC = 1 }},
		{"smlimits", func(c *Config) { c.MaxWarpsPerSM = 0 }},
		{"rate", func(c *Config) { c.NoC.GPCRepRateNum = 0 }},
		{"rateden", func(c *Config) { c.NoC.TPCReqRateDen = -1 }},
		{"flit", func(c *Config) { c.NoC.FlitSizeBytes = 0 }},
		{"crr", func(c *Config) { c.NoC.CRRHoldLimit = 0 }},
	}
	for _, m := range mutations {
		c := Volta()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %q should invalidate config", m.name)
		}
	}
}

func TestArbPolicyString(t *testing.T) {
	cases := map[ArbPolicy]string{
		ArbRR: "RR", ArbCRR: "CRR", ArbSRR: "SRR", ArbAge: "AGE", ArbFixed: "FIXED",
		ArbPolicy(99): "ArbPolicy(99)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}

// Property: for any valid SM id, SM -> TPC -> GPC stays in range and the SM
// is listed in its own TPC.
func TestQuickHierarchyConsistency(t *testing.T) {
	c := Volta()
	f := func(raw uint16) bool {
		sm := int(raw) % c.NumSMs()
		tpc := c.TPCOfSM(sm)
		if tpc < 0 || tpc >= c.NumTPCs() {
			return false
		}
		found := false
		for _, s := range c.SMsOfTPC(tpc) {
			if s == sm {
				found = true
			}
		}
		gpc := c.GPCOfSM(sm)
		return found && gpc >= 0 && gpc < c.NumGPCs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
