package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBytesToSymbolsBinary(t *testing.T) {
	syms, err := BytesToSymbols([]byte{0xA5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []Symbol{1, 0, 1, 0, 0, 1, 0, 1}
	if len(syms) != 8 {
		t.Fatalf("got %d symbols", len(syms))
	}
	for i := range want {
		if syms[i] != want[i] {
			t.Fatalf("symbols = %v, want %v", syms, want)
		}
	}
}

func TestBytesToSymbols2Bit(t *testing.T) {
	syms, err := BytesToSymbols([]byte{0x1B}, 2) // 00 01 10 11
	if err != nil {
		t.Fatal(err)
	}
	want := []Symbol{0, 1, 2, 3}
	for i := range want {
		if syms[i] != want[i] {
			t.Fatalf("symbols = %v, want %v", syms, want)
		}
	}
}

func TestSymbolsToBytesValidation(t *testing.T) {
	if _, err := BytesToSymbols([]byte{1}, 3); err == nil {
		t.Error("3 bits per symbol should fail (does not divide 8)")
	}
	if _, err := SymbolsToBytes([]Symbol{1, 0, 1}, 1); err == nil {
		t.Error("partial byte should fail")
	}
	if _, err := SymbolsToBytes([]Symbol{1}, 0); err == nil {
		t.Error("zero bits per symbol should fail")
	}
}

func TestAlternatingPayload(t *testing.T) {
	p := AlternatingPayload(6, 2)
	want := []Symbol{0, 1, 0, 1, 0, 1}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("payload = %v", p)
		}
	}
	p4 := AlternatingPayload(6, 4)
	want4 := []Symbol{0, 1, 2, 3, 0, 1}
	for i := range want4 {
		if p4[i] != want4[i] {
			t.Fatalf("payload = %v", p4)
		}
	}
}

func TestCountSymbolErrors(t *testing.T) {
	sent := []Symbol{0, 1, 1, 0}
	if n := CountSymbolErrors(sent, []Symbol{0, 1, 1, 0}); n != 0 {
		t.Errorf("identical streams: %d errors", n)
	}
	if n := CountSymbolErrors(sent, []Symbol{0, 0, 1, 1}); n != 2 {
		t.Errorf("two flips: %d errors", n)
	}
	if n := CountSymbolErrors(sent, []Symbol{0, 1}); n != 2 {
		t.Errorf("truncated stream: %d errors", n)
	}
}

// Property: bytes -> symbols -> bytes round-trips for both symbol widths.
func TestQuickSymbolRoundTrip(t *testing.T) {
	for _, bps := range []int{1, 2, 4, 8} {
		bps := bps
		f := func(data []byte) bool {
			syms, err := BytesToSymbols(data, bps)
			if err != nil {
				return false
			}
			back, err := SymbolsToBytes(syms, bps)
			if err != nil {
				return false
			}
			return bytes.Equal(data, back)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("bps=%d: %v", bps, err)
		}
	}
}
