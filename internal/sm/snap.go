// Checkpoint support for the SM: resident warps (including each warp's
// program, serialized through device.Checkpointable), the LSU pending ring
// and injection pacing, locally-completing L1 hits in flight, the jitter RNG
// position, counters, and the L1 cache. Wiring (clock bank, inject sink,
// probes) is rebuilt from configuration by the restoring side.
package sm

import (
	"fmt"

	"gpunoc/internal/device"
	"gpunoc/internal/packet"
	"gpunoc/internal/snap"
	"gpunoc/internal/warp"
)

// Snapshot appends the SM's mutable state to the encoder. It fails with a
// wrapped device.ErrNotCheckpointable if any resident warp runs a program
// that cannot be serialized (a StepFunc closure).
func (s *SM) Snapshot(e *snap.Encoder) error {
	e.Mark("sm")
	e.Int(s.id)
	e.Int(len(s.warps))
	for _, r := range s.warps {
		e.Bool(r != nil)
		if r == nil {
			continue
		}
		cp, ok := r.prog.(device.Checkpointable)
		if !ok {
			return fmt.Errorf("sm %d kernel %d block %d warp %d: %w",
				s.id, r.kernel, r.block, r.warpID, device.ErrNotCheckpointable)
		}
		e.String(cp.CheckpointID())
		cp.MarshalState(e)
		e.Int(r.kernel)
		e.Int(r.block)
		e.Int(r.warpID)
		e.Bool(r.started)
		e.Int(r.w.ID)
		e.Int(int(r.w.State))
		e.Int(r.w.Outstanding)
		e.U64(r.w.OpSeq)
		e.U64(r.w.OpStart)
		e.U64(r.w.WakeAt)
		e.U64(r.w.LastLatency)
	}
	e.Int(s.pending.Len())
	for i := 0; i < s.pending.Len(); i++ {
		packet.Encode(e, *s.pending.At(i))
	}
	e.Int(s.outstanding)
	e.U64(s.nextPktID)
	e.Int(s.rrNext)
	e.U64(s.nextInjectAt)
	e.U64(s.src.Draws())
	e.Int(s.l1Hits.Len())
	for i := 0; i < s.l1Hits.Len(); i++ {
		h := s.l1Hits.At(i)
		e.U64(h.at)
		e.Int(h.warp)
		e.U64(h.op)
	}
	e.U64(s.injected)
	e.U64(s.replies)
	e.U64(s.opsCompleted)
	s.l1.Snapshot(e)
	return nil
}

// Restore reads state written by Snapshot into an SM built from the same
// configuration. progs maps checkpoint ids to program factories; the factory
// may capture the instance it returns (the CLI does, to read per-warp clocks
// after the run). A snapshot naming a program id with no factory fails.
func (s *SM) Restore(d *snap.Decoder, progs map[string]func() device.Checkpointable) error {
	d.Expect("sm")
	if id := d.Int(); d.Err() == nil && id != s.id {
		return snap.Corruptf("snapshot of SM %d restored into SM %d", id, s.id)
	}
	n := d.Len()
	s.warps = make([]*resident, n)
	for i := 0; i < n; i++ {
		if !d.Bool() {
			continue
		}
		id := d.String()
		if d.Err() != nil {
			return d.Err()
		}
		factory, ok := progs[id]
		if !ok {
			return fmt.Errorf("sm %d: snapshot names program %q but RestoreOptions.Programs has no factory for it", s.id, id)
		}
		prog := factory()
		prog.UnmarshalState(d)
		r := &resident{prog: prog}
		r.kernel = d.Int()
		r.block = d.Int()
		r.warpID = d.Int()
		r.started = d.Bool()
		r.w.ID = d.Int()
		r.w.State = warp.State(d.Int())
		r.w.Outstanding = d.Int()
		r.w.OpSeq = d.U64()
		r.w.OpStart = d.U64()
		r.w.WakeAt = d.U64()
		r.w.LastLatency = d.U64()
		s.warps[i] = r
	}
	for s.pending.Len() > 0 {
		s.pending.Pop()
	}
	np := d.Len()
	for i := 0; i < np; i++ {
		s.pending.Push(packet.Decode(d))
	}
	s.outstanding = d.Int()
	s.nextPktID = d.U64()
	s.rrNext = d.Int()
	s.nextInjectAt = d.U64()
	s.src.SeekTo(d.U64())
	for s.l1Hits.Len() > 0 {
		s.l1Hits.Pop()
	}
	nh := d.Len()
	for i := 0; i < nh; i++ {
		var h l1Hit
		h.at = d.U64()
		h.warp = d.Int()
		h.op = d.U64()
		s.l1Hits.Push(h)
	}
	s.injected = d.U64()
	s.replies = d.U64()
	s.opsCompleted = d.U64()
	return s.l1.Restore(d)
}
