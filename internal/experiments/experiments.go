// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated GPU. Each Fig*/Table* function runs the
// corresponding workload and returns the same rows/series the paper
// reports, and registers itself (id, paper section, run/check functions) in
// the package Registry; cmd/ccbench and the bench harness at the repository
// root discover the full artifact set from there.
//
// The Runner fans registered experiments out over a bounded worker pool —
// the engine is single-goroutine, so parallelism lives across the
// independent engine instances each experiment builds. Per-experiment seeds
// derive from the suite seed and the experiment id (DeriveSeed), making
// Report output byte-identical at any worker count.
//
// Absolute numbers differ from the paper (the substrate is a calibrated
// simulator, not a V100), but each function documents the shape that must
// hold and Check* helpers assert it.
package experiments

import (
	"fmt"
	"strings"

	"gpunoc/internal/config"
	"gpunoc/internal/device"
	"gpunoc/internal/engine"
)

// Series is one named curve of an experiment figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is the regenerated data for one paper artifact.
type Figure struct {
	ID    string // "fig2", "table2", ...
	Title string
	// XLabel/YLabel mirror the paper's axes.
	XLabel, YLabel string
	Series         []Series
	// Rows holds table-style output (Table 1/2 and summaries).
	Header []string
	Rows   [][]string
	// Notes records deviations and observations.
	Notes []string
}

// Scale selects how much work each experiment does.
type Scale int

const (
	// Quick shrinks payloads/reps so the whole suite runs in seconds —
	// used by unit tests and -short benchmarks.
	Quick Scale = iota
	// Full approximates the paper's sample sizes.
	Full
)

// Options configures an experiment run.
type Options struct {
	Scale Scale
	Seed  int64
	// Metrics attaches a fresh probe.Registry to each experiment's Config
	// copy; the Runner snapshots it into Result.Metrics when the experiment
	// finishes. Instrumentation never influences simulation results, so
	// figures are identical with and without it.
	Metrics bool
	// Telemetry attaches a windowed telemetry sampler (DefaultWindowCycles,
	// with a paper-rate detector watching) to each experiment's Config copy,
	// creating a probe registry if Metrics did not already; the Runner
	// collects the stream into Result.TelemetryWindows/TelemetryEvents.
	// Like Metrics, it never influences simulation results.
	Telemetry bool
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) pick(quick, full int) int {
	if o.Scale == Full {
		return full
	}
	return quick
}

// addSeries appends a curve.
func (f *Figure) addSeries(name string, x, y []float64) {
	f.Series = append(f.Series, Series{Name: name, X: x, Y: y})
}

// note records an observation.
func (f *Figure) note(format string, args ...interface{}) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// seriesByName finds a series (tests use it).
func (f *Figure) seriesByName(name string) (Series, bool) {
	for _, s := range f.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// Render produces a plain-text rendering of the figure for reports.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.Header) > 0 {
		fmt.Fprintf(&b, "%s\n", strings.Join(f.Header, " | "))
		for _, row := range f.Rows {
			fmt.Fprintf(&b, "%s\n", strings.Join(row, " | "))
		}
	}
	for _, s := range f.Series {
		fmt.Fprintf(&b, "series %q (%s -> %s):\n", s.Name, f.XLabel, f.YLabel)
		for i := range s.X {
			fmt.Fprintf(&b, "  %10.3f  %12.4f\n", s.X[i], s.Y[i])
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// pairRunner runs the two-kernel contention micro-benchmarks shared by
// Fig 2/5/8/11: a measured workload on chosen SMs plus a contender workload,
// both built from the Algorithm 1 streamer.
type activation struct {
	sm    int
	ops   int
	warps int
	write bool
}

// runActivations launches one kernel whose blocks cover every SM; each
// activated SM runs its streamer, everyone else exits. It returns each
// activated SM's execution time (slowest warp) in cycles.
func runActivations(cfg *config.Config, acts []activation) (map[int]uint64, error) {
	bySM := map[int]activation{}
	maxWarps := 1
	for _, a := range acts {
		if a.sm < 0 || a.sm >= cfg.NumSMs() {
			return nil, fmt.Errorf("experiments: SM %d out of range", a.sm)
		}
		if _, dup := bySM[a.sm]; dup {
			return nil, fmt.Errorf("experiments: SM %d activated twice", a.sm)
		}
		if a.warps <= 0 {
			a.warps = 1
		}
		bySM[a.sm] = a
		if a.warps > maxWarps {
			maxWarps = a.warps
		}
	}
	g, err := engine.New(*cfg)
	if err != nil {
		return nil, err
	}
	const span = 8192
	g.Preload(0, uint64(cfg.NumSMs()*maxWarps)*span)

	type meter struct {
		active   bool
		started  bool
		start    uint64
		end      uint64
		sm       int
		inner    device.Streamer
		finished bool
	}
	var meters []*meter
	spec := device.KernelSpec{
		Name:          "contention",
		Blocks:        cfg.NumSMs(),
		WarpsPerBlock: maxWarps,
		New: func(b, w int) device.Program {
			m := &meter{}
			meters = append(meters, m)
			return device.StepFunc(func(ctx *device.Ctx) device.Op {
				if !m.started {
					m.started = true
					a, ok := bySM[ctx.SMID]
					if !ok || w >= a.warps || a.ops <= 0 {
						return device.Done()
					}
					m.active = true
					m.sm = ctx.SMID
					m.start = ctx.Clock64
					m.inner = device.Streamer{
						Base:        uint64(ctx.SMID*maxWarps+w) * span,
						LineBytes:   cfg.L2LineBytes,
						Write:       a.write,
						Count:       a.ops,
						Uncoalesced: true,
						WrapBytes:   span / 2,
					}
				}
				if !m.active {
					return device.Done()
				}
				op := m.inner.Step(ctx)
				if op.Kind == device.OpDone && !m.finished {
					m.finished = true
					m.end = ctx.Clock64
				}
				return op
			})
		},
	}
	if _, err := g.Launch(spec); err != nil {
		return nil, err
	}
	if err := g.RunKernels(100_000_000); err != nil {
		return nil, err
	}
	out := map[int]uint64{}
	for _, m := range meters {
		if m.active && m.finished {
			if d := m.end - m.start; d > out[m.sm] {
				out[m.sm] = d
			}
		}
	}
	return out, nil
}

// soloTime measures one SM running the streamer alone (the normalization
// baseline of the contention figures).
func soloTime(cfg *config.Config, sm, ops, warps int, write bool) (uint64, error) {
	times, err := runActivations(cfg, []activation{{sm: sm, ops: ops, warps: warps, write: write}})
	if err != nil {
		return 0, err
	}
	t := times[sm]
	if t == 0 {
		return 0, fmt.Errorf("experiments: no solo measurement for SM %d", sm)
	}
	return t, nil
}

// CSV renders the figure's series (or table rows) as CSV for plotting. Series
// figures emit long-format rows: series,x,y. Table figures emit the header
// and rows verbatim.
func (f *Figure) CSV() string {
	var b strings.Builder
	if len(f.Rows) > 0 {
		fmt.Fprintf(&b, "%s\n", strings.Join(csvEscape(f.Header), ","))
		for _, row := range f.Rows {
			fmt.Fprintf(&b, "%s\n", strings.Join(csvEscape(row), ","))
		}
		return b.String()
	}
	fmt.Fprintf(&b, "series,%s,%s\n", csvField(f.XLabel), csvField(f.YLabel))
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,%g,%g\n", csvField(s.Name), s.X[i], s.Y[i])
		}
	}
	return b.String()
}

func csvEscape(fields []string) []string {
	out := make([]string, len(fields))
	for i, f := range fields {
		out[i] = csvField(f)
	}
	return out
}

func csvField(f string) string {
	if strings.ContainsAny(f, ",\"\n") {
		return `"` + strings.ReplaceAll(f, `"`, `""`) + `"`
	}
	return f
}
