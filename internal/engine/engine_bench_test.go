package engine

import (
	"testing"

	"gpunoc/internal/config"
	"gpunoc/internal/probe"
	"gpunoc/internal/telemetry"
)

// BenchmarkEngineTick measures the per-cycle cost of the engine on the full
// Volta topology (80 SMs, 48 slices) in the regimes the two schedulers
// target. The activity scheduler owns the sparse end: a completely idle
// device (fast-forwarded in O(1)) and a workload keeping 2 of 80 SMs busy.
// The sharded parallel engine owns the dense end: all 80 SMs streaming at
// once, measured sequentially and at 8 workers. The parallel number only
// moves on a multi-core host — on a single-core machine the worker pool
// degenerates to the coordinator draining its own queue, which is why the
// 8-worker baseline entry is not gated (see BENCH_tick.json).
func BenchmarkEngineTick(b *testing.B) {
	mk := func(b *testing.B, workers int) *GPU {
		cfg := config.Volta()
		cfg.WarpIssueJitter = 0
		cfg.L2ServiceJitter = 0
		cfg.EngineWorkers = workers
		g, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(g.Close)
		return g
	}
	saturate := func(b *testing.B, g *GPU) {
		n := g.Config().NumSMs()
		preloadStreamers(g, n)
		spec, _ := streamerKernel("bench", n, 1, 1<<30, true, false, g.Config().L2LineBytes)
		if _, err := g.Launch(spec); err != nil {
			b.Fatal(err)
		}
		g.RunFor(10_000) // past dispatch jitter and into steady state
	}

	b.Run("idle", func(b *testing.B) {
		g := mk(b, 1)
		b.ResetTimer()
		g.RunFor(uint64(b.N))
	})

	b.Run("sparse-2sm", func(b *testing.B) {
		g := mk(b, 1)
		preloadStreamers(g, 2)
		spec, _ := streamerKernel("bench", 2, 1, 1<<30, true, false, g.Config().L2LineBytes)
		if _, err := g.Launch(spec); err != nil {
			b.Fatal(err)
		}
		g.RunFor(10_000) // past dispatch jitter and into steady state
		b.ResetTimer()
		g.RunFor(uint64(b.N))
	})

	// The sparse workload again with full observability attached: a probe
	// registry plus a windowed telemetry sampler feeding the covert-channel
	// detector. The delta against sparse-2sm prices the whole telemetry
	// stack — per-cycle probe updates dominate; the sampler itself runs once
	// per window from the RunFor boundary, off the per-cycle path.
	b.Run("sparse-telemetry", func(b *testing.B) {
		cfg := config.Volta()
		cfg.WarpIssueJitter = 0
		cfg.L2ServiceJitter = 0
		cfg.EngineWorkers = 1
		cfg.Probes = probe.NewRegistry()
		cfg.Telemetry = telemetry.NewSampler(telemetry.DefaultWindowCycles,
			telemetry.NewDetector(telemetry.DetectorConfig{}))
		g, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(g.Close)
		preloadStreamers(g, 2)
		spec, _ := streamerKernel("bench", 2, 1, 1<<30, true, false, g.Config().L2LineBytes)
		if _, err := g.Launch(spec); err != nil {
			b.Fatal(err)
		}
		g.RunFor(10_000) // past dispatch jitter and into steady state
		b.ResetTimer()
		g.RunFor(uint64(b.N))
	})

	b.Run("saturated", func(b *testing.B) {
		g := mk(b, 1)
		saturate(b, g)
		b.ResetTimer()
		g.RunFor(uint64(b.N))
	})

	b.Run("saturated-workers8", func(b *testing.B) {
		g := mk(b, 8)
		if g.Workers() < 2 {
			b.Fatalf("parallel engine did not engage (workers=%d)", g.Workers())
		}
		saturate(b, g)
		b.ResetTimer()
		g.RunFor(uint64(b.N))
	})
}

// BenchmarkSnapshotRestore prices the checkpoint round trip on the full
// Volta topology with every SM streaming mid-flight — the worst case for
// state volume. "snapshot" is the pure serialization cost (the engine keeps
// running afterwards, so this is also the pause a periodic checkpointer
// imposes); "restore" includes building a fresh engine and loading the blob
// into it, the cold-start path the checkpoint-reuse CI job exercises. Gated
// against BENCH_tick.json's snapshot_restore_ns_per_op entries.
func BenchmarkSnapshotRestore(b *testing.B) {
	cfg := config.Volta()
	cfg.WarpIssueJitter = 0
	cfg.L2ServiceJitter = 0
	cfg.EngineWorkers = 1
	g, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(g.Close)
	n := g.Config().NumSMs()
	preloadStreamers(g, n)
	spec, _ := streamerKernel("bench", n, 1, 1<<30, true, false, g.Config().L2LineBytes)
	if _, err := g.Launch(spec); err != nil {
		b.Fatal(err)
	}
	g.RunFor(10_000) // past dispatch jitter and into steady state

	blob, err := g.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("snapshot size: %d bytes", len(blob))

	b.Run("snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := g.Snapshot(); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("restore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := Restore(cfg, blob, RestoreOptions{})
			if err != nil {
				b.Fatal(err)
			}
			r.Close()
		}
	})
}
