package lint

import (
	"encoding/json"
	"go/token"
	"path/filepath"
	"testing"
)

// TestSARIF pins the shape GitHub code scanning consumes: version 2.1.0, a
// rule entry per analyzer plus the "lint" pseudo-rule, warning-level results,
// and module-root-relative forward-slash URIs.
func TestSARIF(t *testing.T) {
	root := filepath.Join(string(filepath.Separator), "mod")
	diags := []Diagnostic{
		{Pos: token.Position{Filename: filepath.Join(root, "internal", "noc", "noc.go"), Line: 12},
			Rule: "shardsafety", Msg: "cross-shard write"},
		{Pos: token.Position{Filename: "internal/link/link.go", Line: 3},
			Rule: "hotalloc", Msg: "make on the tick path"},
	}
	out, err := SARIF(diags, Analyzers(), root)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "gpunoc-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"shardsafety", "hotalloc", "layering", "lint"} {
		if !ruleIDs[want] {
			t.Errorf("rule table is missing %q", want)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "shardsafety" || first.Level != "warning" {
		t.Errorf("result 0: ruleId=%q level=%q", first.RuleID, first.Level)
	}
	if uri := first.Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "internal/noc/noc.go" {
		t.Errorf("absolute filename not relativized: uri = %q", uri)
	}
	if line := first.Locations[0].PhysicalLocation.Region.StartLine; line != 12 {
		t.Errorf("startLine = %d, want 12", line)
	}
	if uri := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "internal/link/link.go" {
		t.Errorf("relative filename mangled: uri = %q", uri)
	}
}
