// Package app is the call-graph unit-test fixture: each function below
// exercises one edge source (static, CHA, field-sensitive indirect,
// signature-bucket indirect, param-to-field flow, direct literal invocation).
package app

// Ticker is dispatched through CHA.
type Ticker interface{ Tick() }

// Dev implements Ticker.
type Dev struct{ n int }

// Tick advances the device.
func (d *Dev) Tick() { d.n++ }

// Holder carries func-typed fields with different store shapes.
type Holder struct {
	cb   func(int)
	wake func()
}

// SetWake is the param-to-field pattern: the field's values are whatever the
// call sites pass.
func (h *Holder) SetWake(w func()) { h.wake = w }

func helper(x int) int { return x + 1 }

func coldFn(x int) int { return x * 2 }

func stored(int) {}

func taken(int) {}

func pick() func(int) { return taken }

// Root only makes field-resolvable indirect calls and a CHA dispatch.
func Root() {
	h := &Holder{cb: stored}
	h.SetWake(func() { _ = helper(1) })
	h.cb(1)
	h.wake()
	var t Ticker = &Dev{}
	t.Tick()
}

// Indirect makes a signature-bucket call and a direct literal invocation.
func Indirect() {
	f := pick()
	f(2)
	func() { _ = 1 }()
}
