// Package loading for the analyzers: a small, stdlib-only replacement for
// golang.org/x/tools/go/packages. The loader walks a module tree, parses
// every package (tests and testdata excluded), and type-checks bottom-up in
// import order — module-local imports resolve to the freshly checked
// packages, everything else falls back to a source-level stdlib importer.
// Type information is best-effort: analyzers keep working (on syntax alone)
// for packages that fail to check, since `go build` guards compilability.

package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed, and (best-effort) type-checked package.
type Package struct {
	Module string // module path, e.g. "gpunoc"
	Path   string // import path, e.g. "gpunoc/internal/noc"
	Rel    string // module-relative dir, "" for the module root package
	Dir    string // absolute directory

	Fset  *token.FileSet
	Files []*ast.File

	Types      *types.Package // nil if type-checking was impossible
	Info       *types.Info
	TypeErrors []error

	localImports []string // module-relative paths this package imports
}

// Loader loads the packages of one module tree rooted at Dir. It never reads
// go.mod: ModulePath is supplied by the caller, which lets the fixture tests
// load testdata trees as if they were the real module.
type Loader struct {
	ModulePath string
	Dir        string
}

// Load discovers every package under the module root, type-checks all of
// them in dependency order, and returns the ones matching patterns (each a
// module-relative dir, "." for the root package, or a "dir/..." prefix;
// "./..." selects everything). Dependencies of a matched package are always
// loaded so type information is complete, but only matches are returned.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	root, err := filepath.Abs(l.Dir)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root {
			name := d.Name()
			if name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	byRel := make(map[string]*Package)
	for _, dir := range dirs {
		pkg, err := l.parseDir(fset, root, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			byRel[pkg.Rel] = pkg
		}
	}

	l.typeCheck(fset, byRel)

	var out []*Package
	for rel, pkg := range byRel {
		if matchPatterns(rel, patterns) {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rel < out[j].Rel })
	return out, nil
}

// parseDir parses the non-test Go files of one directory, returning nil when
// the directory holds no buildable Go source.
func (l *Loader) parseDir(fset *token.FileSet, root, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		rel = ""
	}
	rel = filepath.ToSlash(rel)

	pkg := &Package{
		Module: l.ModulePath,
		Path:   joinImportPath(l.ModulePath, rel),
		Rel:    rel,
		Dir:    dir,
		Fset:   fset,
	}
	seen := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(dir, name), err)
		}
		pkg.Files = append(pkg.Files, f)
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if irel, ok := moduleRel(l.ModulePath, path); ok && !seen[irel] {
				seen[irel] = true
				pkg.localImports = append(pkg.localImports, irel)
			}
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	sort.Strings(pkg.localImports)
	return pkg, nil
}

// typeCheck checks every package bottom-up in local-import order. Failures
// (including import cycles, which a layering violation could introduce) are
// recorded on the package and never abort the load.
func (l *Loader) typeCheck(fset *token.FileSet, byRel map[string]*Package) {
	res := &resolver{
		module: l.ModulePath,
		byRel:  byRel,
		std:    importer.ForCompiler(fset, "source", nil),
	}
	state := make(map[string]int) // 0 unvisited, 1 in progress, 2 done
	var visit func(rel string)
	visit = func(rel string) {
		pkg := byRel[rel]
		if pkg == nil || state[rel] == 2 {
			return
		}
		if state[rel] == 1 {
			pkg.TypeErrors = append(pkg.TypeErrors,
				fmt.Errorf("lint: import cycle through %s", pkg.Path))
			return
		}
		state[rel] = 1
		for _, dep := range pkg.localImports {
			if dep != rel {
				visit(dep)
			}
		}
		l.checkOne(fset, res, pkg)
		state[rel] = 2
	}
	rels := make([]string, 0, len(byRel))
	for rel := range byRel {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		visit(rel)
	}
}

func (l *Loader) checkOne(fset *token.FileSet, res *resolver, pkg *Package) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: res,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
}

// resolver routes module-local import paths to the loader's own checked
// packages and everything else to the stdlib source importer.
type resolver struct {
	module string
	byRel  map[string]*Package
	std    types.Importer
}

func (r *resolver) Import(path string) (*types.Package, error) {
	if rel, ok := moduleRel(r.module, path); ok {
		pkg := r.byRel[rel]
		if pkg == nil || pkg.Types == nil {
			return nil, fmt.Errorf("lint: module package %q not loaded", path)
		}
		return pkg.Types, nil
	}
	return r.std.Import(path)
}

// moduleRel reports whether path is inside module, returning the
// module-relative form ("" for the module root package).
func moduleRel(module, path string) (string, bool) {
	if path == module {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, module+"/"); ok {
		return rest, true
	}
	return "", false
}

func joinImportPath(module, rel string) string {
	if rel == "" {
		return module
	}
	return module + "/" + rel
}

// matchPatterns reports whether module-relative dir rel is selected. An empty
// pattern list selects nothing; the driver defaults to "./...".
func matchPatterns(rel string, patterns []string) bool {
	for _, p := range patterns {
		p = strings.TrimPrefix(filepath.ToSlash(p), "./")
		switch {
		case p == "..." || p == "":
			return true
		case p == ".":
			if rel == "" {
				return true
			}
		case strings.HasSuffix(p, "/..."):
			prefix := strings.TrimSuffix(p, "/...")
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
		default:
			if rel == strings.TrimSuffix(p, "/") {
				return true
			}
		}
	}
	return false
}

// Qualifier resolves sel.X as a package qualifier, returning the imported
// package's path. It prefers exact go/types resolution and falls back to the
// file's import table when type information is unavailable.
func (p *Package) Qualifier(file *ast.File, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if p.Info != nil {
		if obj, ok := p.Info.Uses[id]; ok {
			pn, ok := obj.(*types.PkgName)
			if !ok {
				return "", false
			}
			return pn.Imported().Path(), true
		}
	}
	// Syntactic fallback: match the identifier against the file's imports.
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		} else {
			name = path[strings.LastIndex(path, "/")+1:]
		}
		if name == id.Name {
			return path, true
		}
	}
	return "", false
}
