// The content-addressed result cache. A completed experiment run is stored
// as one JSON file named by the SHA-256 of its cache key; a later run with
// the same key is served from the file without simulating. Because every
// field of a Result the Report/metrics/telemetry renderers consume is plain
// JSON (float64/uint64 round-trip exactly through encoding/json), a warm
// run renders byte-identically to the cold run that populated the cache.
// Worker knobs (Runner.Parallel, Config.EngineWorkers) are deliberately
// absent from the key — results are identical at every worker count, which
// is exactly what the determinism CI pins.
package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"gpunoc/internal/config"
	"gpunoc/internal/probe"
	"gpunoc/internal/telemetry"
)

// CacheKey identifies one experiment result. Two runs with equal keys
// produce byte-identical reports, metrics, and telemetry streams.
type CacheKey struct {
	// ConfigHash is config.Config.Hash() of the suite's base configuration
	// with the Seed zeroed — the seed travels separately in Seed, and
	// observer/worker knobs are excluded by Hash itself.
	ConfigHash uint64 `json:"config_hash"`
	// ConfigName is the human-readable configuration name ("small",
	// "volta"); informational, but part of the key so listings stay
	// readable and hash collisions across named configs are impossible.
	ConfigName string `json:"config_name"`
	// Seed is the suite seed (per-experiment seeds derive from it and the
	// experiment id).
	Seed int64 `json:"seed"`
	// Experiment is the registry id ("fig2", "table2", ...).
	Experiment string `json:"experiment"`
	// Scale names the Options.Scale ("quick" or "full").
	Scale string `json:"scale"`
	// Metrics and Telemetry record which observer streams the run
	// collected; a cached figure-only run cannot serve a metrics request.
	Metrics   bool `json:"metrics"`
	Telemetry bool `json:"telemetry"`
}

// NewCacheKey builds the key the Runner uses for one experiment run: cfg is
// the suite's base configuration (hashed with the seed zeroed), configName
// its human-readable name, opt the suite options, and experiment the
// registry id. Callers outside the Runner (the simulation server) use it so
// their keys address exactly the entries the Runner reads and writes.
func NewCacheKey(cfg *config.Config, configName string, opt Options, experiment string) CacheKey {
	return CacheKey{
		ConfigHash: cacheConfigHash(cfg),
		ConfigName: configName,
		Seed:       opt.seed(),
		Experiment: experiment,
		Scale:      scaleName(opt.Scale),
		Metrics:    opt.Metrics,
		Telemetry:  opt.Telemetry,
	}
}

// ID returns the content address: the hex SHA-256 of the key's canonical
// JSON encoding (struct field order is fixed, so the encoding is canonical).
func (k CacheKey) ID() string {
	b, err := json.Marshal(k)
	if err != nil {
		// A struct of scalars cannot fail to marshal.
		panic(fmt.Sprintf("experiments: marshal cache key: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// scaleName renders an Options.Scale for cache keys.
func scaleName(s Scale) string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// cacheConfigHash hashes cfg for a cache key: the seed is zeroed because it
// is carried (as the suite seed) in the key itself.
func cacheConfigHash(cfg *config.Config) uint64 {
	c := *cfg
	c.Seed = 0
	return c.Hash()
}

// Entry is one cached experiment result: everything the report, metrics,
// and telemetry renderers need to reproduce the cold run's output.
type Entry struct {
	Key              CacheKey           `json:"key"`
	Figure           *Figure            `json:"figure"`
	Cycles           uint64             `json:"cycles"`
	Metrics          probe.Snapshot     `json:"metrics"`
	TelemetryWindows []telemetry.Window `json:"telemetry_windows,omitempty"`
	TelemetryEvents  []telemetry.Event  `json:"telemetry_events,omitempty"`
}

// Cache is a directory of content-addressed experiment results. The zero
// value (empty Dir) is disabled. Safe for concurrent use by independent
// processes: entries are written atomically via rename, and a torn or
// corrupt file reads as a miss, never an error that fails the run.
type Cache struct {
	// Dir is the cache directory, created on first Put.
	Dir string
}

// path returns the entry file for key k.
func (c *Cache) path(k CacheKey) string {
	return filepath.Join(c.Dir, k.ID()+".json")
}

// Get looks k up, reporting (entry, true) on a hit. A missing, unreadable,
// or mismatched file is a miss.
func (c *Cache) Get(k CacheKey) (*Entry, bool) {
	if c == nil || c.Dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(c.path(k))
	if err != nil {
		return nil, false
	}
	var ent Entry
	if err := json.Unmarshal(b, &ent); err != nil || ent.Key != k {
		return nil, false
	}
	return &ent, true
}

// Put stores ent, atomically (write to a temp file, then rename).
func (c *Cache) Put(ent *Entry) error {
	if c == nil || c.Dir == "" {
		return nil
	}
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(ent, "", " ")
	if err != nil {
		return err
	}
	dst := c.path(ent.Key)
	tmp, err := os.CreateTemp(c.Dir, "put-*.tmp")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, dst); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
