// Package packet defines the memory-request and reply packets that travel
// through the simulated on-chip network, including their flit sizing. The
// asymmetry in flit counts (write requests and read replies carry data, read
// requests and write acks do not) is what makes write traffic contend on the
// request path and read traffic contend on the reply path — the effect the
// paper exploits for the TPC and GPC covert channels (§3.4).
package packet

import "fmt"

// Kind identifies the packet type.
type Kind uint8

const (
	// ReadReq is an L2 read request (address only, 1 flit).
	ReadReq Kind = iota
	// WriteReq is an L2 write request carrying a cache line of data.
	WriteReq
	// ReadReply carries the requested cache line back to the SM.
	ReadReply
	// WriteReply is the write acknowledgment (1 flit).
	WriteReply
	// AtomicReq is a read-modify-write performed at the L2 slice; used by
	// the global-memory baseline covert channel (Table 2).
	AtomicReq
	// AtomicReply returns the pre-image of an atomic (1 data flit).
	AtomicReply
)

// String returns a short mnemonic for logging and tests.
func (k Kind) String() string {
	switch k {
	case ReadReq:
		return "RD"
	case WriteReq:
		return "WR"
	case ReadReply:
		return "RDACK"
	case WriteReply:
		return "WRACK"
	case AtomicReq:
		return "ATOM"
	case AtomicReply:
		return "ATOMACK"
	default:
		//lint:allow hotalloc debug-only default arm for an unknown kind
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsRequest reports whether the packet travels on the request subnet
// (SM -> L2) rather than the reply subnet.
func (k Kind) IsRequest() bool {
	return k == ReadReq || k == WriteReq || k == AtomicReq
}

// Flit counts per packet type. A 32-byte sector plus header spans
// DataFlits 40-byte flits; control packets are a single flit.
const (
	CtrlFlits = 1
	DataFlits = 4
)

// FlitsFor returns the number of flits a packet of the given kind occupies
// on a link.
func FlitsFor(k Kind) int {
	switch k {
	case WriteReq, ReadReply:
		return DataFlits
	case AtomicReq, AtomicReply:
		return 2 * CtrlFlits // address + operand / pre-image
	default:
		return CtrlFlits
	}
}

// WarpTag identifies the (SM, warp, memory operation) a request belongs to,
// so that replies can be matched and coarse-grain (per-warp) arbitration can
// group packets.
type WarpTag struct {
	SM   int
	Warp int
	Op   uint64 // per-warp monotonically increasing memory-op sequence
}

// Packet is one NoC packet. Packets are allocated by the SM load/store unit
// and threaded through links by pointer; the struct is never copied after
// issue, so latency stamps stay consistent.
type Packet struct {
	ID   uint64
	Kind Kind
	Tag  WarpTag

	Addr  uint64 // byte address (line-aligned by the coalescer)
	Slice int    // destination L2 slice (request) or source slice (reply)

	SrcSM int // issuing SM

	// SrcDev and DstDev identify the issuing and owning GPU of a cross-GPU
	// packet in a multi-device mesh (internal/mesh). Both are zero for all
	// single-GPU traffic, so a standalone engine never observes them. A
	// request is stamped at NVLink egress; its reply keeps the request's
	// values, so the mesh routes replies back by SrcDev.
	SrcDev int
	DstDev int

	// Timestamps (cycles) for latency accounting and age-based arbitration.
	IssueCycle   uint64 // when the LSU injected the packet
	SliceCycle   uint64 // when the L2 slice finished servicing it
	DeliverCycle uint64 // when the final hop delivered it

	// BypassL1 marks probe traffic compiled with -dlcm=cg (§4.2).
	BypassL1 bool
}

// Flits returns the serialization length of the packet on a link.
func (p *Packet) Flits() int { return FlitsFor(p.Kind) }

// ReplyKind maps a request kind to the kind of its reply.
func ReplyKind(k Kind) (Kind, error) {
	switch k {
	case ReadReq:
		return ReadReply, nil
	case WriteReq:
		return WriteReply, nil
	case AtomicReq:
		return AtomicReply, nil
	default:
		//lint:allow hotalloc error path, never taken by a valid request
		return 0, fmt.Errorf("packet: %v is not a request kind", k)
	}
}

// String renders a compact description for debugging.
func (p *Packet) String() string {
	return fmt.Sprintf("%v#%d sm%d w%d op%d addr=%#x slice=%d",
		p.Kind, p.ID, p.Tag.SM, p.Tag.Warp, p.Tag.Op, p.Addr, p.Slice)
}
