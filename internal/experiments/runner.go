// The parallel experiment Runner. Every experiment builds its own engine
// instances, and the engine is strictly single-goroutine (see the note on
// link.Link), so the suite parallelizes across experiments: a bounded worker
// pool, one private Config copy and derived seed per experiment, and results
// collected back into registry order so reports are byte-identical at any
// worker count.

package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"gpunoc/internal/config"
	"gpunoc/internal/probe"
	"gpunoc/internal/telemetry"
)

// Result is the structured outcome of one experiment run.
type Result struct {
	// Experiment is the registry entry that produced this result.
	Experiment Experiment
	// Seed is the derived per-experiment seed (DeriveSeed of the suite
	// seed and the experiment id).
	Seed int64
	// Figure is the regenerated artifact (nil when Err is set).
	Figure *Figure
	// Err is the run error, or the Check failure when the Runner ran in
	// Check mode.
	Err error
	// Wall is the host wall-clock time the experiment took.
	Wall time.Duration
	// Cycles is the total number of simulated GPU cycles the experiment
	// executed, summed over every engine instance it built.
	Cycles uint64
	// Metrics is the probe snapshot taken when the experiment finished
	// (zero unless Options.Metrics was set). Every engine the experiment
	// built shares one registry, so same-name metrics accumulate across
	// engine instances; the snapshot is deterministic at any Parallel
	// setting because each experiment owns a private registry.
	Metrics probe.Snapshot
	// TelemetryWindows is the windowed telemetry stream of the experiment's
	// engines and TelemetryEvents the accompanying detector events (empty
	// unless Options.Telemetry was set). Both are deterministic at any
	// Parallel setting: each experiment owns a private sampler fed only by
	// the engines it builds. An experiment that attaches its own sampler to
	// a Config copy (the detection experiments do) bypasses the
	// runner-level stream for those runs.
	TelemetryWindows []telemetry.Window
	// TelemetryEvents holds the runner-level detector's events; see
	// TelemetryWindows.
	TelemetryEvents []telemetry.Event
	// Cached reports that the result was served from the Runner's result
	// cache without simulating (Cycles then reports the cold run's count).
	Cached bool
}

// Runner fans experiments out over a bounded worker pool. The zero value
// runs every experiment in the default registry sequentially at Quick scale.
type Runner struct {
	// Registry supplies the experiments; nil means the package default.
	Registry *Registry
	// Parallel bounds the worker pool; values < 1 mean GOMAXPROCS.
	Parallel int
	// Options is the suite-wide configuration. Options.Seed is the
	// *suite* seed: each experiment runs with DeriveSeed(suite, id), so
	// results do not depend on which other experiments run or in what
	// order.
	Options Options
	// Check also applies each experiment's Check function, folding a
	// failure into Result.Err. Check is re-applied to cache hits, so a
	// cached figure that no longer satisfies its invariant still fails.
	Check bool
	// Cache, when non-nil with a directory set, serves repeated
	// (config, seed, experiment, scale) runs from disk and stores fresh
	// successful results. Failures are never cached.
	Cache *Cache
	// ConfigName names the base configuration in cache keys ("small",
	// "volta"); informational but part of the key.
	ConfigName string
	// OnMeter, when set, is called at the start of each experiment run
	// (from the worker goroutine) with the experiment id and its private
	// cycle meter, which the caller may poll concurrently for progress.
	// It is not called for cache hits.
	OnMeter func(id string, meter *config.CycleMeter)
}

// Run executes the experiments named by ids (every registered experiment
// when ids is empty) against cfg and returns their results in registry
// order, regardless of completion order. cfg is copied per experiment — the
// copy gets the derived seed and a private cycle meter — so the caller's
// value is never mutated and experiments never share mutable state. The only
// error Run itself returns is an unknown id; per-experiment failures are
// reported in Result.Err so one failing artifact does not hide the rest.
func (r *Runner) Run(cfg *config.Config, ids []string) ([]Result, error) {
	reg := r.Registry
	if reg == nil {
		reg = defaultRegistry
	}
	var exps []Experiment
	if len(ids) == 0 {
		exps = reg.Experiments()
	} else {
		for _, id := range ids {
			e, ok := reg.Get(id)
			if !ok {
				return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)",
					id, strings.Join(reg.IDs(), ", "))
			}
			exps = append(exps, e)
		}
		sort.SliceStable(exps, func(i, j int) bool {
			if exps[i].Order != exps[j].Order {
				return exps[i].Order < exps[j].Order
			}
			return exps[i].ID < exps[j].ID
		})
	}

	workers := r.Parallel
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]Result, len(exps))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = r.runOne(cfg, exps[i])
			}
		}()
	}
	for i := range exps {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, nil
}

// runOne executes a single experiment with its own Config copy, derived
// seed, and cycle meter.
func (r *Runner) runOne(cfg *config.Config, e Experiment) Result {
	seed := DeriveSeed(r.Options.seed(), e.ID)
	key := NewCacheKey(cfg, r.ConfigName, r.Options, e.ID)
	if ent, ok := r.Cache.Get(key); ok {
		res := Result{
			Experiment:       e,
			Seed:             seed,
			Figure:           ent.Figure,
			Cycles:           ent.Cycles,
			Metrics:          ent.Metrics,
			TelemetryWindows: ent.TelemetryWindows,
			TelemetryEvents:  ent.TelemetryEvents,
			Cached:           true,
		}
		if r.Check && e.Check != nil {
			cc := *cfg
			cc.Seed = seed
			if cerr := e.Check(&cc, ent.Figure); cerr != nil {
				res.Err = fmt.Errorf("check failed on cached result: %w", cerr)
			}
		}
		return res
	}
	c := *cfg
	c.Seed = seed
	c.Meter = &config.CycleMeter{}
	if r.OnMeter != nil {
		r.OnMeter(e.ID, c.Meter)
	}
	if r.Options.Metrics {
		c.Probes = probe.NewRegistry()
	}
	var telRec *telemetry.Recorder
	var telDet *telemetry.Detector
	if r.Options.Telemetry {
		if c.Probes == nil {
			c.Probes = probe.NewRegistry()
		}
		telRec = &telemetry.Recorder{}
		telDet = telemetry.NewDetector(telemetry.DetectorConfig{})
		c.Telemetry = telemetry.NewSampler(0, telRec, telDet)
	}

	opt := r.Options
	opt.Seed = seed

	start := time.Now() //lint:allow determinism wall time feeds the stderr Summary only, never the deterministic Report
	f, err := e.Run(&c, opt)
	if err == nil && r.Check && e.Check != nil {
		if cerr := e.Check(&c, f); cerr != nil {
			err = fmt.Errorf("check failed: %w", cerr)
		}
	}
	res := Result{
		Experiment: e,
		Seed:       seed,
		Figure:     f,
		Err:        err,
		Wall:       time.Since(start), //lint:allow determinism wall time feeds the stderr Summary only, never the deterministic Report
		Cycles:     c.Meter.Load(),
	}
	if r.Options.Metrics {
		res.Metrics = c.Probes.Snapshot(c.Meter.Load())
	}
	if r.Options.Telemetry {
		res.TelemetryWindows = telRec.Windows()
		res.TelemetryEvents = telDet.Events()
	}
	if res.Err == nil && r.Cache != nil {
		// A failed Put (full disk, unwritable dir) costs only the cache.
		_ = r.Cache.Put(&Entry{
			Key:              key,
			Figure:           res.Figure,
			Cycles:           res.Cycles,
			Metrics:          res.Metrics,
			TelemetryWindows: res.TelemetryWindows,
			TelemetryEvents:  res.TelemetryEvents,
		})
	}
	return res
}

// Report renders the deterministic part of a result set: each successful
// figure in order, separated by blank lines, then one line per failed
// experiment. Given the same suite seed and experiment set, the string is
// byte-identical at any Parallel setting (wall times and cycle counts are
// deliberately excluded; see Summary).
func Report(results []Result) string {
	var b strings.Builder
	for _, res := range results {
		if res.Err != nil {
			continue
		}
		b.WriteString(res.Figure.Render())
		b.WriteString("\n")
	}
	for _, res := range results {
		if res.Err != nil {
			fmt.Fprintf(&b, "FAILED %s: %v\n", res.Experiment.ID, res.Err)
		}
	}
	return b.String()
}

// Summary renders a per-experiment accounting table — wall time, simulated
// cycles, simulation rate, status — plus totals. It is diagnostic output
// (wall times vary run to run), so callers should keep it out of any stream
// that is compared byte-for-byte.
func Summary(results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %14s %12s  %s\n", "experiment", "wall", "cycles", "cycles/s", "status")
	var wall time.Duration
	var cycles uint64
	failed := 0
	for _, res := range results {
		status := "ok"
		if res.Cached {
			// Cycles on a cached row is the cold run's count; no new
			// simulation happened, which is exactly what the status says.
			status = "cached"
		}
		if res.Err != nil {
			status = "FAILED"
			failed++
		}
		rate := "-"
		if secs := res.Wall.Seconds(); secs > 0 && res.Cycles > 0 {
			rate = fmt.Sprintf("%.3gM", float64(res.Cycles)/secs/1e6)
		}
		fmt.Fprintf(&b, "%-16s %12s %14d %12s  %s\n",
			res.Experiment.ID, res.Wall.Round(time.Millisecond), res.Cycles, rate, status)
		wall += res.Wall
		cycles += res.Cycles
	}
	fmt.Fprintf(&b, "%-16s %12s %14d %12s  %d experiments, %d failed\n",
		"total", wall.Round(time.Millisecond), cycles, "", len(results), failed)
	return b.String()
}
