// Checkpoint support for the multi-GPU mesh: one versioned blob holds the
// global clock, every device's complete engine state, every fabric link,
// and the per-device delivery inboxes. The blob is keyed to the base
// configuration's hash — the per-device configurations derive from the base
// deterministically, so base plus device count identifies the whole mesh.
package mesh

import (
	"gpunoc/internal/config"
	"gpunoc/internal/engine"
	"gpunoc/internal/packet"
	"gpunoc/internal/snap"
)

// Snapshot serializes the mesh's complete simulation state into a versioned
// binary blob bound to the base configuration hash. The same restrictions
// as engine.(*GPU).Snapshot apply per device: no event tracing, no
// closure-based programs. Snapshotting does not perturb the run.
func (m *Mesh) Snapshot() ([]byte, error) {
	for _, g := range m.gpus {
		if r := g.Probes(); r != nil && r.Tracer() != nil {
			return nil, engine.ErrTraceEnabled
		}
	}
	e := snap.NewEncoder()
	e.Mark("mesh")
	e.U64(m.now)
	e.Int(len(m.gpus))
	for _, g := range m.gpus {
		if err := g.EncodeState(e); err != nil {
			return nil, err
		}
	}
	e.Int(len(m.links))
	for _, l := range m.links {
		l.Snapshot(e)
	}
	e.Int(len(m.inbox))
	for _, box := range m.inbox {
		e.Int(len(box))
		for _, p := range box {
			packet.Encode(e, p)
		}
	}
	return e.Finish(m.baseHash), nil
}

// Restore builds an n-device mesh from base and loads a Snapshot blob into
// it. The base configuration must hash-match the snapshotting one and n
// must equal the snapshotted device count.
func Restore(base config.Config, n int, data []byte, opts engine.RestoreOptions) (*Mesh, error) {
	m, err := New(base, n)
	if err != nil {
		return nil, err
	}
	d, err := snap.NewDecoder(data, m.baseHash)
	if err != nil {
		m.Close()
		return nil, err
	}
	if err := m.restoreState(d, opts); err != nil {
		m.Close()
		return nil, err
	}
	if err := d.Close(); err != nil {
		m.Close()
		return nil, err
	}
	return m, nil
}

// restoreState loads the sections written by Snapshot.
func (m *Mesh) restoreState(d *snap.Decoder, opts engine.RestoreOptions) error {
	d.Expect("mesh")
	m.now = d.U64()
	if n := d.Int(); d.Err() == nil && n != len(m.gpus) {
		return snap.Corruptf("snapshot holds %d devices, mesh has %d", n, len(m.gpus))
	}
	for _, g := range m.gpus {
		if err := g.RestoreState(d, opts); err != nil {
			return err
		}
	}
	if n := d.Int(); d.Err() == nil && n != len(m.links) {
		return snap.Corruptf("snapshot holds %d fabric links, mesh has %d", n, len(m.links))
	}
	for _, l := range m.links {
		if err := l.Restore(d); err != nil {
			return err
		}
	}
	if n := d.Int(); d.Err() == nil && n != len(m.inbox) {
		return snap.Corruptf("snapshot holds %d inboxes, mesh has %d", n, len(m.inbox))
	}
	for i := range m.inbox {
		m.inbox[i] = m.inbox[i][:0]
		c := d.Len()
		for j := 0; j < c; j++ {
			m.inbox[i] = append(m.inbox[i], packet.Decode(d))
		}
	}
	return d.Err()
}
