package warp

import (
	"testing"
	"testing/quick"
)

func TestCoalesceValidation(t *testing.T) {
	op := CoalescedOp(0, false)
	if _, err := Coalesce(op, 0, 32); err == nil {
		t.Error("zero SIMT width should fail")
	}
	if _, err := Coalesce(op, 32, 48); err == nil {
		t.Error("non-power-of-two line should fail")
	}
	bad := op
	bad.Lanes = 64
	if _, err := Coalesce(bad, 32, 32); err == nil {
		t.Error("too many lanes should fail")
	}
	bad.Lanes = -2
	if _, err := Coalesce(bad, 32, 32); err == nil {
		t.Error("negative lanes should fail")
	}
	none := op
	none.Lanes = LanesNone
	if lines, err := Coalesce(none, 32, 32); err != nil || len(lines) != 0 {
		t.Errorf("LanesNone = %v, %v; want empty", lines, err)
	}
}

// TestFullyCoalesced pins §5: stride 0 (or small strides within one line)
// produce exactly one request per warp.
func TestFullyCoalesced(t *testing.T) {
	lines, err := Coalesce(CoalescedOp(0x1000, true), 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || lines[0] != 0x1000 {
		t.Errorf("coalesced op = %v, want [0x1000]", lines)
	}
}

// TestFullyUncoalesced pins §5: a line-stride op produces 32 requests, one
// per lane, on consecutive lines.
func TestFullyUncoalesced(t *testing.T) {
	lines, err := Coalesce(UncoalescedOp(0x2000, false, 32), 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 32 {
		t.Fatalf("uncoalesced op produced %d lines, want 32", len(lines))
	}
	for i, la := range lines {
		if want := uint64(0x2000 + i*32); la != want {
			t.Fatalf("line %d = %#x, want %#x", i, la, want)
		}
	}
}

// TestWordStrideCoalescing: 4-byte strides over 32-byte lines pack 8 lanes
// per line, giving 4 requests.
func TestWordStrideCoalescing(t *testing.T) {
	op := MemOp{Base: 0, StrideBytes: 4}
	lines, err := Coalesce(op, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 4 {
		t.Errorf("4-byte stride = %d lines, want 4", len(lines))
	}
}

// TestPartialOp covers the multi-level channel request counts (0/8/16/32).
func TestPartialOp(t *testing.T) {
	for _, n := range []int{0, 8, 16, 32} {
		op, err := PartialOp(0, true, 32, n, 32)
		if err != nil {
			t.Fatal(err)
		}
		lines, err := Coalesce(op, 32, 32)
		if err != nil {
			t.Fatal(err)
		}
		if len(lines) != n {
			t.Errorf("PartialOp(%d) = %d lines", n, len(lines))
		}
	}
	if _, err := PartialOp(0, true, 32, 33, 32); err == nil {
		t.Error("uniqueLines > SIMT width should fail")
	}
	if _, err := PartialOp(0, true, 32, -1, 32); err == nil {
		t.Error("negative uniqueLines should fail")
	}
}

func TestUnalignedBaseStillLineAligned(t *testing.T) {
	op := MemOp{Base: 0x1007, StrideBytes: 32}
	lines, err := Coalesce(op, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, la := range lines {
		if la%32 != 0 {
			t.Fatalf("line %#x not aligned", la)
		}
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Ready: "ready", WaitingMem: "waiting-mem", WaitingCycle: "waiting-cycle",
		Finished: "finished", State(7): "State(7)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

// Property: the coalescer never emits more lines than active lanes, never
// more than lanes distinct lines exist, all results are line-aligned and
// unique.
func TestQuickCoalesceInvariants(t *testing.T) {
	f := func(base uint64, stride uint16, lanesRaw uint8) bool {
		lanes := int(lanesRaw) % 33
		if lanes == 0 {
			lanes = 32
		}
		op := MemOp{Base: base % (1 << 40), StrideBytes: uint64(stride), Lanes: lanes}
		lines, err := Coalesce(op, 32, 32)
		if err != nil {
			return false
		}
		if len(lines) > lanes {
			return false
		}
		seen := make(map[uint64]bool)
		for _, la := range lines {
			if la%32 != 0 || seen[la] {
				return false
			}
			seen[la] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: line-stride ops always produce exactly one line per active lane.
func TestQuickLineStrideBijective(t *testing.T) {
	f := func(base uint64, lanesRaw uint8) bool {
		lanes := int(lanesRaw)%32 + 1
		op := MemOp{Base: base % (1 << 40), StrideBytes: 32, Lanes: lanes}
		lines, err := Coalesce(op, 32, 32)
		return err == nil && len(lines) == lanes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
