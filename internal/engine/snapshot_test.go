package engine

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"gpunoc/internal/config"
	"gpunoc/internal/device"
	"gpunoc/internal/probe"
	"gpunoc/internal/snap"
	"gpunoc/internal/telemetry"
)

// snapCfg keeps the Volta jitters enabled: the RNG streams must survive the
// snapshot (as draw counts) for the restored run to replay identically.
func snapCfg() config.Config {
	cfg := config.Small()
	cfg.Seed = 99
	return cfg
}

// launchSnapWorkload preloads and launches the standard streamer kernel.
func launchSnapWorkload(t *testing.T, g *GPU) *Kernel {
	t.Helper()
	preloadStreamers(g, 8)
	spec, _ := streamerKernel("snap", 4, 2, 40, true, true, g.Config().L2LineBytes)
	k, err := g.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// finalState runs the engine until every kernel completes and returns the
// end-of-run snapshot bytes plus the kernel durations.
func finalState(t *testing.T, g *GPU) ([]byte, []uint64) {
	t.Helper()
	if err := g.RunKernels(2_000_000); err != nil {
		t.Fatal(err)
	}
	blob, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var durs []uint64
	for _, k := range g.Kernels() {
		durs = append(durs, k.Duration())
	}
	return blob, durs
}

// TestSnapshotRestoreReplaysBitIdentically is the acceptance bar of the
// checkpoint subsystem: a run restored from a mid-traffic snapshot must be
// bit-identical — same end-of-run snapshot bytes, same kernel durations —
// to a run that was never interrupted, and taking the snapshot must not
// perturb the snapshotting run either. Exercised at engine worker counts 1
// and 4 (the snapshot canonicalizes the sharded hand-off boxes).
func TestSnapshotRestoreReplaysBitIdentically(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfg := snapCfg()
		cfg.EngineWorkers = workers

		ref := mkGPU(t, cfg) // uninterrupted reference
		defer ref.Close()
		launchSnapWorkload(t, ref)

		cut := mkGPU(t, cfg) // snapshotted mid-flight, then continues
		defer cut.Close()
		launchSnapWorkload(t, cut)

		const snapAt = 700
		cut.RunFor(snapAt)
		if cut.Idle() {
			t.Fatalf("workers=%d: no traffic in flight at cycle %d; snapshot point is not mid-traffic", workers, snapAt)
		}
		blob, err := cut.Snapshot()
		if err != nil {
			t.Fatalf("workers=%d: snapshot: %v", workers, err)
		}

		rest, err := Restore(cfg, blob, RestoreOptions{})
		if err != nil {
			t.Fatalf("workers=%d: restore: %v", workers, err)
		}
		defer rest.Close()
		if rest.Now() != cut.Now() {
			t.Fatalf("workers=%d: restored clock %d, want %d", workers, rest.Now(), cut.Now())
		}

		refEnd, refDurs := finalState(t, ref)
		cutEnd, cutDurs := finalState(t, cut)
		restEnd, restDurs := finalState(t, rest)

		if !reflect.DeepEqual(refDurs, cutDurs) {
			t.Fatalf("workers=%d: snapshotting perturbed the run: durations %v vs %v", workers, refDurs, cutDurs)
		}
		if !reflect.DeepEqual(refDurs, restDurs) {
			t.Fatalf("workers=%d: restored run diverged: durations %v vs %v", workers, refDurs, restDurs)
		}
		if string(refEnd) != string(cutEnd) {
			t.Fatalf("workers=%d: snapshotting perturbed the run: end-of-run snapshots differ", workers)
		}
		if string(refEnd) != string(restEnd) {
			t.Fatalf("workers=%d: restored run diverged: end-of-run snapshots differ", workers)
		}
	}
}

// TestSnapshotRestoreAcrossWorkerCounts pins that a snapshot taken at one
// engine worker count restores bit-identically at another: the blob is
// canonicalized to the sequential shape and EngineWorkers is excluded from
// the config hash.
func TestSnapshotRestoreAcrossWorkerCounts(t *testing.T) {
	cfg1 := snapCfg()
	cfg1.EngineWorkers = 1
	cfg4 := snapCfg()
	cfg4.EngineWorkers = 4

	ref := mkGPU(t, cfg1)
	defer ref.Close()
	launchSnapWorkload(t, ref)
	refEnd, refDurs := finalState(t, ref)

	src := mkGPU(t, cfg4)
	defer src.Close()
	launchSnapWorkload(t, src)
	src.RunFor(700)
	blob, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	rest, err := Restore(cfg1, blob, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rest.Close()
	restEnd, restDurs := finalState(t, rest)

	if !reflect.DeepEqual(refDurs, restDurs) {
		t.Fatalf("4-worker snapshot restored at 1 worker diverged: durations %v vs %v", refDurs, restDurs)
	}
	if string(refEnd) != string(restEnd) {
		t.Fatal("4-worker snapshot restored at 1 worker diverged: end-of-run snapshots differ")
	}
}

// TestSnapshotRestoreWithProbesAndTelemetry pins the observer side of the
// restore-≡-replay contract: metric values cross the snapshot, and the
// telemetry windows emitted after a restore equal the windows the
// uninterrupted run emitted over the same span.
func TestSnapshotRestoreWithProbesAndTelemetry(t *testing.T) {
	build := func() (config.Config, *telemetry.Recorder) {
		cfg := snapCfg()
		rec := &telemetry.Recorder{}
		cfg.Probes = probe.NewRegistry()
		cfg.Telemetry = telemetry.NewSampler(256, rec)
		return cfg, rec
	}

	refCfg, refRec := build()
	ref := mkGPU(t, refCfg)
	defer ref.Close()
	launchSnapWorkload(t, ref)
	if err := ref.RunKernels(2_000_000); err != nil {
		t.Fatal(err)
	}
	refMetrics := ref.ProbeSnapshot()

	cutCfg, cutRec := build()
	cut := mkGPU(t, cutCfg)
	defer cut.Close()
	launchSnapWorkload(t, cut)
	cut.RunFor(700)
	preWindows := len(cutRec.Windows())
	blob, err := cut.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	restCfg, restRec := build()
	rest, err := Restore(restCfg, blob, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rest.Close()
	if err := rest.RunKernels(2_000_000); err != nil {
		t.Fatal(err)
	}
	restMetrics := rest.ProbeSnapshot()

	if rest.Now() != ref.Now() {
		t.Fatalf("restored run finished at cycle %d, reference at %d", rest.Now(), ref.Now())
	}
	if !reflect.DeepEqual(refMetrics, restMetrics) {
		t.Fatalf("probe snapshots diverged across restore:\nref:  %+v\nrest: %+v", refMetrics, restMetrics)
	}
	want := refRec.Windows()[preWindows:]
	got := restRec.Windows()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("post-snapshot telemetry windows diverged: want %d windows %+v, got %d windows %+v",
			len(want), want, len(got), got)
	}
}

// TestSnapshotStepFuncProgramFails pins the typed error for closure-based
// programs: their captured variables are opaque, so the snapshot must refuse.
func TestSnapshotStepFuncProgramFails(t *testing.T) {
	g := mkGPU(t, snapCfg())
	defer g.Close()
	spec := device.KernelSpec{
		Name: "closure", Blocks: 1, WarpsPerBlock: 1,
		New: func(b, w int) device.Program {
			return device.StepFunc(func(ctx *device.Ctx) device.Op { return device.Done() })
		},
	}
	if _, err := g.Launch(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Snapshot(); !errors.Is(err, device.ErrNotCheckpointable) {
		t.Fatalf("snapshot of a StepFunc kernel: got %v, want ErrNotCheckpointable", err)
	}
}

// TestSnapshotTraceEnabledFails pins the typed error for tracing registries.
func TestSnapshotTraceEnabledFails(t *testing.T) {
	cfg := snapCfg()
	cfg.Probes = probe.NewRegistry()
	cfg.Probes.EnableTrace(0)
	g := mkGPU(t, cfg)
	defer g.Close()
	if _, err := g.Snapshot(); !errors.Is(err, ErrTraceEnabled) {
		t.Fatalf("snapshot with tracing: got %v, want ErrTraceEnabled", err)
	}
}

// TestRestoreRejectsSkewAndCorruption pins the failure modes of the blob
// format at the engine level: a bumped format version, a truncated payload,
// and a config-hash mismatch must each fail fast with their typed error.
func TestRestoreRejectsSkewAndCorruption(t *testing.T) {
	cfg := snapCfg()
	g := mkGPU(t, cfg)
	defer g.Close()
	launchSnapWorkload(t, g)
	g.RunFor(500)
	blob, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	skewed := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(skewed[4:], snap.Version+1)
	if _, err := Restore(cfg, skewed, RestoreOptions{}); !errors.Is(err, snap.ErrVersion) {
		t.Fatalf("bumped version: got %v, want ErrVersion", err)
	}

	if _, err := Restore(cfg, blob[:len(blob)-3], RestoreOptions{}); !errors.Is(err, snap.ErrCorrupt) {
		t.Fatalf("truncated payload: got %v, want ErrCorrupt", err)
	}

	other := cfg
	other.Seed++
	if _, err := Restore(other, blob, RestoreOptions{}); !errors.Is(err, snap.ErrConfigMismatch) {
		t.Fatalf("mismatched config: got %v, want ErrConfigMismatch", err)
	}
}
