package engine

// Regression tests for the RunUntil quiet-stretch fast-forward: once the
// device is parked, RunUntil must skip cycles exactly like RunFor instead of
// stepping idle silicon, while still evaluating cond at every cycle boundary
// the stepped loop would have checked.

import (
	"testing"

	"gpunoc/internal/config"
	"gpunoc/internal/probe"
)

// drainedGPU runs a small kernel to completion and drains the device, so the
// remainder of the test exercises pure quiet-stretch behavior.
func drainedGPU(t *testing.T) *GPU {
	t.Helper()
	cfg := testCfg()
	cfg.Probes = probe.NewRegistry()
	cfg.Meter = &config.CycleMeter{}
	g := mkGPU(t, cfg)
	preloadStreamers(g, 2)
	spec, _ := streamerKernel("ffwd", 1, 2, 100, true, false, cfg.L2LineBytes)
	if _, err := g.Launch(spec); err != nil {
		t.Fatal(err)
	}
	if err := g.RunKernels(2_000_000); err != nil {
		t.Fatal(err)
	}
	if !g.RunUntil(g.Idle, 100_000) {
		t.Fatal("GPU did not drain")
	}
	return g
}

// TestRunUntilFastForwardsQuietStretches pins the satellite fix: a drained
// device driven by RunUntil with a never-true cond must advance the full
// budget through the fast-forward path (ffwd_cycles grows by the budget, as
// RunFor's already did) and end bit-identical to a twin driven by RunFor.
func TestRunUntilFastForwardsQuietStretches(t *testing.T) {
	g := drainedGPU(t)
	tw := drainedGPU(t)
	if g.Now() != tw.Now() {
		t.Fatalf("twins diverged before the test: %d vs %d", g.Now(), tw.Now())
	}

	load := func(g *GPU, name string) uint64 { return g.Config().Probes.Counter(name).Load() }
	const span = 7_500
	ffwdBefore, nowBefore := load(g, "sched/ffwd_cycles"), g.Now()
	meterBefore := g.Config().Meter.Load()

	if g.RunUntil(func() bool { return false }, span) {
		t.Fatal("never-true cond reported fired")
	}
	tw.RunFor(span)

	if g.Now() != nowBefore+span {
		t.Errorf("RunUntil advanced to %d, want %d", g.Now(), nowBefore+span)
	}
	if got := load(g, "sched/ffwd_cycles") - ffwdBefore; got != span {
		t.Errorf("RunUntil fast-forwarded %d cycles, want %d", got, span)
	}
	if got := g.Config().Meter.Load() - meterBefore; got != span {
		t.Errorf("meter recorded %d cycles, want %d", got, span)
	}

	// Bit-identity against the RunFor twin: clock, fast-forward counter,
	// per-SM clock registers.
	if g.Now() != tw.Now() {
		t.Errorf("RunUntil ended at %d, RunFor twin at %d", g.Now(), tw.Now())
	}
	if a, b := load(g, "sched/ffwd_cycles"), load(tw, "sched/ffwd_cycles"); a != b {
		t.Errorf("ffwd_cycles diverged: RunUntil %d, RunFor %d", a, b)
	}
	for smid := 0; smid < g.Config().NumSMs(); smid++ {
		if a, b := g.Clocks().Read64(smid, 0), tw.Clocks().Read64(smid, 0); a != b {
			t.Errorf("SM %d clock register diverged: RunUntil %d, RunFor %d", smid, a, b)
		}
	}
}

// TestRunUntilCondFiresMidSkip plants a Now-dependent cond inside the quiet
// stretch: the skip must still fire it at the exact cycle the stepped loop
// would have, proving cond is re-checked at every skipped boundary.
func TestRunUntilCondFiresMidSkip(t *testing.T) {
	g := drainedGPU(t)
	target := g.Now() + 1234
	if !g.RunUntil(func() bool { return g.Now() >= target }, 1_000_000) {
		t.Fatal("Now-dependent cond never fired")
	}
	if g.Now() != target {
		t.Errorf("cond fired at cycle %d, want exactly %d", g.Now(), target)
	}
	// A cond that is already true must return immediately without advancing.
	before := g.Now()
	if !g.RunUntil(func() bool { return true }, 1_000_000) {
		t.Fatal("already-true cond reported not fired")
	}
	if g.Now() != before {
		t.Errorf("already-true cond advanced the clock to %d from %d", g.Now(), before)
	}
}
