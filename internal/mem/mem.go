// Package mem implements the GPU memory partitions: the banked L2 cache (48
// slices of 96 KB on the Table 1 configuration), the address interleaving
// that spreads line addresses across slices, and the memory controllers
// behind them. Each slice services one request per cycle; covert-channel
// probe data is preloaded so the traffic of interest always hits in L2 and
// the timing signal is dominated by NoC contention, exactly as in §4.2 of
// the paper (which disables L1 and sizes the working set to L2).
package mem

import (
	"container/heap"
	"fmt"
	"math/rand"

	"gpunoc/internal/cache"
	"gpunoc/internal/config"
	"gpunoc/internal/dram"
	"gpunoc/internal/packet"
	"gpunoc/internal/probe"
	"gpunoc/internal/ring"
	"gpunoc/internal/sched"
	"gpunoc/internal/snap"
)

// Deliver receives completed reply packets from a slice.
type Deliver func(now uint64, p *packet.Packet)

type scheduledReply struct {
	at uint64
	p  *packet.Packet
	// seq breaks ties to keep ordering deterministic.
	seq uint64
}

type replyHeap []scheduledReply

func (h replyHeap) Len() int { return len(h) }
func (h replyHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h replyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *replyHeap) Push(x interface{}) { *h = append(*h, x.(scheduledReply)) }
func (h *replyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	//lint:allow hotalloc container/heap contract boxes the popped element
	return item
}

type scheduledFill struct {
	at  uint64
	la  uint64
	seq uint64
}

type fillHeap []scheduledFill

func (h fillHeap) Len() int { return len(h) }
func (h fillHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h fillHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *fillHeap) Push(x interface{}) { *h = append(*h, x.(scheduledFill)) }
func (h *fillHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	//lint:allow hotalloc container/heap contract boxes the popped element
	return item
}

// Slice is one L2 cache slice plus its share of a memory controller.
type Slice struct {
	id         int
	cache      *cache.Cache
	hitLatency uint64
	atomicLat  uint64
	mc         *dram.Controller
	out        Deliver
	lineBytes  uint64
	numSlices  uint64

	inq     ring.Buffer[*packet.Packet]
	replies replyHeap
	fills   fillHeap
	seq     uint64
	waiting map[uint64][]*packet.Packet // line addr -> packets on an MSHR
	wake    func()                      // activity wake edge (see SetWaker); nil outside a scheduler

	rng       *rand.Rand
	src       *snap.CountingSource // rng's source; snapshots as a draw count
	jitterMax int
	retries   ring.Buffer[uint64] // line fetches whose MC submission must be retried

	// atomicFree serializes atomics per line: the cycle each line's
	// read-modify-write unit frees up. Consecutive atomics to one address
	// queue behind each other, which is the contention the global-memory
	// baseline covert channel exploits (Table 2).
	atomicFree map[uint64]uint64

	// Counters.
	served, hits, misses uint64

	pr *sliceProbes // nil when uninstrumented (the fast path)
}

// sliceProbes holds the slice's latency histograms and ingress-depth gauge.
// missStart records the cycle each line's first miss entered the MSHR so
// completeFill can observe the full miss (MSHR residency) latency.
type sliceProbes struct {
	hitLat    *probe.Hist // cycles from service start to reply emission, hits
	missLat   *probe.Hist // cycles from MSHR allocation to fill completion
	inqDepth  *probe.Gauge
	missStart map[uint64]uint64
}

// Instrument registers this slice's metrics with r under the given prefix
// (e.g. "mem/slice3") and instruments its L2 cache under prefix+"/l2". A nil
// registry leaves the slice uninstrumented.
func (s *Slice) Instrument(r *probe.Registry, prefix string) {
	if r == nil {
		return
	}
	s.pr = &sliceProbes{
		hitLat:    r.Hist(prefix + "/hit_latency"),
		missLat:   r.Hist(prefix + "/miss_latency"),
		inqDepth:  r.Gauge(prefix + "/inq_depth"),
		missStart: make(map[uint64]uint64),
	}
	s.cache.Instrument(r, prefix+"/l2")
}

func newSlice(id int, cfg *config.Config, mc *dram.Controller, out Deliver, seed int64) (*Slice, error) {
	c, err := cache.New(cfg.L2SliceSizeBytes, cfg.L2LineBytes, cfg.L2Ways, cfg.L2MSHRs)
	if err != nil {
		return nil, err
	}
	src := snap.NewCountingSource(seed)
	return &Slice{
		id:         id,
		cache:      c,
		hitLatency: uint64(cfg.L2HitLatency),
		atomicLat:  uint64(cfg.L2HitLatency) + 8,
		mc:         mc,
		out:        out,
		lineBytes:  uint64(cfg.L2LineBytes),
		numSlices:  uint64(cfg.NumL2Slices),
		waiting:    make(map[uint64][]*packet.Packet),
		atomicFree: make(map[uint64]uint64),
		rng:        rand.New(src),
		src:        src,
		jitterMax:  cfg.L2ServiceJitter,
	}, nil
}

// atomicSerialize is the per-line busy time of the L2 read-modify-write
// unit, in cycles.
const atomicSerialize = 20

// localAddr maps a global address to the slice-local address space: lines
// are interleaved across slices, so a slice owns every numSlices-th line.
// Indexing the cache with the dense local line number uses all sets; the
// global line number would alias to 1/numSlices of them.
func (s *Slice) localAddr(addr uint64) uint64 {
	lineNo := addr / s.lineBytes
	return (lineNo/s.numSlices)*s.lineBytes + addr%s.lineBytes
}

// SetWaker registers the activity wake edge: w is invoked on every Accept,
// so the container that parked this slice (because Idle() held) knows to
// tick it again. Accept is the only external event that can make an idle
// slice non-idle: replies, fills, MSHR waiters and retries all descend from
// a previously accepted request, during which the slice is never parked. A
// nil waker (the default) is correct when the slice is ticked exhaustively.
func (s *Slice) SetWaker(w func()) { s.wake = w }

// Accept hands a request packet to the slice. Called by the NoC delivery
// path; the slice's ingress rate limit is enforced by the NoC link feeding
// it, so Accept never rejects.
func (s *Slice) Accept(now uint64, p *packet.Packet) {
	if !p.Kind.IsRequest() {
		panic(fmt.Sprintf("mem: slice %d received non-request %v", s.id, p))
	}
	s.inq.Push(p)
	if s.pr != nil {
		s.pr.inqDepth.Add(1)
	}
	if s.wake != nil {
		s.wake()
	}
}

func (s *Slice) jitter() uint64 {
	if s.jitterMax <= 0 {
		return 0
	}
	return uint64(s.rng.Intn(s.jitterMax + 1))
}

func (s *Slice) scheduleReply(at uint64, req *packet.Packet) {
	rk, err := packet.ReplyKind(req.Kind)
	if err != nil {
		panic(err)
	}
	//lint:allow hotalloc one reply packet per serviced request; packet pooling is future work
	rep := &packet.Packet{
		ID:         req.ID,
		Kind:       rk,
		Tag:        req.Tag,
		Addr:       req.Addr,
		Slice:      s.id,
		SrcSM:      req.SrcSM,
		SrcDev:     req.SrcDev,
		DstDev:     req.DstDev,
		IssueCycle: req.IssueCycle,
		SliceCycle: at,
		BypassL1:   req.BypassL1,
	}
	s.seq++
	//lint:allow hotalloc container/heap contract boxes the pushed element
	heap.Push(&s.replies, scheduledReply{at: at, p: rep, seq: s.seq})
}

// Tick advances the slice one cycle: due replies are emitted, then at most
// one new request starts service.
func (s *Slice) Tick(now uint64) {
	for len(s.replies) > 0 && s.replies[0].at <= now {
		item := heap.Pop(&s.replies).(scheduledReply)
		s.out(now, item.p)
	}
	for len(s.fills) > 0 && s.fills[0].at <= now {
		item := heap.Pop(&s.fills).(scheduledFill)
		s.completeFill(item.at, item.la)
	}
	if s.retries.Len() > 0 {
		la := *s.retries.Front()
		//lint:allow hotalloc one DRAM request per retried miss, not per cycle
		if s.mc.Enqueue(now, &dram.Request{Addr: la, Write: false, Origin: s.id, Done: func(at uint64) {
			s.scheduleFill(at, la)
		}}) {
			s.retries.Pop()
		}
	}
	if s.inq.Len() == 0 {
		return
	}
	p := *s.inq.Front()
	write := p.Kind == packet.WriteReq
	switch s.cache.Access(s.localAddr(p.Addr), write) {
	case cache.Hit:
		s.hits++
		lat := s.hitLatency
		start := now
		if p.Kind == packet.AtomicReq {
			lat = s.atomicLat
			la := s.cache.LineAddr(s.localAddr(p.Addr))
			if free := s.atomicFree[la]; free > start {
				start = free
			}
			s.atomicFree[la] = start + atomicSerialize
		}
		at := start + lat + s.jitter()
		if s.pr != nil {
			s.pr.hitLat.Observe(at - now)
		}
		s.scheduleReply(at, p)
	case cache.Miss:
		s.misses++
		la := s.cache.LineAddr(s.localAddr(p.Addr))
		s.waiting[la] = append(s.waiting[la], p)
		if s.pr != nil {
			s.pr.missStart[la] = now
		}
		//lint:allow hotalloc one DRAM request per L2 miss, not per cycle
		ok := s.mc.Enqueue(now, &dram.Request{
			Addr:   la,
			Origin: s.id,
			Write:  false, // fetch-on-miss; writes allocate then dirty the line
			//lint:allow hotalloc completion callback created once per L2 miss
			Done: func(at uint64) {
				s.scheduleFill(at, la)
			},
		})
		if !ok {
			// MC queue full: retry on subsequent ticks. The MSHR stays
			// allocated; completeFill drains all waiters when the retried
			// fetch eventually lands.
			s.retries.Push(la)
		}
	case cache.MissMerged:
		s.misses++
		la := s.cache.LineAddr(s.localAddr(p.Addr))
		s.waiting[la] = append(s.waiting[la], p)
	case cache.Stall:
		// MSHR file full: leave the packet queued and stall this cycle.
		return
	}
	s.inq.Pop()
	s.served++
	if s.pr != nil {
		s.pr.inqDepth.Add(-1)
	}
}

// scheduleFill defers the cache fill to the cycle the DRAM data transfer
// completes; installing it at callback time would let younger requests hit
// before the data actually arrived.
func (s *Slice) scheduleFill(at, la uint64) {
	s.seq++
	//lint:allow hotalloc container/heap contract boxes the pushed element
	heap.Push(&s.fills, scheduledFill{at: at, la: la, seq: s.seq})
}

func (s *Slice) completeFill(at uint64, la uint64) {
	if s.pr != nil {
		if start, ok := s.pr.missStart[la]; ok {
			s.pr.missLat.Observe(at - start)
			delete(s.pr.missStart, la)
		}
	}
	write := false
	for _, w := range s.waiting[la] {
		if w.Kind == packet.WriteReq {
			write = true
		}
	}
	if _, wb := s.cache.Fill(la, write); wb {
		// Writeback of the victim: fire-and-forget to DRAM. If the MC
		// queue is full the writeback is dropped; the model tracks timing,
		// not data, so this only slightly under-counts DRAM load.
		//lint:allow hotalloc one writeback request per evicted dirty line
		s.mc.Enqueue(at, &dram.Request{Addr: la ^ 0x1, Write: true, Origin: s.id, Done: func(uint64) {}})
	}
	for _, w := range s.waiting[la] {
		lat := s.hitLatency
		if w.Kind == packet.AtomicReq {
			lat = s.atomicLat
		}
		s.scheduleReply(at+lat+s.jitter(), w)
	}
	delete(s.waiting, la)
}

// Preload installs the line containing addr (a global address) without
// generating traffic, modeling a warmed L2 (the covert-channel kernels touch
// their buffers once before signaling).
func (s *Slice) Preload(addr uint64) { s.cache.Fill(s.localAddr(addr), false) }

// Idle reports whether the slice holds no queued work. An idle slice's Tick
// is a no-op (all schedules are absolute cycles, nothing counts down), so
// the scheduler may park it until the next Accept.
func (s *Slice) Idle() bool {
	return s.inq.Len() == 0 && len(s.replies) == 0 && len(s.waiting) == 0 &&
		s.retries.Len() == 0 && len(s.fills) == 0
}

// Stats is a snapshot of slice counters.
type SliceStats struct {
	Served, Hits, Misses uint64
}

// Stats returns the slice counters.
func (s *Slice) Stats() SliceStats { return SliceStats{s.served, s.hits, s.misses} }

// Partition owns every L2 slice and memory controller of the GPU and routes
// line addresses to slices.
type Partition struct {
	cfg    *config.Config
	slices []*Slice
	mcs    []*dram.Controller

	// Activity-driven scheduling: members are woken by their Accept/Enqueue
	// edges and parked by Tick once Idle() holds. Both sets are nil when
	// cfg.ExhaustiveTick is set, selecting the tick-everything reference
	// path.
	actSlices *sched.ActiveSet
	actMCs    *sched.ActiveSet

	// shard is non-nil after EnableSharding (see shard.go): the engine's
	// parallel tick loop then drives the partition through TickShard, and
	// the sequential Tick entry point is forbidden.
	shard *memShard

	sliceTicks *probe.Counter // nil when uninstrumented
	mcTicks    *probe.Counter
}

// NewPartition builds all slices and controllers. out receives every reply
// packet together with the slice it came from (packets carry Slice).
func NewPartition(cfg *config.Config, out Deliver) (*Partition, error) {
	if out == nil {
		return nil, fmt.Errorf("mem: nil delivery sink")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Partition{cfg: cfg}
	p.mcs = make([]*dram.Controller, cfg.NumMCs)
	for i := range p.mcs {
		mc, err := dram.NewController(cfg.DRAM, cfg.DRAMBanksPME, 2048, cfg.MCQueueDepth)
		if err != nil {
			return nil, err
		}
		if cfg.Probes != nil {
			mc.Instrument(cfg.Probes, fmt.Sprintf("dram/mc%d", i))
		}
		p.mcs[i] = mc
	}
	p.slices = make([]*Slice, cfg.NumL2Slices)
	for i := range p.slices {
		mc := p.mcs[i/cfg.SlicesPerMC()]
		sl, err := newSlice(i, cfg, mc, out, cfg.Seed+int64(i)*7919)
		if err != nil {
			return nil, err
		}
		if cfg.Probes != nil {
			sl.Instrument(cfg.Probes, fmt.Sprintf("mem/slice%d", i))
		}
		p.slices[i] = sl
	}
	if !cfg.ExhaustiveTick {
		p.actMCs = sched.NewActiveSet(len(p.mcs))
		for i, mc := range p.mcs {
			mc.SetWaker(func() { p.actMCs.Wake(i) })
		}
		p.actSlices = sched.NewActiveSet(len(p.slices))
		for i, sl := range p.slices {
			sl.SetWaker(func() { p.actSlices.Wake(i) })
		}
	}
	if cfg.Probes != nil {
		p.sliceTicks = cfg.Probes.Counter("sched/slice_ticks")
		p.mcTicks = cfg.Probes.Counter("sched/mc_ticks")
	}
	return p, nil
}

// SliceFor returns the slice index servicing addr: line-interleaved across
// all slices, the standard GPU partitioning that spreads sequential traffic
// over every memory partition (Algorithm 1 relies on this).
func (p *Partition) SliceFor(addr uint64) int {
	return int((addr / uint64(p.cfg.L2LineBytes)) % uint64(len(p.slices)))
}

// Slice returns slice i.
func (p *Partition) Slice(i int) *Slice { return p.slices[i] }

// NumSlices returns the slice count.
func (p *Partition) NumSlices() int { return len(p.slices) }

// Accept routes a request packet to its slice (p.Slice must be prerouted by
// the NoC; this method asserts consistency).
func (p *Partition) Accept(now uint64, pkt *packet.Packet) {
	want := p.SliceFor(pkt.Addr)
	if pkt.Slice != want {
		panic(fmt.Sprintf("mem: packet routed to slice %d, addr belongs to %d", pkt.Slice, want))
	}
	p.slices[want].Accept(now, pkt)
}

// Preload warms the L2 with every line in [base, base+size).
func (p *Partition) Preload(base, size uint64) {
	line := uint64(p.cfg.L2LineBytes)
	for addr := base &^ (line - 1); addr < base+size; addr += line {
		p.slices[p.SliceFor(addr)].Preload(addr)
	}
}

// Tick advances every slice and controller one cycle. Under activity-driven
// scheduling only active members tick, in the same ascending order as the
// exhaustive loops: controllers first (a slice miss this cycle therefore
// reaches its controller next cycle, with or without the scheduler), then
// slices.
func (p *Partition) Tick(now uint64) {
	if p.shard != nil {
		panic("mem: Tick called on a sharded partition (use TickShard)")
	}
	if p.actMCs == nil {
		for _, mc := range p.mcs {
			mc.Tick(now)
		}
		for _, s := range p.slices {
			s.Tick(now)
		}
		return
	}
	if !p.actMCs.Empty() {
		for i, mc := range p.mcs {
			if !p.actMCs.Active(i) {
				continue
			}
			mc.Tick(now)
			if p.mcTicks != nil {
				p.mcTicks.Inc()
			}
			if mc.Idle() {
				p.actMCs.Park(i)
			}
		}
	}
	if !p.actSlices.Empty() {
		for i, s := range p.slices {
			if !p.actSlices.Active(i) {
				continue
			}
			s.Tick(now)
			if p.sliceTicks != nil {
				p.sliceTicks.Inc()
			}
			if s.Idle() {
				p.actSlices.Park(i)
			}
		}
	}
}

// Quiet reports whether the activity scheduler has every slice and
// controller parked, i.e. the next Tick would do no work. Always false in
// exhaustive mode, where nothing is ever parked.
func (p *Partition) Quiet() bool {
	if p.shard != nil {
		return p.shard.quiet()
	}
	return p.actMCs != nil && p.actMCs.Empty() && p.actSlices.Empty()
}

// Idle reports whether all slices and controllers are drained.
func (p *Partition) Idle() bool {
	for _, s := range p.slices {
		if !s.Idle() {
			return false
		}
	}
	for _, mc := range p.mcs {
		if !mc.Idle() {
			return false
		}
	}
	return true
}

// Stats sums slice counters across the partition.
func (p *Partition) Stats() SliceStats {
	var t SliceStats
	for _, s := range p.slices {
		st := s.Stats()
		t.Served += st.Served
		t.Hits += st.Hits
		t.Misses += st.Misses
	}
	return t
}
