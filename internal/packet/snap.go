package packet

import "gpunoc/internal/snap"

// Encode appends every field of a packet to the snapshot encoder. Packets
// are threaded by pointer but each lives in exactly one container at a
// time, so containers serialize their packets by value in place.
func Encode(e *snap.Encoder, p *Packet) {
	e.U64(p.ID)
	e.U8(uint8(p.Kind))
	e.Int(p.Tag.SM)
	e.Int(p.Tag.Warp)
	e.U64(p.Tag.Op)
	e.U64(p.Addr)
	e.Int(p.Slice)
	e.Int(p.SrcSM)
	e.Int(p.SrcDev)
	e.Int(p.DstDev)
	e.U64(p.IssueCycle)
	e.U64(p.SliceCycle)
	e.U64(p.DeliverCycle)
	e.Bool(p.BypassL1)
}

// Decode reads a packet previously written by Encode into a fresh
// allocation.
func Decode(d *snap.Decoder) *Packet {
	p := &Packet{}
	p.ID = d.U64()
	p.Kind = Kind(d.U8())
	p.Tag.SM = d.Int()
	p.Tag.Warp = d.Int()
	p.Tag.Op = d.U64()
	p.Addr = d.U64()
	p.Slice = d.Int()
	p.SrcSM = d.Int()
	p.SrcDev = d.Int()
	p.DstDev = d.Int()
	p.IssueCycle = d.U64()
	p.SliceCycle = d.U64()
	p.DeliverCycle = d.U64()
	p.BypassL1 = d.Bool()
	return p
}
