package core

// The cross-GPU covert channel: sender and receiver kernels on *different*
// GPUs of an internal/mesh system, communicating by modulating contention on
// the NVLink link between them — the channel NVBleed and "Beyond the Bridge"
// (PAPERS.md) demonstrate on real multi-GPU servers, run over this repo's
// existing Algorithm 2 protocol.
//
// The shared resource is the sender-to-receiver NVLink link. The sender
// floods it with remote *writes* into a window of the receiver's device
// memory (write requests carry their data flits across the link); the
// receiver times remote *reads* of a window in the sender's device memory,
// whose data replies return over that same link. When the sender floods, the
// receiver's replies queue behind the write bursts and its round-trip
// latency rises — the same mean-slot-latency observable the on-die channels
// decode, shifted up by two NVLink hop traversals.
//
// Synchronization is the one genuinely new problem: the two devices'
// clock registers are offset by independent per-device constants
// (internal/clockreg seeds each device differently), so waiting for
// clock % modulus == 0 no longer aligns the sides. Each program instead
// cancels its own device's offset through the phase hook (phaseFunc in
// program.go): the offset is learned once before the transmission — the
// cross-device analogue of the paper's §4.1 clock characterization — and
// passed as the SyncClock residue, aligning both sides in global time.

import (
	"fmt"
	"math/rand"

	"gpunoc/internal/config"
	"gpunoc/internal/device"
	"gpunoc/internal/mesh"
)

// remoteWindowBase is the offset, within each device's address window, of
// the probe/flood windows used by the NVLink channel. It is far above the
// per-SM windows of the on-die channels so a co-resident local transmission
// cannot collide with it.
const remoteWindowBase = 1 << 20

// nvlinkSenderSMs is the number of sender SMs flooding the link. The flood
// must be strong enough to stand a queue on the ~0.52 flits/cycle link (one
// SM's LSU, capped at LSUQueueDepth outstanding, cannot) yet bounded so the
// queue drains before the slot boundary — four SMs' worth of outstanding
// writes saturates the link with a standing queue of a few hundred flits
// that clears within a slot.
const nvlinkSenderSMs = 4

// NVLinkTransmission is a prepared cross-GPU covert transmission: one sender
// kernel on the sending device, one receiver kernel on the receiving device,
// joined by the mesh fabric. It reuses the Transmission decode machinery —
// the wire protocol (slots, sync, coding, preambles) is identical; only the
// contended medium differs.
type NVLinkTransmission struct {
	Transmission
	m          *mesh.Mesh
	sdev, rdev int
}

// NewNVLinkTransmission prepares a transmission from a sender kernel on
// device sdev to a receiver kernel on device rdev of mesh m. The payload is
// carried over the single sdev->rdev NVLink path as one unit (PairResult.Unit
// is rdev). The mesh must be freshly built: kernels are launched by Run.
func NewNVLinkTransmission(m *mesh.Mesh, sdev, rdev int, payload []Symbol, p Params) (*NVLinkTransmission, error) {
	p.Kind = NVLinkChannel
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("core: empty payload")
	}
	n := m.NumDevices()
	if sdev < 0 || sdev >= n || rdev < 0 || rdev >= n {
		return nil, fmt.Errorf("core: device pair (%d,%d) outside mesh of %d", sdev, rdev, n)
	}
	if sdev == rdev {
		return nil, fmt.Errorf("core: NVLink channel needs distinct devices, got %d twice", sdev)
	}
	cfg := m.GPU(rdev).Config()
	nt := &NVLinkTransmission{m: m, sdev: sdev, rdev: rdev}
	tr := &nt.Transmission
	tr.cfg = cfg
	tr.params = p
	tr.units = []int{rdev}
	tr.data = [][]Symbol{payload}
	tr.chunks = tr.wireChunks()

	// The sender floods a window in the *receiver's* device memory; the
	// receiver probes a window in the *sender's* device memory, so its read
	// replies share the sender's flood link. Each side cancels its own
	// device's clock offset through the phase hook (offsets are constants,
	// readable at any time; global cycle 0 is used for definiteness).
	sWindow := mesh.DevBase(rdev) + remoteWindowBase
	rWindow := mesh.DevBase(sdev) + remoteWindowBase
	sClocks := m.GPU(sdev).Clocks()
	rClocks := m.GPU(rdev).Clocks()

	pp := tr.params
	// One SM's LSU cannot back up the NVLink (its outstanding-request cap
	// is below the link's bandwidth-delay product), so the flood runs on
	// several SMs of the sending device — NVBleed saturates the link with a
	// multi-SM copy for the same reason. The receiver needs no co-location
	// trick at all: it sits alone on the other device.
	senderSMs := nvlinkSenderSMs
	if n := cfg.NumSMs(); senderSMs > n {
		senderSMs = n
	}
	tr.senderSpec = device.KernelSpec{
		Name:          "cc-sender-nvlink",
		Blocks:        senderSMs,
		WarpsPerBlock: pp.SenderWarps,
		New: func(b, w int) device.Program {
			return &senderProgram{
				p:      &tr.params,
				chunk:  func(smid int) []Symbol { return tr.chunks[0] },
				window: func(smid int) uint64 { return sWindow },
				phase:  func(smid int) uint64 { return sClocks.Read64(smid, 0) },
				write:  true, // writes carry data flits across the flood link
				lineB:  cfg.L2LineBytes,
				simt:   cfg.SIMTWidth,
				rng:    rand.New(rand.NewSource(pp.Seed ^ int64(b*64+w+1)*2654435761)),
			}
		},
	}

	tr.receivers = make([]*receiverProgram, 1)
	tr.receiverSpec = device.KernelSpec{
		Name:          "cc-receiver-nvlink",
		Blocks:        1,
		WarpsPerBlock: 1,
		New: func(b, w int) device.Program {
			return &receiverProgram{
				p:      &tr.params,
				active: func(smid int) bool { return true },
				window: func(smid int) uint64 { return rWindow },
				phase:  func(smid int) uint64 { return rClocks.Read64(smid, 0) },
				lineB:  cfg.L2LineBytes,
				simt:   cfg.SIMTWidth,
				rng:    rand.New(rand.NewSource(pp.Seed ^ int64(b+7)*40503)),
			}
		},
	}
	tr.bindReceivers(func(smid int) (int, bool) { return 0, true })

	return nt, nil
}

// Run preloads both probe windows on their owning devices, launches the
// sender on sdev and the receiver on rdev launchSkew global cycles later,
// runs the mesh until both kernels complete, and decodes the transmission.
func (nt *NVLinkTransmission) Run(launchSkew uint64) (Result, error) {
	m, tr := nt.m, &nt.Transmission
	windowBytes := uint64(2 * tr.cfg.SIMTWidth * tr.cfg.L2LineBytes)
	m.Preload(nt.rdev, mesh.DevBase(nt.rdev)+remoteWindowBase, windowBytes)
	m.Preload(nt.sdev, mesh.DevBase(nt.sdev)+remoteWindowBase, windowBytes)
	if _, err := m.Launch(nt.sdev, tr.senderSpec); err != nil {
		return Result{}, err
	}
	if _, err := m.LaunchAt(nt.rdev, m.Now()+launchSkew, tr.receiverSpec); err != nil {
		return Result{}, err
	}
	symbols := len(tr.chunks[0]) + tr.params.ResyncGuardSlots
	budget := uint64(symbols+64) * tr.params.SlotCycles * 8
	if budget < 4_000_000 {
		budget = 4_000_000
	}
	if err := m.RunKernels(budget); err != nil {
		return Result{}, err
	}
	return tr.decode()
}

// CalibrateRemote is Calibrate for the NVLink channel: it transmits a known
// alternating pattern from sdev to rdev over a fresh mesh built from base
// (gpus devices; zero means two) and returns params with thresholds at the
// measured level-mean midpoints. The calibration mesh is discarded — the
// thresholds depend only on the NVLink parameters and topology, which any
// mesh built from the same base reproduces.
func CalibrateRemote(base config.Config, gpus, sdev, rdev int, p Params, preambleSlots int) (Params, error) {
	p.Kind = NVLinkChannel
	p2, err := p.withDefaults()
	if err != nil {
		return p, err
	}
	if gpus == 0 {
		gpus = 2
	}
	levels := p2.Levels()
	payload := calibrationPayload(preambleSlots, levels)
	cal := p2
	cal.Coding, cal.Repeat, cal.PreambleSymbols, cal.ResyncGuardSlots = CodingNone, 0, 0, 0
	m, err := mesh.New(base, gpus)
	if err != nil {
		return p, err
	}
	defer m.Close()
	nt, err := NewNVLinkTransmission(m, sdev, rdev, payload, cal)
	if err != nil {
		return p, err
	}
	res, err := nt.Run(0)
	if err != nil {
		return p, err
	}
	ths, err := thresholdsFromTrace(res.Pairs[0].Trace, payload, levels)
	if err != nil {
		return p, err
	}
	p2.Thresholds = ths
	p2.Threshold = ths[0]
	return p2, nil
}
