// The engine-parallel tier fixture: this file is listed in
// TickModelRules.ParallelFiles, so goroutines, channels, and sync are all
// sanctioned here — without any //lint:allow directives.
package engine

import "sync"

// Pool is a minimal worker pool exercising every banned construct.
type Pool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

// Go dispatches f on a fresh goroutine.
func (p *Pool) Go(f func()) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		f()
	}()
}

// Send queues f without running it.
func (p *Pool) Send(f func()) {
	select {
	case p.jobs <- f:
	default:
	}
}
