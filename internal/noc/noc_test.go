package noc

import (
	"testing"
	"testing/quick"

	"gpunoc/internal/config"
	"gpunoc/internal/packet"
)

type edge struct {
	pkts  []*packet.Packet
	times []uint64
}

func (e *edge) deliver(now uint64, p *packet.Packet) {
	e.pkts = append(e.pkts, p)
	e.times = append(e.times, now)
}

func mkNet(t *testing.T, cfg *config.Config) (*Network, *edge, *edge) {
	t.Helper()
	var slices, sms edge
	n, err := New(cfg, slices.deliver, sms.deliver)
	if err != nil {
		t.Fatal(err)
	}
	return n, &slices, &sms
}

func req(id uint64, sm int, kind packet.Kind, slice int) *packet.Packet {
	return &packet.Packet{ID: id, Kind: kind, Slice: slice, SrcSM: sm,
		Tag: packet.WarpTag{SM: sm, Warp: 0, Op: 1}}
}

func TestNewValidation(t *testing.T) {
	cfg := config.Small()
	if _, err := New(&cfg, nil, func(uint64, *packet.Packet) {}); err == nil {
		t.Error("nil slice sink should fail")
	}
	if _, err := New(&cfg, func(uint64, *packet.Packet) {}, nil); err == nil {
		t.Error("nil SM sink should fail")
	}
	bad := cfg
	bad.NumGPCs = 0
	if _, err := New(&bad, func(uint64, *packet.Packet) {}, func(uint64, *packet.Packet) {}); err == nil {
		t.Error("invalid config should fail")
	}
}

// TestRequestTraversal: a request injected at an SM reaches its destination
// slice after the sum of hop latencies and serialization.
func TestRequestTraversal(t *testing.T) {
	cfg := config.Small()
	n, slices, _ := mkNet(t, &cfg)
	p := req(1, 0, packet.ReadReq, 3)
	n.InjectRequest(0, 0, p)
	var now uint64
	for ; now < 200 && len(slices.pkts) == 0; now++ {
		n.Tick(now)
	}
	if len(slices.pkts) != 1 {
		t.Fatal("request never arrived")
	}
	minLat := uint64(cfg.NoC.TPCLinkLatency + cfg.NoC.GPCLinkLatency + cfg.NoC.XbarLatency)
	if slices.times[0] < minLat {
		t.Errorf("arrived at %d, before the %d-cycle hop latency floor", slices.times[0], minLat)
	}
	if slices.times[0] > minLat+12 {
		t.Errorf("arrived at %d, far beyond the latency floor %d", slices.times[0], minLat)
	}
}

// TestReplyTraversal: a reply injected at a slice reaches the right SM.
func TestReplyTraversal(t *testing.T) {
	cfg := config.Small()
	n, _, sms := mkNet(t, &cfg)
	p := req(1, 5, packet.ReadReply, 2)
	n.InjectReply(0, p)
	for now := uint64(0); now < 200 && len(sms.pkts) == 0; now++ {
		n.Tick(now)
	}
	if len(sms.pkts) != 1 {
		t.Fatal("reply never arrived")
	}
	if sms.pkts[0].Tag.SM != 5 {
		t.Errorf("reply delivered for SM %d", sms.pkts[0].Tag.SM)
	}
}

func TestInjectValidation(t *testing.T) {
	cfg := config.Small()
	n, _, _ := mkNet(t, &cfg)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("reply on request subnet", func() {
		n.InjectRequest(0, 0, req(1, 0, packet.ReadReply, 0))
	})
	mustPanic("unrouted slice", func() {
		n.InjectRequest(0, 0, req(1, 0, packet.ReadReq, -1))
	})
	mustPanic("request on reply subnet", func() {
		n.InjectReply(0, req(1, 0, packet.ReadReq, 0))
	})
}

// TestTPCWriteContention reproduces Fig 2 at the fabric level: two SMs of
// one TPC streaming writes drain in ~2x the time of one SM, while two SMs of
// different TPCs do not slow each other down.
func TestTPCWriteContention(t *testing.T) {
	cfg := config.Small()
	drain := func(smA, smB int, nPkts int) uint64 {
		n, slices, _ := mkNet(t, &cfg)
		id := uint64(0)
		for i := 0; i < nPkts; i++ {
			id++
			pa := req(id, smA, packet.WriteReq, i%cfg.NumL2Slices)
			n.InjectRequest(0, smA, pa)
			if smB >= 0 {
				id++
				pb := req(id, smB, packet.WriteReq, i%cfg.NumL2Slices)
				n.InjectRequest(0, smB, pb)
			}
		}
		var lastA uint64
		for now := uint64(0); !n.Idle(); now++ {
			n.Tick(now)
		}
		for i, p := range slices.pkts {
			if p.SrcSM == smA {
				lastA = slices.times[i]
			}
		}
		return lastA
	}
	alone := drain(0, -1, 64)
	sameTPC := drain(0, 1, 64)
	diffTPC := drain(0, 2, 64)
	if r := float64(sameTPC) / float64(alone); r < 1.85 || r > 2.15 {
		t.Errorf("same-TPC write contention ratio %.2f, want ~2", r)
	}
	if r := float64(diffTPC) / float64(alone); r > 1.1 {
		t.Errorf("different-TPC writes slowed SM0 by %.2fx", r)
	}
}

// TestGPCReplySpeedupShape: replies heading to many TPCs of one GPC saturate
// the GPC reply channel only past its speedup factor (~3.27 flits/cycle).
func TestGPCReplySpeedupShape(t *testing.T) {
	cfg := config.Volta()
	drain := func(numTPCs, pktsPerTPC int) float64 {
		n, _, sms := mkNet(t, &cfg)
		tpcs := cfg.TPCsOfGPC(0)[:numTPCs]
		id := uint64(0)
		for i := 0; i < pktsPerTPC; i++ {
			for _, tpc := range tpcs {
				id++
				sm := cfg.SMsOfTPC(tpc)[0]
				n.InjectReply(0, req(id, sm, packet.ReadReply, int(id)%cfg.NumL2Slices))
			}
		}
		var last uint64
		for now := uint64(0); !n.Idle(); now++ {
			n.Tick(now)
		}
		for i := range sms.pkts {
			if sms.times[i] > last {
				last = sms.times[i]
			}
		}
		return float64(last) / float64(pktsPerTPC)
	}
	// Per-TPC drain cost: below saturation it is bounded by the TPC reply
	// rate; at 7 TPCs the shared GPC link dominates.
	at2 := drain(2, 100)
	at7 := drain(7, 100)
	if at7 < at2*1.5 {
		t.Errorf("7-TPC reply drain (%.1f cyc/pkt) should far exceed 2-TPC (%.1f)", at7, at2)
	}
}

func TestLinkAccessors(t *testing.T) {
	cfg := config.Small()
	n, _, _ := mkNet(t, &cfg)
	if n.TPCRequestLink(0) == nil || n.GPCRequestLink(0) == nil ||
		n.GPCReplyLink(0) == nil || n.TPCReplyLink(0) == nil {
		t.Error("accessors returned nil")
	}
	if n.TPCRequestLink(0).Inputs() != cfg.SMsPerTPC {
		t.Error("TPC mux fan-in wrong")
	}
}

// Property: packet conservation through the whole fabric — every injected
// request is delivered to its slice exactly once, every reply to its SM, for
// random SMs, kinds, and slices.
func TestQuickFabricConservation(t *testing.T) {
	cfg := config.Small()
	f := func(seeds []uint16) bool {
		if len(seeds) > 120 {
			seeds = seeds[:120]
		}
		var slices, sms edge
		n, err := New(&cfg, slices.deliver, sms.deliver)
		if err != nil {
			return false
		}
		nReq, nRep := 0, 0
		for i, s := range seeds {
			smID := int(s) % cfg.NumSMs()
			slice := int(s>>3) % cfg.NumL2Slices
			if s%2 == 0 {
				kinds := []packet.Kind{packet.ReadReq, packet.WriteReq, packet.AtomicReq}
				n.InjectRequest(uint64(i), smID, req(uint64(i), smID, kinds[int(s>>5)%3], slice))
				nReq++
			} else {
				kinds := []packet.Kind{packet.ReadReply, packet.WriteReply, packet.AtomicReply}
				n.InjectReply(uint64(i), req(uint64(i), smID, kinds[int(s>>5)%3], slice))
				nRep++
			}
			n.Tick(uint64(i))
		}
		for now := uint64(len(seeds)); now < 1_000_000 && !n.Idle(); now++ {
			n.Tick(now)
		}
		if !n.Idle() || len(slices.pkts) != nReq || len(sms.pkts) != nRep {
			return false
		}
		for _, p := range slices.pkts {
			if !p.Kind.IsRequest() {
				return false
			}
		}
		for _, p := range sms.pkts {
			if p.Kind.IsRequest() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
