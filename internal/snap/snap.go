// Package snap is the versioned deterministic binary codec behind engine
// checkpoints (engine.GPU.Snapshot/Restore, mesh.Mesh.Snapshot/Restore).
// It is a leaf package: nothing but the standard library, so every layer of
// the simulator may use it.
//
// # Encoding rules
//
// The format is a flat little-endian byte stream framed by a fixed header
// (magic, format version, configuration hash) and a trailing CRC-32C. The
// contract that makes snapshots comparable byte-for-byte:
//
//   - every field is written in a fixed order decided by the component that
//     owns it — there is no reflection and no schema negotiation;
//   - map contents are always emitted in sorted key order (the determinism
//     lint bans unsorted map ranges on result paths, and a snapshot is a
//     result path);
//   - section marks (Mark/Expect) frame each component so an encode/decode
//     skew fails fast at the component boundary instead of mis-restoring
//     silently.
//
// # Versioning rules
//
// Version is bumped on any change to the byte layout — adding a field,
// reordering sections, changing a width. There is no in-place migration:
// a snapshot from another version fails with ErrVersion (checkpoints are
// caches of computation, so the recovery is always "re-run from cycle 0").
// A payload that fails the CRC or runs short fails with ErrCorrupt, and a
// snapshot taken under a different configuration fails with
// ErrConfigMismatch; none of these can silently mis-restore.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Magic identifies a gpunoc snapshot ("GNOC" little-endian).
const Magic uint32 = 0x434f4e47

// Version is the current snapshot format version. Bump it on any layout
// change; old snapshots are rejected, never migrated.
const Version uint32 = 1

// ErrVersion is returned when a snapshot's format version does not match
// Version exactly.
var ErrVersion = errors.New("snap: snapshot format version mismatch")

// ErrCorrupt is returned when a snapshot fails its CRC, runs out of bytes
// mid-decode, ends with trailing garbage, or misses a section mark.
var ErrCorrupt = errors.New("snap: snapshot corrupt")

// ErrConfigMismatch is returned when a snapshot was taken under a different
// configuration hash than the one it is being restored into.
var ErrConfigMismatch = errors.New("snap: snapshot configuration mismatch")

// checksum computes the CRC-32C of a payload (crc32 caches the Castagnoli
// table internally, so this allocates nothing after the first call).
func checksum(payload []byte) uint32 {
	return crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli))
}

// headerLen is the encoded size of the fixed header: magic, version, config
// hash, payload length.
const headerLen = 4 + 4 + 8 + 8

// Encoder accumulates a snapshot payload. Create one with NewEncoder, write
// fields in a fixed order, and call Finish to frame the payload with the
// header and CRC.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with room for the header already reserved.
func NewEncoder() *Encoder {
	return &Encoder{buf: make([]byte, headerLen, 4096)}
}

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as a little-endian int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 as its IEEE-754 bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Mark frames the start of a named section. Decoder.Expect with the same
// name must match, which turns encode/decode skew into a fast ErrCorrupt at
// the section boundary.
func (e *Encoder) Mark(name string) {
	e.U32(sectionTag(name))
}

// Finish frames the payload with the header (magic, version, configHash,
// payload length) and the trailing CRC-32C and returns the snapshot bytes.
// The encoder must not be reused afterwards.
func (e *Encoder) Finish(configHash uint64) []byte {
	payload := e.buf[headerLen:]
	binary.LittleEndian.PutUint32(e.buf[0:], Magic)
	binary.LittleEndian.PutUint32(e.buf[4:], Version)
	binary.LittleEndian.PutUint64(e.buf[8:], configHash)
	binary.LittleEndian.PutUint64(e.buf[16:], uint64(len(payload)))
	return binary.LittleEndian.AppendUint32(e.buf, checksum(payload))
}

// Decoder reads a snapshot payload with a sticky error: after the first
// failed read every subsequent read returns zero values, and Close reports
// the error once. This keeps component restore code free of per-field error
// handling without ever mis-restoring (the caller must check Close).
type Decoder struct {
	data []byte
	off  int
	err  error
}

// NewDecoder validates the header of a snapshot — magic, version, config
// hash, payload length, CRC — and returns a decoder positioned at the first
// payload byte. The error is ErrVersion, ErrConfigMismatch, or ErrCorrupt
// (wrapped with detail).
func NewDecoder(data []byte, wantConfigHash uint64) (*Decoder, error) {
	if len(data) < headerLen+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the fixed header", ErrCorrupt, len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != Magic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, m)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != Version {
		return nil, fmt.Errorf("%w: snapshot has format version %d, this build reads %d", ErrVersion, v, Version)
	}
	if h := binary.LittleEndian.Uint64(data[8:]); h != wantConfigHash {
		return nil, fmt.Errorf("%w: snapshot config hash %#x, restoring config hashes %#x", ErrConfigMismatch, h, wantConfigHash)
	}
	plen := binary.LittleEndian.Uint64(data[16:])
	if uint64(len(data)) != headerLen+plen+4 {
		return nil, fmt.Errorf("%w: header declares %d payload bytes, %d present", ErrCorrupt, plen, len(data)-headerLen-4)
	}
	payload := data[headerLen : headerLen+plen]
	want := binary.LittleEndian.Uint32(data[headerLen+plen:])
	if got := checksum(payload); got != want {
		return nil, fmt.Errorf("%w: CRC %#x, expected %#x", ErrCorrupt, got, want)
	}
	return &Decoder{data: payload}, nil
}

// fail records the first decode error.
func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// take returns the next n payload bytes, or nil after exhaustion.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.data) {
		d.fail(fmt.Errorf("%w: payload exhausted at offset %d (want %d more bytes)", ErrCorrupt, d.off, n))
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded as int64.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64 from its IEEE-754 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.U64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.data)-d.off) {
		d.fail(fmt.Errorf("%w: string length %d exceeds remaining payload", ErrCorrupt, n))
		return ""
	}
	return string(d.take(int(n)))
}

// Blob reads a length-prefixed byte slice (a copy of the payload bytes).
func (d *Decoder) Blob() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.data)-d.off) {
		d.fail(fmt.Errorf("%w: blob length %d exceeds remaining payload", ErrCorrupt, n))
		return nil
	}
	return append([]byte(nil), d.take(int(n))...)
}

// Expect consumes a section mark and fails the decoder when it does not
// match the named section written by Encoder.Mark.
func (d *Decoder) Expect(name string) {
	want := sectionTag(name)
	if got := d.U32(); d.err == nil && got != want {
		d.fail(fmt.Errorf("%w: section mark %#x where %q (%#x) was expected", ErrCorrupt, got, name, want))
	}
}

// Len validates a decoded element count against the remaining payload (each
// element needs at least one byte), guarding slice pre-allocations against
// corrupt length prefixes.
func (d *Decoder) Len() int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.data)-d.off) {
		d.fail(fmt.Errorf("%w: length prefix %d exceeds remaining payload", ErrCorrupt, n))
		return 0
	}
	return int(n)
}

// Close verifies the whole payload was consumed and returns the first
// decode error, if any.
func (d *Decoder) Close() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(d.data)-d.off)
	}
	return nil
}

// Err returns the sticky decode error without the end-of-payload check.
func (d *Decoder) Err() error { return d.err }

// Corruptf builds an ErrCorrupt-wrapped error for structural mismatches
// detected by component restore code (counts that disagree with the
// constructed topology, policies that disagree with the configuration).
func Corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// sectionTag hashes a section name to the 32-bit mark written by Mark
// (FNV-1a; names are short and fixed, collisions across the handful of
// component names are not a practical concern).
func sectionTag(name string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= prime32
	}
	return h
}
