// Package probe is the deterministic, cycle-level instrumentation layer of
// the simulator: allocation-light counters, gauges, log2-bucketed latency
// histograms, link occupancy trackers, and a bounded trace ring of span and
// instant events — all stamped in *simulated cycles*, never wall time, so
// instrumented runs stay byte-reproducible and the lint determinism rule
// holds.
//
// A probe.Registry is owned by one engine.GPU (handed down through
// config.Config, the same way the CycleMeter travels) and every contention
// point the paper names registers its metrics there at construction time:
// the TPC/GPC muxes and crossbar ports (link occupancy, queue depth, queue
// wait), arbiter grant/deny per input, L2 slice hit/miss/latency, DRAM bank
// row hits and queue wait, and SM LSU issue stalls. A nil registry is the
// no-op fast path — every method is safe on a nil receiver and components
// keep a single nil check on their hot paths — so an uninstrumented
// simulation is byte-identical to, and within noise as fast as, the
// pre-instrumentation code.
//
// The package has no package-level state and spawns no goroutines: like the
// rest of the engine substrate it lives inside the single-goroutine tick
// model, and two GPUs instrumented with two registries share nothing.
package probe

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"gpunoc/internal/stats"
)

// Counter is a monotonically increasing event count. All methods are safe on
// a nil receiver (the disabled-probe fast path).
type Counter struct {
	n uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.n += n
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count (0 on a nil counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge is an instantaneous level (queue depth, MSHR occupancy) with a
// high-water mark. All methods are safe on a nil receiver.
type Gauge struct {
	v   int64
	max int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add shifts the gauge by d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.Set(g.v + d)
}

// Load returns the current value (0 on a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the high-water mark (0 on a nil gauge).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// histBuckets is the fixed bucket count of a Hist: bucket i holds values
// whose bit length is i, i.e. bucket 0 is exactly 0, bucket i covers
// [2^(i-1), 2^i). 64-bit values need 65 buckets.
const histBuckets = 65

// Hist is a histogram of uint64 samples (latencies in cycles) over fixed
// log2 buckets: constant memory, no per-observation allocation, and quantile
// estimates good to within a power of two refined by linear interpolation
// inside the bucket. All methods are safe on a nil receiver.
type Hist struct {
	count   uint64
	sum     uint64
	max     uint64
	buckets [histBuckets]uint64
}

// Observe folds one sample into the histogram.
func (h *Hist) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.buckets[bits.Len64(v)]++
}

// Count returns the number of samples observed.
func (h *Hist) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all samples.
func (h *Hist) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Max returns the largest sample observed.
func (h *Hist) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean of the samples (0 when empty).
func (h *Hist) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by locating the bucket
// holding the target rank and interpolating linearly across its value range.
func (h *Hist) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count-1)
	var seen uint64
	for b, n := range h.buckets {
		if n == 0 {
			continue
		}
		hi := seen + n
		if rank < float64(hi) {
			lo, width := bucketBounds(b)
			if n == 1 {
				return float64(lo)
			}
			frac := (rank - float64(seen)) / float64(n-1)
			v := float64(lo) + frac*float64(width-1)
			if m := float64(h.max); v > m {
				return m
			}
			return v
		}
		seen = hi
	}
	return float64(h.max)
}

// bucketBounds returns the smallest value of bucket b and the bucket width.
func bucketBounds(b int) (lo, width uint64) {
	if b == 0 {
		return 0, 1
	}
	lo = uint64(1) << (b - 1)
	return lo, lo
}

// Dist summarizes the histogram in the shared stats.Dist latency shape
// (count/mean/p50/p95/p99/max), so every component's metrics report the same
// fields the experiment-level summaries use.
func (h *Hist) Dist() stats.Dist {
	if h == nil || h.count == 0 {
		return stats.Dist{}
	}
	return stats.Dist{
		Count: int(h.count),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   float64(h.max),
	}
}

// Occupancy tracks the utilization of a rate-limited channel: the component
// adds "busy units" as it serializes traffic (the link adds flits*rateDen,
// so one cycle of full utilization equals UnitsPerCycle units), and the
// snapshot divides by elapsed cycles. A saturated link reports ~1.0. All
// methods are safe on a nil receiver.
type Occupancy struct {
	busy        uint64
	unitsPerCyc uint64
}

// AddBusy records units of channel busy time.
func (o *Occupancy) AddBusy(units uint64) {
	if o != nil {
		o.busy += units
	}
}

// Busy returns the accumulated busy units.
func (o *Occupancy) Busy() uint64 {
	if o == nil {
		return 0
	}
	return o.busy
}

// Value returns the occupancy over the first `cycles` simulated cycles:
// busy/(UnitsPerCycle*cycles), clamped to [0, 1].
func (o *Occupancy) Value(cycles uint64) float64 {
	if o == nil || o.unitsPerCyc == 0 || cycles == 0 {
		return 0
	}
	v := float64(o.busy) / (float64(o.unitsPerCyc) * float64(cycles))
	return math.Min(v, 1)
}

// Registry owns every metric of one instrumented GPU. Metric lookups are
// idempotent — registering a name twice returns the existing instrument, so
// an experiment that builds several engine instances from one config
// accumulates across them — and the snapshot lists metrics sorted by name,
// independent of registration order. All methods are safe on a nil receiver
// and return nil instruments, which is the disabled fast path.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
	occs     map[string]*Occupancy
	trace    *Trace
}

// NewRegistry returns an empty registry with tracing disabled.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Hist{},
		occs:     map[string]*Occupancy{},
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Hist returns the histogram registered under name, creating it on first
// use.
func (r *Registry) Hist(name string) *Hist {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Hist{}
		r.hists[name] = h
	}
	return h
}

// Occupancy returns the occupancy tracker registered under name, creating it
// with the given capacity (busy units per cycle at full utilization) on
// first use.
func (r *Registry) Occupancy(name string, unitsPerCycle uint64) *Occupancy {
	if r == nil {
		return nil
	}
	o, ok := r.occs[name]
	if !ok {
		o = &Occupancy{unitsPerCyc: unitsPerCycle}
		r.occs[name] = o
	}
	return o
}

// EnableTrace attaches a bounded trace ring of at most cap events (values
// < 1 select DefaultTraceCap) and returns it. Idempotent: a second call
// returns the existing ring.
func (r *Registry) EnableTrace(cap int) *Trace {
	if r == nil {
		return nil
	}
	if r.trace == nil {
		r.trace = newTrace(cap)
	}
	return r.trace
}

// Tracer returns the trace ring, or nil when tracing is disabled (or the
// registry itself is nil). Components hold the result and emit through it
// with nil-safe calls.
func (r *Registry) Tracer() *Trace {
	if r == nil {
		return nil
	}
	return r.trace
}

// CounterStat is one counter in a snapshot.
type CounterStat struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeStat is one gauge in a snapshot.
type GaugeStat struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Max   int64  `json:"max"`
}

// HistStat is one histogram in a snapshot: the raw count/sum plus the shared
// stats.Dist latency shape.
type HistStat struct {
	Name string     `json:"name"`
	Sum  uint64     `json:"sum"`
	Dist stats.Dist `json:"dist"`
}

// OccStat is one occupancy tracker in a snapshot. Units is the tracker's
// busy-units-per-cycle capacity, so a consumer diffing two snapshots can
// normalize the Busy delta over any cycle span: rate = ΔBusy/(Units·Δcycles).
type OccStat struct {
	Name  string  `json:"name"`
	Busy  uint64  `json:"busy_units"`
	Units uint64  `json:"units_per_cycle"`
	Value float64 `json:"value"`
}

// Snapshot is a deterministic point-in-time copy of every metric, sorted by
// name within each kind. Cycles is the simulated-cycle horizon occupancies
// are computed against.
type Snapshot struct {
	Cycles    uint64        `json:"cycles"`
	Counters  []CounterStat `json:"counters,omitempty"`
	Gauges    []GaugeStat   `json:"gauges,omitempty"`
	Hists     []HistStat    `json:"hists,omitempty"`
	Occupancy []OccStat     `json:"occupancy,omitempty"`
}

// Snapshot captures every registered metric at the given simulated cycle.
// The result depends only on the metric values and names, never on map
// iteration or registration order. Safe on a nil registry (empty snapshot).
func (r *Registry) Snapshot(cycles uint64) Snapshot {
	s := Snapshot{Cycles: cycles}
	if r == nil {
		return s
	}
	for _, name := range sortedKeys(r.counters) {
		s.Counters = append(s.Counters, CounterStat{Name: name, Value: r.counters[name].Load()})
	}
	for _, name := range sortedKeys(r.gauges) {
		g := r.gauges[name]
		s.Gauges = append(s.Gauges, GaugeStat{Name: name, Value: g.Load(), Max: g.Max()})
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		s.Hists = append(s.Hists, HistStat{Name: name, Sum: h.Sum(), Dist: h.Dist()})
	}
	for _, name := range sortedKeys(r.occs) {
		o := r.occs[name]
		s.Occupancy = append(s.Occupancy, OccStat{Name: name, Busy: o.Busy(), Units: o.unitsPerCyc, Value: o.Value(cycles)})
	}
	return s
}

// sortedKeys returns the map keys in ascending order (the deterministic
// iteration order every snapshot uses).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FindOccupancy returns the occupancy stat named name (tests and CLI
// summaries).
func (s Snapshot) FindOccupancy(name string) (OccStat, bool) {
	for _, o := range s.Occupancy {
		if o.Name == name {
			return o, true
		}
	}
	return OccStat{}, false
}

// FindCounter returns the counter stat named name.
func (s Snapshot) FindCounter(name string) (CounterStat, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c, true
		}
	}
	return CounterStat{}, false
}

// FindGauge returns the gauge stat named name.
func (s Snapshot) FindGauge(name string) (GaugeStat, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g, true
		}
	}
	return GaugeStat{}, false
}

// FindHist returns the histogram stat named name.
func (s Snapshot) FindHist(name string) (HistStat, bool) {
	for _, h := range s.Hists {
		if h.Name == name {
			return h, true
		}
	}
	return HistStat{}, false
}

// CSV renders the snapshot as flat kind,name,... rows — one deterministic
// file per experiment for plotting alongside the figure CSVs.
func (s Snapshot) CSV() string {
	var b strings.Builder
	b.WriteString("kind,name,value,max,count,mean,p50,p95,p99\n")
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "counter,%s,%d,,,,,,\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "gauge,%s,%d,%d,,,,,\n", g.Name, g.Value, g.Max)
	}
	for _, h := range s.Hists {
		fmt.Fprintf(&b, "hist,%s,%d,%g,%d,%g,%g,%g,%g\n",
			h.Name, h.Sum, h.Dist.Max, h.Dist.Count, h.Dist.Mean, h.Dist.P50, h.Dist.P95, h.Dist.P99)
	}
	for _, o := range s.Occupancy {
		fmt.Fprintf(&b, "occupancy,%s,%.6f,,,,,,\n", o.Name, o.Value)
	}
	return b.String()
}
