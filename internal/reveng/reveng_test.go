package reveng

import (
	"testing"

	"gpunoc/internal/config"
)

func smallCfg() config.Config {
	c := config.Small()
	c.WarpIssueJitter = 0
	return c
}

// TestTPCSweepFindsPair reproduces the Fig 2 discovery on the small GPU: the
// only SM that doubles SM0's execution time is SM1, its TPC mate.
func TestTPCSweepFindsPair(t *testing.T) {
	cfg := smallCfg()
	points, err := TPCSweep(&cfg, 0, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != cfg.NumSMs()-1 {
		t.Fatalf("%d points", len(points))
	}
	pair, err := PairedSM(points)
	if err != nil {
		t.Fatal(err)
	}
	if pair != 1 {
		t.Errorf("paired SM = %d, want 1", pair)
	}
	for _, p := range points {
		if p.OtherSM == 1 {
			if p.Normalized < 1.6 {
				t.Errorf("TPC mate contention only %.2fx", p.Normalized)
			}
		} else if p.Normalized > 1.3 {
			t.Errorf("SM%d (different TPC) shows %.2fx contention", p.OtherSM, p.Normalized)
		}
	}
}

func TestTPCSweepValidation(t *testing.T) {
	cfg := smallCfg()
	if _, err := TPCSweep(&cfg, -1, 2, 5); err == nil {
		t.Error("negative base SM should fail")
	}
	if _, err := TPCSweep(&cfg, cfg.NumSMs(), 2, 5); err == nil {
		t.Error("out-of-range base SM should fail")
	}
}

func TestGroupFromSweepSingleton(t *testing.T) {
	points := []Fig3Point{
		{ProbeTPC: 1, Normalized: 1.001},
		{ProbeTPC: 2, Normalized: 1.002},
	}
	group := GroupFromSweep(0, points, 0)
	if len(group) != 1 || group[0] != 0 {
		t.Errorf("flat sweep should yield singleton, got %v", group)
	}
	if g := GroupFromSweep(5, nil, 0); len(g) != 1 || g[0] != 5 {
		t.Errorf("empty sweep should yield singleton, got %v", g)
	}
}

func TestPairedSMRejectsFlatSweep(t *testing.T) {
	points := []Fig2Point{{OtherSM: 1, Normalized: 1.02}, {OtherSM: 2, Normalized: 1.01}}
	if _, err := PairedSM(points); err == nil {
		t.Error("flat sweep should not identify a pair")
	}
}

// TestGPCSweepGroups: on the small GPU (GPC0 = {TPC0, TPC2}), probing from
// TPC0 elevates TPC2 above TPC1/TPC3.
func TestGPCSweepGroups(t *testing.T) {
	cfg := smallCfg()
	points, err := GPCSweep(&cfg, 0, GPCProbeOptions{Reps: 4, Background: -1, Ops: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	byProbe := map[int]Fig3Point{}
	for _, p := range points {
		byProbe[p.ProbeTPC] = p
	}
	sameGPC := byProbe[2].MeanTime
	otherA := byProbe[1].MeanTime
	otherB := byProbe[3].MeanTime
	if sameGPC <= otherA || sameGPC <= otherB {
		t.Errorf("same-GPC probe (%.0f) not above other-GPC probes (%.0f, %.0f)",
			sameGPC, otherA, otherB)
	}
	group := GroupFromSweep(0, points, 0)
	if len(group) != 2 || group[0] != 0 || group[1] != 2 {
		t.Errorf("inferred group = %v, want [0 2]", group)
	}
}

// TestMapGPCsRecoversTopology runs the full Fig 4 mapping on the small GPU
// and compares against the ground-truth TPC->GPC assignment.
func TestMapGPCsRecoversTopology(t *testing.T) {
	cfg := smallCfg()
	groups, err := MapGPCs(&cfg, GPCProbeOptions{Reps: 4, Background: -1, Ops: 10, Seed: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != cfg.NumGPCs {
		t.Fatalf("found %d groups, want %d: %v", len(groups), cfg.NumGPCs, groups)
	}
	for _, group := range groups {
		want := cfg.GPCOfTPC(group[0])
		for _, tpc := range group {
			if cfg.GPCOfTPC(tpc) != want {
				t.Errorf("group %v mixes GPCs", group)
			}
		}
		if len(group) != len(cfg.TPCsOfGPC(want)) {
			t.Errorf("group %v incomplete for GPC %d (%v)", group, want, cfg.TPCsOfGPC(want))
		}
	}
}

// TestClockSurveyShape checks the Fig 6 structure: full coverage and near-
// identical values within a TPC.
func TestClockSurveyShape(t *testing.T) {
	cfg := smallCfg()
	samples, err := ClockSurvey(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != cfg.NumSMs() {
		t.Fatalf("%d samples", len(samples))
	}
	bySM := map[int]uint32{}
	for _, s := range samples {
		bySM[s.SM] = s.Value
	}
	for tpc := 0; tpc < cfg.NumTPCs(); tpc++ {
		sms := cfg.SMsOfTPC(tpc)
		d := int64(bySM[sms[0]]) - int64(bySM[sms[1]])
		if d < 0 {
			d = -d
		}
		if d > 40 {
			t.Errorf("TPC %d clock readings differ by %d", tpc, d)
		}
	}
}

// TestMeasureSkewBounds reproduces the §4.1 statistics: mean TPC skew under
// 5 cycles plus a small read-time offset, mean GPC skew under 15 plus the
// same allowance.
func TestMeasureSkewBounds(t *testing.T) {
	cfg := smallCfg()
	st, err := MeasureSkew(&cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The survey reads clocks a few scheduler cycles apart, so allow the
	// measurement overhead on top of the configured skew bounds.
	if st.MeanTPCSkew > float64(cfg.ClockSkewTPCMax)+20 {
		t.Errorf("mean TPC skew %.1f too large", st.MeanTPCSkew)
	}
	if st.MeanGPCSkew > float64(cfg.ClockSkewGPCMax)+20 {
		t.Errorf("mean GPC skew %.1f too large", st.MeanGPCSkew)
	}
	if st.MeanTPCSkew > st.MeanGPCSkew {
		t.Errorf("TPC skew (%.1f) should not exceed GPC skew (%.1f)", st.MeanTPCSkew, st.MeanGPCSkew)
	}
}

// TestTBProbeInterleave verifies the §4.3 observation end to end: the first
// NumTPCs blocks land on distinct TPCs; the next wave fills the second SMs.
func TestTBProbeInterleave(t *testing.T) {
	cfg := smallCfg()
	sms, err := TBProbe(&cfg, cfg.NumSMs())
	if err != nil {
		t.Fatal(err)
	}
	firstWave := map[int]bool{}
	for _, sm := range sms[:cfg.NumTPCs()] {
		tpc := cfg.TPCOfSM(sm)
		if firstWave[tpc] {
			t.Fatalf("first wave doubled up on TPC %d", tpc)
		}
		firstWave[tpc] = true
	}
	occupied := map[int]int{}
	for _, sm := range sms {
		occupied[sm]++
	}
	for sm, n := range occupied {
		if n != 1 {
			t.Errorf("SM %d hosts %d blocks", sm, n)
		}
	}
}

// TestMapGPCsAdaptiveVolta recovers the full 40-TPC Fig 4 mapping with the
// adaptive quartet protocol. Takes ~a minute; skipped under -short.
func TestMapGPCsAdaptiveVolta(t *testing.T) {
	if testing.Short() {
		t.Skip("volta-scale mapping")
	}
	cfg := config.Volta()
	groups, err := MapGPCsAdaptive(&cfg, GPCProbeOptions{Reps: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != cfg.NumGPCs {
		t.Fatalf("found %d groups: %v", len(groups), groups)
	}
	for _, group := range groups {
		gt := cfg.GPCOfTPC(group[0])
		want := cfg.TPCsOfGPC(gt)
		if len(group) != len(want) {
			t.Errorf("group %v vs ground truth %v", group, want)
			continue
		}
		for i := range want {
			if group[i] != want[i] {
				t.Errorf("group %v vs ground truth %v", group, want)
				break
			}
		}
	}
}

// TestMapGPCsAdaptiveSmallFallsBack: on a 2-TPC-per-GPC topology the quartet
// protocol cannot apply and the statistical fallback must still recover the
// mapping.
func TestMapGPCsAdaptiveSmallFallsBack(t *testing.T) {
	cfg := smallCfg()
	groups, err := MapGPCsAdaptive(&cfg, GPCProbeOptions{Reps: 4, Background: -1, Ops: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != cfg.NumGPCs {
		t.Fatalf("found %d groups: %v", len(groups), groups)
	}
	for _, g := range groups {
		want := cfg.GPCOfTPC(g[0])
		for _, tpc := range g {
			if cfg.GPCOfTPC(tpc) != want {
				t.Errorf("group %v mixes GPCs", g)
			}
		}
	}
}
