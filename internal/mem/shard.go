// Sharded parallel mode for the memory partition. The engine's parallel
// tick loop (see internal/engine) groups each memory controller with the L2
// slices it backs into one partition-group shard, ticked by that group's
// worker during phase P. A slice never touches another group's controller
// (the wiring in NewPartition is i/SlicesPerMC), replies leave through the
// out sink — which the sharded fabric turns into an owner-local outbox
// append (see internal/noc/shard.go) — and requests arrive through crossbar
// ports owned by the same worker, so the shards share no mutable state and
// need no locks. The only change from the sequential mode is that the
// global active sets are split per group; member visit order within a group
// (the controller, then its slices ascending) is exactly the exhaustive
// order restricted to the shard, and groups are mutually independent, so
// state identity with the sequential engine is preserved.

package mem

import (
	"gpunoc/internal/sched"
)

// memShard holds the per-group active sets that replace the partition's
// global ones in sharded mode. Sets are indexed by global component id;
// each holds only its group's members, so Wake and Park stay single-owner.
type memShard struct {
	slicesPerMC int
	actMCs      []*sched.ActiveSet // [group], single member m
	actSlices   []*sched.ActiveSet // [group], members = that group's slices
}

// EnableSharding switches the partition into sharded parallel mode: every
// controller and slice wake edge is rewired to its group's active set. It
// must be called once, before any traffic, and only on a partition built
// with activity scheduling and no probes (the engine clamps to the
// sequential loop in both cases).
func (p *Partition) EnableSharding() {
	if p.shard != nil {
		panic("mem: sharding already enabled")
	}
	if p.cfg.ExhaustiveTick || p.cfg.Probes != nil {
		panic("mem: sharded mode requires activity scheduling and a nil probe registry")
	}
	sh := &memShard{
		slicesPerMC: p.cfg.SlicesPerMC(),
		actMCs:      make([]*sched.ActiveSet, len(p.mcs)),
		actSlices:   make([]*sched.ActiveSet, len(p.mcs)),
	}
	for m := range p.mcs {
		m := m
		sh.actMCs[m] = sched.NewActiveSet(len(p.mcs))
		sh.actSlices[m] = sched.NewActiveSet(len(p.slices))
		p.mcs[m].SetWaker(func() { sh.actMCs[m].Wake(m) })
		for s := m * sh.slicesPerMC; s < (m+1)*sh.slicesPerMC; s++ {
			s := s
			p.slices[s].SetWaker(func() { sh.actSlices[m].Wake(s) })
		}
	}
	// The global sets must never be consulted again; Tick guards on shard.
	p.actMCs, p.actSlices = nil, nil
	p.shard = sh
}

// TickShard advances partition group m one cycle: its memory controller
// first, then its slices in ascending id order — the exhaustive tick order
// restricted to the group, so a slice miss this cycle reaches its
// controller next cycle exactly as under sequential ticking. Owner: group
// m's worker (phase P), after the group's crossbar ports have delivered via
// Network.TickXbarShard.
func (p *Partition) TickShard(now uint64, m int) {
	sh := p.shard
	if sh.actMCs[m].Active(m) {
		mc := p.mcs[m]
		mc.Tick(now)
		if mc.Idle() {
			sh.actMCs[m].Park(m)
		}
	}
	set := sh.actSlices[m]
	if set.Empty() {
		return
	}
	for s := m * sh.slicesPerMC; s < (m+1)*sh.slicesPerMC; s++ {
		if !set.Active(s) {
			continue
		}
		sl := p.slices[s]
		sl.Tick(now)
		if sl.Idle() {
			set.Park(s)
		}
	}
}

// ShardHasWork reports whether group m's controller or any of its slices
// is awake, i.e. whether phase-P task m's TickShard would do anything.
func (p *Partition) ShardHasWork(m int) bool {
	return !p.shard.actMCs[m].Empty() || !p.shard.actSlices[m].Empty()
}

// quiet reports whether every group's sets are empty: the partition's next
// cycle would do no work.
func (sh *memShard) quiet() bool {
	for m := range sh.actMCs {
		if !sh.actMCs[m].Empty() || !sh.actSlices[m].Empty() {
			return false
		}
	}
	return true
}
