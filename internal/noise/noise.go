// Package noise generates deterministic background traffic: co-runner
// kernels that contend with a covert transmission on the shared NoC the way
// a real co-located application would (§7 frames such noise as the
// channel's practical limit). Generators are ordinary kernels — a
// device.KernelSpec whose warps issue memory operations through the same
// LSU, TPC mux, and GPC channel as any other program — so they compose with
// every experiment, obey the thread-block scheduler's placement, and stay
// inside the single-goroutine tick model.
//
// Three generator kinds cover the co-runner shapes related work evaluates
// against (MC3's co-runner memory contention, NVBleed's background-traffic
// sweeps): Stream is a steady memory-bandwidth co-runner, Burst switches
// between full-rate and silent phases, and Random draws seeded random gaps
// so interference arrives at unpredictable times. Intensity scales all
// three between silent (0) and a full-rate streamer (1).
//
// A Spec with no traffic to offer (Intensity <= 0) produces no kernel at
// all: Kernels skips it. This is what makes zero-intensity noise exactly —
// not just statistically — identical to running without noise: even an
// immediately-exiting warp would occupy a warp-scheduler slot for a cycle,
// and the simulator's bit-for-bit determinism regressions would see it.
package noise

import (
	"fmt"
	"math/rand"

	"gpunoc/internal/config"
	"gpunoc/internal/device"
)

// Kind selects the generator's temporal pattern.
type Kind int

const (
	// Stream issues operations at a steady rate: a memory-bandwidth
	// co-runner. Intensity sets the duty cycle via a fixed inter-op gap.
	Stream Kind = iota
	// Burst alternates full-rate and silent phases of one PeriodCycles
	// square wave; Intensity is the on fraction. Models phase-structured
	// co-runners (iterative kernels, frame renderers).
	Burst
	// Random draws each inter-op gap from a seeded uniform distribution
	// with the same mean as Stream's fixed gap, so interference hits the
	// channel at unpredictable instants while offering the same load.
	Random
)

// String names the generator kind.
func (k Kind) String() string {
	switch k {
	case Stream:
		return "stream"
	case Burst:
		return "burst"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DefaultBase is the default base address of the generators' working
// windows: far above the covert channel's probe windows and the contention
// experiments' buffers, so noise traffic contends on links and queues, never
// on the channel's own cache lines.
const DefaultBase = uint64(1) << 30

// Spec describes one background-traffic generator kernel.
type Spec struct {
	// Kind selects the temporal pattern (Stream, Burst, Random).
	Kind Kind

	// SMs lists the victim SMs the generator runs on. The kernel launches
	// one block per SM of the whole device and non-victims exit
	// immediately, so placement is exact regardless of scheduler state.
	// Empty means every SM.
	SMs []int

	// Warps is the number of generator warps per victim SM (default 4 —
	// enough to keep the LSU pipeline full at Intensity 1).
	Warps int

	// Intensity in [0,1] is the offered load as a fraction of a full-rate
	// uncoalesced streamer: 1 issues back-to-back, 0.5 spends half the
	// time waiting, 0 offers nothing (and produces no kernel at all).
	Intensity float64

	// DurationCycles bounds the generator's lifetime, measured from each
	// warp's first step; the warp exits once its local clock passes the
	// bound. Required: the engine's RunKernels waits for every kernel, so
	// an unbounded generator would never let a run finish.
	DurationCycles uint64

	// PeriodCycles is Burst's square-wave period (default 4096).
	PeriodCycles uint64

	// Seed drives Random's gap stream and the per-warp phase offsets
	// (default 1). Generators derive per-warp RNGs from it, so one Spec
	// yields the same traffic on every run.
	Seed int64

	// Write selects write traffic; default is reads (the §5 streaming
	// co-runner shape).
	Write bool

	// WindowBytes is each warp's private working window (default 4096:
	// L2-resident, so the generator's rate is LSU/NoC-bound like the
	// channel's own traffic, not DRAM-bound).
	WindowBytes uint64

	// Base is the first window's base address (default DefaultBase).
	Base uint64
}

// withDefaults validates the spec and fills derived fields. It returns a
// copy.
func (s Spec) withDefaults(cfg *config.Config) (Spec, error) {
	if s.Intensity < 0 || s.Intensity > 1 {
		return s, fmt.Errorf("noise: intensity %.3f outside [0,1]", s.Intensity)
	}
	if s.DurationCycles == 0 {
		return s, fmt.Errorf("noise: DurationCycles must be set (RunKernels waits for the generator)")
	}
	if s.Warps == 0 {
		s.Warps = 4
	}
	if s.Warps < 0 || s.Warps > cfg.MaxWarpsPerSM {
		return s, fmt.Errorf("noise: %d warps per SM outside [1,%d]", s.Warps, cfg.MaxWarpsPerSM)
	}
	if s.PeriodCycles == 0 {
		s.PeriodCycles = 4096
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.WindowBytes == 0 {
		s.WindowBytes = 4096
	}
	if s.Base == 0 {
		s.Base = DefaultBase
	}
	for _, sm := range s.SMs {
		if sm < 0 || sm >= cfg.NumSMs() {
			return s, fmt.Errorf("noise: victim SM %d out of range [0,%d)", sm, cfg.NumSMs())
		}
	}
	return s, nil
}

// Silent reports whether the spec offers no traffic at all. Silent specs
// produce no kernel: see the package comment for why launching nothing is
// the only way to keep a zero-intensity run bit-identical to a noise-free
// one.
func (s Spec) Silent() bool { return s.Intensity <= 0 }

// gapCycles is the Stream inter-op gap realizing Intensity: a full-rate
// warp spends about opDrain cycles injecting one uncoalesced operation's
// packets, so a gap of opDrain*(1-I)/I makes the duty cycle I.
func gapCycles(cfg *config.Config, intensity float64) uint64 {
	opDrain := float64(cfg.SIMTWidth * cfg.NoC.LSUInjectPeriod)
	if intensity >= 1 {
		return 0
	}
	return uint64(opDrain * (1 - intensity) / intensity)
}

// Kernels builds the generator kernels for every spec that offers traffic,
// in order; silent specs are skipped. Experiments launch the returned specs
// after the transmission's own kernels, mirroring the §5 third-kernel
// co-schedule.
func Kernels(cfg *config.Config, specs ...Spec) ([]device.KernelSpec, error) {
	var out []device.KernelSpec
	for i, s := range specs {
		k, ok, err := Kernel(cfg, s)
		if err != nil {
			return nil, fmt.Errorf("noise: spec %d: %w", i, err)
		}
		if ok {
			out = append(out, k)
		}
	}
	return out, nil
}

// Kernel builds one generator kernel. ok is false when the spec is silent
// (no kernel to launch). The kernel is probe-instrumented when cfg.Probes
// is set: "noise/<kind>/ops" counts issued operations and
// "noise/<kind>/active_warps" counts warps that found their victim SM, so
// noise intensity is measurable alongside the link probes' mux occupancy.
func Kernel(cfg *config.Config, s Spec) (device.KernelSpec, bool, error) {
	s, err := s.withDefaults(cfg)
	if err != nil {
		return device.KernelSpec{}, false, err
	}
	if s.Silent() {
		return device.KernelSpec{}, false, nil
	}
	victim := make(map[int]bool, len(s.SMs))
	for _, sm := range s.SMs {
		victim[sm] = true
	}
	all := len(s.SMs) == 0
	ops := cfg.Probes.Counter("noise/" + s.Kind.String() + "/ops")
	activeWarps := cfg.Probes.Counter("noise/" + s.Kind.String() + "/active_warps")
	spec := s // private copy shared by the programs
	return device.KernelSpec{
		Name:          "noise-" + s.Kind.String(),
		Blocks:        cfg.NumSMs(),
		WarpsPerBlock: s.Warps,
		New: func(b, w int) device.Program {
			return &generator{
				spec:   &spec,
				cfg:    cfg,
				active: func(smid int) bool { return all || victim[smid] },
				warpID: w,
				rng:    rand.New(rand.NewSource(spec.Seed ^ int64(b*64+w+1)*48271)),
				ops:    ops,
				warps:  activeWarps,
			}
		},
	}, true, nil
}
