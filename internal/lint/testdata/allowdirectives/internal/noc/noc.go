// Fixture: directive hygiene. A directive with no reason, a directive naming
// an unknown rule, and a directive nothing triggers are each findings of the
// "lint" pseudo-rule — and a rejected directive does not suppress the
// underlying finding.
package noc

import "time"

// MissingReason carries a directive with no reason.
func MissingReason() int64 {
	return time.Now().UnixNano() //lint:allow determinism
}

// UnknownRule waives a rule that does not exist.
func UnknownRule() int64 {
	return time.Now().UnixNano() //lint:allow nondeterminism because it sounds right
}

//lint:allow tickmodel nothing here triggers the tick-model rule
func Unused() {}
