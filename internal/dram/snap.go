package dram

import (
	"gpunoc/internal/snap"
)

// Snapshot appends the controller's mutable state — per-bank row/timing
// state, the pending request queue, activation bookkeeping, and counters —
// to the encoder. Queued requests serialize as (Origin, Addr, Write,
// arrival); their Done closures are rebuilt on restore.
func (mc *Controller) Snapshot(e *snap.Encoder) {
	e.Int(len(mc.banks))
	for i := range mc.banks {
		b := &mc.banks[i]
		e.Bool(b.rowOpen)
		e.U64(b.row)
		e.U64(b.readyAt)
		e.U64(b.precharged)
	}
	e.Int(mc.queue.Len())
	for i := 0; i < mc.queue.Len(); i++ {
		r := *mc.queue.At(i)
		e.Int(r.Origin)
		e.U64(r.Addr)
		e.Bool(r.Write)
		e.U64(r.arriveAt)
	}
	e.U64(mc.lastActivate)
	e.Bool(mc.hasActivated)
	e.U64(mc.served)
	e.U64(mc.rowHits)
	e.U64(mc.rowMisses)
	e.U64(mc.dropped)
}

// Restore reads state written by Snapshot into a controller built from the
// same configuration. rebuild reconstructs the Done callback of each queued
// request from its serialized identity (the L2 partition supplies it: fills
// reschedule into the owning slice, writebacks complete silently).
func (mc *Controller) Restore(d *snap.Decoder, rebuild func(origin int, addr uint64, write bool) func(now uint64)) error {
	nb := d.Len()
	if d.Err() == nil && nb == len(mc.banks) {
		for i := range mc.banks {
			b := &mc.banks[i]
			b.rowOpen = d.Bool()
			b.row = d.U64()
			b.readyAt = d.U64()
			b.precharged = d.U64()
		}
	} else if d.Err() == nil {
		return badBankCount(nb, len(mc.banks))
	}
	for mc.queue.Len() > 0 {
		mc.queue.Pop()
	}
	nq := d.Len()
	for i := 0; i < nq; i++ {
		r := &Request{}
		r.Origin = d.Int()
		r.Addr = d.U64()
		r.Write = d.Bool()
		r.arriveAt = d.U64()
		r.Done = rebuild(r.Origin, r.Addr, r.Write)
		mc.queue.Push(r)
	}
	mc.lastActivate = d.U64()
	mc.hasActivated = d.Bool()
	mc.served = d.U64()
	mc.rowHits = d.U64()
	mc.rowMisses = d.U64()
	mc.dropped = d.U64()
	return d.Err()
}

// badBankCount reports a bank-count mismatch as snapshot corruption.
func badBankCount(got, want int) error {
	return snap.Corruptf("snapshot holds %d DRAM banks, controller has %d", got, want)
}
