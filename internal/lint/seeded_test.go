package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyModule copies the real module's .go files into a temp tree so a test
// can break them. Test files, testdata trees, and VCS metadata are skipped —
// the loader would ignore them anyway.
func copyModule(t *testing.T) string {
	t.Helper()
	src, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir()
	err = filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if rel != "." && (name == "testdata" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(rel, ".go") || strings.HasSuffix(rel, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// mutate rewrites one file in the copied tree, replacing an exact anchor that
// must occur exactly once — if the real source drifts away from the anchor,
// the test fails loudly instead of silently testing nothing.
func mutate(t *testing.T, root, rel, anchor, replacement string) {
	t.Helper()
	path := filepath.Join(root, rel)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), anchor); n != 1 {
		t.Fatalf("%s: anchor %q occurs %d times, want exactly 1 (did the engine change shape?)", rel, anchor, n)
	}
	out := strings.Replace(string(data), anchor, replacement, 1)
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
}

// lintTree runs the full suite over a (mutated) module copy and returns the
// findings for one rule, rendered with root-relative paths.
func lintTree(t *testing.T, root, rule string) []string {
	t.Helper()
	loader := Loader{ModulePath: "gpunoc", Dir: root}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, d := range Run(pkgs, DefaultRules(), Analyzers()) {
		if d.Rule != rule {
			continue
		}
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, filepath.ToSlash(rel)+": "+d.Msg)
	}
	return out
}

// requireFinding asserts at least one finding landed in the named file.
func requireFinding(t *testing.T, findings []string, file, fragment string) {
	t.Helper()
	for _, f := range findings {
		if strings.HasPrefix(f, file+": ") && strings.Contains(f, fragment) {
			return
		}
	}
	t.Fatalf("no finding in %s containing %q; got %v", file, fragment, findings)
}

// TestSeededCrossShardTick proves shardsafety fires when a phase task ticks
// every GPC instead of its own: the callee's shard parameter loses
// derivedness and the owned-collection indexing inside the shard file lights
// up. This is the exact bug class the PR 6 contract forbids.
func TestSeededCrossShardTick(t *testing.T) {
	root := copyModule(t)
	mutate(t, root, "internal/engine/parallel.go",
		"\tg.net.TickGPCShard(now, gpc)\n}",
		"\tfor o := 0; o < pe.nG; o++ {\n\t\tg.net.TickGPCShard(now, o)\n\t}\n}")
	findings := lintTree(t, root, "shardsafety")
	requireFinding(t, findings, "internal/noc/shard.go", "not derived from the shard id")
}

// TestSeededHandoffOutsideDrain proves shardsafety fires when a function
// outside the sanctioned producer/drain set touches a hand-off box.
func TestSeededHandoffOutsideDrain(t *testing.T) {
	root := copyModule(t)
	mutate(t, root, "internal/noc/shard.go",
		"func (n *Network) TickGPCShard(now uint64, g int) {\n\tsh := n.shard\n",
		"func (n *Network) TickGPCShard(now uint64, g int) {\n\tsh := n.shard\n\tsh.rbox[0][g] = sh.rbox[0][g][:0]\n")
	findings := lintTree(t, root, "shardsafety")
	requireFinding(t, findings, "internal/noc/shard.go", "hand-off field rbox outside the sanctioned")
}

// TestSeededEscapeToPackageScope proves shardsafety fires when a phase task
// writes package-level state.
func TestSeededEscapeToPackageScope(t *testing.T) {
	root := copyModule(t)
	mutate(t, root, "internal/engine/parallel.go",
		"\tg.net.TickGPCShard(now, gpc)\n}",
		"\tg.net.TickGPCShard(now, gpc)\n\tseededDrops++\n}\n\nvar seededDrops int")
	findings := lintTree(t, root, "shardsafety")
	requireFinding(t, findings, "internal/engine/parallel.go", "writes package-level seededDrops")
}

// TestSeededAllocInLinkTick proves hotalloc fires on an un-waived allocation
// inserted into the link's per-cycle Tick.
func TestSeededAllocInLinkTick(t *testing.T) {
	root := copyModule(t)
	mutate(t, root, "internal/link/link.go",
		"func (l *Link) Tick(now uint64) {\n",
		"func (l *Link) Tick(now uint64) {\n\tscratch := make([]int, 4)\n\t_ = scratch\n")
	findings := lintTree(t, root, "hotalloc")
	requireFinding(t, findings, "internal/link/link.go", "calls make on the steady-state tick path")
}
