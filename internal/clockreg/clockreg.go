// Package clockreg models the per-SM 32-bit clock registers exposed by the
// clock() device intrinsic. §4.1 of the paper measures their skew on a Volta
// V100: SMs within a TPC differ by under 5 cycles, SMs within a GPC by under
// 15 cycles, while different GPCs read wildly different values (up to ~4x,
// Fig 6) because their counters started at different times. The covert
// channel synchronizes sender and receiver purely from these registers, so
// the skew statistics — not the absolute values — are what the model must
// reproduce.
package clockreg

import (
	"fmt"
	"math/rand"

	"gpunoc/internal/config"
)

// Bank holds one clock register per SM, as offsets from the global
// simulation cycle counter.
type Bank struct {
	cfg       *config.Config
	offsets   []uint64 // per-SM offset added to the global cycle
	fuzzBits  int
	fuzzPhase []uint64 // per-SM random phase of the quantization grid
}

// New derives deterministic offsets from cfg.Seed: a large per-GPC base
// offset (uniform in [ClockGPCSpreadLo, ClockGPCSpreadHi]), a small per-TPC
// offset within the GPC bound, and a tiny per-SM offset within the TPC
// bound.
func New(cfg *config.Config) (*Bank, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ClockSkewTPCMax < 0 || cfg.ClockSkewGPCMax < cfg.ClockSkewTPCMax {
		return nil, fmt.Errorf("clockreg: inconsistent skew bounds TPC=%d GPC=%d",
			cfg.ClockSkewTPCMax, cfg.ClockSkewGPCMax)
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5bd1e995))
	gpcBase := make([]uint64, cfg.NumGPCs)
	span := int64(cfg.ClockGPCSpreadHi) - int64(cfg.ClockGPCSpreadLo)
	for g := range gpcBase {
		off := uint64(cfg.ClockGPCSpreadLo)
		if span > 0 {
			off += uint64(rng.Int63n(span + 1))
		}
		gpcBase[g] = off
	}
	tpcOff := make([]uint64, cfg.NumTPCs())
	for t := range tpcOff {
		if cfg.ClockSkewGPCMax > 0 {
			tpcOff[t] = uint64(rng.Intn(cfg.ClockSkewGPCMax - cfg.ClockSkewTPCMax + 1))
		}
	}
	b := &Bank{cfg: cfg, offsets: make([]uint64, cfg.NumSMs()), fuzzBits: cfg.ClockFuzzBits}
	if b.fuzzBits > 0 {
		// TimeWarp-style fuzzing: each SM's clock advances in coarse
		// epochs whose phase is private to the SM, so two SMs' readings
		// are de-correlated by up to an epoch — which is what defeats
		// fine-grained cross-SM synchronization (§6).
		b.fuzzPhase = make([]uint64, cfg.NumSMs())
		span := uint64(1) << b.fuzzBits
		for i := range b.fuzzPhase {
			b.fuzzPhase[i] = uint64(rng.Int63n(int64(span)))
		}
	}
	for sm := range b.offsets {
		tpc := cfg.TPCOfSM(sm)
		gpc := cfg.GPCOfTPC(tpc)
		smOff := uint64(0)
		if cfg.ClockSkewTPCMax > 0 {
			smOff = uint64(rng.Intn(cfg.ClockSkewTPCMax + 1))
		}
		b.offsets[sm] = gpcBase[gpc] + tpcOff[tpc] + smOff
	}
	return b, nil
}

// Read returns the 32-bit clock register of SM sm at global cycle now,
// wrapping like the hardware counter. With ClockFuzzBits set, the value is
// quantized — the §6 clock-fuzzing countermeasure.
func (b *Bank) Read(sm int, now uint64) uint32 {
	return uint32(b.fuzz(sm, now+b.offsets[sm]))
}

// Read64 returns the unwrapped (but still fuzz-quantized) counter; used by
// analyses that need skew without aliasing.
func (b *Bank) Read64(sm int, now uint64) uint64 {
	return b.fuzz(sm, now+b.offsets[sm])
}

func (b *Bank) fuzz(sm int, v uint64) uint64 {
	if b.fuzzBits <= 0 {
		return v
	}
	mask := uint64(1)<<b.fuzzBits - 1
	p := b.fuzzPhase[sm]
	return ((v + p) &^ mask) - p
}

// Skew returns the absolute clock difference between two SMs.
func (b *Bank) Skew(a, c int) uint64 {
	oa, oc := b.offsets[a], b.offsets[c]
	if oa > oc {
		return oa - oc
	}
	return oc - oa
}

// NumSMs returns the number of registers in the bank.
func (b *Bank) NumSMs() int { return len(b.offsets) }
