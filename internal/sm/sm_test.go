package sm

import (
	"testing"
	"testing/quick"

	"gpunoc/internal/clockreg"
	"gpunoc/internal/config"
	"gpunoc/internal/device"
	"gpunoc/internal/packet"
	"gpunoc/internal/warp"
)

type injCapture struct {
	pkts  []*packet.Packet
	times []uint64
}

func (c *injCapture) inject(now uint64, p *packet.Packet) {
	c.pkts = append(c.pkts, p)
	c.times = append(c.times, now)
}

func testCfg() config.Config {
	c := config.Small()
	c.WarpIssueJitter = 0 // deterministic warp starts for unit tests
	return c
}

func mkSM(t *testing.T, cfg *config.Config) (*SM, *injCapture) {
	t.Helper()
	b, err := clockreg.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var c injCapture
	s, err := New(0, cfg, b, c.inject)
	if err != nil {
		t.Fatal(err)
	}
	return s, &c
}

func TestNewValidation(t *testing.T) {
	cfg := testCfg()
	b, err := clockreg.New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(0, &cfg, b, nil); err == nil {
		t.Error("nil inject should fail")
	}
	if _, err := New(0, &cfg, nil, func(uint64, *packet.Packet) {}); err == nil {
		t.Error("nil clock bank should fail")
	}
	if _, err := New(cfg.NumSMs(), &cfg, b, func(uint64, *packet.Packet) {}); err == nil {
		t.Error("out-of-range id should fail")
	}
}

func TestAddWarpLimits(t *testing.T) {
	cfg := testCfg()
	cfg.MaxWarpsPerSM = 2
	s, _ := mkSM(t, &cfg)
	if err := s.AddWarp(0, 0, 0, 0, nil); err == nil {
		t.Error("nil program should fail")
	}
	for i := 0; i < 2; i++ {
		if err := s.AddWarp(0, 0, 0, i, &device.ClockReader{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddWarp(0, 0, 0, 2, &device.ClockReader{}); err == nil {
		t.Error("exceeding warp slots should fail")
	}
}

// TestUncoalescedWriteGeneratesPackets: one streamer op emits 32 write
// packets tagged with the warp's op sequence, injected one per cycle.
func TestUncoalescedWriteGeneratesPackets(t *testing.T) {
	cfg := testCfg()
	s, c := mkSM(t, &cfg)
	prog := &device.Streamer{Base: 0, LineBytes: cfg.L2LineBytes, Write: true, Count: 1, Uncoalesced: true}
	if err := s.AddWarp(0, 0, 0, 0, prog); err != nil {
		t.Fatal(err)
	}
	for now := uint64(0); now < 200; now++ {
		s.Tick(now)
	}
	if len(c.pkts) != 32 {
		t.Fatalf("injected %d packets, want 32", len(c.pkts))
	}
	for i, p := range c.pkts {
		if p.Kind != packet.WriteReq {
			t.Fatalf("packet %d kind %v", i, p.Kind)
		}
		if p.Tag.SM != 0 || p.Tag.Op != 1 {
			t.Fatalf("packet %d tag %+v", i, p.Tag)
		}
	}
	// One packet per inject period.
	period := uint64(cfg.NoC.LSUInjectPeriod)
	for i := 1; i < len(c.times); i++ {
		if c.times[i] != c.times[i-1]+period {
			t.Fatalf("injection times not 1/period: %v", c.times[:i+1])
		}
	}
}

// TestOpLatencyMeasured: completing all replies readies the warp and stores
// the op latency.
func TestOpLatencyMeasured(t *testing.T) {
	cfg := testCfg()
	s, c := mkSM(t, &cfg)
	prog := &device.Streamer{Base: 0, LineBytes: cfg.L2LineBytes, Write: false, Count: 2, Uncoalesced: true}
	if err := s.AddWarp(0, 0, 0, 0, prog); err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for ; now < 160; now++ {
		s.Tick(now)
	}
	if len(c.pkts) != 32 {
		t.Fatalf("%d packets", len(c.pkts))
	}
	// Reply to every packet at cycle 300.
	for _, p := range c.pkts {
		rep := *p
		rep.Kind = packet.ReadReply
		s.OnReply(300, &rep)
	}
	// Warp should be ready and issue op 2 next tick; latency = 300 - opStart.
	for ; now < 500; now++ {
		s.Tick(now)
	}
	if len(prog.Latencies) != 1 {
		t.Fatalf("latencies = %v", prog.Latencies)
	}
	// Op started at the step cycle (1: warps wake at now+1), so ~299.
	if prog.Latencies[0] < 290 || prog.Latencies[0] > 300 {
		t.Errorf("latency = %d, want ~299", prog.Latencies[0])
	}
	if st := s.Stats(); st.OpsCompleted != 1 || st.Replies != 32 {
		t.Errorf("stats = %+v", st)
	}
}

// TestLSUQueueDepthBound: outstanding requests never exceed the budget.
func TestLSUQueueDepthBound(t *testing.T) {
	cfg := testCfg()
	cfg.LSUQueueDepth = 8
	s, c := mkSM(t, &cfg)
	prog := &device.Streamer{Base: 0, LineBytes: cfg.L2LineBytes, Write: true, Count: 4, Uncoalesced: true}
	if err := s.AddWarp(0, 0, 0, 0, prog); err != nil {
		t.Fatal(err)
	}
	for now := uint64(0); now < 200; now++ {
		s.Tick(now)
	}
	// No replies delivered: injection must stop at exactly 8 packets.
	if len(c.pkts) != 8 {
		t.Errorf("injected %d packets with depth 8 and no replies", len(c.pkts))
	}
}

// TestSyncClockAlignment: a warp synchronizing on clock % M == 0 wakes at a
// cycle where its clock register is congruent to 0.
func TestSyncClockAlignment(t *testing.T) {
	cfg := testCfg()
	s, c := mkSM(t, &cfg)
	var wokeClock uint64
	steps := 0
	prog := device.StepFunc(func(ctx *device.Ctx) device.Op {
		steps++
		switch steps {
		case 1:
			return device.SyncClock(1024, 0)
		case 2:
			wokeClock = ctx.Clock64
			return device.Mem(warp.UncoalescedOp(0, true, cfg.L2LineBytes))
		default:
			return device.Done()
		}
	})
	if err := s.AddWarp(0, 0, 0, 0, prog); err != nil {
		t.Fatal(err)
	}
	for now := uint64(0); now < 3000 && len(c.pkts) == 0; now++ {
		s.Tick(now)
	}
	if steps < 2 {
		t.Fatal("warp never woke from sync")
	}
	if wokeClock%1024 != 0 {
		t.Errorf("woke with clock %d (mod 1024 = %d), want aligned", wokeClock, wokeClock%1024)
	}
}

// TestRoundRobinFairness: two always-ready warps issue alternately.
func TestRoundRobinFairness(t *testing.T) {
	cfg := testCfg()
	s, _ := mkSM(t, &cfg)
	var order []int
	mk := func(id int) device.Program {
		return device.StepFunc(func(ctx *device.Ctx) device.Op {
			order = append(order, id)
			return device.Wait(1)
		})
	}
	if err := s.AddWarp(0, 0, 0, 0, mk(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddWarp(0, 0, 0, 1, mk(1)); err != nil {
		t.Fatal(err)
	}
	for now := uint64(0); now < 20; now++ {
		s.Tick(now)
	}
	if len(order) < 8 {
		t.Fatalf("only %d steps", len(order))
	}
	c0, c1 := 0, 0
	for _, id := range order {
		if id == 0 {
			c0++
		} else {
			c1++
		}
	}
	if diff := c0 - c1; diff < -2 || diff > 2 {
		t.Errorf("unfair scheduling: %d vs %d", c0, c1)
	}
}

func TestRunningWarpsAndReclaim(t *testing.T) {
	cfg := testCfg()
	s, _ := mkSM(t, &cfg)
	if err := s.AddWarp(0, 3, 0, 0, &device.ClockReader{}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddWarp(0, 4, 0, 0, &device.ComputeLoop{Count: 1000}); err != nil {
		t.Fatal(err)
	}
	if s.RunningWarps(-1) != 2 || s.RunningWarps(3) != 1 {
		t.Fatal("running warp counts wrong at launch")
	}
	for now := uint64(0); now < 50; now++ {
		s.Tick(now)
	}
	if s.RunningWarps(3) != 0 {
		t.Error("clock reader should have finished")
	}
	if s.RunningWarps(4) != 1 {
		t.Error("compute loop should still run")
	}
	s.ReclaimFinished()
	if s.RunningWarps(-1) != 1 {
		t.Error("reclaim lost the running warp")
	}
}

func TestOnReplyPanicsOnWrongSM(t *testing.T) {
	cfg := testCfg()
	s, _ := mkSM(t, &cfg)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.OnReply(0, &packet.Packet{Tag: packet.WarpTag{SM: 5}})
}

func TestIdle(t *testing.T) {
	cfg := testCfg()
	s, c := mkSM(t, &cfg)
	if !s.Idle() {
		t.Error("fresh SM should be idle")
	}
	prog := &device.Streamer{Base: 0, LineBytes: cfg.L2LineBytes, Write: true, Count: 1, Uncoalesced: true}
	if err := s.AddWarp(0, 0, 0, 0, prog); err != nil {
		t.Fatal(err)
	}
	if s.Idle() {
		t.Error("SM with unfinished warp should not be idle")
	}
	for now := uint64(0); now < 100; now++ {
		s.Tick(now)
	}
	for _, p := range c.pkts {
		rep := *p
		rep.Kind = packet.WriteReply
		s.OnReply(200, &rep)
	}
	for now := uint64(201); now < 260; now++ {
		s.Tick(now)
	}
	if !s.Idle() {
		t.Error("SM should be idle after program completion")
	}
}

// Property: injection order preserves generation order and timestamps are
// monotonically non-decreasing; outstanding never exceeds the LSU budget.
func TestQuickInjectionDiscipline(t *testing.T) {
	f := func(counts []uint8) bool {
		if len(counts) > 4 {
			counts = counts[:4]
		}
		cfg := testCfg()
		cfg.LSUQueueDepth = 16
		b, err := clockreg.New(&cfg)
		if err != nil {
			return false
		}
		var inj injCapture
		s, err := New(0, &cfg, b, inj.inject)
		if err != nil {
			return false
		}
		for w, n := range counts {
			prog := &device.Streamer{Base: uint64(w) << 20, LineBytes: cfg.L2LineBytes,
				Write: w%2 == 0, Count: int(n % 4), Uncoalesced: true}
			if err := s.AddWarp(0, 0, 0, w, prog); err != nil {
				return false
			}
		}
		outstanding := 0
		for now := uint64(0); now < 2000; now++ {
			before := len(inj.pkts)
			s.Tick(now)
			outstanding += len(inj.pkts) - before
			if outstanding > cfg.LSUQueueDepth {
				return false
			}
			// Ack everything periodically so the run drains.
			if now%64 == 63 {
				for _, p := range inj.pkts[len(inj.pkts)-outstanding:] {
					rep := *p
					rk, err := packet.ReplyKind(p.Kind)
					if err != nil {
						return false
					}
					rep.Kind = rk
					s.OnReply(now, &rep)
				}
				outstanding = 0
			}
		}
		for i := 1; i < len(inj.times); i++ {
			if inj.times[i] < inj.times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestL1HitCompletesLocally: a repeated non-bypass load is served by the L1
// after the first fill, completing faster and without new NoC packets.
func TestL1HitCompletesLocally(t *testing.T) {
	cfg := testCfg()
	s, c := mkSM(t, &cfg)
	latencies := []uint64{}
	ops := 0
	prog := device.StepFunc(func(ctx *device.Ctx) device.Op {
		if ops > 0 && ctx.LastLatency > 0 {
			latencies = append(latencies, ctx.LastLatency)
		}
		if ops >= 2 {
			return device.Done()
		}
		ops++
		m := warp.CoalescedOp(0x100, false)
		m.BypassL1 = false
		return device.Mem(m)
	})
	if err := s.AddWarp(0, 0, 0, 0, prog); err != nil {
		t.Fatal(err)
	}
	var now uint64
	for ; now < 50 && len(c.pkts) == 0; now++ {
		s.Tick(now)
	}
	if len(c.pkts) != 1 {
		t.Fatalf("first load injected %d packets", len(c.pkts))
	}
	// Reply to the miss; the fill should make the second load a local hit.
	rep := *c.pkts[0]
	rep.Kind = packet.ReadReply
	s.OnReply(now+100, &rep)
	for end := now + 400; now < end; now++ {
		s.Tick(now)
	}
	if len(c.pkts) != 1 {
		t.Errorf("second load went to the NoC (%d packets total)", len(c.pkts))
	}
	if len(latencies) != 2 {
		t.Fatalf("latencies = %v", latencies)
	}
	if latencies[1] >= latencies[0] {
		t.Errorf("L1 hit (%d) not faster than miss (%d)", latencies[1], latencies[0])
	}
	if !s.L1().Probe(0x100) {
		t.Error("line not resident in L1 after fill")
	}
}

// TestBypassL1SkipsCache: -dlcm=cg loads never populate or consult the L1.
func TestBypassL1SkipsCache(t *testing.T) {
	cfg := testCfg()
	s, c := mkSM(t, &cfg)
	prog := &device.Streamer{Base: 0x200, LineBytes: cfg.L2LineBytes, Count: 2, Uncoalesced: false}
	if err := s.AddWarp(0, 0, 0, 0, prog); err != nil {
		t.Fatal(err)
	}
	var now uint64
	for ; now < 200; now++ {
		s.Tick(now)
		for len(c.pkts) > 0 {
			p := c.pkts[0]
			c.pkts = c.pkts[1:]
			rep := *p
			rep.Kind = packet.ReadReply
			s.OnReply(now+1, &rep)
		}
	}
	if s.L1().Probe(0x200) {
		t.Error("bypass load populated the L1")
	}
}
