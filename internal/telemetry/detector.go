// The covert-channel detector: an online Watcher that scores each link's
// windowed occupancy series for the slot-paced signature the paper's channel
// leaves on the NoC. The sender serializes symbols into fixed timing slots
// of T cycles, so a contended link's utilization flips between its loaded
// and idle levels with a period of small multiples of T — two slots for an
// alternating payload, never less (a payload that repeats every single slot
// is flat and carries no information). Over a short ring of recent windows
// the detector computes the normalized autocorrelation of the rate series at
// twice the window-quantized slot lag L = round(T/W) and scores the
// alternating signature: r(2L) driven toward +1, the two-slot repeat.
// Aperiodic background traffic (internal/noise's Random co-runner) stays
// near 0 there. Scoring one signed lag rather than max |r| over a lag grid
// is deliberate: a merely smooth series (a co-runner ramping up) has r
// positive at every lag, small-sample flukes hit isolated negative lags, and
// a fixed-gap streamer is itself a periodic process — only traffic that
// repeats at the slot grid the way a modulated sender does holds r(2L) high.
// A detection fires when the score holds at or above the
// threshold for three consecutive windows AND the firing window's rate
// deviates from its EWMA baseline — persistence filters one-ring sampling
// flukes, the deviation gate keeps a periodic-looking but settled series
// from re-firing forever — and the link then holds a one-ring cooldown.
package telemetry

import (
	"math"
	"sort"
)

// Default detector tuning. The slot default is the paper-rate TPC channel's
// calibrated slot period on the modeled V100 (core.DefaultSlot at the
// default 4 delay iterations); the threshold/gates were chosen empirically
// so noise-only runs at the intensities detector-roc sweeps score zero false
// positives while the paper-rate channel is caught inside its first frames.
const (
	DefaultDetectorSlotCycles = 1600
	DefaultDetectorThreshold  = 0.55
	DefaultDetectorMinRate    = 0.01
	DefaultDetectorMinSwing   = 0.04
)

// DetectorConfig tunes a Detector. Zero fields select the defaults above.
type DetectorConfig struct {
	// SlotCycles is the timing-slot period T the detector searches for.
	// The lag grid is quantized to windows: L = max(1, round(T/W)).
	SlotCycles uint64
	// WindowCycles is the sampler window width W the detector will be fed;
	// it must match the Sampler driving it for the lag grid to land on T.
	WindowCycles uint64
	// Threshold is the autocorrelation score at or above which a detection
	// fires.
	Threshold float64
	// MinRate gates scoring: a link's ring must average at least this
	// utilization, and a link first counts as active (for latency
	// accounting) at the first window at or above it.
	MinRate float64
	// MinSwing gates scoring on the ring's standard deviation and doubles
	// as the deviation-from-EWMA threshold on the firing window, so flat
	// series — idle or steadily saturated — never score.
	MinSwing float64
}

// Event is one cycle-stamped detection.
type Event struct {
	// Cycle is the end of the window that fired, on the sampler's
	// cumulative clock; Window is that window's index.
	Cycle  uint64 `json:"cycle"`
	Window uint64 `json:"window"`
	// Link is the occupancy metric that scored ("noc/<link>/occupancy").
	Link  string  `json:"link"`
	Score float64 `json:"score"`
	// LagWindows is the lag the score was computed at: twice the
	// window-quantized slot lag L (the alternating payload's repeat period).
	LagWindows int     `json:"lag_windows"`
	Rate       float64 `json:"rate"`
	EWMA       float64 `json:"ewma"`
	// Denies is the firing window's arbitration-deny delta on the link.
	Denies uint64 `json:"denies"`
	// SinceActive is Cycle minus the start of the window in which the link
	// first reached MinRate — the detection latency relative to the channel
	// becoming observable.
	SinceActive uint64 `json:"since_active"`
}

// firingStreak is how many consecutive windows must clear the threshold
// before a detection fires. The ring autocorrelation of a genuinely
// slot-paced sender stays high for the whole transmission, while a
// small-sample fluke (24-window rings estimate r with sd ≈ 0.2) decays as
// the ring slides.
const firingStreak = 3

// linkState is the detector's per-link ring of recent window rates.
type linkState struct {
	ring        []float64
	pos         int // next write index; once full, also the oldest sample
	filled      int
	active      bool
	firstActive uint64
	cooldown    int
	streak      int // consecutive windows at or above the threshold
}

// Detector is a Watcher scoring every occupancy-tracked link online. It is
// pure over the Window stream — it reads rates and EWMA baselines from the
// windows themselves, never from sampler internals — so replaying recorded
// windows through a fresh Detector (what detector-roc does to sweep
// thresholds without re-simulating) reproduces the online behavior exactly.
type Detector struct {
	cfg    DetectorConfig
	lag    int // slot period in windows
	size   int // ring length: 6·lag, clamped to [12, 96]
	links  map[string]*linkState
	order  []string // sorted link names, the deterministic scan order
	events []Event
}

// NewDetector returns a detector for cfg; zero fields take defaults.
func NewDetector(cfg DetectorConfig) *Detector {
	if cfg.SlotCycles == 0 {
		cfg.SlotCycles = DefaultDetectorSlotCycles
	}
	if cfg.WindowCycles == 0 {
		cfg.WindowCycles = DefaultWindowCycles
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = DefaultDetectorThreshold
	}
	if cfg.MinRate == 0 {
		cfg.MinRate = DefaultDetectorMinRate
	}
	if cfg.MinSwing == 0 {
		cfg.MinSwing = DefaultDetectorMinSwing
	}
	lag := int((cfg.SlotCycles + cfg.WindowCycles/2) / cfg.WindowCycles)
	if lag < 1 {
		lag = 1
	}
	size := 6 * lag
	if size < 12 {
		size = 12
	}
	if size > 96 {
		size = 96
	}
	return &Detector{cfg: cfg, lag: lag, size: size, links: map[string]*linkState{}}
}

// Config returns the resolved configuration (defaults applied).
func (d *Detector) Config() DetectorConfig { return d.cfg }

// Events returns every detection so far, in firing order.
func (d *Detector) Events() []Event { return d.events }

// ObserveWindow folds one window into every link's ring and scores the
// links whose rings are full, in sorted-name order.
func (d *Detector) ObserveWindow(w Window) {
	grew := false
	for name := range w.Occ {
		if _, ok := d.links[name]; !ok {
			d.links[name] = &linkState{ring: make([]float64, d.size)}
			grew = true
		}
	}
	if grew {
		d.order = d.order[:0]
		for name := range d.links {
			d.order = append(d.order, name)
		}
		sort.Strings(d.order)
	}
	for _, name := range d.order {
		st := d.links[name]
		var rate, ewma float64
		if ow, ok := w.Occ[name]; ok {
			rate, ewma = ow.Rate, ow.EWMA
		}
		if !st.active && rate >= d.cfg.MinRate {
			st.active = true
			st.firstActive = w.Start
		}
		st.ring[st.pos] = rate
		st.pos = (st.pos + 1) % d.size
		if st.filled < d.size {
			st.filled++
		}
		if st.cooldown > 0 {
			st.cooldown--
			continue
		}
		if st.filled < d.size {
			continue
		}
		score, lag := d.score(st)
		if score < d.cfg.Threshold || math.Abs(rate-ewma) < d.cfg.MinSwing {
			st.streak = 0
			continue
		}
		if st.streak++; st.streak < firingStreak {
			continue
		}
		st.streak = 0
		d.events = append(d.events, Event{
			Cycle:       w.End,
			Window:      w.Index,
			Link:        name,
			Score:       score,
			LagWindows:  lag,
			Rate:        rate,
			EWMA:        ewma,
			Denies:      linkDenies(w, name),
			SinceActive: w.End - st.firstActive,
		})
		st.cooldown = d.size
	}
}

// score computes r(2L) of the ring's mean-centered normalized
// autocorrelation — the alternating-payload signature: a modulated sender's
// utilization repeats every two slots, driving the two-slot-lag correlation
// toward +1. The one-slot lag is deliberately not scored: a clean square
// wave also anti-correlates at L, but measured channel traffic's within-slot
// structure cancels r(L) toward 0 while leaving r(2L) strong, and a negative
// r(L) on its own is the component small-sample flukes hit most. The score
// is gated on mean ≥ MinRate and standard deviation ≥ MinSwing, and clamps
// to 0 when a gate fails or the correlation is negative.
func (d *Detector) score(st *linkState) (float64, int) {
	n := d.size
	at := func(i int) float64 { return st.ring[(st.pos+i)%n] }
	var mean float64
	for i := 0; i < n; i++ {
		mean += at(i)
	}
	mean /= float64(n)
	var ss float64
	for i := 0; i < n; i++ {
		dv := at(i) - mean
		ss += dv * dv
	}
	if mean < d.cfg.MinRate || math.Sqrt(ss/float64(n)) < d.cfg.MinSwing {
		return 0, d.lag
	}
	autocorr := func(lag int) float64 {
		var num float64
		for i := lag; i < n; i++ {
			num += (at(i) - mean) * (at(i-lag) - mean)
		}
		return num / ss
	}
	repeat := autocorr(2 * d.lag)
	if repeat < 0 {
		return 0, 2 * d.lag
	}
	return repeat, 2 * d.lag
}
