// Package server exposes the experiment harness as a simulation-as-a-service
// HTTP API: clients POST jobs — (config, seed, experiment, scale, observer
// flags) — and a bounded worker pool runs them through the same
// experiments.Runner the ccbench CLI uses, with results content-addressed in
// the same on-disk cache. A job whose key is already cached is answered
// synchronously without simulating; concurrent submissions of the same key
// coalesce onto one queued job. The package deliberately reads no wall
// clocks and no environment — job identity and results are pure functions of
// the request, so the service inherits the simulator's determinism: two
// servers given the same job produce byte-identical reports.
//
// # API
//
//	POST /v1/jobs     submit a job; 200 with the finished status when the
//	                  result is already cached, 202 with the queued/running
//	                  status otherwise (resubmission is idempotent)
//	GET  /v1/jobs/{key}  poll a job by cache key id
//	GET  /v1/healthz  liveness probe
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"gpunoc/internal/config"
	"gpunoc/internal/experiments"
)

// JobRequest is the POST /v1/jobs body. Every field is part of the cache
// key, so two requests with equal fields name the same result.
type JobRequest struct {
	// Config names the base configuration: "small" or "volta" (or any name
	// in the server's config table).
	Config string `json:"config"`
	// Seed is the suite seed; 0 means the harness default of 1.
	Seed int64 `json:"seed"`
	// Experiment is the registry id ("fig2", "table2", ...).
	Experiment string `json:"experiment"`
	// Scale is "quick" (default) or "full".
	Scale string `json:"scale"`
	// Metrics and Telemetry select the observer streams to collect.
	Metrics   bool `json:"metrics"`
	Telemetry bool `json:"telemetry"`
}

// JobStatus is the response body for both endpoints.
type JobStatus struct {
	// Key is the job's cache key id — the handle GET /v1/jobs/{key} polls.
	Key string `json:"key"`
	// State is "queued", "running", "done", or "failed".
	State string `json:"state"`
	// Cached reports that the result was served from the cache without
	// simulating (set on cache-hit submissions).
	Cached bool `json:"cached"`
	// Cycles is the simulated-cycle count: live progress while running,
	// the final total when done.
	Cycles uint64 `json:"cycles"`
	// Report is the experiment's rendered figure (done jobs only).
	Report string `json:"report,omitempty"`
	// Error is the failure message (failed jobs only).
	Error string `json:"error,omitempty"`
}

// job is the server-side state of one submitted key.
type job struct {
	req    JobRequest
	key    experiments.CacheKey
	state  string
	meter  *config.CycleMeter
	cycles uint64
	report string
	errMsg string
}

// status renders the job's externally visible state. Caller holds s.mu.
func (j *job) status() JobStatus {
	st := JobStatus{Key: j.key.ID(), State: j.state, Cycles: j.cycles}
	if j.state == "running" && j.meter != nil {
		st.Cycles = j.meter.Load()
	}
	switch j.state {
	case "done":
		st.Report = j.report
	case "failed":
		st.Error = j.errMsg
	}
	return st
}

// Config describes a Server under construction.
type Config struct {
	// Cache is the shared result cache; required (the server exists to
	// serve from it).
	Cache *experiments.Cache
	// Workers bounds the simulation pool; values < 1 mean 1.
	Workers int
	// Configs maps request config names to base configurations; nil means
	// the built-in {"small", "volta"} table.
	Configs map[string]func() config.Config
	// Registry supplies the experiments; nil means the package default.
	Registry *experiments.Registry
}

// Server is the simulation service: an HTTP handler plus a worker pool.
// Build with New, install Handler on any mux or httptest server, and Close
// when done.
type Server struct {
	cache    *experiments.Cache
	configs  map[string]func() config.Config
	registry *experiments.Registry

	mu   sync.Mutex
	jobs map[string]*job // by cache key id

	queue chan *job
	wg    sync.WaitGroup
}

// New builds a Server and starts its worker pool.
func New(c Config) (*Server, error) {
	if c.Cache == nil || c.Cache.Dir == "" {
		return nil, fmt.Errorf("server: a cache directory is required")
	}
	workers := c.Workers
	if workers < 1 {
		workers = 1
	}
	cfgs := c.Configs
	if cfgs == nil {
		cfgs = map[string]func() config.Config{
			"small": config.Small,
			"volta": config.Volta,
		}
	}
	s := &Server{
		cache:    c.Cache,
		configs:  cfgs,
		registry: c.Registry,
		jobs:     map[string]*job{},
		queue:    make(chan *job, 1024),
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Close stops accepting queued work and waits for in-flight jobs to finish.
// The handler must not be invoked after Close.
func (s *Server) Close() {
	close(s.queue)
	s.wg.Wait()
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{key}", s.handlePoll)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

// options converts a validated request into harness options.
func options(req *JobRequest) experiments.Options {
	opt := experiments.Options{
		Seed:      req.Seed,
		Metrics:   req.Metrics,
		Telemetry: req.Telemetry,
	}
	if req.Scale == "full" {
		opt.Scale = experiments.Full
	}
	return opt
}

// validate normalizes req and resolves its base configuration, answering
// the request's cache key.
func (s *Server) validate(req *JobRequest) (config.Config, experiments.CacheKey, error) {
	mk, ok := s.configs[req.Config]
	if !ok {
		var names []string
		for name := range s.configs {
			names = append(names, name)
		}
		sort.Strings(names)
		return config.Config{}, experiments.CacheKey{},
			fmt.Errorf("unknown config %q (known: %s)", req.Config, strings.Join(names, ", "))
	}
	reg := s.registry
	if reg == nil {
		if _, ok := experiments.Lookup(req.Experiment); !ok {
			return config.Config{}, experiments.CacheKey{}, fmt.Errorf("unknown experiment %q", req.Experiment)
		}
	} else if _, ok := reg.Get(req.Experiment); !ok {
		return config.Config{}, experiments.CacheKey{}, fmt.Errorf("unknown experiment %q", req.Experiment)
	}
	switch req.Scale {
	case "", "quick":
		req.Scale = "quick"
	case "full":
	default:
		return config.Config{}, experiments.CacheKey{}, fmt.Errorf("unknown scale %q (want quick or full)", req.Scale)
	}
	cfg := mk()
	key := experiments.NewCacheKey(&cfg, req.Config, options(req), req.Experiment)
	return cfg, key, nil
}

// handleSubmit serves POST /v1/jobs: cache hits answer 200 synchronously,
// anything else coalesces onto a queued job and answers 202.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding job: %v", err))
		return
	}
	_, key, err := s.validate(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if ent, ok := s.cache.Get(key); ok {
		writeJSON(w, http.StatusOK, JobStatus{
			Key:    key.ID(),
			State:  "done",
			Cached: true,
			Cycles: ent.Cycles,
			Report: renderEntry(ent),
		})
		return
	}
	s.mu.Lock()
	j, exists := s.jobs[key.ID()]
	if !exists || j.state == "failed" {
		// Failed results are never cached, so a resubmission retries.
		j = &job{req: req, key: key, state: "queued"}
		s.jobs[key.ID()] = j
		s.queue <- j
	}
	st := j.status()
	s.mu.Unlock()
	code := http.StatusAccepted
	if st.State == "done" {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// handlePoll serves GET /v1/jobs/{key}.
func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("key")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var st JobStatus
	if ok {
		st = j.status()
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleHealthz serves GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// worker drains the queue, simulating one job at a time.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job through the shared Runner and publishes the
// outcome. The Runner itself writes the cache entry on success, so the next
// submission of the same key is a synchronous hit.
func (s *Server) runJob(j *job) {
	cfg, _, err := s.validate(&j.req)
	if err != nil {
		// Validated at submission; a failure here means the server's
		// tables changed underneath the queue.
		s.finishJob(j, 0, "", fmt.Sprintf("revalidating job: %v", err))
		return
	}
	runner := experiments.Runner{
		Registry:   s.registry,
		Parallel:   1,
		Options:    options(&j.req),
		Cache:      s.cache,
		ConfigName: j.req.Config,
		OnMeter: func(id string, meter *config.CycleMeter) {
			s.mu.Lock()
			j.state = "running"
			j.meter = meter
			s.mu.Unlock()
		},
	}
	results, err := runner.Run(&cfg, []string{j.req.Experiment})
	if err != nil {
		s.finishJob(j, 0, "", err.Error())
		return
	}
	res := results[0]
	if res.Err != nil {
		s.finishJob(j, res.Cycles, "", res.Err.Error())
		return
	}
	s.finishJob(j, res.Cycles, experiments.Report(results), "")
}

// finishJob publishes a job's terminal state.
func (s *Server) finishJob(j *job, cycles uint64, report, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.cycles = cycles
	j.meter = nil
	if errMsg != "" {
		j.state = "failed"
		j.errMsg = errMsg
		return
	}
	j.state = "done"
	j.report = report
}

// renderEntry renders a cached entry the way Report renders a live result,
// so cached and fresh responses are byte-identical.
func renderEntry(ent *experiments.Entry) string {
	return ent.Figure.Render() + "\n"
}

// httpError writes a JSON error body with the given status code.
func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeJSON writes v as the response body with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	// Encoding a JobStatus cannot fail; the write itself may, but the
	// status line is already out.
	_ = enc.Encode(v)
}
