package experiments

import (
	"encoding/json"
	"testing"

	"gpunoc/internal/config"
)

// TestMetricsDeterministicAcrossParallelism pins the -metrics contract: the
// probe snapshot of every experiment is byte-identical (as JSON) regardless
// of the worker count, because each experiment owns a private registry and
// snapshots sort by metric name.
func TestMetricsDeterministicAcrossParallelism(t *testing.T) {
	cfg := config.Small()
	ids := []string{"fig2", "fig4"}
	run := func(parallel int) map[string][]byte {
		r := Runner{
			Parallel: parallel,
			Options:  Options{Scale: Quick, Seed: 7, Metrics: true},
		}
		results, err := r.Run(&cfg, ids)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][]byte{}
		for _, res := range results {
			if res.Err != nil {
				t.Fatalf("%s failed: %v", res.Experiment.ID, res.Err)
			}
			blob, err := json.Marshal(res.Metrics)
			if err != nil {
				t.Fatal(err)
			}
			out[res.Experiment.ID] = blob
		}
		return out
	}
	seq := run(1)
	par := run(8)
	for _, id := range ids {
		if string(seq[id]) != string(par[id]) {
			t.Errorf("%s metrics differ between -parallel 1 and 8:\n%s\nvs\n%s",
				id, seq[id], par[id])
		}
		if len(seq[id]) == 0 || string(seq[id]) == `{"cycles":0}` {
			t.Errorf("%s produced an empty metrics snapshot", id)
		}
	}
}

// TestMetricsOffLeavesResultsUntouched: without Options.Metrics the runner
// must not attach a registry, and Result.Metrics stays zero — the nil-probe
// fast path the byte-identity guarantee rests on.
func TestMetricsOffLeavesResultsUntouched(t *testing.T) {
	cfg := config.Small()
	r := Runner{Parallel: 1, Options: Options{Scale: Quick, Seed: 7}}
	results, err := r.Run(&cfg, []string{"fig2"})
	if err != nil {
		t.Fatal(err)
	}
	m := results[0].Metrics
	if m.Cycles != 0 || m.Counters != nil || m.Gauges != nil || m.Hists != nil || m.Occupancy != nil {
		t.Errorf("Metrics populated without Options.Metrics: %+v", m)
	}
	if cfg.Probes != nil {
		t.Error("runner mutated the caller's config with a probe registry")
	}
}

// TestMetricsDoNotPerturbFigures: the figure an experiment produces must be
// identical with and without instrumentation attached.
func TestMetricsDoNotPerturbFigures(t *testing.T) {
	cfg := config.Small()
	render := func(metrics bool) string {
		r := Runner{Parallel: 1, Options: Options{Scale: Quick, Seed: 7, Metrics: metrics}}
		results, err := r.Run(&cfg, []string{"fig2"})
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Err != nil {
			t.Fatal(results[0].Err)
		}
		return results[0].Figure.Render()
	}
	if with, without := render(true), render(false); with != without {
		t.Errorf("instrumentation changed the figure:\nwith:\n%s\nwithout:\n%s", with, without)
	}
}
