// Package engine is the cycle-driven top level of the GPU simulator: it owns
// the SMs, the hierarchical NoC, the L2/memory partitions, the per-SM clock
// registers, and the thread-block scheduler, and advances them all in a
// deterministic tick order. Kernels (device.KernelSpec) are launched onto
// the GPU, placed by the reverse-engineered scheduler of §4.3, and run to
// completion; the engine reports per-kernel execution times, which is the
// measurement every figure of the paper is built from.
package engine

import (
	"fmt"

	"gpunoc/internal/clockreg"
	"gpunoc/internal/config"
	"gpunoc/internal/device"
	"gpunoc/internal/mem"
	"gpunoc/internal/noc"
	"gpunoc/internal/packet"
	"gpunoc/internal/probe"
	"gpunoc/internal/sched"
	"gpunoc/internal/sm"
	"gpunoc/internal/tbsched"
	"gpunoc/internal/telemetry"
)

// BlockPlacement records where one block of a launched kernel landed.
type BlockPlacement struct {
	Block int
	SM    int
}

// Kernel is a resident kernel launch.
type Kernel struct {
	ID     int
	Spec   device.KernelSpec
	Blocks []BlockPlacement

	LaunchedAt uint64
	FinishedAt uint64
	done       bool
}

// Running reports whether the kernel has unfinished warps.
func (k *Kernel) Running() bool { return !k.done }

// Duration returns the kernel execution time in cycles (0 while running).
func (k *Kernel) Duration() uint64 {
	if !k.done {
		return 0
	}
	return k.FinishedAt - k.LaunchedAt
}

// GPU is the simulated device.
type GPU struct {
	cfg    config.Config
	clocks *clockreg.Bank
	net    *noc.Network
	part   *mem.Partition
	sms    []*sm.SM
	sched  *tbsched.Scheduler

	kernels []*Kernel
	now     uint64

	// Activity-driven scheduling: SMs are woken by AddWarp/OnReply and
	// parked by step once Quiescent() holds. smSet is nil when
	// cfg.ExhaustiveTick is set, selecting the tick-everything reference
	// path. running counts kernels not yet done, so RunFor can fast-forward
	// across stretches where no component holds work.
	smSet   *sched.ActiveSet
	running int

	// Sharded parallel tick loop (see parallel.go). par is nil — and
	// workers is 1 — when the engine runs the classic single-goroutine
	// loop: in exhaustive mode, under probes, or when the resolved worker
	// count is 1. The worker count never influences simulation state.
	par     *parEngine
	workers int

	// rmt is the cross-GPU seam (see remote.go): nil on a standalone
	// device, set by ConnectRemote when the GPU joins a mesh. The hot
	// paths pay one nil check when unconnected.
	rmt *remoteState

	// trace is cached from the registry so updateKernels can emit one span
	// per completed kernel; nil when tracing is disabled.
	trace       *probe.Trace
	kernelTrack probe.TrackID

	schedCycles *probe.Counter // cycles actually stepped (not fast-forwarded)
	smTicks     *probe.Counter // SM Tick calls under the activity scheduler
	ffwdCycles  *probe.Counter // cycles skipped by RunFor's idle fast-forward

	// tel is cached from the configuration so the run loops pay a single
	// nil check per cycle when telemetry is off. The sampler is stepped
	// outside step() — the hot-allocation lint root — because emitting a
	// window snapshots the registry, which allocates.
	tel *telemetry.Sampler
}

// New builds a GPU for cfg. The configuration is copied; later mutations of
// the caller's value do not affect the instance.
func New(cfg config.Config) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &GPU{cfg: cfg}

	var err error
	if g.clocks, err = clockreg.New(&g.cfg); err != nil {
		return nil, err
	}
	if g.sched, err = tbsched.New(&g.cfg); err != nil {
		return nil, err
	}
	if g.part, err = mem.NewPartition(&g.cfg, g.onReplyFromSlice); err != nil {
		return nil, err
	}
	if g.net, err = noc.New(&g.cfg, g.onRequestAtSlice, g.onReplyAtSM); err != nil {
		return nil, err
	}
	g.sms = make([]*sm.SM, g.cfg.NumSMs())
	for i := range g.sms {
		i := i
		g.sms[i], err = sm.New(i, &g.cfg, g.clocks, func(now uint64, p *packet.Packet) {
			if g.rmt != nil {
				if d := g.rmt.owner(p.Addr); d != g.rmt.dev {
					g.rmt.pushRequest(p, d)
					return
				}
			}
			p.Slice = g.part.SliceFor(p.Addr)
			g.net.InjectRequest(now, i, p)
		})
		if err != nil {
			return nil, err
		}
	}
	if !g.cfg.ExhaustiveTick {
		g.smSet = sched.NewActiveSet(len(g.sms))
		for i, s := range g.sms {
			s.SetWaker(func() { g.smSet.Wake(i) })
		}
	}
	g.workers = resolveWorkers(&g.cfg)
	if g.workers > 1 {
		// Sharded mode replaces the global active sets (including smSet's
		// wakers, rewired per GPC) with per-shard ones; see parallel.go.
		g.smSet = nil
		g.par = newParEngine(g, g.workers)
	}
	if g.cfg.Telemetry != nil {
		if g.cfg.Probes == nil {
			return nil, fmt.Errorf("engine: config carries a telemetry sampler but no probe registry to aggregate (set Config.Probes)")
		}
		g.tel = g.cfg.Telemetry
	}
	if g.cfg.Probes != nil {
		if tr := g.cfg.Probes.Tracer(); tr != nil {
			g.trace = tr
			g.kernelTrack = tr.Track("kernels")
		}
		g.schedCycles = g.cfg.Probes.Counter("sched/cycles")
		g.smTicks = g.cfg.Probes.Counter("sched/sm_ticks")
		g.ffwdCycles = g.cfg.Probes.Counter("sched/ffwd_cycles")
	}
	return g, nil
}

func (g *GPU) onRequestAtSlice(now uint64, p *packet.Packet) { g.part.Accept(now, p) }

// onReplyFromSlice routes a completed reply: cross-GPU replies (a request
// stamped SrcDev != DstDev at NVLink egress keeps the stamps through the
// slice) leave for the origin device through the remote reply outbox instead
// of entering the local reply subnet.
func (g *GPU) onReplyFromSlice(now uint64, p *packet.Packet) {
	if g.rmt != nil && p.SrcDev != p.DstDev {
		g.rmt.pushReply(p)
		return
	}
	g.net.InjectReply(now, p)
}
func (g *GPU) onReplyAtSM(now uint64, p *packet.Packet) { g.sms[p.Tag.SM].OnReply(now, p) }

// Config returns the (immutable) configuration.
func (g *GPU) Config() *config.Config { return &g.cfg }

// Clocks exposes the clock register bank (reverse engineering reads skews).
func (g *GPU) Clocks() *clockreg.Bank { return g.clocks }

// Network exposes the NoC for link statistics.
func (g *GPU) Network() *noc.Network { return g.net }

// Partition exposes the memory partitions (preloads, stats).
func (g *GPU) Partition() *mem.Partition { return g.part }

// SM returns SM i.
func (g *GPU) SM(i int) *sm.SM { return g.sms[i] }

// Probes returns the instrumentation registry this GPU was built with, or
// nil when the configuration carried none.
func (g *GPU) Probes() *probe.Registry { return g.cfg.Probes }

// ProbeSnapshot captures the registry's metrics at the current cycle. It
// returns the zero Snapshot when instrumentation is disabled.
func (g *GPU) ProbeSnapshot() probe.Snapshot { return g.cfg.Probes.Snapshot(g.now) }

// Now returns the current cycle.
func (g *GPU) Now() uint64 { return g.now }

// Preload warms the L2 with [base, base+size).
func (g *GPU) Preload(base, size uint64) { g.part.Preload(base, size) }

// Launch places a kernel's blocks via the thread-block scheduler and makes
// its warps resident. It mirrors a cudaStream launch: placement happens
// immediately at the current cycle; warps begin after the per-SM dispatch
// jitter.
func (g *GPU) Launch(spec device.KernelSpec) (*Kernel, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sms, err := g.sched.Assign(spec.Blocks)
	if err != nil {
		return nil, err
	}
	k := &Kernel{ID: len(g.kernels), Spec: spec, LaunchedAt: g.now}
	for b, smID := range sms {
		k.Blocks = append(k.Blocks, BlockPlacement{Block: b, SM: smID})
		for w := 0; w < spec.WarpsPerBlock; w++ {
			prog := spec.New(b, w)
			if prog == nil {
				return nil, fmt.Errorf("engine: kernel %q produced nil program for block %d warp %d",
					spec.Name, b, w)
			}
			if err := g.sms[smID].AddWarp(g.now, k.ID, b, w, prog); err != nil {
				return nil, err
			}
		}
	}
	g.kernels = append(g.kernels, k)
	g.running++
	return k, nil
}

// LaunchAt runs the simulation until cycle at, then launches the kernel —
// convenient for modeling the one-time process skew of an MPS-style launch
// (§2.2).
func (g *GPU) LaunchAt(at uint64, spec device.KernelSpec) (*Kernel, error) {
	if at < g.now {
		return nil, fmt.Errorf("engine: launch cycle %d is in the past (now %d)", at, g.now)
	}
	g.RunFor(at - g.now)
	return g.Launch(spec)
}

// step advances the GPU by one cycle in a fixed component order: SMs issue,
// the fabric moves packets, the memory partitions service requests. Under
// activity-driven scheduling only active SMs tick (in ascending id order,
// matching the exhaustive loop); an SM whose warps are all stalled on memory
// parks itself until a reply or a new warp wakes it.
func (g *GPU) step() {
	if g.par != nil {
		g.par.step()
		g.updateKernels()
		g.now++
		return
	}
	if g.smSet == nil {
		for _, s := range g.sms {
			s.Tick(g.now)
		}
	} else if !g.smSet.Empty() {
		for i, s := range g.sms {
			if !g.smSet.Active(i) {
				continue
			}
			s.Tick(g.now)
			if g.smTicks != nil {
				g.smTicks.Inc()
			}
			if s.Quiescent() {
				g.smSet.Park(i)
			}
		}
	}
	g.net.Tick(g.now)
	g.part.Tick(g.now)
	g.updateKernels()
	if g.schedCycles != nil {
		g.schedCycles.Inc()
	}
	g.now++
}

// quiet reports whether every component is parked and no kernel is running:
// no future cycle can do work until the next Launch, so cycles may be
// skipped wholesale. Always false in exhaustive mode.
func (g *GPU) quiet() bool {
	if g.rmt != nil && !g.rmt.boxesEmpty() {
		return false
	}
	if g.par != nil {
		return g.running == 0 && g.par.smsQuiet() &&
			g.net.Quiet() && g.part.Quiet()
	}
	return g.smSet != nil && g.running == 0 && g.smSet.Empty() &&
		g.net.Quiet() && g.part.Quiet()
}

func (g *GPU) updateKernels() {
	for _, k := range g.kernels {
		if k.done {
			continue
		}
		running := 0
		for _, bp := range k.Blocks {
			running += g.sms[bp.SM].RunningWarps(k.ID)
			if running > 0 {
				break
			}
		}
		if running == 0 {
			k.done = true
			k.FinishedAt = g.now
			g.running--
			if g.trace != nil {
				g.trace.Span(g.kernelTrack, k.Spec.Name, k.LaunchedAt, g.now)
			}
			for _, bp := range k.Blocks {
				// Release occupancy and recycle warp slots.
				if err := g.sched.Release(bp.SM); err != nil {
					panic(fmt.Sprintf("engine: release kernel %d block on SM %d: %v", k.ID, bp.SM, err))
				}
			}
			//lint:allow hotalloc runs once per kernel completion, not per cycle
			seen := map[int]bool{}
			for _, bp := range k.Blocks {
				if !seen[bp.SM] {
					seen[bp.SM] = true
					g.sms[bp.SM].ReclaimFinished()
				}
			}
		}
	}
}

// RunFor advances the simulation n cycles. When the activity scheduler
// reports the whole device parked with no kernel running, the remaining
// cycles are skipped in one jump: nothing can change state until the next
// Launch, and every per-cycle observable (clock registers, probe snapshots)
// is a pure function of the cycle number.
//
// The telemetry sampler is stepped here rather than inside step() so quiet
// stretches keep their one-jump fast path: the registry cannot change while
// the device is parked, so handing the sampler the whole skipped span at
// once emits the same windows stepping would have.
func (g *GPU) RunFor(n uint64) {
	for i := uint64(0); i < n; i++ {
		if g.quiet() {
			skipped := n - i
			g.now += skipped
			if g.ffwdCycles != nil {
				g.ffwdCycles.Add(skipped)
			}
			if g.tel != nil {
				g.tel.Step(skipped, g.cfg.Probes)
			}
			break
		}
		g.step()
		if g.tel != nil {
			g.tel.Step(1, g.cfg.Probes)
		}
	}
	g.cfg.Meter.Add(n)
}

// RunUntil advances the simulation until cond returns true or the cycle
// budget is exhausted; it reports whether cond fired. Like RunFor it
// fast-forwards once the whole device is parked with no kernel running:
// step() would be a no-op then, so the clock is advanced directly and the
// telemetry sampler is handed the skipped span in one call. cond is still
// evaluated at every cycle boundary the stepped loop would have checked —
// per-cycle observables such as clock registers are pure functions of the
// cycle number — so the cycle at which cond first fires, and the state cond
// observes, are unchanged.
func (g *GPU) RunUntil(cond func() bool, budget uint64) bool {
	ran := uint64(0)
	defer func() { g.cfg.Meter.Add(ran) }()
	for i := uint64(0); i < budget; i++ {
		if cond() {
			return true
		}
		if g.quiet() {
			remaining := budget - i
			skipped := uint64(0)
			fired := false
			for skipped < remaining {
				g.now++
				skipped++
				if skipped < remaining && cond() {
					fired = true
					break
				}
			}
			ran += skipped
			if g.ffwdCycles != nil {
				g.ffwdCycles.Add(skipped)
			}
			if g.tel != nil {
				g.tel.Step(skipped, g.cfg.Probes)
			}
			if fired {
				return true
			}
			break
		}
		g.step()
		if g.tel != nil {
			g.tel.Step(1, g.cfg.Probes)
		}
		ran++
	}
	return cond()
}

// RunKernels runs until every launched kernel has completed, with a cycle
// budget to guard against livelock. It returns an error on budget
// exhaustion.
func (g *GPU) RunKernels(budget uint64) error {
	ok := g.RunUntil(func() bool {
		for _, k := range g.kernels {
			if !k.done {
				return false
			}
		}
		return true
	}, budget)
	if !ok {
		return fmt.Errorf("engine: kernels still running after %d-cycle budget", budget)
	}
	return nil
}

// Idle reports whether no component holds queued work.
func (g *GPU) Idle() bool {
	for _, s := range g.sms {
		if !s.Idle() {
			return false
		}
	}
	return g.net.Idle() && g.part.Idle()
}

// Kernels returns all launches in order.
func (g *GPU) Kernels() []*Kernel { return g.kernels }
