// Quickstart: establish the interconnect covert channel on the simulated
// Volta GPU and push a short message through it at multi-megabit rates.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gpunoc"
)

func main() {
	// The Table 1 GPU: 80 SMs in 40 TPCs across 6 GPCs.
	cfg := gpunoc.VoltaConfig()

	// Empirically determine the latency threshold that separates
	// "sender silent" from "sender flooding the TPC channel" (§4.4).
	params, err := gpunoc.Calibrate(&cfg, gpunoc.ChannelParams{
		Kind:       gpunoc.TPCChannel,
		Iterations: 4,  // memory ops per bit: the Fig 10 trade-off knob
		SyncPeriod: 16, // clock-register resync every 16 bits
		Seed:       42,
	})
	if err != nil {
		log.Fatalf("calibration: %v", err)
	}
	fmt.Printf("calibrated threshold: %.1f cycles\n", params.Thresholds[0])

	// Transmit across all 40 TPC pairs in parallel (the ~24 Mbps
	// configuration of the paper).
	secret := []byte("Hello from the trojan kernel!")
	res, recovered, err := gpunoc.SendBytes(&cfg, secret, params)
	if err != nil {
		log.Fatalf("transmission: %v", err)
	}

	fmt.Printf("sent      : %q\n", secret)
	fmt.Printf("recovered : %q\n", recovered)
	fmt.Printf("bandwidth : %.2f Mbps over %d parallel TPC channels\n",
		res.BitsPerSecond/1e6, len(res.Pairs))
	fmt.Printf("error rate: %.4f (%d/%d bits)\n", res.ErrorRate, res.SymbolErrors, res.SymbolsSent)
}
