package engine

import (
	"testing"
	"testing/quick"

	"gpunoc/internal/config"
	"gpunoc/internal/device"
)

func testCfg() config.Config {
	c := config.Small()
	c.WarpIssueJitter = 0
	c.L2ServiceJitter = 0
	return c
}

func mkGPU(t *testing.T, cfg config.Config) *GPU {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func streamerKernel(name string, blocks, warps, count int, write, unco bool, lineBytes int) (device.KernelSpec, map[[2]int]*device.Streamer) {
	spec := device.KernelSpec{
		Name:          name,
		Blocks:        blocks,
		WarpsPerBlock: warps,
	}
	progs := map[[2]int]*device.Streamer{}
	spec.New = func(b, w int) device.Program {
		s := &device.Streamer{
			Base:        uint64(b*warps+w) * streamerSpan,
			LineBytes:   lineBytes,
			Write:       write,
			Count:       count,
			Uncoalesced: unco,
			WrapBytes:   streamerWrap,
		}
		progs[[2]int{b, w}] = s
		return s
	}
	return spec, progs
}

// streamerSpan/streamerWrap keep every warp's working set small and disjoint
// so the whole footprint stays L2-resident after preloadStreamers.
const (
	streamerSpan = 1 << 17
	streamerWrap = 1 << 14
)

func preloadStreamers(g *GPU, warpsTotal int) {
	for i := 0; i < warpsTotal; i++ {
		g.Preload(uint64(i)*streamerSpan, streamerWrap)
	}
}

func TestNewValidation(t *testing.T) {
	bad := testCfg()
	bad.NumGPCs = 0
	if _, err := New(bad); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestLaunchValidation(t *testing.T) {
	g := mkGPU(t, testCfg())
	if _, err := g.Launch(device.KernelSpec{Name: "bad"}); err == nil {
		t.Error("invalid spec should fail")
	}
	spec := device.KernelSpec{Name: "nilprog", Blocks: 1, WarpsPerBlock: 1,
		New: func(int, int) device.Program { return nil }}
	if _, err := g.Launch(spec); err == nil {
		t.Error("nil program should fail")
	}
}

// TestSingleKernelRunsToCompletion: a small write streamer finishes and the
// GPU drains completely.
func TestSingleKernelRunsToCompletion(t *testing.T) {
	cfg := testCfg()
	g := mkGPU(t, cfg)
	preloadStreamers(g, 1)
	spec, progs := streamerKernel("w", 1, 1, 5, true, true, cfg.L2LineBytes)
	k, err := g.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RunKernels(200_000); err != nil {
		t.Fatal(err)
	}
	if !k.Running() == false {
		t.Error("kernel should be done")
	}
	if k.Duration() == 0 {
		t.Error("zero duration")
	}
	if progs[[2]int{0, 0}].Issued() != 5 {
		t.Errorf("issued %d ops", progs[[2]int{0, 0}].Issued())
	}
	if !g.RunUntil(g.Idle, 10_000) {
		t.Error("GPU did not drain after kernel completion")
	}
}

// TestPreloadMakesProbeL2Resident: with a preloaded working set the streamer
// sees stable, low latencies (no DRAM excursions).
func TestPreloadMakesProbeL2Resident(t *testing.T) {
	cfg := testCfg()
	g := mkGPU(t, cfg)
	preloadStreamers(g, 1)
	spec, progs := streamerKernel("r", 1, 1, 10, false, true, cfg.L2LineBytes)
	if _, err := g.Launch(spec); err != nil {
		t.Fatal(err)
	}
	if err := g.RunKernels(500_000); err != nil {
		t.Fatal(err)
	}
	st := g.Partition().Stats()
	if st.Misses != 0 {
		t.Errorf("probe traffic missed L2 %d times despite preload", st.Misses)
	}
	lat := progs[[2]int{0, 0}].Latencies
	if len(lat) == 0 {
		t.Fatal("no latencies recorded")
	}
	for i := 1; i < len(lat); i++ {
		diff := int64(lat[i]) - int64(lat[0])
		if diff < -15 || diff > 15 {
			t.Errorf("unstable unloaded latency: %v", lat)
			break
		}
	}
}

// TestFig2Shape is the keystone integration test: running the Algorithm 1
// write benchmark on SM0 alone, on SM0+SM1 (same TPC), and on SM0+SM2
// (different TPC) must reproduce the Fig 2 signature — 2x degradation only
// for the same-TPC pair.
func TestFig2Shape(t *testing.T) {
	cfg := testCfg()
	const ops = 30
	run := func(otherSM int) uint64 {
		g := mkGPU(t, cfg)
		preloadStreamers(g, 4)
		g.Preload(1<<26, streamerWrap)
		// Kernel with one block pinned by launching single-block kernels in
		// scheduler order: block 0 of kernel A lands on SM0 (first in
		// placement order). For the contender we launch enough blocks to
		// reach the target SM, with only the target doing work.
		specA, _ := streamerKernel("sm0", 1, 1, ops, true, true, cfg.L2LineBytes)
		if _, err := g.Launch(specA); err != nil {
			t.Fatal(err)
		}
		if otherSM >= 0 {
			spec := device.KernelSpec{
				Name:          "other",
				Blocks:        1,
				WarpsPerBlock: 1,
			}
			spec.New = func(b, w int) device.Program {
				return &device.Streamer{Base: 1 << 26, LineBytes: cfg.L2LineBytes,
					Write: true, Count: ops * 2, Uncoalesced: true, WrapBytes: streamerWrap}
			}
			// Place the contender directly on the requested SM by
			// launching onto a fresh scheduler state: the small config
			// places subsequent blocks on distinct TPC slots; pick the
			// kernel whose placement matches.
			k, err := g.Launch(spec)
			if err != nil {
				t.Fatal(err)
			}
			got := k.Blocks[0].SM
			if got != otherSM {
				t.Skipf("scheduler placed contender on SM %d, wanted %d", got, otherSM)
			}
		}
		kA := g.Kernels()[0]
		if !g.RunUntil(func() bool { return !kA.Running() }, 2_000_000) {
			t.Fatal("SM0 kernel never finished")
		}
		return kA.Duration()
	}
	alone := run(-1)
	// In the Small config, placement order is TPC-interleaved: after SM0,
	// the next blocks land on other TPCs first. The scheduler's second
	// launch goes to the second TPC slot; find same-TPC placement by
	// launching after all TPC-0 slots fill. Instead, directly use the
	// placement order: second kernel lands on a different TPC.
	diffTPC := run(2) // second block goes to another TPC's SM
	if r := float64(diffTPC) / float64(alone); r > 1.25 {
		t.Errorf("different-TPC contender slowed SM0 by %.2fx, want ~1x", r)
	}
	if alone == 0 {
		t.Fatal("zero baseline")
	}
}

// TestSameTPCContention launches a full-width multi-warp kernel so that both
// SMs of TPC0 are active and throughput-bound (the paper's benchmarks run
// whole thread blocks, hiding per-op latency behind warp parallelism), and
// checks ~2x write slowdown against the solo baseline.
func TestSameTPCContention(t *testing.T) {
	cfg := testCfg()
	const ops = 20
	const warps = 4
	solo := func() uint64 {
		g := mkGPU(t, cfg)
		preloadStreamers(g, warps)
		spec, _ := streamerKernel("solo", 1, warps, ops, true, true, cfg.L2LineBytes)
		k, err := g.Launch(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !g.RunUntil(func() bool { return !k.Running() }, 2_000_000) {
			t.Fatal("solo kernel stuck")
		}
		return k.Duration()
	}()

	g := mkGPU(t, cfg)
	preloadStreamers(g, (cfg.NumTPCs()+1)*warps)
	// Fill every slot-0 SM (one block per TPC).
	specA, _ := streamerKernel("senders", cfg.NumTPCs(), warps, ops*3, true, true, cfg.L2LineBytes)
	if _, err := g.Launch(specA); err != nil {
		t.Fatal(err)
	}
	// Next kernel lands on slot-1 SMs: co-located with the first.
	specB, _ := streamerKernel("receivers", 1, warps, ops, true, true, cfg.L2LineBytes)
	kB, err := g.Launch(specB)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TPCOfSM(kB.Blocks[0].SM) != 0 {
		t.Fatalf("receiver landed on TPC %d, want 0", cfg.TPCOfSM(kB.Blocks[0].SM))
	}
	if !g.RunUntil(func() bool { return !kB.Running() }, 5_000_000) {
		t.Fatal("receiver kernel stuck")
	}
	ratio := float64(kB.Duration()) / float64(solo)
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("same-TPC write contention = %.2fx, want ~2x", ratio)
	}
}

// TestSameTPCReadNoContention pins the Fig 5a asymmetry: the same experiment
// with reads shows almost no slowdown, because two reading SMs stay under
// the TPC channel capacity.
func TestSameTPCReadNoContention(t *testing.T) {
	cfg := testCfg()
	const ops = 20
	const warps = 4
	solo := func() uint64 {
		g := mkGPU(t, cfg)
		preloadStreamers(g, warps)
		spec, _ := streamerKernel("solo", 1, warps, ops, false, true, cfg.L2LineBytes)
		k, err := g.Launch(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !g.RunUntil(func() bool { return !k.Running() }, 2_000_000) {
			t.Fatal("solo kernel stuck")
		}
		return k.Duration()
	}()

	g := mkGPU(t, cfg)
	preloadStreamers(g, (cfg.NumTPCs()+1)*warps)
	// Only TPC0's block streams; the rest exit immediately. Fig 5a's read
	// experiment activates just the two SMs of one TPC — activating every
	// TPC would instead saturate the shared GPC reply channel (Fig 5b).
	specA, _ := streamerKernel("senders", cfg.NumTPCs(), warps, ops*3, false, true, cfg.L2LineBytes)
	innerNew := specA.New
	specA.New = func(b, w int) device.Program {
		if b != 0 {
			return &device.ClockReader{}
		}
		return innerNew(b, w)
	}
	if _, err := g.Launch(specA); err != nil {
		t.Fatal(err)
	}
	specB, _ := streamerKernel("receivers", 1, warps, ops, false, true, cfg.L2LineBytes)
	kB, err := g.Launch(specB)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TPCOfSM(kB.Blocks[0].SM) != 0 {
		t.Fatalf("receiver landed on TPC %d, want 0", cfg.TPCOfSM(kB.Blocks[0].SM))
	}
	if !g.RunUntil(func() bool { return !kB.Running() }, 5_000_000) {
		t.Fatal("receiver kernel stuck")
	}
	ratio := float64(kB.Duration()) / float64(solo)
	if ratio > 1.35 {
		t.Errorf("same-TPC read contention = %.2fx, want ~1x", ratio)
	}
}

func TestLaunchAt(t *testing.T) {
	cfg := testCfg()
	g := mkGPU(t, cfg)
	spec := device.KernelSpec{Name: "c", Blocks: 1, WarpsPerBlock: 1,
		New: func(int, int) device.Program { return &device.ClockReader{} }}
	k, err := g.LaunchAt(500, spec)
	if err != nil {
		t.Fatal(err)
	}
	if k.LaunchedAt != 500 {
		t.Errorf("launched at %d", k.LaunchedAt)
	}
	if _, err := g.LaunchAt(100, spec); err == nil {
		t.Error("past launch should fail")
	}
}

func TestRunKernelsBudget(t *testing.T) {
	cfg := testCfg()
	g := mkGPU(t, cfg)
	spec := device.KernelSpec{Name: "spin", Blocks: 1, WarpsPerBlock: 1,
		New: func(int, int) device.Program { return &device.ComputeLoop{Count: 1 << 30} }}
	if _, err := g.Launch(spec); err != nil {
		t.Fatal(err)
	}
	if err := g.RunKernels(1000); err == nil {
		t.Error("budget exhaustion should error")
	}
}

// TestClockSurveyKernel reproduces the Fig 6 structure end to end: a
// one-warp-per-SM kernel reads every clock register; TPC-mates read nearly
// identical values.
func TestClockSurveyKernel(t *testing.T) {
	cfg := testCfg()
	g := mkGPU(t, cfg)
	readers := make(map[int]*device.ClockReader)
	spec := device.KernelSpec{
		Name: "survey", Blocks: cfg.NumSMs(), WarpsPerBlock: 1,
		New: func(b, w int) device.Program {
			r := &device.ClockReader{}
			readers[b] = r
			return r
		},
	}
	if _, err := g.Launch(spec); err != nil {
		t.Fatal(err)
	}
	if err := g.RunKernels(100_000); err != nil {
		t.Fatal(err)
	}
	bySM := map[int]uint32{}
	for _, r := range readers {
		bySM[r.SMID] = r.Value
	}
	if len(bySM) != cfg.NumSMs() {
		t.Fatalf("survey covered %d SMs", len(bySM))
	}
	for tpc := 0; tpc < cfg.NumTPCs(); tpc++ {
		sms := cfg.SMsOfTPC(tpc)
		a, b := int64(bySM[sms[0]]), int64(bySM[sms[1]])
		diff := a - b
		if diff < 0 {
			diff = -diff
		}
		// Clock offsets differ by <5; read cycles may differ by a few
		// scheduler cycles on top.
		if diff > 32 {
			t.Errorf("TPC %d clock readings differ by %d", tpc, diff)
		}
	}
}

// Property: kernel durations are deterministic for a fixed seed.
func TestQuickDeterminism(t *testing.T) {
	cfg := testCfg()
	cfg.WarpIssueJitter = 50
	cfg.L2ServiceJitter = 4
	run := func(seed int64) uint64 {
		c := cfg
		c.Seed = seed
		g, err := New(c)
		if err != nil {
			return 0
		}
		preloadStreamers(g, 4)
		spec, _ := streamerKernel("d", 2, 2, 6, true, true, c.L2LineBytes)
		k, err := g.Launch(spec)
		if err != nil {
			return 0
		}
		if g.RunKernels(2_000_000) != nil {
			return 0
		}
		return k.Duration()
	}
	f := func(seedRaw uint16) bool {
		seed := int64(seedRaw)
		a := run(seed)
		b := run(seed)
		return a != 0 && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
