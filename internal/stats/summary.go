// The shared latency-distribution summary: one struct shape used by the
// probe metrics snapshots and the experiment-level metrics JSON, so every
// component — link queue waits, L2 service latencies, DRAM queue waits, SM
// operation latencies, figure series — reports its distribution with the
// same fields.

package stats

import (
	"math"
	"sort"
)

// Dist is the standard distribution summary: sample count, mean, the 50th /
// 95th / 99th percentiles, and the maximum.
type Dist struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Summary computes the Dist of xs with a single sort and a single
// accumulation pass: the slice is copied and sorted once, the mean comes
// from one sum loop, and each percentile is a linear interpolation between
// the two closest ranks of the already-sorted copy (matching Percentile).
// An empty slice yields the zero Dist.
func Summary(xs []float64) Dist {
	if len(xs) == 0 {
		return Dist{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	return Dist{
		Count: len(sorted),
		Mean:  sum / float64(len(sorted)),
		P50:   quantileSorted(sorted, 0.50),
		P95:   quantileSorted(sorted, 0.95),
		P99:   quantileSorted(sorted, 0.99),
		Max:   sorted[len(sorted)-1],
	}
}

// quantileSorted interpolates the q-th quantile (0 <= q <= 1) of an
// already-sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := q * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
