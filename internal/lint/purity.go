// The state-purity analyzer. A simulation must be a pure function of
// config.Config, so simulator packages may not hold package-level variables:
// any package state can couple independent engine instances (or concurrent
// experiments) to each other. Sentinel errors (`var ErrX = errors.New(...)`)
// are immutable by convention and stay permitted; everything else needs a
// //lint:allow purity directive with a reason — the documented example being
// the experiment registry that init() self-registration fills once, before
// main starts.

package lint

import (
	"go/ast"
	"go/token"
)

func purityAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "purity",
		Doc:  "ban package-level mutable state in simulator packages",
		Run:  runPurity,
	}
}

func runPurity(pass *Pass) {
	if !pass.Rules.Purity.Scope.Match(pass.Pkg.Rel) {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if pass.Rules.Purity.AllowSentinelErrors && isSentinelError(pass, f, vs) {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue // compile-time assertions carry no state
					}
					pass.Report(name.Pos(),
						"package-level variable %q is mutable state in a simulator package; thread it through config.Config or the call graph (or //lint:allow purity <reason>)",
						name.Name)
				}
			}
		}
	}
}

// isSentinelError recognizes the `var ErrX = errors.New("...")` and
// fmt.Errorf forms: a single-name spec initialized by an error constructor.
func isSentinelError(pass *Pass, f *ast.File, vs *ast.ValueSpec) bool {
	if len(vs.Names) != 1 || len(vs.Values) != 1 {
		return false
	}
	call, ok := vs.Values[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	path, ok := pass.Pkg.Qualifier(f, sel)
	if !ok {
		return false
	}
	return (path == "errors" && sel.Sel.Name == "New") ||
		(path == "fmt" && sel.Sel.Name == "Errorf")
}
