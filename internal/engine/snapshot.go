// Whole-engine checkpointing. Snapshot serializes every piece of simulation
// state — resident warps and their programs, link and slice queues, caches,
// MSHRs, DRAM banks, RNG positions, activity sets, remote outboxes, probe
// instruments, and the telemetry sampler — into one versioned snap blob
// keyed by the configuration hash. Restore builds a fresh GPU from the same
// configuration and loads the blob into it; the restored device then
// replays bit-identically to a run that was never interrupted, at any
// engine worker count (the snapshot is canonicalized to the sequential
// shape, and sharded ticking is state-identical to sequential ticking).
package engine

import (
	"errors"

	"gpunoc/internal/config"
	"gpunoc/internal/device"
	"gpunoc/internal/packet"
	"gpunoc/internal/probe"
	"gpunoc/internal/snap"
)

// ErrTraceEnabled reports a snapshot attempt on an engine whose probe
// registry has event tracing attached: the bounded trace ring is a debugging
// aid, not simulation state, and is deliberately not serializable.
var ErrTraceEnabled = errors.New("engine: cannot snapshot with probe tracing enabled")

// RestoreOptions configures Restore.
type RestoreOptions struct {
	// Programs maps device.Checkpointable checkpoint ids to factories for
	// the resident warps' programs. The built-in device program types are
	// always available; entries here add to or override them. A factory may
	// capture the instances it returns — the CLI does, to read per-warp
	// clocks back after the run.
	Programs map[string]func() device.Checkpointable
}

// builtinPrograms returns factories for every checkpointable program type
// the device package ships.
func builtinPrograms() map[string]func() device.Checkpointable {
	return map[string]func() device.Checkpointable{
		"streamer":        func() device.Checkpointable { return &device.Streamer{} },
		"clock-reader":    func() device.Checkpointable { return &device.ClockReader{} },
		"compute-loop":    func() device.Checkpointable { return &device.ComputeLoop{} },
		"masked-streamer": func() device.Checkpointable { return &device.MaskedStreamer{} },
	}
}

// Snapshot serializes the engine's complete simulation state into a
// versioned binary blob bound to the configuration hash. It fails with
// ErrTraceEnabled when event tracing is attached and with a wrapped
// device.ErrNotCheckpointable when a resident warp runs a closure-based
// program. Snapshotting does not perturb the run — the engine may keep
// stepping afterwards and remains bit-identical to an unsnapshotted run.
func (g *GPU) Snapshot() ([]byte, error) {
	if g.cfg.Probes != nil && g.cfg.Probes.Tracer() != nil {
		return nil, ErrTraceEnabled
	}
	e := snap.NewEncoder()
	if err := g.EncodeState(e); err != nil {
		return nil, err
	}
	return e.Finish(g.cfg.Hash()), nil
}

// EncodeState appends the engine's state sections to an encoder the caller
// owns — the seam internal/mesh uses to pack several devices into one blob.
// Most callers want Snapshot.
func (g *GPU) EncodeState(e *snap.Encoder) error {
	e.Mark("engine")
	e.U64(g.now)
	e.Int(g.running)
	e.Int(len(g.kernels))
	for _, k := range g.kernels {
		e.Int(k.ID)
		e.String(k.Spec.Name)
		e.Int(k.Spec.Blocks)
		e.Int(k.Spec.WarpsPerBlock)
		e.Int(len(k.Blocks))
		for _, bp := range k.Blocks {
			e.Int(bp.Block)
			e.Int(bp.SM)
		}
		e.U64(k.LaunchedAt)
		e.U64(k.FinishedAt)
		e.Bool(k.done)
	}
	g.sched.Snapshot(e)
	e.Int(len(g.sms))
	for _, s := range g.sms {
		if err := s.Snapshot(e); err != nil {
			return err
		}
	}
	for i := range g.sms {
		e.Bool(g.smActive(i))
	}
	g.net.Snapshot(e)
	g.part.Snapshot(e)
	e.Bool(g.rmt != nil)
	if g.rmt != nil {
		encodeBoxes(e, g.rmt.reqOut)
		encodeBoxes(e, g.rmt.repOut)
	}
	probe.Marshal(e, g.cfg.Probes)
	g.tel.Snapshot(e)
	return nil
}

// Restore builds a GPU from cfg and loads a Snapshot blob into it. The
// configuration must hash-match the snapshotting one (observer and worker
// knobs — probes, telemetry, meter, EngineWorkers, ExhaustiveTick — may
// differ; everything else must agree), or ErrConfigMismatch surfaces.
func Restore(cfg config.Config, data []byte, opts RestoreOptions) (*GPU, error) {
	g, err := New(cfg)
	if err != nil {
		return nil, err
	}
	d, err := snap.NewDecoder(data, g.cfg.Hash())
	if err != nil {
		g.Close()
		return nil, err
	}
	if err := g.RestoreState(d, opts); err != nil {
		g.Close()
		return nil, err
	}
	if err := d.Close(); err != nil {
		g.Close()
		return nil, err
	}
	return g, nil
}

// RestoreState loads the engine state sections from a decoder the caller
// owns — the seam internal/mesh uses to unpack several devices from one
// blob. Most callers want Restore.
func (g *GPU) RestoreState(d *snap.Decoder, opts RestoreOptions) error {
	progs := builtinPrograms()
	for id, f := range opts.Programs {
		progs[id] = f
	}
	d.Expect("engine")
	g.now = d.U64()
	g.running = d.Int()
	nk := d.Len()
	g.kernels = make([]*Kernel, 0, nk)
	for i := 0; i < nk; i++ {
		k := &Kernel{}
		k.ID = d.Int()
		// Spec.New stays nil on a restored kernel: the factory closure is
		// not serializable, and resident warps already carry their programs.
		k.Spec.Name = d.String()
		k.Spec.Blocks = d.Int()
		k.Spec.WarpsPerBlock = d.Int()
		nb := d.Len()
		for j := 0; j < nb; j++ {
			var bp BlockPlacement
			bp.Block = d.Int()
			bp.SM = d.Int()
			k.Blocks = append(k.Blocks, bp)
		}
		k.LaunchedAt = d.U64()
		k.FinishedAt = d.U64()
		k.done = d.Bool()
		g.kernels = append(g.kernels, k)
	}
	if err := g.sched.Restore(d); err != nil {
		return err
	}
	if n := d.Int(); d.Err() == nil && n != len(g.sms) {
		return snap.Corruptf("snapshot holds %d SMs, device has %d", n, len(g.sms))
	}
	for _, s := range g.sms {
		if err := s.Restore(d, progs); err != nil {
			return err
		}
	}
	for i := range g.sms {
		if d.Bool() {
			g.wakeSM(i)
		}
	}
	if err := g.net.Restore(d); err != nil {
		return err
	}
	if err := g.part.Restore(d); err != nil {
		return err
	}
	if d.Bool() {
		req := decodeBoxes(d)
		rep := decodeBoxes(d)
		if err := d.Err(); err != nil {
			return err
		}
		if g.rmt == nil {
			for _, box := range append(req, rep...) {
				if len(box) != 0 {
					return snap.Corruptf("snapshot holds in-flight cross-GPU packets but the device is not connected to a mesh")
				}
			}
		} else {
			if len(req) != len(g.rmt.reqOut) || len(rep) != len(g.rmt.repOut) {
				return snap.Corruptf("snapshot remote outbox shape %dx%d does not match device %dx%d",
					len(req), len(rep), len(g.rmt.reqOut), len(g.rmt.repOut))
			}
			g.rmt.reqOut = req
			g.rmt.repOut = rep
		}
	}
	if err := probe.Unmarshal(d, g.cfg.Probes); err != nil {
		return err
	}
	return g.tel.Restore(d)
}

// smActive reads SM i's scheduler activity from whichever layout is live; in
// exhaustive mode it derives the bit from Quiescent, which is exact because
// parking is only legal when ticking is a no-op.
func (g *GPU) smActive(i int) bool {
	switch {
	case g.par != nil:
		return g.par.smShards[g.cfg.GPCOfSM(i)].Active(i)
	case g.smSet != nil:
		return g.smSet.Active(i)
	default:
		return !g.sms[i].Quiescent()
	}
}

// wakeSM routes a restored activity bit into whichever layout is live.
func (g *GPU) wakeSM(i int) {
	switch {
	case g.par != nil:
		g.par.smShards[g.cfg.GPCOfSM(i)].Wake(i)
	case g.smSet != nil:
		g.smSet.Wake(i)
	}
}

// encodeBoxes appends a remote outbox family (one packet list per shard).
func encodeBoxes(e *snap.Encoder, boxes [][]*packet.Packet) {
	e.Int(len(boxes))
	for _, box := range boxes {
		e.Int(len(box))
		for _, p := range box {
			packet.Encode(e, p)
		}
	}
}

// decodeBoxes reads a remote outbox family written by encodeBoxes.
func decodeBoxes(d *snap.Decoder) [][]*packet.Packet {
	n := d.Len()
	boxes := make([][]*packet.Packet, n)
	for i := 0; i < n; i++ {
		m := d.Len()
		for j := 0; j < m; j++ {
			boxes[i] = append(boxes[i], packet.Decode(d))
		}
	}
	return boxes
}
