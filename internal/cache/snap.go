package cache

import (
	"fmt"
	"sort"

	"gpunoc/internal/snap"
)

// Snapshot appends the cache's mutable state — every line's
// tag/valid/dirty/recency, the MSHR file (sorted by line address), the
// recency tick, and
// the activity counters — to the encoder. Geometry is not encoded: the
// restoring side rebuilds the cache from the same configuration.
func (c *Cache) Snapshot(e *snap.Encoder) {
	e.Int(len(c.lines))
	for i := range c.lines {
		l := &c.lines[i]
		e.Bool(l.valid)
		e.Bool(l.dirty)
		e.U64(l.tag)
		e.U64(l.used)
	}
	keys := make([]uint64, 0, len(c.mshrs))
	for la := range c.mshrs {
		keys = append(keys, la)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.Int(len(keys))
	for _, la := range keys {
		e.U64(la)
		e.Int(c.mshrs[la])
	}
	e.U64(c.useTick)
	e.U64(c.hits)
	e.U64(c.misses)
	e.U64(c.merged)
	e.U64(c.stalls)
	e.U64(c.evictions)
	e.U64(c.writebacks)
}

// Restore reads state written by Snapshot into a cache built from the same
// configuration.
func (c *Cache) Restore(d *snap.Decoder) error {
	if n := d.Int(); n != len(c.lines) {
		return fmt.Errorf("%w: snapshot holds %d cache lines, cache has %d", snap.ErrCorrupt, n, len(c.lines))
	}
	for i := range c.lines {
		l := &c.lines[i]
		l.valid = d.Bool()
		l.dirty = d.Bool()
		l.tag = d.U64()
		l.used = d.U64()
	}
	c.mshrs = make(map[uint64]int, c.mshrCap)
	n := d.Len()
	for i := 0; i < n; i++ {
		la := d.U64()
		c.mshrs[la] = d.Int()
	}
	c.useTick = d.U64()
	c.hits = d.U64()
	c.misses = d.U64()
	c.merged = d.U64()
	c.stalls = d.U64()
	c.evictions = d.U64()
	c.writebacks = d.U64()
	return d.Err()
}
