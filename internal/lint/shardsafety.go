// The shardsafety analyzer proves, from source, the ownership discipline the
// sharded parallel engine relies on (internal/engine/parallel.go,
// internal/noc/shard.go, internal/mem/shard.go): within the functions
// reachable from the per-GPC and per-MC-group phase tasks, every touch of
// partitioned engine state must resolve to the task's own shard. The dynamic
// half of the argument — the worker-matrix lockstep and -race regressions —
// samples executions; this analyzer quantifies over all of them, so a
// refactor that introduces a cross-shard write fails CI even on paths the
// fuzzer never drives.
//
// The analysis is a forward taint ("derivedness") propagation rooted at the
// declared shard parameters. A value is shard-derived when it is:
//
//   - the phase task's shard parameter (axiomatically: runPhase dispatches
//     task i with argument i);
//   - a parameter of a reachable function whose every reachable call site
//     passes a derived argument (interprocedural step);
//   - a variable captured by a function literal (closures such as the wake
//     edges are created per shard member during setup and capture exactly
//     their member's indices — single-owner by construction);
//   - a field of a packet value (a packet belongs to exactly one shard at a
//     time, so routing on p.Slice / p.Tag.SM stays inside the owner; the
//     hand-off containment rule below pins the ownership transfer itself);
//   - computed from derived values (calls, arithmetic, indexing, ranging).
//
// Constants and fresh loop variables are NOT derived — a literal-index peek
// into another shard, or a loop over all shards, is exactly the bug class
// this exists to catch. Four checks consume the taint:
//
//  1. indexing an owned collection (Rules.ShardSafety.OwnedCollections)
//     requires a derived index;
//  2. the hand-off outboxes (HandoffFields) may be touched only inside the
//     sanctioned producer/drain/query set (HandoffFuncs);
//  3. fields of coordinator-owned structs (CoordinatorTypes) must not be
//     written from a phase;
//  4. nothing may be assigned to package-level state.
//
// Known limits, accepted deliberately: copying an owned collection into a
// local and indexing the alias is not tracked (the repo's helpers receive
// collections as parameters, which the interprocedural step covers), and a
// packet's dynamic ownership is trusted rather than proven (that is what the
// hand-off rule plus the byte-identity worker matrix pin).

package lint

import (
	"go/ast"
	"go/types"
)

func shardSafetyAnalyzer() *Analyzer {
	return &Analyzer{
		Name:       "shardsafety",
		Doc:        "parallel-engine phase tasks touch only their own shard's state",
		RunProgram: runShardSafety,
	}
}

// shardCtx is the resolved rule configuration plus the analysis products.
type shardCtx struct {
	pass    *ProgramPass
	graph   *CallGraph
	owned   map[*types.Var]bool
	handoff map[*types.Var]bool
	coord   map[*types.Named]bool
	packet  map[*types.Named]bool
	sanct   map[*CGNode]bool
	reach   map[*CGNode]bool
	// derivedParam marks parameters proven shard-derived at every reachable
	// call site (roots are seeded).
	derivedParam map[*types.Var]bool
}

func runShardSafety(pass *ProgramPass) {
	r := &pass.Rules.ShardSafety
	if len(r.PhaseRoots) == 0 {
		pass.Disable()
		return
	}
	cx := &shardCtx{
		pass:         pass,
		graph:        pass.Graph,
		owned:        resolveFields(pass.Pkgs, r.OwnedCollections),
		handoff:      resolveFields(pass.Pkgs, r.HandoffFields),
		coord:        resolveTypes(pass.Pkgs, r.CoordinatorTypes),
		packet:       resolveTypes(pass.Pkgs, r.PacketTypes),
		sanct:        make(map[*CGNode]bool),
		derivedParam: make(map[*types.Var]bool),
	}
	for _, ref := range r.HandoffFuncs {
		if n := pass.Graph.Lookup(ref); n != nil {
			cx.sanct[n] = true
		}
	}

	var roots []*CGNode
	for _, pr := range r.PhaseRoots {
		n := pass.Graph.Lookup(pr.Func)
		if n == nil {
			// Entry point absent from the loaded set: a sub-pattern lint.
			// Check what is loaded, but stand down waiver-rot enforcement.
			pass.Disable()
			continue
		}
		roots = append(roots, n)
		if v := paramByName(n, pr.ShardParam); v != nil {
			cx.derivedParam[v] = true
		}
	}
	if len(roots) == 0 {
		return
	}
	cx.reach = pass.Graph.Reachable(roots)

	cx.propagate()

	for _, n := range pass.Graph.Nodes { // deterministic order
		if cx.reach[n] {
			cx.check(n)
		}
	}
}

// propagate runs the interprocedural fixpoint: a callee parameter becomes
// derived once every reachable call site passes it a derived argument.
// Monotone — derivedness only grows — so the loop terminates.
func (cx *shardCtx) propagate() {
	for {
		changed := false
		good := make(map[*types.Var]bool)
		bad := make(map[*types.Var]bool)
		for _, n := range cx.graph.Nodes {
			if !cx.reach[n] {
				continue
			}
			d := cx.analyze(n)
			for _, e := range n.Out {
				if e.Call == nil {
					continue
				}
				params := paramVars(e.Callee)
				for i, arg := range e.Call.Args {
					if i >= len(params) || params[i] == nil {
						break
					}
					if d.expr(arg) {
						good[params[i]] = true
					} else {
						bad[params[i]] = true
					}
				}
			}
		}
		for v := range good {
			if !bad[v] && !cx.derivedParam[v] {
				cx.derivedParam[v] = true
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// paramVars returns a node's parameter objects; the variadic tail is nil so
// its positions never receive taint.
func paramVars(n *CGNode) []*types.Var {
	sig := n.Sig()
	if sig == nil {
		return nil
	}
	out := make([]*types.Var, sig.Params().Len())
	for i := range out {
		out[i] = sig.Params().At(i)
	}
	if sig.Variadic() && len(out) > 0 {
		out[len(out)-1] = nil
	}
	return out
}

// paramByName finds a node's parameter by declared name.
func paramByName(n *CGNode, name string) *types.Var {
	sig := n.Sig()
	if sig == nil {
		return nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if v := sig.Params().At(i); v.Name() == name {
			return v
		}
	}
	return nil
}

// derivation is the per-function taint state: the set of local objects
// proven shard-derived, plus the oracles needed to judge expressions.
type derivation struct {
	cx      *shardCtx
	node    *CGNode
	info    *types.Info
	derived map[types.Object]bool
}

// analyze computes n's local derivation under the current derivedParam state.
func (cx *shardCtx) analyze(n *CGNode) *derivation {
	d := &derivation{cx: cx, node: n, info: n.Pkg.Info, derived: make(map[types.Object]bool)}

	sig := n.Sig()
	own := make(map[types.Object]bool)
	if sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			v := sig.Params().At(i)
			own[v] = true
			if cx.derivedParam[v] {
				d.derived[v] = true
			}
		}
		if r := sig.Recv(); r != nil {
			own[r] = true
		}
		for i := 0; i < sig.Results().Len(); i++ {
			own[sig.Results().At(i)] = true
		}
	}

	// Captured variables: declared outside the body, not package-level, not
	// this function's own parameters. Closures in this codebase are created
	// per shard member and capture that member's indices, so captures are
	// derived by construction.
	bodyInspect(n.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := d.info.Uses[id].(*types.Var)
		if !ok || v.IsField() || own[v] {
			return true
		}
		if v.Parent() == n.Pkg.Types.Scope() || v.Parent() == types.Universe {
			return true
		}
		if v.Pos() < n.Body.Pos() || v.Pos() > n.Body.End() {
			d.derived[v] = true
		}
		return true
	})

	// Local propagation to a fixpoint: assignments and ranges move taint.
	type flow struct {
		targets []types.Object
		src     ast.Expr
	}
	var flows []flow
	objOf := func(e ast.Expr) types.Object {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if o := d.info.Defs[id]; o != nil {
				return o
			}
			return d.info.Uses[id]
		}
		return nil
	}
	bodyInspect(n.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					if o := objOf(s.Lhs[i]); o != nil {
						flows = append(flows, flow{[]types.Object{o}, s.Rhs[i]})
					}
				}
			} else if len(s.Rhs) == 1 {
				var ts []types.Object
				for _, l := range s.Lhs {
					if o := objOf(l); o != nil {
						ts = append(ts, o)
					}
				}
				flows = append(flows, flow{ts, s.Rhs[0]})
			}
		case *ast.RangeStmt:
			var ts []types.Object
			if s.Key != nil {
				if o := objOf(s.Key); o != nil {
					ts = append(ts, o)
				}
			}
			if s.Value != nil {
				if o := objOf(s.Value); o != nil {
					ts = append(ts, o)
				}
			}
			if len(ts) > 0 {
				flows = append(flows, flow{ts, s.X})
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if i < len(s.Values) {
					if o := d.info.Defs[name]; o != nil {
						flows = append(flows, flow{[]types.Object{o}, s.Values[i]})
					}
				}
			}
		}
		return true
	})
	for {
		changed := false
		for _, f := range flows {
			if !d.expr(f.src) {
				continue
			}
			for _, t := range f.targets {
				if !d.derived[t] {
					d.derived[t] = true
					changed = true
				}
			}
		}
		if !changed {
			return d
		}
	}
}

// expr reports whether e is shard-derived.
func (d *derivation) expr(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if d.packetTyped(e) {
		return true
	}
	switch x := e.(type) {
	case *ast.Ident:
		if o := d.info.Uses[x]; o != nil && d.derived[o] {
			return true
		}
		if o := d.info.Defs[x]; o != nil && d.derived[o] {
			return true
		}
	case *ast.SelectorExpr:
		if d.cx.sanct[d.node] && d.handoffSel(x) {
			return true // the box belongs to this shard pair by contract
		}
		return d.expr(x.X)
	case *ast.IndexExpr:
		return d.expr(x.X) || d.expr(x.Index)
	case *ast.SliceExpr:
		return d.expr(x.X)
	case *ast.CallExpr:
		for _, a := range x.Args {
			if d.expr(a) {
				return true
			}
		}
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			return d.expr(sel.X)
		}
	case *ast.BinaryExpr:
		return d.expr(x.X) || d.expr(x.Y)
	case *ast.ParenExpr:
		return d.expr(x.X)
	case *ast.StarExpr:
		return d.expr(x.X)
	case *ast.UnaryExpr:
		return d.expr(x.X)
	}
	return false
}

// packetTyped reports whether e's static type is (a pointer to) one of the
// declared packet types.
func (d *derivation) packetTyped(e ast.Expr) bool {
	tv, ok := d.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && d.cx.packet[named]
}

// handoffSel reports whether sel selects one of the hand-off fields.
func (d *derivation) handoffSel(sel *ast.SelectorExpr) bool {
	s, ok := d.info.Selections[sel]
	if !ok {
		return false
	}
	v, ok := s.Obj().(*types.Var)
	return ok && d.cx.handoff[v]
}

// check applies the four shard-safety checks to one reachable function.
func (cx *shardCtx) check(n *CGNode) {
	d := cx.analyze(n)
	info := n.Pkg.Info
	where := n.String()

	fieldVar := func(e ast.Expr) *types.Var {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		if s, ok := info.Selections[sel]; ok {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
		}
		return nil
	}
	checkWrite := func(lhs ast.Expr) {
		lhs = ast.Unparen(lhs)
		// Escape to package scope.
		if id, ok := rootIdent(lhs); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() &&
				v.Parent() == n.Pkg.Types.Scope() {
				cx.pass.Report(lhs.Pos(),
					"%s writes package-level %s — shard tasks must not escape state to package scope", where, v.Name())
			}
		}
		// Direct field write on a coordinator-owned struct.
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			return
		}
		tv, ok := info.Types[sel.X]
		if !ok || tv.Type == nil {
			return
		}
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || !cx.coord[named] {
			return
		}
		if v := fieldVar(sel); v != nil && cx.handoff[v] && cx.sanct[n] {
			return
		}
		cx.pass.Report(lhs.Pos(),
			"%s writes field %s of coordinator-owned %s from a phase task", where, sel.Sel.Name, named.Obj().Name())
	}

	bodyInspect(n.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(s.X)
		case *ast.SelectorExpr:
			if v := fieldVar(s); v != nil && cx.handoff[v] && !cx.sanct[n] {
				cx.pass.Report(s.Pos(),
					"%s touches hand-off field %s outside the sanctioned producer/drain set", where, s.Sel.Name)
			}
		case *ast.IndexExpr:
			v := fieldVar(s.X)
			if v == nil || !cx.owned[v] {
				return true
			}
			if cx.handoff[v] {
				return true // containment is the hand-off check's job
			}
			if !d.expr(s.Index) {
				cx.pass.Report(s.Pos(),
					"%s indexes %s with a value not derived from the shard id", where, v.Name())
			}
		}
		return true
	})
}

// rootIdent unwraps selectors, indexes, derefs, and parens to the leftmost
// identifier of an lvalue chain.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// resolveFields maps FieldRefs to the struct field objects they name.
// Unresolvable entries are skipped: fixture trees declare only the slices of
// the real types they exercise, and the real tree pins full resolution with
// a dedicated test.
func resolveFields(pkgs []*Package, refs []FieldRef) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, ref := range refs {
		st := lookupStruct(pkgs, ref.Package, ref.Type)
		if st == nil {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Name() == ref.Field {
				out[f] = true
			}
		}
	}
	return out
}

// resolveTypes maps TypeRefs to named types.
func resolveTypes(pkgs []*Package, refs []TypeRef) map[*types.Named]bool {
	out := make(map[*types.Named]bool)
	for _, ref := range refs {
		for _, pkg := range pkgs {
			if pkg.Rel != ref.Package || pkg.Types == nil {
				continue
			}
			if tn, ok := pkg.Types.Scope().Lookup(ref.Type).(*types.TypeName); ok {
				if named, ok := tn.Type().(*types.Named); ok {
					out[named] = true
				}
			}
		}
	}
	return out
}

// lookupStruct finds the struct type declared as rel.typeName.
func lookupStruct(pkgs []*Package, rel, typeName string) *types.Struct {
	for _, pkg := range pkgs {
		if pkg.Rel != rel || pkg.Types == nil {
			continue
		}
		tn, ok := pkg.Types.Scope().Lookup(typeName).(*types.TypeName)
		if !ok {
			continue
		}
		if st, ok := tn.Type().Underlying().(*types.Struct); ok {
			return st
		}
	}
	return nil
}
