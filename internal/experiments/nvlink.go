package experiments

// Cross-GPU artifacts: the NVLink latency gap and the cross-GPU covert
// channel over an internal/mesh multi-GPU system (NVBleed / "Beyond the
// Bridge", PAPERS.md), run with this repo's Algorithm 2 protocol.

import (
	"fmt"

	"gpunoc/internal/config"
	"gpunoc/internal/core"
	"gpunoc/internal/device"
	"gpunoc/internal/mesh"
)

func init() {
	MustRegister(Experiment{
		ID: "nvlink-remote-vs-local", Order: 162,
		Title:   "Remote (cross-GPU) vs local memory latency over NVLink",
		Section: "beyond the paper (NVLink mesh)",
		Run:     NVLinkRemoteVsLocal,
		Check: func(cfg *config.Config, f *Figure) error {
			return CheckNVLinkRemoteVsLocal(cfg, f)
		},
		Metrics: func(f *Figure) map[string]float64 {
			m := map[string]float64{}
			if s, ok := f.seriesByName("mean latency (cycles)"); ok && len(s.Y) == 2 {
				m["local-cycles"] = s.Y[0]
				m["remote-cycles"] = s.Y[1]
			}
			return m
		},
	})
	MustRegister(Experiment{
		ID: "nvlink-channel", Order: 164,
		Title:   "Cross-GPU covert channel over a contended NVLink link",
		Section: "beyond the paper (NVLink mesh)",
		Run:     NVLinkChannelXfer,
		Check: func(_ *config.Config, f *Figure) error {
			return CheckNVLinkChannel(f)
		},
		Metrics: func(f *Figure) map[string]float64 {
			m := map[string]float64{}
			if s, ok := f.seriesByName("error rate"); ok && len(s.Y) > 0 {
				m["error-rate"] = s.Y[0]
			}
			if s, ok := f.seriesByName("bitrate (kbps)"); ok && len(s.Y) > 0 {
				m["kbps"] = s.Y[0]
			}
			return m
		},
	})
}

// meshGPUs resolves the configured mesh size: Config.MeshGPUs, defaulting to
// the smallest mesh with a remote link.
func meshGPUs(cfg *config.Config) int {
	if cfg.MeshGPUs > 1 {
		return cfg.MeshGPUs
	}
	return 2
}

// streamLatency runs a one-warp uncoalesced read streamer on device 0 of a
// fresh mesh against a window owned by device target, and returns the mean
// per-op latency plus the total flits the NVLink fabric carried.
func streamLatency(cfg *config.Config, n, target, count int) (float64, uint64, error) {
	m, err := mesh.New(*cfg, n)
	if err != nil {
		return 0, 0, err
	}
	defer m.Close()
	const window = 8192
	base := mesh.DevBase(target) + 0x200000
	m.Preload(target, base, window)
	var progs []*device.Streamer
	spec := device.KernelSpec{
		Name:          fmt.Sprintf("nvlink-stream-d%d", target),
		Blocks:        1,
		WarpsPerBlock: 1,
		New: func(b, w int) device.Program {
			s := &device.Streamer{
				Base:        base,
				LineBytes:   cfg.L2LineBytes,
				Count:       count,
				Uncoalesced: true,
				WrapBytes:   window,
			}
			progs = append(progs, s)
			return s
		},
	}
	if _, err := m.Launch(0, spec); err != nil {
		return 0, 0, err
	}
	if err := m.RunKernels(100_000_000); err != nil {
		return 0, 0, err
	}
	var sum float64
	var ops int
	for _, s := range progs {
		for _, l := range s.Latencies {
			sum += float64(l)
			ops++
		}
	}
	if ops == 0 {
		return 0, 0, fmt.Errorf("experiments: streamer recorded no latencies")
	}
	var flits uint64
	for _, l := range m.Links() {
		flits += l.Stats().Flits
	}
	return sum / float64(ops), flits, nil
}

// NVLinkRemoteVsLocal measures the same read stream against device 0's own
// memory and against device 1's memory across the NVLink fabric — the
// remote-access latency gap every NVLink covert channel builds on.
func NVLinkRemoteVsLocal(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "nvlink-remote-vs-local",
		Title:  "Local vs remote (cross-GPU) read latency",
		Header: []string{"window", "mean latency (cycles)", "fabric flits"},
	}
	n := meshGPUs(cfg)
	count := opt.pick(64, 256)
	local, localFlits, err := streamLatency(cfg, n, 0, count)
	if err != nil {
		return nil, err
	}
	remote, remoteFlits, err := streamLatency(cfg, n, 1, count)
	if err != nil {
		return nil, err
	}
	f.Rows = append(f.Rows,
		[]string{"local (device 0)", fmt.Sprintf("%.1f", local), fmt.Sprintf("%d", localFlits)},
		[]string{"remote (device 1)", fmt.Sprintf("%.1f", remote), fmt.Sprintf("%d", remoteFlits)},
	)
	f.addSeries("mean latency (cycles)", []float64{0, 1}, []float64{local, remote})
	f.addSeries("fabric flits (local, remote)", []float64{0, 1},
		[]float64{float64(localFlits), float64(remoteFlits)})
	nv := cfg.NVLink.WithDefaults()
	f.note("remote - local gap: %.1f cycles (one-way hop latency %d)", remote-local, nv.HopLatency)
	return f, nil
}

// CheckNVLinkRemoteVsLocal asserts the gap: a remote access pays at least
// two NVLink hop traversals over a local one, local traffic never touches
// the fabric, and remote traffic does.
func CheckNVLinkRemoteVsLocal(cfg *config.Config, f *Figure) error {
	lat, ok := f.seriesByName("mean latency (cycles)")
	if !ok || len(lat.Y) != 2 {
		return fmt.Errorf("nvlink-remote-vs-local: missing latency series")
	}
	flits, ok := f.seriesByName("fabric flits (local, remote)")
	if !ok || len(flits.Y) != 2 {
		return fmt.Errorf("nvlink-remote-vs-local: missing flits series")
	}
	local, remote := lat.Y[0], lat.Y[1]
	nv := cfg.NVLink.WithDefaults()
	if gap := remote - local; gap < float64(2*nv.HopLatency) {
		return fmt.Errorf("nvlink-remote-vs-local: gap %.1f below the two-hop floor %d", gap, 2*nv.HopLatency)
	}
	if flits.Y[0] != 0 {
		return fmt.Errorf("nvlink-remote-vs-local: local run moved %.0f flits over the fabric", flits.Y[0])
	}
	if flits.Y[1] == 0 {
		return fmt.Errorf("nvlink-remote-vs-local: remote run moved no fabric flits")
	}
	return nil
}

// NVLinkChannelXfer calibrates the cross-GPU channel on a fresh mesh and
// transmits an alternating payload from device 0 to device 1, reporting the
// receiver's latency trace, the error rate, and the achieved bitrate.
func NVLinkChannelXfer(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "nvlink-channel",
		Title:  "Cross-GPU covert channel over NVLink",
		XLabel: "bit sequence index",
		YLabel: "mean slot latency (cycles)",
	}
	n := meshGPUs(cfg)
	p := core.Params{
		Kind:       core.NVLinkChannel,
		Iterations: 4,
		SyncPeriod: 16,
		Seed:       opt.seed(),
	}
	p, err := core.CalibrateRemote(*cfg, n, 0, 1, p, 32)
	if err != nil {
		return nil, err
	}
	payload := core.AlternatingPayload(opt.pick(48, 160), 2)
	m, err := mesh.New(*cfg, n)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	tr, err := core.NewNVLinkTransmission(m, 0, 1, payload, p)
	if err != nil {
		return nil, err
	}
	res, err := tr.Run(0)
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for i, st := range res.Pairs[0].Trace {
		xs = append(xs, float64(i+1))
		ys = append(ys, st.MeanLatency)
	}
	f.addSeries("receiver latency trace", xs, ys)
	f.addSeries("error rate", []float64{0}, []float64{res.ErrorRate})
	f.addSeries("bitrate (kbps)", []float64{0}, []float64{res.BitsPerSecond / 1e3})
	f.note("cross-GPU channel: %.2f kbps at %.3f error over %d symbols (threshold %.1f)",
		res.BitsPerSecond/1e3, res.ErrorRate, res.SymbolsSent, p.Threshold)
	return f, nil
}

// CheckNVLinkChannel asserts the channel carries data: nonzero capacity (a
// positive bitrate at an error rate far from coin-flipping) and a clean
// decode of the alternating payload.
func CheckNVLinkChannel(f *Figure) error {
	rate, ok := f.seriesByName("bitrate (kbps)")
	if !ok || len(rate.Y) == 0 || rate.Y[0] <= 0 {
		return fmt.Errorf("nvlink-channel: no positive bitrate")
	}
	errs, ok := f.seriesByName("error rate")
	if !ok || len(errs.Y) == 0 {
		return fmt.Errorf("nvlink-channel: missing error series")
	}
	if errs.Y[0] > 0.05 {
		return fmt.Errorf("nvlink-channel: error rate %.3f, want near zero", errs.Y[0])
	}
	trace, ok := f.seriesByName("receiver latency trace")
	if !ok || len(trace.Y) < 2 {
		return fmt.Errorf("nvlink-channel: missing latency trace")
	}
	return nil
}
