// Package packet is the shardsafety fixture's packet type: values of this
// type make derived routing indices.
package packet

// Packet is one message; its routing fields are shard-derived by contract.
type Packet struct {
	Slice int
	Tag   Tag
}

// Tag routes replies back to the issuing SM.
type Tag struct{ SM int }
