// Package sm models a streaming multiprocessor: resident warps stepped by a
// round-robin warp scheduler, a load/store unit that coalesces warp memory
// operations into NoC packets and injects them at the SM's port rate, and
// the per-SM clock register used for covert-channel synchronization. The SM
// measures the latency of each warp memory operation (first issue to last
// reply), which is the receiver's contention signal (Fig 7).
package sm

import (
	"fmt"
	"math/rand"

	"gpunoc/internal/cache"
	"gpunoc/internal/clockreg"
	"gpunoc/internal/config"
	"gpunoc/internal/device"
	"gpunoc/internal/packet"
	"gpunoc/internal/probe"
	"gpunoc/internal/ring"
	"gpunoc/internal/snap"
	"gpunoc/internal/warp"
)

// Inject delivers a request packet into the SM's NoC ingress (its input of
// the TPC mux).
type Inject func(now uint64, p *packet.Packet)

type resident struct {
	w       warp.Warp
	prog    device.Program
	kernel  int
	block   int
	warpID  int
	started bool
}

// SM is one streaming multiprocessor.
type SM struct {
	id     int
	cfg    *config.Config
	clocks *clockreg.Bank
	inject Inject

	warps        []*resident
	pending      ring.Buffer[*packet.Packet]
	outstanding  int
	nextPktID    uint64
	rrNext       int
	nextInjectAt uint64
	rng          *rand.Rand
	src          *snap.CountingSource // rng's source; snapshots as a draw count
	wake         func()               // activity wake edge (see SetWaker); nil outside a scheduler

	// l1 is the per-SM unified L1; loads not compiled with the -dlcm=cg
	// analogue are serviced here first. Writes are write-through and
	// no-allocate, so only loads populate it. All kernels resident on the
	// SM share it — the surface the L1 prime+probe baseline channel uses.
	l1       *cache.Cache
	l1Hits   ring.Buffer[l1Hit] // locally-completing load hits (FIFO: fixed latency)
	l1HitLat uint64

	// Counters.
	injected, replies, opsCompleted uint64

	pr *smProbes // nil when uninstrumented (the fast path)
}

// smProbes holds the SM's LSU and memory-operation instruments. lsuStalls
// counts cycles a coalesced packet was ready but could not inject (budget
// exhausted or inter-injection gap) — the sender-side back-pressure the
// covert channel modulates. opLat is the warp memory-op latency (first issue
// to last reply), the receiver's contention signal (Fig 7).
type smProbes struct {
	lsuStalls *probe.Counter
	opLat     *probe.Hist
	pendDepth *probe.Gauge
}

// New builds an SM. inject must not be nil.
func New(id int, cfg *config.Config, clocks *clockreg.Bank, inject Inject) (*SM, error) {
	if inject == nil {
		return nil, fmt.Errorf("sm %d: nil inject", id)
	}
	if clocks == nil {
		return nil, fmt.Errorf("sm %d: nil clock bank", id)
	}
	if id < 0 || id >= cfg.NumSMs() {
		return nil, fmt.Errorf("sm: id %d out of range [0,%d)", id, cfg.NumSMs())
	}
	l1, err := cache.New(cfg.L1SizeBytes, cfg.L1LineBytes, cfg.L1Ways, 16)
	if err != nil {
		return nil, err
	}
	src := snap.NewCountingSource(cfg.Seed ^ (int64(id)+1)*104729)
	s := &SM{
		id:       id,
		cfg:      cfg,
		clocks:   clocks,
		inject:   inject,
		l1:       l1,
		l1HitLat: 28,
		rng:      rand.New(src),
		src:      src,
	}
	if r := cfg.Probes; r != nil {
		prefix := fmt.Sprintf("sm%d", id)
		s.pr = &smProbes{
			lsuStalls: r.Counter(prefix + "/lsu_stalls"),
			opLat:     r.Hist(prefix + "/op_latency"),
			pendDepth: r.Gauge(prefix + "/lsu_pending"),
		}
		l1.Instrument(r, prefix+"/l1")
	}
	return s, nil
}

// l1Hit is a load that hit in L1 and completes locally.
type l1Hit struct {
	at   uint64
	warp int
	op   uint64
}

// L1 exposes the SM's L1 cache (tests and the prime+probe baseline inspect
// its state).
func (s *SM) L1() *cache.Cache { return s.l1 }

// SetWaker registers the activity wake edge: w is invoked whenever external
// input can make a quiescent SM do work again — a warp becoming resident
// (AddWarp) or a reply arriving from the NoC (OnReply). A nil waker (the
// default) is correct when the SM is ticked exhaustively.
func (s *SM) SetWaker(w func()) { s.wake = w }

// ID returns the SM id (the %smid register).
func (s *SM) ID() int { return s.id }

// Clock returns the SM's 32-bit clock register at cycle now.
func (s *SM) Clock(now uint64) uint32 { return s.clocks.Read(s.id, now) }

// AddWarp makes a warp resident, to start after the configured scheduling
// jitter (modeling thread-block dispatch and warp-scheduler uncertainty).
// kernel tags the launch for completion tracking.
func (s *SM) AddWarp(now uint64, kernel, block, warpID int, prog device.Program) error {
	if prog == nil {
		return fmt.Errorf("sm %d: nil program for block %d warp %d", s.id, block, warpID)
	}
	slot := -1
	for i, existing := range s.warps {
		if existing == nil {
			slot = i
			break
		}
	}
	if slot == -1 {
		if len(s.warps) >= s.cfg.MaxWarpsPerSM {
			return fmt.Errorf("sm %d: warp slots exhausted (%d)", s.id, s.cfg.MaxWarpsPerSM)
		}
		slot = len(s.warps)
		s.warps = append(s.warps, nil)
	}
	jitter := uint64(0)
	if s.cfg.WarpIssueJitter > 0 {
		jitter = uint64(s.rng.Intn(s.cfg.WarpIssueJitter + 1))
	}
	r := &resident{
		prog:   prog,
		kernel: kernel,
		block:  block,
		warpID: warpID,
	}
	r.w.ID = slot
	r.w.State = warp.WaitingCycle
	r.w.WakeAt = now + 1 + jitter
	s.warps[slot] = r
	if s.wake != nil {
		s.wake()
	}
	return nil
}

// RunningWarps reports the number of unfinished warps belonging to kernel
// (pass -1 for all kernels).
func (s *SM) RunningWarps(kernel int) int {
	n := 0
	for _, r := range s.warps {
		if r != nil && r.w.State != warp.Finished && (kernel < 0 || r.kernel == kernel) {
			n++
		}
	}
	return n
}

// ReclaimFinished frees the slots of finished warps so a later kernel launch
// can reuse them. Slots become nil holes rather than being compacted:
// surviving warps may still have requests in flight whose reply tags carry
// their slot index, so live warps must never be renumbered.
func (s *SM) ReclaimFinished() {
	for i, r := range s.warps {
		if r != nil && r.w.State == warp.Finished {
			s.warps[i] = nil
		}
	}
	// Trim trailing holes to keep the scan short.
	for len(s.warps) > 0 && s.warps[len(s.warps)-1] == nil {
		s.warps = s.warps[:len(s.warps)-1]
	}
	if s.rrNext >= len(s.warps) {
		s.rrNext = 0
	}
}

// Tick advances the SM one cycle: wake sleeping warps, inject one pending
// packet, then let one ready warp issue its next operation.
func (s *SM) Tick(now uint64) {
	for _, r := range s.warps {
		if r != nil && r.w.State == warp.WaitingCycle && r.w.WakeAt <= now {
			r.w.State = warp.Ready
		}
	}

	// Complete due L1 hits (FIFO: constant latency keeps them ordered).
	for s.l1Hits.Len() > 0 && s.l1Hits.Front().at <= now {
		h := s.l1Hits.Pop()
		s.completeRequest(now, h.warp, h.op)
	}

	// LSU: one packet per LSUInjectPeriod cycles into the TPC mux, bounded
	// by the outstanding-request budget (the MSHR/LSU queue analogue).
	if s.pending.Len() > 0 {
		if s.outstanding < s.cfg.LSUQueueDepth && now >= s.nextInjectAt {
			p := s.pending.Pop()
			p.IssueCycle = now
			s.outstanding++
			s.injected++
			s.nextInjectAt = now + uint64(s.cfg.NoC.LSUInjectPeriod)
			s.inject(now, p)
			if s.pr != nil {
				s.pr.pendDepth.Add(-1)
			}
		} else if s.pr != nil {
			s.pr.lsuStalls.Inc()
		}
	}

	// Warp scheduler: issue width 1, round-robin over ready warps.
	n := len(s.warps)
	for i := 0; i < n; i++ {
		idx := (s.rrNext + i) % n
		r := s.warps[idx]
		if r == nil || r.w.State != warp.Ready {
			continue
		}
		s.rrNext = (idx + 1) % n
		s.step(now, r)
		break
	}
}

func (s *SM) step(now uint64, r *resident) {
	ctx := device.Ctx{
		SMID:        s.id,
		Block:       r.block,
		Warp:        r.warpID,
		Clock:       s.clocks.Read(s.id, now),
		Clock64:     s.clocks.Read64(s.id, now),
		LastLatency: r.w.LastLatency,
	}
	op := r.prog.Step(&ctx)
	switch op.Kind {
	case device.OpMem:
		lines, err := warp.Coalesce(op.Mem, s.cfg.SIMTWidth, s.cfg.L2LineBytes)
		if err != nil {
			panic(fmt.Sprintf("sm %d: bad mem op: %v", s.id, err))
		}
		if len(lines) == 0 {
			// No active lanes: a one-cycle no-op.
			r.w.State = warp.WaitingCycle
			r.w.WakeAt = now + 1
			return
		}
		r.w.OpSeq++
		r.w.OpStart = now
		r.w.Outstanding = len(lines)
		r.w.State = warp.WaitingMem
		kind := packet.ReadReq
		switch {
		case op.Mem.Atomic:
			kind = packet.AtomicReq
		case op.Mem.Write:
			kind = packet.WriteReq
		}
		useL1 := kind == packet.ReadReq && !op.Mem.BypassL1
		for _, la := range lines {
			if useL1 && s.l1.Probe(la) {
				// L1 load hit: completes locally without NoC traffic.
				s.l1.Access(la, false) // refresh recency
				s.l1Hits.Push(l1Hit{at: now + s.l1HitLat, warp: r.w.ID, op: r.w.OpSeq})
				continue
			}
			s.nextPktID++
			//lint:allow hotalloc one request packet per memory instruction; packet pooling is future work
			s.pending.Push(&packet.Packet{
				ID:       s.nextPktID,
				Kind:     kind,
				Tag:      packet.WarpTag{SM: s.id, Warp: r.w.ID, Op: r.w.OpSeq},
				Addr:     la,
				SrcSM:    s.id,
				BypassL1: op.Mem.BypassL1,
			})
			if s.pr != nil {
				s.pr.pendDepth.Add(1)
			}
		}
	case device.OpWait:
		d := op.Cycles
		if d == 0 {
			d = 1
		}
		r.w.State = warp.WaitingCycle
		r.w.WakeAt = now + d
	case device.OpSyncClock:
		if op.Modulus == 0 {
			panic(fmt.Sprintf("sm %d: sync with zero modulus", s.id))
		}
		c := s.clocks.Read64(s.id, now)
		delta := (op.Phase + op.Modulus - c%op.Modulus) % op.Modulus
		r.w.State = warp.WaitingCycle
		r.w.WakeAt = now + delta
		if delta == 0 {
			r.w.WakeAt = now // already aligned; ready again next tick
		}
	case device.OpDone:
		r.w.State = warp.Finished
	default:
		panic(fmt.Sprintf("sm %d: unknown op kind %d", s.id, op.Kind))
	}
}

// OnReply receives a reply packet from the NoC.
func (s *SM) OnReply(now uint64, p *packet.Packet) {
	if p.Tag.SM != s.id {
		panic(fmt.Sprintf("sm %d: reply for SM %d", s.id, p.Tag.SM))
	}
	s.outstanding--
	s.replies++
	if s.wake != nil {
		s.wake()
	}
	if p.Kind == packet.ReadReply && !p.BypassL1 {
		// Allocate the returning line in L1 for future local hits.
		s.l1.Fill(p.Addr, false)
	}
	s.completeRequest(now, p.Tag.Warp, p.Tag.Op)
}

// completeRequest retires one request (L1 hit or NoC reply) of a warp's
// memory operation.
func (s *SM) completeRequest(now uint64, warpSlot int, opSeq uint64) {
	if warpSlot < 0 || warpSlot >= len(s.warps) || s.warps[warpSlot] == nil {
		panic(fmt.Sprintf("sm %d: completion for unknown warp %d", s.id, warpSlot))
	}
	r := s.warps[warpSlot]
	if r.w.State != warp.WaitingMem || opSeq != r.w.OpSeq {
		// Stale completion (the warp was re-slotted between kernels);
		// only possible if ReclaimFinished ran with traffic in flight,
		// which the engine prevents. Treat as fatal to catch miswiring.
		panic(fmt.Sprintf("sm %d: unexpected completion op %d for warp %d in state %v",
			s.id, opSeq, warpSlot, r.w.State))
	}
	r.w.Outstanding--
	if r.w.Outstanding == 0 {
		r.w.LastLatency = now - r.w.OpStart
		r.w.State = warp.Ready
		s.opsCompleted++
		if s.pr != nil {
			s.pr.opLat.Observe(r.w.LastLatency)
		}
	}
}

// Idle reports whether the SM has no runnable work (all warps finished and
// no requests pending or outstanding).
func (s *SM) Idle() bool {
	if s.pending.Len() > 0 || s.outstanding > 0 || s.l1Hits.Len() > 0 {
		return false
	}
	for _, r := range s.warps {
		if r != nil && r.w.State != warp.Finished {
			return false
		}
	}
	return true
}

// Quiescent reports whether ticking the SM is a no-op until its next wake
// edge (AddWarp or OnReply): nothing pending in the LSU, no local L1 hits in
// flight, and no warp that could be woken or issued — every live warp is
// stalled on memory replies that arrive via OnReply. The scheduler parks a
// quiescent SM; unlike Idle, this also covers an SM whose warps are all
// waiting on the NoC, which is most of a memory-bound SM's lifetime.
func (s *SM) Quiescent() bool {
	if s.pending.Len() > 0 || s.l1Hits.Len() > 0 {
		return false
	}
	for _, r := range s.warps {
		if r == nil {
			continue
		}
		if st := r.w.State; st == warp.Ready || st == warp.WaitingCycle {
			return false
		}
	}
	return true
}

// Stats is a snapshot of SM counters.
type Stats struct {
	Injected, Replies, OpsCompleted uint64
}

// Stats returns the counters.
func (s *SM) Stats() Stats { return Stats{s.injected, s.replies, s.opsCompleted} }
