// Checkpoint support for the memory partition. A slice serializes its
// ingress queue, scheduled replies and fills (the heap arrays verbatim, so
// a re-snapshot of restored state is byte-identical), MSHR waiter lists,
// retry queue, atomic serialization horizon, jitter RNG position, and
// counters. The partition serializes its controllers (whose queued requests
// carry their origin slice, letting restore rebuild the completion
// closures) and the activity bits of every tier in a layout-independent
// form: bits are read from whichever active-set layout the source engine
// ran (global, sharded, or exhaustively derived from Idle) and routed into
// whichever layout the restoring engine runs — sound because the sharded
// engine is state-identical to the sequential one.
package mem

import (
	"sort"

	"gpunoc/internal/packet"
	"gpunoc/internal/snap"
)

// Snapshot appends the slice's mutable state to the encoder.
func (s *Slice) Snapshot(e *snap.Encoder) {
	e.Int(s.inq.Len())
	for i := 0; i < s.inq.Len(); i++ {
		packet.Encode(e, *s.inq.At(i))
	}
	e.Int(len(s.replies))
	for i := range s.replies {
		e.U64(s.replies[i].at)
		packet.Encode(e, s.replies[i].p)
		e.U64(s.replies[i].seq)
	}
	e.Int(len(s.fills))
	for i := range s.fills {
		e.U64(s.fills[i].at)
		e.U64(s.fills[i].la)
		e.U64(s.fills[i].seq)
	}
	e.U64(s.seq)
	las := make([]uint64, 0, len(s.waiting))
	for la := range s.waiting {
		las = append(las, la)
	}
	sort.Slice(las, func(i, j int) bool { return las[i] < las[j] })
	e.Int(len(las))
	for _, la := range las {
		e.U64(la)
		e.Int(len(s.waiting[la]))
		for _, w := range s.waiting[la] {
			packet.Encode(e, w)
		}
	}
	e.Int(s.retries.Len())
	for i := 0; i < s.retries.Len(); i++ {
		e.U64(*s.retries.At(i))
	}
	las = las[:0]
	for la := range s.atomicFree {
		las = append(las, la)
	}
	sort.Slice(las, func(i, j int) bool { return las[i] < las[j] })
	e.Int(len(las))
	for _, la := range las {
		e.U64(la)
		e.U64(s.atomicFree[la])
	}
	e.U64(s.served)
	e.U64(s.hits)
	e.U64(s.misses)
	e.U64(s.src.Draws())
	e.Bool(s.pr != nil)
	if s.pr != nil {
		las = las[:0]
		for la := range s.pr.missStart {
			las = append(las, la)
		}
		sort.Slice(las, func(i, j int) bool { return las[i] < las[j] })
		e.Int(len(las))
		for _, la := range las {
			e.U64(la)
			e.U64(s.pr.missStart[la])
		}
	}
	s.cache.Snapshot(e)
}

// Restore reads state written by Snapshot into a slice built from the same
// configuration.
func (s *Slice) Restore(d *snap.Decoder) error {
	for s.inq.Len() > 0 {
		s.inq.Pop()
	}
	n := d.Len()
	for i := 0; i < n; i++ {
		s.inq.Push(packet.Decode(d))
	}
	n = d.Len()
	s.replies = make(replyHeap, 0, n)
	for i := 0; i < n; i++ {
		var r scheduledReply
		r.at = d.U64()
		r.p = packet.Decode(d)
		r.seq = d.U64()
		s.replies = append(s.replies, r)
	}
	n = d.Len()
	s.fills = make(fillHeap, 0, n)
	for i := 0; i < n; i++ {
		var f scheduledFill
		f.at = d.U64()
		f.la = d.U64()
		f.seq = d.U64()
		s.fills = append(s.fills, f)
	}
	s.seq = d.U64()
	s.waiting = make(map[uint64][]*packet.Packet)
	n = d.Len()
	for i := 0; i < n; i++ {
		la := d.U64()
		m := d.Len()
		ws := make([]*packet.Packet, 0, m)
		for j := 0; j < m; j++ {
			ws = append(ws, packet.Decode(d))
		}
		s.waiting[la] = ws
	}
	for s.retries.Len() > 0 {
		s.retries.Pop()
	}
	n = d.Len()
	for i := 0; i < n; i++ {
		s.retries.Push(d.U64())
	}
	s.atomicFree = make(map[uint64]uint64)
	n = d.Len()
	for i := 0; i < n; i++ {
		la := d.U64()
		s.atomicFree[la] = d.U64()
	}
	s.served = d.U64()
	s.hits = d.U64()
	s.misses = d.U64()
	s.src.SeekTo(d.U64())
	if d.Bool() {
		n = d.Len()
		for i := 0; i < n; i++ {
			la := d.U64()
			at := d.U64()
			if s.pr != nil {
				s.pr.missStart[la] = at
			}
		}
	}
	return s.cache.Restore(d)
}

// Snapshot appends the partition's mutable state — every controller, every
// slice, and the canonical per-component activity bits — to the encoder.
func (p *Partition) Snapshot(e *snap.Encoder) {
	e.Mark("mem")
	e.Int(len(p.mcs))
	for _, mc := range p.mcs {
		mc.Snapshot(e)
	}
	e.Int(len(p.slices))
	for _, s := range p.slices {
		s.Snapshot(e)
	}
	for i, mc := range p.mcs {
		e.Bool(p.mcActive(i, mc.Idle()))
	}
	for i, s := range p.slices {
		e.Bool(p.sliceActive(i, s.Idle()))
	}
}

// mcActive reads controller i's activity bit from whichever layout is live.
func (p *Partition) mcActive(i int, idle bool) bool {
	switch {
	case p.shard != nil:
		return p.shard.actMCs[i].Active(i)
	case p.actMCs != nil:
		return p.actMCs.Active(i)
	default:
		// Exhaustive mode has no sets; derive conservatively from Idle.
		return !idle
	}
}

// sliceActive reads slice i's activity bit from whichever layout is live.
func (p *Partition) sliceActive(i int, idle bool) bool {
	switch {
	case p.shard != nil:
		return p.shard.actSlices[i/p.shard.slicesPerMC].Active(i)
	case p.actSlices != nil:
		return p.actSlices.Active(i)
	default:
		return !idle
	}
}

// Restore reads state written by Snapshot into a partition built from the
// same configuration, rebuilding the completion closure of every queued
// DRAM request from its recorded origin slice: pending line fetches
// reschedule their fill into the owning slice, writebacks complete
// silently (mirroring the closures built on the miss path).
func (p *Partition) Restore(d *snap.Decoder) error {
	d.Expect("mem")
	if n := d.Int(); d.Err() == nil && n != len(p.mcs) {
		return snap.Corruptf("snapshot holds %d memory controllers, partition has %d", n, len(p.mcs))
	}
	rebuild := func(origin int, addr uint64, write bool) func(now uint64) {
		if write || origin < 0 || origin >= len(p.slices) {
			return func(uint64) {}
		}
		sl := p.slices[origin]
		la := addr
		return func(at uint64) { sl.scheduleFill(at, la) }
	}
	for _, mc := range p.mcs {
		if err := mc.Restore(d, rebuild); err != nil {
			return err
		}
	}
	if n := d.Int(); d.Err() == nil && n != len(p.slices) {
		return snap.Corruptf("snapshot holds %d L2 slices, partition has %d", n, len(p.slices))
	}
	for _, s := range p.slices {
		if err := s.Restore(d); err != nil {
			return err
		}
	}
	for i := range p.mcs {
		if d.Bool() {
			p.wakeMC(i)
		}
	}
	for i := range p.slices {
		if d.Bool() {
			p.wakeSlice(i)
		}
	}
	return d.Err()
}

// wakeMC routes a restored activity bit into the live active-set layout.
func (p *Partition) wakeMC(i int) {
	switch {
	case p.shard != nil:
		p.shard.actMCs[i].Wake(i)
	case p.actMCs != nil:
		p.actMCs.Wake(i)
	}
}

// wakeSlice routes a restored activity bit into the live active-set layout.
func (p *Partition) wakeSlice(i int) {
	switch {
	case p.shard != nil:
		p.shard.actSlices[i/p.shard.slicesPerMC].Wake(i)
	case p.actSlices != nil:
		p.actSlices.Wake(i)
	}
}
