package experiments

import (
	"reflect"
	"testing"

	"gpunoc/internal/config"
	"gpunoc/internal/core"
	"gpunoc/internal/noise"
)

// The noise generators run inside the single-goroutine tick model, so a
// noisy experiment must be exactly as deterministic as a quiet one. These
// are the regression tests for that property.

// TestNoiseExperimentsDeterministicAcrossParallelism runs the two noisy
// registry experiments with 1 worker and with 8 and requires byte-identical
// reports: background traffic must not introduce any schedule-dependent
// state.
func TestNoiseExperimentsDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full noisy transmissions")
	}
	cfg := smallCfg()
	ids := []string{"noise-sweep", "coded-vs-uncoded"}
	opts := Options{Scale: Quick, Seed: 5}

	seq := Runner{Parallel: 1, Options: opts}
	r1, err := seq.Run(&cfg, ids)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range r1 {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Experiment.ID, res.Err)
		}
	}
	par := Runner{Parallel: 8, Options: opts}
	r8, err := par.Run(&cfg, ids)
	if err != nil {
		t.Fatal(err)
	}
	if rep1, rep8 := Report(r1), Report(r8); rep1 != rep8 {
		t.Fatalf("noisy reports differ between -parallel 1 and -parallel 8:\n%s",
			firstDiff(rep1, rep8))
	}
}

// TestNoiseSweepSameSeedRunsIdentical reruns the sweep with the same seed
// and requires identical figures, down to every error rate and bit rate.
func TestNoiseSweepSameSeedRunsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full noisy transmissions")
	}
	cfg := smallCfg()
	opt := Options{Scale: Quick, Seed: 11}
	f1, err := NoiseSweep(&cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NoiseSweep(&cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Fatalf("same-seed sweeps differ:\n%s\nvs\n%s", f1.Render(), f2.Render())
	}
}

// TestZeroIntensityNoiseIsBitIdenticalToNoNoise requires that a
// zero-intensity noise spec perturbs nothing at all: the transmission result
// — including every per-slot latency and clock value in the trace — must be
// bit-identical to a run with no noise kernels. This is why silent specs
// produce no kernel: even an immediately-exiting warp would consume an RNG
// draw and an issue slot and shift the whole schedule.
func TestZeroIntensityNoiseIsBitIdenticalToNoNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full transmissions")
	}
	cfg := config.Small()
	p, err := calibratedParams(&cfg, core.TPCChannel, 4, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	payload := core.AlternatingPayload(24, 2)
	quiet, err := noisySend(&cfg, payload, p)
	if err != nil {
		t.Fatal(err)
	}
	silent, err := noisySend(&cfg, payload, p, noise.Spec{
		Kind:           noise.Stream,
		SMs:            channelGPCSMs(&cfg),
		Intensity:      0,
		DurationCycles: 1 << 20,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(quiet, silent) {
		t.Fatalf("zero-intensity noise changed the transmission:\nquiet:  %+v\nsilent: %+v",
			quiet, silent)
	}
}
