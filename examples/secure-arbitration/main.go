// Demonstrate the §6 countermeasure: the covert channel that thrives under
// the baseline round-robin arbitration collapses under strict round-robin
// (temporal partitioning) — at a real cost to memory-bound workloads.
//
//	go run ./examples/secure-arbitration
package main

import (
	"fmt"
	"log"

	"gpunoc"
	"gpunoc/internal/experiments"
)

func main() {
	cfg := gpunoc.SmallConfig()
	payload, err := gpunoc.BytesToSymbols([]byte("secret"), 1)
	if err != nil {
		log.Fatal(err)
	}
	params, err := gpunoc.Calibrate(&cfg, gpunoc.ChannelParams{
		Kind: gpunoc.TPCChannel, Iterations: 4, SyncPeriod: 16, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, arb := range []gpunoc.ArbPolicy{gpunoc.ArbRR, gpunoc.ArbCRR, gpunoc.ArbSRR} {
		c := cfg
		c.NoC.Arbitration = arb
		tr, err := gpunoc.NewTPCTransmission(&c, payload, []int{0}, params)
		if err != nil {
			log.Fatal(err)
		}
		res, err := tr.Run()
		if err != nil {
			log.Fatal(err)
		}
		verdict := "channel OPEN"
		if res.ErrorRate > 0.3 {
			verdict = "channel CLOSED"
		}
		fmt.Printf("%-5s error=%5.1f%%  %.0f kbps  -> %s\n",
			arb, res.ErrorRate*100, res.BitsPerSecond/1e3, verdict)
	}

	fmt.Println("\nthe price of safety (solo-kernel slowdown under each policy):")
	f, err := experiments.SRRTradeoff(&cfg, experiments.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range f.Rows {
		fmt.Printf("  %-18s %-5s %8s cycles (%s)\n", row[0], row[1], row[2], row[3])
	}
}
