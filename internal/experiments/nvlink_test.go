package experiments

import (
	"testing"
)

// The NVLink experiments must run and pass their own -check shapes on the
// small model at quick scale (the CI smoke configuration).
func TestNVLinkExperimentsQuickSmall(t *testing.T) {
	cfg := smallCfg()
	for _, id := range []string{"nvlink-remote-vs-local", "nvlink-channel"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		f, err := e.Run(&cfg, Options{Scale: Quick})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := e.Check(&cfg, f); err != nil {
			t.Errorf("%s check: %v", id, err)
		}
	}
}

// MeshGPUs flows from the config into the experiment: a 3-GPU mesh still
// produces a working device-0 -> device-1 channel.
func TestNVLinkChannelHonorsMeshGPUs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-GPU transmission is slow")
	}
	cfg := smallCfg()
	cfg.MeshGPUs = 3
	e, _ := Lookup("nvlink-channel")
	f, err := e.Run(&cfg, Options{Scale: Quick})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := e.Check(&cfg, f); err != nil {
		t.Errorf("check: %v", err)
	}
}
