// The determinism analyzer. Simulator results must be a pure function of
// config.Config, so simulator packages may not read the wall clock or the
// environment, may not draw from the globally seeded math/rand source, and
// may not let map iteration order leak into anything returned or printed.
//
// The map-order check is a heuristic: a `range` over a map is flagged when
// its body feeds an order-sensitive sink (an append to a variable declared
// outside the loop, or a print/write call) and no sort call follows the loop
// inside the same function. Writes keyed into another map are order-free and
// are not flagged.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

func determinismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "ban wall-clock, environment, global-RNG, and map-order dependence in simulator packages",
		Run:  runDeterminism,
	}
}

// orderedSinkCalls are callee names that emit values in program order, so
// feeding them from a map range leaks iteration order.
var orderedSinkNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runDeterminism(pass *Pass) {
	if !pass.Rules.Determinism.Scope.Match(pass.Pkg.Rel) {
		return
	}
	banned := make(map[string]bool, len(pass.Rules.Determinism.BannedCalls))
	for _, b := range pass.Rules.Determinism.BannedCalls {
		banned[b] = true
	}
	globalRand := make(map[string]bool, len(pass.Rules.Determinism.GlobalRand))
	for _, g := range pass.Rules.Determinism.GlobalRand {
		globalRand[g] = true
	}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, ok := pass.Pkg.Qualifier(f, sel)
			if !ok {
				return true
			}
			if key := path + "." + sel.Sel.Name; banned[key] {
				pass.Report(sel.Pos(),
					"%s reads ambient state; simulator code must be a pure function of config.Config (move it off the result path or //lint:allow determinism <reason>)",
					key)
			}
			if (path == "math/rand" || path == "math/rand/v2") && globalRand[sel.Sel.Name] {
				pass.Report(sel.Pos(),
					"%s.%s draws from the globally seeded source; build a *rand.Rand from the config/experiment seed instead",
					path, sel.Sel.Name)
			}
			return true
		})

		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkMapRanges(pass, f, fd.Body)
			}
		}
	}
}

// checkMapRanges flags map ranges inside body whose own body feeds an
// ordered sink, unless a sort/slices call follows the loop within body.
func checkMapRanges(pass *Pass, f *ast.File, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !pass.isMapExpr(rng.X) {
			return true
		}
		sink := findOrderedSink(pass, rng)
		if sink == "" {
			return true
		}
		if sortFollows(pass, f, body, rng.End()) {
			return true
		}
		pass.Report(rng.For,
			"range over a map feeds %s; map iteration order is nondeterministic — sort before emitting (or //lint:allow determinism <reason>)",
			sink)
		return true
	})
}

// isMapExpr reports whether e has map type, using type information when
// available and falling back to the syntactic map-literal/make forms.
func (p *Pass) isMapExpr(e ast.Expr) bool {
	if p.Pkg.Info != nil {
		if tv, ok := p.Pkg.Info.Types[e]; ok && tv.Type != nil {
			_, isMap := tv.Type.Underlying().(*types.Map)
			return isMap
		}
	}
	switch e := e.(type) {
	case *ast.CompositeLit:
		_, ok := e.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			_, ok := e.Args[0].(*ast.MapType)
			return ok
		}
	}
	return false
}

// findOrderedSink returns a description of the first order-sensitive sink in
// the range body, or "" when the body is order-free.
func findOrderedSink(pass *Pass, rng *ast.RangeStmt) string {
	sink := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := calleeName(n); ok && orderedSinkNames[name] {
				sink = "a " + name + " call"
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && assignsOutsideLoop(pass, n, rng) {
					sink = "an append to a variable declared outside the loop"
				}
			}
		}
		return true
	})
	return sink
}

// assignsOutsideLoop reports whether the assignment writes a variable whose
// declaration lies outside the range statement.
func assignsOutsideLoop(pass *Pass, assign *ast.AssignStmt, rng *ast.RangeStmt) bool {
	if pass.Pkg.Info == nil {
		return assign.Tok == token.ASSIGN // `=` (not `:=`) means the target pre-exists
	}
	for _, lhs := range assign.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.Pkg.Info.ObjectOf(id)
		if obj == nil {
			continue
		}
		if obj.Pos() < rng.Pos() || obj.Pos() > rng.End() {
			return true
		}
	}
	return false
}

// sortFollows reports whether a sort or slices call appears after pos within
// the enclosing function body — the "intervening sort" that restores a
// deterministic order before the collected values are used.
func sortFollows(pass *Pass, f *ast.File, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if path, ok := pass.Pkg.Qualifier(f, sel); ok && (path == "sort" || path == "slices") {
				found = true
			}
		}
		return true
	})
	return found
}

func calleeName(call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}
