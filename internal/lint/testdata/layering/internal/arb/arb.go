// Fixture: a substrate leaf with no module-local imports.
package arb

// Policy is a placeholder arbiter policy.
type Policy int
