package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"gpunoc/internal/config"
)

// baseKey builds a representative cache key for the unit tests.
func baseKey() CacheKey {
	return CacheKey{
		ConfigHash: 0xdeadbeef,
		ConfigName: "small",
		Seed:       5,
		Experiment: "fig2",
		Scale:      "quick",
		Metrics:    true,
		Telemetry:  false,
	}
}

// TestCacheKeyID pins the content address: stable for equal keys, and
// sensitive to every field — a change in any component must address a
// different cache entry.
func TestCacheKeyID(t *testing.T) {
	k := baseKey()
	if a, b := k.ID(), baseKey().ID(); a != b {
		t.Fatalf("ID not stable: %s vs %s", a, b)
	}
	if len(k.ID()) != 64 {
		t.Fatalf("ID length %d, want 64 hex chars", len(k.ID()))
	}

	variants := map[string]CacheKey{
		"config hash": func() CacheKey { v := baseKey(); v.ConfigHash++; return v }(),
		"config name": func() CacheKey { v := baseKey(); v.ConfigName = "volta"; return v }(),
		"seed":        func() CacheKey { v := baseKey(); v.Seed++; return v }(),
		"experiment":  func() CacheKey { v := baseKey(); v.Experiment = "fig3"; return v }(),
		"scale":       func() CacheKey { v := baseKey(); v.Scale = "full"; return v }(),
		"metrics":     func() CacheKey { v := baseKey(); v.Metrics = false; return v }(),
		"telemetry":   func() CacheKey { v := baseKey(); v.Telemetry = true; return v }(),
	}
	seen := map[string]string{k.ID(): "base"}
	for field, v := range variants {
		id := v.ID()
		if prev, dup := seen[id]; dup {
			t.Errorf("changing %s collides with %s", field, prev)
		}
		seen[id] = field
	}
}

// TestCacheMissesAreSafe pins the miss behavior Get promises: disabled
// caches, absent entries, corrupt files, and key-mismatched files all read
// as a miss, never an error.
func TestCacheMissesAreSafe(t *testing.T) {
	k := baseKey()
	var nilCache *Cache
	if _, ok := nilCache.Get(k); ok {
		t.Error("nil cache reported a hit")
	}
	if err := nilCache.Put(&Entry{Key: k}); err != nil {
		t.Errorf("nil cache Put: %v", err)
	}
	disabled := &Cache{}
	if _, ok := disabled.Get(k); ok {
		t.Error("zero-value cache reported a hit")
	}

	c := &Cache{Dir: t.TempDir()}
	if _, ok := c.Get(k); ok {
		t.Error("empty directory reported a hit")
	}
	if err := os.WriteFile(c.path(k), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); ok {
		t.Error("corrupt entry reported a hit")
	}
	// A well-formed entry whose embedded key disagrees with the file name
	// (hash collision or renamed file) must also miss.
	other := k
	other.Seed++
	if err := c.Put(&Entry{Key: other, Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(c.path(other), c.path(k)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); ok {
		t.Error("key-mismatched entry reported a hit")
	}
}

// TestCachePutGetRoundTrip stores an entry and reads it back verbatim.
func TestCachePutGetRoundTrip(t *testing.T) {
	c := &Cache{Dir: filepath.Join(t.TempDir(), "nested", "cache")}
	ent := &Entry{
		Key:    baseKey(),
		Figure: &Figure{ID: "fig2", Title: "t", Header: []string{"a"}, Rows: [][]string{{"1"}}},
		Cycles: 42,
	}
	if err := c.Put(ent); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(ent.Key)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if !reflect.DeepEqual(got, ent) {
		t.Fatalf("round-trip mismatch:\ngot  %+v\nwant %+v", got, ent)
	}
}

// TestRunnerServesWarmRunFromCache is the acceptance test for the result
// cache: the same suite run twice against one cache directory simulates only
// once — the warm run is served entirely from disk, marked Cached, and
// renders a byte-identical report with deep-equal metrics and telemetry.
func TestRunnerServesWarmRunFromCache(t *testing.T) {
	var calls atomic.Int64
	reg := fakeRegistry(3, func(id string, cfg *config.Config, opt Options) (*Figure, error) {
		calls.Add(1)
		cfg.Meter.Add(100)
		return &Figure{ID: id, Title: "fake", Header: []string{"seed"},
			Rows: [][]string{{fmt.Sprintf("%d", opt.Seed)}}}, nil
	})
	cfg := smallCfg()
	r := Runner{
		Registry:   reg,
		Options:    Options{Scale: Quick, Seed: 5, Metrics: true, Telemetry: true},
		Cache:      &Cache{Dir: t.TempDir()},
		ConfigName: "small",
	}

	cold, err := r.Run(&cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("cold run executed %d experiments, want 3", n)
	}
	for _, res := range cold {
		if res.Cached {
			t.Errorf("%s: cold run marked cached", res.Experiment.ID)
		}
	}

	warm, err := r.Run(&cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("warm run re-simulated: %d total executions, want 3", n)
	}
	for i, res := range warm {
		if !res.Cached {
			t.Errorf("%s: warm run not served from cache", res.Experiment.ID)
		}
		if res.Cycles != cold[i].Cycles {
			t.Errorf("%s: cached cycles %d, cold %d", res.Experiment.ID, res.Cycles, cold[i].Cycles)
		}
		if !reflect.DeepEqual(res.Metrics, cold[i].Metrics) {
			t.Errorf("%s: cached metrics differ from cold run", res.Experiment.ID)
		}
		if !reflect.DeepEqual(res.TelemetryWindows, cold[i].TelemetryWindows) {
			t.Errorf("%s: cached telemetry windows differ from cold run", res.Experiment.ID)
		}
	}
	if Report(cold) != Report(warm) {
		t.Fatal("warm report is not byte-identical to the cold report")
	}

	// A different seed must miss: the cache never serves stale results
	// across key changes.
	r.Options.Seed = 6
	if _, err := r.Run(&cfg, nil); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 6 {
		t.Fatalf("seed change hit the cache: %d total executions, want 6", n)
	}
}

// TestRunnerRechecksCachedResults pins that Check re-runs on cache hits: a
// cached figure that no longer satisfies its invariant fails the warm run.
func TestRunnerRechecksCachedResults(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Experiment{
		ID: "checked", Order: 0, Title: "fake", Section: "test",
		Run: func(cfg *config.Config, opt Options) (*Figure, error) {
			return &Figure{ID: "checked"}, nil
		},
		Check: func(cfg *config.Config, f *Figure) error {
			return errCheckAlwaysFails
		},
	})
	cfg := smallCfg()
	r := Runner{
		Registry: reg,
		Options:  quickOpts(),
		Cache:    &Cache{Dir: t.TempDir()},
	}
	// Cold run without Check populates the cache.
	if _, err := r.Run(&cfg, nil); err != nil {
		t.Fatal(err)
	}
	r.Check = true
	warm, err := r.Run(&cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !warm[0].Cached {
		t.Fatal("warm run not served from cache")
	}
	if warm[0].Err == nil {
		t.Fatal("failing Check not applied to cached result")
	}
}

// errCheckAlwaysFails is the sentinel the recheck test's Check returns.
var errCheckAlwaysFails = errForTest("invariant violated")

// errForTest is a trivial error type for test sentinels.
type errForTest string

func (e errForTest) Error() string { return string(e) }
