// Package cache implements a set-associative cache with LRU replacement and
// MSHR-based miss tracking. It backs the 48 L2 slices (96 KB each on the
// Volta configuration of Table 1) and, optionally, the per-SM L1 that probe
// kernels bypass with the -dlcm=cg analogue.
package cache

import (
	"fmt"

	"gpunoc/internal/probe"
)

// Result describes the outcome of an access.
type Result int

const (
	// Hit means the line was present.
	Hit Result = iota
	// Miss means the line was absent and a new MSHR was allocated; the
	// caller must fetch from memory and call Fill.
	Miss
	// MissMerged means the line was absent but an MSHR for it already
	// exists; the access piggybacks on the outstanding fill.
	MissMerged
	// Stall means no MSHR was available; the access must be retried.
	Stall
)

// String names the result for logs and tests.
func (r Result) String() string {
	switch r {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case MissMerged:
		return "miss-merged"
	case Stall:
		return "stall"
	default:
		return fmt.Sprintf("Result(%d)", int(r))
	}
}

type line struct {
	valid bool
	dirty bool
	tag   uint64
	used  uint64 // LRU timestamp
}

// Cache is a blocking-free set-associative cache model. It tracks presence
// and recency, not data contents (the simulator is timing-only).
type Cache struct {
	lineBytes uint64
	sets      uint64
	ways      int
	lines     []line // sets*ways, row-major by set

	mshrs   map[uint64]int // line address -> merged request count
	mshrCap int

	useTick uint64

	// Counters.
	hits, misses, merged, stalls, evictions, writebacks uint64

	pr *cacheProbes // nil when uninstrumented (the fast path)
}

// cacheProbes mirrors the access-outcome counters into a probe.Registry and
// tracks MSHR occupancy as a gauge (its Max is the high-water mark).
type cacheProbes struct {
	hits, misses, merged, stalls *probe.Counter
	mshr                         *probe.Gauge
}

// Instrument registers this cache's metrics with r under the given prefix
// (e.g. "mem/slice3/l2"). A nil registry leaves the cache uninstrumented.
func (c *Cache) Instrument(r *probe.Registry, prefix string) {
	if r == nil {
		return
	}
	c.pr = &cacheProbes{
		hits:   r.Counter(prefix + "/hits"),
		misses: r.Counter(prefix + "/misses"),
		merged: r.Counter(prefix + "/merged"),
		stalls: r.Counter(prefix + "/stalls"),
		mshr:   r.Gauge(prefix + "/mshr_pending"),
	}
}

// New builds a cache of the given total size. sizeBytes must be divisible by
// lineBytes*ways.
func New(sizeBytes, lineBytes, ways, mshrs int) (*Cache, error) {
	switch {
	case sizeBytes <= 0 || lineBytes <= 0 || ways <= 0:
		return nil, fmt.Errorf("cache: non-positive geometry %d/%d/%d", sizeBytes, lineBytes, ways)
	case lineBytes&(lineBytes-1) != 0:
		return nil, fmt.Errorf("cache: line size %d not a power of two", lineBytes)
	case sizeBytes%(lineBytes*ways) != 0:
		return nil, fmt.Errorf("cache: size %d not divisible by line*ways", sizeBytes)
	case mshrs <= 0:
		return nil, fmt.Errorf("cache: non-positive MSHR count %d", mshrs)
	}
	sets := sizeBytes / (lineBytes * ways)
	return &Cache{
		lineBytes: uint64(lineBytes),
		sets:      uint64(sets),
		ways:      ways,
		lines:     make([]line, sets*ways),
		mshrs:     make(map[uint64]int, mshrs),
		mshrCap:   mshrs,
	}, nil
}

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr &^ (c.lineBytes - 1) }

func (c *Cache) setOf(lineAddr uint64) uint64 { return (lineAddr / c.lineBytes) % c.sets }

func (c *Cache) slot(set uint64, way int) *line { return &c.lines[set*uint64(c.ways)+uint64(way)] }

// Access looks up addr. On a hit the line's recency is updated (and marked
// dirty for writes). On a miss an MSHR is allocated (Miss) or merged
// (MissMerged); Stall means the MSHR file is full. The caller is responsible
// for calling Fill once the memory fetch returns.
func (c *Cache) Access(addr uint64, write bool) Result {
	la := c.LineAddr(addr)
	set := c.setOf(la)
	c.useTick++
	for w := 0; w < c.ways; w++ {
		s := c.slot(set, w)
		if s.valid && s.tag == la {
			s.used = c.useTick
			if write {
				s.dirty = true
			}
			c.hits++
			if c.pr != nil {
				c.pr.hits.Inc()
			}
			return Hit
		}
	}
	if _, ok := c.mshrs[la]; ok {
		c.mshrs[la]++
		c.merged++
		if c.pr != nil {
			c.pr.merged.Inc()
		}
		return MissMerged
	}
	if len(c.mshrs) >= c.mshrCap {
		c.stalls++
		if c.pr != nil {
			c.pr.stalls.Inc()
		}
		return Stall
	}
	c.mshrs[la] = 1
	c.misses++
	if c.pr != nil {
		c.pr.misses.Inc()
		c.pr.mshr.Add(1)
	}
	return Miss
}

// Probe reports whether addr is resident without touching recency or
// counters (used by tests and the prime+probe baseline channel).
func (c *Cache) Probe(addr uint64) bool {
	la := c.LineAddr(addr)
	set := c.setOf(la)
	for w := 0; w < c.ways; w++ {
		s := c.slot(set, w)
		if s.valid && s.tag == la {
			return true
		}
	}
	return false
}

// Fill installs the line for addr (completing its MSHR if one is pending)
// and returns the number of merged requests that were waiting plus whether a
// dirty line was evicted (requiring a writeback). Filling an address with no
// pending MSHR is allowed (preloads use it) and returns waiters == 0.
func (c *Cache) Fill(addr uint64, write bool) (waiters int, writeback bool) {
	la := c.LineAddr(addr)
	if n, ok := c.mshrs[la]; ok {
		waiters = n
		delete(c.mshrs, la)
		if c.pr != nil {
			c.pr.mshr.Add(-1)
		}
	}
	set := c.setOf(la)
	c.useTick++
	// Already resident (a racing preload): refresh recency only.
	for w := 0; w < c.ways; w++ {
		s := c.slot(set, w)
		if s.valid && s.tag == la {
			s.used = c.useTick
			if write {
				s.dirty = true
			}
			return waiters, false
		}
	}
	victim := 0
	for w := 0; w < c.ways; w++ {
		s := c.slot(set, w)
		if !s.valid {
			victim = w
			break
		}
		if s.used < c.slot(set, victim).used {
			victim = w
		}
	}
	v := c.slot(set, victim)
	if v.valid {
		c.evictions++
		if v.dirty {
			c.writebacks++
			writeback = true
		}
	}
	*v = line{valid: true, dirty: write, tag: la, used: c.useTick}
	return waiters, writeback
}

// Invalidate drops the line containing addr if resident, returning whether
// it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	la := c.LineAddr(addr)
	set := c.setOf(la)
	for w := 0; w < c.ways; w++ {
		s := c.slot(set, w)
		if s.valid && s.tag == la {
			present, dirty = true, s.dirty
			*s = line{}
			return
		}
	}
	return false, false
}

// PendingMSHRs returns the number of outstanding miss entries.
func (c *Cache) PendingMSHRs() int { return len(c.mshrs) }

// Sets returns the number of sets (for the prime+probe baseline).
func (c *Cache) Sets() int { return int(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineBytes returns the line size in bytes.
func (c *Cache) LineBytes() int { return int(c.lineBytes) }

// Stats is a snapshot of the cache activity counters.
type Stats struct {
	Hits, Misses, Merged, Stalls, Evictions, Writebacks uint64
}

// Stats returns the counter snapshot.
func (c *Cache) Stats() Stats {
	return Stats{c.hits, c.misses, c.merged, c.stalls, c.evictions, c.writebacks}
}
