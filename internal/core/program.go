package core

import (
	"math/rand"

	"gpunoc/internal/device"
	"gpunoc/internal/warp"
)

// Symbol is one transmitted unit: a bit for the binary channel, a 2-bit
// value (0..3) for the multi-level channel.
type Symbol int

// chunkFunc decides, from the SM a block landed on (read through the %smid
// analogue at runtime, as the real attack does), whether this warp
// participates and which symbols it carries. A nil return means the warp
// exits immediately (its block only reserved the SM slot).
type chunkFunc func(smid int) []Symbol

// addrFunc returns the L2-resident probe window base for a given SM.
type addrFunc func(smid int) uint64

// phaseFunc returns the SyncClock target residue for a given SM. On-die
// channels leave it nil (phase 0: §4.1 shows clock registers of SMs in one
// GPU agree closely enough). Cross-GPU channels synchronize in *global* time
// by cancelling the device-private clock offset: the attacker learns its
// SM's offset once (the one-time calibration of §4.1 applied across
// devices) and thereafter waits for clock % modulus == offset % modulus,
// which both sides reach at the same global cycle.
type phaseFunc func(smid int) uint64

// Sender/receiver state machine states.
const (
	stRole = iota
	stInitSync
	stSlotStart
	stOps
	stSlotEnd
	stResync
)

// senderProgram implements the trojan warp of Algorithm 2: per timing slot
// it either floods the shared channel with uncoalesced accesses (symbol > 0)
// or stays silent, re-synchronizing on the clock register every SyncPeriod
// slots.
type senderProgram struct {
	p      *Params
	chunk  chunkFunc
	window addrFunc
	phase  phaseFunc // nil = phase 0 (on-die channels)
	write  bool
	lineB  int
	simt   int
	factor int // per-slot op budget factor; 0 = senderOpFactor
	rng    *rand.Rand

	symbols   []Symbol
	ph        uint64
	state     int
	slotStart uint64 // local clock at current slot start
	bitIdx    int
	opIdx     int
	myOps     int // this warp's share of the per-slot op budget
	base      uint64
}

// senderOpFactor scales the sender's per-slot op budget relative to the
// receiver's probe count so that a full-intensity flood covers the whole
// probe window (the paper's sender repeats accesses throughout the slot).
const senderOpFactor = 2

// opShare splits the per-slot op budget across the sender's warps: warp w
// takes every SenderWarps-th op. Multiple warps issue concurrently purely to
// keep the SM's LSU pipeline full (the paper activates 5 warps "to increase
// the impact of contention"); the total traffic per slot stays proportional
// to Iterations warp-wide operations.
func opShare(total, warps, w int) int {
	if w >= warps {
		return 0
	}
	n := total / warps
	if w < total%warps {
		n++
	}
	return n
}

// Step implements device.Program.
func (s *senderProgram) Step(ctx *device.Ctx) device.Op {
	switch s.state {
	case stRole:
		s.symbols = s.chunk(ctx.SMID)
		factor := s.factor
		if factor == 0 {
			factor = senderOpFactor
		}
		s.myOps = opShare(factor*s.p.Iterations, s.p.SenderWarps, ctx.Warp)
		if len(s.symbols) == 0 || s.myOps == 0 {
			return device.Done()
		}
		s.base = s.window(ctx.SMID)
		if s.phase != nil {
			s.ph = s.phase(ctx.SMID)
		}
		s.state = stInitSync
		return device.SyncClock(s.p.InitModulus, s.ph)

	case stInitSync:
		s.slotStart = ctx.Clock64
		s.state = stSlotStart
		fallthrough

	case stSlotStart:
		if s.bitIdx >= len(s.symbols) {
			return device.Done()
		}
		s.state = stOps
		s.opIdx = 0
		if j := s.jitter(); j > 0 {
			return device.Wait(j)
		}
		fallthrough

	case stOps:
		lanes := s.p.LevelLanes(int(s.symbols[s.bitIdx]), s.simt)
		if lanes > 0 && s.opIdx < s.myOps {
			op, err := warp.PartialOp(s.opAddr(), s.write, s.lineB, lanes, s.simt)
			if err != nil {
				panic(err)
			}
			s.opIdx++
			return device.Mem(op)
		}
		s.state = stSlotEnd
		fallthrough

	case stSlotEnd:
		target := s.slotStart + s.p.SlotCycles
		if ctx.Clock64 < target {
			// The busy-wait wakes a few cycles late (DriftJitter);
			// lateness carries into the next slot's start, so without
			// periodic resync the two sides random-walk apart (Fig 9a).
			return device.Wait(target - ctx.Clock64 + s.drift())
		}
		s.slotStart = ctx.Clock64
		s.bitIdx++
		if s.bitIdx >= len(s.symbols) {
			return device.Done()
		}
		if s.p.SyncPeriod > 0 && s.bitIdx%s.p.SyncPeriod == 0 {
			s.state = stResync
			return device.SyncClock(s.p.SyncModulus, s.ph)
		}
		s.state = stSlotStart
		return s.Step(ctx)

	case stResync:
		s.slotStart = ctx.Clock64
		s.state = stSlotStart
		return s.Step(ctx)
	}
	return device.Done()
}

func (s *senderProgram) jitter() uint64 {
	if s.p.SlotJitter <= 0 {
		return 0
	}
	return uint64(s.rng.Intn(s.p.SlotJitter + 1))
}

func (s *senderProgram) drift() uint64 {
	if s.p.DriftJitter <= 0 {
		return 0
	}
	return uint64(s.rng.Intn(s.p.DriftJitter + 1))
}

func (s *senderProgram) opAddr() uint64 {
	// Rotate within a small, preloaded, L2-resident window.
	span := uint64(s.simt * s.lineB)
	return s.base + uint64(s.opIdx%2)*span
}

// SlotTrace records the receiver's observation for one timing slot.
type SlotTrace struct {
	// MeanLatency is the mean probe-op latency over the slot's
	// iterations — the Fig 9/Fig 14 y-axis.
	MeanLatency float64
	// MaxLatency is the slowest probe op in the slot.
	MaxLatency uint64
	// Clock is the receiver's local clock at the slot start.
	Clock uint64
}

// receiverProgram implements the spy warp of Algorithm 2: per timing slot it
// probes the L2 through the shared channel, classifies the mean latency
// against the thresholds, and records the decoded symbol.
type receiverProgram struct {
	p      *Params
	active func(smid int) bool
	window addrFunc
	phase  phaseFunc // nil = phase 0 (on-die channels)
	count  int       // symbols to receive
	lineB  int
	simt   int
	rng    *rand.Rand

	// Outputs.
	Received []Symbol
	Trace    []SlotTrace
	FirstOp  uint64 // local clock at first slot start
	LastOp   uint64 // local clock at final slot end
	SMID     int

	ph        uint64
	state     int
	slotStart uint64
	bitIdx    int
	opIdx     int
	latSum    float64
	latMax    uint64
	base      uint64
	sawFirst  bool
}

// Step implements device.Program.
func (r *receiverProgram) Step(ctx *device.Ctx) device.Op {
	switch r.state {
	case stRole:
		if !r.active(ctx.SMID) {
			return device.Done()
		}
		r.SMID = ctx.SMID
		r.base = r.window(ctx.SMID)
		if r.phase != nil {
			r.ph = r.phase(ctx.SMID)
		}
		r.state = stInitSync
		return device.SyncClock(r.p.InitModulus, r.ph)

	case stInitSync:
		r.slotStart = ctx.Clock64
		if !r.sawFirst {
			r.sawFirst = true
			r.FirstOp = ctx.Clock64
		}
		r.state = stSlotStart
		fallthrough

	case stSlotStart:
		if r.bitIdx >= r.count {
			return device.Done()
		}
		r.state = stOps
		r.opIdx = 0
		r.latSum = 0
		r.latMax = 0
		if j := r.jitter(); j > 0 {
			return device.Wait(j)
		}
		fallthrough

	case stOps:
		if r.opIdx > 0 {
			// The previous probe completed; LastLatency is its cost.
			r.latSum += float64(ctx.LastLatency)
			if ctx.LastLatency > r.latMax {
				r.latMax = ctx.LastLatency
			}
		}
		if r.opIdx < r.p.Iterations {
			r.opIdx++
			return r.probeOp()
		}
		r.decodeSlot(ctx)
		r.state = stSlotEnd
		fallthrough

	case stSlotEnd:
		target := r.slotStart + r.p.SlotCycles
		if ctx.Clock64 < target {
			return device.Wait(target - ctx.Clock64 + r.drift())
		}
		r.slotStart = ctx.Clock64
		r.LastOp = ctx.Clock64
		r.bitIdx++
		if r.bitIdx >= r.count {
			return device.Done()
		}
		if r.p.SyncPeriod > 0 && r.bitIdx%r.p.SyncPeriod == 0 {
			r.state = stResync
			return device.SyncClock(r.p.SyncModulus, r.ph)
		}
		r.state = stSlotStart
		return r.Step(ctx)

	case stResync:
		r.slotStart = ctx.Clock64
		r.state = stSlotStart
		return r.Step(ctx)
	}
	return device.Done()
}

func (r *receiverProgram) probeOp() device.Op {
	span := uint64(r.simt * r.lineB)
	base := r.base + uint64((r.opIdx-1)%2)*span
	if r.ReceiverCoalesced() {
		return device.Mem(warp.CoalescedOp(base, false))
	}
	return device.Mem(warp.UncoalescedOp(base, false, r.lineB))
}

// ReceiverCoalesced reports whether probes are coalesced (Fig 13 study).
func (r *receiverProgram) ReceiverCoalesced() bool { return r.p.ReceiverCoalesced }

func (r *receiverProgram) decodeSlot(ctx *device.Ctx) {
	mean := r.latSum / float64(r.p.Iterations)
	sym := 0
	for _, th := range r.p.Thresholds {
		if mean > th {
			sym++
		}
	}
	r.Received = append(r.Received, Symbol(sym))
	r.Trace = append(r.Trace, SlotTrace{MeanLatency: mean, MaxLatency: r.latMax, Clock: r.slotStart})
}

func (r *receiverProgram) jitter() uint64 {
	if r.p.SlotJitter <= 0 {
		return 0
	}
	return uint64(r.rng.Intn(r.p.SlotJitter + 1))
}

func (r *receiverProgram) drift() uint64 {
	if r.p.DriftJitter <= 0 {
		return 0
	}
	return uint64(r.rng.Intn(r.p.DriftJitter + 1))
}
