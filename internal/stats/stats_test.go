package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic data set is 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Error("variance of singleton must be 0")
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); err != ErrEmpty {
		t.Fatal("Min(nil) should fail")
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Fatal("Max(nil) should fail")
	}
	xs := []float64{3, -2, 8, 0}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	if lo != -2 || hi != 8 {
		t.Errorf("Min/Max = %v/%v", lo, hi)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	} {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("negative percentile should fail")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("percentile > 100 should fail")
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Error("empty percentile should fail")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	if _, err := Median(ys); err != nil {
		t.Fatal(err)
	}
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	a, b, r2, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, 1, 1e-9) || !almostEqual(b, 2, 1e-9) || !almostEqual(r2, 1, 1e-9) {
		t.Errorf("fit = %v + %vx (r2=%v)", a, b, r2)
	}
	if _, _, _, err := LinearFit(x, y[:3]); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, _, _, err := LinearFit([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("degenerate x should fail")
	}
	// Constant y is a perfect horizontal fit.
	_, b, r2, err = LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil || b != 0 || r2 != 1 {
		t.Errorf("constant fit: b=%v r2=%v err=%v", b, r2, err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	counts, edges, err := Histogram(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 5 || len(edges) != 6 {
		t.Fatalf("shape: %d counts, %d edges", len(counts), len(edges))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Errorf("histogram lost samples: %d != %d", total, len(xs))
	}
	if _, _, err := Histogram(nil, 3); err != ErrEmpty {
		t.Error("empty histogram should fail")
	}
	if _, _, err := Histogram(xs, 0); err == nil {
		t.Error("zero buckets should fail")
	}
	// Degenerate (all-equal) input still lands every sample in one bucket.
	counts, _, err = Histogram([]float64{7, 7, 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Error("degenerate histogram lost samples")
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{2, 4, 6}
	got := Normalize(xs, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Normalize = %v", got)
		}
	}
	got = Normalize(xs, 0)
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatal("zero base should copy input")
		}
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 1000)
	var r Running
	for i := range xs {
		xs[i] = rng.NormFloat64()*10 + 3
		r.Add(xs[i])
	}
	if r.N() != len(xs) {
		t.Fatalf("N = %d", r.N())
	}
	if !almostEqual(r.Mean(), Mean(xs), 1e-9) {
		t.Errorf("running mean %v != %v", r.Mean(), Mean(xs))
	}
	if !almostEqual(r.Variance(), Variance(xs), 1e-6) {
		t.Errorf("running variance %v != %v", r.Variance(), Variance(xs))
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	if r.Min() != lo || r.Max() != hi {
		t.Errorf("running min/max %v/%v != %v/%v", r.Min(), r.Max(), lo, hi)
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.StdDev() != 0 {
		t.Error("zero-value Running must report zeros")
	}
	r.Add(5)
	if r.Mean() != 5 || r.Variance() != 0 || r.Min() != 5 || r.Max() != 5 {
		t.Error("single-sample Running wrong")
	}
}

// Property: mean is always within [min, max], and variance is non-negative.
func TestQuickMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		return m >= lo-1e-6 && m <= hi+1e-6 && Variance(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Running and batch stats agree on arbitrary finite inputs.
func TestQuickRunningAgreesWithBatch(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		var r Running
		for _, x := range xs {
			r.Add(x)
		}
		if len(xs) == 0 {
			return r.N() == 0
		}
		scale := math.Max(1, math.Abs(Mean(xs)))
		return almostEqual(r.Mean(), Mean(xs), 1e-6*scale)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
