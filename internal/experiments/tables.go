package experiments

import (
	"fmt"
	"strconv"

	"gpunoc/internal/baseline"
	"gpunoc/internal/config"
	"gpunoc/internal/core"
)

// The paper's tables register themselves with the experiment registry.
func init() {
	MustRegister(Experiment{
		ID: "table1", Order: 10,
		Title:      "Simulation configuration parameters, read back from the live config",
		Section:    "Table 1",
		FixedScale: true,
		Run: func(cfg *config.Config, _ Options) (*Figure, error) {
			return Table1(cfg), nil
		},
		Check: func(_ *config.Config, f *Figure) error {
			if len(f.Rows) != 4 {
				return fmt.Errorf("table1: %d rows, want 4", len(f.Rows))
			}
			return nil
		},
	})
	MustRegister(Experiment{
		ID: "table2", Order: 230,
		Title:   "Measured comparison of all channels against the prior-work baselines",
		Section: "§7, Table 2",
		Run: func(cfg *config.Config, opt Options) (*Figure, error) {
			f, _, err := Table2(cfg, opt)
			return f, err
		},
		Check: func(_ *config.Config, f *Figure) error { return CheckTable2Figure(f) },
		Metrics: func(f *Figure) map[string]float64 {
			rows, err := table2RowsFromFigure(f)
			if err != nil {
				return nil
			}
			for _, r := range rows {
				if r.Name == "GPU multi-TPC channel (this work)" {
					return map[string]float64{"multi-tpc-Mbps": r.Kbps / 1e3}
				}
			}
			return nil
		},
	})
}

// Table1 renders the simulation configuration parameters (the paper's
// Table 1), read back from the live config so the report always matches what
// actually ran.
func Table1(cfg *config.Config) *Figure {
	f := &Figure{
		ID:     "table1",
		Title:  "Simulation configuration parameters",
		Header: []string{"group", "parameter"},
	}
	add := func(group, format string, args ...interface{}) {
		f.Rows = append(f.Rows, []string{group, fmt.Sprintf(format, args...)})
	}
	add("Core Features", "%dMHz, SIMT width=%d, %d TPCs, %d SMs per TPC, %d GPCs",
		cfg.CoreClockMHz, cfg.SIMTWidth, cfg.NumTPCs(), cfg.SMsPerTPC, cfg.NumGPCs)
	add("Caches", "%dKB L1/Shmem per SM, %d L2 slices, %dKB per L2 slice",
		cfg.L1SizeBytes/1024, cfg.NumL2Slices, cfg.L2SliceSizeBytes/1024)
	add("Memory Model", "%d MCs, HBM2, tCL=%d, tRP=%d, tRC=%d, tRAS=%d, tRCD=%d, tRRD=%d",
		cfg.NumMCs, cfg.DRAM.TCL, cfg.DRAM.TRP, cfg.DRAM.TRC, cfg.DRAM.TRAS, cfg.DRAM.TRCD, cfg.DRAM.TRRD)
	add("Interconnect", "%dMHz, Crossbar, flit_size=%d, num_vcs=%d, subnet=%d, arbitration=%s",
		cfg.CoreClockMHz, cfg.NoC.FlitSizeBytes, cfg.NoC.NumVCs, cfg.NoC.Subnets,
		cfg.NoC.Arbitration)
	return f
}

// Table2Row is one measured channel in the qualitative comparison.
type Table2Row struct {
	Name      string
	SharedHW  string
	Parallel  bool
	Local     bool
	Direct    bool
	ErrorRate float64
	Kbps      float64
}

// Table2 regenerates the measurable half of Table 2: every channel this
// repository implements, run on the same simulated GPU, with the
// parallel/local/direct taxonomy of §7 and the measured bandwidth ordering.
func Table2(cfg *config.Config, opt Options) (*Figure, []Table2Row, error) {
	f := &Figure{
		ID:    "table2",
		Title: "Qualitative and measured comparison of covert channels",
		Header: []string{"channel", "shared HW", "parallel/serial", "local/global",
			"direct/indirect", "error rate", "bandwidth (kbps)"},
	}
	bits := opt.pick(48, 200)
	payload := core.AlternatingPayload(bits, 2)
	var rows []Table2Row

	addRow := func(r Table2Row) {
		rows = append(rows, r)
		ps, ls, ds := "Serial", "Global", "Indirect"
		if r.Parallel {
			ps = "Parallel"
		}
		if r.Local {
			ls = "Local"
		}
		if r.Direct {
			ds = "Direct"
		}
		f.Rows = append(f.Rows, []string{
			r.Name, r.SharedHW, ps, ls, ds,
			fmt.Sprintf("%.4f", r.ErrorRate), fmt.Sprintf("%.1f", r.Kbps),
		})
	}

	// Prior-work baselines (Naghibijouybari et al. [42] analogues).
	pp, err := baseline.RunPrimeProbe(cfg, baseline.PrimeProbeParams{Bits: payload, Seed: opt.seed()})
	if err != nil {
		return nil, nil, err
	}
	addRow(Table2Row{Name: "L1 prime+probe [42]", SharedHW: "GPU L1 Cache",
		Parallel: false, Local: true, Direct: false,
		ErrorRate: pp.ErrorRate, Kbps: pp.BitsPerSecond / 1e3})

	at, err := baseline.RunAtomic(cfg, baseline.AtomicParams{Bits: payload, Seed: opt.seed()})
	if err != nil {
		return nil, nil, err
	}
	addRow(Table2Row{Name: "Global memory atomics [42]", SharedHW: "GPU Global Memory",
		Parallel: true, Local: false, Direct: false,
		ErrorRate: at.ErrorRate, Kbps: at.BitsPerSecond / 1e3})

	// This work: the four interconnect channel variants.
	runOurs := func(kind core.Kind, units []int, nbits int) (core.Result, error) {
		p, err := calibratedParams(cfg, kind, 4, 1, opt.seed())
		if err != nil {
			return core.Result{}, err
		}
		pl := core.AlternatingPayload(nbits, 2)
		var tr *core.Transmission
		if kind == core.GPCChannel {
			tr, err = core.NewGPCTransmission(cfg, pl, units, p)
		} else {
			tr, err = core.NewTPCTransmission(cfg, pl, units, p)
		}
		if err != nil {
			return core.Result{}, err
		}
		return tr.Run()
	}
	variants := []struct {
		name  string
		kind  core.Kind
		units []int
		bits  int
	}{
		{"GPU TPC channel (this work)", core.TPCChannel, []int{0}, bits},
		{"GPU multi-TPC channel (this work)", core.TPCChannel, nil, bits * cfg.NumTPCs()},
		{"GPU GPC channel (this work)", core.GPCChannel, []int{0}, bits},
		{"GPU multi-GPC channel (this work)", core.GPCChannel, nil, bits * cfg.NumGPCs},
	}
	for _, v := range variants {
		res, err := runOurs(v.kind, v.units, v.bits)
		if err != nil {
			return nil, nil, fmt.Errorf("table2 %s: %w", v.name, err)
		}
		addRow(Table2Row{Name: v.name, SharedHW: fmt.Sprintf("GPU %s Channel", res.Kind),
			Parallel: true, Local: true, Direct: true,
			ErrorRate: res.ErrorRate, Kbps: res.BitsPerSecond / 1e3})
	}
	return f, rows, nil
}

// table2RowsFromFigure recovers the measured columns from a rendered Table 2
// figure, so shape checks can run on the registry's uniform *Figure result.
func table2RowsFromFigure(f *Figure) ([]Table2Row, error) {
	rows := make([]Table2Row, 0, len(f.Rows))
	for _, row := range f.Rows {
		if len(row) != 7 {
			return nil, fmt.Errorf("table2: row has %d columns, want 7", len(row))
		}
		er, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			return nil, fmt.Errorf("table2: bad error rate %q: %v", row[5], err)
		}
		kbps, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			return nil, fmt.Errorf("table2: bad bandwidth %q: %v", row[6], err)
		}
		rows = append(rows, Table2Row{Name: row[0], ErrorRate: er, Kbps: kbps})
	}
	return rows, nil
}

// CheckTable2Figure applies CheckTable2 to a rendered Table 2 figure.
func CheckTable2Figure(f *Figure) error {
	rows, err := table2RowsFromFigure(f)
	if err != nil {
		return err
	}
	return CheckTable2(rows)
}

// CheckTable2 asserts the ordering the paper's comparison makes: the
// interconnect channels dominate both baselines, and the multi-TPC channel
// is the fastest of all.
func CheckTable2(rows []Table2Row) error {
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	tpc := byName["GPU TPC channel (this work)"]
	multi := byName["GPU multi-TPC channel (this work)"]
	pp := byName["L1 prime+probe [42]"]
	at := byName["Global memory atomics [42]"]
	switch {
	case tpc.Kbps <= pp.Kbps || tpc.Kbps <= at.Kbps:
		return fmt.Errorf("table2: TPC channel (%.1f kbps) does not dominate baselines (%.1f, %.1f)",
			tpc.Kbps, pp.Kbps, at.Kbps)
	case multi.Kbps <= tpc.Kbps:
		return fmt.Errorf("table2: multi-TPC (%.1f) not above single TPC (%.1f)", multi.Kbps, tpc.Kbps)
	}
	for _, r := range rows {
		if multi.Kbps < r.Kbps {
			return fmt.Errorf("table2: %s (%.1f kbps) outruns the multi-TPC channel (%.1f)",
				r.Name, r.Kbps, multi.Kbps)
		}
	}
	return nil
}
