package engine

import (
	"strings"
	"testing"

	"gpunoc/internal/probe"
	"gpunoc/internal/telemetry"
)

// TestTelemetryRequiresProbes pins the construction contract: a sampler
// with no registry to aggregate is a configuration error, not a silent
// no-op.
func TestTelemetryRequiresProbes(t *testing.T) {
	cfg := testCfg()
	cfg.Telemetry = telemetry.NewSampler(0)
	if _, err := New(cfg); err == nil {
		t.Fatal("telemetry without probes should fail New")
	}
	cfg.Probes = probe.NewRegistry()
	if _, err := New(cfg); err != nil {
		t.Fatalf("telemetry with probes failed: %v", err)
	}
}

// TestTelemetryFreedom is the telemetry bit-identity regression: the same
// contention workload untelemetried and with a full sampler + detector
// attached must produce identical simulation outcomes — the sampler only
// observes the registry, never the simulation.
func TestTelemetryFreedom(t *testing.T) {
	bare := testCfg()
	gBare, dBare := contentionRun(t, bare, true)

	tel := testCfg()
	tel.Probes = probe.NewRegistry()
	rec := &telemetry.Recorder{}
	det := telemetry.NewDetector(telemetry.DetectorConfig{WindowCycles: 256})
	tel.Telemetry = telemetry.NewSampler(256, rec, det)
	gTel, dTel := contentionRun(t, tel, true)

	if dBare != dTel {
		t.Errorf("receiver duration diverged: bare %d vs telemetered %d", dBare, dTel)
	}
	if gBare.Now() != gTel.Now() {
		t.Errorf("final cycle diverged: bare %d vs telemetered %d", gBare.Now(), gTel.Now())
	}
	if a, b := gBare.Partition().Stats(), gTel.Partition().Stats(); a != b {
		t.Errorf("partition stats diverged: bare %+v vs telemetered %+v", a, b)
	}
	for i := 0; i < bare.NumSMs(); i++ {
		if a, b := gBare.SM(i).Stats(), gTel.SM(i).Stats(); a != b {
			t.Errorf("SM%d stats diverged: bare %+v vs telemetered %+v", i, a, b)
		}
	}
	// Sanity: the telemetered run actually produced windows that saw the
	// contention.
	if len(rec.Windows()) == 0 {
		t.Fatal("no windows recorded")
	}
	sawBusy := false
	for _, w := range rec.Windows() {
		for _, ow := range w.Occ {
			if ow.Rate > 0 {
				sawBusy = true
			}
		}
	}
	if !sawBusy {
		t.Error("windows never saw a busy link under a saturating workload")
	}
}

// TestTelemetryWindowStream checks the stream's structural invariants on a
// real engine run that includes an idle fast-forward stretch (LaunchAt
// skew): windows are contiguous with the configured width, occupancy rates
// stay in [0, 1], the quiet stretch still emits its (empty) windows, and
// the per-window counter deltas sum back to the registry totals over the
// completed span.
func TestTelemetryWindowStream(t *testing.T) {
	const W = 128
	cfg := testCfg()
	cfg.Probes = probe.NewRegistry()
	rec := &telemetry.Recorder{}
	cfg.Telemetry = telemetry.NewSampler(W, rec)

	g := mkGPU(t, cfg)
	preloadStreamers(g, 2)
	spec, _ := streamerKernel("t", 2, 1, 40, true, true, cfg.L2LineBytes)
	// A 20k-cycle launch skew forces RunFor's quiet fast-forward before any
	// traffic exists.
	if _, err := g.LaunchAt(20_000, spec); err != nil {
		t.Fatal(err)
	}
	if err := g.RunKernels(5_000_000); err != nil {
		t.Fatal(err)
	}

	ws := rec.Windows()
	if len(ws) < 20_000/W {
		t.Fatalf("only %d windows for a %d-cycle run", len(ws), g.Now())
	}
	grants := map[string]uint64{}
	for i, w := range ws {
		if w.Index != uint64(i) {
			t.Fatalf("window %d has index %d", i, w.Index)
		}
		if w.End-w.Start != W || w.Start != uint64(i)*W {
			t.Fatalf("window %d bounds [%d, %d), want width %d", i, w.Start, w.End, W)
		}
		for name, ow := range w.Occ {
			if ow.Rate < 0 || ow.Rate > 1 {
				t.Fatalf("window %d: %s rate %v outside [0,1]", i, name, ow.Rate)
			}
		}
		for name, d := range w.Counters {
			grants[name] += d
		}
		// The pre-launch stretch is quiet: no functional deltas before
		// cycle 20000 (the scheduler's own fast-forward accounting is the
		// one counter that legitimately moves).
		if w.End <= 20_000 {
			for name := range w.Counters {
				if !strings.HasPrefix(name, "sched/") {
					t.Fatalf("pre-launch window %d saw traffic: %+v", i, w)
				}
			}
			if len(w.Occ) != 0 {
				t.Fatalf("pre-launch window %d saw occupancy: %+v", i, w)
			}
		}
	}
	// Deltas over completed windows must match a snapshot taken at the last
	// emitted boundary... which we can't rewind to; but the registry only
	// grew after it, so every summed delta must be ≤ the final total, and
	// for counters that stopped moving before the last boundary, equal.
	final := g.ProbeSnapshot()
	for _, c := range final.Counters {
		if got := grants[c.Name]; got > c.Value {
			t.Errorf("windowed deltas of %s sum to %d > final total %d", c.Name, got, c.Value)
		}
	}
}

// TestTelemetryContinuousAcrossEngines pins the cumulative-clock design:
// two engine instances built from one config produce one uninterrupted
// window timeline, the same way the shared registry accumulates metrics.
func TestTelemetryContinuousAcrossEngines(t *testing.T) {
	const W = 64
	cfg := testCfg()
	cfg.Probes = probe.NewRegistry()
	rec := &telemetry.Recorder{}
	cfg.Telemetry = telemetry.NewSampler(W, rec)

	for run := 0; run < 2; run++ {
		g := mkGPU(t, cfg)
		g.RunFor(1000)
	}
	ws := rec.Windows()
	if want := (2 * 1000) / W; len(ws) != want {
		t.Fatalf("2×1000 cycles at W=%d: %d windows, want %d", W, len(ws), want)
	}
	for i, w := range ws {
		if w.Start != uint64(i)*W {
			t.Fatalf("window %d starts at %d; timeline broke across instances", i, w.Start)
		}
	}
}

// TestTelemetryExhaustiveTickIdentical runs the window stream under the
// exhaustive reference scheduler and the activity scheduler: the streams
// must be identical, because the schedulers are state-identical by
// construction and the sampler sees only registry state.
func TestTelemetryExhaustiveTickIdentical(t *testing.T) {
	run := func(exhaustive bool) []telemetry.Window {
		cfg := testCfg()
		cfg.ExhaustiveTick = exhaustive
		cfg.Probes = probe.NewRegistry()
		rec := &telemetry.Recorder{}
		cfg.Telemetry = telemetry.NewSampler(256, rec)
		g := mkGPU(t, cfg)
		preloadStreamers(g, 4)
		spec, _ := streamerKernel("x", 2, 2, 30, true, false, cfg.L2LineBytes)
		if _, err := g.Launch(spec); err != nil {
			t.Fatal(err)
		}
		if err := g.RunKernels(5_000_000); err != nil {
			t.Fatal(err)
		}
		return rec.Windows()
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("window counts diverged: activity %d vs exhaustive %d", len(a), len(b))
	}
	// The schedulers' own accounting (sched/sm_ticks and friends) is
	// mode-specific by design; every functional metric must agree.
	functional := func(m map[string]uint64) map[string]uint64 {
		out := map[string]uint64{}
		for name, d := range m {
			if !strings.HasPrefix(name, "sched/") {
				out[name] = d
			}
		}
		return out
	}
	for i := range a {
		wa, wb := a[i], b[i]
		if wa.Index != wb.Index || wa.Start != wb.Start || wa.End != wb.End ||
			len(wa.Occ) != len(wb.Occ) {
			t.Fatalf("window %d diverged:\nactivity:   %+v\nexhaustive: %+v", i, wa, wb)
		}
		ca, cb := functional(wa.Counters), functional(wb.Counters)
		if len(ca) != len(cb) {
			t.Fatalf("window %d functional counters diverged:\nactivity:   %v\nexhaustive: %v", i, ca, cb)
		}
		for name, d := range ca {
			if cb[name] != d {
				t.Fatalf("window %d counter %s diverged: %d vs %d", i, name, d, cb[name])
			}
		}
		for name, ow := range wa.Occ {
			if wb.Occ[name] != ow {
				t.Fatalf("window %d occ %s diverged: %+v vs %+v", i, name, ow, wb.Occ[name])
			}
		}
	}
}
