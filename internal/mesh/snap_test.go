package mesh

import (
	"errors"
	"reflect"
	"testing"

	"gpunoc/internal/config"
	"gpunoc/internal/engine"
	"gpunoc/internal/snap"
)

// launchCrossStreams puts one remote-reading kernel on each of two devices,
// so request and reply traffic is in flight on the fabric in both
// directions.
func launchCrossStreams(t *testing.T, m *Mesh) {
	t.Helper()
	const window = uint64(8192)
	lineBytes := m.GPU(0).Config().L2LineBytes
	for d := 0; d < 2; d++ {
		peer := 1 - d
		spec, _ := streamerSpec("cross", 2, 60, DevBase(peer)+0x100000, window, false, lineBytes)
		m.Preload(peer, DevBase(peer)+0x100000, 2*window)
		if _, err := m.Launch(d, spec); err != nil {
			t.Fatal(err)
		}
	}
}

// meshFinalState runs the mesh to completion and returns the end-of-run
// snapshot bytes plus every device's kernel durations.
func meshFinalState(t *testing.T, m *Mesh) ([]byte, []uint64) {
	t.Helper()
	if err := m.RunKernels(8_000_000); err != nil {
		t.Fatal(err)
	}
	blob, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var durs []uint64
	for d := 0; d < m.NumDevices(); d++ {
		for _, k := range m.GPU(d).Kernels() {
			durs = append(durs, k.Duration())
		}
	}
	return blob, durs
}

// TestMeshSnapshotRestoreReplaysBitIdentically extends the restore-≡-replay
// bar to the multi-GPU mesh: a 2-device mesh with cross-GPU traffic in both
// directions, snapshotted mid-flight with packets on the NVLink fabric,
// must replay bit-identically after restore.
func TestMeshSnapshotRestoreReplaysBitIdentically(t *testing.T) {
	cfg := config.Small()
	cfg.Seed = 7

	ref, err := New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	launchCrossStreams(t, ref)

	cut, err := New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cut.Close()
	launchCrossStreams(t, cut)

	const snapAt = 900
	cut.RunFor(snapAt)
	if cut.quiet() {
		t.Fatalf("mesh quiet at cycle %d; snapshot point is not mid-traffic", snapAt)
	}
	blob, err := cut.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	rest, err := Restore(cfg, 2, blob, engine.RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rest.Close()
	if rest.Now() != cut.Now() {
		t.Fatalf("restored global clock %d, want %d", rest.Now(), cut.Now())
	}

	refEnd, refDurs := meshFinalState(t, ref)
	cutEnd, cutDurs := meshFinalState(t, cut)
	restEnd, restDurs := meshFinalState(t, rest)

	if !reflect.DeepEqual(refDurs, cutDurs) {
		t.Fatalf("snapshotting perturbed the mesh: durations %v vs %v", refDurs, cutDurs)
	}
	if !reflect.DeepEqual(refDurs, restDurs) {
		t.Fatalf("restored mesh diverged: durations %v vs %v", refDurs, restDurs)
	}
	if string(refEnd) != string(cutEnd) {
		t.Fatal("snapshotting perturbed the mesh: end-of-run snapshots differ")
	}
	if string(refEnd) != string(restEnd) {
		t.Fatal("restored mesh diverged: end-of-run snapshots differ")
	}
}

// TestMeshRestoreRejectsMismatches pins the typed failures at the mesh
// level: wrong base config and wrong device count must both fail fast.
func TestMeshRestoreRejectsMismatches(t *testing.T) {
	cfg := config.Small()
	cfg.Seed = 7
	m, err := New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	launchCrossStreams(t, m)
	m.RunFor(500)
	blob, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.Seed++
	if _, err := Restore(other, 2, blob, engine.RestoreOptions{}); !errors.Is(err, snap.ErrConfigMismatch) {
		t.Fatalf("mismatched base config: got %v, want ErrConfigMismatch", err)
	}
	if _, err := Restore(cfg, 3, blob, engine.RestoreOptions{}); !errors.Is(err, snap.ErrCorrupt) {
		t.Fatalf("mismatched device count: got %v, want ErrCorrupt", err)
	}
}
