// Coverage for the two paths the telemetry detector leans on hardest: the
// trace ring's wraparound edges and the Snapshot.Find* miss behavior.

package probe

import "testing"

// TestTraceWraparoundEdges walks the ring through its boundary states: an
// exactly-full ring (no wrap yet), the first overwrite, and a wrap position
// in the middle of the ring — checking order, length, and drop count at each.
func TestTraceWraparoundEdges(t *testing.T) {
	tr := newTrace(4)
	id := tr.Track("t")

	for i := uint64(0); i < 4; i++ {
		tr.Instant(id, "e", i)
	}
	if got := tr.Events(); len(got) != 4 || got[0].TS != 0 || got[3].TS != 3 {
		t.Fatalf("exactly-full ring: events %v", got)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("exactly-full ring dropped %d, want 0", tr.Dropped())
	}

	// One more event overwrites the oldest: order must start at TS=1.
	tr.Instant(id, "e", 4)
	ev := tr.Events()
	if len(ev) != 4 || tr.Dropped() != 1 {
		t.Fatalf("first overwrite: %d events, %d dropped", len(ev), tr.Dropped())
	}
	for i, e := range ev {
		if want := uint64(1 + i); e.TS != want {
			t.Fatalf("after first overwrite, event %d has ts %d, want %d", i, e.TS, want)
		}
	}

	// Two more land the write cursor mid-ring; order must still be oldest
	// first across the seam.
	tr.Instant(id, "e", 5)
	tr.Instant(id, "e", 6)
	ev = tr.Events()
	if len(ev) != 4 || tr.Dropped() != 3 {
		t.Fatalf("mid-ring cursor: %d events, %d dropped", len(ev), tr.Dropped())
	}
	for i, e := range ev {
		if want := uint64(3 + i); e.TS != want {
			t.Fatalf("mid-ring cursor, event %d has ts %d, want %d", i, e.TS, want)
		}
	}

	// Several full revolutions later the invariants still hold.
	for i := uint64(7); i < 7+40; i++ {
		tr.Instant(id, "e", i)
	}
	ev = tr.Events()
	if len(ev) != 4 || tr.Dropped() != 43 {
		t.Fatalf("after revolutions: %d events, %d dropped", len(ev), tr.Dropped())
	}
	if ev[0].TS != 43 || ev[3].TS != 46 {
		t.Fatalf("after revolutions: window [%d, %d], want [43, 46]", ev[0].TS, ev[3].TS)
	}
}

// TestSnapshotFindMisses pins the miss contract of every Find* helper: a
// name that was never registered returns the zero stat and ok=false, on
// both a populated snapshot and the empty snapshot of a nil registry.
func TestSnapshotFindMisses(t *testing.T) {
	r := NewRegistry()
	r.Counter("noc/l0/in0/grants").Add(3)
	r.Gauge("noc/l0/queue_depth").Set(2)
	r.Hist("noc/l0/queue_wait").Observe(10)
	r.Occupancy("noc/l0/occupancy", 4).AddBusy(8)

	for name, s := range map[string]Snapshot{
		"populated": r.Snapshot(100),
		"nil":       (*Registry)(nil).Snapshot(100),
	} {
		if c, ok := s.FindCounter("noc/l1/in0/grants"); ok || c != (CounterStat{}) {
			t.Errorf("%s: FindCounter miss = %+v, %v", name, c, ok)
		}
		if g, ok := s.FindGauge("noc/l1/queue_depth"); ok || g != (GaugeStat{}) {
			t.Errorf("%s: FindGauge miss = %+v, %v", name, g, ok)
		}
		if h, ok := s.FindHist("noc/l1/queue_wait"); ok || h.Name != "" || h.Sum != 0 {
			t.Errorf("%s: FindHist miss = %+v, %v", name, h, ok)
		}
		if o, ok := s.FindOccupancy("noc/l1/occupancy"); ok || o != (OccStat{}) {
			t.Errorf("%s: FindOccupancy miss = %+v, %v", name, o, ok)
		}
	}

	// The hits still work, and carry the Units capacity telemetry
	// normalizes window rates with.
	s := r.Snapshot(100)
	if o, ok := s.FindOccupancy("noc/l0/occupancy"); !ok || o.Busy != 8 || o.Units != 4 {
		t.Fatalf("FindOccupancy hit = %+v, %v (want busy 8, units 4)", o, ok)
	}
}
