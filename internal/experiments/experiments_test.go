package experiments

import (
	"strings"
	"testing"

	"gpunoc/internal/config"
)

func smallCfg() config.Config {
	c := config.Small()
	return c
}

func quickOpts() Options { return Options{Scale: Quick, Seed: 5} }

func TestRunActivationsValidation(t *testing.T) {
	cfg := smallCfg()
	if _, err := runActivations(&cfg, []activation{{sm: -1, ops: 1}}); err == nil {
		t.Error("negative SM should fail")
	}
	if _, err := runActivations(&cfg, []activation{{sm: 0, ops: 1}, {sm: 0, ops: 1}}); err == nil {
		t.Error("duplicate SM should fail")
	}
}

func TestFig2ShapeHolds(t *testing.T) {
	cfg := smallCfg()
	f, err := Fig2(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFig2(f); err != nil {
		t.Error(err)
	}
	if len(f.Notes) == 0 || !strings.Contains(f.Notes[0], "SM1") {
		t.Errorf("notes = %v, want inferred mate SM1", f.Notes)
	}
}

func TestFig3And4ShapeHolds(t *testing.T) {
	cfg := smallCfg()
	f3, err := Fig3(&cfg, []int{0}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Series) != 1 || len(f3.Series[0].X) != cfg.NumTPCs()-1 {
		t.Fatalf("fig3 series malformed: %+v", f3.Series)
	}
	f4, err := Fig4(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range f4.Notes {
		if strings.Contains(n, "2/2 recovered groups match") {
			found = true
		}
	}
	if !found {
		t.Errorf("fig4 did not recover the topology: %v", f4.Notes)
	}
}

func TestFig5ShapeHolds(t *testing.T) {
	cfg := smallCfg()
	f, err := Fig5(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFig5(f); err != nil {
		t.Error(err)
	}
}

func TestFig6ShapeHolds(t *testing.T) {
	cfg := smallCfg()
	f, err := Fig6(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	s, ok := f.seriesByName("clock()")
	if !ok || len(s.X) != cfg.NumSMs() {
		t.Fatalf("clock survey covers %d SMs", len(s.X))
	}
	if len(f.Notes) != 2 {
		t.Errorf("notes = %v", f.Notes)
	}
}

func TestFig8ShapeHolds(t *testing.T) {
	cfg := smallCfg()
	f, err := Fig8(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFig8(f); err != nil {
		t.Error(err)
	}
}

func TestFig9ShapeHolds(t *testing.T) {
	cfg := smallCfg()
	f, err := Fig9(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	synced, ok := f.seriesByName("slot + local synchronization")
	if !ok || len(synced.Y) != 120 {
		t.Fatalf("trace has %d slots", len(synced.Y))
	}
	if err := CheckFig9(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFig10ShapeHolds(t *testing.T) {
	cfg := smallCfg()
	f, err := Fig10(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFig10(f, cfg.NumTPCs()); err != nil {
		t.Error(err)
	}
}

func TestFig11ShapeHolds(t *testing.T) {
	cfg := smallCfg()
	f, err := Fig11(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFig11(f); err != nil {
		t.Error(err)
	}
}

func TestFig13ShapeHolds(t *testing.T) {
	cfg := smallCfg()
	f, err := Fig13(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFig13(f); err != nil {
		t.Error(err)
	}
}

func TestFig14ShapeHolds(t *testing.T) {
	cfg := smallCfg()
	f, err := Fig14(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFig14(f); err != nil {
		t.Error(err)
	}
}

func TestFig15ShapeHolds(t *testing.T) {
	cfg := smallCfg()
	f, err := Fig15(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFig15(f); err != nil {
		t.Error(err)
	}
}

func TestSRRChannelDefeatShapeHolds(t *testing.T) {
	cfg := smallCfg()
	f, err := SRRChannelDefeat(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSRRChannelDefeat(f); err != nil {
		t.Error(err)
	}
}

func TestSRRTradeoffShapeHolds(t *testing.T) {
	cfg := smallCfg()
	f, err := SRRTradeoff(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSRRTradeoff(f); err != nil {
		t.Error(err)
	}
}

func TestTable1Renders(t *testing.T) {
	cfg := config.Volta()
	f := Table1(&cfg)
	if len(f.Rows) != 4 {
		t.Fatalf("table1 has %d rows", len(f.Rows))
	}
	text := f.Render()
	for _, frag := range []string{"1200MHz", "40 TPCs", "48 L2 slices", "24 MCs", "flit_size=40"} {
		if !strings.Contains(text, frag) {
			t.Errorf("table1 missing %q", frag)
		}
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	cfg := smallCfg()
	f, rows, err := Table2(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 || len(f.Rows) != 6 {
		t.Fatalf("table2 has %d rows", len(rows))
	}
	if err := CheckTable2(rows); err != nil {
		t.Error(err)
	}
}

func TestMPSOverhead(t *testing.T) {
	cfg := smallCfg()
	f, err := MPSOverhead(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 3 {
		t.Fatalf("%d rows", len(f.Rows))
	}
	// All skews must keep the channel working.
	for _, s := range f.Series {
		if s.Y[0] > 0.1 {
			t.Errorf("%s error rate %.3f", s.Name, s.Y[0])
		}
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{ID: "x", Title: "t", XLabel: "a", YLabel: "b",
		Header: []string{"h1", "h2"}, Rows: [][]string{{"v1", "v2"}}}
	f.addSeries("s", []float64{1}, []float64{2})
	f.note("hello %d", 7)
	out := f.Render()
	for _, frag := range []string{"== x: t ==", "h1 | h2", "v1 | v2", `series "s"`, "note: hello 7"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestNoiseExperimentShapeHolds(t *testing.T) {
	cfg := smallCfg()
	f, err := NoiseExperiment(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckNoise(f); err != nil {
		t.Error(err)
	}
}

func TestSenderWarpsAblation(t *testing.T) {
	cfg := smallCfg()
	f, err := SenderWarpsAblation(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 4 {
		t.Fatalf("%d rows", len(f.Rows))
	}
	// The paper's 5-warp operating point must work.
	s, ok := f.seriesByName("error rate")
	if !ok {
		t.Fatal("missing series")
	}
	for i, x := range s.X {
		if x == 5 && s.Y[i] > 0.1 {
			t.Errorf("5-warp sender error %.3f", s.Y[i])
		}
	}
}

func TestSlotAblationShapeHolds(t *testing.T) {
	cfg := smallCfg()
	f, err := SlotAblation(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSlotAblation(f); err != nil {
		t.Error(err)
	}
}

func TestSpeedupAblationShapeHolds(t *testing.T) {
	cfg := smallCfg()
	f, err := SpeedupAblation(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSpeedupAblation(f); err != nil {
		t.Error(err)
	}
}

func TestFigureCSV(t *testing.T) {
	f := &Figure{ID: "x", XLabel: "iterations", YLabel: "kbps"}
	f.addSeries("a,b", []float64{1, 2}, []float64{3.5, 4})
	csv := f.CSV()
	want := "series,iterations,kbps\n\"a,b\",1,3.5\n\"a,b\",2,4\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
	tbl := &Figure{Header: []string{"h\"1", "h2"}, Rows: [][]string{{"v1", "v,2"}}}
	csv = tbl.CSV()
	want = "\"h\"\"1\",h2\nv1,\"v,2\"\n"
	if csv != want {
		t.Errorf("table CSV = %q, want %q", csv, want)
	}
}

func TestClockFuzzExperimentShapeHolds(t *testing.T) {
	cfg := smallCfg()
	f, err := ClockFuzzExperiment(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckClockFuzz(f); err != nil {
		t.Error(err)
	}
}

func TestSideChannelExperimentShapeHolds(t *testing.T) {
	cfg := smallCfg()
	f, err := SideChannelExperiment(&cfg, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSideChannel(f); err != nil {
		t.Error(err)
	}
}
