package gpunoc

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment on the full
// Volta topology (or the small topology under -short), reports the headline
// values as custom metrics, and asserts the paper's qualitative shape via
// the experiment's Check function. Run everything with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers come from the calibrated simulator; the shapes (who wins,
// by what factor, where crossovers fall) are what reproduce the paper.

import (
	"testing"

	"gpunoc/internal/config"
	"gpunoc/internal/experiments"
)

func benchConfig(b *testing.B) config.Config {
	if testing.Short() {
		return config.Small()
	}
	return config.Volta()
}

func benchOpts() experiments.Options {
	return experiments.Options{Scale: experiments.Quick, Seed: 5}
}

// BenchmarkFig02_TPCReverseEngineering regenerates Fig 2: SM0's execution
// time against every co-activated SM, exposing the shared TPC channel.
func BenchmarkFig02_TPCReverseEngineering(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig2(&cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckFig2(f); err != nil {
			b.Fatal(err)
		}
		s := f.Series[0]
		peak := 0.0
		for _, y := range s.Y {
			if y > peak {
				peak = y
			}
		}
		b.ReportMetric(peak, "peak-slowdown-x")
	}
}

// BenchmarkFig03_GPCReverseEngineering regenerates Fig 3 for TPC0 (and TPC5
// on the full topology): mean reference execution time per probe TPC.
func BenchmarkFig03_GPCReverseEngineering(b *testing.B) {
	cfg := benchConfig(b)
	refs := []int{0}
	if cfg.NumTPCs() > 5 {
		refs = append(refs, 5)
	}
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig3(&cfg, refs, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Series) != len(refs) {
			b.Fatalf("series = %d", len(f.Series))
		}
	}
}

// BenchmarkFig04_CoreMapping regenerates Fig 4: the recovered TPC->GPC map.
func BenchmarkFig04_CoreMapping(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig4(&cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(f.Rows)), "groups")
	}
}

// BenchmarkFig05_ContentionCharacteristics regenerates Fig 5: the read/write
// asymmetry on TPC and GPC channels.
func BenchmarkFig05_ContentionCharacteristics(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig5(&cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckFig5(f); err != nil {
			b.Fatal(err)
		}
		for _, s := range f.Series {
			if s.Name == "GPC read" {
				b.ReportMetric(s.Y[len(s.Y)-1], "gpc-read-slowdown-x")
			}
			if s.Name == "TPC write" {
				b.ReportMetric(s.Y[len(s.Y)-1], "tpc-write-slowdown-x")
			}
		}
	}
}

// BenchmarkFig06_ClockSurvey regenerates Fig 6 and the §4.1 skew statistics.
func BenchmarkFig06_ClockSurvey(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(&cfg, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig08_MuxSharing regenerates Fig 8: SM0's time versus contender
// traffic fraction, same-TPC vs different-TPC.
func BenchmarkFig08_MuxSharing(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig8(&cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckFig8(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig09_SyncTrace regenerates Fig 9: the '0101...' latency trace
// with and without periodic clock synchronization.
func BenchmarkFig09_SyncTrace(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(&cfg, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10_CovertChannel regenerates Fig 10: bitrate and error rate
// over the iteration sweep for TPC, multi-TPC, GPC, and multi-GPC channels.
// This is the headline experiment (the ~24 Mbps multi-TPC point).
func BenchmarkFig10_CovertChannel(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig10(&cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckFig10(f, cfg.NumTPCs()); err != nil {
			b.Fatal(err)
		}
		for _, s := range f.Series {
			switch s.Name {
			case "multi-TPC bitrate (kbps)":
				b.ReportMetric(s.Y[3]*1e3/1e6, "multi-tpc-Mbps")
			case "TPC bitrate (kbps)":
				b.ReportMetric(s.Y[3], "tpc-kbps")
			case "multi-GPC bitrate (kbps)":
				b.ReportMetric(s.Y[3]*1e3/1e6, "multi-gpc-Mbps")
			}
		}
	}
}

// BenchmarkFig11_GPCLeakage regenerates Fig 11: GPC-channel leakage slope
// for same-GPC vs different-GPC senders.
func BenchmarkFig11_GPCLeakage(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig11(&cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckFig11(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13_Coalescing regenerates Fig 13: error rate across the four
// sender/receiver coalescing combinations.
func BenchmarkFig13_Coalescing(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig13(&cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckFig13(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14_MultiLevel regenerates Fig 14: the 2-bit channel trace and
// its bandwidth gain over the binary channel (§5: ~1.6x).
func BenchmarkFig14_MultiLevel(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig14(&cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckFig14(f); err != nil {
			b.Fatal(err)
		}
		for _, s := range f.Series {
			if s.Name == "bandwidth gain" {
				b.ReportMetric(s.Y[0], "gain-x")
			}
		}
	}
}

// BenchmarkFig15_Arbitration regenerates Fig 15 (the §6 simulation): SM0's
// time under RR/CRR/SRR as SM1's traffic grows.
func BenchmarkFig15_Arbitration(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig15(&cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckFig15(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_Comparison regenerates the measurable half of Table 2: all
// channels (ours plus the prior-work baselines) on one GPU.
func BenchmarkTable2_Comparison(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Table2(&cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckTable2(rows); err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Name == "GPU multi-TPC channel (this work)" {
				b.ReportMetric(r.Kbps/1e3, "multi-tpc-Mbps")
			}
		}
	}
}

// BenchmarkSRRDefeat demonstrates the countermeasure end to end: the channel
// works under RR and collapses under SRR.
func BenchmarkSRRDefeat(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.SRRChannelDefeat(&cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckSRRChannelDefeat(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSRRTradeoff quantifies the §6 cost of strict round-robin on
// memory-bound vs compute-bound kernels.
func BenchmarkSRRTradeoff(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.SRRTradeoff(&cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckSRRTradeoff(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMPSOverhead quantifies the §2.2 one-time launch-skew cost.
func BenchmarkMPSOverhead(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MPSOverhead(&cfg, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (cycles/sec of
// the full Volta model under covert-channel load) — the substrate ablation.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := benchConfig(b)
	p, err := Calibrate(&cfg, ChannelParams{Kind: TPCChannel, Iterations: 4, SyncPeriod: 16, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	payload, err := BytesToSymbols([]byte{0xA5, 0x5A}, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		tr, err := NewTPCTransmission(&cfg, payload, []int{0}, p)
		if err != nil {
			b.Fatal(err)
		}
		res, err := tr.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkNoise regenerates the §5 noise study: channel quality under a
// third kernel's L2 traffic.
func BenchmarkNoise(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.NoiseExperiment(&cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckNoise(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSenderWarps sweeps the sender warp count (why the paper
// uses 5 warps).
func BenchmarkAblationSenderWarps(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SenderWarpsAblation(&cfg, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSlot sweeps the timing-slot length (the §4.4 guidance).
func BenchmarkAblationSlot(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.SlotAblation(&cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckSlotAblation(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSpeedup sweeps the GPC reply-channel speedup, the
// calibration surface behind Fig 5b's 2.14x.
func BenchmarkAblationSpeedup(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.SpeedupAblation(&cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckSpeedupAblation(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClockFuzz regenerates the §6 clock-fuzzing discussion: the
// countermeasure degrades the channel but a wider slot recovers it.
func BenchmarkClockFuzz(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.ClockFuzzExperiment(&cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckClockFuzz(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSideChannel regenerates the §5 side-channel sketch: the linear
// correlation between a victim's L2 traffic and the spy's NoC latency.
func BenchmarkSideChannel(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		f, err := experiments.SideChannelExperiment(&cfg, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckSideChannel(f); err != nil {
			b.Fatal(err)
		}
	}
}
