// Package lint is gpunoc's in-tree static-analysis suite. It enforces the
// invariants docs/ARCHITECTURE.md promises — the import DAG, wall-clock and
// global-RNG freedom, the single-goroutine tick model, and the absence of
// package-level mutable state — so the simulator stays a pure function of
// config.Config as the engine grows. The suite is built only on the standard
// library (go/ast, go/parser, go/token, go/types, go/importer); the module
// stays dependency-free.
//
// A finding can be waived at a specific line with an inline directive:
//
//	//lint:allow <rule> <reason>
//
// placed on the offending line or the line directly above it. The reason is
// mandatory, the rule name must be one of the registered analyzers, and an
// unused directive is itself a finding — waivers cannot silently outlive the
// code they excuse.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the rule (analyzer) that fired, and
// a human-readable message.
type Diagnostic struct {
	Pos  token.Position `json:"pos"`
	Rule string         `json:"rule"`
	Msg  string         `json:"msg"`
}

// String renders the diagnostic in the canonical "file:line: [rule] message"
// form used by the driver and the golden fixture tests.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Msg)
}

// Analyzer is one invariant checker. Exactly one of the two hooks is set:
// Run inspects a single loaded package and reports findings through the Pass;
// RunProgram sees every loaded package at once, plus the shared call graph,
// for analyses (reachability, interprocedural dataflow) that do not decompose
// per package. Whole-program analyzers only see the packages the driver
// loaded — running them on a sub-pattern that excludes their declared entry
// points turns them into no-ops, which is why CI always lints "./...".
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(*Pass)
	RunProgram func(*ProgramPass)
}

// Pass is the per-(package, analyzer) reporting context handed to Analyzer.Run.
type Pass struct {
	Pkg   *Package
	Rules *Rules

	rule  string
	diags []Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:  p.Pkg.Fset.Position(pos),
		Rule: p.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass is the whole-program reporting context handed to
// Analyzer.RunProgram: every loaded package, the rule tables, and the shared
// type-based call graph (built once per Run, lazily, from the packages that
// type-checked).
type ProgramPass struct {
	Pkgs  []*Package
	Rules *Rules
	Graph *CallGraph
	Fset  *token.FileSet

	rule     string
	diags    []Diagnostic
	disabled map[string]bool
}

// Disable records that the current analyzer ran over an incomplete package
// set (some declared entry points are absent — a sub-pattern lint). Real
// findings are still reported, but the driver exempts the analyzer's
// //lint:allow directives from the unused-waiver finding: with reachability
// computed from a partial call graph, an idle waiver is not evidence of rot.
// A full "./..." run resolves every root and re-arms the check.
func (p *ProgramPass) Disable() {
	if p.disabled == nil {
		p.disabled = make(map[string]bool)
	}
	p.disabled[p.rule] = true
}

// Report records a finding at pos.
func (p *ProgramPass) Report(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:  p.Fset.Position(pos),
		Rule: p.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in a fixed order. The analyzer names are
// the rule names accepted by //lint:allow directives.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		layeringAnalyzer(),
		determinismAnalyzer(),
		tickModelAnalyzer(),
		purityAnalyzer(),
		godocAnalyzer(),
		shardSafetyAnalyzer(),
		hotAllocAnalyzer(),
	}
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	file      string
	line      int
	rule      string
	malformed string // non-empty: why the directive itself is a finding
	used      bool
}

// allowPrefix is the directive marker. Like //go:build, the canonical form
// has no space after "//", but a spaced form is tolerated.
const allowPrefix = "lint:allow"

// collectAllows parses every //lint:allow directive in the package.
func collectAllows(pkg *Package) []*allowDirective {
	var out []*allowDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &allowDirective{file: pos.Filename, line: pos.Line}
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				switch {
				case len(fields) == 0:
					d.malformed = "missing rule and reason"
				case len(fields) == 1:
					d.rule = fields[0]
					d.malformed = "missing reason"
				default:
					d.rule = fields[0]
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// Run applies every analyzer to every package (whole-program analyzers run
// once over the full package set), filters findings through the //lint:allow
// directives, appends directive-hygiene findings (malformed, unknown rule,
// unused), and returns the surviving diagnostics sorted by file, line, rule,
// and message. Directives are collected across all packages before any
// filtering, so a waiver suppresses a whole-program finding exactly as it
// suppresses a per-package one: by file and line.
func Run(pkgs []*Package, rules *Rules, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	needGraph := false
	for _, a := range analyzers {
		known[a.Name] = true
		if a.RunProgram != nil {
			needGraph = true
		}
	}

	var allows []*allowDirective
	for _, pkg := range pkgs {
		allows = append(allows, collectAllows(pkg)...)
	}

	inactive := map[string]bool{}
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Pkg: pkg, Rules: rules, rule: a.Name}
			a.Run(pass)
			raw = append(raw, pass.diags...)
		}
	}
	if needGraph && len(pkgs) > 0 {
		pp := &ProgramPass{
			Pkgs:  pkgs,
			Rules: rules,
			Graph: BuildCallGraph(pkgs),
			Fset:  pkgs[0].Fset,
		}
		for _, a := range analyzers {
			if a.RunProgram == nil {
				continue
			}
			pp.rule = a.Name
			a.RunProgram(pp)
		}
		raw = append(raw, pp.diags...)
		inactive = pp.disabled
	}

	var out []Diagnostic
	for _, d := range raw {
		if dir := matchingAllow(allows, d); dir != nil {
			dir.used = true
			continue
		}
		out = append(out, d)
	}
	for _, dir := range allows {
		pos := token.Position{Filename: dir.file, Line: dir.line}
		switch {
		case dir.malformed != "":
			out = append(out, Diagnostic{Pos: pos, Rule: "lint",
				Msg: fmt.Sprintf("malformed //lint:allow directive: %s (want //lint:allow <rule> <reason>)", dir.malformed)})
		case !known[dir.rule]:
			out = append(out, Diagnostic{Pos: pos, Rule: "lint",
				Msg: fmt.Sprintf("//lint:allow names unknown rule %q (known: %s)", dir.rule, ruleNames(analyzers))})
		case !dir.used && !inactive[dir.rule]:
			out = append(out, Diagnostic{Pos: pos, Rule: "lint",
				Msg: fmt.Sprintf("unused //lint:allow %s directive (nothing on this or the next line triggers the rule)", dir.rule)})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return out
}

// matchingAllow returns the directive suppressing d: same file and rule, on
// the diagnostic's line or the line directly above it.
func matchingAllow(allows []*allowDirective, d Diagnostic) *allowDirective {
	for _, dir := range allows {
		if dir.malformed != "" || dir.rule != d.Rule || dir.file != d.Pos.Filename {
			continue
		}
		if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
			return dir
		}
	}
	return nil
}

func ruleNames(analyzers []*Analyzer) string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}
