// Package arb implements the mux arbitration policies studied in the paper:
// the baseline locally-fair round-robin (RR), coarse-grain round-robin (CRR,
// per-warp granting), the strict round-robin countermeasure (SRR, temporal
// partitioning of slots regardless of demand, §6), age-based arbitration, and
// a fixed-priority reference. Arbiters are used by every shared link in the
// NoC; swapping RR for SRR is what disables the covert channel in Fig 15.
package arb

import (
	"fmt"

	"gpunoc/internal/config"
	"gpunoc/internal/packet"
	"gpunoc/internal/probe"
)

// Arbiter selects which input of a shared mux is granted next. Grant is
// called at each grant opportunity (when the downstream link is free) with
// the head packet of every input queue (nil when that input is empty). It
// returns the granted input index, or -1 when no grant is issued this cycle
// (possible under SRR, whose slots are statically owned).
type Arbiter interface {
	Grant(now uint64, heads []*packet.Packet) int
	// Policy reports the policy this arbiter implements.
	Policy() config.ArbPolicy
}

// New builds an arbiter for n inputs under the given policy. crrHold bounds
// how many packets a CRR grant may hold for one warp; srrSlot is the strict
// round-robin slot length in cycles (use packet.DataFlits to give every
// owner time to serialize a data packet).
func New(policy config.ArbPolicy, n, crrHold, srrSlot int) (Arbiter, error) {
	if n <= 0 {
		return nil, fmt.Errorf("arb: non-positive input count %d", n)
	}
	switch policy {
	case config.ArbRR:
		return &roundRobin{n: n, last: n - 1}, nil
	case config.ArbCRR:
		if crrHold <= 0 {
			return nil, fmt.Errorf("arb: non-positive CRR hold limit %d", crrHold)
		}
		return &coarseRR{rr: roundRobin{n: n, last: n - 1}, holdLimit: crrHold}, nil
	case config.ArbSRR:
		if srrSlot <= 0 {
			return nil, fmt.Errorf("arb: non-positive SRR slot length %d", srrSlot)
		}
		return &strictRR{n: n, slot: uint64(srrSlot)}, nil
	case config.ArbAge:
		return &ageBased{}, nil
	case config.ArbFixed:
		return &fixedPriority{}, nil
	default:
		return nil, fmt.Errorf("arb: unknown policy %v", policy)
	}
}

// roundRobin grants the next requesting input after the previously granted
// one. It is work-conserving: whenever any input has a packet, a grant is
// issued. This local fairness is exactly what leaks contention (§4.2).
type roundRobin struct {
	n    int
	last int
}

func (a *roundRobin) Policy() config.ArbPolicy { return config.ArbRR }

func (a *roundRobin) Grant(_ uint64, heads []*packet.Packet) int {
	for i := 1; i <= a.n; i++ {
		idx := (a.last + i) % a.n
		if heads[idx] != nil {
			a.last = idx
			return idx
		}
	}
	return -1
}

// coarseRR arbitrates per warp rather than per packet: once an input is
// granted, the grant is held while its head packet belongs to the same warp
// memory operation, up to holdLimit packets. The paper shows this
// network-coalescing does NOT remove the covert channel (Fig 15) because the
// total channel occupancy is unchanged.
type coarseRR struct {
	rr        roundRobin
	holdLimit int

	holding  bool
	heldIn   int
	heldTag  packet.WarpTag
	heldUsed int
}

func (a *coarseRR) Policy() config.ArbPolicy { return config.ArbCRR }

func (a *coarseRR) Grant(now uint64, heads []*packet.Packet) int {
	if a.holding {
		h := heads[a.heldIn]
		if h != nil && h.Tag == a.heldTag && a.heldUsed < a.holdLimit {
			a.heldUsed++
			return a.heldIn
		}
		a.holding = false
	}
	idx := a.rr.Grant(now, heads)
	if idx < 0 {
		return -1
	}
	a.holding = true
	a.heldIn = idx
	a.heldTag = heads[idx].Tag
	a.heldUsed = 1
	return idx
}

// strictRR statically assigns time slots to inputs: during input i's slot
// only input i may be granted, even if it has nothing to send. The unused
// bandwidth of an idle sender is therefore invisible to the other input,
// which removes the covert channel at the cost of up to n-fold bandwidth
// loss for a lone memory-intensive kernel (§6).
type strictRR struct {
	n    int
	slot uint64
}

func (a *strictRR) Policy() config.ArbPolicy { return config.ArbSRR }

func (a *strictRR) Grant(now uint64, heads []*packet.Packet) int {
	owner := int(now/a.slot) % a.n
	if heads[owner] != nil {
		return owner
	}
	return -1
}

// Owner reports which input owns the slot at the given cycle; exposed for
// tests and the Fig 15 analysis.
func (a *strictRR) Owner(now uint64) int { return int(now/a.slot) % a.n }

// ageBased grants the oldest packet (smallest issue cycle). Globally fair,
// but contending packets generated at similar times have similar ages, so it
// does not mitigate the covert channel (§6).
type ageBased struct{}

func (a *ageBased) Policy() config.ArbPolicy { return config.ArbAge }

func (a *ageBased) Grant(_ uint64, heads []*packet.Packet) int {
	best := -1
	for i, h := range heads {
		if h == nil {
			continue
		}
		if best == -1 || h.IssueCycle < heads[best].IssueCycle ||
			(h.IssueCycle == heads[best].IssueCycle && i < best) {
			best = i
		}
	}
	return best
}

// fixedPriority always grants the lowest-numbered requesting input. Used as
// a starvation-prone reference point in tests.
type fixedPriority struct{}

func (a *fixedPriority) Policy() config.ArbPolicy { return config.ArbFixed }

func (a *fixedPriority) Grant(_ uint64, heads []*packet.Packet) int {
	for i, h := range heads {
		if h != nil {
			return i
		}
	}
	return -1
}

// counting wraps an arbiter and attributes every grant opportunity to
// per-input probe counters: the granted input's grant counter increments,
// and every other input that had a head packet but was passed over counts a
// deny. Denies are exactly the cycles a queue head waits because a shared
// mux is serving someone else — the paper's leakage signal, localized per
// input.
type counting struct {
	inner  Arbiter
	grants []*probe.Counter
	denies []*probe.Counter
}

// Counting instruments a with per-input grant/deny counters. grants and
// denies must each have one counter per mux input (probe.Registry hands out
// nil counters when instrumentation is disabled; those stay no-ops). The
// wrapper preserves the inner arbiter's policy and decisions exactly.
func Counting(a Arbiter, grants, denies []*probe.Counter) Arbiter {
	return &counting{inner: a, grants: grants, denies: denies}
}

func (a *counting) Policy() config.ArbPolicy { return a.inner.Policy() }

func (a *counting) Grant(now uint64, heads []*packet.Packet) int {
	g := a.inner.Grant(now, heads)
	for i, h := range heads {
		if h == nil || i >= len(a.denies) {
			continue
		}
		if i == g {
			a.grants[i].Inc()
		} else {
			a.denies[i].Inc()
		}
	}
	return g
}
