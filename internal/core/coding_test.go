package core

import (
	"math/rand"
	"reflect"
	"testing"
)

func mustDefaults(t *testing.T, p Params) Params {
	t.Helper()
	p2, err := p.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	return p2
}

func bitsOf(pattern string) []Symbol {
	out := make([]Symbol, len(pattern))
	for i, c := range pattern {
		if c == '1' {
			out[i] = 1
		}
	}
	return out
}

func TestCodingParamValidation(t *testing.T) {
	bad := []Params{
		{Coding: CodingNone, Repeat: 3},
		{Coding: CodingRepetition, Repeat: 2},
		{Coding: CodingRepetition, Repeat: -1},
		{Coding: CodingHamming74, BitsPerSymbol: 2},
		{Coding: CodingHamming74, Repeat: 3},
		{Coding: Coding(99)},
		{PreambleSymbols: -1},
		{ResyncGuardSlots: 2}, // guard without preamble
	}
	for i, p := range bad {
		if _, err := p.withDefaults(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, p)
		}
	}
	p := mustDefaults(t, Params{Coding: CodingRepetition})
	if p.Repeat != 3 {
		t.Errorf("default repetition factor = %d, want 3", p.Repeat)
	}
}

func TestCodingNoneIsIdentity(t *testing.T) {
	p := mustDefaults(t, Params{})
	data := bitsOf("1011001")
	wire := p.wireSymbols(data)
	if !reflect.DeepEqual(wire, data) {
		t.Errorf("uncoded wire %v != data %v", wire, data)
	}
	if got := p.recoverData(wire, len(data)); !reflect.DeepEqual(got, data) {
		t.Errorf("uncoded recover %v != data %v", got, data)
	}
	if p.WireLen(7) != 7 {
		t.Errorf("uncoded WireLen(7) = %d", p.WireLen(7))
	}
}

func TestRepetitionRoundTripAndCorrection(t *testing.T) {
	p := mustDefaults(t, Params{Coding: CodingRepetition, Repeat: 3})
	data := bitsOf("10110")
	wire := p.wireSymbols(data)
	if len(wire) != 15 {
		t.Fatalf("wire length %d, want 15", len(wire))
	}
	if got := p.recoverData(wire, len(data)); !reflect.DeepEqual(got, data) {
		t.Fatalf("clean round trip failed: %v", got)
	}
	// One flipped copy per symbol is always corrected. Copies are
	// interleaved, so copy 1 of symbol i sits at len(data)+i.
	for i := range data {
		corrupt := append([]Symbol(nil), wire...)
		corrupt[len(data)+i] ^= 1
		if got := p.recoverData(corrupt, len(data)); !reflect.DeepEqual(got, data) {
			t.Errorf("single error in symbol %d not corrected: %v", i, got)
		}
	}
}

func TestRepetitionMultiLevel(t *testing.T) {
	p := mustDefaults(t, Params{Coding: CodingRepetition, Repeat: 3, BitsPerSymbol: 2})
	data := []Symbol{0, 3, 1, 2}
	wire := p.wireSymbols(data)
	wire[len(data)+1] = 0 // corrupt the second copy of the 3
	if got := p.recoverData(wire, len(data)); !reflect.DeepEqual(got, data) {
		t.Errorf("multi-level majority vote failed: %v", got)
	}
}

func TestHammingRoundTripAllNibbles(t *testing.T) {
	p := mustDefaults(t, Params{Coding: CodingHamming74})
	for nibble := 0; nibble < 16; nibble++ {
		data := make([]Symbol, 4)
		for j := range data {
			data[j] = Symbol(nibble >> j & 1)
		}
		wire := p.wireSymbols(data)
		if len(wire) != 7 {
			t.Fatalf("wire length %d, want 7", len(wire))
		}
		if got := p.recoverData(wire, 4); !reflect.DeepEqual(got, data) {
			t.Fatalf("nibble %d round trip failed: sent %v got %v", nibble, data, got)
		}
		// Every single wire-bit error must be corrected.
		for b := 0; b < 7; b++ {
			corrupt := append([]Symbol(nil), wire...)
			corrupt[b] ^= 1
			if got := p.recoverData(corrupt, 4); !reflect.DeepEqual(got, data) {
				t.Errorf("nibble %d: error at wire bit %d not corrected: %v", nibble, b, got)
			}
		}
	}
}

func TestHammingPartialNibble(t *testing.T) {
	p := mustDefaults(t, Params{Coding: CodingHamming74})
	data := bitsOf("101101") // 6 bits: one full nibble + 2 padded
	wire := p.wireSymbols(data)
	if len(wire) != 14 {
		t.Fatalf("wire length %d, want 14", len(wire))
	}
	if got := p.recoverData(wire, len(data)); !reflect.DeepEqual(got, data) {
		t.Errorf("padded round trip failed: %v", got)
	}
	if p.WireLen(6) != 14 {
		t.Errorf("WireLen(6) = %d, want 14", p.WireLen(6))
	}
}

func TestHammingMinimumDistance(t *testing.T) {
	// The code is only single-error-correcting if codewords are pairwise at
	// Hamming distance >= 3.
	cw := hammingCodewords()
	for i := 0; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			if d := popcount7(cw[i] ^ cw[j]); d < 3 {
				t.Errorf("codewords %d and %d at distance %d", i, j, d)
			}
		}
	}
}

func TestPreambleAlignment(t *testing.T) {
	p := mustDefaults(t, Params{PreambleSymbols: 8, ResyncGuardSlots: 4})
	data := bitsOf("1100101")
	wire := p.wireSymbols(data)
	if len(wire) != 8+7 {
		t.Fatalf("wire length %d, want 15", len(wire))
	}
	// A receiver that locked late sees garbage slots before the stream.
	for shift := 0; shift <= p.ResyncGuardSlots; shift++ {
		shifted := append(make([]Symbol, shift), wire...)
		if got := p.recoverData(shifted, len(data)); !reflect.DeepEqual(got, data) {
			t.Errorf("shift %d: recovered %v, want %v", shift, got, data)
		}
	}
}

func TestPreambleAlignmentUnderBitErrors(t *testing.T) {
	// Alignment must survive a few corrupted preamble slots: the correlation
	// peak at the true offset still dominates.
	p := mustDefaults(t, Params{PreambleSymbols: 16, ResyncGuardSlots: 4, Coding: CodingRepetition, Repeat: 3})
	data := bitsOf("10110")
	wire := p.wireSymbols(data)
	rng := rand.New(rand.NewSource(9))
	shifted := append([]Symbol{0, 0}, wire...)
	for k := 0; k < 3; k++ {
		shifted[2+rng.Intn(p.PreambleSymbols)] ^= 1
	}
	if got := p.recoverData(shifted, len(data)); !reflect.DeepEqual(got, data) {
		t.Errorf("noisy alignment failed: %v, want %v", got, data)
	}
}

func TestRecoverDataTruncatedStream(t *testing.T) {
	p := mustDefaults(t, Params{Coding: CodingRepetition, Repeat: 3})
	data := bitsOf("1011")
	wire := p.wireSymbols(data)
	// Copies are interleaved, so a cut mid-stream still leaves at least one
	// copy of the leading symbols: 7 wire symbols = copy 0 of everything
	// plus copy 1 of the first three, and every symbol still decodes.
	got := p.recoverData(wire[:7], len(data))
	if !reflect.DeepEqual(got, data) {
		t.Errorf("truncated recover %v, want %v", got, data)
	}
	// A cut inside copy 0 loses the trailing symbols entirely; the decoder
	// must omit them (the caller counts missing symbols as errors), not
	// fabricate values.
	got = p.recoverData(wire[:3], len(data))
	if !reflect.DeepEqual(got, data[:3]) {
		t.Errorf("hard-truncated recover %v, want %v", got, data[:3])
	}
}

func TestInterleavingCorrectsBurstErrors(t *testing.T) {
	// The whole point of interleaving the coded stream: a burst of
	// consecutive bad wire slots — the shape noise kernels and resync
	// transients produce — spreads across vote groups and codewords, so
	// each one sees at most a single error and corrects it.
	rep := mustDefaults(t, Params{Coding: CodingRepetition, Repeat: 3})
	data := bitsOf("10110100")
	wire := rep.wireSymbols(data)
	for start := 0; start+5 <= len(wire); start++ {
		corrupt := append([]Symbol(nil), wire...)
		for k := 0; k < 5; k++ {
			corrupt[start+k] ^= 1
		}
		if got := rep.recoverData(corrupt, len(data)); !reflect.DeepEqual(got, data) {
			t.Errorf("repetition: burst at %d not corrected: %v", start, got)
		}
	}
	ham := mustDefaults(t, Params{Coding: CodingHamming74})
	data = bitsOf("1011010011100101") // 4 codewords
	wire = ham.wireSymbols(data)
	for start := 0; start+4 <= len(wire); start++ {
		corrupt := append([]Symbol(nil), wire...)
		for k := 0; k < 4; k++ {
			corrupt[start+k] ^= 1
		}
		if got := ham.recoverData(corrupt, len(data)); !reflect.DeepEqual(got, data) {
			t.Errorf("hamming: burst at %d not corrected: %v", start, got)
		}
	}
}

func TestCodedTransmissionOverSmallConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("full transmission")
	}
	cfg := fastCfg()
	for _, coding := range []Coding{CodingRepetition, CodingHamming74} {
		p := Params{Kind: TPCChannel, Iterations: 4, SyncPeriod: 8,
			Coding: coding, PreambleSymbols: 8, ResyncGuardSlots: 2, Seed: 5}
		p, err := Calibrate(&cfg, p, 16)
		if err != nil {
			t.Fatalf("%v: calibrate: %v", coding, err)
		}
		payload := bitsOf("1011001110001011")
		tr, err := NewTPCTransmission(&cfg, payload, []int{0}, p)
		if err != nil {
			t.Fatalf("%v: %v", coding, err)
		}
		res, err := tr.Run()
		if err != nil {
			t.Fatalf("%v: run: %v", coding, err)
		}
		if res.SymbolsSent != len(payload) {
			t.Errorf("%v: SymbolsSent %d counts wire symbols, want data symbols %d",
				coding, res.SymbolsSent, len(payload))
		}
		if res.ErrorRate > 0.05 {
			t.Errorf("%v: quiet-GPU coded error rate %.3f, want ~0", coding, res.ErrorRate)
		}
	}
}
