package mem

import (
	"testing"
	"testing/quick"

	"gpunoc/internal/config"
	"gpunoc/internal/packet"
)

type sink struct {
	pkts  []*packet.Packet
	times []uint64
}

func (s *sink) deliver(now uint64, p *packet.Packet) {
	s.pkts = append(s.pkts, p)
	s.times = append(s.times, now)
}

func smallCfg() config.Config {
	c := config.Small()
	c.L2ServiceJitter = 0 // deterministic latency for unit tests
	return c
}

func mkPartition(t *testing.T, cfg config.Config) (*Partition, *sink) {
	t.Helper()
	var s sink
	p, err := NewPartition(&cfg, s.deliver)
	if err != nil {
		t.Fatal(err)
	}
	return p, &s
}

func req(id uint64, kind packet.Kind, addr uint64, slice int) *packet.Packet {
	return &packet.Packet{ID: id, Kind: kind, Addr: addr, Slice: slice, Tag: packet.WarpTag{SM: 0, Warp: 0, Op: id}}
}

func runUntilIdle(p *Partition, start uint64) uint64 {
	now := start
	for ; !p.Idle(); now++ {
		p.Tick(now)
	}
	return now
}

func TestNewPartitionValidation(t *testing.T) {
	cfg := smallCfg()
	if _, err := NewPartition(&cfg, nil); err == nil {
		t.Error("nil sink should fail")
	}
	bad := cfg
	bad.NumMCs = 3
	if _, err := NewPartition(&bad, func(uint64, *packet.Packet) {}); err == nil {
		t.Error("invalid config should fail")
	}
	p, _ := mkPartition(t, cfg)
	if p.NumSlices() != cfg.NumL2Slices {
		t.Errorf("NumSlices = %d", p.NumSlices())
	}
}

func TestSliceForInterleaving(t *testing.T) {
	cfg := smallCfg()
	p, _ := mkPartition(t, cfg)
	line := uint64(cfg.L2LineBytes)
	// Consecutive lines hit consecutive slices, wrapping around.
	for i := uint64(0); i < uint64(cfg.NumL2Slices)*2; i++ {
		want := int(i % uint64(cfg.NumL2Slices))
		if got := p.SliceFor(i * line); got != want {
			t.Fatalf("SliceFor(line %d) = %d, want %d", i, got, want)
		}
	}
	// Within one line, same slice.
	if p.SliceFor(0) != p.SliceFor(line-1) {
		t.Error("addresses within a line must map to one slice")
	}
}

// TestPreloadedHitLatency pins the L2 hit service time for a preloaded line.
func TestPreloadedHitLatency(t *testing.T) {
	cfg := smallCfg()
	p, s := mkPartition(t, cfg)
	p.Preload(0, 4096)
	pk := req(1, packet.ReadReq, 64, p.SliceFor(64))
	p.Accept(10, pk)
	runUntilIdle(p, 10)
	if len(s.pkts) != 1 {
		t.Fatal("no reply")
	}
	if s.pkts[0].Kind != packet.ReadReply {
		t.Errorf("reply kind = %v", s.pkts[0].Kind)
	}
	// Serviced at cycle 10, reply scheduled at 10+hitLatency.
	want := uint64(10 + cfg.L2HitLatency)
	if s.times[0] != want {
		t.Errorf("reply at %d, want %d", s.times[0], want)
	}
}

// TestMissSlowerThanHit verifies a cold access pays DRAM latency.
func TestMissSlowerThanHit(t *testing.T) {
	cfg := smallCfg()
	p, s := mkPartition(t, cfg)
	p.Preload(0, 64) // line 0 warm; line at 1MB cold
	p.Accept(0, req(1, packet.ReadReq, 0, p.SliceFor(0)))
	p.Accept(0, req(2, packet.ReadReq, 1<<20, p.SliceFor(1<<20)))
	runUntilIdle(p, 0)
	if len(s.pkts) != 2 {
		t.Fatalf("%d replies", len(s.pkts))
	}
	var hitAt, missAt uint64
	for i, pk := range s.pkts {
		if pk.ID == 1 {
			hitAt = s.times[i]
		} else {
			missAt = s.times[i]
		}
	}
	if missAt <= hitAt+10 {
		t.Errorf("miss (%d) should be much slower than hit (%d)", missAt, hitAt)
	}
}

func TestWriteReplyKind(t *testing.T) {
	cfg := smallCfg()
	p, s := mkPartition(t, cfg)
	p.Preload(0, 4096)
	p.Accept(0, req(1, packet.WriteReq, 128, p.SliceFor(128)))
	runUntilIdle(p, 0)
	if len(s.pkts) != 1 || s.pkts[0].Kind != packet.WriteReply {
		t.Fatalf("reply = %v", s.pkts)
	}
}

func TestAtomicSlowerThanRead(t *testing.T) {
	cfg := smallCfg()
	p, s := mkPartition(t, cfg)
	p.Preload(0, 4096)
	p.Accept(0, req(1, packet.AtomicReq, 64, p.SliceFor(64)))
	runUntilIdle(p, 0)
	if len(s.pkts) != 1 || s.pkts[0].Kind != packet.AtomicReply {
		t.Fatalf("reply = %v", s.pkts)
	}
	if s.times[0] <= uint64(cfg.L2HitLatency) {
		t.Errorf("atomic at %d should exceed plain hit latency %d", s.times[0], cfg.L2HitLatency)
	}
}

// TestMergedMissSingleFetch: two requests to one cold line trigger one DRAM
// fetch but two replies.
func TestMergedMissSingleFetch(t *testing.T) {
	cfg := smallCfg()
	p, s := mkPartition(t, cfg)
	addr := uint64(1 << 20)
	sl := p.SliceFor(addr)
	p.Accept(0, req(1, packet.ReadReq, addr, sl))
	p.Accept(0, req(2, packet.ReadReq, addr+4, sl))
	runUntilIdle(p, 0)
	if len(s.pkts) != 2 {
		t.Fatalf("%d replies, want 2", len(s.pkts))
	}
	st := p.Slice(sl).Stats()
	if st.Misses != 2 {
		t.Errorf("miss counter = %d, want 2 (one real, one merged)", st.Misses)
	}
}

// TestSliceServiceRate: a slice services at most one request per cycle, so
// n hits drain in ~n cycles plus the pipeline depth.
func TestSliceServiceRate(t *testing.T) {
	cfg := smallCfg()
	p, s := mkPartition(t, cfg)
	p.Preload(0, 1<<16)
	sl := 0
	line := uint64(cfg.L2LineBytes)
	n := 50
	for i := 0; i < n; i++ {
		// Same slice: stride by numSlices lines.
		addr := uint64(i) * line * uint64(cfg.NumL2Slices)
		p.Accept(0, req(uint64(i), packet.ReadReq, addr, sl))
	}
	end := runUntilIdle(p, 0)
	if len(s.pkts) != n {
		t.Fatalf("%d replies", len(s.pkts))
	}
	lo := uint64(n + cfg.L2HitLatency - 2)
	hi := uint64(n + cfg.L2HitLatency + 4)
	if end < lo || end > hi {
		t.Errorf("drain took %d cycles, want in [%d, %d]", end, lo, hi)
	}
}

func TestAcceptPanicsOnMisrouted(t *testing.T) {
	cfg := smallCfg()
	p, _ := mkPartition(t, cfg)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on misrouted packet")
		}
	}()
	p.Accept(0, req(1, packet.ReadReq, 0, p.SliceFor(0)+1))
}

func TestAcceptPanicsOnReplyPacket(t *testing.T) {
	cfg := smallCfg()
	p, _ := mkPartition(t, cfg)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on reply packet at slice ingress")
		}
	}()
	p.Slice(0).Accept(0, &packet.Packet{Kind: packet.ReadReply})
}

// Property: every accepted request eventually produces exactly one reply of
// the matching kind, under random mixes of reads/writes/atomics, hot and
// cold lines.
func TestQuickOneReplyPerRequest(t *testing.T) {
	f := func(ops []uint16) bool {
		if len(ops) > 150 {
			ops = ops[:150]
		}
		cfg := smallCfg()
		var s sink
		p, err := NewPartition(&cfg, s.deliver)
		if err != nil {
			return false
		}
		p.Preload(0, 1<<14)
		for i, op := range ops {
			kinds := []packet.Kind{packet.ReadReq, packet.WriteReq, packet.AtomicReq}
			kind := kinds[int(op)%3]
			addr := uint64(op) * 32
			pk := req(uint64(i), kind, addr, p.SliceFor(addr))
			p.Accept(uint64(i), pk)
			p.Tick(uint64(i))
		}
		now := uint64(len(ops))
		for ; now < 1_000_000 && !p.Idle(); now++ {
			p.Tick(now)
		}
		if len(s.pkts) != len(ops) {
			return false
		}
		for _, pk := range s.pkts {
			if pk.Kind.IsRequest() {
				return false
			}
		}
		return p.Idle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: replies are never delivered before the request was accepted plus
// the hit latency.
func TestQuickReplyNotEarly(t *testing.T) {
	cfg := smallCfg()
	f := func(addrRaw uint16, kindRaw uint8) bool {
		var s sink
		p, err := NewPartition(&cfg, s.deliver)
		if err != nil {
			return false
		}
		p.Preload(0, 1<<14)
		kinds := []packet.Kind{packet.ReadReq, packet.WriteReq, packet.AtomicReq}
		addr := uint64(addrRaw) * 8
		pk := req(0, kinds[int(kindRaw)%3], addr, p.SliceFor(addr))
		p.Accept(5, pk)
		now := uint64(5)
		for ; !p.Idle(); now++ {
			p.Tick(now)
		}
		return len(s.pkts) == 1 && s.times[0] >= 5+uint64(cfg.L2HitLatency)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAtomicSameLineSerializes: back-to-back atomics to one address queue
// behind the line's read-modify-write unit, while atomics to distinct lines
// proceed in parallel — the signal of the global-memory baseline channel.
func TestAtomicSameLineSerializes(t *testing.T) {
	run := func(sameLine bool) uint64 {
		cfg := smallCfg()
		p, s := mkPartition(t, cfg)
		p.Preload(0, 1<<16)
		// Eight atomics; either all to one line or spread across lines of
		// one slice.
		stride := uint64(0)
		if !sameLine {
			stride = uint64(cfg.L2LineBytes * cfg.NumL2Slices)
		}
		for i := uint64(0); i < 8; i++ {
			addr := i * stride
			p.Accept(0, req(i, packet.AtomicReq, addr, p.SliceFor(addr)))
		}
		runUntilIdle(p, 0)
		var last uint64
		for _, at := range s.times {
			if at > last {
				last = at
			}
		}
		return last
	}
	serial := run(true)
	parallel := run(false)
	if serial < parallel+60 {
		t.Errorf("same-line atomics (%d) should serialize well beyond spread atomics (%d)",
			serial, parallel)
	}
}
