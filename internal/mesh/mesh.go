// Package mesh joins several engine.GPU instances into one multi-GPU system
// under a single global clock, wired by NVLink-parameterized internal/link
// links. It is the scale-out seam the NVLink covert channels (NVBleed,
// "Beyond the Bridge"; see PAPERS.md) need: a sender kernel on one device
// and a receiver kernel on another contend on a shared inter-GPU link
// exactly the way on-die kernels contend on a NoC mux.
//
// # Address space and routing
//
// Every device owns a 4 GiB window of one global address space: device d
// owns [DevBase(d), DevBase(d+1)). A request whose address falls outside
// the issuing device's window leaves at the LSU inject point through the
// engine's remote outboxes (see internal/engine/remote.go), crosses the
// fabric, and enters the owner's memory partition at the crossbar edge; the
// reply returns the same way. The on-die path between the SM (or slice) and
// the NVLink port is folded into the link's hop latency, so the contention
// signal lives entirely on the inter-GPU links.
//
// # Clocking and determinism
//
// All devices advance in lockstep under the mesh's global clock. Each
// global cycle runs in a fixed order: for every device ascending — deliver
// last cycle's inbound packets, step the device one cycle, drain its
// outboxes onto first-hop links — then tick every fabric link in a fixed
// build order. The per-endpoint hand-off boxes have a single writer, the
// drain orders are canonical (see engine.DrainRemote), and the fabric is
// ticked only from the coordinator goroutine, so the whole mesh is
// bit-identical at any -engine-workers setting, exactly like a single
// PR-6 engine. When every device is parked and the fabric is empty, whole
// stretches of cycles are skipped in one jump (the same fast-forward
// engine.RunFor performs).
package mesh

import (
	"fmt"

	"gpunoc/internal/arb"
	"gpunoc/internal/config"
	"gpunoc/internal/engine"
	"gpunoc/internal/link"
	"gpunoc/internal/packet"
)

// devBits is the width of the per-device address window (4 GiB).
const devBits = 32

// MaxDevices bounds the mesh size; it keeps link counts sane and leaves 32
// address bits per device window.
const MaxDevices = 16

// DevBase returns the first global address of device d's memory window.
func DevBase(d int) uint64 { return uint64(d) << devBits }

// DevOfAddr returns the device owning a global address in an n-device mesh.
// Addresses beyond the last device's window belong to the last device, so
// every address has exactly one owner.
func DevOfAddr(addr uint64, n int) int {
	d := int(addr >> devBits)
	if d >= n {
		d = n - 1
	}
	return d
}

// Mesh is a fixed set of GPUs in lockstep plus the NVLink fabric between
// them. Build one with New; drive it with Launch/RunFor/RunUntil/RunKernels
// — member devices must not be stepped directly (the mesh owns the clock).
type Mesh struct {
	cfgs  []config.Config
	gpus  []*engine.GPU
	nv    config.NVLinkConfig
	topo  config.MeshTopology
	now   uint64
	meter *config.CycleMeter // the base configuration's meter

	// baseHash is the base configuration's hash, captured at build time;
	// snapshots are keyed to it (per-device configs derive their seeds from
	// the base, so the base alone identifies the whole mesh).
	baseHash uint64

	// links in canonical tick order; route[s][t] is the first-hop link and
	// input for a packet leaving device s toward device t.
	links []*link.Link
	route [][]hop

	// inbox[d] holds packets the fabric delivered for device d this cycle,
	// consumed at the start of d's next device cycle. Appended to only by
	// link Deliver callbacks (coordinator goroutine), reset to box[:0].
	inbox [][]*packet.Packet

	// drains[d] routes one of device d's outbound packets onto its
	// first-hop link; built once so the per-cycle drain allocates nothing.
	drains []func(p *packet.Packet)
}

// hop names one link input: enqueue on links[idx] input in.
type hop struct {
	idx int
	in  int
}

// New builds an n-device mesh from base. Every device gets its own deep
// Clone of base — fresh probe registry and cycle meter, per-device seed via
// config.DeviceSeed (device 0 keeps the base seed, so a 1-device mesh is
// bit-identical to a standalone engine) — and the clones are verified
// un-aliased before any engine is built. The fabric follows
// base.NVLink.Topology with zero fields defaulted to the NVLink3 preset;
// when base.Probes is set, each fabric link registers its metrics there
// under "nvlink/".
func New(base config.Config, n int) (*Mesh, error) {
	if n < 1 || n > MaxDevices {
		return nil, fmt.Errorf("mesh: device count %d outside [1,%d]", n, MaxDevices)
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	m := &Mesh{
		nv:       base.NVLink.WithDefaults(),
		topo:     base.NVLink.Topology,
		meter:    base.Meter,
		baseHash: base.Hash(),
	}
	m.cfgs = make([]config.Config, n)
	for d := 0; d < n; d++ {
		c := base.Clone()
		c.Seed = config.DeviceSeed(base.Seed, d)
		m.cfgs[d] = c
	}
	if err := ValidateUnaliased(m.cfgs); err != nil {
		return nil, err
	}
	m.gpus = make([]*engine.GPU, n)
	for d := 0; d < n; d++ {
		g, err := engine.New(m.cfgs[d])
		if err != nil {
			return nil, err
		}
		if err := g.ConnectRemote(d, func(addr uint64) int { return DevOfAddr(addr, n) }); err != nil {
			return nil, err
		}
		m.gpus[d] = g
	}
	m.inbox = make([][]*packet.Packet, n)
	if err := m.buildFabric(base); err != nil {
		return nil, err
	}
	m.drains = make([]func(p *packet.Packet), n)
	for d := range m.drains {
		src := d
		m.drains[src] = func(p *packet.Packet) {
			h := m.route[src][dest(p)]
			m.links[h.idx].Enqueue(m.now, h.in, p)
		}
	}
	return m, nil
}

// ValidateUnaliased rejects device configurations that share a probe
// registry, cycle meter, or telemetry sampler pointer: two engines built on
// one registry silently accumulate into the same counters, corrupting every
// per-device metric. Config.Clone produces un-aliased copies by
// construction; this check keeps hand-built device lists honest.
func ValidateUnaliased(cfgs []config.Config) error {
	for i := range cfgs {
		for j := i + 1; j < len(cfgs); j++ {
			switch {
			case cfgs[i].Probes != nil && cfgs[i].Probes == cfgs[j].Probes:
				return fmt.Errorf("mesh: devices %d and %d share one probe registry (use Config.Clone)", i, j)
			case cfgs[i].Meter != nil && cfgs[i].Meter == cfgs[j].Meter:
				return fmt.Errorf("mesh: devices %d and %d share one cycle meter (use Config.Clone)", i, j)
			case cfgs[i].Telemetry != nil && cfgs[i].Telemetry == cfgs[j].Telemetry:
				return fmt.Errorf("mesh: devices %d and %d share one telemetry sampler (use Config.Clone)", i, j)
			}
		}
	}
	return nil
}

// dest returns the device a fabric packet is heading to: requests travel to
// the address owner, replies back to the issuer.
func dest(p *packet.Packet) int {
	if p.Kind.IsRequest() {
		return p.DstDev
	}
	return p.SrcDev
}

// addLink constructs one fabric link with the mesh's NVLink rate, appends
// it to the canonical tick order, and returns its index. out receives
// packets after serialization and latency.
func (m *Mesh) addLink(base *config.Config, name string, inputs, latency int, out link.Deliver) (int, error) {
	a, err := arb.New(base.NoC.Arbitration, inputs, base.NoC.CRRHoldLimit, packet.DataFlits)
	if err != nil {
		return 0, err
	}
	l, err := link.New(name, inputs, m.nv.RateNum, m.nv.RateDen, latency, a, out)
	if err != nil {
		return 0, err
	}
	if base.Probes != nil {
		l.Instrument(base.Probes, "nvlink/")
	}
	m.links = append(m.links, l)
	return len(m.links) - 1, nil
}

// deliverLocal parks p in device d's inbox for delivery at the start of
// d's next cycle.
func (m *Mesh) deliverLocal(d int) link.Deliver {
	return func(now uint64, p *packet.Packet) {
		m.inbox[d] = append(m.inbox[d], p)
	}
}

// buildFabric wires the devices according to the configured topology. A
// 1-device mesh has no fabric.
func (m *Mesh) buildFabric(base config.Config) error {
	n := len(m.gpus)
	m.route = make([][]hop, n)
	for s := range m.route {
		m.route[s] = make([]hop, n)
		for t := range m.route[s] {
			m.route[s][t] = hop{idx: -1}
		}
	}
	if n == 1 {
		return nil
	}
	switch m.topo {
	case config.TopoFullMesh:
		// One dedicated point-to-point link per ordered pair.
		for s := 0; s < n; s++ {
			for t := 0; t < n; t++ {
				if s == t {
					continue
				}
				idx, err := m.addLink(&base, fmt.Sprintf("d%d->d%d", s, t), 1, m.nv.HopLatency, m.deliverLocal(t))
				if err != nil {
					return err
				}
				m.route[s][t] = hop{idx: idx, in: 0}
			}
		}
	case config.TopoRing:
		// Neighbor links in both directions; longer routes forward hop by
		// hop in the shorter direction (ties clockwise). Input 0 is the
		// device's own egress, input 1 the forwarded stream, arbitrated
		// like any other mux.
		cw := make([]int, n)
		ccw := make([]int, n)
		for s := 0; s < n; s++ {
			s := s
			t := (s + 1) % n
			idx, err := m.addLink(&base, fmt.Sprintf("ring-cw%d->%d", s, t), 2, m.nv.HopLatency,
				m.ringDeliver(t, cw))
			if err != nil {
				return err
			}
			cw[s] = idx
		}
		for s := 0; s < n; s++ {
			s := s
			t := (s - 1 + n) % n
			idx, err := m.addLink(&base, fmt.Sprintf("ring-ccw%d->%d", s, t), 2, m.nv.HopLatency,
				m.ringDeliver(t, ccw))
			if err != nil {
				return err
			}
			ccw[s] = idx
		}
		for s := 0; s < n; s++ {
			for t := 0; t < n; t++ {
				if s == t {
					continue
				}
				cwDist := (t - s + n) % n
				ccwDist := (s - t + n) % n
				if cwDist <= ccwDist {
					m.route[s][t] = hop{idx: cw[s], in: 0}
				} else {
					m.route[s][t] = hop{idx: ccw[s], in: 0}
				}
			}
		}
	case config.TopoNVSwitch:
		// Every pair routes through a central switch: a dedicated ingress
		// link per device into the switch, then an egress link per device
		// whose inputs (one per source) arbitrate for the output port. The
		// switch traversal cost rides on the egress latency.
		egress := make([]int, n)
		for t := 0; t < n; t++ {
			idx, err := m.addLink(&base, fmt.Sprintf("sw->d%d", t), n,
				m.nv.HopLatency+m.nv.SwitchLatency, m.deliverLocal(t))
			if err != nil {
				return err
			}
			egress[t] = idx
		}
		for s := 0; s < n; s++ {
			s := s
			idx, err := m.addLink(&base, fmt.Sprintf("d%d->sw", s), 1, m.nv.HopLatency,
				func(now uint64, p *packet.Packet) {
					m.links[egress[dest(p)]].Enqueue(now, s, p)
				})
			if err != nil {
				return err
			}
			for t := 0; t < n; t++ {
				if s != t {
					m.route[s][t] = hop{idx: idx, in: 0}
				}
			}
		}
	default:
		return fmt.Errorf("mesh: unknown topology %v", m.topo)
	}
	return nil
}

// ringDeliver terminates or forwards a ring hop arriving at device at: a
// packet for at enters its inbox, anything else continues on the same
// direction's next link (input 1, the forwarded stream). dirLinks is the
// direction's per-source link table, filled by buildFabric before traffic.
func (m *Mesh) ringDeliver(at int, dirLinks []int) link.Deliver {
	return func(now uint64, p *packet.Packet) {
		if dest(p) == at {
			m.inbox[at] = append(m.inbox[at], p)
			return
		}
		m.links[dirLinks[at]].Enqueue(now, 1, p)
	}
}
