// SARIF 2.1.0 rendering of lint findings, so CI can upload them with
// github/codeql-action/upload-sarif and get inline pull-request annotations.
// Only the subset of the format that GitHub code scanning consumes is
// emitted: one run, the driver's rule table, and one result per diagnostic
// with a physical location. URIs are module-root-relative with forward
// slashes, which is what the upload action resolves against the checkout.

package lint

import (
	"encoding/json"
	"path/filepath"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

// SARIF renders diagnostics as a SARIF 2.1.0 log. root is the module root:
// diagnostic filenames (absolute or root-relative) become root-relative URIs.
// The rule table lists every analyzer plus the "lint" pseudo-rule that
// directive-hygiene findings carry.
func SARIF(diags []Diagnostic, analyzers []*Analyzer, root string) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{ID: "lint",
		ShortDescription: sarifMessage{Text: "//lint:allow directive hygiene (malformed, unknown rule, unused)"}})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Pos.Filename
		if filepath.IsAbs(uri) {
			if rel, err := filepath.Rel(root, uri); err == nil {
				uri = rel
			}
		}
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "warning",
			Message: sarifMessage{Text: d.Msg},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
				Region:           sarifRegion{StartLine: d.Pos.Line},
			}}},
		})
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "gpunoc-lint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
