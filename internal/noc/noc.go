// Package noc assembles the hierarchical GPU on-chip network that the paper
// reverse-engineers (§3): on the request path, each SM feeds a 2:1 TPC mux
// whose output (the "TPC channel") joins the other TPCs of its GPC at a
// concentrating GPC mux with bandwidth speedup (the "GPC channel"); GPC
// channels meet a crossbar with one rate-limited port per L2 slice. The
// reply path mirrors the hierarchy on the second subnet with its own
// (calibrated) speedups. Every mux is an arb.Arbiter-driven link.Link, so
// swapping the arbitration policy (§6) changes the whole fabric at once.
package noc

import (
	"fmt"

	"gpunoc/internal/arb"
	"gpunoc/internal/config"
	"gpunoc/internal/link"
	"gpunoc/internal/packet"
	"gpunoc/internal/probe"
	"gpunoc/internal/sched"
)

// Deliver receives packets at the fabric edges.
type Deliver func(now uint64, p *packet.Packet)

// Network is the assembled two-subnet fabric.
type Network struct {
	cfg *config.Config

	// Request subnet.
	reqTPC []*link.Link // one per TPC, fan-in = SMs per TPC
	reqGPC []*link.Link // one per GPC, fan-in = TPCs in that GPC
	xbarIn []*link.Link // one per L2 slice, fan-in = GPCs
	// Reply subnet.
	repGPC []*link.Link // one per GPC, fan-in = L2 slices
	repTPC []*link.Link // one per TPC, fan-in = 1 (demux below the GPC link)

	// tpcSlot[t] is the input index of TPC t on its GPC mux.
	tpcSlot []int

	toSlice Deliver // request egress (the memory partition)
	toSM    Deliver // reply egress (the SMs)

	// Activity-driven scheduling: one active set per tick group, in tick
	// order. A link is woken by its Enqueue edge and parked by Tick once
	// Idle() holds; because upstream groups tick before downstream ones, an
	// enqueue made while ticking group k reaches a group >k link the same
	// cycle, exactly as under exhaustive ticking. All sets are nil when
	// cfg.ExhaustiveTick is set, selecting the tick-everything reference
	// path.
	actReqTPC *sched.ActiveSet
	actReqGPC *sched.ActiveSet
	actXbar   *sched.ActiveSet
	actRepGPC *sched.ActiveSet
	actRepTPC *sched.ActiveSet

	// shard is non-nil after EnableSharding (see shard.go): the engine's
	// parallel tick loop then drives the fabric through the per-shard
	// methods, and the sequential Tick entry point is forbidden.
	shard *shardState

	linkTicks *probe.Counter // nil when uninstrumented
}

// New wires the fabric for cfg. toSlice receives request packets at their
// destination L2 slice; toSM receives reply packets at their destination SM.
// Arbitration at every mux follows cfg.NoC.Arbitration.
func New(cfg *config.Config, toSlice, toSM Deliver) (*Network, error) {
	if toSlice == nil || toSM == nil {
		return nil, fmt.Errorf("noc: nil egress sink")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, toSlice: toSlice, toSM: toSM}
	nc := cfg.NoC

	mkArb := func(inputs int) (arb.Arbiter, error) {
		return arb.New(nc.Arbitration, inputs, nc.CRRHoldLimit, packet.DataFlits)
	}

	numTPC := cfg.NumTPCs()
	n.tpcSlot = make([]int, numTPC)
	for g := 0; g < cfg.NumGPCs; g++ {
		for slot, t := range cfg.TPCsOfGPC(g) {
			n.tpcSlot[t] = slot
		}
	}

	// Crossbar ports toward the slices (built first: upstream links
	// deliver into them).
	n.xbarIn = make([]*link.Link, cfg.NumL2Slices)
	for s := 0; s < cfg.NumL2Slices; s++ {
		a, err := mkArb(cfg.NumGPCs)
		if err != nil {
			return nil, err
		}
		l, err := link.New(fmt.Sprintf("xbar->slice%d", s), cfg.NumGPCs,
			nc.SliceAcceptRateNum, nc.SliceAcceptDen, nc.XbarLatency, a, n.deliverToSlice)
		if err != nil {
			return nil, err
		}
		n.xbarIn[s] = l
	}

	// GPC request channels: deliver into the crossbar port of the packet's
	// destination slice, on the input belonging to this GPC.
	n.reqGPC = make([]*link.Link, cfg.NumGPCs)
	for g := 0; g < cfg.NumGPCs; g++ {
		g := g
		fanIn := len(cfg.TPCsOfGPC(g))
		a, err := mkArb(fanIn)
		if err != nil {
			return nil, err
		}
		l, err := link.New(fmt.Sprintf("gpc%d-req", g), fanIn,
			nc.GPCReqRateNum, nc.GPCReqRateDen, nc.GPCLinkLatency, a,
			func(now uint64, p *packet.Packet) {
				if n.shard != nil {
					n.shard.pushRequest(now, g, p)
					return
				}
				n.xbarIn[p.Slice].Enqueue(now, g, p)
			})
		if err != nil {
			return nil, err
		}
		n.reqGPC[g] = l
	}

	// TPC request channels (the 2:1 SM muxes): deliver into this TPC's
	// slot on its GPC mux.
	n.reqTPC = make([]*link.Link, numTPC)
	for t := 0; t < numTPC; t++ {
		t := t
		g := cfg.GPCOfTPC(t)
		slot := n.tpcSlot[t]
		a, err := mkArb(cfg.SMsPerTPC)
		if err != nil {
			return nil, err
		}
		l, err := link.New(fmt.Sprintf("tpc%d-req", t), cfg.SMsPerTPC,
			nc.TPCReqRateNum, nc.TPCReqRateDen, nc.TPCLinkLatency, a,
			func(now uint64, p *packet.Packet) {
				n.reqGPC[g].Enqueue(now, slot, p)
			})
		if err != nil {
			return nil, err
		}
		n.reqTPC[t] = l
	}

	// Reply TPC channels: demux below the GPC reply link, one input.
	n.repTPC = make([]*link.Link, numTPC)
	for t := 0; t < numTPC; t++ {
		a, err := mkArb(1)
		if err != nil {
			return nil, err
		}
		l, err := link.New(fmt.Sprintf("tpc%d-rep", t), 1,
			nc.TPCRepRateNum, nc.TPCRepRateDen, nc.ReplyTPCLatency, a, link.Deliver(n.toSM))
		if err != nil {
			return nil, err
		}
		n.repTPC[t] = l
	}

	// Reply GPC channels: all slices feed them through the return
	// crossbar; the calibrated fractional speedup lives here (Fig 5b).
	n.repGPC = make([]*link.Link, cfg.NumGPCs)
	for g := 0; g < cfg.NumGPCs; g++ {
		a, err := mkArb(cfg.NumL2Slices)
		if err != nil {
			return nil, err
		}
		l, err := link.New(fmt.Sprintf("gpc%d-rep", g), cfg.NumL2Slices,
			nc.GPCRepRateNum, nc.GPCRepRateDen, nc.ReplyGPCLatency+nc.ReplyXbarLat, a,
			func(now uint64, p *packet.Packet) {
				n.repTPC[cfg.TPCOfSM(p.Tag.SM)].Enqueue(now, 0, p)
			})
		if err != nil {
			return nil, err
		}
		n.repGPC[g] = l
	}

	if cfg.Probes != nil {
		for _, group := range [][]*link.Link{n.reqTPC, n.reqGPC, n.xbarIn, n.repGPC, n.repTPC} {
			for _, l := range group {
				l.Instrument(cfg.Probes, "noc/")
			}
		}
		n.linkTicks = cfg.Probes.Counter("sched/link_ticks")
	}

	if !cfg.ExhaustiveTick {
		wire := func(group []*link.Link) *sched.ActiveSet {
			set := sched.NewActiveSet(len(group))
			for i, l := range group {
				l.SetWaker(func() { set.Wake(i) })
			}
			return set
		}
		n.actReqTPC = wire(n.reqTPC)
		n.actReqGPC = wire(n.reqGPC)
		n.actXbar = wire(n.xbarIn)
		n.actRepGPC = wire(n.repGPC)
		n.actRepTPC = wire(n.repTPC)
	}

	return n, nil
}

func (n *Network) deliverToSlice(now uint64, p *packet.Packet) {
	n.toSlice(now, p)
}

// InjectRequest enters a request packet at SM sm's port of its TPC mux.
// The packet's Slice must already be routed (the engine sets it from the
// address interleave).
func (n *Network) InjectRequest(now uint64, sm int, p *packet.Packet) {
	if !p.Kind.IsRequest() {
		panic(fmt.Sprintf("noc: injecting non-request %v", p))
	}
	if p.Slice < 0 || p.Slice >= n.cfg.NumL2Slices {
		panic(fmt.Sprintf("noc: packet %v has unrouted slice", p))
	}
	t := n.cfg.TPCOfSM(sm)
	n.reqTPC[t].Enqueue(now, sm%n.cfg.SMsPerTPC, p)
}

// InjectReply enters a reply packet at its slice's port of the return
// crossbar, heading to the GPC of the destination SM.
func (n *Network) InjectReply(now uint64, p *packet.Packet) {
	if p.Kind.IsRequest() {
		panic(fmt.Sprintf("noc: injecting request on reply subnet: %v", p))
	}
	if n.shard != nil {
		n.shard.pushReply(now, p)
		return
	}
	g := n.cfg.GPCOfSM(p.Tag.SM)
	n.repGPC[g].Enqueue(now, p.Slice, p)
}

// Tick advances every link one cycle. Links are ticked leaf-to-root on the
// request path and root-to-leaf on the reply path so a packet can traverse
// at most one hop per cycle deterministically. Under activity-driven
// scheduling only active links tick, in the same group and index order.
func (n *Network) Tick(now uint64) {
	n.assertSequential("Tick")
	if n.actReqTPC == nil {
		for _, l := range n.reqTPC {
			l.Tick(now)
		}
		for _, l := range n.reqGPC {
			l.Tick(now)
		}
		for _, l := range n.xbarIn {
			l.Tick(now)
		}
		for _, l := range n.repGPC {
			l.Tick(now)
		}
		for _, l := range n.repTPC {
			l.Tick(now)
		}
		return
	}
	n.tickGroup(now, n.actReqTPC, n.reqTPC)
	n.tickGroup(now, n.actReqGPC, n.reqGPC)
	n.tickGroup(now, n.actXbar, n.xbarIn)
	n.tickGroup(now, n.actRepGPC, n.repGPC)
	n.tickGroup(now, n.actRepTPC, n.repTPC)
}

// tickGroup ticks the active links of one group in ascending index order,
// parking each one that drained.
func (n *Network) tickGroup(now uint64, set *sched.ActiveSet, group []*link.Link) {
	if set.Empty() {
		return
	}
	for i, l := range group {
		if !set.Active(i) {
			continue
		}
		l.Tick(now)
		if n.linkTicks != nil {
			n.linkTicks.Inc()
		}
		if l.Idle() {
			set.Park(i)
		}
	}
}

// Quiet reports whether the activity scheduler has every link parked, i.e.
// the next Tick would do no work. Always false in exhaustive mode, where
// nothing is ever parked.
func (n *Network) Quiet() bool {
	if n.shard != nil {
		return n.shard.quiet()
	}
	return n.actReqTPC != nil && n.actReqTPC.Empty() && n.actReqGPC.Empty() &&
		n.actXbar.Empty() && n.actRepGPC.Empty() && n.actRepTPC.Empty()
}

// Idle reports whether no packets are queued or in flight anywhere —
// including, in sharded mode, the crossbar-boundary outboxes.
func (n *Network) Idle() bool {
	if n.shard != nil && !n.shard.boxesEmpty() {
		return false
	}
	for _, group := range [][]*link.Link{n.reqTPC, n.reqGPC, n.xbarIn, n.repGPC, n.repTPC} {
		for _, l := range group {
			if !l.Idle() {
				return false
			}
		}
	}
	return true
}

// TPCRequestLink exposes TPC t's request link for stats and tests.
func (n *Network) TPCRequestLink(t int) *link.Link { return n.reqTPC[t] }

// GPCRequestLink exposes GPC g's request link.
func (n *Network) GPCRequestLink(g int) *link.Link { return n.reqGPC[g] }

// GPCReplyLink exposes GPC g's reply link.
func (n *Network) GPCReplyLink(g int) *link.Link { return n.repGPC[g] }

// TPCReplyLink exposes TPC t's reply link.
func (n *Network) TPCReplyLink(t int) *link.Link { return n.repTPC[t] }
