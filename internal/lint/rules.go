// The machine-readable rule configuration. This file is the single source of
// truth for the invariants docs/ARCHITECTURE.md describes in prose: the
// layering DAG, the determinism bans, the tick-model concurrency bans, and
// the state-purity scope all live in one Go table so the documentation and
// the check cannot drift. `gpunoc-lint -rules` dumps the active configuration
// as JSON.

package lint

import (
	"encoding/json"
	"strings"
)

// Rules is the full analyzer configuration.
type Rules struct {
	// Module is the module path the tables below are relative to.
	Module      string           `json:"module"`
	Layering    LayeringRules    `json:"layering"`
	Determinism DeterminismRules `json:"determinism"`
	TickModel   TickModelRules   `json:"tick_model"`
	Purity      PurityRules      `json:"purity"`
	Godoc       GodocRules       `json:"godoc"`
	ShardSafety ShardSafetyRules `json:"shard_safety"`
	HotAlloc    HotAllocRules    `json:"hot_alloc"`
}

// LayeringRules declares the import DAG. Keys and values are module-relative
// package dirs ("" is the root facade package).
type LayeringRules struct {
	// Roots are dir prefixes whose packages sit at the top of the DAG and
	// may import anything in the module (binaries and examples).
	Roots []string `json:"roots"`
	// Allowed maps every library package to the exact set of module-local
	// packages it may import. A package missing from this table is itself
	// a finding: growing the module means declaring the new layer here.
	Allowed map[string][]string `json:"allowed"`
}

// Scope selects the packages an analyzer applies to, by module-relative dir.
// An Include entry ending in "/" is a prefix; "" means the root package.
type Scope struct {
	Include []string `json:"include"`
	Exclude []string `json:"exclude,omitempty"`
}

// Match reports whether the package at module-relative dir rel is in scope.
func (s Scope) Match(rel string) bool {
	in := func(pats []string) bool {
		for _, p := range pats {
			switch {
			case p == "":
				if rel == "" {
					return true
				}
			case strings.HasSuffix(p, "/"):
				if strings.HasPrefix(rel, p) || rel == strings.TrimSuffix(p, "/") {
					return true
				}
			default:
				if rel == p {
					return true
				}
			}
		}
		return false
	}
	return in(s.Include) && !in(s.Exclude)
}

// DeterminismRules configures the wall-clock / environment / global-RNG /
// map-order bans.
type DeterminismRules struct {
	Scope Scope `json:"scope"`
	// BannedCalls are fully qualified functions ("pkgpath.Func") that read
	// ambient state a simulation result must never depend on.
	BannedCalls []string `json:"banned_calls"`
	// GlobalRand lists the math/rand (and math/rand/v2) top-level functions
	// that draw from the globally seeded source. Constructors (New,
	// NewSource, NewZipf) and method calls on a *rand.Rand are fine.
	GlobalRand []string `json:"global_rand"`
}

// TickModelRules configures the single-goroutine tick-model bans for the
// engine and everything below it.
type TickModelRules struct {
	Scope Scope `json:"scope"`
	// BannedImports are concurrency packages engine-and-below code must not
	// use (goroutines, channels, and selects are banned syntactically).
	BannedImports []string `json:"banned_imports"`
	// AtomicAllow names types whose declaration and methods may use the
	// banned imports — the sanctioned concurrency-safe exceptions.
	AtomicAllow []TypeRef `json:"atomic_allow"`
	// ParallelFiles is the engine-parallel tier: files exempted from the
	// bans wholesale because they ARE the sanctioned parallelism — the
	// engine's sharded worker pool, where the phase barrier lives. Listing
	// a file here is a reviewed architectural decision, not a waiver; the
	// rest of its package stays under the blanket ban.
	ParallelFiles []FileRef `json:"parallel_files"`
}

// TypeRef names a type: a module-relative package dir plus a type name.
type TypeRef struct {
	Package string `json:"package"`
	Type    string `json:"type"`
}

// FileRef names a file: a module-relative package dir plus a base filename.
type FileRef struct {
	Package string `json:"package"`
	File    string `json:"file"`
}

// GodocRules configures the doc-comment check: every exported symbol in
// scope must carry a doc comment.
type GodocRules struct {
	Scope Scope `json:"scope"`
}

// FieldRef names a struct field: a module-relative package dir, the struct's
// named type, and the field name.
type FieldRef struct {
	Package string `json:"package"`
	Type    string `json:"type"`
	Field   string `json:"field"`
}

// PhaseRoot is one parallel-engine phase task: the function the worker pool
// dispatches, plus the name of its parameter that carries the shard id. The
// shard parameter is the analysis's trust root — the dispatch loop hands
// each task its own index by construction, and everything the task touches
// must be indexed by a value derived from it.
type PhaseRoot struct {
	Func       FuncRef `json:"func"`
	ShardParam string  `json:"shard_param"`
}

// ShardSafetyRules configures the parallel-engine ownership check. Within
// functions reachable from the PhaseRoots, the analyzer requires that:
//
//   - every indexing of an OwnedCollections field uses an index derived from
//     the task's shard parameter (or from a packet's routing fields — packets
//     are owned by whichever shard currently holds them);
//   - the HandoffFields (the single-writer/single-reader outboxes) are
//     touched only inside the HandoffFuncs, the reviewed producers and
//     barrier-ordered drains;
//   - no field of a CoordinatorTypes value is written (those structs belong
//     to the coordinator between phases);
//   - nothing is assigned to package-level state (no aliases may escape a
//     shard task).
type ShardSafetyRules struct {
	PhaseRoots       []PhaseRoot `json:"phase_roots"`
	OwnedCollections []FieldRef  `json:"owned_collections"`
	HandoffFields    []FieldRef  `json:"handoff_fields"`
	HandoffFuncs     []FuncRef   `json:"handoff_funcs"`
	CoordinatorTypes []TypeRef   `json:"coordinator_types"`
	// PacketTypes are the in-flight payload types whose fields count as
	// shard-derived: a packet is owned by exactly one shard at a time, so
	// routing on p.Slice or p.Tag.SM stays inside the owner's state. The
	// hand-off containment rule plus the worker-matrix regressions pin the
	// dynamic half of that argument.
	PacketTypes []TypeRef `json:"packet_types"`
}

// HotAllocRules configures the steady-state allocation check: allocation
// sites (make, growing append, composite literals, closures, string↔[]byte
// conversions, interface boxing) in functions reachable from the Roots are
// findings unless waived. Scope limits reporting to the simulator core;
// reachability itself is computed over the whole module.
type HotAllocRules struct {
	Roots []FuncRef `json:"roots"`
	Scope Scope     `json:"scope"`
}

// PurityRules configures the package-level mutable-state ban.
type PurityRules struct {
	Scope Scope `json:"scope"`
	// AllowSentinelErrors permits `var ErrX = errors.New(...)` (and
	// fmt.Errorf) declarations, the conventional immutable-by-contract
	// sentinel pattern.
	AllowSentinelErrors bool `json:"allow_sentinel_errors"`
}

// JSON renders the configuration for `gpunoc-lint -rules`.
func (r *Rules) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// simulatorScope covers every package whose code can sit on a result path:
// the root facade and all of internal/ except the lint tooling itself.
func simulatorScope() Scope {
	return Scope{
		Include: []string{"", "internal/"},
		Exclude: []string{"internal/lint"},
	}
}

// engineAndBelow lists the packages inside the tick loop: the engine plus
// every substrate package it drives. experiments and the attack layers above
// the engine may use goroutines (that is where parallelism lives, one level
// up); these packages must not.
func engineAndBelow() []string {
	return []string{
		"internal/arb",
		"internal/cache",
		"internal/clockreg",
		"internal/config",
		"internal/device",
		"internal/dram",
		"internal/engine",
		"internal/link",
		"internal/mem",
		"internal/mesh",
		"internal/noc",
		"internal/noise",
		"internal/packet",
		"internal/probe",
		"internal/ring",
		"internal/sched",
		"internal/sm",
		"internal/snap",
		"internal/stats",
		"internal/tbsched",
		"internal/telemetry",
		"internal/warp",
	}
}

// DefaultRules returns the rule configuration for this repository. The
// Layering.Allowed table is the import DAG of docs/ARCHITECTURE.md: arrows
// only point downward, substrate packages see only config/packet (plus their
// documented intra-substrate edges, e.g. link ← arb), and nothing below
// internal/experiments may import it.
func DefaultRules() *Rules {
	return &Rules{
		Module: "gpunoc",
		Layering: LayeringRules{
			Roots: []string{"cmd/", "examples/"},
			Allowed: map[string][]string{
				// Root facade: the public API re-exports the attack, the
				// engine, and the experiment suite.
				"": {
					"internal/config",
					"internal/core",
					"internal/device",
					"internal/engine",
					"internal/experiments",
					"internal/noise",
					"internal/reveng",
				},

				// Leaves: no module-local imports at all. snap is the
				// checkpoint codec — beneath everything it serializes, so
				// every stateful component can declare its own Snapshot/
				// Restore without a layering cycle.
				"internal/packet": {"internal/snap"},
				"internal/ring":   {},
				"internal/sched":  {},
				"internal/snap":   {},
				"internal/stats":  {},
				"internal/warp":   {},

				// Instrumentation: stats < probe < telemetry < config.
				// probe sits between stats and config so every component a
				// Config reaches can register metrics; telemetry aggregates
				// probe snapshots into windows and sits just below config so
				// a Sampler can travel inside a Config the way the Registry
				// does.
				"internal/probe":     {"internal/snap", "internal/stats"},
				"internal/telemetry": {"internal/probe", "internal/snap", "internal/stats"},
				"internal/config":    {"internal/probe", "internal/telemetry"},

				// Substrate: config/packet only, plus documented edges
				// (probe is reachable from everything holding a Config, and
				// snap from everything that snapshots).
				"internal/arb":      {"internal/config", "internal/packet", "internal/probe", "internal/snap"},
				"internal/cache":    {"internal/config", "internal/packet", "internal/probe", "internal/snap"},
				"internal/clockreg": {"internal/config"},
				"internal/device":   {"internal/snap", "internal/warp"},
				"internal/dram":     {"internal/config", "internal/probe", "internal/ring", "internal/snap"},
				"internal/tbsched":  {"internal/config", "internal/snap"},
				"internal/link":     {"internal/arb", "internal/config", "internal/packet", "internal/probe", "internal/ring", "internal/snap"},
				"internal/noc": {
					"internal/arb", "internal/config", "internal/link",
					"internal/packet", "internal/probe", "internal/sched",
					"internal/snap",
				},
				"internal/mem": {
					"internal/cache", "internal/config", "internal/dram",
					"internal/packet", "internal/probe", "internal/ring",
					"internal/sched", "internal/snap",
				},
				"internal/sm": {
					"internal/cache", "internal/clockreg", "internal/config",
					"internal/device", "internal/packet", "internal/probe",
					"internal/ring", "internal/snap", "internal/warp",
				},

				// Background-traffic generators: programs stepped inside the
				// tick loop, so the package sits beside device/warp — it
				// builds KernelSpecs and never reaches up to the engine.
				"internal/noise": {
					"internal/config", "internal/device", "internal/probe",
					"internal/warp",
				},

				// The cycle-driven top level.
				"internal/engine": {
					"internal/clockreg", "internal/config", "internal/device",
					"internal/mem", "internal/noc", "internal/packet",
					"internal/probe", "internal/sched", "internal/sm",
					"internal/snap", "internal/tbsched", "internal/telemetry",
				},

				// The multi-GPU mesh: N engines under one global clock,
				// joined by NVLink-parameterized links. It sits between the
				// engine and the attack layer — core places cross-GPU
				// channels on it, and it never reaches above the engine.
				"internal/mesh": {
					"internal/arb", "internal/config", "internal/device",
					"internal/engine", "internal/link", "internal/packet",
					"internal/snap",
				},

				// The attack, prior-work channels, and reverse engineering.
				"internal/reveng": {"internal/config", "internal/device", "internal/engine"},
				"internal/core": {
					"internal/config", "internal/device", "internal/engine",
					"internal/mesh", "internal/warp",
				},
				"internal/baseline": {
					"internal/config", "internal/core", "internal/device",
					"internal/engine", "internal/warp",
				},

				// The experiment suite knows every layer below it; nothing
				// below it (only the root facade and the cmd/examples
				// roots) may import it back.
				"internal/experiments": {
					"internal/baseline", "internal/config", "internal/core",
					"internal/device", "internal/engine", "internal/mesh",
					"internal/noise", "internal/probe", "internal/reveng",
					"internal/stats", "internal/telemetry", "internal/warp",
				},

				// The simulation service: an HTTP face over the experiment
				// harness and its result cache. It sits beside the cmd roots
				// conceptually but is a library (so it can be tested with
				// httptest), and it never reaches below experiments.
				"internal/server": {
					"internal/config", "internal/experiments",
				},

				// Tooling: stdlib only, outside the simulator entirely.
				"internal/lint": {},
			},
		},
		Determinism: DeterminismRules{
			Scope: simulatorScope(),
			BannedCalls: []string{
				"time.Now",
				"time.Since",
				"time.Until",
				"os.Getenv",
				"os.LookupEnv",
				"os.Environ",
			},
			GlobalRand: []string{
				"ExpFloat64", "Float32", "Float64", "Int", "Int31", "Int31n",
				"Int63", "Int63n", "IntN", "Intn", "N", "NormFloat64", "Perm",
				"Read", "Seed", "Shuffle", "Uint32", "Uint64",
			},
		},
		TickModel: TickModelRules{
			Scope:         Scope{Include: engineAndBelow()},
			BannedImports: []string{"sync", "sync/atomic"},
			AtomicAllow: []TypeRef{
				// The one sanctioned atomic: the cycle meter engine copies
				// share so the runner can attribute simulated cycles while
				// experiments run concurrently. It never influences
				// simulation behavior.
				{Package: "internal/config", Type: "CycleMeter"},
			},
			ParallelFiles: []FileRef{
				// The engine-parallel tier: the sharded tick loop's worker
				// pool. The phase barrier in this file is the only
				// synchronization in the whole engine; every component it
				// drives remains lock-free and single-owner per phase (see
				// docs/ARCHITECTURE.md, "Parallel engine").
				{Package: "internal/engine", File: "parallel.go"},
			},
		},
		Purity: PurityRules{
			Scope:               simulatorScope(),
			AllowSentinelErrors: true,
		},
		Godoc: GodocRules{
			// Unlike the simulator-only analyzers, the doc-comment check
			// also covers the lint tooling itself; only the cmd/examples
			// roots (package main, no API surface) are out of scope.
			Scope: Scope{Include: []string{"", "internal/"}},
		},
		ShardSafety: ShardSafetyRules{
			// The two phase tasks of the sharded tick loop
			// (internal/engine/parallel.go). Their shard parameters are the
			// trust roots: runPhase dispatches task i with argument i.
			PhaseRoots: []PhaseRoot{
				{Func: FuncRef{Package: "internal/engine", Recv: "parEngine", Name: "phaseG"}, ShardParam: "gpc"},
				{Func: FuncRef{Package: "internal/engine", Recv: "parEngine", Name: "phaseP"}, ShardParam: "m"},
			},
			// Component arrays partitioned across shards: indexing one of
			// these inside a phase must use a shard-derived index.
			OwnedCollections: []FieldRef{
				{Package: "internal/engine", Type: "GPU", Field: "sms"},
				{Package: "internal/engine", Type: "parEngine", Field: "smsOfGPC"},
				{Package: "internal/engine", Type: "parEngine", Field: "smShards"},
				{Package: "internal/engine", Type: "remoteState", Field: "gpcOfSM"},
				{Package: "internal/noc", Type: "Network", Field: "reqTPC"},
				{Package: "internal/noc", Type: "Network", Field: "reqGPC"},
				{Package: "internal/noc", Type: "Network", Field: "xbarIn"},
				{Package: "internal/noc", Type: "Network", Field: "repGPC"},
				{Package: "internal/noc", Type: "Network", Field: "repTPC"},
				{Package: "internal/noc", Type: "shardState", Field: "tpcsOfGPC"},
				{Package: "internal/noc", Type: "shardState", Field: "gpcOfSM"},
				{Package: "internal/noc", Type: "shardState", Field: "actReqTPC"},
				{Package: "internal/noc", Type: "shardState", Field: "actReqGPC"},
				{Package: "internal/noc", Type: "shardState", Field: "actRepGPC"},
				{Package: "internal/noc", Type: "shardState", Field: "actRepTPC"},
				{Package: "internal/noc", Type: "shardState", Field: "actXbar"},
				{Package: "internal/mem", Type: "Partition", Field: "mcs"},
				{Package: "internal/mem", Type: "Partition", Field: "slices"},
				{Package: "internal/mem", Type: "memShard", Field: "actMCs"},
				{Package: "internal/mem", Type: "memShard", Field: "actSlices"},
			},
			// The single-writer/single-reader outboxes crossing the shard
			// boundary (internal/noc/shard.go).
			HandoffFields: []FieldRef{
				{Package: "internal/noc", Type: "shardState", Field: "xbox"},
				{Package: "internal/noc", Type: "shardState", Field: "rbox"},
				// The cross-GPU outboxes (internal/engine/remote.go): the
				// same single-writer idiom at the NVLink boundary — the
				// source GPC's phase-G task fills reqOut, the partition
				// group's phase-P task fills repOut, the mesh coordinator
				// drains both between cycles.
				{Package: "internal/engine", Type: "remoteState", Field: "reqOut"},
				{Package: "internal/engine", Type: "remoteState", Field: "repOut"},
			},
			// The reviewed producers, barrier-ordered drains, and read-only
			// queries — the only functions allowed to touch the outboxes.
			HandoffFuncs: []FuncRef{
				{Package: "internal/noc", Recv: "shardState", Name: "pushRequest"},
				{Package: "internal/noc", Recv: "shardState", Name: "pushReply"},
				{Package: "internal/noc", Recv: "Network", Name: "DrainReplies"},
				{Package: "internal/noc", Recv: "Network", Name: "TickXbarShard"},
				{Package: "internal/noc", Recv: "Network", Name: "GPCShardHasWork"},
				{Package: "internal/noc", Recv: "Network", Name: "XbarShardHasWork"},
				{Package: "internal/noc", Recv: "shardState", Name: "quiet"},
				{Package: "internal/noc", Recv: "shardState", Name: "boxesEmpty"},
				{Package: "internal/noc", Recv: "Network", Name: "EnableSharding"},
				{Package: "internal/engine", Recv: "remoteState", Name: "pushRequest"},
				{Package: "internal/engine", Recv: "remoteState", Name: "pushReply"},
				{Package: "internal/engine", Recv: "remoteState", Name: "boxesEmpty"},
				{Package: "internal/engine", Recv: "GPU", Name: "DrainRemote"},
			},
			// Structs owned by the coordinator between phases: a phase task
			// may read them but never write their fields.
			CoordinatorTypes: []TypeRef{
				{Package: "internal/engine", Type: "GPU"},
				{Package: "internal/engine", Type: "parEngine"},
				{Package: "internal/engine", Type: "remoteState"},
				{Package: "internal/noc", Type: "Network"},
				{Package: "internal/noc", Type: "shardState"},
				{Package: "internal/mem", Type: "Partition"},
				{Package: "internal/mem", Type: "memShard"},
			},
			PacketTypes: []TypeRef{
				{Package: "internal/packet", Type: "Packet"},
			},
		},
		HotAlloc: HotAllocRules{
			// The steady-state tick roots: the engine's per-cycle step and
			// the component Tick methods it drives. Setup paths (New,
			// Launch, EnableSharding) are deliberately absent — allocation
			// there is fine.
			Roots: []FuncRef{
				{Package: "internal/engine", Recv: "GPU", Name: "step"},
				{Package: "internal/link", Recv: "Link", Name: "Tick"},
				{Package: "internal/mem", Recv: "Slice", Name: "Tick"},
				{Package: "internal/dram", Recv: "Controller", Name: "Tick"},
				{Package: "internal/sm", Recv: "SM", Name: "Tick"},
			},
			Scope: Scope{Include: engineAndBelow()},
		},
	}
}
