// Package dram models the HBM2 memory behind the L2 slices: per-controller
// command queues over banked DRAM with the Table 1 timing parameters
// (tCL=12, tRP=12, tRC=40, tRAS=28, tRCD=12, tRRD=3). The covert-channel
// probe traffic is tuned to hit in L2, so DRAM mostly matters for preload
// warmup and for the noise analysis of §5 (a third kernel pushing the
// channel kernels to main memory); it is nonetheless modeled faithfully so
// miss traffic has realistic latency and bank contention.
package dram

import (
	"fmt"

	"gpunoc/internal/config"
	"gpunoc/internal/probe"
	"gpunoc/internal/ring"
)

// Request is one line fetch or writeback handed to a memory controller.
type Request struct {
	Addr  uint64
	Write bool
	// Done is invoked exactly once, at the cycle the data transfer
	// completes.
	Done func(now uint64)
	// Origin identifies the enqueuing component for checkpointing: Done is
	// a closure and cannot be serialized, so Controller.Restore rebuilds it
	// from (Origin, Addr, Write) via a caller-supplied factory. The L2
	// partition stores the global slice index here.
	Origin int

	arriveAt uint64
}

type bank struct {
	rowOpen    bool
	row        uint64
	readyAt    uint64 // earliest cycle a new column command may issue
	precharged uint64 // bookkeeping for tRAS: cycle the row was activated
}

// Controller is a single memory controller scheduling over its banks.
// Requests are served oldest-ready-first (an FR-FCFS approximation): each
// tick the controller scans a bounded window of the queue and issues
// commands to banks that can accept them, so independent banks proceed in
// parallel the way HBM2 channels do.
type Controller struct {
	timing   config.DRAMTiming
	banks    []bank
	rowBytes uint64

	queue    ring.Buffer[*Request]
	capacity int
	wake     func() // activity wake edge (see SetWaker); nil outside a scheduler

	lastActivate uint64 // for tRRD
	hasActivated bool

	// Counters.
	served, rowHits, rowMisses, dropped uint64

	pr *mcProbes // nil when uninstrumented (the fast path)
}

// mcProbes mirrors the controller's row-buffer outcome counters into a
// probe.Registry, plus a queue-wait histogram (arrival to command issue) and
// a queue-depth gauge.
type mcProbes struct {
	rowHits, rowMisses *probe.Counter
	queueWait          *probe.Hist
	depth              *probe.Gauge
}

// Instrument registers this controller's metrics with r under the given
// prefix (e.g. "dram/mc0"). A nil registry leaves it uninstrumented.
func (mc *Controller) Instrument(r *probe.Registry, prefix string) {
	if r == nil {
		return
	}
	mc.pr = &mcProbes{
		rowHits:   r.Counter(prefix + "/row_hits"),
		rowMisses: r.Counter(prefix + "/row_misses"),
		queueWait: r.Hist(prefix + "/queue_wait"),
		depth:     r.Gauge(prefix + "/queue_depth"),
	}
}

// NewController builds a controller with the given timing, bank count, row
// size in bytes, and queue capacity.
func NewController(t config.DRAMTiming, banks int, rowBytes, capacity int) (*Controller, error) {
	switch {
	case banks <= 0:
		return nil, fmt.Errorf("dram: non-positive bank count %d", banks)
	case rowBytes <= 0 || rowBytes&(rowBytes-1) != 0:
		return nil, fmt.Errorf("dram: row size %d not a positive power of two", rowBytes)
	case capacity <= 0:
		return nil, fmt.Errorf("dram: non-positive queue capacity %d", capacity)
	case t.TRC < t.TRAS:
		return nil, fmt.Errorf("dram: tRC %d < tRAS %d", t.TRC, t.TRAS)
	}
	return &Controller{
		timing:   t,
		banks:    make([]bank, banks),
		rowBytes: uint64(rowBytes),
		capacity: capacity,
	}, nil
}

// SetWaker registers the activity wake edge: w is invoked on every
// successful Enqueue, so the container that parked this controller (because
// Idle() held) knows to tick it again. A nil waker (the default) is correct
// when the controller is ticked exhaustively.
func (mc *Controller) SetWaker(w func()) { mc.wake = w }

// Enqueue submits a request. It returns false when the controller queue is
// full; the caller (the L2 slice) must retry later.
func (mc *Controller) Enqueue(now uint64, r *Request) bool {
	if mc.queue.Len() >= mc.capacity {
		mc.dropped++
		return false
	}
	if r.Done == nil {
		panic("dram: request with nil Done callback")
	}
	r.arriveAt = now
	mc.queue.Push(r)
	if mc.pr != nil {
		mc.pr.depth.Add(1)
	}
	if mc.wake != nil {
		mc.wake()
	}
	return true
}

// Pending returns the queue occupancy.
func (mc *Controller) Pending() int { return mc.queue.Len() }

func (mc *Controller) bankOf(addr uint64) int {
	return int((addr / mc.rowBytes) % uint64(len(mc.banks)))
}

func (mc *Controller) rowOf(addr uint64) uint64 {
	return addr / mc.rowBytes / uint64(len(mc.banks))
}

// Issue limits per tick: how many commands may start and how deep into the
// queue the scheduler looks for a ready bank.
const (
	issueWidth = 2
	scanWindow = 16
)

// Tick scans the head of the queue for requests whose banks can accept a
// command this cycle, issuing up to issueWidth of them (oldest first). Banks
// operate in parallel; per-bank timing still honours the DRAM parameters.
func (mc *Controller) Tick(now uint64) {
	issued := 0
	for i := 0; i < mc.queue.Len() && i < scanWindow && issued < issueWidth; {
		r := *mc.queue.At(i)
		b := &mc.banks[mc.bankOf(r.Addr)]
		if b.readyAt > now {
			i++
			continue
		}
		mc.service(now, r, b)
		mc.queue.RemoveAt(i)
		issued++
	}
}

// service issues the bank commands for r and schedules its completion.
func (mc *Controller) service(now uint64, r *Request, b *bank) {
	row := mc.rowOf(r.Addr)
	t := mc.timing
	if mc.pr != nil {
		mc.pr.queueWait.Observe(now - r.arriveAt)
		mc.pr.depth.Add(-1)
	}
	var dataAt uint64
	switch {
	case b.rowOpen && b.row == row:
		// Row hit: column access only.
		mc.rowHits++
		if mc.pr != nil {
			mc.pr.rowHits.Inc()
		}
		dataAt = now + uint64(t.TCL)
	case b.rowOpen:
		// Row conflict: precharge (respecting tRAS) + activate + column.
		mc.rowMisses++
		if mc.pr != nil {
			mc.pr.rowMisses.Inc()
		}
		pre := now
		if min := b.precharged + uint64(t.TRAS); pre < min {
			pre = min
		}
		if min := b.precharged + uint64(t.TRC) - uint64(t.TRP); pre < min {
			// tRC lower-bounds activate-to-activate on the same bank.
			pre = min
		}
		act := pre + uint64(t.TRP)
		if min := mc.lastActivate + uint64(t.TRRD); mc.hasActivated && act < min {
			act = min
		}
		b.row, b.precharged = row, act
		mc.lastActivate, mc.hasActivated = act, true
		dataAt = act + uint64(t.TRCD) + uint64(t.TCL)
	default:
		// Bank idle: activate + column.
		mc.rowMisses++
		if mc.pr != nil {
			mc.pr.rowMisses.Inc()
		}
		act := now
		if min := mc.lastActivate + uint64(t.TRRD); mc.hasActivated && act < min {
			act = min
		}
		b.rowOpen, b.row, b.precharged = true, row, act
		mc.lastActivate, mc.hasActivated = act, true
		dataAt = act + uint64(t.TRCD) + uint64(t.TCL)
	}
	b.readyAt = dataAt
	mc.served++
	r.Done(dataAt)
}

// Idle reports whether no requests are queued. An idle controller's Tick is
// a no-op (bank timing is tracked as absolute ready cycles, not countdowns),
// so the scheduler may park it until the next Enqueue.
func (mc *Controller) Idle() bool { return mc.queue.Len() == 0 }

// Stats is a snapshot of controller counters.
type Stats struct {
	Served, RowHits, RowMisses, Rejected uint64
}

// Stats returns the counter snapshot.
func (mc *Controller) Stats() Stats {
	return Stats{mc.served, mc.rowHits, mc.rowMisses, mc.dropped}
}
