package experiments

import (
	"strings"
	"testing"

	"gpunoc/internal/config"
	"gpunoc/internal/telemetry"
)

// TestTelemetryDeterministicAcrossParallelism pins the -telemetry contract:
// the window and event JSONL streams of every experiment are byte-identical
// regardless of the worker count, because each experiment owns a private
// sampler and windows encode with sorted keys.
func TestTelemetryDeterministicAcrossParallelism(t *testing.T) {
	cfg := config.Small()
	ids := []string{"fig2", "fig4"}
	type streams struct{ windows, events string }
	run := func(parallel int) map[string]streams {
		r := Runner{
			Parallel: parallel,
			Options:  Options{Scale: Quick, Seed: 7, Telemetry: true},
		}
		results, err := r.Run(&cfg, ids)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]streams{}
		for _, res := range results {
			if res.Err != nil {
				t.Fatalf("%s failed: %v", res.Experiment.ID, res.Err)
			}
			var w, e strings.Builder
			if err := telemetry.WriteWindowsJSONL(&w, res.TelemetryWindows); err != nil {
				t.Fatal(err)
			}
			if err := telemetry.WriteEventsJSONL(&e, res.TelemetryEvents); err != nil {
				t.Fatal(err)
			}
			out[res.Experiment.ID] = streams{windows: w.String(), events: e.String()}
		}
		return out
	}
	seq := run(1)
	par := run(8)
	for _, id := range ids {
		if seq[id].windows != par[id].windows {
			t.Errorf("%s window streams differ between -parallel 1 and 8", id)
		}
		if seq[id].events != par[id].events {
			t.Errorf("%s event streams differ between -parallel 1 and 8", id)
		}
		if seq[id].windows == "" {
			t.Errorf("%s produced no telemetry windows", id)
		}
	}
}

// TestTelemetryOffLeavesResultsUntouched: without Options.Telemetry the
// runner must not attach a sampler, and the Result telemetry fields stay
// empty — the nil-sampler fast path the byte-identity guarantee rests on.
func TestTelemetryOffLeavesResultsUntouched(t *testing.T) {
	cfg := config.Small()
	r := Runner{Parallel: 1, Options: Options{Scale: Quick, Seed: 7}}
	results, err := r.Run(&cfg, []string{"fig2"})
	if err != nil {
		t.Fatal(err)
	}
	if res := results[0]; res.TelemetryWindows != nil || res.TelemetryEvents != nil {
		t.Errorf("telemetry populated without Options.Telemetry: %d windows, %d events",
			len(res.TelemetryWindows), len(res.TelemetryEvents))
	}
	if cfg.Telemetry != nil || cfg.Probes != nil {
		t.Error("runner mutated the caller's config with instrumentation")
	}
}

// TestTelemetryDoesNotPerturbFigures: the figure an experiment produces must
// be identical with and without the sampler attached — telemetry observes
// the registry, never the simulation.
func TestTelemetryDoesNotPerturbFigures(t *testing.T) {
	cfg := config.Small()
	render := func(tel bool) string {
		r := Runner{Parallel: 1, Options: Options{Scale: Quick, Seed: 7, Telemetry: tel}}
		results, err := r.Run(&cfg, []string{"fig2"})
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Err != nil {
			t.Fatal(results[0].Err)
		}
		return results[0].Figure.Render()
	}
	bare, telemetered := render(false), render(true)
	if bare != telemetered {
		t.Errorf("figure changed when telemetry attached:\n%s\nvs\n%s", bare, telemetered)
	}
}
