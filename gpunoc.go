// Package gpunoc is the public facade of the library: a cycle-level GPU /
// hierarchical-NoC simulator plus a full implementation of the
// interconnect-based covert channel from "Network-on-Chip
// Microarchitecture-based Covert Channel in GPUs" (MICRO 2021).
//
// The typical flow is:
//
//	cfg := gpunoc.VoltaConfig()                     // Table 1 GPU model
//	params, _ := gpunoc.Calibrate(&cfg, gpunoc.ChannelParams{Kind: gpunoc.TPCChannel})
//	res, recovered, _ := gpunoc.SendBytes(&cfg, []byte("secret"), params)
//	fmt.Println(res.BitsPerSecond, res.ErrorRate, string(recovered))
//
// Lower layers are exposed for experimentation: engine.GPU runs arbitrary
// device programs, reveng reverse-engineers the topology from timing alone,
// experiments regenerates every figure and table of the paper, and baseline
// provides the prior-work channels of the Table 2 comparison.
package gpunoc

import (
	"fmt"

	"gpunoc/internal/config"
	"gpunoc/internal/core"
	"gpunoc/internal/device"
	"gpunoc/internal/engine"
	"gpunoc/internal/experiments"
	"gpunoc/internal/noise"
	"gpunoc/internal/reveng"
)

// Config is the simulated GPU configuration (re-exported).
type Config = config.Config

// ArbPolicy selects NoC arbitration (RR baseline, CRR, SRR countermeasure).
type ArbPolicy = config.ArbPolicy

// Arbitration policies.
const (
	ArbRR    = config.ArbRR
	ArbCRR   = config.ArbCRR
	ArbSRR   = config.ArbSRR
	ArbAge   = config.ArbAge
	ArbFixed = config.ArbFixed
)

// VoltaConfig returns the Table 1 Volta V100-like configuration.
func VoltaConfig() Config { return config.Volta() }

// SmallConfig returns a reduced topology (2 GPCs x 2 TPCs x 2 SMs) that
// keeps demos and tests fast while exercising the full hierarchy.
func SmallConfig() Config { return config.Small() }

// ChannelKind selects which shared interconnect channel carries a covert
// transmission.
type ChannelKind = core.Kind

// Channel kinds.
const (
	TPCChannel = core.TPCChannel
	GPCChannel = core.GPCChannel
)

// ChannelParams configures a covert transmission (Algorithm 2).
type ChannelParams = core.Params

// ChannelResult is the decoded outcome of a transmission.
type ChannelResult = core.Result

// Symbol is one transmitted unit (a bit, or two bits in multi-level mode).
type Symbol = core.Symbol

// Transmission is a prepared covert-channel run.
type Transmission = core.Transmission

// Coding selects the error-correcting code layered over a transmission's
// symbol stream (ChannelParams.Coding).
type Coding = core.Coding

// Coding schemes.
const (
	CodingNone       = core.CodingNone
	CodingRepetition = core.CodingRepetition
	CodingHamming74  = core.CodingHamming74
)

// NoiseKind selects a background-traffic generator's temporal pattern.
type NoiseKind = noise.Kind

// Noise generator kinds.
const (
	NoiseStream = noise.Stream
	NoiseBurst  = noise.Burst
	NoiseRandom = noise.Random
)

// NoiseSpec describes one background-traffic generator kernel.
type NoiseSpec = noise.Spec

// NoiseKernels builds generator kernels for the given specs (silent specs
// produce none); launch them on a GPU alongside a transmission, or pass
// them to Calibrate for noise-aware thresholds.
func NoiseKernels(cfg *Config, specs ...NoiseSpec) ([]device.KernelSpec, error) {
	return noise.Kernels(cfg, specs...)
}

// GPU is the simulated device (for custom kernels and experiments).
type GPU = engine.GPU

// NewGPU builds a simulated GPU from cfg.
func NewGPU(cfg Config) (*GPU, error) { return engine.New(cfg) }

// Calibrate determines the channel's latency thresholds empirically (§4.4)
// by transmitting a known preamble, and returns params ready for use. Any
// co kernels (e.g. NoiseKernels output) run alongside the calibration so
// thresholds reflect the channel's operating noise.
func Calibrate(cfg *Config, p ChannelParams, co ...device.KernelSpec) (ChannelParams, error) {
	return core.Calibrate(cfg, p, 0, co...)
}

// NewTPCTransmission prepares a TPC-channel transmission over the given TPCs
// (nil = all TPCs, the multi-TPC channel).
func NewTPCTransmission(cfg *Config, payload []Symbol, tpcs []int, p ChannelParams) (*Transmission, error) {
	return core.NewTPCTransmission(cfg, payload, tpcs, p)
}

// NewGPCTransmission prepares a GPC-channel transmission over the given GPCs
// (nil = all GPCs, the multi-GPC channel).
func NewGPCTransmission(cfg *Config, payload []Symbol, gpcs []int, p ChannelParams) (*Transmission, error) {
	return core.NewGPCTransmission(cfg, payload, gpcs, p)
}

// SendBytes transmits data over the covert channel configured by p (all
// TPCs or GPCs of the kind) and returns the decoded result plus the
// recovered bytes.
func SendBytes(cfg *Config, data []byte, p ChannelParams) (ChannelResult, []byte, error) {
	bps := p.BitsPerSymbol
	if bps == 0 {
		bps = 1
	}
	payload, err := core.BytesToSymbols(data, bps)
	if err != nil {
		return ChannelResult{}, nil, err
	}
	var tr *Transmission
	switch p.Kind {
	case core.GPCChannel:
		tr, err = core.NewGPCTransmission(cfg, payload, nil, p)
	default:
		tr, err = core.NewTPCTransmission(cfg, payload, nil, p)
	}
	if err != nil {
		return ChannelResult{}, nil, err
	}
	res, err := tr.Run()
	if err != nil {
		return ChannelResult{}, nil, err
	}
	// Reassemble the received symbol stream in payload order.
	received := make([]Symbol, 0, len(payload))
	for _, pair := range res.Pairs {
		received = append(received, pair.Received...)
	}
	if len(received) > len(payload) {
		received = received[:len(payload)]
	}
	for len(received) < len(payload) {
		received = append(received, 0)
	}
	got, err := core.SymbolsToBytes(received, bps)
	if err != nil {
		return res, nil, fmt.Errorf("gpunoc: reassembly failed: %w", err)
	}
	return res, got, nil
}

// BytesToSymbols and SymbolsToBytes convert payloads (re-exported helpers).
func BytesToSymbols(data []byte, bitsPerSymbol int) ([]Symbol, error) {
	return core.BytesToSymbols(data, bitsPerSymbol)
}

// SymbolsToBytes packs decoded symbols back into bytes.
func SymbolsToBytes(symbols []Symbol, bitsPerSymbol int) ([]byte, error) {
	return core.SymbolsToBytes(symbols, bitsPerSymbol)
}

// ReverseEngineerTopology recovers the TPC pairing of one SM (Fig 2) and the
// TPC->GPC grouping (Fig 3/4) purely from timing measurements, the way the
// paper's attacker does.
func ReverseEngineerTopology(cfg *Config) (pairOfSM0 int, gpcGroups [][]int, err error) {
	points, err := reveng.TPCSweep(cfg, 0, 4, 10)
	if err != nil {
		return 0, nil, err
	}
	pair, err := reveng.PairedSM(points)
	if err != nil {
		return 0, nil, err
	}
	opt := reveng.GPCProbeOptions{Reps: 8}
	if cfg.NumTPCs() <= 8 {
		opt.Background = -1
	}
	groups, err := reveng.MapGPCs(cfg, opt, 0)
	if err != nil {
		return 0, nil, err
	}
	return pair, groups, nil
}

// Experiments re-exports the per-figure harness.
type (
	// Figure is one regenerated paper artifact.
	Figure = experiments.Figure
	// ExperimentOptions scales experiment effort.
	ExperimentOptions = experiments.Options
)

// Experiment scales.
const (
	QuickScale = experiments.Quick
	FullScale  = experiments.Full
)
