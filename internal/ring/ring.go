// Package ring implements a growable FIFO ring buffer. The simulator's hot
// paths — link input queues and serialization pipes, L2 slice ingress
// queues, DRAM command queues, the SM's pending-packet list — are all
// bounded-in-practice FIFOs that the previous slice-based code drained with
// `q = q[1:]`, which strands the popped prefix and forces the backing array
// to be reallocated over and over. A ring reuses one backing array for the
// life of the queue: steady-state Push/Pop performs zero allocations.
package ring

// Buffer is a FIFO queue over a circular backing array. The zero value is an
// empty, ready-to-use queue. It is not safe for concurrent use; the
// simulation engine drives all queues from one goroutine.
type Buffer[T any] struct {
	buf  []T
	head int
	n    int
}

// Len returns the number of queued elements.
func (b *Buffer[T]) Len() int { return b.n }

// grow doubles the backing array (minimum 8) and linearizes the contents.
func (b *Buffer[T]) grow() {
	c := len(b.buf) * 2
	if c < 8 {
		c = 8
	}
	nb := make([]T, c)
	for i := 0; i < b.n; i++ {
		nb[i] = b.buf[(b.head+i)%len(b.buf)]
	}
	b.buf, b.head = nb, 0
}

// Push appends v at the back.
func (b *Buffer[T]) Push(v T) {
	if b.n == len(b.buf) {
		b.grow()
	}
	b.buf[(b.head+b.n)%len(b.buf)] = v
	b.n++
}

// Front returns a pointer to the oldest element. It panics on an empty
// buffer, which would indicate a caller that skipped its Len check.
func (b *Buffer[T]) Front() *T {
	if b.n == 0 {
		panic("ring: Front on empty buffer")
	}
	return &b.buf[b.head]
}

// At returns a pointer to the i-th element from the front (0 == Front). The
// pointer is invalidated by the next Push/Pop/RemoveAt.
func (b *Buffer[T]) At(i int) *T {
	if i < 0 || i >= b.n {
		panic("ring: index out of range")
	}
	return &b.buf[(b.head+i)%len(b.buf)]
}

// Pop removes and returns the oldest element. The vacated slot is zeroed so
// the ring does not pin popped pointers against the garbage collector.
func (b *Buffer[T]) Pop() T {
	if b.n == 0 {
		panic("ring: Pop on empty buffer")
	}
	var zero T
	v := b.buf[b.head]
	b.buf[b.head] = zero
	b.head = (b.head + 1) % len(b.buf)
	b.n--
	return v
}

// RemoveAt removes and returns the i-th element from the front, preserving
// the order of the rest. The shorter side of the ring is shifted (the DRAM
// scheduler removes from inside a small scan window, so this stays cheap).
func (b *Buffer[T]) RemoveAt(i int) T {
	if i < 0 || i >= b.n {
		panic("ring: index out of range")
	}
	v := b.buf[(b.head+i)%len(b.buf)]
	var zero T
	if i < b.n-i-1 {
		// Shift the front segment [0, i) back by one.
		for j := i; j > 0; j-- {
			b.buf[(b.head+j)%len(b.buf)] = b.buf[(b.head+j-1)%len(b.buf)]
		}
		b.buf[b.head] = zero
		b.head = (b.head + 1) % len(b.buf)
	} else {
		// Shift the tail segment (i, n) forward by one.
		for j := i; j < b.n-1; j++ {
			b.buf[(b.head+j)%len(b.buf)] = b.buf[(b.head+j+1)%len(b.buf)]
		}
		b.buf[(b.head+b.n-1)%len(b.buf)] = zero
	}
	b.n--
	return v
}
