package config

import (
	"testing"

	"gpunoc/internal/probe"
)

func TestHashIgnoresObserversAndWorkerKnobs(t *testing.T) {
	a := Small()
	b := Small()
	b.ExhaustiveTick = true
	b.EngineWorkers = 8
	b.Meter = &CycleMeter{}
	b.Probes = probe.NewRegistry()
	if a.Hash() != b.Hash() {
		t.Fatal("hash changed with non-semantic fields")
	}
}

func TestHashSeesSemanticFields(t *testing.T) {
	base := Small()
	for name, mutate := range map[string]func(*Config){
		"seed":     func(c *Config) { c.Seed++ },
		"arb":      func(c *Config) { c.NoC.Arbitration = ArbSRR },
		"slices":   func(c *Config) { c.NumL2Slices *= 2 },
		"jitter":   func(c *Config) { c.WarpIssueJitter++ },
		"disabled": func(c *Config) { c.DisabledTPCSlots = append(c.DisabledTPCSlots, 3) },
		"nvlink":   func(c *Config) { c.NVLink.HopLatency = 99 },
		"mesh":     func(c *Config) { c.MeshGPUs = 4 },
	} {
		c := base.Clone()
		mutate(&c)
		if c.Hash() == base.Hash() {
			t.Errorf("%s: mutation not reflected in hash", name)
		}
	}
}

func TestHashDistinguishesPresets(t *testing.T) {
	small, volta := Small(), Volta()
	if small.Hash() == volta.Hash() {
		t.Fatal("small and volta hash equal")
	}
}
