package experiments

import (
	"fmt"

	"gpunoc/internal/config"
	"gpunoc/internal/core"
	"gpunoc/internal/device"
	"gpunoc/internal/engine"
	"gpunoc/internal/stats"
)

func newGPU(cfg *config.Config) (*engine.GPU, error) { return engine.New(*cfg) }

// The countermeasure artifacts (§6) register themselves with the experiment
// registry.
func init() {
	MustRegister(Experiment{
		ID: "fig15", Order: 130,
		Title:   "SM0's time under RR/CRR/SRR arbitration as SM1's traffic grows",
		Section: "§6, Figure 15",
		Run:     Fig15,
		Check:   func(_ *config.Config, f *Figure) error { return CheckFig15(f) },
	})
	MustRegister(Experiment{
		ID: "srr-defeat", Order: 140,
		Title:   "The channel works under RR and collapses under SRR",
		Section: "§6 (channel under SRR)",
		Run:     SRRChannelDefeat,
		Check:   func(_ *config.Config, f *Figure) error { return CheckSRRChannelDefeat(f) },
	})
	MustRegister(Experiment{
		ID: "srr-tradeoff", Order: 150,
		Title:   "SRR cost on memory-bound vs compute-bound kernels",
		Section: "§6 (SRR performance cost)",
		Run:     SRRTradeoff,
		Check:   func(_ *config.Config, f *Figure) error { return CheckSRRTradeoff(f) },
	})
}

// Fig15 regenerates Figure 15 (the §6 simulation): SM0 and SM1 each run two
// warps of continuous write traffic; SM1's traffic volume sweeps from 0 to
// 100% of SM0's, under RR, CRR, and SRR arbitration. Each curve is
// normalized to its own zero-contention baseline, matching the paper's
// presentation (SRR holds SM0 constant; RR and CRR rise linearly).
func Fig15(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "fig15",
		Title:  "Simulation comparison of arbitration algorithms",
		XLabel: "fraction of memory access for SM1 (%)",
		YLabel: "SM0 time normalized to same-arbitration solo",
	}
	warps := 2 // §6: "each SM has 2 warps allocated"
	ops := opt.pick(10, 25)
	fractions := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	for _, pol := range []config.ArbPolicy{config.ArbRR, config.ArbCRR, config.ArbSRR} {
		c := *cfg
		c.NoC.Arbitration = pol
		solo, err := soloTime(&c, 0, ops, warps, true)
		if err != nil {
			return nil, err
		}
		var xs, ys []float64
		for _, frac := range fractions {
			acts := []activation{{sm: 0, ops: ops, warps: warps, write: true}}
			if contOps := int(frac * float64(ops)); contOps > 0 {
				acts = append(acts, activation{sm: 1, ops: contOps, warps: warps, write: true})
			}
			times, err := runActivations(&c, acts)
			if err != nil {
				return nil, err
			}
			xs = append(xs, frac*100)
			ys = append(ys, float64(times[0])/float64(solo))
		}
		f.addSeries(pol.String(), xs, ys)
	}
	f.note("curves are normalized per arbitration policy; see the SRR trade-off " +
		"experiment for the absolute cost SRR imposes on solo workloads")
	return f, nil
}

// CheckFig15 asserts the countermeasure result: RR and CRR rise roughly
// linearly toward ~2x while SRR stays flat.
func CheckFig15(f *Figure) error {
	for _, name := range []string{"RR", "CRR"} {
		s, ok := f.seriesByName(name)
		if !ok {
			return fmt.Errorf("fig15: missing series %q", name)
		}
		_, slope, r2, err := stats.LinearFit(s.X, s.Y)
		if err != nil {
			return err
		}
		if slope <= 0.004 || r2 < 0.8 {
			return fmt.Errorf("fig15: %s not linear-increasing (slope %.4f/%%, r2 %.2f)", name, slope, r2)
		}
		if final := s.Y[len(s.Y)-1]; final < 1.6 {
			return fmt.Errorf("fig15: %s reaches only %.2fx at full contention", name, final)
		}
	}
	srr, ok := f.seriesByName("SRR")
	if !ok {
		return fmt.Errorf("fig15: missing SRR series")
	}
	lo, _ := stats.Min(srr.Y)
	hi, _ := stats.Max(srr.Y)
	if hi-lo > 0.08 {
		return fmt.Errorf("fig15: SRR varies by %.3f across the sweep; the channel is not closed", hi-lo)
	}
	return nil
}

// SRRChannelDefeat demonstrates the countermeasure end-to-end: the TPC
// covert channel that works under RR collapses to coin-flipping under SRR.
func SRRChannelDefeat(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "srr-defeat",
		Title:  "Covert channel error rate under baseline vs secure arbitration",
		Header: []string{"arbitration", "error rate", "kbps"},
	}
	bits := opt.pick(64, 256)
	payload := core.AlternatingPayload(bits, 2)
	// Calibrate once under RR; the attacker cannot recalibrate around SRR
	// because there is no latency difference left to find.
	p, err := calibratedParams(cfg, core.TPCChannel, 4, 1, opt.seed())
	if err != nil {
		return nil, err
	}
	for _, pol := range []config.ArbPolicy{config.ArbRR, config.ArbCRR, config.ArbSRR} {
		c := *cfg
		c.NoC.Arbitration = pol
		tr, err := core.NewTPCTransmission(&c, payload, []int{0}, p)
		if err != nil {
			return nil, err
		}
		res, err := tr.Run()
		if err != nil {
			return nil, err
		}
		f.Rows = append(f.Rows, []string{
			pol.String(),
			fmt.Sprintf("%.4f", res.ErrorRate),
			fmt.Sprintf("%.1f", res.BitsPerSecond/1e3),
		})
		f.addSeries(pol.String(), []float64{0}, []float64{res.ErrorRate})
	}
	return f, nil
}

// CheckSRRChannelDefeat asserts that RR and CRR still leak while SRR pushes
// the error rate toward 50% (no channel).
func CheckSRRChannelDefeat(f *Figure) error {
	get := func(name string) (float64, error) {
		s, ok := f.seriesByName(name)
		if !ok {
			return 0, fmt.Errorf("srr-defeat: missing %q", name)
		}
		return s.Y[0], nil
	}
	rr, err := get("RR")
	if err != nil {
		return err
	}
	crr, err := get("CRR")
	if err != nil {
		return err
	}
	srr, err := get("SRR")
	if err != nil {
		return err
	}
	switch {
	case rr > 0.05:
		return fmt.Errorf("srr-defeat: RR channel error %.3f, want working channel", rr)
	case crr > 0.15:
		return fmt.Errorf("srr-defeat: CRR should NOT stop the channel (error %.3f)", crr)
	case srr < 0.3:
		return fmt.Errorf("srr-defeat: SRR error %.3f, want ~0.5 (channel closed)", srr)
	}
	return nil
}

// SRRTradeoff quantifies the §6 cost of the countermeasure: a solo
// memory-intensive kernel loses up to ~2x bandwidth under SRR while a
// compute-intensive kernel is unaffected.
func SRRTradeoff(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "srr-tradeoff",
		Title:  "Performance cost of strict round-robin arbitration",
		Header: []string{"workload", "arbitration", "time (cycles)", "slowdown vs RR"},
	}
	ops := opt.pick(10, 30)

	memTime := func(pol config.ArbPolicy) (uint64, error) {
		c := *cfg
		c.NoC.Arbitration = pol
		return soloTime(&c, 0, ops, 4, true)
	}
	compTime := func(pol config.ArbPolicy) (uint64, error) {
		c := *cfg
		c.NoC.Arbitration = pol
		g, err := engine.New(c)
		if err != nil {
			return 0, err
		}
		spec := device.KernelSpec{
			Name:          "compute",
			Blocks:        1,
			WarpsPerBlock: 4,
			New: func(b, w int) device.Program {
				return &device.ComputeLoop{Count: ops * 40, IterCost: 8}
			},
		}
		k, err := g.Launch(spec)
		if err != nil {
			return 0, err
		}
		if err := g.RunKernels(50_000_000); err != nil {
			return 0, err
		}
		return k.Duration(), nil
	}

	for _, wl := range []struct {
		name string
		run  func(config.ArbPolicy) (uint64, error)
	}{
		{"memory-intensive", memTime},
		{"compute-intensive", compTime},
	} {
		base, err := wl.run(config.ArbRR)
		if err != nil {
			return nil, err
		}
		var xs, ys []float64
		for i, pol := range []config.ArbPolicy{config.ArbRR, config.ArbCRR, config.ArbSRR} {
			t, err := wl.run(pol)
			if err != nil {
				return nil, err
			}
			slow := float64(t) / float64(base)
			f.Rows = append(f.Rows, []string{
				wl.name, pol.String(), fmt.Sprintf("%d", t), fmt.Sprintf("%.2fx", slow),
			})
			xs = append(xs, float64(i))
			ys = append(ys, slow)
		}
		f.addSeries(wl.name, xs, ys)
	}
	return f, nil
}

// CheckSRRTradeoff asserts the trade-off: SRR costs the memory-bound kernel
// dearly (>=1.5x; the paper reports up to 2x bandwidth loss / 60% slowdown)
// and the compute-bound kernel nothing.
func CheckSRRTradeoff(f *Figure) error {
	mem, ok := f.seriesByName("memory-intensive")
	if !ok {
		return fmt.Errorf("srr-tradeoff: missing memory series")
	}
	comp, ok := f.seriesByName("compute-intensive")
	if !ok {
		return fmt.Errorf("srr-tradeoff: missing compute series")
	}
	srrMem := mem.Y[len(mem.Y)-1]
	srrComp := comp.Y[len(comp.Y)-1]
	if srrMem < 1.5 {
		return fmt.Errorf("srr-tradeoff: SRR slows memory workload only %.2fx, want >=1.5x", srrMem)
	}
	if srrComp > 1.05 {
		return fmt.Errorf("srr-tradeoff: SRR slows compute workload %.2fx, want ~1x", srrComp)
	}
	return nil
}
