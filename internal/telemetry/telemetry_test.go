package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"gpunoc/internal/probe"
)

// TestSamplerWindowBoundaries drives a sampler cycle-by-cycle and checks that
// windows cut exactly at multiples of W, carry the per-window deltas, and
// that a trailing partial window is never emitted.
func TestSamplerWindowBoundaries(t *testing.T) {
	r := probe.NewRegistry()
	c := r.Counter("x")
	rec := &Recorder{}
	s := NewSampler(10, rec)

	for i := 0; i < 25; i++ {
		c.Add(2)
		s.Step(1, r)
	}
	ws := rec.Windows()
	if len(ws) != 2 {
		t.Fatalf("25 cycles at W=10: want 2 windows, got %d", len(ws))
	}
	for i, w := range ws {
		if w.Index != uint64(i) || w.Start != uint64(i)*10 || w.End != uint64(i+1)*10 {
			t.Errorf("window %d: bad bounds %+v", i, w)
		}
		if d := w.Counters["x"]; d != 20 {
			t.Errorf("window %d: counter delta = %d, want 20", i, d)
		}
	}
}

// TestSamplerFastForwardCrossing checks the idle-jump path: one Step spanning
// several windows emits them all, with the first absorbing the whole delta
// and the rest empty — exactly what stepping cycle-by-cycle produces when the
// registry is quiet.
func TestSamplerFastForwardCrossing(t *testing.T) {
	r := probe.NewRegistry()
	r.Counter("x").Add(7)
	rec := &Recorder{}
	s := NewSampler(10, rec)

	s.Step(35, r)
	ws := rec.Windows()
	if len(ws) != 3 {
		t.Fatalf("jump of 35 at W=10: want 3 windows, got %d", len(ws))
	}
	if d := ws[0].Counters["x"]; d != 7 {
		t.Errorf("first window delta = %d, want 7", d)
	}
	for i, w := range ws[1:] {
		if len(w.Counters) != 0 {
			t.Errorf("empty window %d has counters %v", i+1, w.Counters)
		}
	}
	// The next single step lands in the partially elapsed 4th window.
	s.Step(4, r)
	if got := len(rec.Windows()); got != 3 {
		t.Fatalf("mid-window step emitted a window: %d", got)
	}
	s.Step(1, r)
	if got := len(rec.Windows()); got != 4 {
		t.Fatalf("boundary step: want 4 windows, got %d", got)
	}
}

// TestSamplerOccupancyEWMA checks rate normalization via OccStat.Units, the
// pre-window EWMA baseline, its decay through quiet windows, and that the
// entry drops out of the sparse encoding once the baseline decays away.
func TestSamplerOccupancyEWMA(t *testing.T) {
	r := probe.NewRegistry()
	o := r.Occupancy("noc/l0/occupancy", 4)
	rec := &Recorder{}
	s := NewSampler(10, rec)

	o.AddBusy(20) // 20/(4*10) = 0.5 utilization
	s.Step(10, r)
	w := rec.Windows()[0]
	ow, ok := w.Occ["noc/l0/occupancy"]
	if !ok {
		t.Fatal("busy link missing from window")
	}
	if ow.Busy != 20 || ow.Rate != 0.5 || ow.EWMA != 0 {
		t.Fatalf("window 0 occ = %+v, want busy 20 rate 0.5 ewma 0", ow)
	}

	s.Step(10, r) // quiet window: rate 0, baseline now 0.0625 pre-window
	w = rec.Windows()[1]
	ow, ok = w.Occ["noc/l0/occupancy"]
	if !ok {
		t.Fatal("decaying link missing from window 1")
	}
	if ow.Busy != 0 || ow.Rate != 0 || ow.EWMA != 0.0625 {
		t.Fatalf("window 1 occ = %+v, want busy 0 rate 0 ewma 0.0625", ow)
	}

	// 0.0625 · 0.875^k < 1e-6 after k = 127 windows; well past that the
	// entry must have left the sparse encoding.
	s.Step(10*200, r)
	last := rec.Windows()[len(rec.Windows())-1]
	if _, ok := last.Occ["noc/l0/occupancy"]; ok {
		t.Fatalf("decayed link still emitted after 200 quiet windows: %+v", last.Occ)
	}
}

// TestSamplerSparseEncoding checks that unchanged metrics stay out of the
// maps: a gauge that holds its value, a histogram with no new samples, and a
// counter that never moves.
func TestSamplerSparseEncoding(t *testing.T) {
	r := probe.NewRegistry()
	r.Counter("quiet")
	g := r.Gauge("depth")
	h := r.Hist("lat")
	rec := &Recorder{}
	s := NewSampler(10, rec)

	g.Set(3)
	h.Observe(100)
	s.Step(10, r)
	w := rec.Windows()[0]
	if w.Gauges["depth"] != 3 {
		t.Errorf("changed gauge missing: %v", w.Gauges)
	}
	if hd := w.Hists["lat"]; hd.Count != 1 || hd.Sum != 100 {
		t.Errorf("hist delta = %+v, want {1 100}", hd)
	}
	if _, ok := w.Counters["quiet"]; ok {
		t.Errorf("idle counter emitted: %v", w.Counters)
	}

	s.Step(10, r) // nothing changed
	w = rec.Windows()[1]
	if len(w.Counters) != 0 || len(w.Gauges) != 0 || len(w.Hists) != 0 {
		t.Errorf("unchanged window not empty: %+v", w)
	}
}

// TestSamplerNilOff pins the zero-value-off fast path: a nil sampler ignores
// Step, and nil receivers report zero config.
func TestSamplerNilOff(t *testing.T) {
	var s *Sampler
	s.Step(1000, probe.NewRegistry()) // must not panic
	if s.WindowCycles() != 0 {
		t.Error("nil sampler has a window width")
	}
}

// TestWriteWindowsJSONLDeterministic pins the byte-determinism the CI diff
// relies on: two encodings of the same windows are identical, one object per
// line, and decode back to the source.
func TestWriteWindowsJSONLDeterministic(t *testing.T) {
	r := probe.NewRegistry()
	c := r.Counter("noc/l0/in0/denies")
	o := r.Occupancy("noc/l0/occupancy", 4)
	rec := &Recorder{}
	s := NewSampler(16, rec)
	for i := 0; i < 64; i++ {
		c.Add(uint64(i % 3))
		o.AddBusy(uint64(i % 5))
		s.Step(1, r)
	}
	var a, b bytes.Buffer
	if err := WriteWindowsJSONL(&a, rec.Windows()); err != nil {
		t.Fatal(err)
	}
	if err := WriteWindowsJSONL(&b, rec.Windows()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of the same windows differ")
	}
	lines := bytes.Split(bytes.TrimSuffix(a.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != len(rec.Windows()) {
		t.Fatalf("%d lines for %d windows", len(lines), len(rec.Windows()))
	}
	var w Window
	if err := json.Unmarshal(lines[0], &w); err != nil {
		t.Fatalf("line 0 does not decode: %v", err)
	}
	if w.End != 16 {
		t.Errorf("decoded window end = %d, want 16", w.End)
	}
}

// TestSortedOccNames checks the deterministic iteration helper.
func TestSortedOccNames(t *testing.T) {
	w := Window{Occ: map[string]OccWindow{"b": {}, "a": {}, "c": {}}}
	got := SortedOccNames(w)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("SortedOccNames = %v", got)
	}
}
