// Package device defines the programming model for simulated GPU kernels.
// A kernel is a grid of thread blocks; each block's warps run a Program — a
// state machine stepped by the SM whenever the warp is ready. Programs issue
// warp-wide memory operations, busy-wait for cycle counts, or synchronize on
// the SM's clock register (the clock() intrinsic of §4.1), which is all the
// paper's sender/receiver kernels need.
package device

import (
	"fmt"

	"gpunoc/internal/warp"
)

// OpKind discriminates the operations a Program can request.
type OpKind int

const (
	// OpMem issues a warp-wide memory operation.
	OpMem OpKind = iota
	// OpWait busy-waits for a fixed number of cycles.
	OpWait
	// OpSyncClock busy-waits until the SM clock register satisfies
	// clock % Modulus == Phase — the paper's low-overhead synchronization
	// primitive (§4.4: "the lower n bits of the clock registers are
	// compared against a fixed value").
	OpSyncClock
	// OpDone terminates the warp.
	OpDone
)

// Op is one operation requested by a Program.
type Op struct {
	Kind    OpKind
	Mem     warp.MemOp
	Cycles  uint64 // OpWait duration
	Modulus uint64 // OpSyncClock modulus (must be > 0)
	Phase   uint64 // OpSyncClock target residue
}

// Mem wraps a memory op.
func Mem(m warp.MemOp) Op { return Op{Kind: OpMem, Mem: m} }

// Wait busy-waits n cycles.
func Wait(n uint64) Op { return Op{Kind: OpWait, Cycles: n} }

// SyncClock waits until clock % modulus == phase.
func SyncClock(modulus, phase uint64) Op {
	return Op{Kind: OpSyncClock, Modulus: modulus, Phase: phase % max64(modulus, 1)}
}

// Done terminates the warp.
func Done() Op { return Op{Kind: OpDone} }

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Ctx is the per-warp execution context handed to Program.Step. The SM
// fills it in before every step.
type Ctx struct {
	// SMID is the physical SM the warp landed on (the %smid register).
	SMID int
	// Block and Warp identify the warp within its kernel.
	Block int
	Warp  int
	// Clock is the SM's 32-bit clock register value at step time.
	Clock uint32
	// Clock64 is the unwrapped counter (convenience for long experiments).
	Clock64 uint64
	// LastLatency is the cycles the previous memory op took from first
	// injection to last reply — the receiver's contention probe.
	LastLatency uint64
}

// Program is a warp's instruction stream, expressed as a resumable state
// machine: Step is invoked whenever the warp is ready for its next
// operation. Implementations are single-warp; the factory in KernelSpec
// builds one instance per warp.
type Program interface {
	Step(ctx *Ctx) Op
}

// StepFunc adapts a closure to the Program interface.
type StepFunc func(ctx *Ctx) Op

// Step invokes f.
func (f StepFunc) Step(ctx *Ctx) Op { return f(ctx) }

// KernelSpec describes a kernel launch.
type KernelSpec struct {
	// Name tags the kernel in metrics.
	Name string
	// Blocks is the grid size; each block occupies one SM.
	Blocks int
	// WarpsPerBlock is the number of warps each block runs.
	WarpsPerBlock int
	// New builds the program for (block, warp).
	New func(block, warpID int) Program
}

// Validate checks the spec.
func (k *KernelSpec) Validate() error {
	switch {
	case k.Blocks <= 0:
		return fmt.Errorf("device: kernel %q has %d blocks", k.Name, k.Blocks)
	case k.WarpsPerBlock <= 0:
		return fmt.Errorf("device: kernel %q has %d warps per block", k.Name, k.WarpsPerBlock)
	case k.New == nil:
		return fmt.Errorf("device: kernel %q has no program factory", k.Name)
	}
	return nil
}

// Streamer is the synthetic memory benchmark of Algorithm 1: Count
// sequential warp-wide operations over a buffer, each advancing by the warp
// footprint so that every memory partition is touched. It records the
// latency of each op.
type Streamer struct {
	Base      uint64
	LineBytes int
	Write     bool
	Atomic    bool
	Count     int
	// Uncoalesced selects the 32-requests-per-warp pattern (default
	// coalesced when false).
	Uncoalesced bool
	// WrapBytes, when non-zero, wraps the streaming window so the
	// working set stays L2-resident.
	WrapBytes uint64
	// StartDelay busy-waits before the first access (used to skew
	// contenders).
	StartDelay uint64

	// Latencies accumulates per-op latencies (filled during simulation).
	Latencies []uint64

	issued  int
	started bool
}

// Step implements Program.
func (s *Streamer) Step(ctx *Ctx) Op {
	if !s.started {
		s.started = true
		if s.StartDelay > 0 {
			return Wait(s.StartDelay)
		}
	}
	if s.issued > 0 && ctx.LastLatency > 0 {
		s.Latencies = append(s.Latencies, ctx.LastLatency)
	}
	if s.issued >= s.Count {
		return Done()
	}
	footprint := uint64(s.LineBytes)
	if s.Uncoalesced {
		footprint = uint64(s.LineBytes) * 32
	}
	off := uint64(s.issued) * footprint
	if s.WrapBytes > 0 {
		off %= s.WrapBytes
	}
	s.issued++
	var m warp.MemOp
	switch {
	case s.Atomic:
		m = warp.CoalescedOp(s.Base+off, false)
		m.Atomic = true
	case s.Uncoalesced:
		m = warp.UncoalescedOp(s.Base+off, s.Write, s.LineBytes)
	default:
		m = warp.CoalescedOp(s.Base+off, s.Write)
	}
	return Mem(m)
}

// Issued reports how many memory ops the streamer has issued.
func (s *Streamer) Issued() int { return s.issued }

// ClockReader reads the SM clock register once and terminates — the Fig 6
// survey kernel.
type ClockReader struct {
	Value uint32
	SMID  int
	read  bool
}

// Step implements Program.
func (c *ClockReader) Step(ctx *Ctx) Op {
	if !c.read {
		c.read = true
		c.Value = ctx.Clock
		c.SMID = ctx.SMID
	}
	return Done()
}

// ComputeLoop models a compute-bound kernel: it spins for Count fixed-cost
// iterations without touching memory. Used for the §6 SRR overhead analysis
// (compute-intensive workloads lose nothing under SRR).
type ComputeLoop struct {
	Count      int
	IterCost   uint64
	iterations int
}

// Step implements Program.
func (c *ComputeLoop) Step(ctx *Ctx) Op {
	if c.iterations >= c.Count {
		return Done()
	}
	c.iterations++
	cost := c.IterCost
	if cost == 0 {
		cost = 4
	}
	return Wait(cost)
}
