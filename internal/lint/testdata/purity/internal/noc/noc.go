// Fixture: package-level state in a simulator package, with the two
// sanctioned shapes — a sentinel error and a reasoned waiver.
package noc

import "errors"

// ErrStall is a sentinel: immutable by convention, permitted.
var ErrStall = errors.New("noc: stalled")

// routeCache is package state: flagged.
var routeCache = map[string]int{}

// hits and misses share one spec: both flagged.
var hits, misses int

//lint:allow purity fixture: documented single-write table
var waived []int

// A compile-time assertion carries no state: permitted.
var _ = ErrStall

// Touch keeps the flagged variables referenced so the fixture type-checks.
func Touch(k string) int {
	hits++
	misses--
	waived = append(waived, hits)
	return routeCache[k] + misses + len(waived)
}
