package link

import (
	"testing"

	"gpunoc/internal/packet"
	"gpunoc/internal/probe"
)

// TestSaturatedLinkOccupancy drives a 2-input link from both senders faster
// than the channel drains and checks the probes report what the paper's
// contention story predicts: occupancy pinned at 1.0, a queue-depth
// high-water mark that grows with the backlog, and grant/deny counters that
// split the arbitration between the inputs.
func TestSaturatedLinkOccupancy(t *testing.T) {
	r := probe.NewRegistry()
	var c capture
	l, err := New("sat", 2, 1, 1, 0, newRR(t, 2), c.deliver)
	if err != nil {
		t.Fatal(err)
	}
	l.Instrument(r, "noc/")

	// Each WriteReq serializes for DataFlits cycles at rate 1/1; enqueue one
	// per input per cycle, so the offered load is 2*DataFlits times the
	// capacity and the backlog grows monotonically.
	const cycles = 400
	id := uint64(0)
	for now := uint64(0); now < cycles; now++ {
		id++
		l.Enqueue(now, 0, mkPacket(id, packet.WriteReq))
		id++
		l.Enqueue(now, 1, mkPacket(id, packet.WriteReq))
		l.Tick(now)
	}

	snap := r.Snapshot(cycles)
	occ, ok := snap.FindOccupancy("noc/sat/occupancy")
	if !ok {
		t.Fatal("occupancy metric missing")
	}
	if occ.Value < 0.99 {
		t.Errorf("saturated link occupancy = %.3f, want ~1.0", occ.Value)
	}
	depth, ok := snap.FindGauge("noc/sat/queue_depth")
	if !ok {
		t.Fatal("queue_depth metric missing")
	}
	// 2 packets arrive per cycle, at most 1/DataFlits departs: the backlog
	// at the end must dominate the gauge and keep growing throughout.
	if depth.Max < cycles {
		t.Errorf("queue_depth high-water = %d, want >= %d (growing backlog)", depth.Max, cycles)
	}
	// The final backlog sits within one grant of the high-water mark: the
	// queues were still growing when the run ended.
	if depth.Value < depth.Max-1 {
		t.Errorf("queue_depth = %d at end but max %d: backlog stopped growing", depth.Value, depth.Max)
	}
	for _, name := range []string{"noc/sat/in0/grants", "noc/sat/in1/grants"} {
		g, ok := snap.FindCounter(name)
		if !ok || g.Value == 0 {
			t.Errorf("%s = %v, want > 0 (RR must serve both inputs)", name, g.Value)
		}
	}
	d0, _ := snap.FindCounter("noc/sat/in0/denies")
	if d0.Value == 0 {
		t.Error("input 0 never denied on a saturated 2:1 mux")
	}
}

// TestInstrumentationIsProbeFree replays an identical traffic schedule
// through a bare and an instrumented link and requires bit-identical
// delivery: probes observe the simulation, never perturb it.
func TestInstrumentationIsProbeFree(t *testing.T) {
	run := func(r *probe.Registry) ([]uint64, []uint64) {
		var c capture
		l, err := New("pf", 2, 3, 2, 4, newRR(t, 2), c.deliver)
		if err != nil {
			t.Fatal(err)
		}
		l.Instrument(r, "noc/") // nil registry: must be a no-op
		id := uint64(0)
		for now := uint64(0); now < 300; now++ {
			if now%3 == 0 {
				id++
				l.Enqueue(now, 0, mkPacket(id, packet.WriteReq))
			}
			if now%5 == 0 {
				id++
				l.Enqueue(now, 1, mkPacket(id, packet.ReadReq))
			}
			l.Tick(now)
		}
		ids := make([]uint64, len(c.pkts))
		for i, p := range c.pkts {
			ids[i] = p.ID
		}
		return ids, c.times
	}

	r := probe.NewRegistry()
	r.EnableTrace(64)
	gotIDs, gotTimes := run(r)
	wantIDs, wantTimes := run(nil)
	if len(gotIDs) != len(wantIDs) || len(gotIDs) == 0 {
		t.Fatalf("delivery count diverged: %d vs %d", len(gotIDs), len(wantIDs))
	}
	for i := range wantIDs {
		if gotIDs[i] != wantIDs[i] || gotTimes[i] != wantTimes[i] {
			t.Fatalf("delivery %d diverged: instrumented (%d@%d) vs bare (%d@%d)",
				i, gotIDs[i], gotTimes[i], wantIDs[i], wantTimes[i])
		}
	}
	// And the instrumented run must actually have recorded something.
	if st, ok := r.Snapshot(300).FindCounter("noc/pf/in0/grants"); !ok || st.Value == 0 {
		t.Error("instrumented run recorded no grants")
	}
}
