package arb

import (
	"testing"
	"testing/quick"

	"gpunoc/internal/config"
	"gpunoc/internal/packet"
)

func pk(sm, warp int, op, issue uint64) *packet.Packet {
	return &packet.Packet{
		Kind:       packet.WriteReq,
		Tag:        packet.WarpTag{SM: sm, Warp: warp, Op: op},
		IssueCycle: issue,
	}
}

func mustNew(t *testing.T, p config.ArbPolicy, n int) Arbiter {
	t.Helper()
	a, err := New(p, n, 32, packet.DataFlits)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewRejectsBadArgs(t *testing.T) {
	if _, err := New(config.ArbRR, 0, 32, 4); err == nil {
		t.Error("zero inputs should fail")
	}
	if _, err := New(config.ArbCRR, 2, 0, 4); err == nil {
		t.Error("zero CRR hold should fail")
	}
	if _, err := New(config.ArbSRR, 2, 32, 0); err == nil {
		t.Error("zero SRR slot should fail")
	}
	if _, err := New(config.ArbPolicy(99), 2, 32, 4); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestPolicyReported(t *testing.T) {
	for _, p := range []config.ArbPolicy{config.ArbRR, config.ArbCRR, config.ArbSRR, config.ArbAge, config.ArbFixed} {
		if got := mustNew(t, p, 2).Policy(); got != p {
			t.Errorf("Policy() = %v, want %v", got, p)
		}
	}
}

// TestRRAlternates verifies locally fair alternation between two loaded
// inputs — the behaviour the covert channel exploits.
func TestRRAlternates(t *testing.T) {
	a := mustNew(t, config.ArbRR, 2)
	heads := []*packet.Packet{pk(0, 0, 1, 0), pk(1, 0, 1, 0)}
	want := []int{0, 1, 0, 1, 0, 1}
	for i, w := range want {
		if got := a.Grant(uint64(i), heads); got != w {
			t.Fatalf("grant %d = %d, want %d", i, got, w)
		}
	}
}

func TestRRWorkConserving(t *testing.T) {
	a := mustNew(t, config.ArbRR, 4)
	heads := make([]*packet.Packet, 4)
	heads[2] = pk(2, 0, 1, 0)
	for i := 0; i < 10; i++ {
		if got := a.Grant(uint64(i), heads); got != 2 {
			t.Fatalf("lone requester not granted: %d", got)
		}
	}
	if got := a.Grant(0, make([]*packet.Packet, 4)); got != -1 {
		t.Fatalf("empty mux granted %d", got)
	}
}

// TestCRRHoldsWarp verifies the grant is held while the head packet belongs
// to the same warp operation.
func TestCRRHoldsWarp(t *testing.T) {
	a := mustNew(t, config.ArbCRR, 2)
	w0 := []*packet.Packet{pk(0, 0, 1, 0), pk(1, 0, 1, 0)}
	// First grant goes to input 0; subsequent packets of the same warp op
	// keep the grant even though input 1 is waiting.
	for i := 0; i < 5; i++ {
		if got := a.Grant(uint64(i), w0); got != 0 {
			t.Fatalf("grant %d = %d, want hold on 0", i, got)
		}
	}
	// When input 0's warp op changes, the grant rotates to input 1.
	w0[0] = pk(0, 0, 2, 5)
	if got := a.Grant(5, w0); got != 1 {
		t.Fatalf("grant after warp change = %d, want 1", got)
	}
}

func TestCRRHoldLimit(t *testing.T) {
	a, err := New(config.ArbCRR, 2, 3, packet.DataFlits)
	if err != nil {
		t.Fatal(err)
	}
	heads := []*packet.Packet{pk(0, 0, 1, 0), pk(1, 0, 1, 0)}
	got := make([]int, 8)
	for i := range got {
		got[i] = a.Grant(uint64(i), heads)
	}
	want := []int{0, 0, 0, 1, 1, 1, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grants = %v, want %v", got, want)
		}
	}
}

func TestCRRReleasesWhenInputEmpties(t *testing.T) {
	a := mustNew(t, config.ArbCRR, 2)
	heads := []*packet.Packet{pk(0, 0, 1, 0), pk(1, 0, 1, 0)}
	if a.Grant(0, heads) != 0 {
		t.Fatal("first grant should pick 0")
	}
	heads[0] = nil
	if got := a.Grant(1, heads); got != 1 {
		t.Fatalf("grant = %d, want rotation to 1 after input 0 emptied", got)
	}
}

// TestSRRTemporalPartitioning pins the countermeasure property: an input is
// granted only during its own slot, and an idle owner's slot is wasted
// rather than donated — so the other input cannot observe the idleness.
func TestSRRTemporalPartitioning(t *testing.T) {
	a := mustNew(t, config.ArbSRR, 2)
	slot := uint64(packet.DataFlits)
	// Only input 0 has traffic; it must be granted only in its own slots.
	heads := []*packet.Packet{pk(0, 0, 1, 0), nil}
	for now := uint64(0); now < 8*slot; now++ {
		got := a.Grant(now, heads)
		owner := int(now/slot) % 2
		if owner == 0 && got != 0 {
			t.Fatalf("cycle %d: owner 0 not granted (got %d)", now, got)
		}
		if owner == 1 && got != -1 {
			t.Fatalf("cycle %d: idle slot donated to input %d", now, got)
		}
	}
}

func TestSRROwnerRotation(t *testing.T) {
	a := mustNew(t, config.ArbSRR, 3).(*strictRR)
	slot := uint64(packet.DataFlits)
	for now := uint64(0); now < 9*slot; now += slot {
		want := int(now/slot) % 3
		if got := a.Owner(now); got != want {
			t.Fatalf("Owner(%d) = %d, want %d", now, got, want)
		}
	}
}

func TestAgeBasedGrantsOldest(t *testing.T) {
	a := mustNew(t, config.ArbAge, 3)
	heads := []*packet.Packet{pk(0, 0, 1, 30), pk(1, 0, 1, 10), pk(2, 0, 1, 20)}
	if got := a.Grant(100, heads); got != 1 {
		t.Fatalf("grant = %d, want oldest (1)", got)
	}
	// Ties break toward the lowest input index.
	heads = []*packet.Packet{pk(0, 0, 1, 10), pk(1, 0, 1, 10)}
	if got := a.Grant(100, heads); got != 0 {
		t.Fatalf("tie grant = %d, want 0", got)
	}
	if got := a.Grant(100, make([]*packet.Packet, 3)); got != -1 {
		t.Fatalf("empty grant = %d", got)
	}
}

func TestFixedPriority(t *testing.T) {
	a := mustNew(t, config.ArbFixed, 3)
	heads := []*packet.Packet{nil, pk(1, 0, 1, 0), pk(2, 0, 1, 0)}
	if got := a.Grant(0, heads); got != 1 {
		t.Fatalf("grant = %d, want 1", got)
	}
	heads[0] = pk(0, 0, 1, 99)
	if got := a.Grant(1, heads); got != 0 {
		t.Fatalf("grant = %d, want 0 (starves others)", got)
	}
}

// Property: every work-conserving policy grants some loaded input whenever
// at least one input is loaded, and never grants an empty input. SRR is
// exempt from the first half (its idle slots burn bandwidth by design) but
// must still never grant an empty input.
func TestQuickGrantSoundness(t *testing.T) {
	policies := []config.ArbPolicy{config.ArbRR, config.ArbCRR, config.ArbSRR, config.ArbAge, config.ArbFixed}
	for _, p := range policies {
		p := p
		a, err := New(p, 4, 8, packet.DataFlits)
		if err != nil {
			t.Fatal(err)
		}
		var now uint64
		f := func(mask uint8, issue0, issue1, issue2, issue3 uint16) bool {
			heads := make([]*packet.Packet, 4)
			issues := []uint16{issue0, issue1, issue2, issue3}
			loaded := false
			for i := 0; i < 4; i++ {
				if mask&(1<<i) != 0 {
					heads[i] = pk(i, 0, 1, uint64(issues[i]))
					loaded = true
				}
			}
			got := a.Grant(now, heads)
			now++
			if got >= 0 && heads[got] == nil {
				return false // granted an empty input
			}
			if got == -1 && loaded && p != config.ArbSRR {
				return false // work-conserving policy wasted a grant
			}
			if got == -1 && !loaded {
				return true
			}
			return got >= -1 && got < 4
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%v: %v", p, err)
		}
	}
}

// Property: under RR with both inputs always loaded, grants over any window
// of even length split exactly evenly — the local fairness the paper assumes.
func TestQuickRRFairness(t *testing.T) {
	f := func(n uint8) bool {
		rounds := int(n%64)*2 + 2
		a, err := New(config.ArbRR, 2, 8, 4)
		if err != nil {
			return false
		}
		heads := []*packet.Packet{pk(0, 0, 1, 0), pk(1, 0, 1, 0)}
		counts := [2]int{}
		for i := 0; i < rounds; i++ {
			counts[a.Grant(uint64(i), heads)]++
		}
		return counts[0] == counts[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
