package experiments

import (
	"fmt"

	"gpunoc/internal/config"
	"gpunoc/internal/core"
	"gpunoc/internal/device"
	"gpunoc/internal/engine"
	"gpunoc/internal/stats"
	"gpunoc/internal/warp"
)

// The §5 noise / side-channel studies and the beyond-the-paper ablations
// register themselves with the experiment registry.
func init() {
	MustRegister(Experiment{
		ID: "noise", Order: 170,
		Title:   "Channel quality under a third kernel's L2 traffic",
		Section: "§5 (impact of noise)",
		Run:     NoiseExperiment,
		Check:   func(_ *config.Config, f *Figure) error { return CheckNoise(f) },
	})
	MustRegister(Experiment{
		ID: "ablation-warps", Order: 180,
		Title:   "Sender warp count sweep (why the paper uses 5 warps)",
		Section: "beyond the paper (§4.4 operating point)",
		Run:     SenderWarpsAblation,
		Check: func(_ *config.Config, f *Figure) error {
			s, ok := f.seriesByName("error rate")
			if !ok {
				return fmt.Errorf("ablation-warps: missing error-rate series")
			}
			for i, x := range s.X {
				if x == 5 && s.Y[i] > 0.1 {
					return fmt.Errorf("ablation-warps: 5-warp sender error %.3f", s.Y[i])
				}
			}
			return nil
		},
	})
	MustRegister(Experiment{
		ID: "ablation-slot", Order: 190,
		Title:   "Timing-slot length sweep (the §4.4 slot guidance)",
		Section: "beyond the paper (§4.4 slot length)",
		Run:     SlotAblation,
		Check:   func(_ *config.Config, f *Figure) error { return CheckSlotAblation(f) },
	})
	MustRegister(Experiment{
		ID: "ablation-speedup", Order: 200,
		Title:   "GPC reply-channel speedup sweep (the Fig 5b calibration surface)",
		Section: "beyond the paper (calibration)",
		Run:     SpeedupAblation,
		Check:   func(_ *config.Config, f *Figure) error { return CheckSpeedupAblation(f) },
	})
	MustRegister(Experiment{
		ID: "clock-fuzz", Order: 210,
		Title:   "Clock fuzzing degrades the channel; a wider slot recovers it",
		Section: "§6 (clock fuzzing)",
		Run:     ClockFuzzExperiment,
		Check:   func(_ *config.Config, f *Figure) error { return CheckClockFuzz(f) },
	})
	MustRegister(Experiment{
		ID: "side-channel", Order: 220,
		Title:   "Linear correlation between victim L2 traffic and spy NoC latency",
		Section: "§5 (side channel)",
		Run:     SideChannelExperiment,
		Check:   func(_ *config.Config, f *Figure) error { return CheckSideChannel(f) },
	})
}

// NoiseExperiment examines the §5 "Impact of Noise" analysis: a third
// kernel streams reads through the L2 while a single-TPC covert channel
// runs. Placement decides everything. A third kernel confined to other GPCs
// is absorbed — its traffic rides other GPC reply links, the channel's hot
// preloaded window stays MRU in the 16-way L2, and DRAM bounds its eviction
// rate. The same kernel co-located in the receiver's GPC saturates the
// shared GPC reply channel and collapses the covert channel. This is the
// quantitative basis for §5's advice that the attacker claim all cores: a
// full-GPU multi-TPC transmission leaves the intruder nowhere harmful to
// land.
func NoiseExperiment(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "noise",
		Title:  "Covert channel error rate under third-kernel L2 noise",
		XLabel: "noise mode (0=none, 1=other GPCs, 2=receiver's GPC)",
		YLabel: "error rate",
		Header: []string{"noise placement", "error rate", "kbps"},
	}
	bits := opt.pick(64, 200)
	payload := core.AlternatingPayload(bits, 2)
	p, err := calibratedParams(cfg, core.TPCChannel, 4, 1, opt.seed())
	if err != nil {
		return nil, err
	}
	durLimit := uint64(bits+64) * p.SlotCycles * 3
	channelGPC := cfg.GPCOfTPC(0)
	// Small, L2-resident per-warp windows keep the noise kernel's read rate
	// LSU-bound (like the sender's own traffic), so the contention it
	// causes is NoC contention, not DRAM-throughput-bound eviction.
	const noiseWS = uint64(4096)
	const noiseBase = uint64(1) << 28

	mkNoise := func(inChannelGPC bool) device.KernelSpec {
		return device.KernelSpec{
			Name:   "noise",
			Blocks: cfg.NumSMs(), // both SM slots of every TPC
			// Enough warps to keep each noise SM's LSU pipeline full
			// despite every access missing to DRAM.
			WarpsPerBlock: 6,
			New: func(b, w int) device.Program {
				started := false
				var startClock uint64
				opIdx := 0
				return device.StepFunc(func(ctx *device.Ctx) device.Op {
					if !started {
						started = true
						if cfg.TPCOfSM(ctx.SMID) == 0 {
							return device.Done() // never share the channel's TPC
						}
						if (cfg.GPCOfSM(ctx.SMID) == channelGPC) != inChannelGPC {
							return device.Done()
						}
						startClock = ctx.Clock64
					}
					if ctx.Clock64-startClock > durLimit {
						return device.Done()
					}
					off := uint64(opIdx) * 1024 % noiseWS
					opIdx++
					base := noiseBase + uint64(ctx.SMID*6+w)*noiseWS + off
					return device.Mem(warp.UncoalescedOp(base, false, cfg.L2LineBytes))
				})
			},
		}
	}

	var xs, ys []float64
	for i, mode := range []struct {
		name  string
		noise bool
		inGPC bool
	}{
		{"none", false, false},
		{"streaming, other GPCs only", true, false},
		{"streaming, receiver's GPC", true, true},
	} {
		tr, err := core.NewTPCTransmission(cfg, payload, []int{0}, p)
		if err != nil {
			return nil, err
		}
		g, err := engine.New(*cfg)
		if err != nil {
			return nil, err
		}
		if err := tr.Launch(g, 0); err != nil {
			return nil, err
		}
		if mode.noise {
			g.Preload(noiseBase, uint64(cfg.NumSMs()*6)*noiseWS)
			if _, err := g.Launch(mkNoise(mode.inGPC)); err != nil {
				return nil, err
			}
		}
		res, err := tr.Finish(g)
		if err != nil {
			return nil, fmt.Errorf("noise run (%s): %w", mode.name, err)
		}
		xs = append(xs, float64(i))
		ys = append(ys, res.ErrorRate)
		f.Rows = append(f.Rows, []string{
			mode.name,
			fmt.Sprintf("%.4f", res.ErrorRate),
			fmt.Sprintf("%.1f", res.BitsPerSecond/1e3),
		})
	}
	f.addSeries("error rate", xs, ys)
	f.note("third-kernel noise outside the channel's GPC is absorbed (its traffic " +
		"rides other GPC reply links); noise inside the receiver's GPC contends on " +
		"the shared reply channel — a steady shift the threshold can survive at " +
		"small scale, a collapse when enough co-located SMs saturate the link " +
		"(Volta) — hence the §5 advice that the attacker claim all cores")
	return f, nil
}

// CheckNoise asserts the placement-dependent structure: the clean channel
// works, other-GPC noise is absorbed, and noise in the receiver's GPC never
// hurts less than remote noise. How much same-GPC noise hurts is
// scale-dependent: on the small topology its steady contention shifts both
// latency levels together and the threshold separation survives, while on
// the Volta topology the larger co-located noise saturates the shared reply
// channel and collapses the channel (error -> ~50%).
func CheckNoise(f *Figure) error {
	s, ok := f.seriesByName("error rate")
	if !ok || len(s.Y) != 3 {
		return fmt.Errorf("noise: malformed series")
	}
	clean, farNoise, nearNoise := s.Y[0], s.Y[1], s.Y[2]
	switch {
	case clean > 0.05:
		return fmt.Errorf("noise: clean-run error %.3f, channel should work", clean)
	case farNoise > 0.2:
		return fmt.Errorf("noise: other-GPC noise collapsed the channel (error %.3f)", farNoise)
	case nearNoise+0.02 < farNoise:
		return fmt.Errorf("noise: same-GPC noise (%.3f) hurt less than remote noise (%.3f)",
			nearNoise, farNoise)
	}
	return nil
}

// SenderWarpsAblation sweeps the sender's warp count (the paper uses 5 for
// the TPC channel): too few warps leave LSU pipeline gaps during which the
// receiver observes no contention, raising the error rate.
func SenderWarpsAblation(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "ablation-warps",
		Title:  "Sender warp count vs channel quality (paper uses 5)",
		XLabel: "sender warps",
		YLabel: "error rate",
		Header: []string{"warps", "error rate", "kbps"},
	}
	bits := opt.pick(64, 200)
	payload := core.AlternatingPayload(bits, 2)
	var xs, ys []float64
	for _, warps := range []int{1, 2, 5, 8} {
		p := core.Params{Kind: core.TPCChannel, Iterations: 4, SyncPeriod: 16,
			SenderWarps: warps, Seed: opt.seed()}
		p, err := core.Calibrate(cfg, p, 32)
		if err != nil {
			// A 1-warp sender may not even calibrate; record it as a
			// dead operating point.
			xs = append(xs, float64(warps))
			ys = append(ys, 0.5)
			f.Rows = append(f.Rows, []string{fmt.Sprintf("%d", warps), "uncalibratable", "-"})
			continue
		}
		tr, err := core.NewTPCTransmission(cfg, payload, []int{0}, p)
		if err != nil {
			return nil, err
		}
		res, err := tr.Run()
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(warps))
		ys = append(ys, res.ErrorRate)
		f.Rows = append(f.Rows, []string{
			fmt.Sprintf("%d", warps),
			fmt.Sprintf("%.4f", res.ErrorRate),
			fmt.Sprintf("%.1f", res.BitsPerSecond/1e3),
		})
	}
	f.addSeries("error rate", xs, ys)
	return f, nil
}

// SlotAblation sweeps the timing-slot length at fixed iterations: slots too
// short for the probe round trip collapse the channel, oversized slots only
// waste bandwidth — the "slightly larger than the L2 round trip" guidance of
// §4.4.
func SlotAblation(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "ablation-slot",
		Title:  "Timing slot length vs channel quality at 4 iterations",
		XLabel: "slot length (fraction of default T)",
		YLabel: "error rate / kbps",
		Header: []string{"slot scale", "slot (cycles)", "error rate", "kbps"},
	}
	bits := opt.pick(64, 200)
	payload := core.AlternatingPayload(bits, 2)
	base := core.DefaultSlot(core.TPCChannel, 4)
	var xs, errs, rates []float64
	for _, scale := range []float64{0.5, 0.75, 1.0, 1.5, 2.0} {
		slot := uint64(float64(base) * scale)
		p := core.Params{Kind: core.TPCChannel, Iterations: 4, SyncPeriod: 16,
			SlotCycles: slot, Seed: opt.seed()}
		p, err := core.Calibrate(cfg, p, 32)
		if err != nil {
			xs = append(xs, scale)
			errs = append(errs, 0.5)
			rates = append(rates, 0)
			f.Rows = append(f.Rows, []string{
				fmt.Sprintf("%.2f", scale), fmt.Sprintf("%d", slot), "uncalibratable", "-"})
			continue
		}
		tr, err := core.NewTPCTransmission(cfg, payload, []int{0}, p)
		if err != nil {
			return nil, err
		}
		res, err := tr.Run()
		if err != nil {
			return nil, err
		}
		xs = append(xs, scale)
		errs = append(errs, res.ErrorRate)
		rates = append(rates, res.BitsPerSecond/1e3)
		f.Rows = append(f.Rows, []string{
			fmt.Sprintf("%.2f", scale), fmt.Sprintf("%d", slot),
			fmt.Sprintf("%.4f", res.ErrorRate), fmt.Sprintf("%.1f", res.BitsPerSecond/1e3),
		})
	}
	f.addSeries("error rate", xs, errs)
	f.addSeries("kbps", xs, rates)
	return f, nil
}

// CheckSlotAblation asserts that oversizing the slot costs bandwidth without
// helping error, i.e. the default sits near the paper's guidance.
func CheckSlotAblation(f *Figure) error {
	rates, ok := f.seriesByName("kbps")
	if !ok {
		return fmt.Errorf("ablation-slot: missing kbps")
	}
	errs, _ := f.seriesByName("error rate")
	n := len(rates.Y)
	if rates.Y[n-1] >= rates.Y[n-2] {
		return fmt.Errorf("ablation-slot: doubling the slot did not cost bandwidth")
	}
	// The default (scale 1.0, index 2) should already be near error-free.
	if errs.Y[2] > 0.08 {
		return fmt.Errorf("ablation-slot: default slot error %.3f", errs.Y[2])
	}
	return nil
}

// SpeedupAblation sweeps the GPC reply-channel speedup and reports the
// 7-TPC read slowdown of Fig 5b — the calibration surface behind the 2.14x
// figure, showing how the concentration factor controls GPC-channel
// leakage (§2.3, §4.5).
func SpeedupAblation(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "ablation-speedup",
		Title:  "GPC reply speedup vs full-GPC read slowdown (calibration surface)",
		XLabel: "GPC reply rate (flits/cycle)",
		YLabel: "full-GPC read slowdown (x)",
		Header: []string{"reply rate", "slowdown"},
	}
	warps := 4
	ops := opt.pick(8, 20)
	gpcTPCs := cfg.TPCsOfGPC(0)
	base := float64(cfg.NoC.GPCRepRateNum) / float64(cfg.NoC.GPCRepRateDen)
	var xs, ys []float64
	for _, scale := range []float64{0.6, 0.8, 1.0, 1.4, 2.0} {
		c := *cfg
		c.NoC.GPCRepRateNum = int(base * scale * 100)
		c.NoC.GPCRepRateDen = 100
		ref := gpcTPCs[0]
		measure := func(n int) (uint64, error) {
			var acts []activation
			for _, tpc := range gpcTPCs[:n] {
				for _, sm := range c.SMsOfTPC(tpc) {
					o := ops
					if tpc != ref {
						o = ops * 3
					}
					acts = append(acts, activation{sm: sm, ops: o, warps: warps, write: false})
				}
			}
			times, err := runActivations(&c, acts)
			if err != nil {
				return 0, err
			}
			var t uint64
			for _, sm := range c.SMsOfTPC(ref) {
				if times[sm] > t {
					t = times[sm]
				}
			}
			return t, nil
		}
		solo, err := measure(1)
		if err != nil {
			return nil, err
		}
		full, err := measure(len(gpcTPCs))
		if err != nil {
			return nil, err
		}
		slow := float64(full) / float64(solo)
		rate := base * scale
		xs = append(xs, rate)
		ys = append(ys, slow)
		f.Rows = append(f.Rows, []string{fmt.Sprintf("%.2f", rate), fmt.Sprintf("%.2fx", slow)})
	}
	f.addSeries("slowdown", xs, ys)
	f.note("lower speedup -> stronger GPC contention; the shipped calibration "+
		"(%.2f flits/cycle) reproduces the paper's 2.14x at 7 TPCs on the Volta topology", base)
	return f, nil
}

// CheckSpeedupAblation asserts monotonicity: more reply bandwidth means less
// GPC contention.
func CheckSpeedupAblation(f *Figure) error {
	s, ok := f.seriesByName("slowdown")
	if !ok {
		return fmt.Errorf("ablation-speedup: missing series")
	}
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] > s.Y[i-1]+0.05 {
			return fmt.Errorf("ablation-speedup: slowdown not monotone in reply rate: %v", s.Y)
		}
	}
	if s.Y[0] < s.Y[len(s.Y)-1]+0.3 {
		return fmt.Errorf("ablation-speedup: sweep shows no sensitivity: %v", s.Y)
	}
	return nil
}

// ClockFuzzExperiment reproduces the §6 clock-fuzzing discussion: quantizing
// the clock registers (TimeWarp-style) degrades the clock-based
// synchronization and raises the error rate, but — unlike strict round-robin
// arbitration — it does not remove the covert channel: widening the timing
// slot to swallow the quantization error restores communication at reduced
// bandwidth.
func ClockFuzzExperiment(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "clock-fuzz",
		Title:  "Clock fuzzing vs the covert channel (degrades, does not remove)",
		Header: []string{"fuzz (bits)", "slot", "error rate", "kbps"},
	}
	bits := opt.pick(64, 200)
	payload := core.AlternatingPayload(bits, 2)
	run := func(fuzzBits, iters int, slotScale float64) (core.Result, error) {
		c := *cfg
		c.ClockFuzzBits = fuzzBits
		p := core.Params{Kind: core.TPCChannel, Iterations: iters, SyncPeriod: 16, Seed: opt.seed()}
		p.SlotCycles = uint64(float64(core.DefaultSlot(core.TPCChannel, iters)) * slotScale)
		p, err := core.Calibrate(&c, p, 32)
		if err != nil {
			return core.Result{}, err
		}
		tr, err := core.NewTPCTransmission(&c, payload, []int{0}, p)
		if err != nil {
			return core.Result{}, err
		}
		return tr.Run()
	}
	type point struct {
		name      string
		fuzz      int
		iters     int
		slotScale float64
	}
	var xs, ys []float64
	for i, pt := range []point{
		{"no fuzz", 0, 4, 1},
		{"10-bit fuzz, same operating point", 10, 4, 1},
		// The attacker's counter: a denser flood (more iterations) inside
		// a 3x slot swallows the fuzz-induced misalignment.
		{"10-bit fuzz, 8 iterations, 3x slot", 10, 8, 3},
	} {
		res, err := run(pt.fuzz, pt.iters, pt.slotScale)
		if err != nil {
			// Calibration may fail outright under fuzzing at the original
			// slot: record the channel as dead at that operating point.
			f.Rows = append(f.Rows, []string{
				fmt.Sprintf("%d", pt.fuzz), fmt.Sprintf("%.0fx", pt.slotScale), "dead (uncalibratable)", "0"})
			xs = append(xs, float64(i))
			ys = append(ys, 0.5)
			continue
		}
		f.Rows = append(f.Rows, []string{
			fmt.Sprintf("%d", pt.fuzz), fmt.Sprintf("%.0fx", pt.slotScale),
			fmt.Sprintf("%.4f", res.ErrorRate), fmt.Sprintf("%.1f", res.BitsPerSecond/1e3),
		})
		xs = append(xs, float64(i))
		ys = append(ys, res.ErrorRate)
	}
	f.addSeries("error rate", xs, ys)
	f.note("clock fuzzing does not necessarily remove the covert channel (§6): " +
		"the attacker recovers by widening the timing slot at a bandwidth cost")
	return f, nil
}

// CheckClockFuzz asserts the §6 claim: fuzzing hurts at the original slot
// but the widened-slot attacker communicates again.
func CheckClockFuzz(f *Figure) error {
	s, ok := f.seriesByName("error rate")
	if !ok || len(s.Y) != 3 {
		return fmt.Errorf("clock-fuzz: malformed series")
	}
	clean, fuzzed, recovered := s.Y[0], s.Y[1], s.Y[2]
	switch {
	case clean > 0.05:
		return fmt.Errorf("clock-fuzz: baseline error %.3f", clean)
	case fuzzed < clean+0.03:
		return fmt.Errorf("clock-fuzz: fuzzing did not degrade the channel (%.3f vs %.3f)", fuzzed, clean)
	case recovered > 0.15:
		return fmt.Errorf("clock-fuzz: widened slot did not recover the channel (%.3f)", recovered)
	}
	return nil
}

// SideChannelExperiment reproduces the §5 side-channel sketch: a spy
// co-located in a victim's TPC continuously writes and measures its own
// latency; because the TPC channel is directly shared, the spy's latency
// rises linearly with the victim's L2 access rate — i.e. with the victim's
// L1 miss rate, leaking a classic cache-attack signal without touching the
// victim's caches.
func SideChannelExperiment(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "side-channel",
		Title:  "NoC contention as an L1-miss-rate probe (§5 side-channel sketch)",
		XLabel: "victim L2 accesses per 100 cycles (proxy for L1 miss rate)",
		YLabel: "spy-observed write time (normalized)",
	}
	warps := 4
	ops := opt.pick(10, 25)
	solo, err := soloTime(cfg, 1, ops, warps, true)
	if err != nil {
		return nil, err
	}
	// The victim runs on SM0 with a varying amount of L2 traffic (its
	// L1-resident fraction does not reach the NoC); the spy writes from
	// SM1, the other SM of TPC0.
	var xs, ys []float64
	for _, victimOps := range []int{0, ops / 4, ops / 2, 3 * ops / 4, ops} {
		acts := []activation{{sm: 1, ops: ops, warps: warps, write: true}}
		if victimOps > 0 {
			acts = append(acts, activation{sm: 0, ops: victimOps, warps: warps, write: false})
		}
		times, err := runActivations(cfg, acts)
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(victimOps)/float64(ops))
		ys = append(ys, float64(times[1])/float64(solo))
	}
	f.addSeries("spy latency", xs, ys)
	_, slope, r2, err := stats.LinearFit(xs, ys)
	if err != nil {
		return nil, err
	}
	f.note("linear correlation between victim L2 traffic and spy latency: slope %.3f, r2 %.3f "+
		"(§5: \"a linear correlation between the NoC channel contention and the amount of L2 accesses\")",
		slope, r2)
	return f, nil
}

// CheckSideChannel asserts the §5 claim: the spy's latency correlates
// linearly and positively with the victim's L2 traffic.
func CheckSideChannel(f *Figure) error {
	s, ok := f.seriesByName("spy latency")
	if !ok {
		return fmt.Errorf("side-channel: missing series")
	}
	_, slope, r2, err := stats.LinearFit(s.X, s.Y)
	if err != nil {
		return err
	}
	if slope <= 0.1 || r2 < 0.85 {
		return fmt.Errorf("side-channel: no linear leakage (slope %.3f, r2 %.3f)", slope, r2)
	}
	return nil
}
