package engine

// Tests for the sharded parallel tick loop: worker-count resolution, pool
// lifecycle, and the saturated all-to-all workload the -race CI leg runs to
// hammer the phase barrier under maximum cross-shard traffic.

import (
	"reflect"
	"testing"

	"gpunoc/internal/config"
	"gpunoc/internal/link"
	"gpunoc/internal/probe"
	"gpunoc/internal/sm"
)

// TestWorkerResolution pins the Config.EngineWorkers contract: automatic
// selection is GOMAXPROCS-aware, explicit counts are capped at the shard
// count, and exhaustive or instrumented configurations always run the
// sequential loop.
func TestWorkerResolution(t *testing.T) {
	mk := func(mut func(*config.Config)) *GPU {
		cfg := testCfg()
		mut(&cfg)
		g := mkGPU(t, cfg)
		t.Cleanup(g.Close)
		return g
	}
	// Small topology: 2 GPCs, 4 MCs, so the shard cap is 4.
	if got := mk(func(c *config.Config) { c.EngineWorkers = 8 }).Workers(); got != 4 {
		t.Errorf("EngineWorkers=8 on small resolved to %d, want shard cap 4", got)
	}
	if got := mk(func(c *config.Config) { c.EngineWorkers = 3 }).Workers(); got != 3 {
		t.Errorf("EngineWorkers=3 resolved to %d", got)
	}
	if got := mk(func(c *config.Config) { c.EngineWorkers = 1 }).Workers(); got != 1 {
		t.Errorf("EngineWorkers=1 resolved to %d", got)
	}
	if got := mk(func(c *config.Config) { c.EngineWorkers = 0 }).Workers(); got < 1 || got > 4 {
		t.Errorf("automatic selection resolved to %d, want within [1, 4]", got)
	}
	if got := mk(func(c *config.Config) {
		c.EngineWorkers = 4
		c.ExhaustiveTick = true
	}).Workers(); got != 1 {
		t.Errorf("exhaustive mode resolved to %d workers, want 1", got)
	}
	if got := mk(func(c *config.Config) {
		c.EngineWorkers = 4
		c.Probes = probe.NewRegistry()
	}).Workers(); got != 1 {
		t.Errorf("instrumented config resolved to %d workers, want 1", got)
	}
}

// TestCloseIdempotent: Close may be called repeatedly, on parallel and
// sequential engines alike, and a closed parallel engine still steps
// correctly (the coordinator drains the whole phase itself).
func TestCloseIdempotent(t *testing.T) {
	cfg := testCfg()
	cfg.EngineWorkers = 4
	g := mkGPU(t, cfg)
	preloadStreamers(g, 1)
	spec, _ := streamerKernel("c", 1, 1, 5, true, true, cfg.L2LineBytes)
	if _, err := g.Launch(spec); err != nil {
		t.Fatal(err)
	}
	g.RunFor(100)
	g.Close()
	g.Close()

	seq := mkGPU(t, testCfg())
	seq.Close()
	seq.Close()
}

// TestParallelEngineSaturatedAllToAll is the stress leg CI runs under
// -race: every Volta SM streams uncoalesced writes, so all 80 SMs, all 40
// TPC muxes, every GPC channel, all 48 crossbar ports, every slice, and the
// reply subnet carry traffic at once — the maximum number of packets
// crossing shard boundaries per cycle. 10k cycles at 8 workers must be
// bit-identical to the sequential engine on every observable.
func TestParallelEngineSaturatedAllToAll(t *testing.T) {
	type observed struct {
		Now    uint64
		SMs    []sm.Stats
		Slices [3]uint64
		Links  []link.Stats
	}
	run := func(workers int) observed {
		cfg := config.Volta()
		cfg.Seed = 7
		cfg.EngineWorkers = workers
		g := mkGPU(t, cfg)
		defer g.Close()
		if workers >= 2 && g.Workers() != workers {
			t.Fatalf("EngineWorkers=%d resolved to %d workers", workers, g.Workers())
		}
		warps := 2
		preloadStreamers(g, cfg.NumSMs()*warps)
		// Enough ops that no warp finishes within the measured window.
		spec, _ := streamerKernel("sat", cfg.NumSMs(), warps, 1<<20, true, true, cfg.L2LineBytes)
		if _, err := g.Launch(spec); err != nil {
			t.Fatal(err)
		}
		g.RunFor(10_000)

		var o observed
		o.Now = g.Now()
		for i := 0; i < cfg.NumSMs(); i++ {
			o.SMs = append(o.SMs, g.SM(i).Stats())
		}
		st := g.Partition().Stats()
		o.Slices = [3]uint64{st.Served, st.Hits, st.Misses}
		for i := 0; i < cfg.NumTPCs(); i++ {
			o.Links = append(o.Links, g.Network().TPCRequestLink(i).Stats(),
				g.Network().TPCReplyLink(i).Stats())
		}
		for i := 0; i < cfg.NumGPCs; i++ {
			o.Links = append(o.Links, g.Network().GPCRequestLink(i).Stats(),
				g.Network().GPCReplyLink(i).Stats())
		}
		return o
	}

	want := run(1)
	got := run(8)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("8-worker saturated run diverges from sequential engine")
	}
	var served uint64 = want.Slices[0]
	if served < 1000 {
		t.Fatalf("only %d slice requests served in 10k cycles; workload is not saturating", served)
	}
}
