// Package telemetry turns the probe layer's end-of-run snapshots into a
// deterministic stream of fixed-width windows. An engine-driven Sampler is
// stepped once per simulated cycle (and once per idle fast-forward jump);
// every W cycles it diffs the current probe.Snapshot against the previous
// one into a Window of per-metric deltas and rates, folds each link's
// occupancy rate into an EWMA baseline, and hands the window to every
// registered Watcher. The first real watcher, Detector (detector.go), scores
// the window stream for the covert channel's slot-paced signature.
//
// The layer follows the probe substrate's contract exactly: it spawns no
// goroutines (watchers run inline on the engine's goroutine, inside the tick
// model), every Sampler method is safe on a nil receiver (the zero-value-off
// fast path costs one nil check per cycle), and everything is stamped in
// simulated cycles — never wall time — so telemetered runs stay
// byte-reproducible. Because a Sampler travels through config.Config next to
// the probe.Registry it aggregates, it inherits the probe/parallel-engine
// contract: probes force EngineWorkers=1, so windows always observe the
// classic single-goroutine tick loop.
//
// The Sampler keeps its own cumulative cycle clock, advanced by the deltas
// the engine reports. Experiments that build several engine instances from
// one config (every transmission builds a fresh GPU) therefore produce one
// continuous window timeline across instances, the same way the shared
// registry accumulates counters across them.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"gpunoc/internal/probe"
)

// DefaultWindowCycles is the window width selected when NewSampler is given
// zero: 512 cycles is fine-grained enough to resolve the paper-rate channel's
// ~1600-cycle slots (lag ≥ 3 windows) while keeping JSONL volume and snapshot
// overhead small.
const DefaultWindowCycles = 512

// DefaultEWMAAlpha is the smoothing factor of the per-link occupancy
// baseline: each window folds in as ewma += alpha·(rate−ewma), so the
// baseline's time constant is about 1/alpha = 8 windows.
const DefaultEWMAAlpha = 0.125

// ewmaFloor is the level below which a decaying baseline stops being
// emitted: a link that has gone quiet drops out of Window.Occ once its EWMA
// decays past this, keeping the sparse encoding sparse.
const ewmaFloor = 1e-6

// HistDelta is the per-window change of one histogram: how many samples
// landed inside the window and their sum.
type HistDelta struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
}

// OccWindow is the per-window view of one occupancy-tracked link. Busy is
// the busy-unit delta, Rate normalizes it to [0, 1] utilization over the
// window, and EWMA is the baseline *before* this window was folded in, so a
// watcher can score the window's deviation from what came before it.
type OccWindow struct {
	Busy uint64  `json:"busy"`
	Rate float64 `json:"rate"`
	EWMA float64 `json:"ewma"`
}

// Window is one completed aggregation interval [Start, End) of exactly
// End−Start = W cycles, with cycle stamps on the Sampler's cumulative clock.
// The maps are sparse: a metric appears only when it changed during the
// window (for Occ, also while its EWMA baseline is still decaying), so quiet
// windows encode small. Counters and Hists hold deltas; Gauges hold the
// value at End. JSON encoding is deterministic — encoding/json sorts map
// keys — which is what lets CI diff window streams byte-for-byte.
type Window struct {
	Index    uint64               `json:"i"`
	Start    uint64               `json:"start"`
	End      uint64               `json:"end"`
	Counters map[string]uint64    `json:"counters,omitempty"`
	Gauges   map[string]int64     `json:"gauges,omitempty"`
	Hists    map[string]HistDelta `json:"hists,omitempty"`
	Occ      map[string]OccWindow `json:"occ,omitempty"`
}

// Watcher consumes completed windows in order, synchronously, on the
// engine's goroutine. Implementations must treat the Window as read-only:
// its maps are shared by every watcher and by any recorder retaining it.
type Watcher interface {
	ObserveWindow(Window)
}

// Recorder is a Watcher that retains every window in arrival order, for
// JSONL export and offline replay through other watchers.
type Recorder struct {
	windows []Window
}

// ObserveWindow appends the window.
func (r *Recorder) ObserveWindow(w Window) { r.windows = append(r.windows, w) }

// Windows returns the retained windows in order.
func (r *Recorder) Windows() []Window { return r.windows }

// Sampler cuts the probe registry's cumulative metrics into fixed-width
// windows. The zero value and the nil pointer are both "off": Step on a nil
// Sampler is a no-op, which is the disabled fast path the engine relies on.
// A Sampler is single-use and single-goroutine, like the registry it reads.
type Sampler struct {
	window   uint64
	alpha    float64
	clock    uint64
	nextAt   uint64
	index    uint64
	prev     probe.Snapshot
	ewma     map[string]float64
	watchers []Watcher
}

// NewSampler returns a sampler emitting windows of windowCycles cycles
// (0 selects DefaultWindowCycles) to the given watchers, in order.
func NewSampler(windowCycles uint64, watchers ...Watcher) *Sampler {
	if windowCycles == 0 {
		windowCycles = DefaultWindowCycles
	}
	return &Sampler{
		window:   windowCycles,
		alpha:    DefaultEWMAAlpha,
		nextAt:   windowCycles,
		ewma:     map[string]float64{},
		watchers: watchers,
	}
}

// WindowCycles returns the configured window width (0 on a nil sampler).
func (s *Sampler) WindowCycles() uint64 {
	if s == nil {
		return 0
	}
	return s.window
}

// Step advances the sampler's clock by d simulated cycles against registry r
// and emits every window boundary the advance crossed. The engine calls it
// with d=1 after each stepped cycle and with the skipped span after an idle
// fast-forward jump; in the latter case the registry is unchanged across the
// jump, so the first crossed window absorbs the whole delta and the rest are
// empty — exactly what stepping cycle-by-cycle would have produced. Safe on
// a nil receiver (no-op).
func (s *Sampler) Step(d uint64, r *probe.Registry) {
	if s == nil {
		return
	}
	s.clock += d
	if s.clock < s.nextAt {
		return
	}
	s.flush(r)
}

// flush emits every completed window up to the current clock. One snapshot
// serves all of them: within a single Step call the registry cannot change,
// so windows after the first diff an unchanged snapshot against itself and
// carry only decaying EWMA baselines.
func (s *Sampler) flush(r *probe.Registry) {
	cur := r.Snapshot(s.nextAt)
	for s.clock >= s.nextAt {
		w := s.diff(cur)
		s.prev = cur
		s.index++
		s.nextAt += s.window
		for _, wt := range s.watchers {
			wt.ObserveWindow(w)
		}
	}
}

// diff builds the window ending at s.nextAt from the previous and current
// snapshots. Registry metric sets only grow and snapshots are sorted by
// name, so a forward merge over cur with a trailing cursor into prev visits
// every metric exactly once.
func (s *Sampler) diff(cur probe.Snapshot) Window {
	w := Window{Index: s.index, Start: s.nextAt - s.window, End: s.nextAt}

	i := 0
	for _, c := range cur.Counters {
		var prev uint64
		for i < len(s.prev.Counters) && s.prev.Counters[i].Name < c.Name {
			i++
		}
		if i < len(s.prev.Counters) && s.prev.Counters[i].Name == c.Name {
			prev = s.prev.Counters[i].Value
		}
		if d := c.Value - prev; d != 0 {
			if w.Counters == nil {
				w.Counters = map[string]uint64{}
			}
			w.Counters[c.Name] = d
		}
	}

	i = 0
	for _, g := range cur.Gauges {
		prev, had := int64(0), false
		for i < len(s.prev.Gauges) && s.prev.Gauges[i].Name < g.Name {
			i++
		}
		if i < len(s.prev.Gauges) && s.prev.Gauges[i].Name == g.Name {
			prev, had = s.prev.Gauges[i].Value, true
		}
		if g.Value != prev || (!had && g.Value != 0) {
			if w.Gauges == nil {
				w.Gauges = map[string]int64{}
			}
			w.Gauges[g.Name] = g.Value
		}
	}

	i = 0
	for _, h := range cur.Hists {
		var prevCount, prevSum uint64
		for i < len(s.prev.Hists) && s.prev.Hists[i].Name < h.Name {
			i++
		}
		if i < len(s.prev.Hists) && s.prev.Hists[i].Name == h.Name {
			prevCount = uint64(s.prev.Hists[i].Dist.Count)
			prevSum = s.prev.Hists[i].Sum
		}
		if d := uint64(h.Dist.Count) - prevCount; d != 0 {
			if w.Hists == nil {
				w.Hists = map[string]HistDelta{}
			}
			w.Hists[h.Name] = HistDelta{Count: d, Sum: h.Sum - prevSum}
		}
	}

	i = 0
	for _, o := range cur.Occupancy {
		var prevBusy uint64
		for i < len(s.prev.Occupancy) && s.prev.Occupancy[i].Name < o.Name {
			i++
		}
		if i < len(s.prev.Occupancy) && s.prev.Occupancy[i].Name == o.Name {
			prevBusy = s.prev.Occupancy[i].Busy
		}
		busy := o.Busy - prevBusy
		rate := 0.0
		if o.Units > 0 {
			rate = math.Min(float64(busy)/(float64(o.Units)*float64(s.window)), 1)
		}
		base := s.ewma[o.Name]
		s.ewma[o.Name] = base + s.alpha*(rate-base)
		if busy != 0 || base >= ewmaFloor {
			if w.Occ == nil {
				w.Occ = map[string]OccWindow{}
			}
			w.Occ[o.Name] = OccWindow{Busy: busy, Rate: rate, EWMA: base}
		}
	}

	return w
}

// WriteWindowsJSONL writes one JSON object per line for each window, in
// order. Byte-deterministic: encoding/json emits map keys sorted.
func WriteWindowsJSONL(w io.Writer, windows []Window) error {
	for _, win := range windows {
		b, err := json.Marshal(win)
		if err != nil {
			return fmt.Errorf("telemetry: encoding window %d: %w", win.Index, err)
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// WriteEventsJSONL writes one JSON object per line for each detection event,
// in order.
func WriteEventsJSONL(w io.Writer, events []Event) error {
	for i, e := range events {
		b, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("telemetry: encoding event %d: %w", i, err)
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// SortedOccNames returns the window's occupancy metric names in ascending
// order, the deterministic iteration order watchers use.
func SortedOccNames(w Window) []string {
	names := make([]string, 0, len(w.Occ))
	for name := range w.Occ {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// linkDenies sums the window's arbitration-deny counter deltas for the link
// that owns the given occupancy metric ("noc/<link>/occupancy" →
// "noc/<link>/in<i>/denies"). Summation over the counter map is
// order-independent.
func linkDenies(w Window, occName string) uint64 {
	prefix := strings.TrimSuffix(occName, "occupancy")
	if prefix == occName {
		return 0
	}
	var sum uint64
	for name, d := range w.Counters {
		if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, "/denies") {
			sum += d
		}
	}
	return sum
}
