package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a mini module tree under a temp dir: keys are
// slash-separated relative paths, values file contents.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func loadTree(t *testing.T, files map[string]string) ([]*Package, error) {
	t.Helper()
	l := &Loader{ModulePath: "gpunoc", Dir: writeTree(t, files)}
	return l.Load("./...")
}

// An unparseable file aborts the load with an error naming the file — syntax
// damage must be loud, not a silently half-analyzed package.
func TestLoadUnparseableFileFails(t *testing.T) {
	_, err := loadTree(t, map[string]string{
		"internal/a/a.go": "package a\n\nfunc Broken( {\n",
	})
	if err == nil {
		t.Fatal("Load must fail on a syntax error")
	}
	if !strings.Contains(err.Error(), "lint: parse") || !strings.Contains(err.Error(), "a.go") {
		t.Errorf("error should name the unparseable file, got: %v", err)
	}
}

// A type-check failure is recorded on the package but never aborts the load:
// analyzers keep working on syntax, and `go build` guards compilability.
func TestLoadTypeErrorIsRecordedNotFatal(t *testing.T) {
	pkgs, err := loadTree(t, map[string]string{
		"internal/a/a.go": "package a\n\nvar X = undefinedIdent\n",
		"internal/b/b.go": "package b\n\nvar Y = 1\n",
	})
	if err != nil {
		t.Fatalf("a type error must not fail the load: %v", err)
	}
	byRel := map[string]*Package{}
	for _, p := range pkgs {
		byRel[p.Rel] = p
	}
	a := byRel["internal/a"]
	if a == nil {
		t.Fatal("package internal/a not returned")
	}
	if len(a.TypeErrors) == 0 {
		t.Error("internal/a must carry its type error")
	}
	if len(a.Files) == 0 {
		t.Error("internal/a must still expose syntax for the analyzers")
	}
	b := byRel["internal/b"]
	if b == nil || len(b.TypeErrors) != 0 {
		t.Errorf("healthy sibling internal/b must load cleanly, got %+v", b)
	}
}

// An import of a package outside the module (and outside the stdlib) cannot
// resolve without network or a module cache; the loader records the failure
// as a type error on the importing package and keeps going.
func TestLoadForeignImportIsRecordedNotFatal(t *testing.T) {
	pkgs, err := loadTree(t, map[string]string{
		"internal/a/a.go": "package a\n\nimport \"example.com/not/vendored\"\n\nvar X = notvendored.Thing\n",
	})
	if err != nil {
		t.Fatalf("an unresolvable foreign import must not fail the load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if len(pkgs[0].TypeErrors) == 0 {
		t.Error("the foreign import failure must be recorded in TypeErrors")
	}
}

// An import of a module-local package that does not exist on disk hits the
// resolver's "not loaded" path, again as a recorded type error.
func TestLoadMissingLocalImportIsRecordedNotFatal(t *testing.T) {
	pkgs, err := loadTree(t, map[string]string{
		"internal/a/a.go": "package a\n\nimport \"gpunoc/internal/ghost\"\n\nvar X = ghost.Thing\n",
	})
	if err != nil {
		t.Fatalf("a missing local import must not fail the load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	var found bool
	for _, e := range pkgs[0].TypeErrors {
		if strings.Contains(e.Error(), "not loaded") {
			found = true
		}
	}
	if !found {
		t.Errorf(`want a "not loaded" type error, got %v`, pkgs[0].TypeErrors)
	}
}

// An import cycle (which only a layering violation could introduce) is
// detected by the bottom-up walk and recorded instead of recursing forever.
func TestLoadImportCycleIsRecordedNotFatal(t *testing.T) {
	pkgs, err := loadTree(t, map[string]string{
		"internal/a/a.go": "package a\n\nimport \"gpunoc/internal/b\"\n\nvar X = b.Y\n",
		"internal/b/b.go": "package b\n\nimport \"gpunoc/internal/a\"\n\nvar Y = a.X\n",
	})
	if err != nil {
		t.Fatalf("an import cycle must not fail the load: %v", err)
	}
	var cycle bool
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			if strings.Contains(e.Error(), "import cycle") {
				cycle = true
			}
		}
	}
	if !cycle {
		t.Error(`want an "import cycle" type error on one of the packages`)
	}
}
