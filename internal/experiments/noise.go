package experiments

import (
	"fmt"

	"gpunoc/internal/config"
	"gpunoc/internal/core"
	"gpunoc/internal/engine"
	"gpunoc/internal/noise"
)

// The noise-robustness studies (beyond the paper; §7 frames co-runner noise
// as the channel's practical limit) register themselves with the registry.
func init() {
	MustRegister(Experiment{
		ID: "noise-sweep", Order: 240,
		Title:   "Error rate vs background-traffic intensity, TPC and GPC channels",
		Section: "beyond the paper (§7 noise robustness)",
		Run:     NoiseSweep,
		Check:   CheckNoiseSweep,
	})
	MustRegister(Experiment{
		ID: "coded-vs-uncoded", Order: 250,
		Title:   "Protocol hardening under noise: recalibration and coding vs the raw channel",
		Section: "beyond the paper (§7 noise robustness)",
		Run:     CodedVsUncoded,
		Check:   func(_ *config.Config, f *Figure) error { return CheckCodedVsUncoded(f) },
		Metrics: func(f *Figure) map[string]float64 {
			m := map[string]float64{}
			if s, ok := f.seriesByName("error rate"); ok && len(s.Y) == 4 {
				m["uncoded-error"] = s.Y[0]
				m["hamming-error"] = s.Y[3]
			}
			if s, ok := f.seriesByName("kbps"); ok && len(s.Y) == 4 && s.Y[0] > 0 {
				m["coding-bandwidth-cost"] = 1 - s.Y[3]/s.Y[0]
			}
			return m
		},
	})
}

// channelGPCSMs lists every SM of the GPC that unit 0 of the channel lives
// in, including the channel's own TPC: an oblivious co-runner scheduled
// across the whole GPC, the way a real workload lands on whatever SMs the
// hardware hands it. Its traffic contends with the transmission at every
// level — LSU issue slots on the channel's own SMs, the TPC write mux, and
// the GPC read mux whose 7:1 concentration aggregates the whole GPC's
// offered load onto the link the receiver probes.
func channelGPCSMs(cfg *config.Config) []int {
	var sms []int
	for _, tpc := range cfg.TPCsOfGPC(cfg.GPCOfTPC(0)) {
		sms = append(sms, cfg.SMsOfTPC(tpc)...)
	}
	return sms
}

// noiseSpec builds the standard sweep co-runner: a streaming generator on
// every SM of the channel's GPC, alive for the whole transmission.
func noiseSpec(cfg *config.Config, intensity float64, slots int, slotCycles uint64, seed int64) noise.Spec {
	return noise.Spec{
		Kind:           noise.Stream,
		SMs:            channelGPCSMs(cfg),
		Intensity:      intensity,
		DurationCycles: uint64(slots+96) * slotCycles * 2,
		Seed:           seed,
	}
}

// noisySend runs one single-unit transmission with the given background
// traffic co-scheduled (silent specs launch nothing).
func noisySend(cfg *config.Config, payload []core.Symbol, p core.Params, specs ...noise.Spec) (core.Result, error) {
	var tr *core.Transmission
	var err error
	switch p.Kind {
	case core.GPCChannel:
		tr, err = core.NewGPCTransmission(cfg, payload, []int{0}, p)
	default:
		tr, err = core.NewTPCTransmission(cfg, payload, []int{0}, p)
	}
	if err != nil {
		return core.Result{}, err
	}
	g, err := engine.New(*cfg)
	if err != nil {
		return core.Result{}, err
	}
	if err := tr.Launch(g, 0); err != nil {
		return core.Result{}, err
	}
	ks, err := noise.Kernels(cfg, specs...)
	if err != nil {
		return core.Result{}, err
	}
	for _, k := range ks {
		if _, err := g.Launch(k); err != nil {
			return core.Result{}, err
		}
	}
	return tr.Finish(g)
}

// NoiseSweep sweeps the intensity of a streaming co-runner placed across the
// channel's GPC and measures the covert channel's error rate, for both
// channel kinds. The generators are ordinary kernels (internal/noise), so
// their traffic shares the LSUs, the TPC write muxes, and the GPC read
// channel with the transmission — the §7 co-runner scenario. Thresholds are
// calibrated on a quiet GPU, so the sweep shows the raw protocol degrading
// monotonically with offered load.
//
// Which channel collapses first depends on the GPC fan-in, because the GPC
// mux aggregates signal and noise alike. On a small 2-TPC GPC the receiver's
// probes share the mux with the whole GPC's co-runner traffic while the
// sender's flood comes from a single TPC, so the GPC channel degrades first
// (the intuition behind calling the GPC channel noise-fragile). On Volta's
// 7-TPC GPCs the same aggregation works for the sender: twelve SMs flood the
// mux during a 1-slot, which out-shouts co-runner traffic that is already
// enough to disturb the TPC pair's co-located LSUs — there the TPC channel
// breaks first. CheckNoiseSweep asserts the ordering per topology.
func NoiseSweep(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "noise-sweep",
		Title:  "Covert channel error rate vs background-traffic intensity",
		XLabel: "noise intensity (offered load fraction)",
		YLabel: "error rate",
		Header: []string{"channel", "intensity", "error rate", "kbps"},
	}
	bits := opt.pick(48, 160)
	// Intensities are small fractions of each SM's peak issue rate: the GPC
	// mux concentrates every SM of the GPC onto one link, so even a few
	// percent of offered load per SM is heavy aggregate traffic there, and
	// by ~10-15% the raw protocol is into coin-flip territory.
	intensities := []float64{0, 0.02, 0.05, 0.1, 0.15}
	if opt.Scale == Full {
		intensities = []float64{0, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2}
	}
	payload := core.AlternatingPayload(bits, 2)
	for _, kind := range []core.Kind{core.TPCChannel, core.GPCChannel} {
		p, err := calibratedParams(cfg, kind, 4, 1, opt.seed())
		if err != nil {
			return nil, fmt.Errorf("noise-sweep: calibrate %v: %w", kind, err)
		}
		var xs, ys []float64
		for _, in := range intensities {
			spec := noiseSpec(cfg, in, len(payload), p.SlotCycles, opt.seed())
			res, err := noisySend(cfg, payload, p, spec)
			if err != nil {
				return nil, fmt.Errorf("noise-sweep: %v at %.2f: %w", kind, in, err)
			}
			xs = append(xs, in)
			ys = append(ys, res.ErrorRate)
			f.Rows = append(f.Rows, []string{
				kind.String(),
				fmt.Sprintf("%.3f", in),
				fmt.Sprintf("%.4f", res.ErrorRate),
				fmt.Sprintf("%.1f", res.BitsPerSecond/1e3),
			})
		}
		f.addSeries(kind.String()+" error rate", xs, ys)
	}
	f.note("streaming co-runner across the channel's GPC; quiet-GPU thresholds — " +
		"the raw protocol degrades monotonically with offered load; which channel " +
		"collapses first tracks the GPC fan-in (the mux aggregates signal and noise alike)")
	return f, nil
}

// CheckNoiseSweep asserts the sweep's shape: both channels work clean,
// degrade (near-)monotonically as intensity rises, and are clearly broken by
// the top of the sweep. The channel ordering is topology-dependent (see
// NoiseSweep): on a 2-TPC GPC the GPC channel must accumulate at least as
// much error as the TPC channel; with a larger fan-in the aggregation
// shields the GPC channel, and the TPC channel must degrade at least as
// much.
func CheckNoiseSweep(cfg *config.Config, f *Figure) error {
	tpc, ok1 := f.seriesByName("TPC error rate")
	gpc, ok2 := f.seriesByName("GPC error rate")
	if !ok1 || !ok2 || len(tpc.Y) != len(gpc.Y) || len(tpc.Y) < 3 {
		return fmt.Errorf("noise-sweep: malformed series")
	}
	var sums [2]float64
	for si, s := range []Series{tpc, gpc} {
		if s.Y[0] > 0.05 {
			return fmt.Errorf("noise-sweep: %s starts at %.3f on a quiet GPU", s.Name, s.Y[0])
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i]+0.05 < s.Y[i-1] {
				return fmt.Errorf("noise-sweep: %s not monotone: %v", s.Name, s.Y)
			}
			sums[si] += s.Y[i]
		}
		if last := s.Y[len(s.Y)-1]; last < s.Y[0]+0.10 {
			return fmt.Errorf("noise-sweep: peak-intensity noise barely degraded %s (%.3f)", s.Name, last)
		}
	}
	fanIn := len(cfg.TPCsOfGPC(cfg.GPCOfTPC(0)))
	if fanIn <= 2 {
		if sums[1]+0.02 < sums[0] {
			return fmt.Errorf("noise-sweep: TPC degraded before GPC on a %d-TPC GPC (sums %.3f vs %.3f)",
				fanIn, sums[0], sums[1])
		}
	} else if sums[0]+0.02 < sums[1] {
		return fmt.Errorf("noise-sweep: GPC degraded before TPC despite %d-TPC aggregation (sums %.3f vs %.3f)",
			fanIn, sums[1], sums[0])
	}
	return nil
}

// CodedVsUncoded holds the noise intensity fixed at a moderate level that
// breaks the raw protocol and walks through the hardening layers: noise-aware
// recalibration (Calibrate with the generator co-scheduled, so thresholds
// move to the noisy latency distribution) and the coding schemes of
// core/coding.go on top of it. Hamming(7,4) with a resync preamble restores
// near-zero error; the kbps column quantifies what the wire overhead costs.
func CodedVsUncoded(cfg *config.Config, opt Options) (*Figure, error) {
	f := &Figure{
		ID:     "coded-vs-uncoded",
		Title:  "Hardened vs raw channel at moderate background noise",
		XLabel: "scheme (0=uncoded, 1=+recalibration, 2=+repetition, 3=+hamming)",
		YLabel: "error rate",
		Header: []string{"scheme", "error rate", "kbps"},
	}
	const intensity = 0.1
	bits := opt.pick(48, 160)
	payload := core.AlternatingPayload(bits, 2)
	base := core.Params{Kind: core.TPCChannel, Iterations: 4, SyncPeriod: 16, Seed: opt.seed()}

	clean, err := core.Calibrate(cfg, base, 32)
	if err != nil {
		return nil, fmt.Errorf("coded-vs-uncoded: quiet calibrate: %w", err)
	}
	calSpec := noiseSpec(cfg, intensity, 32, clean.SlotCycles, opt.seed())
	calKernels, err := noise.Kernels(cfg, calSpec)
	if err != nil {
		return nil, err
	}
	aware, err := core.Calibrate(cfg, base, 32, calKernels...)
	if err != nil {
		return nil, fmt.Errorf("coded-vs-uncoded: noise-aware calibrate: %w", err)
	}

	schemes := []struct {
		name   string
		params core.Params
	}{
		{"uncoded, quiet-GPU thresholds", clean},
		{"uncoded, noise-aware thresholds", aware},
		{"repetition x3, noise-aware", withCoding(aware, core.CodingRepetition, 0, 0)},
		{"hamming(7,4)+preamble, noise-aware", withCoding(aware, core.CodingHamming74, 16, 2)},
	}
	var xs, errRates, rates []float64
	for i, sc := range schemes {
		spec := noiseSpec(cfg, intensity, sc.params.WireLen(len(payload)), sc.params.SlotCycles, opt.seed())
		res, err := noisySend(cfg, payload, sc.params, spec)
		if err != nil {
			return nil, fmt.Errorf("coded-vs-uncoded: %s: %w", sc.name, err)
		}
		xs = append(xs, float64(i))
		errRates = append(errRates, res.ErrorRate)
		rates = append(rates, res.BitsPerSecond/1e3)
		f.Rows = append(f.Rows, []string{
			sc.name,
			fmt.Sprintf("%.4f", res.ErrorRate),
			fmt.Sprintf("%.1f", res.BitsPerSecond/1e3),
		})
	}
	f.addSeries("error rate", xs, errRates)
	f.addSeries("kbps", xs, rates)
	f.note("same streaming co-runner for every row; hardening stacks noise-aware " +
		"thresholds and coding — the error returns to ~0 and the kbps column prices " +
		"the wire overhead (repetition 1/3, hamming 4/7 plus preamble)")
	return f, nil
}

// CheckCodedVsUncoded asserts the hardening story: the raw channel breaks at
// this noise level (>10% symbol error), the fully hardened channel
// (Hamming + noise-aware thresholds) recovers to <=1%, and the recovery is
// paid for in bandwidth (the coded kbps is strictly below the uncoded kbps).
func CheckCodedVsUncoded(f *Figure) error {
	errs, ok1 := f.seriesByName("error rate")
	rates, ok2 := f.seriesByName("kbps")
	if !ok1 || !ok2 || len(errs.Y) != 4 || len(rates.Y) != 4 {
		return fmt.Errorf("coded-vs-uncoded: malformed series")
	}
	uncoded, recal, rep, ham := errs.Y[0], errs.Y[1], errs.Y[2], errs.Y[3]
	switch {
	case uncoded <= 0.10:
		return fmt.Errorf("coded-vs-uncoded: raw channel survived the noise (%.3f), no hardening story", uncoded)
	case recal > uncoded+0.02:
		return fmt.Errorf("coded-vs-uncoded: recalibration made things worse (%.3f vs %.3f)", recal, uncoded)
	case rep > 0.05:
		return fmt.Errorf("coded-vs-uncoded: repetition coding left %.3f error", rep)
	case ham > 0.01:
		return fmt.Errorf("coded-vs-uncoded: hamming-coded error %.3f, want <=0.01", ham)
	case rates.Y[3] >= rates.Y[0]:
		return fmt.Errorf("coded-vs-uncoded: coding shows no bandwidth cost (%.1f vs %.1f kbps)",
			rates.Y[3], rates.Y[0])
	}
	return nil
}

// withCoding returns p with the given coding scheme layered on.
func withCoding(p core.Params, c core.Coding, preamble, guard int) core.Params {
	p.Coding = c
	p.PreambleSymbols = preamble
	p.ResyncGuardSlots = guard
	return p
}
