// Reverse-engineer the GPU topology from timing alone, the way §3 of the
// paper does on real hardware: no API reveals the hierarchy — only shared
// interconnect contention does.
//
//	go run ./examples/reverse-engineer
package main

import (
	"fmt"
	"log"

	"gpunoc"
)

func main() {
	cfg := gpunoc.SmallConfig() // swap for VoltaConfig() for the full sweep

	fmt.Println("probing the GPU as a black box (smid + clock() + timing only)...")
	pair, groups, err := gpunoc.ReverseEngineerTopology(&cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nSM0's TPC-channel partner: SM%d\n", pair)
	fmt.Println("recovered GPC groups:")
	for i, g := range groups {
		fmt.Printf("  GPC-like group %d: TPCs %v\n", i, g)
	}

	fmt.Println("\nground truth (normally hidden from the attacker):")
	for g := 0; g < cfg.NumGPCs; g++ {
		fmt.Printf("  GPC%d: TPCs %v\n", g, cfg.TPCsOfGPC(g))
	}
}
