package lint

import (
	"path/filepath"
	"testing"
)

// buildFixtureGraph loads one testdata tree and builds its call graph.
func buildFixtureGraph(t *testing.T, name string) *CallGraph {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	loader := Loader{ModulePath: "gpunoc", Dir: dir}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	return BuildCallGraph(pkgs)
}

// calleeNames renders a node's outgoing edges as target names.
func calleeNames(n *CGNode) map[string]bool {
	out := make(map[string]bool)
	for _, e := range n.Out {
		out[e.Callee.String()] = true
	}
	return out
}

// TestCallGraphEdges pins the five edge sources against the callgraph
// fixture: static calls, CHA dispatch, field-sensitive indirect calls,
// param-to-field flow, and signature-bucket fan-out — plus the negative
// spaces (a field call must not fan out to same-shaped strangers, a directly
// invoked literal must not be address-taken).
func TestCallGraphEdges(t *testing.T) {
	cg := buildFixtureGraph(t, "callgraph")

	root := cg.Lookup(FuncRef{Package: "internal/app", Name: "Root"})
	if root == nil {
		t.Fatal("Lookup(Root) = nil")
	}
	rootOut := calleeNames(root)

	// Static call to the setter.
	if !rootOut["internal/app.(*app.Holder).SetWake"] {
		t.Error("Root is missing the static edge to SetWake")
	}
	// CHA dispatch through the Ticker interface.
	if !rootOut["internal/app.(*app.Dev).Tick"] {
		t.Error("Root is missing the CHA edge to (*Dev).Tick")
	}
	// Field-sensitive indirect call: h.cb resolves to exactly the stored
	// value, not to every address-taken func(int).
	if !rootOut["internal/app.stored"] {
		t.Error("Root is missing the field-store edge to stored")
	}
	if rootOut["internal/app.taken"] {
		t.Error("Root's h.cb(1) fanned out to `taken`; field calls must resolve to stored values only")
	}
	// Param-to-field flow: h.wake() reaches the literal passed to SetWake,
	// and through it, helper.
	reach := cg.Reachable([]*CGNode{root})
	names := make(map[string]bool)
	for n := range reach {
		names[n.String()] = true
	}
	if !names["internal/app.helper"] {
		t.Error("helper is not reachable from Root; the SetWake param-to-field flow is broken")
	}
	if names["internal/app.coldFn"] {
		t.Error("coldFn (never called, never referenced) is reachable from Root")
	}
	if names["internal/app.taken"] {
		t.Error("taken leaked into Root's reachable set")
	}

	// Signature-bucket fan-out: f(2) in Indirect reaches every address-taken
	// func(int) — both `taken` (returned by pick) and `stored` (kept in a
	// composite literal).
	ind := cg.Lookup(FuncRef{Package: "internal/app", Name: "Indirect"})
	if ind == nil {
		t.Fatal("Lookup(Indirect) = nil")
	}
	indOut := calleeNames(ind)
	if !indOut["internal/app.taken"] || !indOut["internal/app.stored"] {
		t.Errorf("Indirect's bucket call must fan out to taken and stored, got %v", indOut)
	}

	// A directly-invoked literal is called, not address-taken: the only
	// func() literal in any bucket is the one passed to SetWake.
	for key, nodes := range cg.buckets {
		if key != "()()" {
			continue
		}
		for _, n := range nodes {
			if n.Lit == nil {
				continue
			}
			if !names[n.String()] {
				t.Errorf("bucket ()() holds %s, which is not the SetWake literal", n)
			}
		}
	}
}

// TestRuleTableResolves pins every reference in the shardsafety and hotalloc
// rule tables against the real module: the analyzers skip unresolvable names
// silently (so fixture trees stay small), which means a rename in the engine
// would otherwise quietly turn the analysis off. This test is what fails
// instead.
func TestRuleTableResolves(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader := Loader{ModulePath: "gpunoc", Dir: root}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	cg := BuildCallGraph(pkgs)
	rules := DefaultRules()

	for _, pr := range rules.ShardSafety.PhaseRoots {
		n := cg.Lookup(pr.Func)
		if n == nil {
			t.Errorf("phase root %s does not resolve", pr.Func)
			continue
		}
		if paramByName(n, pr.ShardParam) == nil {
			t.Errorf("phase root %s has no parameter named %q", pr.Func, pr.ShardParam)
		}
	}
	for _, ref := range rules.ShardSafety.HandoffFuncs {
		if cg.Lookup(ref) == nil {
			t.Errorf("hand-off function %s does not resolve", ref)
		}
	}
	for _, ref := range rules.HotAlloc.Roots {
		if cg.Lookup(ref) == nil {
			t.Errorf("hotalloc root %s does not resolve", ref)
		}
	}

	checkFields := func(kind string, refs []FieldRef) {
		got := resolveFields(pkgs, refs)
		if len(got) != len(refs) {
			t.Errorf("%s: %d of %d field refs resolve", kind, len(got), len(refs))
			for _, ref := range refs {
				one := resolveFields(pkgs, []FieldRef{ref})
				if len(one) == 0 {
					t.Errorf("%s: %s.%s.%s does not resolve", kind, ref.Package, ref.Type, ref.Field)
				}
			}
		}
	}
	checkFields("OwnedCollections", rules.ShardSafety.OwnedCollections)
	checkFields("HandoffFields", rules.ShardSafety.HandoffFields)

	checkTypes := func(kind string, refs []TypeRef) {
		got := resolveTypes(pkgs, refs)
		if len(got) != len(refs) {
			t.Errorf("%s: %d of %d type refs resolve", kind, len(got), len(refs))
		}
	}
	checkTypes("CoordinatorTypes", rules.ShardSafety.CoordinatorTypes)
	checkTypes("PacketTypes", rules.ShardSafety.PacketTypes)
}
