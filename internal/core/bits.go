package core

import "fmt"

// BytesToSymbols expands data into symbols of bitsPerSymbol bits each,
// most-significant bit first. bitsPerSymbol must divide 8.
func BytesToSymbols(data []byte, bitsPerSymbol int) ([]Symbol, error) {
	if bitsPerSymbol < 1 || bitsPerSymbol > 8 || 8%bitsPerSymbol != 0 {
		return nil, fmt.Errorf("core: bits per symbol %d must divide 8", bitsPerSymbol)
	}
	perByte := 8 / bitsPerSymbol
	mask := byte(1<<bitsPerSymbol - 1)
	out := make([]Symbol, 0, len(data)*perByte)
	for _, b := range data {
		for i := perByte - 1; i >= 0; i-- {
			out = append(out, Symbol((b>>(uint(i)*uint(bitsPerSymbol)))&mask))
		}
	}
	return out, nil
}

// SymbolsToBytes packs symbols back into bytes (the inverse of
// BytesToSymbols). The symbol count must fill whole bytes.
func SymbolsToBytes(symbols []Symbol, bitsPerSymbol int) ([]byte, error) {
	if bitsPerSymbol < 1 || bitsPerSymbol > 8 || 8%bitsPerSymbol != 0 {
		return nil, fmt.Errorf("core: bits per symbol %d must divide 8", bitsPerSymbol)
	}
	perByte := 8 / bitsPerSymbol
	if len(symbols)%perByte != 0 {
		return nil, fmt.Errorf("core: %d symbols do not fill whole bytes", len(symbols))
	}
	mask := Symbol(1<<bitsPerSymbol - 1)
	out := make([]byte, 0, len(symbols)/perByte)
	for i := 0; i < len(symbols); i += perByte {
		var b byte
		for j := 0; j < perByte; j++ {
			b = b<<uint(bitsPerSymbol) | byte(symbols[i+j]&mask)
		}
		out = append(out, b)
	}
	return out, nil
}

// AlternatingPayload builds the '0101...' (or '0123...' for multi-level)
// test sequence used by Fig 9 and Fig 14.
func AlternatingPayload(n, levels int) []Symbol {
	out := make([]Symbol, n)
	for i := range out {
		out[i] = Symbol(i % levels)
	}
	return out
}

// CountSymbolErrors compares two symbol streams; missing symbols count as
// errors.
func CountSymbolErrors(sent, received []Symbol) int {
	errs := 0
	for i := range sent {
		if i >= len(received) || received[i] != sent[i] {
			errs++
		}
	}
	return errs
}
