package arb

import (
	"fmt"

	"gpunoc/internal/snap"
)

// Snapshot appends an arbiter's mutable grant state to the encoder. The
// counting instrumentation wrapper is transparent (its probe counters are
// restored with the probe registry), and the stateless policies (SRR, age,
// fixed) contribute nothing beyond their policy byte, which guards against
// restoring into a mux built under a different arbitration policy.
func Snapshot(e *snap.Encoder, a Arbiter) {
	if c, ok := a.(*counting); ok {
		a = c.inner
	}
	e.U8(uint8(a.Policy()))
	switch v := a.(type) {
	case *roundRobin:
		e.Int(v.last)
	case *coarseRR:
		e.Int(v.rr.last)
		e.Bool(v.holding)
		e.Int(v.heldIn)
		e.Int(v.heldTag.SM)
		e.Int(v.heldTag.Warp)
		e.U64(v.heldTag.Op)
		e.Int(v.heldUsed)
	case *strictRR, *ageBased, *fixedPriority:
		// stateless
	default:
		// New can only build the five types above; keep the encode total.
	}
}

// Restore reads grant state written by Snapshot back into an arbiter of the
// same policy (the restoring engine rebuilds muxes from the same
// configuration, so the dynamic types always line up; a mismatch means the
// snapshot is being restored into the wrong mux and fails).
func Restore(d *snap.Decoder, a Arbiter) error {
	if c, ok := a.(*counting); ok {
		a = c.inner
	}
	if got := d.U8(); got != uint8(a.Policy()) {
		return fmt.Errorf("%w: arbiter policy %d in snapshot, mux runs %v", snap.ErrCorrupt, got, a.Policy())
	}
	switch v := a.(type) {
	case *roundRobin:
		v.last = d.Int()
	case *coarseRR:
		v.rr.last = d.Int()
		v.holding = d.Bool()
		v.heldIn = d.Int()
		v.heldTag.SM = d.Int()
		v.heldTag.Warp = d.Int()
		v.heldTag.Op = d.U64()
		v.heldUsed = d.Int()
	}
	return nil
}
