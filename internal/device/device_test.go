package device

import (
	"testing"
	"testing/quick"

	"gpunoc/internal/warp"
)

func TestOpConstructors(t *testing.T) {
	m := Mem(warp.CoalescedOp(0x10, true))
	if m.Kind != OpMem || !m.Mem.Write {
		t.Errorf("Mem op = %+v", m)
	}
	w := Wait(7)
	if w.Kind != OpWait || w.Cycles != 7 {
		t.Errorf("Wait op = %+v", w)
	}
	s := SyncClock(1024, 1030)
	if s.Kind != OpSyncClock || s.Modulus != 1024 || s.Phase != 6 {
		t.Errorf("SyncClock op = %+v (phase must be reduced mod modulus)", s)
	}
	d := Done()
	if d.Kind != OpDone {
		t.Errorf("Done op = %+v", d)
	}
}

func TestKernelSpecValidate(t *testing.T) {
	ok := KernelSpec{Name: "k", Blocks: 1, WarpsPerBlock: 1, New: func(int, int) Program { return &ClockReader{} }}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*KernelSpec){
		func(k *KernelSpec) { k.Blocks = 0 },
		func(k *KernelSpec) { k.WarpsPerBlock = -1 },
		func(k *KernelSpec) { k.New = nil },
	} {
		bad := ok
		mut(&bad)
		if err := bad.Validate(); err == nil {
			t.Error("invalid spec accepted")
		}
	}
}

func drive(p Program, maxSteps int) []Op {
	var ops []Op
	ctx := &Ctx{}
	for i := 0; i < maxSteps; i++ {
		op := p.Step(ctx)
		ops = append(ops, op)
		if op.Kind == OpDone {
			break
		}
		if op.Kind == OpMem {
			ctx.LastLatency = 100 // pretend the op took 100 cycles
		}
	}
	return ops
}

func TestStreamerSequentialAddresses(t *testing.T) {
	s := &Streamer{Base: 0x1000, LineBytes: 32, Write: true, Count: 3, Uncoalesced: true}
	ops := drive(s, 10)
	if len(ops) != 4 || ops[3].Kind != OpDone {
		t.Fatalf("ops = %v", ops)
	}
	for i := 0; i < 3; i++ {
		if ops[i].Kind != OpMem || !ops[i].Mem.Write {
			t.Fatalf("op %d = %+v", i, ops[i])
		}
		want := uint64(0x1000 + i*32*32)
		if ops[i].Mem.Base != want {
			t.Errorf("op %d base = %#x, want %#x", i, ops[i].Mem.Base, want)
		}
	}
	if s.Issued() != 3 {
		t.Errorf("Issued = %d", s.Issued())
	}
	// Latencies recorded for all but the op awaiting completion.
	if len(s.Latencies) != 3 {
		t.Errorf("latencies = %v", s.Latencies)
	}
}

func TestStreamerWrap(t *testing.T) {
	s := &Streamer{Base: 0, LineBytes: 32, Count: 4, WrapBytes: 64}
	ops := drive(s, 10)
	bases := []uint64{}
	for _, op := range ops {
		if op.Kind == OpMem {
			bases = append(bases, op.Mem.Base)
		}
	}
	want := []uint64{0, 32, 0, 32}
	for i := range want {
		if bases[i] != want[i] {
			t.Fatalf("bases = %v, want %v", bases, want)
		}
	}
}

func TestStreamerStartDelay(t *testing.T) {
	s := &Streamer{Base: 0, LineBytes: 32, Count: 1, StartDelay: 50}
	ops := drive(s, 10)
	if ops[0].Kind != OpWait || ops[0].Cycles != 50 {
		t.Fatalf("first op = %+v, want Wait(50)", ops[0])
	}
	if ops[1].Kind != OpMem {
		t.Fatalf("second op = %+v", ops[1])
	}
}

func TestStreamerAtomic(t *testing.T) {
	s := &Streamer{Base: 0, LineBytes: 32, Atomic: true, Count: 1}
	ops := drive(s, 5)
	if ops[0].Kind != OpMem || !ops[0].Mem.Atomic {
		t.Fatalf("atomic op = %+v", ops[0])
	}
}

func TestClockReader(t *testing.T) {
	c := &ClockReader{}
	ctx := &Ctx{SMID: 7, Clock: 12345}
	if op := c.Step(ctx); op.Kind != OpDone {
		t.Fatalf("op = %+v", op)
	}
	if c.Value != 12345 || c.SMID != 7 {
		t.Errorf("reader captured %d/%d", c.Value, c.SMID)
	}
	// Second step keeps the first reading.
	ctx.Clock = 99
	c.Step(ctx)
	if c.Value != 12345 {
		t.Error("second step overwrote reading")
	}
}

func TestComputeLoop(t *testing.T) {
	c := &ComputeLoop{Count: 3, IterCost: 10}
	ops := drive(c, 10)
	if len(ops) != 4 || ops[3].Kind != OpDone {
		t.Fatalf("ops = %v", ops)
	}
	for i := 0; i < 3; i++ {
		if ops[i].Kind != OpWait || ops[i].Cycles != 10 {
			t.Fatalf("op %d = %+v", i, ops[i])
		}
	}
	// Zero IterCost defaults to a small positive cost (no zero-length spins).
	d := &ComputeLoop{Count: 1}
	if op := d.Step(&Ctx{}); op.Kind != OpWait || op.Cycles == 0 {
		t.Errorf("default iter cost op = %+v", op)
	}
}

func TestStepFunc(t *testing.T) {
	called := false
	p := StepFunc(func(ctx *Ctx) Op { called = true; return Done() })
	if op := p.Step(&Ctx{}); op.Kind != OpDone || !called {
		t.Error("StepFunc did not delegate")
	}
}

// Property: a Streamer always terminates after exactly Count memory ops
// regardless of parameters, and all op bases stay within [Base, Base+Wrap).
func TestQuickStreamerTermination(t *testing.T) {
	f := func(countRaw, wrapRaw uint8, write, unco bool) bool {
		count := int(countRaw % 50)
		wrap := uint64(wrapRaw%8+1) * 1024
		s := &Streamer{Base: 4096, LineBytes: 32, Write: write, Count: count, Uncoalesced: unco, WrapBytes: wrap}
		ops := drive(s, count+5)
		memOps := 0
		for _, op := range ops {
			if op.Kind == OpMem {
				memOps++
				if op.Mem.Base < 4096 || op.Mem.Base >= 4096+wrap {
					return false
				}
			}
		}
		return memOps == count && ops[len(ops)-1].Kind == OpDone
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
