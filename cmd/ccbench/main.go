// Command ccbench regenerates the paper's tables and figures on the
// simulated GPU and prints them as a plain-text report. It is the
// command-line face of the internal/experiments harness: experiments come
// from the package registry (every Fig*/Table* registers itself), and a
// bounded worker pool runs them concurrently — each experiment owns its
// engine instances, so the suite parallelizes across experiments. Per-
// experiment seeds are derived from the suite seed and the experiment id,
// which makes the report byte-identical at any -parallel setting.
//
// Usage:
//
//	ccbench [-config volta|small] [-scale quick|full] [-seed N]
//	        [-only fig10,table2,...] [-parallel N] [-engine-workers N]
//	        [-check] [-csv DIR] [-metrics DIR] [-telemetry DIR]
//	        [-checkpoint-dir DIR] [-gpus N] [-topology full|ring|nvswitch]
//	ccbench -list
//
// -gpus and -topology shape the simulated multi-GPU mesh used by the
// cross-GPU experiments (nvlink-remote-vs-local, nvlink-channel); on-die
// experiments ignore them. -gpus 0 leaves each experiment's default (2).
//
// The default suite seed is 5, matching every command line and number in
// docs/EXPERIMENTS.md, so a bare `ccbench` reproduces the documented
// outputs.
//
// -engine-workers selects the engine's sharded parallel tick loop (see
// docs/ARCHITECTURE.md, "Parallel engine"). The default of 0 resolves to 1
// here — the experiment pool already saturates the machine, so nesting
// engine workers under it would only oversubscribe — while an explicit
// count is passed through to every experiment's engines. The engine is
// state-identical at every worker count, so the report does not change
// either way; CI diffs the two to prove it.
//
// -metrics DIR attaches a probe registry to every experiment and writes one
// <id>.metrics.json and <id>.metrics.csv per experiment into DIR. The files
// are deterministic: byte-identical across runs and at any -parallel
// setting, because each experiment owns a private registry and snapshots
// are sorted by metric name.
//
// -checkpoint-dir DIR enables the content-addressed result cache: each
// completed experiment is stored under its cache key — (config hash, config
// name, suite seed, experiment id, scale, observer flags) — and a later run
// with the same key is served from disk without simulating. Worker knobs
// (-parallel, -engine-workers) are deliberately not part of the key: results
// are identical at every worker count, so a warm run renders byte-identically
// to the cold run that populated the cache. Failed experiments are never
// cached.
//
// -telemetry DIR attaches a windowed telemetry sampler (with a paper-rate
// covert-channel detector watching) to every experiment and writes one
// <id>.windows.jsonl and <id>.events.jsonl per experiment into DIR. Like
// -metrics, the streams are byte-identical across runs and at any -parallel
// setting; CI diffs them to prove it. Output directories are probed for
// writability up front — a directory that cannot be created or written fails
// fast with exit status 2 before any simulation runs.
//
// The report goes to stdout; a per-experiment timing/cycles summary goes to
// stderr (wall times vary run to run, so they are kept out of the
// deterministic stream).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gpunoc/internal/config"
	"gpunoc/internal/experiments"
	"gpunoc/internal/telemetry"
)

// ensureWritableDir creates dir if missing and proves it is writable by
// creating and removing a probe file, so a bad output directory fails fast
// (exit 2) before hours of simulation, not after.
func ensureWritableDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating %s: %w", dir, err)
	}
	probe := filepath.Join(dir, ".writable")
	if err := os.WriteFile(probe, nil, 0o644); err != nil {
		return fmt.Errorf("output directory %s is not writable: %w", dir, err)
	}
	if err := os.Remove(probe); err != nil {
		return fmt.Errorf("output directory %s: removing probe file: %w", dir, err)
	}
	return nil
}

func main() {
	cfgName := flag.String("config", "volta", "GPU configuration: volta or small")
	scaleName := flag.String("scale", "quick", "experiment scale: quick or full")
	seed := flag.Int64("seed", 5, "suite seed; each experiment derives its own seed from it (5 matches docs/EXPERIMENTS.md)")
	only := flag.String("only", "", "comma-separated subset of experiments (see -list)")
	csvDir := flag.String("csv", "", "directory to also write per-experiment CSV files into (created if missing)")
	metricsDir := flag.String("metrics", "", "directory to write per-experiment probe metrics (JSON+CSV) into (created if missing)")
	telemetryDir := flag.String("telemetry", "", "directory to write per-experiment telemetry window/event JSONL streams into (created if missing)")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for the content-addressed result cache; repeated runs with the same key are served from it without simulating")
	parallel := flag.Int("parallel", 0, "experiments to run concurrently (0 = GOMAXPROCS)")
	engineWorkers := flag.Int("engine-workers", 0, "engine tick-loop workers per simulated GPU (0 = sequential: the experiment pool already fills the machine)")
	gpus := flag.Int("gpus", 0, "GPUs per simulated mesh for the cross-GPU experiments (0 = their default of 2)")
	topology := flag.String("topology", "", "NVLink mesh topology: full, ring, or nvswitch (empty = config default)")
	check := flag.Bool("check", false, "also assert each experiment's paper-shape Check")
	list := flag.Bool("list", false, "list registered experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			note := ""
			if e.FixedScale {
				note = " [ignores -scale]"
			}
			fmt.Printf("%-16s %-28s %s%s\n", e.ID, e.Section, e.Title, note)
		}
		return
	}

	var cfg config.Config
	switch *cfgName {
	case "volta":
		cfg = config.Volta()
	case "small":
		cfg = config.Small()
	default:
		fmt.Fprintf(os.Stderr, "ccbench: unknown config %q\n", *cfgName)
		os.Exit(2)
	}

	if *gpus < 0 {
		fmt.Fprintf(os.Stderr, "ccbench: negative -gpus %d\n", *gpus)
		os.Exit(2)
	}
	cfg.MeshGPUs = *gpus
	if *topology != "" {
		topo, err := config.ParseTopology(*topology)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
			os.Exit(2)
		}
		cfg.NVLink.Topology = topo
	}

	// Worker-count selection never affects results (the sharded engine is
	// state-identical at every count), so this is purely a scheduling
	// choice: explicit counts pass through, automatic stays sequential
	// because the experiment pool is the outer source of parallelism.
	if *engineWorkers > 0 {
		cfg.EngineWorkers = *engineWorkers
	} else {
		cfg.EngineWorkers = 1
	}

	opt := experiments.Options{Seed: *seed}
	switch *scaleName {
	case "quick":
		opt.Scale = experiments.Quick
	case "full":
		opt.Scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "ccbench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	// Validate -only before any work: unknown ids fail fast with the full
	// list of valid ones. Empty tokens ("fig2,,fig3") are ignored.
	known := map[string]bool{}
	var knownIDs []string
	for _, e := range experiments.All() {
		known[e.ID] = true
		knownIDs = append(knownIDs, e.ID)
	}
	var ids []string
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if !known[id] {
				fmt.Fprintf(os.Stderr, "ccbench: unknown experiment %q\nvalid ids: %s\n",
					id, strings.Join(knownIDs, ", "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	for _, dir := range []string{*csvDir, *metricsDir, *telemetryDir, *checkpointDir} {
		if dir == "" {
			continue
		}
		if err := ensureWritableDir(dir); err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
			os.Exit(2)
		}
	}
	opt.Metrics = *metricsDir != ""
	opt.Telemetry = *telemetryDir != ""

	runner := experiments.Runner{
		Parallel: *parallel,
		Options:  opt,
		Check:    *check,
	}
	if *checkpointDir != "" {
		runner.Cache = &experiments.Cache{Dir: *checkpointDir}
		runner.ConfigName = cfg.Name
	}
	results, err := runner.Run(&cfg, ids)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("gpunoc ccbench: config=%s scale=%s seed=%d\n\n", cfg.Name, *scaleName, *seed)
	fmt.Print(experiments.Report(results))

	failed := false
	for _, res := range results {
		if res.Err != nil {
			failed = true
			continue
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, res.Figure.ID+".csv")
			if err := os.WriteFile(path, []byte(res.Figure.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "ccbench: writing %s: %v\n", path, err)
				failed = true
			}
		}
		if *metricsDir != "" {
			blob, err := json.MarshalIndent(res.Metrics, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "ccbench: encoding metrics for %s: %v\n", res.Experiment.ID, err)
				failed = true
				continue
			}
			base := filepath.Join(*metricsDir, res.Experiment.ID)
			if err := os.WriteFile(base+".metrics.json", append(blob, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "ccbench: writing %s.metrics.json: %v\n", base, err)
				failed = true
			}
			if err := os.WriteFile(base+".metrics.csv", []byte(res.Metrics.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "ccbench: writing %s.metrics.csv: %v\n", base, err)
				failed = true
			}
		}
		if *telemetryDir != "" {
			base := filepath.Join(*telemetryDir, res.Experiment.ID)
			var wb, eb strings.Builder
			if err := telemetry.WriteWindowsJSONL(&wb, res.TelemetryWindows); err != nil {
				fmt.Fprintf(os.Stderr, "ccbench: encoding windows for %s: %v\n", res.Experiment.ID, err)
				failed = true
				continue
			}
			if err := telemetry.WriteEventsJSONL(&eb, res.TelemetryEvents); err != nil {
				fmt.Fprintf(os.Stderr, "ccbench: encoding events for %s: %v\n", res.Experiment.ID, err)
				failed = true
				continue
			}
			if err := os.WriteFile(base+".windows.jsonl", []byte(wb.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "ccbench: writing %s.windows.jsonl: %v\n", base, err)
				failed = true
			}
			if err := os.WriteFile(base+".events.jsonl", []byte(eb.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "ccbench: writing %s.events.jsonl: %v\n", base, err)
				failed = true
			}
		}
	}

	fmt.Fprint(os.Stderr, experiments.Summary(results))
	if failed {
		os.Exit(1)
	}
}
