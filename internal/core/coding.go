package core

import "fmt"

// Coding selects the error-correcting code applied over a unit's Symbol
// stream. The paper transmits raw symbols and reports the resulting error
// rate (§5); the coding layer hardens the protocol against background-
// traffic noise the way MC3's error-handling protocol does for its
// contention channel — trading wire symbols (bandwidth) for corrected
// errors. Encoding and decoding happen entirely on the host side of the
// model (payload preparation and trace decoding); the kernels transmit wire
// symbols exactly as before, so CodingNone leaves every transmitted cycle
// untouched.
type Coding int

const (
	// CodingNone transmits the payload symbols raw (the paper's protocol).
	CodingNone Coding = iota
	// CodingRepetition sends each symbol Repeat times and majority-votes
	// on receive. Corrects up to (Repeat-1)/2 errors per symbol at a
	// 1/Repeat bandwidth cost; works for any BitsPerSymbol.
	CodingRepetition
	// CodingHamming74 packs data bits in groups of four and sends each as
	// a 7-bit Hamming codeword, correcting one wire error per codeword at
	// a 4/7 bandwidth cost. Binary channels only (BitsPerSymbol == 1).
	CodingHamming74
)

// String names the coding scheme.
func (c Coding) String() string {
	switch c {
	case CodingNone:
		return "none"
	case CodingRepetition:
		return "repetition"
	case CodingHamming74:
		return "hamming74"
	default:
		return fmt.Sprintf("Coding(%d)", int(c))
	}
}

// Preamble returns the known alignment pattern prepended to each unit's
// wire stream: the strongest level keyed by a Barker-13 sequence (tiled for
// longer preambles). Barker codes have minimal off-peak aperiodic
// autocorrelation, so the correlation search cannot lock onto a shifted
// copy of the pattern the way it could with a simple square wave, even when
// individual slots decode wrongly under noise.
func (p *Params) Preamble() []Symbol {
	barker13 := [13]byte{1, 1, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1}
	pre := make([]Symbol, p.PreambleSymbols)
	top := Symbol(p.Levels() - 1)
	for i := range pre {
		if barker13[i%len(barker13)] != 0 {
			pre[i] = top
		}
	}
	return pre
}

// encodedLen is the number of wire symbols carrying dataLen data symbols,
// excluding the preamble.
func (p *Params) encodedLen(dataLen int) int {
	switch p.Coding {
	case CodingRepetition:
		return dataLen * p.Repeat
	case CodingHamming74:
		return (dataLen + 3) / 4 * 7
	default:
		return dataLen
	}
}

// WireLen is the total wire symbols transmitted for one unit's dataLen data
// symbols: preamble plus coded payload. It applies parameter defaults first,
// so it answers correctly even for a Params that has not been through a
// constructor (e.g. CodingRepetition with the Repeat factor left zero).
func (p *Params) WireLen(dataLen int) int {
	if q, err := p.withDefaults(); err == nil {
		p = &q
	}
	return p.PreambleSymbols + p.encodedLen(dataLen)
}

// wireSymbols builds the transmitted stream for one unit: preamble followed
// by the coded payload. Coded symbols are block-interleaved across the
// unit's stream — all first copies / first codeword bits, then all second
// ones, and so on — so that a burst of consecutive bad slots (a noise burst,
// a resync transient) lands in different vote groups or codewords instead
// of overwhelming one.
func (p *Params) wireSymbols(data []Symbol) []Symbol {
	out := p.Preamble()
	switch p.Coding {
	case CodingRepetition:
		for r := 0; r < p.Repeat; r++ {
			out = append(out, data...)
		}
	case CodingHamming74:
		words := (len(data) + 3) / 4
		cw := hammingCodewords()
		for b := 0; b < 7; b++ {
			for w := 0; w < words; w++ {
				word := 0
				for j := 0; j < 4 && w*4+j < len(data); j++ {
					if data[w*4+j] != 0 {
						word |= 1 << j
					}
				}
				out = append(out, Symbol(cw[word]>>b&1))
			}
		}
	default:
		out = append(out, data...)
	}
	return out
}

// recoverData decodes one unit's raw received stream back into data
// symbols: it re-acquires alignment against the preamble (searching up to
// ResyncGuardSlots of receiver-side slot offset), strips the preamble, and
// inverts the coding. The result may be shorter than dataLen when the
// receiver's stream was cut short; the caller counts missing symbols as
// errors, matching the uncoded decode loop.
func (p *Params) recoverData(received []Symbol, dataLen int) []Symbol {
	off := p.alignOffset(received)
	start := off + p.PreambleSymbols
	if start > len(received) {
		return nil
	}
	wire := received[start:]
	if enc := p.encodedLen(dataLen); len(wire) > enc {
		wire = wire[:enc]
	}
	switch p.Coding {
	case CodingRepetition:
		// The de-interleave stride is the encode-time dataLen; a truncated
		// stream just has fewer surviving copies per symbol. Symbols with no
		// surviving copy at all (i >= len(wire)) are omitted so the caller
		// counts them as missing, like the uncoded decode loop.
		out := make([]Symbol, 0, dataLen)
		for i := 0; i < dataLen && i < len(wire); i++ {
			group := make([]Symbol, 0, p.Repeat)
			for r := 0; r < p.Repeat; r++ {
				if pos := r*dataLen + i; pos < len(wire) {
					group = append(group, wire[pos])
				}
			}
			out = append(out, majority(group, p.Levels()))
		}
		return out
	case CodingHamming74:
		words := (dataLen + 3) / 4
		cw := hammingCodewords()
		out := make([]Symbol, 0, dataLen)
		for w := 0; w < words && w < len(wire); w++ {
			word := 0
			for b := 0; b < 7; b++ {
				if pos := b*words + w; pos < len(wire) && wire[pos] != 0 {
					word |= 1 << b
				}
			}
			d := nearestCodeword(cw, word)
			for j := 0; j < 4 && len(out) < dataLen; j++ {
				out = append(out, Symbol(d>>j&1))
			}
		}
		return out
	default:
		if len(wire) > dataLen {
			wire = wire[:dataLen]
		}
		return wire
	}
}

// alignOffset correlates the received stream against the known preamble
// over offsets [0, ResyncGuardSlots] and returns the best match (lowest
// offset wins ties, so a clean channel always aligns at zero).
func (p *Params) alignOffset(received []Symbol) int {
	if p.PreambleSymbols == 0 || p.ResyncGuardSlots == 0 {
		return 0
	}
	pre := p.Preamble()
	best, bestScore := 0, -1
	for off := 0; off <= p.ResyncGuardSlots; off++ {
		score := 0
		for i, s := range pre {
			if off+i < len(received) && received[off+i] == s {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = off, score
		}
	}
	return best
}

// majority returns the most frequent symbol in group (lowest value wins a
// tie, which cannot happen for odd repetition factors on a binary channel).
func majority(group []Symbol, levels int) Symbol {
	counts := make([]int, levels)
	for _, s := range group {
		if int(s) >= 0 && int(s) < levels {
			counts[s]++
		}
	}
	best := 0
	for l := 1; l < levels; l++ {
		if counts[l] > counts[best] {
			best = l
		}
	}
	return Symbol(best)
}

// hammingCodewords builds the 16 codewords of the systematic Hamming(7,4)
// code: bits 0-3 carry the data nibble, bits 4-6 the parity checks.
// Computed on demand to keep the package free of mutable globals.
func hammingCodewords() [16]int {
	var cw [16]int
	for d := 0; d < 16; d++ {
		d1, d2, d3, d4 := d&1, d>>1&1, d>>2&1, d>>3&1
		p1 := d1 ^ d2 ^ d4
		p2 := d1 ^ d3 ^ d4
		p3 := d2 ^ d3 ^ d4
		cw[d] = d | p1<<4 | p2<<5 | p3<<6
	}
	return cw
}

// nearestCodeword decodes one received 7-bit word to the data nibble of the
// closest codeword (minimum Hamming distance; the lowest nibble wins ties).
// Within distance one of a codeword this is exact single-error correction.
func nearestCodeword(cw [16]int, word int) int {
	best, bestDist := 0, 8
	for d, c := range cw {
		dist := popcount7(word ^ c)
		if dist < bestDist {
			best, bestDist = d, dist
		}
	}
	return best
}

func popcount7(v int) int {
	n := 0
	for v != 0 {
		n += v & 1
		v >>= 1
	}
	return n
}
