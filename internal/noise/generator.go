package noise

import (
	"math/rand"

	"gpunoc/internal/config"
	"gpunoc/internal/device"
	"gpunoc/internal/probe"
	"gpunoc/internal/warp"
)

// generator is one noise warp: a resumable state machine stepped by the SM
// like any other program. It discovers at runtime whether it landed on a
// victim SM (the %smid check every co-locating kernel in this codebase
// uses), then alternates uncoalesced memory operations with kind-dependent
// gaps until its duration expires.
type generator struct {
	spec   *Spec
	cfg    *config.Config
	active func(smid int) bool
	warpID int
	rng    *rand.Rand
	ops    *probe.Counter // issued operations (nil when uninstrumented)
	warps  *probe.Counter // warps that found a victim SM

	started    bool
	start      uint64
	base       uint64
	opIdx      int
	gapPending bool
}

// Step implements device.Program.
func (g *generator) Step(ctx *device.Ctx) device.Op {
	if !g.started {
		g.started = true
		if !g.active(ctx.SMID) {
			return device.Done()
		}
		g.start = ctx.Clock64
		g.base = g.spec.Base + uint64(ctx.SMID*g.cfg.MaxWarpsPerSM+g.warpID)*g.spec.WindowBytes
		g.warps.Inc()
		if g.spec.Kind == Random {
			// Dephase the victim warps so random interference does not
			// arrive in lockstep across SMs.
			if d := g.rng.Int63n(int64(g.spec.PeriodCycles)); d > 0 {
				return device.Wait(uint64(d))
			}
		}
	}
	elapsed := ctx.Clock64 - g.start
	if elapsed >= g.spec.DurationCycles {
		return device.Done()
	}
	if g.spec.Kind == Burst {
		pos := elapsed % g.spec.PeriodCycles
		on := uint64(g.spec.Intensity * float64(g.spec.PeriodCycles))
		if pos >= on {
			// Off phase: sleep to the next period boundary.
			return device.Wait(g.spec.PeriodCycles - pos)
		}
	}
	if g.gapPending {
		g.gapPending = false
		if gap := g.gap(); gap > 0 {
			return device.Wait(gap)
		}
	}
	g.gapPending = true
	g.opIdx++
	g.ops.Inc()
	footprint := uint64(g.cfg.SIMTWidth * g.cfg.L2LineBytes)
	off := uint64(g.opIdx) * footprint % g.spec.WindowBytes
	return device.Mem(warp.UncoalescedOp(g.base+off, g.spec.Write, g.cfg.L2LineBytes))
}

// gap returns the cycles to wait after the operation just issued.
func (g *generator) gap() uint64 {
	switch g.spec.Kind {
	case Random:
		mean := gapCycles(g.cfg, g.spec.Intensity)
		return uint64(g.rng.Int63n(int64(2*mean) + 1))
	case Burst:
		return 0 // full rate inside the on phase; the duty cycle is the knob
	default:
		return gapCycles(g.cfg, g.spec.Intensity)
	}
}
