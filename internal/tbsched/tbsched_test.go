package tbsched

import (
	"testing"
	"testing/quick"

	"gpunoc/internal/config"
)

func mkSched(t *testing.T, cfg config.Config) *Scheduler {
	t.Helper()
	s, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	bad := config.Volta()
	bad.NumGPCs = 0
	if _, err := New(&bad); err == nil {
		t.Error("invalid config should fail")
	}
}

// TestSection43Placement pins the reverse-engineered policy: the first 40
// blocks land on 40 distinct TPCs (one SM each), and the next 40 fill the
// second SM of each TPC. A sender launched first and a receiver launched
// second are therefore co-located pairwise on every TPC.
func TestSection43Placement(t *testing.T) {
	cfg := config.Volta()
	s := mkSched(t, cfg)
	sender, err := s.Assign(cfg.NumTPCs())
	if err != nil {
		t.Fatal(err)
	}
	seenTPC := make(map[int]bool)
	for _, smID := range sender {
		tpc := cfg.TPCOfSM(smID)
		if seenTPC[tpc] {
			t.Fatalf("two sender blocks on TPC %d before all TPCs used", tpc)
		}
		seenTPC[tpc] = true
	}
	if len(seenTPC) != cfg.NumTPCs() {
		t.Fatalf("sender covered %d TPCs, want %d", len(seenTPC), cfg.NumTPCs())
	}
	receiver, err := s.Assign(cfg.NumTPCs())
	if err != nil {
		t.Fatal(err)
	}
	// Receiver blocks fill the remaining SM of every TPC; each TPC hosts
	// exactly one sender and one receiver SM.
	pair := make(map[int][2]int)
	for _, smID := range sender {
		p := pair[cfg.TPCOfSM(smID)]
		p[0]++
		pair[cfg.TPCOfSM(smID)] = p
	}
	for _, smID := range receiver {
		p := pair[cfg.TPCOfSM(smID)]
		p[1]++
		pair[cfg.TPCOfSM(smID)] = p
	}
	for tpc, p := range pair {
		if p[0] != 1 || p[1] != 1 {
			t.Errorf("TPC %d hosts %d senders / %d receivers", tpc, p[0], p[1])
		}
	}
	// No SM hosts two blocks.
	for sm := 0; sm < cfg.NumSMs(); sm++ {
		if s.Load(sm) != 1 {
			t.Errorf("SM %d load = %d, want 1", sm, s.Load(sm))
		}
	}
}

// TestGPCInterleave: the first NumGPCs blocks land in distinct GPCs.
func TestGPCInterleave(t *testing.T) {
	cfg := config.Volta()
	s := mkSched(t, cfg)
	blocks, err := s.Assign(cfg.NumGPCs)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, smID := range blocks {
		g := cfg.GPCOfSM(smID)
		if seen[g] {
			t.Fatalf("two early blocks in GPC %d", g)
		}
		seen[g] = true
	}
}

func TestAssignValidation(t *testing.T) {
	s := mkSched(t, config.Small())
	if _, err := s.Assign(0); err == nil {
		t.Error("zero blocks should fail")
	}
	if _, err := s.Assign(-3); err == nil {
		t.Error("negative blocks should fail")
	}
}

func TestRelease(t *testing.T) {
	cfg := config.Small()
	s := mkSched(t, cfg)
	blocks, err := s.Assign(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(blocks[0]); err != nil {
		t.Fatal(err)
	}
	if s.Load(blocks[0]) != 0 {
		t.Error("release did not decrement load")
	}
	if err := s.Release(blocks[0]); err == nil {
		t.Error("double release should fail")
	}
	if err := s.Release(-1); err == nil {
		t.Error("bad SM id should fail")
	}
}

// TestReleaseReuse: freed SMs are preferred over loaded ones.
func TestReleaseReuse(t *testing.T) {
	cfg := config.Small()
	s := mkSched(t, cfg)
	first, err := s.Assign(cfg.NumSMs())
	if err != nil {
		t.Fatal(err)
	}
	victim := first[3]
	if err := s.Release(victim); err != nil {
		t.Fatal(err)
	}
	next, err := s.Assign(1)
	if err != nil {
		t.Fatal(err)
	}
	if next[0] != victim {
		t.Errorf("new block landed on SM %d, want freed SM %d", next[0], victim)
	}
}

func TestOrderIsPermutation(t *testing.T) {
	for _, cfg := range []config.Config{config.Volta(), config.Small()} {
		s := mkSched(t, cfg)
		order := s.Order()
		if len(order) != cfg.NumSMs() {
			t.Fatalf("%s: order has %d entries, want %d", cfg.Name, len(order), cfg.NumSMs())
		}
		seen := make(map[int]bool)
		for _, smID := range order {
			if smID < 0 || smID >= cfg.NumSMs() || seen[smID] {
				t.Fatalf("%s: order %v is not a permutation", cfg.Name, order)
			}
			seen[smID] = true
		}
	}
}

// Property: assigning k blocks (k <= NumSMs) on a fresh GPU never doubles up
// an SM, and TPC double-occupancy only begins after all TPCs are used.
func TestQuickNoEarlyDoubling(t *testing.T) {
	cfg := config.Volta()
	f := func(raw uint8) bool {
		k := int(raw)%cfg.NumSMs() + 1
		s, err := New(&cfg)
		if err != nil {
			return false
		}
		blocks, err := s.Assign(k)
		if err != nil {
			return false
		}
		smSeen := make(map[int]int)
		tpcSeen := make(map[int]int)
		for _, smID := range blocks {
			smSeen[smID]++
			tpcSeen[cfg.TPCOfSM(smID)]++
		}
		for _, n := range smSeen {
			if n > 1 {
				return false
			}
		}
		if k <= cfg.NumTPCs() {
			for _, n := range tpcSeen {
				if n > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
