// benchcheck gates benchmark results against the checked-in baseline.
//
// It reads `go test -bench` output (stdin by default) and compares every
// EngineTick and SnapshotRestore sub-benchmark against the "after" numbers
// recorded in BENCH_tick.json, failing when a gated metric drifts outside
// the tolerance band. Baseline entries with "gate": false are reported but
// never enforced (the idle number is an O(1) fast-forward measured in
// fractions of a nanosecond — pure environment noise).
//
// Usage:
//
//	go test ./internal/engine -run xxx -bench EngineTick -benchtime 200000x \
//	    | go run ./cmd/benchcheck -baseline BENCH_tick.json
//	go test ./internal/engine -run xxx -bench SnapshotRestore -benchtime 20x \
//	    | go run ./cmd/benchcheck -baseline BENCH_tick.json
//
// Each invocation gates only the baseline families present in its input; a
// family whose baseline entries have no measurements at all is an error only
// when no other family matched (so the two commands above can run and gate
// independently), but a partially measured family is always an error.
//
// A failure means either a real regression (fix it) or an intentional
// performance change (regenerate the baseline with the commands recorded in
// the file's "how" section and commit the new numbers alongside the change).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type baselineEntry struct {
	After float64 `json:"after"`
	Gate  *bool   `json:"gate"`
	Note  string  `json:"note"`
}

type baseline struct {
	EngineTick      map[string]baselineEntry `json:"engine_tick_ns_per_cycle"`
	SnapshotRestore map[string]baselineEntry `json:"snapshot_restore_ns_per_op"`
}

// benchLine matches one result line of `go test -bench` output for the two
// gated benchmark families, e.g.
//
//	BenchmarkEngineTick/sparse-2sm-8       200000     184.7 ns/op
//	BenchmarkSnapshotRestore/snapshot-8        20   41234567 ns/op
//
// The trailing -N is the GOMAXPROCS suffix, omitted when it is 1.
var benchLine = regexp.MustCompile(`^Benchmark(EngineTick|SnapshotRestore)/(\S+?)(-\d+)?\s+\d+\s+([0-9.eE+-]+) ns/op`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_tick.json", "baseline JSON file")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional drift from the baseline")
	in := flag.String("in", "-", "benchmark output to read ('-' for stdin)")
	flag.Parse()

	if err := run(*baselinePath, *in, *tolerance); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}
}

func run(baselinePath, in string, tolerance float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	if len(base.EngineTick) == 0 {
		return fmt.Errorf("%s: no engine_tick_ns_per_cycle entries", baselinePath)
	}

	var src io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	measured, err := parseBench(src)
	if err != nil {
		return err
	}
	families := []struct {
		name string
		base map[string]baselineEntry
	}{
		{"EngineTick", base.EngineTick},
		{"SnapshotRestore", base.SnapshotRestore},
	}
	matched := 0
	for _, fam := range families {
		got := measured[fam.name]
		if len(got) == 0 {
			continue
		}
		matched++
		fmt.Fprintf(os.Stdout, "— %s —\n", fam.name)
		if err := compare(os.Stdout, fam.base, got, tolerance, baselinePath); err != nil {
			return err
		}
	}
	if matched == 0 {
		return fmt.Errorf("no BenchmarkEngineTick or BenchmarkSnapshotRestore results in input")
	}
	return nil
}

// compare reports every measured sub-benchmark against the baseline. Gated
// entries outside the tolerance band fail; "gate": false entries print an
// UNGATED line so unenforced metrics stay visible in CI logs instead of
// being silently skipped; a baseline entry whose benchmark no longer exists
// in the input is an error (a renamed or deleted benchmark must take its
// baseline entry with it).
func compare(w io.Writer, base map[string]baselineEntry, measured map[string]float64, tolerance float64, baselinePath string) error {
	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)

	failures := 0
	for _, name := range names {
		got := measured[name]
		entry, ok := base[name]
		if !ok {
			fmt.Fprintf(w, "%-12s %10.4f ns/op  (no baseline entry — add one to %s)\n", name, got, baselinePath)
			continue
		}
		gated := entry.Gate == nil || *entry.Gate
		drift := got/entry.After - 1
		status := "ok"
		if !gated {
			status = "UNGATED"
		} else if drift > tolerance || drift < -tolerance {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(w, "%-12s %10.4f ns/op  baseline %10.4f  drift %+6.1f%%  %s\n",
			name, got, entry.After, drift*100, status)
	}
	var missing []string
	for name := range base {
		if _, ok := measured[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("baseline metric(s) %s missing from benchmark output; remove stale entries from %s or restore the benchmark",
			strings.Join(missing, ", "), baselinePath)
	}
	if failures > 0 {
		return fmt.Errorf("%d metric(s) outside the ±%.0f%% band; if intentional, regenerate %s (see its \"how\" section)",
			failures, tolerance*100, baselinePath)
	}
	return nil
}

func parseBench(r io.Reader) (map[string]map[string]float64, error) {
	out := map[string]map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		if out[m[1]] == nil {
			out[m[1]] = map[string]float64{}
		}
		out[m[1]][m[2]] = v
	}
	return out, sc.Err()
}
