// The sharded parallel tick loop and its worker pool. This is the one file
// in the engine-and-below tree sanctioned to use goroutines and sync — the
// tickmodel analyzer's ParallelFiles tier names it explicitly (see
// internal/lint/rules.go), so no waiver comments are needed here and the
// blanket ban still holds everywhere else.
//
// The device is cut along its natural seams into independent shards: one
// per GPC (its SMs plus the GPC's TPC/GPC links on both subnets) and one
// per partition group (a memory controller, its L2 slices, and their
// crossbar ports). Each simulated cycle runs as two phases separated by a
// barrier:
//
//	phase G (one task per GPC):        drain reply outboxes → tick SMs →
//	                                   tick the GPC's links
//	phase P (one task per partition
//	         group):                   drain request outboxes → tick
//	                                   crossbar ports → tick the MC and
//	                                   its slices
//
// Within a phase no two tasks share any mutable state: the only cross-shard
// edges (GPC request channel → crossbar port, slice reply → GPC reply
// channel) go through single-owner outboxes that the producing task appends
// to in one phase and the consuming task drains in the next (see
// internal/noc/shard.go for the state-identity argument). The barrier —
// a sync.WaitGroup the coordinator waits on — is therefore the only
// synchronization in the whole engine, and which worker runs which task can
// never influence simulation state. docs/DETERMINISM.md and the worker-
// matrix regressions (TestRandomTrafficMatchesExhaustiveTick, the lockstep
// determinism test) pin the resulting guarantee: every observable is
// identical at every worker count.
package engine

import (
	"runtime"
	"sync"

	"gpunoc/internal/config"
	"gpunoc/internal/sched"
)

// resolveWorkers maps cfg.EngineWorkers to the worker count the engine will
// actually use: GOMAXPROCS when unset, capped at the shard count, and
// clamped to 1 whenever the configuration demands the sequential loop
// (ExhaustiveTick is the single-goroutine reference mode by definition, and
// probe instruments are deliberately lock-free and shared across shards).
func resolveWorkers(cfg *config.Config) int {
	if cfg.ExhaustiveTick || cfg.Probes != nil {
		return 1
	}
	w := cfg.EngineWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if cap := max(cfg.NumGPCs, cfg.NumMCs); w > cap {
		w = cap
	}
	return max(w, 1)
}

// parEngine holds the sharded-mode state the GPU adds on top of the
// sequential engine: the per-GPC SM shards and the worker pool.
type parEngine struct {
	g  *GPU
	nG int // phase-G tasks, one per GPC
	nM int // phase-P tasks, one per partition group

	// smsOfGPC[g] lists GPC g's SM ids ascending — the exhaustive SM tick
	// order restricted to the shard. smShards[g] is the per-shard active
	// set (indexed by global SM id) replacing the engine's global smSet.
	smsOfGPC [][]int
	smShards []*sched.ActiveSet

	pool *workerPool
}

// newParEngine switches a freshly built GPU into sharded mode: the fabric
// and the memory partition are resharded, every SM's wake edge is rewired
// to its GPC's set, and a (lazily started) pool of workers-1 goroutines is
// attached. Must be called from New, before any traffic.
func newParEngine(g *GPU, workers int) *parEngine {
	cfg := &g.cfg
	pe := &parEngine{g: g, nG: cfg.NumGPCs, nM: cfg.NumMCs}
	numSM := cfg.NumSMs()
	pe.smsOfGPC = make([][]int, pe.nG)
	pe.smShards = make([]*sched.ActiveSet, pe.nG)
	for gpc := 0; gpc < pe.nG; gpc++ {
		gpc := gpc
		pe.smShards[gpc] = sched.NewActiveSet(numSM)
		for _, t := range cfg.TPCsOfGPC(gpc) {
			for _, s := range cfg.SMsOfTPC(t) {
				s := s
				pe.smsOfGPC[gpc] = append(pe.smsOfGPC[gpc], s)
				g.sms[s].SetWaker(func() { pe.smShards[gpc].Wake(s) })
			}
		}
	}
	g.net.EnableSharding()
	g.part.EnableSharding()
	pe.pool = &workerPool{
		workers: workers,
		jobs:    make(chan job, max(pe.nG, pe.nM)),
		quit:    make(chan struct{}),
	}
	// Experiments build GPUs by the hundred and drop them without ceremony;
	// the finalizer keeps an unclosed pool from leaking its goroutines.
	// Workers reference only the pool, never the GPU, so the GPU stays
	// collectable.
	runtime.SetFinalizer(g, (*GPU).Close)
	return pe
}

// step runs one simulated cycle's two phases. A phase whose shards all
// report no work is skipped outright, and a phase with a single busy shard
// runs inline on the coordinator — the idle tasks are no-ops, so both
// shortcuts are state-identical to dispatching; they just keep sparse
// cycles (the common case in the paper's protocols) off the pool. The
// decision depends only on simulation state, never on timing.
func (pe *parEngine) step() {
	g := pe.g
	busy := 0
	for gpc := 0; gpc < pe.nG; gpc++ {
		if !pe.smShards[gpc].Empty() || g.net.GPCShardHasWork(gpc) {
			busy++
		}
	}
	pe.runPhase(pe.nG, busy, pe.phaseG)
	busy = 0
	for m := 0; m < pe.nM; m++ {
		if g.net.XbarShardHasWork(m) || g.part.ShardHasWork(m) {
			busy++
		}
	}
	pe.runPhase(pe.nM, busy, pe.phaseP)
}

// phaseG is the per-GPC task: drain last cycle's replies into the GPC's
// reply channel, tick the shard's active SMs in ascending id order, then
// tick the shard's links in the exhaustive group order.
func (pe *parEngine) phaseG(gpc int) {
	g := pe.g
	now := g.now
	g.net.DrainReplies(gpc)
	if set := pe.smShards[gpc]; !set.Empty() {
		for _, i := range pe.smsOfGPC[gpc] {
			if !set.Active(i) {
				continue
			}
			s := g.sms[i]
			s.Tick(now)
			if s.Quiescent() {
				set.Park(i)
			}
		}
	}
	g.net.TickGPCShard(now, gpc)
}

// phaseP is the per-partition-group task: drain this cycle's requests into
// the group's crossbar ports, tick those ports (delivering into the
// slices), then tick the memory controller and its slices.
func (pe *parEngine) phaseP(m int) {
	g := pe.g
	now := g.now
	g.net.TickXbarShard(now, m)
	g.part.TickShard(now, m)
}

// smsQuiet reports whether every SM shard is parked.
func (pe *parEngine) smsQuiet() bool {
	for _, set := range pe.smShards {
		if !set.Empty() {
			return false
		}
	}
	return true
}

// runPhase executes tasks 0..n-1, inline when at most one would do work and
// on the pool otherwise. The pool call does not return until every task has
// finished — the phase barrier.
func (pe *parEngine) runPhase(n, busy int, f func(int)) {
	if busy == 0 {
		return
	}
	if busy == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	pe.pool.run(n, f)
}

// Workers returns the number of workers the engine resolved from
// Config.EngineWorkers (1 means the classic sequential tick loop; anything
// higher means the sharded loop is active). Tests use it to assert the
// parallel engine actually engaged.
func (g *GPU) Workers() int { return g.workers }

// Close stops the parallel engine's worker goroutines. It is a no-op on a
// sequential engine, idempotent, and optional — a finalizer performs the
// same cleanup when a GPU is garbage collected — but calling it promptly
// keeps goroutine counts flat in code that builds many GPUs. The GPU must
// not be stepped again after Close.
func (g *GPU) Close() {
	if g.par != nil {
		g.par.pool.close()
	}
}

// job is one phase task handed to the pool: run f(i), then check in.
type job struct {
	f  func(int)
	i  int
	wg *sync.WaitGroup
}

// workerPool fans phase tasks out to workers-1 goroutines plus the
// coordinator itself. Goroutines start lazily on the first dispatched phase
// and exit when quit closes. All synchronization is jobs/quit/WaitGroup;
// the memory-model chain (coordinator sends → worker runs task → wg.Done →
// coordinator's wg.Wait) orders every shard mutation against the next
// phase, which the -race CI leg verifies under saturated traffic.
type workerPool struct {
	workers   int
	jobs      chan job
	quit      chan struct{}
	started   bool // coordinator-only; workers never read it
	closeOnce sync.Once
}

// run executes tasks 0..n-1 on the pool and returns when all are done. The
// jobs channel is sized for the largest phase, so the sends never block;
// the coordinator then helps drain the queue instead of idling at the
// barrier.
func (p *workerPool) run(n int, f func(int)) {
	if !p.started {
		p.started = true
		for w := 0; w < p.workers-1; w++ {
			go p.worker()
		}
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		p.jobs <- job{f: f, i: i, wg: &wg}
	}
	for {
		select {
		case j := <-p.jobs:
			j.f(j.i)
			j.wg.Done()
		default:
			wg.Wait()
			return
		}
	}
}

// worker is the long-lived goroutine body: run jobs until the pool closes.
func (p *workerPool) worker() {
	for {
		select {
		case j := <-p.jobs:
			j.f(j.i)
			j.wg.Done()
		case <-p.quit:
			return
		}
	}
}

// close releases the workers. Idempotent; safe from the finalizer
// goroutine because it touches only quit.
func (p *workerPool) close() {
	p.closeOnce.Do(func() { close(p.quit) })
}
