package gpunoc

import (
	"bytes"
	"testing"
)

// TestSendBytesRoundTrip exercises the headline public API: transmit bytes
// over the multi-TPC covert channel and recover them on the other side.
func TestSendBytesRoundTrip(t *testing.T) {
	cfg := SmallConfig()
	p, err := Calibrate(&cfg, ChannelParams{Kind: TPCChannel, Iterations: 4, SyncPeriod: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("leak")
	res, got, err := SendBytes(&cfg, secret, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.BitsSent != len(secret)*8 {
		t.Errorf("BitsSent = %d", res.BitsSent)
	}
	if res.ErrorRate > 0.1 {
		t.Errorf("error rate %.3f", res.ErrorRate)
	}
	// Allow rare single-bit flips but expect near-perfect recovery.
	diff := 0
	for i := range secret {
		if got[i] != secret[i] {
			diff++
		}
	}
	if diff > 1 {
		t.Errorf("recovered %q, want %q", got, secret)
	}
}

func TestSendBytesGPC(t *testing.T) {
	cfg := SmallConfig()
	p, err := Calibrate(&cfg, ChannelParams{Kind: GPCChannel, Iterations: 4, SyncPeriod: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte{0xC3}
	res, got, err := SendBytes(&cfg, secret, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != GPCChannel {
		t.Errorf("kind = %v", res.Kind)
	}
	if res.ErrorRate > 0.2 {
		t.Errorf("error rate %.3f", res.ErrorRate)
	}
	if len(got) != 1 {
		t.Errorf("recovered %d bytes", len(got))
	}
}

func TestSendBytesValidation(t *testing.T) {
	cfg := SmallConfig()
	if _, _, err := SendBytes(&cfg, nil, ChannelParams{}); err == nil {
		t.Error("empty payload should fail")
	}
	bad := ChannelParams{BitsPerSymbol: 3}
	if _, _, err := SendBytes(&cfg, []byte{1}, bad); err == nil {
		t.Error("bad symbol width should fail")
	}
}

func TestSymbolHelpersRoundTrip(t *testing.T) {
	data := []byte{0xDE, 0xAD}
	syms, err := BytesToSymbols(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	back, err := SymbolsToBytes(syms, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, back) {
		t.Errorf("round trip %v -> %v", data, back)
	}
}

func TestReverseEngineerTopology(t *testing.T) {
	cfg := SmallConfig()
	pair, groups, err := ReverseEngineerTopology(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pair != 1 {
		t.Errorf("SM0's TPC mate = SM%d, want SM1", pair)
	}
	if len(groups) != cfg.NumGPCs {
		t.Fatalf("recovered %d GPC groups: %v", len(groups), groups)
	}
	for _, g := range groups {
		want := cfg.GPCOfTPC(g[0])
		for _, tpc := range g {
			if cfg.GPCOfTPC(tpc) != want {
				t.Errorf("group %v mixes GPCs", g)
			}
		}
	}
}

func TestNewGPU(t *testing.T) {
	g, err := NewGPU(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if g.Config().NumSMs() != 8 {
		t.Errorf("NumSMs = %d", g.Config().NumSMs())
	}
	bad := SmallConfig()
	bad.NumGPCs = 0
	if _, err := NewGPU(bad); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestVoltaConfigShape(t *testing.T) {
	cfg := VoltaConfig()
	if cfg.NumSMs() != 80 || cfg.NumTPCs() != 40 || cfg.NumGPCs != 6 {
		t.Errorf("volta topology %d/%d/%d", cfg.NumSMs(), cfg.NumTPCs(), cfg.NumGPCs)
	}
}
