package core

import (
	"testing"

	"gpunoc/internal/mesh"
)

// TestNVLinkTransmissionValidation covers the constructor's error paths.
func TestNVLinkTransmissionValidation(t *testing.T) {
	cfg := fastCfg()
	m, err := mesh.New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	p := Params{Kind: NVLinkChannel}
	if _, err := NewNVLinkTransmission(m, 0, 1, nil, p); err == nil {
		t.Error("empty payload should fail")
	}
	if _, err := NewNVLinkTransmission(m, 0, 0, AlternatingPayload(4, 2), p); err == nil {
		t.Error("same device twice should fail")
	}
	if _, err := NewNVLinkTransmission(m, 0, 5, AlternatingPayload(4, 2), p); err == nil {
		t.Error("out-of-range device should fail")
	}
	bad := p
	bad.Iterations = -1
	if _, err := NewNVLinkTransmission(m, 0, 1, AlternatingPayload(4, 2), bad); err == nil {
		t.Error("invalid params should fail")
	}
}

// TestNVLinkChannelEndToEnd calibrates the cross-GPU channel on a 2-device
// mesh and transmits a byte payload from device 0 to device 1, expecting
// near-perfect recovery like the on-die channels achieve at 4 iterations.
func TestNVLinkChannelEndToEnd(t *testing.T) {
	cfg := fastCfg()
	p, err := CalibrateRemote(cfg, 2, 0, 1, Params{Kind: NVLinkChannel, Seed: 11}, 24)
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	payload, err := BytesToSymbols([]byte("hi!"), 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mesh.New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	tr, err := NewNVLinkTransmission(m, 0, 1, payload, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != NVLinkChannel {
		t.Errorf("result kind %v", res.Kind)
	}
	if len(res.Pairs) != 1 || res.Pairs[0].Unit != 1 {
		t.Fatalf("pairs %+v", res.Pairs)
	}
	if res.ErrorRate > 0.05 {
		t.Errorf("error rate %.3f, want near zero (trace %v)", res.ErrorRate, res.Pairs[0].Trace[:4])
	}
	if res.BitsPerSecond <= 0 {
		t.Errorf("bits/s = %f", res.BitsPerSecond)
	}
	got, err := SymbolsToBytes(res.Pairs[0].Decoded, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hi!" {
		t.Errorf("decoded %q", got)
	}
}

// TestNVLinkChannelDeterministic pins bit-identical results across repeated
// runs — the mesh determinism story extended through the full channel stack.
func TestNVLinkChannelDeterministic(t *testing.T) {
	run := func() Result {
		cfg := fastCfg()
		m, err := mesh.New(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		tr, err := NewNVLinkTransmission(m, 0, 1, AlternatingPayload(16, 2), Params{Kind: NVLinkChannel, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tr.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.SymbolErrors != b.SymbolErrors || a.Cycles != b.Cycles {
		t.Errorf("runs diverged: %+v vs %+v", a, b)
	}
	for i := range a.Pairs[0].Received {
		if a.Pairs[0].Received[i] != b.Pairs[0].Received[i] {
			t.Fatalf("received symbol %d diverged", i)
		}
	}
}

// TestNVLinkCalibrationSeparation asserts the physical effect behind the
// channel: the calibrated threshold sits well above the uncontended remote
// round trip, i.e. the sender's flood visibly lifts the receiver's latency.
func TestNVLinkCalibrationSeparation(t *testing.T) {
	cfg := fastCfg()
	p, err := CalibrateRemote(cfg, 2, 0, 1, Params{Kind: NVLinkChannel, Seed: 3}, 24)
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	hop := float64(cfg.NVLink.WithDefaults().HopLatency)
	if p.Threshold < 2*hop {
		t.Errorf("threshold %.1f below the two-hop floor %.1f — remote path not being measured", p.Threshold, 2*hop)
	}
}
