// The cross-GPU seam: the hooks internal/mesh uses to join several GPU
// instances under one global clock and route packets between them over
// NVLink-modeled links.
//
// The design mirrors the PR-6 shard hand-off boxes (internal/noc/shard.go).
// A remote-bound request leaves the device at the LSU inject point — before
// it ever enters the local NoC — into a per-source-GPC outbox; a remote
// reply leaves at the slice egress point into a per-partition-group outbox.
// Each outbox has exactly one writer per phase (the GPC task for requests,
// the partition task for replies), so the sharded tick loop needs no new
// synchronization, and the coordinator drains the boxes between cycles in a
// fixed order (requests by ascending GPC then FIFO, replies by ascending
// partition group then FIFO) that is identical in sequential and sharded
// modes. Modeling-wise this folds the on-die path between the SM (or slice)
// and the NVLink port into the link's hop latency: the contention signal a
// cross-GPU covert channel measures lives entirely on the NVLink link.
package engine

import (
	"fmt"

	"gpunoc/internal/packet"
)

// remoteState is the per-device mesh state. All fields are written before
// traffic starts (ConnectRemote) except the hand-off boxes.
type remoteState struct {
	dev   int                   // this device's id in the mesh
	owner func(addr uint64) int // device owning each global address

	// gpcOfSM maps an SM id to its GPC so pushRequest can route by the
	// packet's SrcSM (ascending-SM order within a GPC holds in both the
	// sequential and the sharded tick loop, so box contents are
	// mode-identical).
	gpcOfSM     []int
	slicesPerMC int

	// Hand-off boxes, drained by DrainRemote with the slices reset to
	// box[:0] so steady-state capacity is reused.
	reqOut [][]*packet.Packet // outbound requests, indexed by source GPC
	repOut [][]*packet.Packet // outbound replies, indexed by partition group
}

// ConnectRemote joins this device to a mesh as device dev: owner maps every
// global address to the device that owns it, and any request whose owner is
// not dev leaves through the remote outboxes instead of the local NoC. It
// must be called once, before any kernel is launched or cycle stepped; the
// mesh is the only intended caller.
func (g *GPU) ConnectRemote(dev int, owner func(addr uint64) int) error {
	if owner == nil {
		return fmt.Errorf("engine: ConnectRemote needs an address-owner function")
	}
	if g.rmt != nil {
		return fmt.Errorf("engine: device already connected to a mesh as device %d", g.rmt.dev)
	}
	if g.now != 0 || len(g.kernels) != 0 {
		return fmt.Errorf("engine: ConnectRemote must precede all launches and cycles (now %d, %d kernels)",
			g.now, len(g.kernels))
	}
	rmt := &remoteState{
		dev:         dev,
		owner:       owner,
		slicesPerMC: g.cfg.SlicesPerMC(),
		gpcOfSM:     make([]int, g.cfg.NumSMs()),
		reqOut:      make([][]*packet.Packet, g.cfg.NumGPCs),
		repOut:      make([][]*packet.Packet, g.cfg.NumMCs),
	}
	for sm := range rmt.gpcOfSM {
		rmt.gpcOfSM[sm] = g.cfg.GPCOfSM(sm)
	}
	g.rmt = rmt
	return nil
}

// pushRequest stamps a remote-bound request with its source and destination
// devices and parks it in the source GPC's outbox. Called from the LSU
// inject path: in sharded mode that is GPC gpcOfSM[p.SrcSM]'s own phase-G
// task, so the box has a single writer.
func (r *remoteState) pushRequest(p *packet.Packet, dst int) {
	p.SrcDev = r.dev
	p.DstDev = dst
	gpc := r.gpcOfSM[p.SrcSM]
	r.reqOut[gpc] = append(r.reqOut[gpc], p)
}

// pushReply parks a completed cross-GPU reply in its partition group's
// outbox. Called from the slice egress path: in sharded mode that is
// partition group p.Slice/slicesPerMC's own phase-P task.
func (r *remoteState) pushReply(p *packet.Packet) {
	m := p.Slice / r.slicesPerMC
	r.repOut[m] = append(r.repOut[m], p)
}

// boxesEmpty reports whether no packet is waiting to leave the device.
func (r *remoteState) boxesEmpty() bool {
	for _, box := range r.reqOut {
		if len(box) != 0 {
			return false
		}
	}
	for _, box := range r.repOut {
		if len(box) != 0 {
			return false
		}
	}
	return true
}

// DrainRemote hands every outbound packet to f in the canonical order —
// requests by ascending source GPC (FIFO within a box, which is ascending
// SM issue order), then replies by ascending partition group — and empties
// the boxes. The mesh calls it on the coordinator goroutine after each
// device cycle; the order is identical at every worker count because box
// contents are.
func (g *GPU) DrainRemote(f func(p *packet.Packet)) {
	if g.rmt == nil {
		return
	}
	for gpc, box := range g.rmt.reqOut {
		for _, p := range box {
			f(p)
		}
		g.rmt.reqOut[gpc] = box[:0]
	}
	for m, box := range g.rmt.repOut {
		for _, p := range box {
			f(p)
		}
		g.rmt.repOut[m] = box[:0]
	}
}

// AcceptRemote delivers an inbound cross-GPU packet: requests enter at the
// memory partition (the NVLink port hangs off the crossbar edge; the
// request's on-die traversal is folded into the link's hop latency), and
// replies are handed straight to the issuing SM. The mesh calls it on the
// coordinator goroutine between cycles.
func (g *GPU) AcceptRemote(now uint64, p *packet.Packet) {
	if g.rmt == nil {
		panic("engine: AcceptRemote on a device not connected to a mesh")
	}
	if p.Kind.IsRequest() {
		if p.DstDev != g.rmt.dev {
			panic(fmt.Sprintf("engine: request for device %d delivered to device %d", p.DstDev, g.rmt.dev))
		}
		p.Slice = g.part.SliceFor(p.Addr)
		g.part.Accept(now, p)
		return
	}
	if p.SrcDev != g.rmt.dev {
		panic(fmt.Sprintf("engine: reply for device %d delivered to device %d", p.SrcDev, g.rmt.dev))
	}
	g.sms[p.Tag.SM].OnReply(now, p)
}

// StepCycle advances the device exactly one cycle, stepping the telemetry
// sampler alongside. It is the mesh's per-cycle entry point — the mesh owns
// fast-forward decisions (SkipCycles) and cycle-meter accounting, so unlike
// RunFor this neither skips quiet stretches nor touches Config.Meter.
func (g *GPU) StepCycle() {
	g.step()
	if g.tel != nil {
		g.tel.Step(1, g.cfg.Probes)
	}
}

// SkipCycles fast-forwards the device n cycles without stepping. The caller
// must have established that the device is Quiet — nothing can change state
// until the next Launch or AcceptRemote — which the mesh checks across all
// devices and links before skipping any of them.
func (g *GPU) SkipCycles(n uint64) {
	g.now += n
	if g.ffwdCycles != nil {
		g.ffwdCycles.Add(n)
	}
	if g.tel != nil {
		g.tel.Step(n, g.cfg.Probes)
	}
}

// Quiet reports whether the device is fully parked — no active component,
// no running kernel, no packet waiting in a remote outbox — so stepping it
// would be a no-op. Always false in exhaustive mode.
func (g *GPU) Quiet() bool { return g.quiet() }
