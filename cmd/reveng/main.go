// Command reveng runs the §3 reverse-engineering methodology against the
// simulated GPU as a black box: it discovers which SM shares SM0's TPC
// channel (Fig 2), groups TPCs into GPCs (Fig 3/4), surveys the clock
// registers (Fig 6), and probes the thread-block scheduler (§4.3).
//
// Usage:
//
//	reveng [-config volta|small] [-seed N] [-reps N]
package main

import (
	"flag"
	"fmt"
	"os"

	"gpunoc/internal/config"
	"gpunoc/internal/reveng"
)

func fail(err error) {
	fmt.Fprintf(os.Stderr, "reveng: %v\n", err)
	os.Exit(1)
}

func main() {
	cfgName := flag.String("config", "volta", "GPU configuration: volta or small")
	seed := flag.Int64("seed", 1, "deterministic seed")
	reps := flag.Int("reps", 12, "repetitions per GPC probe")
	flag.Parse()

	var cfg config.Config
	switch *cfgName {
	case "volta":
		cfg = config.Volta()
	case "small":
		cfg = config.Small()
	default:
		fail(fmt.Errorf("unknown config %q", *cfgName))
	}
	cfg.Seed = *seed

	fmt.Printf("reverse engineering %s (%d SMs, ground truth hidden from the probes)\n\n",
		cfg.Name, cfg.NumSMs())

	// Step 1: TPC pairing via the Algorithm 1 write benchmark.
	fmt.Println("[1/4] TPC channel pairing (Fig 2)")
	points, err := reveng.TPCSweep(&cfg, 0, 4, 10)
	if err != nil {
		fail(err)
	}
	pair, err := reveng.PairedSM(points)
	if err != nil {
		fail(err)
	}
	fmt.Printf("  SM0 shares its TPC channel with SM%d (peak slowdown at that SM)\n", pair)
	for _, p := range points {
		if p.Normalized > 1.3 {
			fmt.Printf("    SM%-3d -> %.2fx\n", p.OtherSM, p.Normalized)
		}
	}

	// Step 2: GPC grouping.
	fmt.Println("\n[2/4] GPC grouping (Fig 3/4)")
	opt := reveng.GPCProbeOptions{Reps: *reps, Seed: *seed}
	if cfg.NumTPCs() <= 8 {
		opt.Background = -1
	}
	groups, err := reveng.MapGPCs(&cfg, opt, 0)
	if err != nil {
		fail(err)
	}
	for i, g := range groups {
		fmt.Printf("  group %d: TPCs %v\n", i, g)
	}

	// Step 3: clock survey.
	fmt.Println("\n[3/4] clock register survey (Fig 6)")
	st, err := reveng.MeasureSkew(&cfg, 20)
	if err != nil {
		fail(err)
	}
	fmt.Printf("  mean intra-TPC skew: %.1f cycles (max %d)\n", st.MeanTPCSkew, st.MaxTPCSkew)
	fmt.Printf("  mean intra-GPC skew: %.1f cycles (max %d)\n", st.MeanGPCSkew, st.MaxGPCSkew)

	// Step 4: thread-block scheduler.
	fmt.Println("\n[4/4] thread-block scheduler probe (§4.3)")
	sms, err := reveng.TBProbe(&cfg, cfg.NumTPCs())
	if err != nil {
		fail(err)
	}
	distinct := map[int]bool{}
	for _, sm := range sms {
		distinct[cfg.TPCOfSM(sm)] = true
	}
	fmt.Printf("  first %d blocks landed on %d distinct TPCs (interleaved-first placement)\n",
		len(sms), len(distinct))
	fmt.Printf("  block->SM: %v\n", sms)
}
