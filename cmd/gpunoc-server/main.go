// Command gpunoc-server runs the simulation-as-a-service HTTP API from
// internal/server: clients POST experiment jobs and poll for results, a
// bounded worker pool simulates them with the same harness ccbench uses, and
// finished results are content-addressed in an on-disk cache shared with
// ccbench's -checkpoint-dir — a job whose key is already cached is answered
// synchronously without simulating.
//
// Usage:
//
//	gpunoc-server -cache-dir DIR [-addr :8080] [-workers N]
//
// API (see internal/server for the full contract):
//
//	POST /v1/jobs        {"config":"small","seed":5,"experiment":"fig2",
//	                      "scale":"quick"} -> 202 queued, or 200 when cached
//	GET  /v1/jobs/{key}  poll a submitted job
//	GET  /v1/healthz     liveness probe
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"

	"gpunoc/internal/experiments"
	"gpunoc/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache-dir", "", "result cache directory (required; shared with ccbench -checkpoint-dir)")
	workers := flag.Int("workers", 0, "concurrent simulation jobs (0 = GOMAXPROCS)")
	flag.Parse()

	if *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "gpunoc-server: -cache-dir is required")
		os.Exit(2)
	}
	if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "gpunoc-server: %v\n", err)
		os.Exit(2)
	}
	n := *workers
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	s, err := server.New(server.Config{
		Cache:   &experiments.Cache{Dir: *cacheDir},
		Workers: n,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpunoc-server: %v\n", err)
		os.Exit(2)
	}
	defer s.Close()

	fmt.Fprintf(os.Stderr, "gpunoc-server: listening on %s (cache %s, %d workers)\n", *addr, *cacheDir, n)
	if err := http.ListenAndServe(*addr, s.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "gpunoc-server: %v\n", err)
		os.Exit(1)
	}
}
