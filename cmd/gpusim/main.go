// Command gpusim runs ad-hoc workloads on the simulated GPU: streaming
// read/write kernels with configurable placement, warp counts, and
// arbitration policy. It is the generic entry point for exploring the
// contention behaviour of the NoC model outside the canned experiments.
//
// Usage:
//
//	gpusim [-config volta|small] [-arb rr|crr|srr|age] [-sms 0,1] \
//	       [-ops 20] [-warps 4] [-read] [-seed N] [-engine-workers N] \
//	       [-trace out.json] [-watch N] [-gpus N] [-topology full|ring|nvswitch] \
//	       [-snapshot-at N -snapshot-file f.snap | -restore f.snap]
//
// -gpus N (N >= 2) builds an N-device NVLink mesh (internal/mesh) instead of
// a single GPU and points the streamers on device 0 at a window owned by
// device 1, so every access crosses the fabric; the report adds one line per
// NVLink link with its packet/flit/queue statistics. -topology selects the
// fabric wiring. Mesh runs do not support -trace, -watch, or checkpoints.
//
// -snapshot-at N -snapshot-file f writes a checkpoint of the complete engine
// state at cycle N and then keeps running to completion, so the run's stdout
// is the uninterrupted reference. -restore f rebuilds the engine from such a
// checkpoint (pass the same -config/-arb/-seed and workload flags: the blob
// is bound to the configuration hash) and runs it to completion; its stdout
// is byte-identical to the snapshotting run's, which is exactly what the
// snapshot-identity CI job diffs. The single-GPU workload is a
// device.MaskedStreamer — a concrete checkpointable program, not a closure —
// so warp progress survives the round trip. Incompatible with -trace (event
// spans cannot be snapshotted).
//
// -trace writes a Chrome trace-event JSON file of the run: one track per
// instrumented NoC link (spans are packets occupying the channel, from
// enqueue to delivery) plus a "kernels" track with one span per kernel.
// Open it at https://ui.perfetto.dev or chrome://tracing; timestamps are
// simulated cycles, not microseconds.
//
// -watch N prints one human-readable line per N-cycle telemetry window to
// stderr — the window's bounds and every NoC link's occupancy rate — while
// the run executes. It is the interactive face of internal/telemetry's
// windowed sampler; like -trace it implies probe instrumentation. Windows
// with no link activity are not printed.
//
// -engine-workers selects the engine's sharded parallel tick loop (0, the
// default, is GOMAXPROCS-aware; results are identical at every setting).
// Tracing and watching imply probe instrumentation, so -trace and -watch
// runs always use the sequential engine regardless of this flag.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gpunoc/internal/config"
	"gpunoc/internal/device"
	"gpunoc/internal/engine"
	"gpunoc/internal/mesh"
	"gpunoc/internal/probe"
	"gpunoc/internal/telemetry"
)

func fail(err error) {
	fmt.Fprintf(os.Stderr, "gpusim: %v\n", err)
	os.Exit(1)
}

// watchPrinter is the -watch Watcher: one stderr line per window that saw
// any link activity, occupancy rates in sorted link order.
type watchPrinter struct{}

func (watchPrinter) ObserveWindow(w telemetry.Window) {
	names := telemetry.SortedOccNames(w)
	if len(names) == 0 {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "watch [%d,%d)", w.Start, w.End)
	for _, name := range names {
		short := strings.TrimSuffix(strings.TrimPrefix(name, "noc/"), "/occupancy")
		fmt.Fprintf(&b, " %s=%.2f", short, w.Occ[name].Rate)
	}
	fmt.Fprintln(os.Stderr, b.String())
}

func main() {
	cfgName := flag.String("config", "volta", "GPU configuration: volta or small")
	arbName := flag.String("arb", "rr", "NoC arbitration: rr, crr, srr, age")
	smsFlag := flag.String("sms", "0,1", "comma-separated SM ids to activate")
	ops := flag.Int("ops", 20, "streamer memory operations per warp")
	warps := flag.Int("warps", 4, "warps per activated SM")
	read := flag.Bool("read", false, "issue reads instead of writes")
	seed := flag.Int64("seed", 1, "deterministic seed")
	engineWorkers := flag.Int("engine-workers", 0, "engine tick-loop workers (0 = GOMAXPROCS-aware; ignored with -trace)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file (Perfetto-compatible) to this path")
	watch := flag.Uint64("watch", 0, "print one NoC occupancy line per N-cycle telemetry window to stderr (0 = off)")
	gpus := flag.Int("gpus", 0, "build an N-GPU NVLink mesh and stream from device 0 into device 1's memory (0/1 = single GPU)")
	topology := flag.String("topology", "", "NVLink mesh topology: full, ring, or nvswitch (empty = config default)")
	snapAt := flag.Uint64("snapshot-at", 0, "write a checkpoint at this cycle, then keep running (requires -snapshot-file)")
	snapFile := flag.String("snapshot-file", "", "checkpoint output path for -snapshot-at")
	restorePath := flag.String("restore", "", "restore the engine from this checkpoint and run to completion")
	flag.Parse()

	if (*snapAt > 0) != (*snapFile != "") {
		fail(fmt.Errorf("-snapshot-at and -snapshot-file must be used together"))
	}
	if *restorePath != "" && *snapFile != "" {
		fail(fmt.Errorf("-restore and -snapshot-at are mutually exclusive"))
	}
	if (*snapFile != "" || *restorePath != "") && *tracePath != "" {
		fail(fmt.Errorf("-trace cannot be combined with checkpoints (event spans cannot be snapshotted)"))
	}

	var cfg config.Config
	switch *cfgName {
	case "volta":
		cfg = config.Volta()
	case "small":
		cfg = config.Small()
	default:
		fail(fmt.Errorf("unknown config %q", *cfgName))
	}
	cfg.Seed = *seed
	cfg.EngineWorkers = *engineWorkers
	switch *arbName {
	case "rr":
		cfg.NoC.Arbitration = config.ArbRR
	case "crr":
		cfg.NoC.Arbitration = config.ArbCRR
	case "srr":
		cfg.NoC.Arbitration = config.ArbSRR
	case "age":
		cfg.NoC.Arbitration = config.ArbAge
	default:
		fail(fmt.Errorf("unknown arbitration %q", *arbName))
	}

	targets := map[int]bool{}
	for _, tok := range strings.Split(*smsFlag, ",") {
		sm, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || sm < 0 || sm >= cfg.NumSMs() {
			fail(fmt.Errorf("bad SM id %q", tok))
		}
		targets[sm] = true
	}

	if *topology != "" {
		topo, err := config.ParseTopology(*topology)
		if err != nil {
			fail(err)
		}
		cfg.NVLink.Topology = topo
	}
	if *gpus >= 2 {
		if *tracePath != "" || *watch > 0 {
			fail(fmt.Errorf("-trace and -watch are not supported with -gpus"))
		}
		if *snapFile != "" || *restorePath != "" {
			fail(fmt.Errorf("checkpoints are not supported with -gpus"))
		}
		runMesh(cfg, *gpus, targets, *warps, *ops, *read, *smsFlag)
		return
	}

	if *tracePath != "" {
		cfg.Probes = probe.NewRegistry()
		cfg.Probes.EnableTrace(0)
	}
	if *watch > 0 {
		if cfg.Probes == nil {
			cfg.Probes = probe.NewRegistry()
		}
		cfg.Telemetry = telemetry.NewSampler(*watch, watchPrinter{})
	}

	smList := make([]int, 0, len(targets))
	for sm := 0; sm < cfg.NumSMs(); sm++ {
		if targets[sm] {
			smList = append(smList, sm)
		}
	}

	// The workload is a MaskedStreamer per warp — a concrete checkpointable
	// program, so a -snapshot-at/-restore round trip preserves warp
	// progress. Both the launching and the restoring path record every
	// instance they build; the report reads clocks back from them.
	const span = 8192
	var progs []*device.MaskedStreamer
	newProg := func(w int) *device.MaskedStreamer {
		m := &device.MaskedStreamer{
			SMs:         smList,
			Warp:        w,
			WarpsPerSM:  *warps,
			SpanBytes:   span,
			LineBytes:   cfg.L2LineBytes,
			Write:       !*read,
			Count:       *ops,
			Uncoalesced: true,
			WrapBytes:   span / 2,
		}
		progs = append(progs, m)
		return m
	}

	var g *engine.GPU
	if *restorePath != "" {
		blob, err := os.ReadFile(*restorePath)
		if err != nil {
			fail(err)
		}
		// The restore factory constructs zero-valued programs; every field
		// (including the per-warp placement) comes from the snapshot.
		g, err = engine.Restore(cfg, blob, engine.RestoreOptions{
			Programs: map[string]func() device.Checkpointable{
				"masked-streamer": func() device.Checkpointable { return newProg(0) },
			},
		})
		if err != nil {
			fail(err)
		}
	} else {
		var err error
		g, err = engine.New(cfg)
		if err != nil {
			fail(err)
		}
		g.Preload(0, uint64(cfg.NumSMs()**warps)*span)
		spec := device.KernelSpec{
			Name:          "gpusim",
			Blocks:        cfg.NumSMs(),
			WarpsPerBlock: *warps,
			New:           func(b, w int) device.Program { return newProg(w) },
		}
		if _, err := g.Launch(spec); err != nil {
			fail(err)
		}
		if *snapFile != "" {
			g.RunFor(*snapAt)
			blob, err := g.Snapshot()
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*snapFile, blob, 0o644); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "gpusim: wrote %d-byte checkpoint at cycle %d -> %s\n",
				len(blob), g.Now(), *snapFile)
		}
	}
	if err := g.RunKernels(100_000_000); err != nil {
		fail(err)
	}

	kind := "write"
	if *read {
		kind = "read"
	}
	fmt.Printf("gpusim: %s, arbitration=%s, %d %s ops x %d warps on SMs %v\n",
		cfg.Name, cfg.NoC.Arbitration, *ops, kind, *warps, *smsFlag)
	perSM := map[int]uint64{}
	for _, m := range progs {
		if m.Active() && m.EndClock > m.StartClock {
			if d := m.EndClock - m.StartClock; d > perSM[m.SMID] {
				perSM[m.SMID] = d
			}
		}
	}
	for sm := 0; sm < cfg.NumSMs(); sm++ {
		if d, ok := perSM[sm]; ok {
			fmt.Printf("  SM%-3d TPC%-2d GPC%d: %8d cycles (%.2f us at %dMHz)\n",
				sm, cfg.TPCOfSM(sm), cfg.GPCOfSM(sm), d,
				cfg.CyclesToSeconds(d)*1e6, cfg.CoreClockMHz)
		}
	}
	st := g.Partition().Stats()
	fmt.Printf("  L2: %d served, %d hits, %d misses\n", st.Served, st.Hits, st.Misses)

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		tr := g.Probes().Tracer()
		if err := probe.WriteChrome(f, tr); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("  trace: %d events on %d tracks -> %s (open at ui.perfetto.dev)\n",
			len(tr.Events()), len(tr.Tracks()), *tracePath)
	}
}

// runMesh is the -gpus mode: an N-device NVLink mesh where the activated SMs
// of device 0 stream into a window owned by device 1, so every memory op
// crosses the fabric, followed by a per-link statistics report.
func runMesh(cfg config.Config, gpus int, targets map[int]bool, warps, ops int, read bool, smsFlag string) {
	m, err := mesh.New(cfg, gpus)
	if err != nil {
		fail(err)
	}
	defer m.Close()

	const span = 8192
	remoteBase := mesh.DevBase(1)
	m.Preload(1, remoteBase, uint64(cfg.NumSMs()*warps)*span)

	type result struct {
		sm    int
		start uint64
		end   uint64
	}
	var results []*result
	spec := device.KernelSpec{
		Name:          "gpusim-mesh",
		Blocks:        cfg.NumSMs(),
		WarpsPerBlock: warps,
		New: func(b, w int) device.Program {
			r := &result{sm: -1}
			results = append(results, r)
			var inner device.Streamer
			started := false
			return device.StepFunc(func(ctx *device.Ctx) device.Op {
				if !started {
					started = true
					if !targets[ctx.SMID] {
						return device.Done()
					}
					r.sm = ctx.SMID
					r.start = ctx.Clock64
					inner = device.Streamer{
						Base:        remoteBase + uint64(ctx.SMID*warps+w)*span,
						LineBytes:   cfg.L2LineBytes,
						Write:       !read,
						Count:       ops,
						Uncoalesced: true,
						WrapBytes:   span / 2,
					}
				}
				if r.sm < 0 {
					return device.Done()
				}
				op := inner.Step(ctx)
				if op.Kind == device.OpDone && r.end == 0 {
					r.end = ctx.Clock64
				}
				return op
			})
		},
	}
	if _, err := m.Launch(0, spec); err != nil {
		fail(err)
	}
	if err := m.RunKernels(100_000_000); err != nil {
		fail(err)
	}

	kind := "write"
	if read {
		kind = "read"
	}
	topo := cfg.NVLink.WithDefaults().Topology
	fmt.Printf("gpusim: %s mesh of %d GPUs (%s), %d remote %s ops x %d warps on device-0 SMs %v\n",
		cfg.Name, gpus, topo, ops, kind, warps, smsFlag)
	perSM := map[int]uint64{}
	for _, r := range results {
		if r.sm >= 0 && r.end > r.start {
			if d := r.end - r.start; d > perSM[r.sm] {
				perSM[r.sm] = d
			}
		}
	}
	for sm := 0; sm < cfg.NumSMs(); sm++ {
		if d, ok := perSM[sm]; ok {
			fmt.Printf("  SM%-3d TPC%-2d GPC%d: %8d cycles (%.2f us at %dMHz)\n",
				sm, cfg.TPCOfSM(sm), cfg.GPCOfSM(sm), d,
				cfg.CyclesToSeconds(d)*1e6, cfg.CoreClockMHz)
		}
	}
	st := m.GPU(1).Partition().Stats()
	fmt.Printf("  remote L2 (device 1): %d served, %d hits, %d misses\n", st.Served, st.Hits, st.Misses)
	for _, l := range m.Links() {
		s := l.Stats()
		fmt.Printf("  %-24s %8d packets %10d flits  queue-wait %10d  max-queue %4d\n",
			l.Name(), s.Packets, s.Flits, s.QueueWait, s.MaxQueueLen)
	}
}
