package core

import (
	"fmt"
	"math/rand"

	"gpunoc/internal/config"
	"gpunoc/internal/device"
	"gpunoc/internal/engine"
)

// PairResult is the outcome of one parallel sub-channel (one TPC pair or one
// GPC group).
type PairResult struct {
	// Unit is the TPC id (TPC channels) or GPC id (GPC channels).
	Unit int
	// Sent is the unit's data chunk; Received is the raw wire stream the
	// receiver decoded slot by slot; Decoded is the data recovered after
	// preamble alignment and code correction (equal to Received under
	// CodingNone with no preamble). Errors compares Sent against Decoded.
	Sent     []Symbol
	Received []Symbol
	Decoded  []Symbol
	Errors   int
	Trace    []SlotTrace
}

// Result aggregates a covert transmission.
type Result struct {
	Kind          Kind
	Pairs         []PairResult
	SymbolsSent   int
	SymbolErrors  int
	ErrorRate     float64
	BitsSent      int
	Cycles        uint64  // wall-clock cycles of the transmission
	BitsPerSecond float64 // at the configured core clock
}

// Transmission is a prepared covert-channel run: kernels to launch plus the
// bookkeeping needed to decode afterwards.
type Transmission struct {
	cfg    *config.Config
	params Params

	senderSpec   device.KernelSpec
	receiverSpec device.KernelSpec

	receivers []*receiverProgram // one per active unit, same order as chunks
	units     []int              // unit id per receiver
	data      [][]Symbol         // payload symbols per unit (pre-coding)
	chunks    [][]Symbol         // wire symbols per unit (preamble + coded data)

	preloadBase uint64
	preloadSize uint64
}

// windowSpan separates per-SM probe windows; each window holds two warp
// footprints (64 lines) and stays L2-resident after preloading.
const windowSpan = 4096

func smWindow(smid int) uint64 { return uint64(smid) * windowSpan }

func splitPayload(payload []Symbol, n int) [][]Symbol {
	chunks := make([][]Symbol, n)
	base := len(payload) / n
	rem := len(payload) % n
	idx := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		chunks[i] = payload[idx : idx+size]
		idx += size
	}
	return chunks
}

// NewTPCTransmission prepares a TPC-channel transmission over the given TPCs
// (nil means all TPCs — the multi-TPC channel). The payload is split across
// the active TPCs; each TPC carries its chunk independently, sender on one
// SM and receiver on the other, co-located by the §4.3 thread-block
// scheduling trick (a full-width sender launch followed by a full-width
// receiver launch).
func NewTPCTransmission(cfg *config.Config, payload []Symbol, tpcs []int, p Params) (*Transmission, error) {
	p.Kind = TPCChannel
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("core: empty payload")
	}
	if tpcs == nil {
		for t := 0; t < cfg.NumTPCs(); t++ {
			tpcs = append(tpcs, t)
		}
	}
	active := map[int]int{} // tpc -> chunk index
	for i, t := range tpcs {
		if t < 0 || t >= cfg.NumTPCs() {
			return nil, fmt.Errorf("core: TPC %d out of range", t)
		}
		if _, dup := active[t]; dup {
			return nil, fmt.Errorf("core: TPC %d listed twice", t)
		}
		active[t] = i
	}
	tr := &Transmission{cfg: cfg, params: p, units: tpcs}
	tr.data = splitPayload(payload, len(tpcs))
	tr.chunks = tr.wireChunks()

	// Sender: one block per TPC (fills SM slot 0 of every TPC); active
	// only on the chosen TPCs. The symbol chunk is selected at runtime
	// from the observed %smid, exactly like the real attack.
	pp := tr.params
	senderChunk := func(smid int) []Symbol {
		if smid%cfg.SMsPerTPC != 0 {
			return nil
		}
		ci, ok := active[cfg.TPCOfSM(smid)]
		if !ok {
			return nil
		}
		return tr.chunks[ci]
	}
	tr.senderSpec = device.KernelSpec{
		Name:          "cc-sender-tpc",
		Blocks:        cfg.NumTPCs(),
		WarpsPerBlock: pp.SenderWarps,
		New: func(b, w int) device.Program {
			return &senderProgram{
				p:      &tr.params,
				chunk:  senderChunk,
				window: smWindow,
				write:  true, // TPC channel signals with writes (§3.4)
				lineB:  cfg.L2LineBytes,
				simt:   cfg.SIMTWidth,
				rng:    rand.New(rand.NewSource(pp.Seed ^ int64(b*64+w+1)*2654435761)),
			}
		},
	}

	// Receiver: one block per TPC (fills SM slot 1); active on the chosen
	// TPCs, one probing warp each.
	tr.receivers = make([]*receiverProgram, len(tpcs))
	tr.receiverSpec = device.KernelSpec{
		Name:          "cc-receiver-tpc",
		Blocks:        cfg.NumTPCs(),
		WarpsPerBlock: 1,
		New: func(b, w int) device.Program {
			r := &receiverProgram{
				p: &tr.params,
				active: func(smid int) bool {
					if smid%cfg.SMsPerTPC == 0 {
						return false
					}
					_, ok := active[cfg.TPCOfSM(smid)]
					return ok
				},
				window: func(smid int) uint64 { return smWindow(smid) },
				lineB:  cfg.L2LineBytes,
				simt:   cfg.SIMTWidth,
				rng:    rand.New(rand.NewSource(pp.Seed ^ int64(b+7)*40503)),
			}
			return r
		},
	}
	// The receiver count per unit is bound after placement, in Run: the
	// program discovers its TPC at runtime, so here we wrap New to patch
	// count/registration lazily via the active() callback instead.
	tr.bindReceivers(func(smid int) (int, bool) {
		ci, ok := active[cfg.TPCOfSM(smid)]
		return ci, ok && smid%cfg.SMsPerTPC != 0
	})

	tr.preloadBase = 0
	tr.preloadSize = uint64(cfg.NumSMs()) * windowSpan
	return tr, nil
}

// NewGPCTransmission prepares a GPC-channel transmission over the given GPCs
// (nil = all). Within each GPC, the lowest TPC is the receiver and every
// other TPC sends (both of its SMs, using reads, §4.5). The sender kernel is
// launched across both SM slots of the whole GPU; the receiver kernel rides
// the next launch wave.
func NewGPCTransmission(cfg *config.Config, payload []Symbol, gpcs []int, p Params) (*Transmission, error) {
	p.Kind = GPCChannel
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("core: empty payload")
	}
	if gpcs == nil {
		for g := 0; g < cfg.NumGPCs; g++ {
			gpcs = append(gpcs, g)
		}
	}
	active := map[int]int{} // gpc -> chunk index
	recvTPC := map[int]int{}
	for i, g := range gpcs {
		if g < 0 || g >= cfg.NumGPCs {
			return nil, fmt.Errorf("core: GPC %d out of range", g)
		}
		if _, dup := active[g]; dup {
			return nil, fmt.Errorf("core: GPC %d listed twice", g)
		}
		active[g] = i
		recvTPC[g] = cfg.TPCsOfGPC(g)[0]
	}
	tr := &Transmission{cfg: cfg, params: p, units: gpcs}
	tr.data = splitPayload(payload, len(gpcs))
	tr.chunks = tr.wireChunks()

	pp := tr.params
	senderChunk := func(smid int) []Symbol {
		g := cfg.GPCOfSM(smid)
		ci, ok := active[g]
		if !ok || cfg.TPCOfSM(smid) == recvTPC[g] {
			return nil
		}
		return tr.chunks[ci]
	}
	tr.senderSpec = device.KernelSpec{
		Name:          "cc-sender-gpc",
		Blocks:        cfg.NumSMs(), // both SM slots of every TPC
		WarpsPerBlock: pp.SenderWarps,
		New: func(b, w int) device.Program {
			return &senderProgram{
				p:      &tr.params,
				chunk:  senderChunk,
				window: smWindow,
				write:  false, // GPC channel signals with reads (§3.4)
				lineB:  cfg.L2LineBytes,
				simt:   cfg.SIMTWidth,
				rng:    rand.New(rand.NewSource(pp.Seed ^ int64(b*64+w+1)*2654435761)),
			}
		},
	}

	tr.receivers = make([]*receiverProgram, len(gpcs))
	tr.receiverSpec = device.KernelSpec{
		Name:          "cc-receiver-gpc",
		Blocks:        cfg.NumTPCs(),
		WarpsPerBlock: 1,
		New: func(b, w int) device.Program {
			return &receiverProgram{
				p: &tr.params,
				active: func(smid int) bool {
					g := cfg.GPCOfSM(smid)
					_, ok := active[g]
					return ok && cfg.TPCOfSM(smid) == recvTPC[g] && smid%cfg.SMsPerTPC == 0
				},
				window: func(smid int) uint64 { return smWindow(smid) },
				lineB:  cfg.L2LineBytes,
				simt:   cfg.SIMTWidth,
				rng:    rand.New(rand.NewSource(pp.Seed ^ int64(b+7)*40503)),
			}
		},
	}
	tr.bindReceivers(func(smid int) (int, bool) {
		g := cfg.GPCOfSM(smid)
		ci, ok := active[g]
		return ci, ok && cfg.TPCOfSM(smid) == recvTPC[g] && smid%cfg.SMsPerTPC == 0
	})

	tr.preloadBase = 0
	tr.preloadSize = uint64(cfg.NumSMs()) * windowSpan
	return tr, nil
}

// wireChunks encodes every data chunk into its wire stream (preamble plus
// coded payload; the identity under CodingNone with no preamble).
func (tr *Transmission) wireChunks() [][]Symbol {
	out := make([][]Symbol, len(tr.data))
	for i, d := range tr.data {
		out[i] = tr.params.wireSymbols(d)
	}
	return out
}

// bindReceivers wraps the receiver factory so each constructed program
// registers itself under its unit's slot (discovered from its SM at runtime)
// and learns its chunk length.
func (tr *Transmission) bindReceivers(classify func(smid int) (chunkIdx int, active bool)) {
	inner := tr.receiverSpec.New
	tr.receiverSpec.New = func(b, w int) device.Program {
		prog := inner(b, w).(*receiverProgram)
		innerActive := prog.active
		prog.active = func(smid int) bool {
			if !innerActive(smid) {
				return false
			}
			ci, ok := classify(smid)
			if !ok {
				return false
			}
			// Listen for the whole wire stream plus the alignment guard.
			prog.count = len(tr.chunks[ci]) + tr.params.ResyncGuardSlots
			tr.receivers[ci] = prog
			return true
		}
		return prog
	}
}

// Params returns the fully-defaulted parameters in effect.
func (tr *Transmission) Params() Params { return tr.params }

// Run executes the transmission on a fresh GPU built from the
// transmission's config and returns the decoded result.
func (tr *Transmission) Run() (Result, error) {
	g, err := engine.New(*tr.cfg)
	if err != nil {
		return Result{}, err
	}
	return tr.RunOn(g, 0)
}

// RunOn executes the transmission on an existing GPU, launching the receiver
// launchSkew cycles after the sender (0 = back-to-back, the cudaStream case;
// large skews model the MPS cross-process launch of §2.2).
func (tr *Transmission) RunOn(g *engine.GPU, launchSkew uint64) (Result, error) {
	if err := tr.Launch(g, launchSkew); err != nil {
		return Result{}, err
	}
	return tr.Finish(g)
}

// Launch places the sender and receiver kernels on g without running the
// simulation, so callers can co-schedule additional kernels (for example
// the §5 third-kernel noise study) before Finish.
func (tr *Transmission) Launch(g *engine.GPU, launchSkew uint64) error {
	g.Preload(tr.preloadBase, tr.preloadSize)
	if _, err := g.Launch(tr.senderSpec); err != nil {
		return err
	}
	if _, err := g.LaunchAt(g.Now()+launchSkew, tr.receiverSpec); err != nil {
		return err
	}
	return nil
}

// Finish runs every launched kernel to completion and decodes the
// transmission.
func (tr *Transmission) Finish(g *engine.GPU) (Result, error) {
	symbols := 0
	for _, c := range tr.chunks {
		symbols += len(c) + tr.params.ResyncGuardSlots
	}
	// Budget: generous multiple of the ideal transmission time.
	budget := uint64(symbols+64) * tr.params.SlotCycles * 8
	if budget < 4_000_000 {
		budget = 4_000_000
	}
	if err := g.RunKernels(budget); err != nil {
		return Result{}, err
	}
	return tr.decode()
}

func (tr *Transmission) decode() (Result, error) {
	res := Result{Kind: tr.params.Kind}
	var span uint64
	for i, chunk := range tr.data {
		r := tr.receivers[i]
		if r == nil {
			return res, fmt.Errorf("core: no receiver activated for unit %d (placement failed)", tr.units[i])
		}
		decoded := tr.params.recoverData(r.Received, len(chunk))
		pr := PairResult{Unit: tr.units[i], Sent: chunk, Received: r.Received, Decoded: decoded, Trace: r.Trace}
		for j := range chunk {
			if j >= len(decoded) || decoded[j] != chunk[j] {
				pr.Errors++
			}
		}
		res.Pairs = append(res.Pairs, pr)
		res.SymbolsSent += len(chunk)
		res.SymbolErrors += pr.Errors
		if d := r.LastOp - r.FirstOp; d > span {
			span = d
		}
	}
	if res.SymbolsSent > 0 {
		res.ErrorRate = float64(res.SymbolErrors) / float64(res.SymbolsSent)
	}
	res.BitsSent = res.SymbolsSent * tr.params.BitsPerSymbol
	res.Cycles = span
	res.BitsPerSecond = tr.cfg.BitsPerSecond(res.BitsSent, span)
	return res, nil
}

// Calibrate measures the contended and free mean slot latencies by
// transmitting a known alternating preamble over the channel, and returns
// params with thresholds set to the midpoints between adjacent level means.
// This is the empirical threshold determination of §4.4.
//
// Any co kernels are launched alongside the calibration transmission, so a
// channel that will operate under background traffic can measure its level
// means — and place its thresholds — under that same traffic (noise-aware
// recalibration; pass the generator kernels from internal/noise). The
// calibration transmission itself always runs uncoded: coding and preamble
// only shape the wire stream, and calibration reads raw per-slot latencies
// from the trace, not decoded symbols.
func Calibrate(cfg *config.Config, p Params, preambleSlots int, co ...device.KernelSpec) (Params, error) {
	p2, err := p.withDefaults()
	if err != nil {
		return p, err
	}
	levels := p2.Levels()
	payload := calibrationPayload(preambleSlots, levels)
	cal := p2
	cal.Coding, cal.Repeat, cal.PreambleSymbols, cal.ResyncGuardSlots = CodingNone, 0, 0, 0
	var tr *Transmission
	switch cal.Kind {
	case GPCChannel:
		tr, err = NewGPCTransmission(cfg, payload, []int{0}, cal)
	default:
		tr, err = NewTPCTransmission(cfg, payload, []int{0}, cal)
	}
	if err != nil {
		return p, err
	}
	g, err := engine.New(*cfg)
	if err != nil {
		return p, err
	}
	if err := tr.Launch(g, 0); err != nil {
		return p, err
	}
	for _, k := range co {
		if _, err := g.Launch(k); err != nil {
			return p, err
		}
	}
	res, err := tr.Finish(g)
	if err != nil {
		return p, err
	}
	ths, err := thresholdsFromTrace(res.Pairs[0].Trace, payload, levels)
	if err != nil {
		return p, err
	}
	// Return the fully-defaulted parameters (slot, moduli, warps) with the
	// measured thresholds, so callers can rely on every derived field.
	p2.Thresholds = ths
	p2.Threshold = ths[0]
	return p2, nil
}

// calibrationPayload is the known alternating symbol pattern a calibration
// transmission sends so every contention level is sampled.
func calibrationPayload(preambleSlots, levels int) []Symbol {
	if preambleSlots <= 0 {
		preambleSlots = 32
	}
	payload := make([]Symbol, preambleSlots)
	for i := range payload {
		payload[i] = Symbol(i % levels)
	}
	return payload
}

// thresholdsFromTrace places a threshold at the midpoint between the mean
// observed slot latencies of each adjacent pair of levels in a calibration
// trace (the empirical threshold determination of §4.4). Shared by Calibrate
// and CalibrateRemote.
func thresholdsFromTrace(trace []SlotTrace, payload []Symbol, levels int) ([]float64, error) {
	sums := make([]float64, levels)
	counts := make([]int, levels)
	for i, st := range trace {
		if i >= len(payload) {
			break
		}
		lvl := int(payload[i])
		sums[lvl] += st.MeanLatency
		counts[lvl]++
	}
	ths := make([]float64, 0, levels-1)
	for l := 0; l+1 < levels; l++ {
		if counts[l] == 0 || counts[l+1] == 0 {
			return nil, fmt.Errorf("core: calibration level %d unsampled", l)
		}
		lo := sums[l] / float64(counts[l])
		hi := sums[l+1] / float64(counts[l+1])
		// Require a real margin: separations inside the noise floor mean
		// the channel does not exist (e.g. the coalesced sender of
		// Fig 13), not that a threshold between two near-equal means
		// would decode anything.
		const minSeparation = 5.0
		if hi-lo < minSeparation {
			return nil, fmt.Errorf("core: calibration found no usable separation between levels %d and %d (%.1f vs %.1f)",
				l, l+1, lo, hi)
		}
		ths = append(ths, (lo+hi)/2)
	}
	return ths, nil
}
