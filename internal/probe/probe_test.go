package probe

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestNilReceiversAreSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(3)
	c.Inc()
	if c.Load() != 0 {
		t.Fatalf("nil counter loaded %d", c.Load())
	}
	g := r.Gauge("x")
	g.Set(5)
	g.Add(-2)
	if g.Load() != 0 || g.Max() != 0 {
		t.Fatalf("nil gauge %d/%d", g.Load(), g.Max())
	}
	h := r.Hist("x")
	h.Observe(9)
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("nil hist not inert")
	}
	o := r.Occupancy("x", 4)
	o.AddBusy(10)
	if o.Value(100) != 0 {
		t.Fatalf("nil occupancy not inert")
	}
	tr := r.Tracer()
	tr.Span(tr.Track("t"), "e", 1, 2)
	tr.Instant(0, "e", 3)
	if len(tr.Events()) != 0 || tr.Dropped() != 0 {
		t.Fatalf("nil trace not inert")
	}
	snap := r.Snapshot(10)
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Hists)+len(snap.Occupancy) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestRegistryIdempotentLookup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same")
	a.Add(2)
	b := r.Counter("same")
	b.Add(3)
	if a != b {
		t.Fatalf("second lookup returned a different counter")
	}
	if a.Load() != 5 {
		t.Fatalf("counter = %d, want 5 (accumulated across lookups)", a.Load())
	}
	if r.Hist("h") != r.Hist("h") || r.Gauge("g") != r.Gauge("g") {
		t.Fatalf("hist/gauge lookups not idempotent")
	}
	if r.Occupancy("o", 4) != r.Occupancy("o", 9) {
		t.Fatalf("occupancy lookup not idempotent")
	}
}

func TestGaugeTracksHighWater(t *testing.T) {
	g := NewRegistry().Gauge("depth")
	g.Add(3)
	g.Add(4)
	g.Add(-5)
	if g.Load() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Load())
	}
	if g.Max() != 7 {
		t.Fatalf("gauge max = %d, want 7", g.Max())
	}
}

func TestHistQuantiles(t *testing.T) {
	h := NewRegistry().Hist("lat")
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 || h.Max() != 1000 {
		t.Fatalf("count/max = %d/%d", h.Count(), h.Max())
	}
	if got, want := h.Mean(), 500.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean = %g, want %g", got, want)
	}
	// Log2 buckets bound any quantile estimate by a factor of two.
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 500}, {0.95, 950}, {0.99, 990}, {1, 1000}, {0, 1},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want/2 || got > tc.want*2 {
			t.Errorf("q%.2f = %g, want within 2x of %g", tc.q, got, tc.want)
		}
	}
	if h.Quantile(1) > float64(h.Max()) {
		t.Fatalf("q1.0 %g exceeds max %d", h.Quantile(1), h.Max())
	}
	d := h.Dist()
	if d.Count != 1000 || d.Max != 1000 || d.Mean != h.Mean() {
		t.Fatalf("dist = %+v", d)
	}
}

func TestHistZeroAndSingleValues(t *testing.T) {
	h := NewRegistry().Hist("z")
	h.Observe(0)
	h.Observe(0)
	if h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatalf("all-zero hist: q50 %g max %d", h.Quantile(0.5), h.Max())
	}
	h2 := NewRegistry().Hist("s")
	h2.Observe(42)
	if got := h2.Quantile(0.5); got < 32 || got > 42 {
		t.Fatalf("single-sample q50 = %g, want in [32,42]", got)
	}
}

func TestOccupancySaturation(t *testing.T) {
	o := NewRegistry().Occupancy("link", 4)
	// 100 cycles at full rate: 4 units per cycle.
	o.AddBusy(400)
	if got := o.Value(100); got != 1 {
		t.Fatalf("saturated occupancy = %g, want 1", got)
	}
	if got := o.Value(200); got != 0.5 {
		t.Fatalf("half occupancy = %g, want 0.5", got)
	}
	// Clamped even if busy accounting overshoots the horizon.
	if got := o.Value(50); got != 1 {
		t.Fatalf("overshoot occupancy = %g, want clamp to 1", got)
	}
}

func TestSnapshotSortedAndDeterministic(t *testing.T) {
	build := func(order []string) Snapshot {
		r := NewRegistry()
		for _, n := range order {
			r.Counter(n).Add(7)
		}
		r.Gauge("g/b").Set(1)
		r.Gauge("g/a").Set(2)
		r.Hist("h").Observe(3)
		r.Occupancy("o", 2).AddBusy(10)
		return r.Snapshot(100)
	}
	a := build([]string{"z", "m", "a"})
	b := build([]string{"a", "z", "m"})
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("snapshot depends on registration order:\n%s\n%s", aj, bj)
	}
	for i := 1; i < len(a.Counters); i++ {
		if a.Counters[i-1].Name > a.Counters[i].Name {
			t.Fatalf("counters not sorted: %q > %q", a.Counters[i-1].Name, a.Counters[i].Name)
		}
	}
	if _, ok := a.FindCounter("m"); !ok {
		t.Fatalf("FindCounter missed %q", "m")
	}
	if _, ok := a.FindGauge("g/a"); !ok {
		t.Fatalf("FindGauge missed g/a")
	}
	if _, ok := a.FindHist("h"); !ok {
		t.Fatalf("FindHist missed h")
	}
	if o, ok := a.FindOccupancy("o"); !ok || o.Value != 0.05 {
		t.Fatalf("FindOccupancy = %+v/%v, want value 0.05", o, ok)
	}
}

func TestSnapshotCSVShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	r.Gauge("g").Set(2)
	r.Hist("h").Observe(3)
	r.Occupancy("o", 1).AddBusy(4)
	csv := r.Snapshot(8).CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 5 {
		t.Fatalf("csv has %d lines, want header + 4 rows:\n%s", len(lines), csv)
	}
	cols := len(strings.Split(lines[0], ","))
	for i, l := range lines {
		if got := len(strings.Split(l, ",")); got != cols {
			t.Fatalf("row %d has %d cols, header has %d:\n%s", i, got, cols, csv)
		}
	}
}

func TestTraceRingDropsOldest(t *testing.T) {
	tr := newTrace(4)
	id := tr.Track("t")
	for i := uint64(0); i < 10; i++ {
		tr.Span(id, "e", i, i+1)
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(ev))
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	for i, e := range ev {
		if want := uint64(6 + i); e.TS != want {
			t.Fatalf("event %d has ts %d, want %d (oldest dropped, order kept)", i, e.TS, want)
		}
	}
}

func TestTraceTrackReuse(t *testing.T) {
	tr := newTrace(8)
	a := tr.Track("noc/tpc0-req")
	b := tr.Track("noc/tpc0-req")
	c := tr.Track("noc/tpc1-req")
	if a != b {
		t.Fatalf("same name gave different tracks %d/%d", a, b)
	}
	if a == c {
		t.Fatalf("different names share track %d", a)
	}
	if got := tr.Tracks(); len(got) != 2 || got[0] != "noc/tpc0-req" || got[1] != "noc/tpc1-req" {
		t.Fatalf("tracks = %v", got)
	}
}

func TestWriteChromeParsesAsJSON(t *testing.T) {
	r := NewRegistry()
	tr := r.EnableTrace(16)
	id := tr.Track("link")
	tr.Span(id, "WriteReq", 10, 25)
	tr.Instant(id, "stall", 12)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// metadata + span + instant
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("trace has %d events, want 3:\n%s", len(doc.TraceEvents), buf.String())
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e["ph"].(string)]++
	}
	if phases["M"] != 1 || phases["X"] != 1 || phases["i"] != 1 {
		t.Fatalf("phases = %v, want one each of M/X/i", phases)
	}

	// Deterministic output for identical traces.
	var buf2 bytes.Buffer
	if err := WriteChrome(&buf2, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("chrome trace output is not deterministic")
	}
}

func TestWriteChromeNilTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil trace export is not valid JSON: %s", buf.String())
	}
}

func TestEnableTraceIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.EnableTrace(0)
	b := r.EnableTrace(32)
	if a == nil || a != b {
		t.Fatalf("EnableTrace not idempotent")
	}
	if r.Tracer() != a {
		t.Fatalf("Tracer did not return the enabled ring")
	}
}
