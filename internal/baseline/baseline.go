// Package baseline re-implements, on the same simulated GPU, the two prior
// GPU covert channels the paper compares against in Table 2 (both from
// Naghibijouybari et al., MICRO'17): the serial L1 prime+probe channel and
// the global-memory channel built on L2-level atomic contention. They exist
// to reproduce the qualitative ordering of Table 2 — the interconnect
// channel is parallel, local, and direct, and achieves orders of magnitude
// more bandwidth than these indirect channels.
package baseline

import (
	"fmt"
	"math/rand"

	"gpunoc/internal/config"
	"gpunoc/internal/core"
	"gpunoc/internal/device"
	"gpunoc/internal/engine"
	"gpunoc/internal/warp"
)

// Result mirrors core.Result for the baseline channels.
type Result struct {
	Name          string
	BitsSent      int
	BitErrors     int
	ErrorRate     float64
	Cycles        uint64
	BitsPerSecond float64
}

// commonState carries the timing parameters shared by a baseline
// sender/receiver pair.
type commonState struct {
	slot   uint64
	sync   uint64
	bits   []core.Symbol
	jitter int
	rng    *rand.Rand
}

// baseProg is the shared slot/sync scaffolding of the baseline programs.
type baseProg struct {
	cs        commonState
	state     int
	bitIdx    int
	slotStart uint64
}

const (
	bstRole = iota
	bstSync
	bstBody
	bstEnd
)

func (b *baseProg) slotWait(clock uint64) device.Op {
	target := b.slotStart + b.cs.slot
	if clock < target {
		return device.Wait(target - clock)
	}
	b.slotStart = clock
	b.bitIdx++
	return device.Op{}
}

// PrimeProbeParams configures the L1 prime+probe channel.
type PrimeProbeParams struct {
	Bits       []core.Symbol
	SlotCycles uint64
	Seed       int64
}

// l1Sender evicts the receiver's primed L1 set to transmit '1'. Sender and
// receiver are co-resident on the same SM (intra-SM channel), which the
// thread-block scheduler grants to the second kernel wave once every SM
// holds one block.
type l1Sender struct {
	baseProg
	targetSM  int
	ways      int
	setStride uint64
	evictBase uint64
	opIdx     int
	delayed   bool
}

func (s *l1Sender) Step(ctx *device.Ctx) device.Op {
	switch s.state {
	case bstRole:
		if ctx.SMID != s.targetSM {
			return device.Done()
		}
		s.state = bstSync
		return device.SyncClock(s.cs.sync, 0)
	case bstSync:
		s.slotStart = ctx.Clock64
		s.state = bstBody
		fallthrough
	case bstBody:
		if s.bitIdx >= len(s.cs.bits) {
			return device.Done()
		}
		if !s.delayed {
			// Let the receiver finish its probe/prime pass at the slot
			// start before evicting (classic prime+probe phase order).
			s.delayed = true
			return device.Wait(s.cs.slot / 3)
		}
		if s.cs.bits[s.bitIdx] != 0 && s.opIdx < s.ways {
			// Touch a conflicting line per way to evict the primed set.
			m := warp.CoalescedOp(s.evictBase+uint64(s.opIdx)*s.setStride, false)
			m.BypassL1 = false
			s.opIdx++
			return device.Mem(m)
		}
		s.state = bstEnd
		fallthrough
	default: // bstEnd
		if op := s.slotWait(ctx.Clock64); op.Kind == device.OpWait {
			return op
		}
		s.opIdx = 0
		s.delayed = false
		if s.bitIdx >= len(s.cs.bits) {
			return device.Done()
		}
		s.state = bstBody
		return s.Step(ctx)
	}
}

// l1Receiver primes one L1 set, then probes it each slot: a slow probe
// (misses) decodes '1'.
type l1Receiver struct {
	baseProg
	targetSM  int
	ways      int
	setStride uint64
	primeBase uint64
	threshold float64

	opIdx   int
	probing bool
	latSum  float64

	Received []core.Symbol
	First    uint64
	Last     uint64
}

func (r *l1Receiver) Step(ctx *device.Ctx) device.Op {
	switch r.state {
	case bstRole:
		if ctx.SMID != r.targetSM {
			return device.Done()
		}
		r.state = bstSync
		return device.SyncClock(r.cs.sync, 0)
	case bstSync:
		r.slotStart = ctx.Clock64
		r.First = ctx.Clock64
		r.state = bstBody
		fallthrough
	case bstBody:
		// One pass beyond the payload: the probe at slot k's start
		// observes the sender's activity during slot k-1, so the first
		// pass only primes and the final bit needs a trailing pass.
		if r.bitIdx > len(r.cs.bits) {
			return device.Done()
		}
		if r.opIdx > 0 && r.probing {
			r.latSum += float64(ctx.LastLatency)
		}
		if r.opIdx < r.ways {
			// The probe pass doubles as the next slot's prime.
			m := warp.CoalescedOp(r.primeBase+uint64(r.opIdx)*r.setStride, false)
			m.BypassL1 = false
			r.opIdx++
			r.probing = true
			return device.Mem(m)
		}
		if r.bitIdx > 0 {
			mean := r.latSum / float64(r.ways)
			if mean > r.threshold {
				r.Received = append(r.Received, 1)
			} else {
				r.Received = append(r.Received, 0)
			}
		}
		r.state = bstEnd
		fallthrough
	default: // bstEnd
		if op := r.slotWait(ctx.Clock64); op.Kind == device.OpWait {
			return op
		}
		r.Last = ctx.Clock64
		r.opIdx = 0
		r.latSum = 0
		r.probing = false
		if r.bitIdx > len(r.cs.bits) {
			return device.Done()
		}
		r.state = bstBody
		return r.Step(ctx)
	}
}

// RunPrimeProbe executes the L1 prime+probe baseline on a fresh GPU and
// returns its quality metrics. The channel is serial (one probe pass per
// bit) and indirect, hence far slower than the interconnect channel.
func RunPrimeProbe(cfg *config.Config, p PrimeProbeParams) (Result, error) {
	if len(p.Bits) == 0 {
		return Result{}, fmt.Errorf("baseline: empty payload")
	}
	if p.SlotCycles == 0 {
		p.SlotCycles = 3000
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	g, err := engine.New(*cfg)
	if err != nil {
		return Result{}, err
	}
	l1 := g.SM(0).L1()
	setStride := uint64(l1.Sets() * l1.LineBytes())
	ways := l1.Ways()
	// Victim set lines must hit in L2 so probe timing is L1-dominated.
	g.Preload(0, setStride*uint64(ways)*4)

	cs := commonState{slot: p.SlotCycles, sync: 1 << 15, bits: p.Bits}
	recv := &l1Receiver{
		baseProg:  baseProg{cs: cs},
		targetSM:  0,
		ways:      ways,
		setStride: setStride,
		primeBase: 0,
		threshold: 65, // between an L1 hit (~29) and the L2 round trip (~100+)
	}
	// Sender occupies every SM (first wave); only SM0's block transmits.
	send := device.KernelSpec{
		Name:          "pp-sender",
		Blocks:        cfg.NumSMs(),
		WarpsPerBlock: 1,
		New: func(b, w int) device.Program {
			return &l1Sender{
				baseProg:  baseProg{cs: cs},
				targetSM:  0,
				ways:      ways,
				setStride: setStride,
				// Conflicting lines: same set index, different tags.
				evictBase: setStride * uint64(ways),
			}
		},
	}
	recvSpec := device.KernelSpec{
		Name:          "pp-receiver",
		Blocks:        1,
		WarpsPerBlock: 1,
		New:           func(b, w int) device.Program { return recv },
	}
	if _, err := g.Launch(send); err != nil {
		return Result{}, err
	}
	if _, err := g.Launch(recvSpec); err != nil {
		return Result{}, err
	}
	if err := g.RunKernels(uint64(len(p.Bits)+64) * p.SlotCycles * 8); err != nil {
		return Result{}, err
	}
	return score("l1-prime-probe", cfg, p.Bits, recv.Received, recv.Last-recv.First), nil
}

// AtomicParams configures the global-memory atomic channel.
type AtomicParams struct {
	Bits          []core.Symbol
	SlotCycles    uint64
	AtomicsPerBit int
	Seed          int64
}

// atomicSender hammers a shared line with atomics to transmit '1'. Several
// warps hammer concurrently so the line's read-modify-write unit stays
// backlogged for the whole slot.
type atomicSender struct {
	baseProg
	targetSM int
	addr     uint64
}

func (s *atomicSender) Step(ctx *device.Ctx) device.Op {
	switch s.state {
	case bstRole:
		if ctx.SMID != s.targetSM {
			return device.Done()
		}
		s.state = bstSync
		return device.SyncClock(s.cs.sync, 0)
	case bstSync:
		s.slotStart = ctx.Clock64
		s.state = bstBody
		fallthrough
	case bstBody:
		if s.bitIdx >= len(s.cs.bits) {
			return device.Done()
		}
		deadline := s.slotStart + s.cs.slot - s.cs.slot/5
		if s.cs.bits[s.bitIdx] != 0 && ctx.Clock64 < deadline {
			m := warp.CoalescedOp(s.addr, false)
			m.Atomic = true
			return device.Mem(m)
		}
		s.state = bstEnd
		fallthrough
	default:
		if op := s.slotWait(ctx.Clock64); op.Kind == device.OpWait {
			return op
		}
		if s.bitIdx >= len(s.cs.bits) {
			return device.Done()
		}
		s.state = bstBody
		return s.Step(ctx)
	}
}

// atomicReceiver measures the latency of its own atomics to the shared
// line. The first calibSlots slots are a quiet preamble (the sender idles)
// from which the receiver learns the unloaded atomic round trip and sets its
// detection threshold.
type atomicReceiver struct {
	baseProg
	targetSM  int
	addr      uint64
	perBit    int
	calib     int
	threshold float64
	calSum    float64

	opIdx  int
	latSum float64

	Received []core.Symbol
	First    uint64
	Last     uint64
}

func (r *atomicReceiver) Step(ctx *device.Ctx) device.Op {
	switch r.state {
	case bstRole:
		if ctx.SMID != r.targetSM {
			return device.Done()
		}
		r.state = bstSync
		return device.SyncClock(r.cs.sync, 0)
	case bstSync:
		r.slotStart = ctx.Clock64
		r.First = ctx.Clock64
		r.state = bstBody
		fallthrough
	case bstBody:
		if r.bitIdx >= len(r.cs.bits)+r.calib {
			return device.Done()
		}
		if r.opIdx > 0 {
			r.latSum += float64(ctx.LastLatency)
		}
		if r.opIdx < r.perBit {
			m := warp.CoalescedOp(r.addr, false)
			m.Atomic = true
			r.opIdx++
			return device.Mem(m)
		}
		mean := r.latSum / float64(r.perBit)
		switch {
		case r.bitIdx < r.calib:
			r.calSum += mean
			if r.bitIdx == r.calib-1 {
				r.threshold = r.calSum/float64(r.calib) + 45
			}
		case mean > r.threshold:
			r.Received = append(r.Received, 1)
		default:
			r.Received = append(r.Received, 0)
		}
		r.state = bstEnd
		fallthrough
	default:
		if op := r.slotWait(ctx.Clock64); op.Kind == device.OpWait {
			return op
		}
		r.Last = ctx.Clock64
		r.opIdx = 0
		r.latSum = 0
		if r.bitIdx >= len(r.cs.bits)+r.calib {
			return device.Done()
		}
		r.state = bstBody
		return r.Step(ctx)
	}
}

// RunAtomic executes the global-memory atomic channel: sender and receiver
// sit on different TPCs (no interconnect sharing) and contend only on the L2
// read-modify-write unit of one line — a global, indirect resource.
func RunAtomic(cfg *config.Config, p AtomicParams) (Result, error) {
	if len(p.Bits) == 0 {
		return Result{}, fmt.Errorf("baseline: empty payload")
	}
	if p.SlotCycles == 0 {
		p.SlotCycles = 4000
	}
	if p.AtomicsPerBit == 0 {
		p.AtomicsPerBit = 6
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	g, err := engine.New(*cfg)
	if err != nil {
		return Result{}, err
	}
	const sharedAddr = 0x40
	g.Preload(0, 4096)

	const calibSlots = 4
	// The sender idles through the receiver's calibration preamble by
	// prepending quiet symbols to its own schedule.
	senderBits := append(make([]core.Symbol, calibSlots), p.Bits...)
	csRecv := commonState{slot: p.SlotCycles, sync: 1 << 15, bits: p.Bits}
	csSend := commonState{slot: p.SlotCycles, sync: 1 << 15, bits: senderBits}
	// Receiver on SM0 (first block of second wave); sender on a different
	// TPC of the same GPC: far enough that the only contended resource is
	// the L2 line, but close enough that the clock registers are aligned
	// (cross-GPC clocks differ wildly, §4.1, and cannot synchronize).
	senderTPC := cfg.TPCsOfGPC(cfg.GPCOfSM(0))[1]
	senderSM := cfg.SMsOfTPC(senderTPC)[0]
	recv := &atomicReceiver{
		baseProg: baseProg{cs: csRecv},
		targetSM: 0, addr: sharedAddr, perBit: p.AtomicsPerBit,
		calib: calibSlots,
	}
	send := device.KernelSpec{
		Name:          "atomic-sender",
		Blocks:        cfg.NumSMs(),
		WarpsPerBlock: 8, // concurrent hammering keeps the line backlogged
		New: func(b, w int) device.Program {
			return &atomicSender{
				baseProg: baseProg{cs: csSend},
				targetSM: senderSM, addr: sharedAddr,
			}
		},
	}
	recvSpec := device.KernelSpec{
		Name:          "atomic-receiver",
		Blocks:        1,
		WarpsPerBlock: 1,
		New:           func(b, w int) device.Program { return recv },
	}
	if _, err := g.Launch(send); err != nil {
		return Result{}, err
	}
	if _, err := g.Launch(recvSpec); err != nil {
		return Result{}, err
	}
	if err := g.RunKernels(uint64(len(p.Bits)+64) * p.SlotCycles * 8); err != nil {
		return Result{}, err
	}
	return score("global-atomic", cfg, p.Bits, recv.Received, recv.Last-recv.First), nil
}

func score(name string, cfg *config.Config, sent, received []core.Symbol, cycles uint64) Result {
	errs := core.CountSymbolErrors(sent, received)
	r := Result{
		Name:      name,
		BitsSent:  len(sent),
		BitErrors: errs,
		Cycles:    cycles,
	}
	if len(sent) > 0 {
		r.ErrorRate = float64(errs) / float64(len(sent))
	}
	r.BitsPerSecond = cfg.BitsPerSecond(len(sent), cycles)
	return r
}
