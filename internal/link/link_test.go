package link

import (
	"testing"
	"testing/quick"

	"gpunoc/internal/arb"
	"gpunoc/internal/config"
	"gpunoc/internal/packet"
)

type capture struct {
	pkts  []*packet.Packet
	times []uint64
}

func (c *capture) deliver(now uint64, p *packet.Packet) {
	c.pkts = append(c.pkts, p)
	c.times = append(c.times, now)
}

func newRR(t *testing.T, n int) arb.Arbiter {
	t.Helper()
	a, err := arb.New(config.ArbRR, n, 32, packet.DataFlits)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func mkPacket(id uint64, k packet.Kind) *packet.Packet {
	return &packet.Packet{ID: id, Kind: k, Tag: packet.WarpTag{SM: 0, Warp: 0, Op: id}}
}

func TestNewValidation(t *testing.T) {
	a := newRR(t, 2)
	sink := func(uint64, *packet.Packet) {}
	cases := []struct {
		name                  string
		inputs, num, den, lat int
		arbiter               arb.Arbiter
		out                   Deliver
	}{
		{"inputs", 0, 1, 1, 0, a, sink},
		{"ratenum", 2, 0, 1, 0, a, sink},
		{"rateden", 2, 1, 0, 0, a, sink},
		{"latency", 2, 1, 1, -1, a, sink},
		{"arbiter", 2, 1, 1, 0, nil, sink},
		{"sink", 2, 1, 1, 0, a, nil},
	}
	for _, c := range cases {
		if _, err := New("bad", c.inputs, c.num, c.den, c.lat, c.arbiter, c.out); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	l, err := New("ok", 2, 1, 1, 3, a, sink)
	if err != nil || l.Name() != "ok" || l.Inputs() != 2 {
		t.Fatalf("valid link rejected: %v", err)
	}
}

// TestSinglePacketLatency pins the unloaded delivery time: serialization of
// F flits at rate 1 plus pipeline latency.
func TestSinglePacketLatency(t *testing.T) {
	var c capture
	l, err := New("l", 1, 1, 1, 5, newRR(t, 1), c.deliver)
	if err != nil {
		t.Fatal(err)
	}
	p := mkPacket(1, packet.WriteReq) // 4 flits
	l.Enqueue(10, 0, p)
	for now := uint64(10); now < 40 && len(c.pkts) == 0; now++ {
		l.Tick(now)
	}
	if len(c.pkts) != 1 {
		t.Fatal("packet never delivered")
	}
	// Granted at cycle 10, serialization ends at 14, +5 latency = 19.
	if c.times[0] != 19 {
		t.Errorf("delivered at %d, want 19", c.times[0])
	}
}

// TestThroughputAtRate checks a saturated rate-1 link moves exactly one flit
// per cycle over a long window.
func TestThroughputAtRate(t *testing.T) {
	var c capture
	l, err := New("l", 1, 1, 1, 0, newRR(t, 1), c.deliver)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		l.Enqueue(0, 0, mkPacket(uint64(i), packet.WriteReq))
	}
	for now := uint64(0); now < 1000 && !l.Idle(); now++ {
		l.Tick(now)
	}
	st := l.Stats()
	if st.Packets != 100 || st.Flits != 400 {
		t.Fatalf("stats = %+v", st)
	}
	// 400 flits at 1 flit/cycle: the last delivery is at cycle ~400.
	last := c.times[len(c.times)-1]
	if last < 395 || last > 405 {
		t.Errorf("last delivery at %d, want ~400", last)
	}
}

// TestFractionalRate verifies the scaled-integer serialization: at rate 3/2
// flits per cycle, 300 one-flit packets take ~200 cycles.
func TestFractionalRate(t *testing.T) {
	var c capture
	l, err := New("l", 1, 3, 2, 0, newRR(t, 1), c.deliver)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		l.Enqueue(0, 0, mkPacket(uint64(i), packet.ReadReq))
	}
	for now := uint64(0); now < 1000 && !l.Idle(); now++ {
		l.Tick(now)
	}
	last := c.times[len(c.times)-1]
	if last < 198 || last > 203 {
		t.Errorf("last delivery at %d, want ~200", last)
	}
}

// TestRateAboveOne verifies multiple grants can start within one cycle on a
// fast link (e.g. the 6-flit/cycle GPC request channel).
func TestRateAboveOne(t *testing.T) {
	var c capture
	l, err := New("l", 1, 6, 1, 0, newRR(t, 1), c.deliver)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		l.Enqueue(0, 0, mkPacket(uint64(i), packet.ReadReq))
	}
	l.Tick(0)
	l.Tick(1)
	if len(c.pkts) != 6 {
		t.Fatalf("delivered %d packets after 2 cycles, want 6", len(c.pkts))
	}
}

// TestNoIdleBandwidthBanking: a link idle for many cycles must not burst
// beyond its rate when traffic arrives.
func TestNoIdleBandwidthBanking(t *testing.T) {
	var c capture
	l, err := New("l", 1, 1, 1, 0, newRR(t, 1), c.deliver)
	if err != nil {
		t.Fatal(err)
	}
	for now := uint64(0); now < 100; now++ {
		l.Tick(now) // idle spin
	}
	for i := 0; i < 4; i++ {
		l.Enqueue(100, 0, mkPacket(uint64(i), packet.WriteReq))
	}
	for now := uint64(100); now < 130; now++ {
		l.Tick(now)
	}
	// 16 flits at rate 1 starting at cycle 100: deliveries at 104..116,
	// never earlier.
	if c.times[0] < 104 {
		t.Errorf("first delivery at %d, too early", c.times[0])
	}
	if last := c.times[len(c.times)-1]; last < 115 {
		t.Errorf("last delivery at %d, burst exceeded rate", last)
	}
}

// TestTwoInputContention reproduces the covert-channel mechanism in
// miniature: input 0's packets take twice as long to drain when input 1 is
// also loaded.
func TestTwoInputContention(t *testing.T) {
	drain := func(withContender bool) uint64 {
		var c capture
		a, _ := arb.New(config.ArbRR, 2, 32, packet.DataFlits)
		l, err := New("tpc", 2, 1, 1, 0, a, c.deliver)
		if err != nil {
			t.Fatal(err)
		}
		const n = 50
		for i := 0; i < n; i++ {
			l.Enqueue(0, 0, &packet.Packet{ID: uint64(i), Kind: packet.WriteReq, Tag: packet.WarpTag{SM: 0}})
			if withContender {
				l.Enqueue(0, 1, &packet.Packet{ID: uint64(1000 + i), Kind: packet.WriteReq, Tag: packet.WarpTag{SM: 1}})
			}
		}
		var lastSM0 uint64
		for now := uint64(0); !l.Idle(); now++ {
			l.Tick(now)
		}
		for i, p := range c.pkts {
			if p.Tag.SM == 0 {
				lastSM0 = c.times[i]
			}
		}
		return lastSM0
	}
	alone := drain(false)
	shared := drain(true)
	ratio := float64(shared) / float64(alone)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("contention ratio = %.2f, want ~2.0 (alone=%d shared=%d)", ratio, alone, shared)
	}
}

// TestSRRIsolation pins the countermeasure: input 0's drain time under SRR
// is the same whether or not input 1 sends.
func TestSRRIsolation(t *testing.T) {
	drain := func(withContender bool) uint64 {
		var c capture
		a, _ := arb.New(config.ArbSRR, 2, 32, packet.DataFlits)
		l, err := New("tpc", 2, 1, 1, 0, a, c.deliver)
		if err != nil {
			t.Fatal(err)
		}
		const n = 50
		for i := 0; i < n; i++ {
			l.Enqueue(0, 0, &packet.Packet{ID: uint64(i), Kind: packet.WriteReq, Tag: packet.WarpTag{SM: 0}})
			if withContender {
				l.Enqueue(0, 1, &packet.Packet{ID: uint64(1000 + i), Kind: packet.WriteReq, Tag: packet.WarpTag{SM: 1}})
			}
		}
		var lastSM0 uint64
		for now := uint64(0); !l.Idle(); now++ {
			l.Tick(now)
		}
		for i, p := range c.pkts {
			if p.Tag.SM == 0 {
				lastSM0 = c.times[i]
			}
		}
		return lastSM0
	}
	alone := drain(false)
	shared := drain(true)
	diff := float64(shared) - float64(alone)
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(alone) > 0.02 {
		t.Errorf("SRR leaked contention: alone=%d shared=%d", alone, shared)
	}
}

func TestEnqueuePanicsOnBadInput(t *testing.T) {
	l, err := New("l", 1, 1, 1, 0, newRR(t, 1), func(uint64, *packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad input index")
		}
	}()
	l.Enqueue(0, 5, mkPacket(0, packet.ReadReq))
}

func TestQueueWaitAccounting(t *testing.T) {
	var c capture
	l, err := New("l", 1, 1, 1, 0, newRR(t, 1), c.deliver)
	if err != nil {
		t.Fatal(err)
	}
	l.Enqueue(0, 0, mkPacket(0, packet.ReadReq)) // granted at 0: wait 0
	l.Enqueue(0, 0, mkPacket(1, packet.ReadReq)) // granted at 1: wait 1
	for now := uint64(0); !l.Idle(); now++ {
		l.Tick(now)
	}
	if st := l.Stats(); st.QueueWait != 1 {
		t.Errorf("QueueWait = %d, want 1", st.QueueWait)
	}
	if l.QueueLen(0) != 0 {
		t.Error("queue not drained")
	}
}

// Property: flit conservation — everything enqueued is eventually delivered
// exactly once, for arbitrary packet mixes and input assignments.
func TestQuickFlitConservation(t *testing.T) {
	f := func(kinds []uint8) bool {
		if len(kinds) > 200 {
			kinds = kinds[:200]
		}
		var c capture
		a, err := arb.New(config.ArbRR, 3, 32, packet.DataFlits)
		if err != nil {
			return false
		}
		l, err := New("l", 3, 2, 1, 1, a, c.deliver)
		if err != nil {
			return false
		}
		wantFlits := 0
		for i, kraw := range kinds {
			k := packet.Kind(kraw % 6)
			wantFlits += packet.FlitsFor(k)
			l.Enqueue(0, i%3, mkPacket(uint64(i), k))
		}
		for now := uint64(0); now < 100000 && !l.Idle(); now++ {
			l.Tick(now)
		}
		if !l.Idle() {
			return false
		}
		st := l.Stats()
		return len(c.pkts) == len(kinds) && st.Flits == uint64(wantFlits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: deliveries are monotone in time (the FIFO pipe assumption).
func TestQuickMonotoneDelivery(t *testing.T) {
	f := func(kinds []uint8, rate uint8) bool {
		if len(kinds) > 100 {
			kinds = kinds[:100]
		}
		num := int(rate%5) + 1
		var c capture
		a, err := arb.New(config.ArbRR, 2, 32, packet.DataFlits)
		if err != nil {
			return false
		}
		l, err := New("l", 2, num, 2, 3, a, c.deliver)
		if err != nil {
			return false
		}
		for i, kraw := range kinds {
			l.Enqueue(uint64(i), i%2, mkPacket(uint64(i), packet.Kind(kraw%6)))
			l.Tick(uint64(i))
		}
		for now := uint64(len(kinds)); now < 100000 && !l.Idle(); now++ {
			l.Tick(now)
		}
		for i := 1; i < len(c.times); i++ {
			if c.times[i] < c.times[i-1] {
				return false
			}
		}
		return l.Idle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMaxQueueLenTracking: the high-water mark reflects the deepest input
// backlog.
func TestMaxQueueLenTracking(t *testing.T) {
	l, err := New("l", 2, 1, 1, 0, newRR(t, 2), func(uint64, *packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Enqueue(0, 0, mkPacket(uint64(i), packet.ReadReq))
	}
	l.Enqueue(0, 1, mkPacket(99, packet.ReadReq))
	if st := l.Stats(); st.MaxQueueLen != 5 {
		t.Errorf("MaxQueueLen = %d, want 5", st.MaxQueueLen)
	}
	if l.QueueLen(0) != 5 || l.QueueLen(1) != 1 {
		t.Errorf("queue lengths %d/%d", l.QueueLen(0), l.QueueLen(1))
	}
}

// TestAgeArbitrationAcrossInputs: with age-based arbitration the oldest
// packet wins regardless of which input holds it.
func TestAgeArbitrationAcrossInputs(t *testing.T) {
	var c capture
	a, err := arb.New(config.ArbAge, 2, 32, packet.DataFlits)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New("l", 2, 1, 1, 0, a, c.deliver)
	if err != nil {
		t.Fatal(err)
	}
	young := mkPacket(1, packet.ReadReq)
	young.IssueCycle = 50
	old := mkPacket(2, packet.ReadReq)
	old.IssueCycle = 10
	l.Enqueue(0, 0, young)
	l.Enqueue(0, 1, old)
	for now := uint64(0); !l.Idle(); now++ {
		l.Tick(now)
	}
	if len(c.pkts) != 2 || c.pkts[0].ID != 2 {
		t.Errorf("delivery order: %v, want the older packet first", c.pkts)
	}
}

// TestTickDoesNotAllocate pins the hot path at zero heap allocations: an
// idle link's Tick must allocate nothing, and neither must a steady-state
// tick that grants a queued packet and delivers a due one. Ring buffers
// reach steady capacity after warmup; regressing this (e.g. by slicing a
// queue's backing array per pop) shows up immediately as a nonzero count.
func TestTickDoesNotAllocate(t *testing.T) {
	l, err := New("alloc", 2, 1, 1, 2, newRR(t, 2), func(uint64, *packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}

	now := uint64(0)
	if n := testing.AllocsPerRun(100, func() {
		l.Tick(now)
		now++
	}); n != 0 {
		t.Errorf("idle Tick allocates %v times per call, want 0", n)
	}

	// Warm up the rings past their steady-state capacity, then drain.
	p := mkPacket(1, packet.ReadReq)
	for i := 0; i < 32; i++ {
		l.Enqueue(now, i%2, p)
	}
	for !l.Idle() {
		l.Tick(now)
		now++
	}

	// Steady state: one enqueue and one tick per cycle. Every allocation
	// here would be on the per-granted-packet path.
	if n := testing.AllocsPerRun(100, func() {
		l.Enqueue(now, 0, p)
		l.Tick(now)
		now++
	}); n != 0 {
		t.Errorf("steady-state Enqueue+Tick allocates %v times per call, want 0", n)
	}
}
