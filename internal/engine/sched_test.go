package engine

// Tests for the activity-driven tick scheduler: idle components really are
// skipped (observed through the sched/* probe counters), and the skipping is
// invisible — every simulation observable is bit-identical to the
// exhaustive-tick reference engine (config.ExhaustiveTick).

import (
	"math/rand"
	"reflect"
	"testing"

	"gpunoc/internal/device"
	"gpunoc/internal/link"
	"gpunoc/internal/mem"
	"gpunoc/internal/probe"
	"gpunoc/internal/sm"
)

// TestSparseTrafficSkipsIdleComponents runs a single-warp kernel on the
// small (8-SM, 20-link, 8-slice, 4-MC) topology and checks the scheduler's
// tick counters: only the one busy SM ever ticks, and links/slices/MCs tick
// far below the exhaustive component-count × cycles product.
func TestSparseTrafficSkipsIdleComponents(t *testing.T) {
	cfg := testCfg()
	cfg.Probes = probe.NewRegistry()
	g := mkGPU(t, cfg)
	preloadStreamers(g, 1)
	spec, _ := streamerKernel("sparse", 1, 1, 200, true, false, cfg.L2LineBytes)
	if _, err := g.Launch(spec); err != nil {
		t.Fatal(err)
	}
	if err := g.RunKernels(2_000_000); err != nil {
		t.Fatal(err)
	}
	if !g.RunUntil(g.Idle, 100_000) {
		t.Fatal("GPU did not drain")
	}

	load := func(name string) uint64 { return cfg.Probes.Counter(name).Load() }
	cycles := load("sched/cycles")
	smTicks := load("sched/sm_ticks")
	linkTicks := load("sched/link_ticks")
	sliceTicks := load("sched/slice_ticks")
	mcTicks := load("sched/mc_ticks")
	if cycles == 0 {
		t.Fatal("no cycles stepped")
	}

	// One block, one warp: exactly one SM is ever woken, so at most one SM
	// tick per stepped cycle — the other 7 SMs are never simulated.
	if smTicks == 0 || smTicks > cycles {
		t.Errorf("sm_ticks = %d, want in [1, %d] (one busy SM)", smTicks, cycles)
	}

	numLinks := uint64(g.Config().NumTPCs()*2 + g.Config().NumGPCs*2 + g.Config().NumL2Slices)
	numSlices := uint64(g.Config().NumL2Slices)
	numMCs := uint64(g.Config().NumMCs)
	if linkTicks == 0 || linkTicks*2 >= cycles*numLinks {
		t.Errorf("link_ticks = %d of %d exhaustive, want >0 and <50%%", linkTicks, cycles*numLinks)
	}
	if sliceTicks == 0 || sliceTicks*2 >= cycles*numSlices {
		t.Errorf("slice_ticks = %d of %d exhaustive, want >0 and <50%%", sliceTicks, cycles*numSlices)
	}
	// The working set is preloaded and writes hit in L2, so the memory
	// controllers should see (almost) nothing.
	if mcTicks*2 >= cycles*numMCs {
		t.Errorf("mc_ticks = %d of %d exhaustive, want <50%%", mcTicks, cycles*numMCs)
	}

	// Once drained with no kernel running, RunFor must fast-forward rather
	// than step idle silicon.
	ffwdBefore, nowBefore := load("sched/ffwd_cycles"), g.Now()
	g.RunFor(5000)
	if g.Now() != nowBefore+5000 {
		t.Errorf("RunFor advanced to %d, want %d", g.Now(), nowBefore+5000)
	}
	if got := load("sched/ffwd_cycles") - ffwdBefore; got != 5000 {
		t.Errorf("fast-forwarded %d cycles, want 5000", got)
	}
}

// TestRandomTrafficMatchesExhaustiveTick is the bit-identity regression for
// the scheduler and the sharded parallel engine: randomized multi-kernel
// workloads (random seeds, jitters, shapes, launch offsets, warm or cold
// L2) are run with every component ticked every cycle (the reference),
// under the activity scheduler, and under the parallel engine at worker
// counts {2, 4, 8}, and every observable — final cycle, kernel timestamps,
// per-SM clock registers and counters, per-warp latency traces, slice
// totals, and the stats of every NoC link — must match exactly across all
// of them.
func TestRandomTrafficMatchesExhaustiveTick(t *testing.T) {
	type launch struct {
		at                   uint64
		blocks, warps, count int
		write, unco          bool
	}
	type observed struct {
		Now       uint64
		Launched  []uint64
		Finished  []uint64
		Durations []uint64
		Clocks    []uint32
		SMs       []sm.Stats
		Slices    mem.SliceStats
		Links     []link.Stats
		Latencies [][]uint64
	}

	rng := rand.New(rand.NewSource(20260805))
	for round := 0; round < 6; round++ {
		base := testCfg()
		base.Seed = rng.Int63n(1 << 30)
		base.WarpIssueJitter = rng.Intn(60)
		base.L2ServiceJitter = rng.Intn(5)

		var plan []launch
		at, maxWarps := uint64(0), 0
		for i, n := 0, 1+rng.Intn(3); i < n; i++ {
			at += uint64(rng.Intn(3000))
			l := launch{
				at:     at,
				blocks: 1 + rng.Intn(3),
				warps:  1 + rng.Intn(3),
				count:  1 + rng.Intn(12),
				write:  rng.Intn(2) == 0,
				unco:   rng.Intn(2) == 0,
			}
			if w := l.blocks * l.warps; w > maxWarps {
				maxWarps = w
			}
			plan = append(plan, l)
		}
		preload := rng.Intn(2) == 0 // cold L2 exercises the DRAM/fill/retry paths

		run := func(exhaustive bool, workers int) observed {
			t.Helper()
			cfg := base
			cfg.ExhaustiveTick = exhaustive
			cfg.EngineWorkers = workers
			g := mkGPU(t, cfg)
			defer g.Close()
			if workers >= 2 && g.Workers() < 2 {
				t.Fatalf("EngineWorkers=%d resolved to %d workers; parallel engine not engaged", workers, g.Workers())
			}
			if preload {
				preloadStreamers(g, maxWarps)
			}
			var progs []map[[2]int]*device.Streamer
			for _, l := range plan {
				spec, pr := streamerKernel("rnd", l.blocks, l.warps, l.count, l.write, l.unco, cfg.L2LineBytes)
				if _, err := g.LaunchAt(l.at, spec); err != nil {
					t.Fatal(err)
				}
				progs = append(progs, pr)
			}
			if err := g.RunKernels(5_000_000); err != nil {
				t.Fatal(err)
			}
			if !g.RunUntil(g.Idle, 200_000) {
				t.Fatal("GPU did not drain")
			}
			g.RunFor(2000) // covers the post-drain fast-forward path

			var o observed
			o.Now = g.Now()
			for _, k := range g.Kernels() {
				o.Launched = append(o.Launched, k.LaunchedAt)
				o.Finished = append(o.Finished, k.FinishedAt)
				o.Durations = append(o.Durations, k.Duration())
			}
			for i := 0; i < cfg.NumSMs(); i++ {
				o.Clocks = append(o.Clocks, g.SM(i).Clock(g.Now()))
				o.SMs = append(o.SMs, g.SM(i).Stats())
			}
			o.Slices = g.Partition().Stats()
			for i := 0; i < cfg.NumTPCs(); i++ {
				o.Links = append(o.Links, g.Network().TPCRequestLink(i).Stats(),
					g.Network().TPCReplyLink(i).Stats())
			}
			for i := 0; i < cfg.NumGPCs; i++ {
				o.Links = append(o.Links, g.Network().GPCRequestLink(i).Stats(),
					g.Network().GPCReplyLink(i).Stats())
			}
			for _, pr := range progs {
				for b := 0; b < 4; b++ {
					for w := 0; w < 4; w++ {
						if s, ok := pr[[2]int{b, w}]; ok {
							o.Latencies = append(o.Latencies, s.Latencies)
						}
					}
				}
			}
			return o
		}

		exhaustive := run(true, 1)
		for _, workers := range []int{1, 2, 4, 8} {
			got := run(false, workers)
			if !reflect.DeepEqual(got, exhaustive) {
				t.Fatalf("round %d (seed %d, jitters %d/%d, preload %v, %d kernels): %d-worker run diverges from exhaustive reference\ngot:        %+v\nexhaustive: %+v",
					round, base.Seed, base.WarpIssueJitter, base.L2ServiceJitter, preload, len(plan), workers, got, exhaustive)
			}
		}
	}
}
