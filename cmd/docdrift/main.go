// Command docdrift cross-checks the documentation against the code so the
// two cannot quietly diverge. It fails (exit 1, one line per finding) when:
//
//   - the package list in docs/ARCHITECTURE.md disagrees with the layering
//     table in internal/lint — a package declared in the import DAG that
//     the architecture doc never mentions, or an internal/... package the
//     doc mentions that the DAG does not declare;
//   - a relative markdown link in any root-level *.md or docs/*.md file
//     points at a path that does not exist;
//   - the "What CI holds byte-identical" table in docs/DETERMINISM.md fails
//     to mention a worker count that the lockstep determinism test
//     (internal/engine/determinism_test.go) actually runs;
//   - EXPERIMENTS.md never mentions the id of an experiment that is
//     registered in internal/experiments — a new Fig*/Table* that was never
//     documented;
//   - the cache-key field table in docs/ARCHITECTURE.md ("Checkpoint/
//     restore & server") disagrees with the experiments.CacheKey struct —
//     a field added to the key that the doc never documents, or a
//     documented field the struct no longer has.
//
// CI runs it in the lint job:
//
//	go run ./cmd/docdrift
//
// An optional argument sets the repository root (default ".").
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"

	"gpunoc/internal/experiments"
	"gpunoc/internal/lint"
)

const archDoc = "docs/ARCHITECTURE.md"

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var findings []string
	report := func(format string, args ...any) {
		findings = append(findings, fmt.Sprintf(format, args...))
	}

	checkPackageList(root, report)
	checkLinks(root, report)
	checkWorkerCounts(root, report)
	checkExperimentIDs(root, report)
	checkCacheKey(root, report)

	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "docdrift: %s\n", f)
		}
		fmt.Fprintf(os.Stderr, "docdrift: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("docdrift: documentation and rule tables agree")
}

// pkgToken matches a module-local package mention like "internal/noc"; a
// longer path ("internal/engine/parallel.go") contributes its package dir.
var pkgToken = regexp.MustCompile(`internal/[a-z0-9]+`)

// checkPackageList diffs the layering table of internal/lint (the
// machine-readable import DAG) against the package mentions in
// docs/ARCHITECTURE.md, in both directions.
func checkPackageList(root string, report func(string, ...any)) {
	text, err := os.ReadFile(filepath.Join(root, archDoc))
	if err != nil {
		report("reading %s: %v", archDoc, err)
		return
	}
	mentioned := map[string]bool{}
	for _, tok := range pkgToken.FindAllString(string(text), -1) {
		mentioned[tok] = true
	}
	declared := map[string]bool{}
	for pkg := range lint.DefaultRules().Layering.Allowed {
		if strings.HasPrefix(pkg, "internal/") {
			declared[pkg] = true
		}
	}
	for _, pkg := range sorted(declared) {
		if !mentioned[pkg] {
			report("%s is in internal/lint's layering table but never mentioned in %s", pkg, archDoc)
		}
	}
	for _, pkg := range sorted(mentioned) {
		if !declared[pkg] {
			report("%s mentions %s, which is not declared in internal/lint's layering table", archDoc, pkg)
		}
	}
}

// mdLink matches [text](target); targets that are absolute URLs, anchors,
// or mail links are not checked.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks verifies that every relative markdown link in the root *.md
// files and docs/*.md resolves to an existing file or directory.
func checkLinks(root string, report func(string, ...any)) {
	var docs []string
	for _, pattern := range []string{"*.md", "docs/*.md"} {
		matches, err := filepath.Glob(filepath.Join(root, pattern))
		if err != nil {
			report("globbing %s: %v", pattern, err)
			continue
		}
		docs = append(docs, matches...)
	}
	sort.Strings(docs)
	for _, doc := range docs {
		text, err := os.ReadFile(doc)
		if err != nil {
			report("reading %s: %v", doc, err)
			continue
		}
		rel, _ := filepath.Rel(root, doc)
		for _, m := range mdLink.FindAllStringSubmatch(string(text), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(doc), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				report("%s links to %s, which does not exist", rel, target)
			}
		}
	}
}

const (
	detDoc      = "docs/DETERMINISM.md"
	lockstepSrc = "internal/engine/determinism_test.go"
	ciTableHead = "## What CI holds byte-identical"
)

// workerMatrix matches the lockstep test's worker-matrix literal, e.g.
// "range []int{1, 1, 2, 4, 8}".
var workerMatrix = regexp.MustCompile(`range \[\]int\{([0-9,\s]+)\}`)

// checkWorkerCounts extracts the distinct worker counts the lockstep
// determinism test actually runs and requires the "What CI holds
// byte-identical" table in docs/DETERMINISM.md to mention each of them, so
// the table cannot quietly understate the coverage the test provides when
// someone widens the worker matrix.
func checkWorkerCounts(root string, report func(string, ...any)) {
	src, err := os.ReadFile(filepath.Join(root, lockstepSrc))
	if err != nil {
		report("reading %s: %v", lockstepSrc, err)
		return
	}
	m := workerMatrix.FindStringSubmatch(string(src))
	if m == nil {
		report("%s: no worker-matrix literal (range []int{...}); update docdrift's workerMatrix pattern", lockstepSrc)
		return
	}
	seen := map[string]bool{}
	var counts []string
	for _, field := range strings.Split(m[1], ",") {
		c := strings.TrimSpace(field)
		if c != "" && !seen[c] {
			seen[c] = true
			counts = append(counts, c)
		}
	}
	doc, err := os.ReadFile(filepath.Join(root, detDoc))
	if err != nil {
		report("reading %s: %v", detDoc, err)
		return
	}
	section := string(doc)
	i := strings.Index(section, ciTableHead)
	if i < 0 {
		report("%s has no %q section", detDoc, ciTableHead)
		return
	}
	section = section[i+len(ciTableHead):]
	if j := strings.Index(section, "\n## "); j >= 0 {
		section = section[:j]
	}
	for _, c := range counts {
		// A count must appear as a full number ("4" must not match "w4x8"'s
		// digits of another count), delimited by any non-digit.
		token := regexp.MustCompile(`(^|[^0-9])` + regexp.QuoteMeta(c) + `([^0-9]|$)`)
		if !token.MatchString(section) {
			report("%s runs the lockstep comparison at %s workers, but the %q table in %s never mentions that count",
				lockstepSrc, c, ciTableHead, detDoc)
		}
	}
}

const expDoc = "EXPERIMENTS.md"

// checkExperimentIDs requires EXPERIMENTS.md to mention every
// experiment id registered in internal/experiments, so a new artifact
// cannot land undocumented. Ids must appear as whole hyphenated tokens:
// "fig1" does not count as a mention of "fig1" inside "fig10", and
// "noise-sweep" does not satisfy "noise".
func checkExperimentIDs(root string, report func(string, ...any)) {
	doc, err := os.ReadFile(filepath.Join(root, expDoc))
	if err != nil {
		report("reading %s: %v", expDoc, err)
		return
	}
	text := string(doc)
	for _, e := range experiments.All() {
		token := regexp.MustCompile(`(^|[^a-z0-9-])` + regexp.QuoteMeta(e.ID) + `([^a-z0-9-]|$)`)
		if !token.MatchString(text) {
			report("experiment %q is registered in internal/experiments but never mentioned in %s", e.ID, expDoc)
		}
	}
}

const cacheKeyHead = "## Checkpoint/restore & server"

// cacheKeyRow matches one row of the cache-key field table in
// docs/ARCHITECTURE.md: a table line whose first cell is a backticked
// snake_case field name.
var cacheKeyRow = regexp.MustCompile("(?m)^\\| `([a-z_]+)` \\|")

// checkCacheKey diffs the cache-key field table in docs/ARCHITECTURE.md
// against the experiments.CacheKey struct (by JSON tag — the tags define
// the canonical encoding the content address hashes), in both directions:
// the service's cache contract and its documentation cannot drift apart.
func checkCacheKey(root string, report func(string, ...any)) {
	text, err := os.ReadFile(filepath.Join(root, archDoc))
	if err != nil {
		report("reading %s: %v", archDoc, err)
		return
	}
	section := string(text)
	i := strings.Index(section, cacheKeyHead)
	if i < 0 {
		report("%s has no %q section", archDoc, cacheKeyHead)
		return
	}
	section = section[i+len(cacheKeyHead):]
	if j := strings.Index(section, "\n## "); j >= 0 {
		section = section[:j]
	}
	documented := map[string]bool{}
	for _, m := range cacheKeyRow.FindAllStringSubmatch(section, -1) {
		documented[m[1]] = true
	}
	declared := map[string]bool{}
	t := reflect.TypeOf(experiments.CacheKey{})
	for f := 0; f < t.NumField(); f++ {
		tag := strings.Split(t.Field(f).Tag.Get("json"), ",")[0]
		if tag != "" && tag != "-" {
			declared[tag] = true
		}
	}
	for _, tag := range sorted(declared) {
		if !documented[tag] {
			report("experiments.CacheKey field %q is not documented in the %q table of %s", tag, cacheKeyHead, archDoc)
		}
	}
	for _, tag := range sorted(documented) {
		if !declared[tag] {
			report("%s documents cache-key field %q, which experiments.CacheKey does not have", archDoc, tag)
		}
	}
}

// sorted returns a map's keys in order, for deterministic output.
func sorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
