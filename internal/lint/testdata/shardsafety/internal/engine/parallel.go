// Package engine is the shardsafety fixture's driver: the two phase roots
// whose shard parameters seed the derivedness analysis.
package engine

import "gpunoc/internal/noc"

// dropCount exists to be written from a phase task — the escape finding
// (and a purity finding, since it is package-level mutable state).
var dropCount int

// GPU owns the fixture components.
type GPU struct {
	sms []int
	net *noc.Network
}

// parEngine shards the fixture tick.
type parEngine struct {
	g  *GPU
	nG int
}

// phaseG is the per-GPC phase root: gpc is shard-derived by contract.
func (pe *parEngine) phaseG(gpc int) {
	pe.g.sms[gpc] = 1
	pe.g.sms[3] = 2
	w := func() { pe.g.sms[gpc] = 9 }
	w()
	pe.g.net.DrainReplies(gpc)
	pe.g.net.TickGPCShard(0, gpc)
	pe.g.net.TickOther(5)
	dropCount++
}

// phaseP is the per-MC-group phase root; its body is clean.
func (pe *parEngine) phaseP(m int) {
	pe.g.sms[m] = 0
}
