package stats

import (
	"math"
	"testing"
)

func TestSummaryEmpty(t *testing.T) {
	if d := Summary(nil); d != (Dist{}) {
		t.Fatalf("Summary(nil) = %+v, want zero", d)
	}
}

func TestSummarySingle(t *testing.T) {
	d := Summary([]float64{7})
	want := Dist{Count: 1, Mean: 7, P50: 7, P95: 7, P99: 7, Max: 7}
	if d != want {
		t.Fatalf("Summary([7]) = %+v, want %+v", d, want)
	}
}

func TestSummaryMatchesPercentile(t *testing.T) {
	xs := make([]float64, 0, 101)
	for i := 100; i >= 0; i-- { // reversed: Summary must not depend on order
		xs = append(xs, float64(i))
	}
	d := Summary(xs)
	if d.Count != 101 {
		t.Fatalf("count = %d", d.Count)
	}
	if math.Abs(d.Mean-50) > 1e-12 {
		t.Fatalf("mean = %g, want 50", d.Mean)
	}
	for _, tc := range []struct {
		p   float64
		got float64
	}{
		{50, d.P50}, {95, d.P95}, {99, d.P99},
	} {
		want, err := Percentile(xs, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tc.got-want) > 1e-12 {
			t.Fatalf("p%g = %g, want %g (must match Percentile)", tc.p, tc.got, want)
		}
	}
	if d.Max != 100 {
		t.Fatalf("max = %g, want 100", d.Max)
	}
}

func TestSummaryInterpolates(t *testing.T) {
	d := Summary([]float64{0, 10})
	if d.P50 != 5 {
		t.Fatalf("p50 of {0,10} = %g, want 5 (linear interpolation)", d.P50)
	}
	if d.P95 != 9.5 {
		t.Fatalf("p95 of {0,10} = %g, want 9.5", d.P95)
	}
}

func TestSummaryDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summary(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}
