package link

import (
	"gpunoc/internal/arb"
	"gpunoc/internal/packet"
	"gpunoc/internal/snap"
)

// Snapshot appends the link's mutable state — every input queue, the
// in-flight pipe, the scaled channel-busy horizon, the activity counters,
// and the arbiter's grant state — to the encoder. Wiring (fan-in, rate,
// latency, sinks) is rebuilt from configuration by the restoring side.
func (l *Link) Snapshot(e *snap.Encoder) {
	e.Int(len(l.queues))
	for i := range l.queues {
		q := &l.queues[i]
		e.Int(q.Len())
		for j := 0; j < q.Len(); j++ {
			item := q.At(j)
			packet.Encode(e, item.p)
			e.U64(item.enqueued)
		}
	}
	e.Int(l.pipe.Len())
	for j := 0; j < l.pipe.Len(); j++ {
		f := l.pipe.At(j)
		packet.Encode(e, f.p)
		e.U64(f.deliverAt)
	}
	e.U64(l.lastEnd)
	e.U64(l.stats.Packets)
	e.U64(l.stats.Flits)
	e.U64(l.stats.QueueWait)
	e.Int(l.stats.MaxQueueLen)
	arb.Snapshot(e, l.arbiter)
}

// Restore reads state written by Snapshot into a link built from the same
// configuration. Probe gauges are not re-driven here — the probe registry
// restores its instrument values wholesale.
func (l *Link) Restore(d *snap.Decoder) error {
	if n := d.Int(); d.Err() == nil && n != len(l.queues) {
		return snap.Corruptf("link %s: snapshot has %d input queues, link has %d", l.name, n, len(l.queues))
	}
	for i := range l.queues {
		q := &l.queues[i]
		for q.Len() > 0 {
			q.Pop()
		}
		n := d.Len()
		for j := 0; j < n; j++ {
			p := packet.Decode(d)
			q.Push(queued{p: p, enqueued: d.U64()})
		}
	}
	for l.pipe.Len() > 0 {
		l.pipe.Pop()
	}
	np := d.Len()
	for j := 0; j < np; j++ {
		p := packet.Decode(d)
		l.pipe.Push(inflight{p: p, deliverAt: d.U64()})
	}
	l.lastEnd = d.U64()
	l.stats.Packets = d.U64()
	l.stats.Flits = d.U64()
	l.stats.QueueWait = d.U64()
	l.stats.MaxQueueLen = d.Int()
	if err := arb.Restore(d, l.arbiter); err != nil {
		return err
	}
	return d.Err()
}
