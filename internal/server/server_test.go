package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"gpunoc/internal/config"
	"gpunoc/internal/experiments"
)

// testHarness is one server under httptest plus a call counter proving
// whether a submission actually simulated.
type testHarness struct {
	srv   *Server
	http  *httptest.Server
	calls *atomic.Int64
}

// newHarness builds a server over a fake one-experiment registry whose run
// function counts invocations.
func newHarness(t *testing.T, fail bool) *testHarness {
	t.Helper()
	var calls atomic.Int64
	reg := experiments.NewRegistry()
	reg.MustRegister(experiments.Experiment{
		ID: "probe-exp", Order: 0, Title: "fake", Section: "test",
		Run: func(cfg *config.Config, opt experiments.Options) (*experiments.Figure, error) {
			calls.Add(1)
			if fail {
				return nil, fmt.Errorf("deliberate failure")
			}
			cfg.Meter.Add(250)
			return &experiments.Figure{
				ID: "probe-exp", Title: "fake",
				Header: []string{"seed"},
				Rows:   [][]string{{fmt.Sprintf("%d", opt.Seed)}},
			}, nil
		},
	})
	s, err := New(Config{
		Cache:    &experiments.Cache{Dir: t.TempDir()},
		Workers:  2,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return &testHarness{srv: s, http: hs, calls: &calls}
}

// submit POSTs a job and decodes the status.
func (h *testHarness) submit(t *testing.T, req JobRequest) (JobStatus, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(h.http.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return st, resp.StatusCode
}

// poll GETs a job status by key until it reaches a terminal state.
func (h *testHarness) poll(t *testing.T, key string) JobStatus {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		resp, err := http.Get(h.http.URL + "/v1/jobs/" + key)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" || st.State == "failed" {
			return st
		}
	}
	t.Fatal("job did not finish")
	return JobStatus{}
}

// TestServerServesRepeatedJobFromCache is the acceptance test: the second
// submission of an identical job must be a synchronous cache hit — 200,
// cached:true, identical report — without simulating again.
func TestServerServesRepeatedJobFromCache(t *testing.T) {
	h := newHarness(t, false)
	req := JobRequest{Config: "small", Seed: 5, Experiment: "probe-exp"}

	st, code := h.submit(t, req)
	if code != http.StatusAccepted {
		t.Fatalf("cold submission: status %d, want 202", code)
	}
	if st.Cached {
		t.Fatal("cold submission marked cached")
	}
	final := h.poll(t, st.Key)
	if final.State != "done" {
		t.Fatalf("job failed: %s", final.Error)
	}
	if h.calls.Load() != 1 {
		t.Fatalf("cold job simulated %d times, want 1", h.calls.Load())
	}
	if final.Report == "" || final.Cycles != 250 {
		t.Fatalf("unexpected final status: %+v", final)
	}

	warm, code := h.submit(t, req)
	if code != http.StatusOK {
		t.Fatalf("warm submission: status %d, want 200", code)
	}
	if !warm.Cached || warm.State != "done" {
		t.Fatalf("warm submission not a cache hit: %+v", warm)
	}
	if warm.Report != final.Report {
		t.Fatalf("cached report differs:\ncached: %q\nlive:   %q", warm.Report, final.Report)
	}
	if warm.Cycles != final.Cycles {
		t.Fatalf("cached cycles %d, live %d", warm.Cycles, final.Cycles)
	}
	if h.calls.Load() != 1 {
		t.Fatalf("warm submission re-simulated: %d executions", h.calls.Load())
	}

	// A different seed is a different key: it must queue, not hit.
	req.Seed = 6
	st2, code := h.submit(t, req)
	if code != http.StatusAccepted || st2.Key == st.Key {
		t.Fatalf("seed change served from cache: code %d key %s", code, st2.Key)
	}
	if h.poll(t, st2.Key).State != "done" {
		t.Fatal("second job did not finish")
	}
	if h.calls.Load() != 2 {
		t.Fatalf("seed change executed %d total, want 2", h.calls.Load())
	}
}

// TestServerCoalescesConcurrentSubmissions pins the dedupe: resubmitting a
// key already queued or running returns the same job, never a second one.
func TestServerCoalescesConcurrentSubmissions(t *testing.T) {
	h := newHarness(t, false)
	req := JobRequest{Config: "small", Seed: 7, Experiment: "probe-exp"}
	a, _ := h.submit(t, req)
	b, _ := h.submit(t, req)
	if a.Key != b.Key {
		t.Fatalf("same request got two jobs: %s vs %s", a.Key, b.Key)
	}
	h.poll(t, a.Key)
	if n := h.calls.Load(); n != 1 {
		t.Fatalf("coalesced job simulated %d times, want 1", n)
	}
}

// TestServerFailedJobsAreRetriable pins that failures are never cached: a
// failed job reports its error, and resubmission runs again.
func TestServerFailedJobsAreRetriable(t *testing.T) {
	h := newHarness(t, true)
	req := JobRequest{Config: "small", Seed: 5, Experiment: "probe-exp"}
	st, _ := h.submit(t, req)
	final := h.poll(t, st.Key)
	if final.State != "failed" || final.Error == "" {
		t.Fatalf("want failed state with error, got %+v", final)
	}
	st2, code := h.submit(t, req)
	if code != http.StatusAccepted {
		t.Fatalf("resubmission of failed job: status %d, want 202", code)
	}
	if h.poll(t, st2.Key).State != "failed" {
		t.Fatal("retried job did not run")
	}
	if n := h.calls.Load(); n != 2 {
		t.Fatalf("failed job ran %d times across two submissions, want 2", n)
	}
}

// TestServerRejectsBadRequests pins the 400s: unknown config, unknown
// experiment, bad scale, and undecodable bodies all fail fast.
func TestServerRejectsBadRequests(t *testing.T) {
	h := newHarness(t, false)
	cases := []JobRequest{
		{Config: "nope", Experiment: "probe-exp"},
		{Config: "small", Experiment: "nope"},
		{Config: "small", Experiment: "probe-exp", Scale: "huge"},
	}
	for _, req := range cases {
		if _, code := h.submit(t, req); code != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400", req, code)
		}
	}
	resp, err := http.Post(h.http.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated body: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(h.http.URL + "/v1/jobs/doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestServerHealthz pins the liveness endpoint.
func TestServerHealthz(t *testing.T) {
	h := newHarness(t, false)
	resp, err := http.Get(h.http.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d, want 200", resp.StatusCode)
	}
	var body map[string]bool
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body["ok"] {
		t.Fatalf("healthz body %v", body)
	}
}

// TestServerRequiresCache pins the constructor contract.
func TestServerRequiresCache(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil cache accepted")
	}
	if _, err := New(Config{Cache: &experiments.Cache{}}); err == nil {
		t.Fatal("empty cache dir accepted")
	}
}
