package experiments

import (
	"fmt"
	"testing"
	"time"

	"gpunoc/internal/config"
)

// TestVoltaShapes runs the headline experiments on the full Volta topology.
// It takes about a minute, so it is skipped under -short.
func TestVoltaShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("volta-scale experiment run")
	}
	cfg := config.Volta()
	opt := Options{Scale: Quick, Seed: 5}
	t0 := time.Now()
	f, err := Fig10(&cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("Fig10 volta quick: %v\n", time.Since(t0))
	for _, n := range f.Notes {
		fmt.Println("  ", n)
	}
	if err := CheckFig10(f, cfg.NumTPCs()); err != nil {
		t.Error(err)
	}
	t0 = time.Now()
	f5, err := Fig5(&cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("Fig5 volta quick: %v\n", time.Since(t0))
	if err := CheckFig5(f5); err != nil {
		t.Error(err)
	}
	for _, s := range f5.Series {
		fmt.Printf("  %s: %v\n", s.Name, s.Y)
	}
}
