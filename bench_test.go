package gpunoc

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. Experiments come from the internal/experiments registry — the
// same one cmd/ccbench runs — so a newly registered experiment shows up here
// with no harness edits. Each sub-benchmark runs one artifact on the full
// Volta topology (or the small topology under -short), asserts the paper's
// qualitative shape via the experiment's Check function, and reports its
// headline values as custom metrics. Run everything with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers come from the calibrated simulator; the shapes (who wins,
// by what factor, where crossovers fall) are what reproduce the paper.

import (
	"fmt"
	"runtime"
	"testing"

	"gpunoc/internal/config"
	"gpunoc/internal/experiments"
)

func benchConfig(b *testing.B) config.Config {
	if testing.Short() {
		return config.Small()
	}
	return config.Volta()
}

func benchOpts() experiments.Options {
	return experiments.Options{Scale: experiments.Quick, Seed: 5}
}

// BenchmarkExperiments runs every registered paper artifact as a
// sub-benchmark (e.g. -bench=Experiments/fig10), with its shape Check
// applied and its headline metrics reported.
func BenchmarkExperiments(b *testing.B) {
	cfg := benchConfig(b)
	runner := experiments.Runner{Parallel: 1, Options: benchOpts(), Check: true}
	for _, e := range experiments.All() {
		e := e
		b.Run(e.ID, func(b *testing.B) {
			var last experiments.Result
			for i := 0; i < b.N; i++ {
				results, err := runner.Run(&cfg, []string{e.ID})
				if err != nil {
					b.Fatal(err)
				}
				last = results[0]
				if last.Err != nil {
					b.Fatal(last.Err)
				}
			}
			b.ReportMetric(float64(last.Cycles), "sim-cycles")
			if e.Metrics != nil {
				for name, v := range e.Metrics(last.Figure) {
					b.ReportMetric(v, name)
				}
			}
		})
	}
}

// BenchmarkSuite measures the whole registered suite end to end,
// sequentially and with a GOMAXPROCS-wide worker pool — the wall-clock
// numbers quoted in EXPERIMENTS.md.
func BenchmarkSuite(b *testing.B) {
	cfg := benchConfig(b)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		workers := workers
		b.Run(fmt.Sprintf("parallel=%d", workers), func(b *testing.B) {
			runner := experiments.Runner{Parallel: workers, Options: benchOpts()}
			for i := 0; i < b.N; i++ {
				results, err := runner.Run(&cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				for _, res := range results {
					if res.Err != nil {
						b.Fatalf("%s: %v", res.Experiment.ID, res.Err)
					}
				}
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (cycles/sec of
// the full Volta model under covert-channel load) — the substrate ablation.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := benchConfig(b)
	p, err := Calibrate(&cfg, ChannelParams{Kind: TPCChannel, Iterations: 4, SyncPeriod: 16, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	payload, err := BytesToSymbols([]byte{0xA5, 0x5A}, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		tr, err := NewTPCTransmission(&cfg, payload, []int{0}, p)
		if err != nil {
			b.Fatal(err)
		}
		res, err := tr.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}
