// Package link models a shared, bandwidth-limited interconnect channel fed
// by several input queues through an arbiter. Every shared resource of the
// GPU NoC — the 2:1 TPC mux, the 7:1 GPC mux with speedup, crossbar ports,
// and L2 slice ingress/egress — is an instance of Link. Contention shows up
// as queueing delay at the link inputs, which is precisely the timing signal
// the covert channel measures.
//
// Bandwidth is a rational number of flits per cycle (num/den). Serialization
// uses integer arithmetic in a time base scaled by num: a packet of F flits
// occupies the channel for F*den scaled units, so fractional speedups such
// as the calibrated 3.27 flits/cycle reply-side GPC channel are exact.
package link

import (
	"fmt"

	"gpunoc/internal/arb"
	"gpunoc/internal/packet"
	"gpunoc/internal/probe"
	"gpunoc/internal/ring"
)

// Deliver receives a packet when it exits the link (after serialization and
// pipeline latency).
type Deliver func(now uint64, p *packet.Packet)

// Stats aggregates link activity counters.
type Stats struct {
	Packets     uint64 // packets transferred
	Flits       uint64 // flits transferred
	QueueWait   uint64 // total cycles packets spent waiting in input queues
	MaxQueueLen int    // high-water mark across all input queues
}

type queued struct {
	p        *packet.Packet
	enqueued uint64
}

type inflight struct {
	p         *packet.Packet
	deliverAt uint64
}

// Link is a single shared channel. It is not safe for concurrent use; the
// simulation engine ticks all components from one goroutine.
type Link struct {
	name    string
	num     uint64 // bandwidth numerator (flits)
	den     uint64 // bandwidth denominator (cycles)
	latency uint64 // pipeline latency after serialization, cycles

	arbiter arb.Arbiter
	queues  []ring.Buffer[queued]
	pipe    ring.Buffer[inflight] // FIFO: serialization end times are monotonic
	heads   []*packet.Packet      // reused arbitration scratch, one slot per input
	out     Deliver
	wake    func() // activity wake edge (see SetWaker); nil outside a scheduler

	lastEnd uint64 // scaled (cycles*num) time the channel frees up
	stats   Stats
	pr      *linkProbes // nil when uninstrumented (the fast path)
}

// linkProbes bundles the probe instruments of one instrumented link; the
// Link carries a single pointer so the uninstrumented hot path pays exactly
// one nil check per phase.
type linkProbes struct {
	occ   *probe.Occupancy // channel utilization (busy units = flits*den)
	depth *probe.Gauge     // total queued packets across all inputs
	wait  *probe.Hist      // per-packet queue wait, cycles
	trace *probe.Trace     // nil unless tracing is enabled
	track probe.TrackID
}

// New constructs a link. inputs is the mux fan-in; rateNum/rateDen the
// bandwidth in flits per cycle; latency the pipeline delay in cycles applied
// after serialization. out must not be nil.
func New(name string, inputs, rateNum, rateDen, latency int, a arb.Arbiter, out Deliver) (*Link, error) {
	switch {
	case inputs <= 0:
		return nil, fmt.Errorf("link %s: non-positive input count %d", name, inputs)
	case rateNum <= 0 || rateDen <= 0:
		return nil, fmt.Errorf("link %s: non-positive rate %d/%d", name, rateNum, rateDen)
	case latency < 0:
		return nil, fmt.Errorf("link %s: negative latency %d", name, latency)
	case a == nil:
		return nil, fmt.Errorf("link %s: nil arbiter", name)
	case out == nil:
		return nil, fmt.Errorf("link %s: nil delivery sink", name)
	}
	return &Link{
		name:    name,
		num:     uint64(rateNum),
		den:     uint64(rateDen),
		latency: uint64(latency),
		arbiter: a,
		queues:  make([]ring.Buffer[queued], inputs),
		heads:   make([]*packet.Packet, inputs),
		out:     out,
	}, nil
}

// SetWaker registers the activity wake edge: w is invoked on every Enqueue,
// so the container that parked this link (because Idle() held) knows to tick
// it again. A nil waker (the default) leaves Enqueue unobserved — correct
// when the link is ticked exhaustively.
func (l *Link) SetWaker(w func()) { l.wake = w }

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Inputs returns the mux fan-in.
func (l *Link) Inputs() int { return len(l.queues) }

// Stats returns a copy of the activity counters.
func (l *Link) Stats() Stats { return l.stats }

// Instrument registers this link's metrics with r under prefix+Name() and
// wraps the arbiter with per-input grant/deny counters. It must be called
// before the first Tick and is a no-op on a nil registry, so uninstrumented
// runs keep the bare arbiter and a nil probe pointer (probe-freedom).
func (l *Link) Instrument(r *probe.Registry, prefix string) {
	if r == nil {
		return
	}
	base := prefix + l.name
	grants := make([]*probe.Counter, len(l.queues))
	denies := make([]*probe.Counter, len(l.queues))
	for i := range l.queues {
		grants[i] = r.Counter(fmt.Sprintf("%s/in%d/grants", base, i))
		denies[i] = r.Counter(fmt.Sprintf("%s/in%d/denies", base, i))
	}
	l.arbiter = arb.Counting(l.arbiter, grants, denies)
	l.pr = &linkProbes{
		occ:   r.Occupancy(base+"/occupancy", l.num),
		depth: r.Gauge(base + "/queue_depth"),
		wait:  r.Hist(base + "/queue_wait"),
	}
	if tr := r.Tracer(); tr != nil {
		l.pr.trace = tr
		l.pr.track = tr.Track(base)
	}
}

// Enqueue appends p to input queue in at cycle now. It panics on an invalid
// input index, which would indicate a miswired topology rather than a
// recoverable condition.
func (l *Link) Enqueue(now uint64, in int, p *packet.Packet) {
	if in < 0 || in >= len(l.queues) {
		panic(fmt.Sprintf("link %s: enqueue on input %d of %d", l.name, in, len(l.queues)))
	}
	l.queues[in].Push(queued{p: p, enqueued: now})
	if n := l.queues[in].Len(); n > l.stats.MaxQueueLen {
		l.stats.MaxQueueLen = n
	}
	if l.pr != nil {
		l.pr.depth.Add(1)
	}
	if l.wake != nil {
		l.wake()
	}
}

// QueueLen reports the occupancy of one input queue (tests and debugging).
func (l *Link) QueueLen(in int) int { return l.queues[in].Len() }

// Idle reports whether the link holds no queued or in-flight packets. An
// idle link's Tick is a no-op, so the scheduler may park it until the next
// Enqueue.
func (l *Link) Idle() bool {
	if l.pipe.Len() > 0 {
		return false
	}
	for i := range l.queues {
		if l.queues[i].Len() > 0 {
			return false
		}
	}
	return true
}

// Tick advances the link by one cycle: due packets are delivered downstream,
// then as many new grants as the channel bandwidth allows within this cycle
// are issued. Tick must be called with strictly increasing cycle numbers.
func (l *Link) Tick(now uint64) {
	// Phase 1: delivery. The pipe is FIFO because serialization-end times
	// are monotonic.
	for l.pipe.Len() > 0 && l.pipe.Front().deliverAt <= now {
		f := l.pipe.Pop()
		l.out(now, f.p)
	}

	// Phase 2: arbitration and serialization. The channel becomes free at
	// scaled time lastEnd; grants may start any time within [now, now+1).
	nowScaled := now * l.num
	if l.lastEnd < nowScaled {
		l.lastEnd = nowScaled // bandwidth does not accumulate while idle
	}
	for l.lastEnd < (now+1)*l.num {
		loaded := false
		for i := range l.queues {
			if l.queues[i].Len() > 0 {
				l.heads[i] = l.queues[i].Front().p
				loaded = true
			} else {
				l.heads[i] = nil
			}
		}
		if !loaded {
			return
		}
		g := l.arbiter.Grant(now, l.heads)
		if g < 0 {
			return // SRR idle slot: bandwidth burns, nothing moves
		}
		item := l.queues[g].Pop()

		flits := uint64(item.p.Flits())
		l.lastEnd += flits * l.den
		// Serialization finishes at ceil(lastEnd/num) cycles.
		doneCycle := (l.lastEnd + l.num - 1) / l.num
		l.pipe.Push(inflight{p: item.p, deliverAt: doneCycle + l.latency})

		l.stats.Packets++
		l.stats.Flits += flits
		l.stats.QueueWait += now - item.enqueued

		if l.pr != nil {
			l.pr.occ.AddBusy(flits * l.den)
			l.pr.wait.Observe(now - item.enqueued)
			l.pr.depth.Add(-1)
			if l.pr.trace != nil {
				l.pr.trace.Span(l.pr.track, item.p.Kind.String(), item.enqueued, doneCycle+l.latency)
			}
		}
	}
}
