// The tick-model analyzer. Simulator components are strictly lock-free: the
// tick loop drives every component from a fixed order, and cross-component
// communication happens through synchronous callbacks inside the tick. So in
// the engine and every package below it, goroutines, channels, selects, and
// the sync/sync-atomic packages are banned outright. Two sanctioned tiers
// are declared in the rule table, neither needing waiver comments:
//
//   - AtomicAllow (config.CycleMeter, the shared cycle counter that never
//     influences simulation behavior): the type's declaration and methods
//     may use sync/atomic;
//   - ParallelFiles (the engine-parallel tier: internal/engine/parallel.go,
//     the sharded tick loop's worker pool): the whole file is exempt,
//     because it is where the engine's one piece of synchronization — the
//     phase barrier — lives. The rest of its package stays banned.

package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strconv"
)

func tickModelAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "tickmodel",
		Doc:  "ban goroutines, channels, and sync primitives in engine-and-below packages",
		Run:  runTickModel,
	}
}

func runTickModel(pass *Pass) {
	if !pass.Rules.TickModel.Scope.Match(pass.Pkg.Rel) {
		return
	}
	bannedImports := make(map[string]bool, len(pass.Rules.TickModel.BannedImports))
	for _, b := range pass.Rules.TickModel.BannedImports {
		bannedImports[b] = true
	}
	allowedRanges, hasAllowedType := sanctionedRanges(pass)
	inSanctioned := func(pos token.Pos) bool {
		for _, r := range allowedRanges {
			if pos >= r[0] && pos <= r[1] {
				return true
			}
		}
		return false
	}

	for _, f := range pass.Pkg.Files {
		if isParallelFile(pass, f) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !bannedImports[path] {
				continue
			}
			// With a sanctioned type in this package the import itself is
			// fine; stray uses outside that type are still flagged below.
			if !hasAllowedType {
				pass.Report(imp.Pos(),
					"import of %q in tick-model code: the engine and everything below it is strictly single-goroutine (parallelism lives across engine instances, one level up)",
					path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !inSanctioned(n.Pos()) {
					pass.Report(n.Pos(), "go statement in tick-model code: the engine ticks all components from one goroutine")
				}
			case *ast.SelectStmt:
				if !inSanctioned(n.Pos()) {
					pass.Report(n.Pos(), "select statement in tick-model code: no channels inside the tick loop")
				}
			case *ast.SendStmt:
				if !inSanctioned(n.Pos()) {
					pass.Report(n.Pos(), "channel send in tick-model code: components communicate through synchronous callbacks inside the tick")
				}
			case *ast.ChanType:
				if !inSanctioned(n.Pos()) {
					pass.Report(n.Pos(), "channel type in tick-model code: components communicate through synchronous callbacks inside the tick")
				}
			case *ast.SelectorExpr:
				if path, ok := pass.Pkg.Qualifier(f, n); ok && bannedImports[path] && !inSanctioned(n.Pos()) {
					pass.Report(n.Pos(),
						"use of %s.%s in tick-model code: simulator components take no locks (the only sanctioned atomic is declared in the rule table)",
						path, n.Sel.Name)
				}
			}
			return true
		})
	}
}

// isParallelFile reports whether f is a ParallelFiles entry for this
// package — the engine-parallel tier, exempt from the tick-model bans.
func isParallelFile(pass *Pass, f *ast.File) bool {
	base := filepath.Base(pass.Pkg.Fset.Position(f.Pos()).Filename)
	for _, ref := range pass.Rules.TickModel.ParallelFiles {
		if ref.Package == pass.Pkg.Rel && ref.File == base {
			return true
		}
	}
	return false
}

// sanctionedRanges returns the source ranges of every AtomicAllow type
// declared in this package — the type's declaration group plus its methods —
// and whether this package has any such type at all.
func sanctionedRanges(pass *Pass) ([][2]token.Pos, bool) {
	var names []string
	for _, ref := range pass.Rules.TickModel.AtomicAllow {
		if ref.Package == pass.Pkg.Rel {
			names = append(names, ref.Type)
		}
	}
	if len(names) == 0 {
		return nil, false
	}
	isAllowed := func(name string) bool {
		for _, n := range names {
			if n == name {
				return true
			}
		}
		return false
	}

	var ranges [][2]token.Pos
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if ok && isAllowed(ts.Name.Name) {
						ranges = append(ranges, [2]token.Pos{ts.Pos(), ts.End()})
					}
				}
			case *ast.FuncDecl:
				if decl.Recv != nil && isAllowed(receiverTypeName(decl)) {
					ranges = append(ranges, [2]token.Pos{decl.Pos(), decl.End()})
				}
			}
		}
	}
	return ranges, true
}

// receiverTypeName returns the bare receiver type name of a method ("" when
// it cannot be determined syntactically).
func receiverTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip generic instantiation if present.
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
