package dram

import (
	"testing"
	"testing/quick"

	"gpunoc/internal/config"
)

func timing() config.DRAMTiming { return config.Volta().DRAM }

func mkMC(t *testing.T) *Controller {
	t.Helper()
	mc, err := NewController(timing(), 16, 2048, 64)
	if err != nil {
		t.Fatal(err)
	}
	return mc
}

func TestNewControllerValidation(t *testing.T) {
	tm := timing()
	if _, err := NewController(tm, 0, 2048, 64); err == nil {
		t.Error("zero banks should fail")
	}
	if _, err := NewController(tm, 16, 1000, 64); err == nil {
		t.Error("non-power-of-two row should fail")
	}
	if _, err := NewController(tm, 16, 2048, 0); err == nil {
		t.Error("zero capacity should fail")
	}
	bad := tm
	bad.TRC = bad.TRAS - 1
	if _, err := NewController(bad, 16, 2048, 64); err == nil {
		t.Error("tRC < tRAS should fail")
	}
}

// TestColdAccessLatency pins the first-access latency: activate (tRCD) plus
// CAS (tCL) from an idle bank.
func TestColdAccessLatency(t *testing.T) {
	mc := mkMC(t)
	var done uint64
	mc.Enqueue(0, &Request{Addr: 0, Done: func(now uint64) { done = now }})
	mc.Tick(0)
	tm := timing()
	want := uint64(tm.TRCD + tm.TCL) // 24
	if done != want {
		t.Errorf("cold access done at %d, want %d", done, want)
	}
}

// TestRowHitFasterThanConflict verifies open-row locality: a second access
// to the same row completes after only tCL, while a different row in the
// same bank pays precharge + activate.
func TestRowHitFasterThanConflict(t *testing.T) {
	run := func(second uint64) uint64 {
		mc := mkMC(t)
		var done uint64
		mc.Enqueue(0, &Request{Addr: 0, Done: func(uint64) {}})
		mc.Enqueue(0, &Request{Addr: second, Done: func(now uint64) { done = now }})
		for now := uint64(0); !mc.Idle(); now++ {
			mc.Tick(now)
		}
		return done
	}
	hit := run(64)                 // same row (rows are 2048B)
	conflict := run(16 * 2048 * 4) // same bank (16 banks), different row
	if hit >= conflict {
		t.Errorf("row hit (%d) not faster than conflict (%d)", hit, conflict)
	}
	if st := mkMC(t).Stats(); st.Served != 0 {
		t.Error("fresh controller has non-zero stats")
	}
}

func TestRowHitCounters(t *testing.T) {
	mc := mkMC(t)
	mc.Enqueue(0, &Request{Addr: 0, Done: func(uint64) {}})
	mc.Enqueue(0, &Request{Addr: 32, Done: func(uint64) {}})
	for now := uint64(0); !mc.Idle(); now++ {
		mc.Tick(now)
	}
	st := mc.Stats()
	if st.RowMisses != 1 || st.RowHits != 1 || st.Served != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueueCapacity(t *testing.T) {
	mc, err := NewController(timing(), 16, 2048, 2)
	if err != nil {
		t.Fatal(err)
	}
	ok1 := mc.Enqueue(0, &Request{Addr: 0, Done: func(uint64) {}})
	ok2 := mc.Enqueue(0, &Request{Addr: 64, Done: func(uint64) {}})
	ok3 := mc.Enqueue(0, &Request{Addr: 128, Done: func(uint64) {}})
	if !ok1 || !ok2 || ok3 {
		t.Errorf("enqueue results %v/%v/%v, want true/true/false", ok1, ok2, ok3)
	}
	if st := mc.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d", st.Rejected)
	}
	if mc.Pending() != 2 {
		t.Errorf("pending = %d", mc.Pending())
	}
}

func TestNilDonePanics(t *testing.T) {
	mc := mkMC(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nil Done")
		}
	}()
	mc.Enqueue(0, &Request{Addr: 0})
}

// TestBankParallelism: requests to different banks overlap, so N requests to
// N banks finish far sooner than N requests to one bank.
func TestBankParallelism(t *testing.T) {
	run := func(stride uint64) uint64 {
		mc := mkMC(t)
		var last uint64
		for i := uint64(0); i < 8; i++ {
			mc.Enqueue(0, &Request{Addr: i * stride, Done: func(now uint64) {
				if now > last {
					last = now
				}
			}})
		}
		for now := uint64(0); !mc.Idle(); now++ {
			mc.Tick(now)
		}
		return last
	}
	spread := run(2048)            // one request per bank
	sameBank := run(2048 * 16 * 2) // all in bank 0, distinct rows
	if float64(sameBank) < 2*float64(spread) {
		t.Errorf("bank parallelism missing: spread=%d sameBank=%d", spread, sameBank)
	}
}

// Property: Done fires exactly once per request and never before the request
// was enqueued, under random address mixes.
func TestQuickCompletionDiscipline(t *testing.T) {
	f := func(addrs []uint32) bool {
		if len(addrs) > 60 {
			addrs = addrs[:60]
		}
		mc, err := NewController(timing(), 8, 1024, 64)
		if err != nil {
			return false
		}
		fired := make([]int, len(addrs))
		enqueuedAt := make([]uint64, len(addrs))
		for i, a := range addrs {
			i := i
			enqueuedAt[i] = uint64(i)
			if !mc.Enqueue(uint64(i), &Request{Addr: uint64(a), Done: func(now uint64) {
				fired[i]++
				if now < enqueuedAt[i] {
					fired[i] = 99 // flag: completed before enqueue
				}
			}}) {
				fired[i] = 1 // rejected; treat as accounted for
			}
			mc.Tick(uint64(i))
		}
		for now := uint64(len(addrs)); now < 1_000_000 && !mc.Idle(); now++ {
			mc.Tick(now)
		}
		for _, n := range fired {
			if n != 1 {
				return false
			}
		}
		return mc.Idle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: per-bank command spacing respects tRC between activates. We
// approximate by checking that k same-bank row conflicts take at least
// k*tRC - slack cycles in total.
func TestQuickSameBankRespectsTRC(t *testing.T) {
	tm := timing()
	f := func(n uint8) bool {
		k := int(n%6) + 2
		mc, err := NewController(tm, 8, 1024, 64)
		if err != nil {
			return false
		}
		var last uint64
		for i := 0; i < k; i++ {
			// Same bank (8 banks, 1024B rows), different row each time.
			addr := uint64(i) * 1024 * 8
			mc.Enqueue(0, &Request{Addr: addr, Done: func(now uint64) { last = now }})
		}
		for now := uint64(0); !mc.Idle(); now++ {
			mc.Tick(now)
		}
		// k activates on one bank need at least (k-1)*tRC cycles.
		return last >= uint64((k-1)*tm.TRC)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
