package core

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if TPCChannel.String() != "TPC" || GPCChannel.String() != "GPC" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind name wrong")
	}
}

func TestWithDefaults(t *testing.T) {
	p, err := Params{Kind: TPCChannel}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if p.Iterations != 4 || p.SenderWarps != 5 || p.BitsPerSymbol != 1 {
		t.Errorf("TPC defaults = %+v", p)
	}
	if p.SlotCycles == 0 || p.SyncModulus == 0 || p.InitModulus < p.SyncModulus {
		t.Errorf("derived timing wrong: %+v", p)
	}
	if p.SyncModulus&(p.SyncModulus-1) != 0 {
		t.Errorf("sync modulus %d not a power of two", p.SyncModulus)
	}
	g, err := Params{Kind: GPCChannel}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if g.SenderWarps != 8 {
		t.Errorf("GPC default warps = %d, want 8 (paper §4.5)", g.SenderWarps)
	}
	if g.SlotCycles <= p.SlotCycles {
		t.Error("GPC slot should exceed TPC slot (paper: higher T)")
	}
}

func TestWithDefaultsValidation(t *testing.T) {
	bad := []Params{
		{BitsPerSymbol: 3},
		{Iterations: -1},
		{SenderWarps: -2},
		{SyncPeriod: -1},
		{BitsPerSymbol: 2, Thresholds: []float64{250}},           // need 3 cutpoints
		{BitsPerSymbol: 2, Thresholds: []float64{250, 240, 260}}, // not increasing
	}
	for i, p := range bad {
		if _, err := p.withDefaults(); err == nil {
			t.Errorf("case %d should fail: %+v", i, p)
		}
	}
}

// TestLevelLanes pins the §5 multi-level mapping: 0/8/16/32 unique requests
// for the 2-bit channel; 0/32 for binary.
func TestLevelLanes(t *testing.T) {
	p2 := Params{BitsPerSymbol: 2}
	for sym, want := range map[int]int{0: 0, 1: 10, 2: 21, 3: 32} {
		if got := p2.LevelLanes(sym, 32); got != want {
			t.Errorf("2-bit LevelLanes(%d) = %d, want %d", sym, got, want)
		}
	}
	p1 := Params{BitsPerSymbol: 1}
	if p1.LevelLanes(0, 32) != 0 || p1.LevelLanes(1, 32) != 32 {
		t.Error("binary lanes wrong")
	}
	// Out-of-range symbols clamp.
	if p1.LevelLanes(7, 32) != 32 {
		t.Error("clamping failed")
	}
	// Fig 13: coalesced sender always emits a single request.
	pc := Params{BitsPerSymbol: 1, SenderCoalesced: true}
	if pc.LevelLanes(1, 32) != 1 {
		t.Error("coalesced sender should use one lane")
	}
}

func TestDefaultSlotMonotone(t *testing.T) {
	for _, k := range []Kind{TPCChannel, GPCChannel} {
		prev := uint64(0)
		for it := 1; it <= 5; it++ {
			s := DefaultSlot(k, it)
			if s <= prev {
				t.Fatalf("%v slot not increasing at iter %d", k, it)
			}
			prev = s
		}
	}
}

func TestOpShare(t *testing.T) {
	// 4 ops over 5 warps: first four warps take one each.
	got := []int{}
	for w := 0; w < 6; w++ {
		got = append(got, opShare(4, 5, w))
	}
	want := []int{1, 1, 1, 1, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("opShare = %v, want %v", got, want)
		}
	}
}

// Property: opShare partitions the op budget exactly.
func TestQuickOpSharePartition(t *testing.T) {
	f := func(totalRaw, warpsRaw uint8) bool {
		total := int(totalRaw % 64)
		warps := int(warpsRaw%16) + 1
		sum := 0
		for w := 0; w < warps; w++ {
			n := opShare(total, warps, w)
			if n < 0 {
				return false
			}
			sum += n
		}
		return sum == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: defaults are idempotent — applying them twice changes nothing.
func TestQuickDefaultsIdempotent(t *testing.T) {
	f := func(iterRaw, warpRaw uint8, gpc bool) bool {
		p := Params{Iterations: int(iterRaw%6) + 1, SenderWarps: int(warpRaw%8) + 1}
		if gpc {
			p.Kind = GPCChannel
		}
		a, err := p.withDefaults()
		if err != nil {
			return false
		}
		b, err := a.withDefaults()
		if err != nil {
			return false
		}
		return a.SlotCycles == b.SlotCycles && a.SyncModulus == b.SyncModulus &&
			a.InitModulus == b.InitModulus && a.Threshold == b.Threshold
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
