package baseline

import (
	"testing"

	"gpunoc/internal/config"
	"gpunoc/internal/core"
)

func smallCfg() config.Config {
	c := config.Small()
	c.WarpIssueJitter = 32
	return c
}

func TestRunPrimeProbeValidation(t *testing.T) {
	cfg := smallCfg()
	if _, err := RunPrimeProbe(&cfg, PrimeProbeParams{}); err == nil {
		t.Error("empty payload should fail")
	}
}

func TestRunAtomicValidation(t *testing.T) {
	cfg := smallCfg()
	if _, err := RunAtomic(&cfg, AtomicParams{}); err == nil {
		t.Error("empty payload should fail")
	}
}

// TestPrimeProbeCarriesBits: the intra-SM L1 channel transmits an
// alternating pattern with better-than-random accuracy.
func TestPrimeProbeCarriesBits(t *testing.T) {
	cfg := smallCfg()
	bits := core.AlternatingPayload(32, 2)
	res, err := RunPrimeProbe(&cfg, PrimeProbeParams{Bits: bits})
	if err != nil {
		t.Fatal(err)
	}
	if res.BitsSent != 32 {
		t.Errorf("BitsSent = %d", res.BitsSent)
	}
	if res.ErrorRate > 0.15 {
		t.Errorf("prime+probe error rate %.3f too high", res.ErrorRate)
	}
	if res.BitsPerSecond <= 0 {
		t.Error("no bandwidth measured")
	}
}

// TestAtomicCarriesBits: the global-memory channel transmits with
// better-than-random accuracy.
func TestAtomicCarriesBits(t *testing.T) {
	cfg := smallCfg()
	bits := core.AlternatingPayload(32, 2)
	res, err := RunAtomic(&cfg, AtomicParams{Bits: bits})
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRate > 0.15 {
		t.Errorf("atomic channel error rate %.3f too high", res.ErrorRate)
	}
	if res.BitsPerSecond <= 0 {
		t.Error("no bandwidth measured")
	}
}

// TestBaselinesSlowerThanInterconnect reproduces the Table 2 ordering: the
// paper's TPC interconnect channel outruns both baselines on the same GPU.
func TestBaselinesSlowerThanInterconnect(t *testing.T) {
	cfg := smallCfg()
	bits := core.AlternatingPayload(32, 2)

	pp, err := RunPrimeProbe(&cfg, PrimeProbeParams{Bits: bits})
	if err != nil {
		t.Fatal(err)
	}
	at, err := RunAtomic(&cfg, AtomicParams{Bits: bits})
	if err != nil {
		t.Fatal(err)
	}

	p, err := core.Calibrate(&cfg, core.Params{Kind: core.TPCChannel, Iterations: 4, SyncPeriod: 16, Seed: 3}, 24)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.NewTPCTransmission(&cfg, bits, []int{0}, p)
	if err != nil {
		t.Fatal(err)
	}
	tpc, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The baselines run at generous slot sizes on this idealized simulator,
	// so the assertion is the Table 2 ordering with margin, not the paper's
	// raw orders-of-magnitude gap (which the multi-TPC channel does show).
	if tpc.BitsPerSecond <= pp.BitsPerSecond*1.5 {
		t.Errorf("TPC channel (%.0f bps) should clearly outrun prime+probe (%.0f bps)",
			tpc.BitsPerSecond, pp.BitsPerSecond)
	}
	if tpc.BitsPerSecond <= at.BitsPerSecond*1.5 {
		t.Errorf("TPC channel (%.0f bps) should clearly outrun atomics (%.0f bps)",
			tpc.BitsPerSecond, at.BitsPerSecond)
	}
}
