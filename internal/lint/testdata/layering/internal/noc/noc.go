// Fixture: noc may import link, but never experiments — nothing below the
// experiment layer may import it back.
package noc

import (
	_ "gpunoc/internal/experiments"
	_ "gpunoc/internal/link"
)
