// Checkpoint support for the instrumentation registry. Instrument values are
// encoded sorted by name within each kind and restored by name onto the
// restoring engine's registry, creating any instrument not yet registered —
// so metric deltas across a restore match an uninterrupted run exactly. The
// trace ring is deliberately not serializable: engine.(*GPU).Snapshot
// refuses to snapshot a tracing registry.
package probe

import "gpunoc/internal/snap"

// Marshal appends every registered metric of r (which may be nil — the
// uninstrumented fast path encodes as an absent registry) to the encoder.
func Marshal(e *snap.Encoder, r *Registry) {
	e.Mark("probe")
	e.Bool(r != nil)
	if r == nil {
		return
	}
	names := sortedKeys(r.counters)
	e.Int(len(names))
	for _, name := range names {
		e.String(name)
		e.U64(r.counters[name].n)
	}
	names = sortedKeys(r.gauges)
	e.Int(len(names))
	for _, name := range names {
		g := r.gauges[name]
		e.String(name)
		e.I64(g.v)
		e.I64(g.max)
	}
	names = sortedKeys(r.hists)
	e.Int(len(names))
	for _, name := range names {
		h := r.hists[name]
		e.String(name)
		e.U64(h.count)
		e.U64(h.sum)
		e.U64(h.max)
		for _, b := range h.buckets {
			e.U64(b)
		}
	}
	names = sortedKeys(r.occs)
	e.Int(len(names))
	for _, name := range names {
		o := r.occs[name]
		e.String(name)
		e.U64(o.busy)
		e.U64(o.unitsPerCyc)
	}
}

// Unmarshal reads metrics written by Marshal into r, resolving instruments
// by name and registering any the restoring engine has not touched yet. A
// nil r consumes the section and discards the values (restoring an
// instrumented snapshot into an uninstrumented engine drops its metrics,
// mirroring how an uninstrumented run never had them).
func Unmarshal(d *snap.Decoder, r *Registry) error {
	d.Expect("probe")
	if !d.Bool() {
		return d.Err()
	}
	n := d.Len()
	for i := 0; i < n; i++ {
		name := d.String()
		v := d.U64()
		if c := r.Counter(name); c != nil {
			c.n = v
		}
	}
	n = d.Len()
	for i := 0; i < n; i++ {
		name := d.String()
		v := d.I64()
		max := d.I64()
		if g := r.Gauge(name); g != nil {
			g.v = v
			g.max = max
		}
	}
	n = d.Len()
	for i := 0; i < n; i++ {
		name := d.String()
		h := r.Hist(name)
		if h == nil {
			h = &Hist{}
		}
		h.count = d.U64()
		h.sum = d.U64()
		h.max = d.U64()
		for b := range h.buckets {
			h.buckets[b] = d.U64()
		}
	}
	n = d.Len()
	for i := 0; i < n; i++ {
		name := d.String()
		busy := d.U64()
		units := d.U64()
		if o := r.Occupancy(name, units); o != nil {
			o.busy = busy
			o.unitsPerCyc = units
		}
	}
	return d.Err()
}
