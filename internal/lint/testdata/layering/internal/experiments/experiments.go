// Fixture: stands in for the real experiment suite.
package experiments

// Count is a placeholder.
const Count = 0
