package mesh

import (
	"fmt"
	"strings"
	"testing"

	"gpunoc/internal/config"
	"gpunoc/internal/device"
	"gpunoc/internal/engine"
)

// streamerSpec builds a one-block kernel of warps streamers over
// [base, base+window) and returns the spec plus the per-warp streamers for
// latency inspection.
func streamerSpec(name string, warps, count int, base, window uint64, write bool, lineBytes int) (device.KernelSpec, *[]*device.Streamer) {
	progs := &[]*device.Streamer{}
	spec := device.KernelSpec{
		Name:          name,
		Blocks:        1,
		WarpsPerBlock: warps,
		New: func(b, w int) device.Program {
			s := &device.Streamer{
				Base:        base + uint64(w)*window,
				LineBytes:   lineBytes,
				Write:       write,
				Count:       count,
				Uncoalesced: true,
				WrapBytes:   window,
			}
			*progs = append(*progs, s)
			return s
		},
	}
	return spec, progs
}

func meanLatency(progs *[]*device.Streamer) float64 {
	var sum, n uint64
	for _, s := range *progs {
		for _, l := range s.Latencies {
			sum += l
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// TestMeshRemoteVsLocal pins the headline NVLink effect: the same read
// stream is slower against a remote device's memory than against local
// memory, by at least the two hop latencies.
func TestMeshRemoteVsLocal(t *testing.T) {
	cfg := config.Small()
	m, err := New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const window = uint64(8192)
	const count = 40
	lineBytes := cfg.L2LineBytes

	localSpec, localProgs := streamerSpec("local", 1, count, DevBase(0)+0x100000, window, false, lineBytes)
	m.Preload(0, DevBase(0)+0x100000, window)
	if _, err := m.Launch(0, localSpec); err != nil {
		t.Fatal(err)
	}
	if err := m.RunKernels(4_000_000); err != nil {
		t.Fatal(err)
	}

	remoteSpec, remoteProgs := streamerSpec("remote", 1, count, DevBase(1)+0x100000, window, false, lineBytes)
	m.Preload(1, DevBase(1)+0x100000, window)
	if _, err := m.Launch(0, remoteSpec); err != nil {
		t.Fatal(err)
	}
	if err := m.RunKernels(8_000_000); err != nil {
		t.Fatal(err)
	}

	local, remote := meanLatency(localProgs), meanLatency(remoteProgs)
	if local <= 0 || remote <= 0 {
		t.Fatalf("missing latencies: local %.1f remote %.1f", local, remote)
	}
	nv := cfg.NVLink.WithDefaults()
	if remote < local+float64(nv.HopLatency) {
		t.Errorf("remote mean %.1f not clearly above local %.1f (hop latency %d)",
			remote, local, nv.HopLatency)
	}
	// The cross-GPU packets must actually have crossed the fabric.
	var flits uint64
	for _, l := range m.Links() {
		flits += l.Stats().Flits
	}
	if flits == 0 {
		t.Error("no flits crossed the NVLink fabric")
	}
}

// launchCrossTraffic saturates the fabric in both directions: every SM of
// each device streams uncoalesced writes into the other device's window.
func launchCrossTraffic(t *testing.T, m *Mesh, count int) {
	t.Helper()
	cfg := m.GPU(0).Config()
	const window = uint64(8192)
	for d := 0; d < m.NumDevices(); d++ {
		peer := (d + 1) % m.NumDevices()
		base := DevBase(peer) + 0x200000 + uint64(d)*0x40000
		m.Preload(peer, base, window*uint64(cfg.NumSMs()))
		spec := device.KernelSpec{
			Name:          fmt.Sprintf("cross%d", d),
			Blocks:        cfg.NumSMs(),
			WarpsPerBlock: 2,
			New: func(b, w int) device.Program {
				return &device.Streamer{
					Base:        base + uint64(b)*window,
					LineBytes:   cfg.L2LineBytes,
					Write:       true,
					Count:       count,
					Uncoalesced: true,
					WrapBytes:   window,
				}
			},
		}
		if _, err := m.Launch(d, spec); err != nil {
			t.Fatal(err)
		}
	}
}

// signature captures every externally observable piece of mesh state.
func signature(m *Mesh) string {
	var b strings.Builder
	fmt.Fprintf(&b, "now=%d\n", m.Now())
	for d := 0; d < m.NumDevices(); d++ {
		g := m.GPU(d)
		st := g.Partition().Stats()
		fmt.Fprintf(&b, "dev%d now=%d served=%d hits=%d misses=%d", d, g.Now(), st.Served, st.Hits, st.Misses)
		for sm := 0; sm < g.Config().NumSMs(); sm++ {
			fmt.Fprintf(&b, " c%d=%d", sm, g.Clocks().Read64(sm, g.Now()))
		}
		for _, k := range g.Kernels() {
			fmt.Fprintf(&b, " k%d=%d/%d", k.ID, k.LaunchedAt, k.FinishedAt)
		}
		b.WriteString("\n")
	}
	for _, l := range m.Links() {
		s := l.Stats()
		fmt.Fprintf(&b, "link %s pk=%d fl=%d qw=%d mq=%d\n", l.Name(), s.Packets, s.Flits, s.QueueWait, s.MaxQueueLen)
	}
	return b.String()
}

// TestMeshLockstepDeterminism extends the PR-6 lockstep suite to a 2-GPU
// mesh: the same config and seed produce bit-identical clocks, partition
// stats, kernel timings, and fabric link stats — in checkpoints over 5000
// cycles — across repeated runs and across engine worker counts 1/2/4/8.
func TestMeshLockstepDeterminism(t *testing.T) {
	run := func(workers int) []string {
		cfg := config.Small()
		cfg.Seed = 7
		cfg.EngineWorkers = workers
		m, err := New(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		launchCrossTraffic(t, m, 400)
		var sigs []string
		for i := 0; i < 10; i++ {
			m.RunFor(500)
			sigs = append(sigs, signature(m))
		}
		return sigs
	}
	ref := run(1)
	again := run(1)
	for i := range ref {
		if ref[i] != again[i] {
			t.Fatalf("same-worker rerun diverged at checkpoint %d:\n%s\nvs\n%s", i, ref[i], again[i])
		}
	}
	for _, w := range []int{2, 4, 8} {
		got := run(w)
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("workers=%d diverged from workers=1 at checkpoint %d:\n%s\nvs\n%s",
					w, i, ref[i], got[i])
			}
		}
	}
}

// TestMeshSaturatedCrossGPU drives saturated bidirectional cross-GPU
// traffic to completion on the parallel engine. The CI -race leg runs it by
// name: every hand-off between SM shards, partition shards, the remote
// outboxes, and the fabric happens under the race detector.
func TestMeshSaturatedCrossGPU(t *testing.T) {
	cfg := config.Small()
	cfg.EngineWorkers = 4
	m, err := New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.GPU(0).Workers() < 2 {
		t.Fatalf("parallel engine did not engage (workers=%d)", m.GPU(0).Workers())
	}
	launchCrossTraffic(t, m, 200)
	if err := m.RunKernels(20_000_000); err != nil {
		t.Fatal(err)
	}
	var flits uint64
	for _, l := range m.Links() {
		flits += l.Stats().Flits
	}
	if flits == 0 {
		t.Fatal("saturated run moved no flits across the fabric")
	}
}

// TestMeshDeviceSeedsDiffer pins the per-device seed derivation: meshed
// GPUs must not replay one RNG stream. The clock-register offsets are a
// direct function of the config seed, so two devices agreeing on every SM's
// offset would mean aliased seeds.
func TestMeshDeviceSeedsDiffer(t *testing.T) {
	cfg := config.Small()
	m, err := New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if s0, s1 := m.GPU(0).Config().Seed, m.GPU(1).Config().Seed; s0 == s1 {
		t.Fatalf("devices share seed %d", s0)
	}
	if m.GPU(0).Config().Seed != cfg.Seed {
		t.Errorf("device 0 must keep the base seed %d, got %d", cfg.Seed, m.GPU(0).Config().Seed)
	}
	same := true
	for sm := 0; sm < cfg.NumSMs(); sm++ {
		if m.GPU(0).Clocks().Read64(sm, 0) != m.GPU(1).Clocks().Read64(sm, 0) {
			same = false
			break
		}
	}
	if same {
		t.Error("devices 0 and 1 drew identical clock-offset sequences")
	}
	// Derivation is itself deterministic.
	if config.DeviceSeed(cfg.Seed, 1) != config.DeviceSeed(cfg.Seed, 1) {
		t.Error("DeviceSeed is not deterministic")
	}
	if config.DeviceSeed(cfg.Seed, 1) == config.DeviceSeed(cfg.Seed, 2) {
		t.Error("DeviceSeed collides across devices")
	}
}

// TestMeshRejectsAliasedConfigs pins the un-aliasing validation: hand-built
// device configs sharing one probe registry or meter are rejected before
// any engine is built.
func TestMeshRejectsAliasedConfigs(t *testing.T) {
	a := config.Small()
	a.Meter = &config.CycleMeter{}
	b := a // shares the meter pointer
	if err := ValidateUnaliased([]config.Config{a, b}); err == nil {
		t.Error("shared meter not rejected")
	}
	c := a.Clone()
	if err := ValidateUnaliased([]config.Config{a, c}); err != nil {
		t.Errorf("cloned configs rejected: %v", err)
	}
}

// TestMeshSingleDeviceMatchesStandalone pins the degenerate case: a
// 1-device mesh is bit-identical to a standalone engine with the same
// config — same kernel timings, same partition stats, same clock.
func TestMeshSingleDeviceMatchesStandalone(t *testing.T) {
	cfg := config.Small()
	cfg.Seed = 5

	m, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	spec, _ := streamerSpec("solo", 2, 50, 0x40000, 8192, true, cfg.L2LineBytes)
	m.Preload(0, 0x40000, 2*8192)
	if _, err := m.Launch(0, spec); err != nil {
		t.Fatal(err)
	}
	if err := m.RunKernels(4_000_000); err != nil {
		t.Fatal(err)
	}

	g, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	spec2, _ := streamerSpec("solo", 2, 50, 0x40000, 8192, true, cfg.L2LineBytes)
	g.Preload(0x40000, 2*8192)
	if _, err := g.Launch(spec2); err != nil {
		t.Fatal(err)
	}
	if err := g.RunKernels(4_000_000); err != nil {
		t.Fatal(err)
	}

	mk, gk := m.GPU(0).Kernels()[0], g.Kernels()[0]
	if mk.Duration() != gk.Duration() {
		t.Errorf("kernel duration diverged: mesh %d standalone %d", mk.Duration(), gk.Duration())
	}
	ms, gs := m.GPU(0).Partition().Stats(), g.Partition().Stats()
	if ms != gs {
		t.Errorf("partition stats diverged: mesh %+v standalone %+v", ms, gs)
	}
}

// TestMeshTopologies runs the same cross-GPU workload over each topology on
// 4 devices and checks traffic completes with the expected fabric shape.
func TestMeshTopologies(t *testing.T) {
	for _, topo := range []config.MeshTopology{config.TopoFullMesh, config.TopoRing, config.TopoNVSwitch} {
		topo := topo
		t.Run(topo.String(), func(t *testing.T) {
			cfg := config.Small()
			cfg.NVLink.Topology = topo
			m, err := New(cfg, 4)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			wantLinks := map[config.MeshTopology]int{
				config.TopoFullMesh: 12, // ordered pairs
				config.TopoRing:     8,  // cw + ccw per device
				config.TopoNVSwitch: 8,  // ingress + egress per device
			}[topo]
			if got := len(m.Links()); got != wantLinks {
				t.Fatalf("topology %v built %d links, want %d", topo, got, wantLinks)
			}
			// Device 0 writes into device 2's window: distance 2 on the
			// ring (a forwarded route), one switch traversal, or a direct
			// link.
			const window = uint64(8192)
			base := DevBase(2) + 0x80000
			m.Preload(2, base, window)
			spec, progs := streamerSpec("hop", 1, 30, base, window, true, cfg.L2LineBytes)
			if _, err := m.Launch(0, spec); err != nil {
				t.Fatal(err)
			}
			if err := m.RunKernels(8_000_000); err != nil {
				t.Fatal(err)
			}
			if mean := meanLatency(progs); mean <= 0 {
				t.Error("no latencies recorded")
			}
		})
	}
}
