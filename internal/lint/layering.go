// The layering analyzer: enforces the import DAG declared in rules.go (the
// one-table form of the docs/ARCHITECTURE.md package map). Arrows only point
// downward; a package may import exactly the module-local packages its table
// entry lists, and a package with no entry is itself a finding so the table
// grows with the module.

package lint

import (
	"strconv"
	"strings"
)

func layeringAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "layering",
		Doc:  "enforce the import DAG declared in the layering table",
		Run:  runLayering,
	}
}

func runLayering(pass *Pass) {
	rel := pass.Pkg.Rel
	for _, root := range pass.Rules.Layering.Roots {
		if strings.HasPrefix(rel, root) || rel == strings.TrimSuffix(root, "/") {
			return // binaries and examples may import anything
		}
	}

	allowed, ok := pass.Rules.Layering.Allowed[rel]
	if !ok {
		pass.Report(pass.Pkg.Files[0].Name.Pos(),
			"package %q is not declared in the layering table; add it to Layering.Allowed in internal/lint/rules.go with the imports its layer permits",
			pass.Pkg.Path)
		return
	}
	allowedSet := make(map[string]bool, len(allowed))
	for _, a := range allowed {
		allowedSet[a] = true
	}

	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			irel, local := moduleRel(pass.Pkg.Module, path)
			if !local || allowedSet[irel] {
				continue
			}
			pass.Report(imp.Pos(),
				"layering violation: %q may not import %q (allowed: %s; see the layering table in internal/lint/rules.go)",
				pass.Pkg.Path, path, describeAllowed(allowed))
		}
	}
}

func describeAllowed(allowed []string) string {
	if len(allowed) == 0 {
		return "no module-local imports"
	}
	return strings.Join(allowed, ", ")
}
