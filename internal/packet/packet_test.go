package packet

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		ReadReq: "RD", WriteReq: "WR", ReadReply: "RDACK",
		WriteReply: "WRACK", AtomicReq: "ATOM", AtomicReply: "ATOMACK",
		Kind(42): "Kind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestIsRequest(t *testing.T) {
	reqs := []Kind{ReadReq, WriteReq, AtomicReq}
	reps := []Kind{ReadReply, WriteReply, AtomicReply}
	for _, k := range reqs {
		if !k.IsRequest() {
			t.Errorf("%v should be a request", k)
		}
	}
	for _, k := range reps {
		if k.IsRequest() {
			t.Errorf("%v should not be a request", k)
		}
	}
}

// TestFlitAsymmetry pins the data-carrying asymmetry the covert channel
// relies on: write requests are fat on the request path, read replies are
// fat on the reply path.
func TestFlitAsymmetry(t *testing.T) {
	if FlitsFor(WriteReq) <= FlitsFor(ReadReq) {
		t.Error("write requests must be larger than read requests")
	}
	if FlitsFor(ReadReply) <= FlitsFor(WriteReply) {
		t.Error("read replies must be larger than write acks")
	}
	if FlitsFor(WriteReq) != FlitsFor(ReadReply) {
		t.Error("data packets should be symmetric in size")
	}
	if FlitsFor(AtomicReq) != 2 || FlitsFor(AtomicReply) != 2 {
		t.Error("atomics carry an operand")
	}
}

func TestReplyKind(t *testing.T) {
	for req, rep := range map[Kind]Kind{
		ReadReq: ReadReply, WriteReq: WriteReply, AtomicReq: AtomicReply,
	} {
		got, err := ReplyKind(req)
		if err != nil || got != rep {
			t.Errorf("ReplyKind(%v) = %v, %v", req, got, err)
		}
	}
	for _, k := range []Kind{ReadReply, WriteReply, AtomicReply} {
		if _, err := ReplyKind(k); err == nil {
			t.Errorf("ReplyKind(%v) should fail", k)
		}
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{ID: 7, Kind: WriteReq, Tag: WarpTag{SM: 3, Warp: 2, Op: 9}, Addr: 0x1000, Slice: 5}
	s := p.String()
	for _, frag := range []string{"WR#7", "sm3", "w2", "op9", "0x1000", "slice=5"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	if p.Flits() != DataFlits {
		t.Errorf("Flits = %d", p.Flits())
	}
}

// Property: every request kind has a reply kind, and replies never ride the
// request subnet.
func TestQuickReplyKindClosure(t *testing.T) {
	f := func(raw uint8) bool {
		k := Kind(raw % 6)
		rep, err := ReplyKind(k)
		if k.IsRequest() {
			return err == nil && !rep.IsRequest()
		}
		return err != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
