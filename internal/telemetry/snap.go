// Checkpoint support for the telemetry sampler: the window clock, the next
// emission point, the window index, the previous metric snapshot windows are
// diffed against, and the EWMA state. Watchers are wiring — the restoring
// side reattaches its own, and windows emitted before the snapshot stay with
// whoever consumed them (the result cache stores them alongside the report).
package telemetry

import (
	"sort"

	"gpunoc/internal/probe"
	"gpunoc/internal/snap"
)

// Snapshot appends the sampler's mutable state to the encoder. Safe on a nil
// sampler (encoded as absent).
func (s *Sampler) Snapshot(e *snap.Encoder) {
	e.Mark("telemetry")
	e.Bool(s != nil)
	if s == nil {
		return
	}
	e.U64(s.window)
	e.F64(s.alpha)
	e.U64(s.clock)
	e.U64(s.nextAt)
	e.U64(s.index)
	encodeProbeSnapshot(e, s.prev)
	keys := make([]string, 0, len(s.ewma))
	for k := range s.ewma {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.Int(len(keys))
	for _, k := range keys {
		e.String(k)
		e.F64(s.ewma[k])
	}
}

// Restore reads state written by Snapshot into a sampler built from the same
// configuration. A snapshot holding sampler state restored into a nil
// sampler is consumed and discarded; restoring an absent-sampler snapshot
// into a live sampler leaves it at its freshly constructed state.
func (s *Sampler) Restore(d *snap.Decoder) error {
	d.Expect("telemetry")
	if !d.Bool() {
		return d.Err()
	}
	window := d.U64()
	alpha := d.F64()
	clock := d.U64()
	nextAt := d.U64()
	index := d.U64()
	prev := decodeProbeSnapshot(d)
	n := d.Len()
	ewma := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		k := d.String()
		ewma[k] = d.F64()
	}
	if err := d.Err(); err != nil || s == nil {
		return err
	}
	s.window = window
	s.alpha = alpha
	s.clock = clock
	s.nextAt = nextAt
	s.index = index
	s.prev = prev
	s.ewma = ewma
	return nil
}

// encodeProbeSnapshot appends one probe.Snapshot (already sorted by name
// within each kind) to the encoder.
func encodeProbeSnapshot(e *snap.Encoder, ps probe.Snapshot) {
	e.U64(ps.Cycles)
	e.Int(len(ps.Counters))
	for _, c := range ps.Counters {
		e.String(c.Name)
		e.U64(c.Value)
	}
	e.Int(len(ps.Gauges))
	for _, g := range ps.Gauges {
		e.String(g.Name)
		e.I64(g.Value)
		e.I64(g.Max)
	}
	e.Int(len(ps.Hists))
	for _, h := range ps.Hists {
		e.String(h.Name)
		e.U64(h.Sum)
		e.Int(h.Dist.Count)
		e.F64(h.Dist.Mean)
		e.F64(h.Dist.P50)
		e.F64(h.Dist.P95)
		e.F64(h.Dist.P99)
		e.F64(h.Dist.Max)
	}
	e.Int(len(ps.Occupancy))
	for _, o := range ps.Occupancy {
		e.String(o.Name)
		e.U64(o.Busy)
		e.U64(o.Units)
		e.F64(o.Value)
	}
}

// decodeProbeSnapshot reads one probe.Snapshot written by
// encodeProbeSnapshot.
func decodeProbeSnapshot(d *snap.Decoder) probe.Snapshot {
	var ps probe.Snapshot
	ps.Cycles = d.U64()
	n := d.Len()
	for i := 0; i < n; i++ {
		var c probe.CounterStat
		c.Name = d.String()
		c.Value = d.U64()
		ps.Counters = append(ps.Counters, c)
	}
	n = d.Len()
	for i := 0; i < n; i++ {
		var g probe.GaugeStat
		g.Name = d.String()
		g.Value = d.I64()
		g.Max = d.I64()
		ps.Gauges = append(ps.Gauges, g)
	}
	n = d.Len()
	for i := 0; i < n; i++ {
		var h probe.HistStat
		h.Name = d.String()
		h.Sum = d.U64()
		h.Dist.Count = d.Int()
		h.Dist.Mean = d.F64()
		h.Dist.P50 = d.F64()
		h.Dist.P95 = d.F64()
		h.Dist.P99 = d.F64()
		h.Dist.Max = d.F64()
		ps.Hists = append(ps.Hists, h)
	}
	n = d.Len()
	for i := 0; i < n; i++ {
		var o probe.OccStat
		o.Name = d.String()
		o.Busy = d.U64()
		o.Units = d.U64()
		o.Value = d.F64()
		ps.Occupancy = append(ps.Occupancy, o)
	}
	return ps
}
