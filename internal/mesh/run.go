// The mesh's global tick loop and run API, mirroring engine.RunFor /
// RunUntil / RunKernels at the multi-device level.
package mesh

import (
	"fmt"

	"gpunoc/internal/device"
	"gpunoc/internal/engine"
	"gpunoc/internal/link"
)

// NumDevices returns the number of GPUs in the mesh.
func (m *Mesh) NumDevices() int { return len(m.gpus) }

// GPU returns device d. Callers may launch kernels, preload memory, and
// inspect state through it, but must not step it — the mesh owns the clock.
func (m *Mesh) GPU(d int) *engine.GPU { return m.gpus[d] }

// Now returns the global cycle. Every device's engine.Now agrees with it.
func (m *Mesh) Now() uint64 { return m.now }

// Links returns the fabric links in canonical tick order, for stats and
// tests. Callers must not enqueue on or tick them.
func (m *Mesh) Links() []*link.Link { return m.links }

// Preload warms device d's L2 with the global address range
// [base, base+size) — base must lie in d's window.
func (m *Mesh) Preload(d int, base, size uint64) { m.gpus[d].Preload(base, size) }

// Launch places a kernel on device d at the current global cycle.
func (m *Mesh) Launch(d int, spec device.KernelSpec) (*engine.Kernel, error) {
	return m.gpus[d].Launch(spec)
}

// LaunchAt runs the whole mesh until global cycle at, then launches the
// kernel on device d — the multi-device analogue of engine.LaunchAt for
// modeling MPS-style launch skew.
func (m *Mesh) LaunchAt(d int, at uint64, spec device.KernelSpec) (*engine.Kernel, error) {
	if at < m.now {
		return nil, fmt.Errorf("mesh: launch cycle %d is in the past (now %d)", at, m.now)
	}
	m.RunFor(at - m.now)
	return m.Launch(d, spec)
}

// stepCycle advances the whole mesh one global cycle in the canonical
// order: per device ascending — deliver inbound packets, step the device,
// drain its outboxes onto first-hop links — then tick every fabric link in
// build order. Link deliveries land in inboxes and are consumed at the
// start of the destination's next cycle.
func (m *Mesh) stepCycle() {
	now := m.now
	for d, g := range m.gpus {
		if box := m.inbox[d]; len(box) != 0 {
			for _, p := range box {
				g.AcceptRemote(now, p)
			}
			m.inbox[d] = box[:0]
		}
		g.StepCycle()
		g.DrainRemote(m.drains[d])
	}
	for _, l := range m.links {
		l.Tick(now)
	}
	m.now++
}

// quiet reports whether no future cycle can do work: every device parked
// with empty outboxes, every fabric link drained, every inbox empty.
func (m *Mesh) quiet() bool {
	for _, g := range m.gpus {
		if !g.Quiet() {
			return false
		}
	}
	for _, l := range m.links {
		if !l.Idle() {
			return false
		}
	}
	for _, box := range m.inbox {
		if len(box) != 0 {
			return false
		}
	}
	return true
}

// skip fast-forwards the whole mesh n cycles: the caller must have
// established quiet(). Device clocks, fast-forward counters, and telemetry
// samplers all advance as if stepped.
func (m *Mesh) skip(n uint64) {
	for _, g := range m.gpus {
		g.SkipCycles(n)
	}
	m.now += n
}

// meterAdd records n global cycles: n per device on each device's own
// meter, and n per device on the base configuration's meter (the experiment
// runner's "cycles summed over every engine instance" convention).
func (m *Mesh) meterAdd(n uint64) {
	for _, c := range m.cfgs {
		c.Meter.Add(n)
	}
	m.meter.Add(n * uint64(len(m.gpus)))
}

// RunFor advances the mesh n global cycles, skipping quiet stretches in one
// jump exactly like engine.RunFor.
func (m *Mesh) RunFor(n uint64) {
	for i := uint64(0); i < n; i++ {
		if m.quiet() {
			m.skip(n - i)
			break
		}
		m.stepCycle()
	}
	m.meterAdd(n)
}

// RunUntil advances the mesh until cond returns true or the cycle budget is
// exhausted; it reports whether cond fired. Once the mesh is fully quiet
// with cond still false, the remaining budget is skipped in one jump and
// cond is evaluated once more at the final cycle (a quiet mesh's state is a
// pure function of the cycle number, so nothing in between could have
// fired it that does not fire at the end — cond should therefore not be a
// one-shot predicate of an intermediate cycle number).
func (m *Mesh) RunUntil(cond func() bool, budget uint64) bool {
	ran := uint64(0)
	defer func() { m.meterAdd(ran) }()
	for i := uint64(0); i < budget; i++ {
		if cond() {
			return true
		}
		if m.quiet() {
			skipped := budget - i
			m.skip(skipped)
			ran += skipped
			break
		}
		m.stepCycle()
		ran++
	}
	return cond()
}

// RunKernels runs until every kernel launched on every device has
// completed, with a global cycle budget to guard against livelock.
func (m *Mesh) RunKernels(budget uint64) error {
	ok := m.RunUntil(func() bool {
		for _, g := range m.gpus {
			for _, k := range g.Kernels() {
				if k.Running() {
					return false
				}
			}
		}
		return true
	}, budget)
	if !ok {
		return fmt.Errorf("mesh: kernels still running after %d-cycle budget", budget)
	}
	return nil
}

// Close releases every device's worker pool. Optional (finalizers cover
// collection), but polite in code that builds many meshes.
func (m *Mesh) Close() {
	for _, g := range m.gpus {
		g.Close()
	}
}
