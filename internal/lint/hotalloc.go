// The hotalloc analyzer generalizes the engine's two testing.AllocsPerRun
// spot checks into whole-call-graph coverage: every function reachable from
// the steady-state tick roots (Rules.HotAlloc.Roots — engine.(*GPU).step and
// the component Tick methods) is scanned for allocation sites. The sharded
// engine's scaling argument depends on the per-cycle path staying allocation
// free — a single make or interface boxing inside link.Tick shows up as GC
// pressure that the worker-count benchmarks attribute to contention.
//
// Flagged site kinds:
//
//   - make(...) of any kind;
//   - append(...), unless it is the reuse idiom `x = append(x, ...)` where x
//     is NOT a variable freshly declared in the same function (appending to a
//     field, parameter, or captured slice reuses steady-state capacity, as
//     the hand-off boxes do; appending to a fresh local allocates every call);
//   - composite literals with slice or map type, and &T{...} (heap-escaping
//     by construction); plain struct VALUE literals are not flagged — they
//     stay on the stack unless something else moves them;
//   - function-literal creation (the closure header allocates);
//   - string <-> []byte/[]rune conversions;
//   - interface boxing: passing or returning a concrete value where an
//     interface (including any) is expected, except pointer-shaped values
//     (pointers, channels, maps, funcs, unsafe.Pointer, nil) which box
//     without allocating.
//
// Everything inside a panic(...) argument is exempt: a panicking cycle is by
// definition not steady state. Cold paths reachable from a root (e.g. the
// kernel-completion bookkeeping that runs once per launch) are waived at the
// site with //lint:allow hotalloc <reason>. Known limit: there is no escape
// analysis, so `&local` of a non-composite (such as taking the address of a
// stack context struct) is not flagged even though it may escape.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

func hotAllocAnalyzer() *Analyzer {
	return &Analyzer{
		Name:       "hotalloc",
		Doc:        "no allocation sites reachable from the steady-state tick roots",
		RunProgram: runHotAlloc,
	}
}

func runHotAlloc(pass *ProgramPass) {
	r := &pass.Rules.HotAlloc
	if len(r.Roots) == 0 {
		pass.Disable()
		return
	}
	var roots []*CGNode
	for _, ref := range r.Roots {
		n := pass.Graph.Lookup(ref)
		if n == nil {
			// A tick root is missing, so this is a sub-pattern lint over a
			// partial call graph: still check what is reachable, but leave
			// idle waivers alone (unreachability here proves nothing).
			pass.Disable()
			continue
		}
		roots = append(roots, n)
	}
	if len(roots) == 0 {
		return
	}
	reach := pass.Graph.Reachable(roots)
	for _, n := range pass.Graph.Nodes {
		if reach[n] && r.Scope.Match(n.Pkg.Rel) {
			checkAllocs(pass, n)
		}
	}
}

// span is a half-open position range used for the panic-argument exemption.
type span struct{ lo, hi token.Pos }

func checkAllocs(pass *ProgramPass, n *CGNode) {
	info := n.Pkg.Info
	where := n.String()

	// Prepass 1: positions inside panic(...) arguments are exempt.
	var panics []span
	// Prepass 2: append calls matching the capacity-reuse idiom.
	reuse := map[*ast.CallExpr]bool{}
	bodyInspect(n.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					for _, a := range s.Args {
						panics = append(panics, span{a.Pos(), a.End()})
					}
				}
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 || !isBuiltin(info, call.Fun, "append") {
				return true
			}
			if types.ExprString(s.Lhs[0]) != types.ExprString(call.Args[0]) {
				return true
			}
			if root, ok := rootIdent(ast.Unparen(s.Lhs[0])); ok {
				if v, ok := info.Uses[root].(*types.Var); ok {
					if v.Pos() >= n.Body.Pos() && v.Pos() <= n.Body.End() {
						return true // fresh local: allocates every call
					}
				}
			}
			reuse[call] = true
		}
		return true
	})
	exempt := func(pos token.Pos) bool {
		for _, s := range panics {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}
	report := func(pos token.Pos, format string, args ...any) {
		if !exempt(pos) {
			pass.Report(pos, format, args...)
		}
	}

	bodyInspect(n.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.FuncLit:
			report(s.Pos(), "%s creates a closure on the steady-state tick path", where)
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				if _, ok := ast.Unparen(s.X).(*ast.CompositeLit); ok {
					report(s.Pos(), "%s heap-allocates a composite literal (&T{...}) on the tick path", where)
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[s]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(s.Pos(), "%s allocates a slice literal on the tick path", where)
				case *types.Map:
					report(s.Pos(), "%s allocates a map literal on the tick path", where)
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n, s, reuse, report)
		case *ast.ReturnStmt:
			checkReturnBoxing(n, s, report)
		}
		return true
	})
}

// checkCall flags allocating builtins, allocating conversions, and interface
// boxing at argument positions of one call.
func checkCall(pass *ProgramPass, n *CGNode, call *ast.CallExpr, reuse map[*ast.CallExpr]bool, report func(token.Pos, string, ...any)) {
	info := n.Pkg.Info
	where := n.String()

	// Conversions: T(x) where the operand crosses the string/byte-slice
	// boundary copies its payload.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && stringBytesConv(tv.Type, info.Types[call.Args[0]].Type) {
			report(call.Pos(), "%s converts between string and byte/rune slice on the tick path (copies)", where)
		}
		return
	}

	if isBuiltin(info, call.Fun, "make") {
		report(call.Pos(), "%s calls make on the steady-state tick path", where)
		return
	}
	if isBuiltin(info, call.Fun, "append") {
		if !reuse[call] {
			report(call.Pos(), "%s appends to a fresh slice on the tick path (not the x = append(x, ...) reuse idiom)", where)
		}
		return
	}

	// Interface boxing at argument positions.
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i, call.Ellipsis.IsValid())
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		report(arg.Pos(), "%s boxes a %s into %s at a call on the tick path", where, at.String(), pt.String())
	}
}

// checkReturnBoxing flags concrete values returned through interface results.
func checkReturnBoxing(n *CGNode, ret *ast.ReturnStmt, report func(token.Pos, string, ...any)) {
	sig := n.Sig()
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return // bare return or tuple-forwarding return: nothing to judge
	}
	info := n.Pkg.Info
	where := n.String()
	for i, res := range ret.Results {
		rt := sig.Results().At(i).Type()
		if !types.IsInterface(rt) {
			continue
		}
		at := info.Types[res].Type
		if at == nil || types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		report(res.Pos(), "%s boxes a %s into %s at a return on the tick path", where, at.String(), rt.String())
	}
}

// paramTypeAt resolves the effective parameter type for argument i, spreading
// the variadic tail (unless the call itself uses ...).
func paramTypeAt(sig *types.Signature, i int, ellipsis bool) types.Type {
	np := sig.Params().Len()
	if sig.Variadic() && !ellipsis && i >= np-1 {
		tail := sig.Params().At(np - 1).Type()
		if sl, ok := tail.Underlying().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= np {
		return nil
	}
	return sig.Params().At(i).Type()
}

// pointerShaped reports whether values of t fit in a pointer word and so box
// into an interface without allocating.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}

// stringBytesConv reports whether a conversion from `from` to `to` crosses
// the string / []byte / []rune boundary in either direction.
func stringBytesConv(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteish := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(to) && isByteish(from)) || (isByteish(to) && isStr(from))
}

// isBuiltin reports whether fun is a use of the named builtin.
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
