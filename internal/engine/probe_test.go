package engine

import (
	"testing"

	"gpunoc/internal/config"
	"gpunoc/internal/probe"
)

// contentionRun executes the same-TPC contention workload of
// TestSameTPCContention against cfg — one sender block per TPC plus a
// receiver block co-resident on TPC0 — and returns the GPU after the
// receiver kernel finishes, plus the receiver's duration. write selects
// write traffic (saturating, Fig 2) or read traffic (sub-capacity, Fig 5a).
func contentionRun(t *testing.T, cfg config.Config, write bool) (*GPU, uint64) {
	t.Helper()
	const ops = 20
	const warps = 4
	g := mkGPU(t, cfg)
	preloadStreamers(g, (cfg.NumTPCs()+1)*warps)
	specA, _ := streamerKernel("senders", cfg.NumTPCs(), warps, ops*3, write, true, cfg.L2LineBytes)
	if _, err := g.Launch(specA); err != nil {
		t.Fatal(err)
	}
	specB, _ := streamerKernel("receivers", 1, warps, ops, write, true, cfg.L2LineBytes)
	kB, err := g.Launch(specB)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TPCOfSM(kB.Blocks[0].SM) != 0 {
		t.Fatalf("receiver landed on TPC %d, want 0", cfg.TPCOfSM(kB.Blocks[0].SM))
	}
	if !g.RunUntil(func() bool { return !kB.Running() }, 5_000_000) {
		t.Fatal("receiver kernel stuck")
	}
	return g, kB.Duration()
}

// TestProbeFreedom is the probe-freedom regression: the same contention
// workload with a nil registry and with full instrumentation (including
// tracing) must produce identical simulation outcomes — durations, final
// cycle, and every functional counter.
func TestProbeFreedom(t *testing.T) {
	bare := testCfg()
	gBare, dBare := contentionRun(t, bare, true)

	inst := testCfg()
	inst.Probes = probe.NewRegistry()
	inst.Probes.EnableTrace(0)
	gInst, dInst := contentionRun(t, inst, true)

	if dBare != dInst {
		t.Errorf("receiver duration diverged: bare %d vs instrumented %d", dBare, dInst)
	}
	if gBare.Now() != gInst.Now() {
		t.Errorf("final cycle diverged: bare %d vs instrumented %d", gBare.Now(), gInst.Now())
	}
	if a, b := gBare.Partition().Stats(), gInst.Partition().Stats(); a != b {
		t.Errorf("partition stats diverged: bare %+v vs instrumented %+v", a, b)
	}
	for i := 0; i < bare.NumSMs(); i++ {
		if a, b := gBare.SM(i).Stats(), gInst.SM(i).Stats(); a != b {
			t.Errorf("SM%d stats diverged: bare %+v vs instrumented %+v", i, a, b)
		}
	}
	for tpc := 0; tpc < bare.NumTPCs(); tpc++ {
		a := gBare.Network().TPCRequestLink(tpc).Stats()
		b := gInst.Network().TPCRequestLink(tpc).Stats()
		if a != b {
			t.Errorf("tpc%d-req stats diverged: bare %+v vs instrumented %+v", tpc, a, b)
		}
	}
	// Sanity: the instrumented run actually recorded contention.
	snap := gInst.ProbeSnapshot()
	if occ, ok := snap.FindOccupancy("noc/tpc0-req/occupancy"); !ok || occ.Value == 0 {
		t.Error("instrumented run recorded no tpc0-req occupancy")
	}
	if gBare.ProbeSnapshot().Cycles != gBare.Now() {
		t.Error("nil-registry snapshot should still carry the cycle horizon")
	}
}

// TestMuxOccupancyLocalizesContention pins the Fig 8 signal at the metric
// level: a second SM co-resident on TPC0 (the paper's SM1 placement) drives
// the shared TPC0 request mux materially hotter than a mux carrying a single
// sender (the SM12 placement, where the second SM's traffic lands on another
// TPC's mux and TPC0 stays flat). Read traffic keeps a lone sender under
// channel capacity (Fig 5a), so the per-mux occupancy cleanly separates the
// two placements.
func TestMuxOccupancyLocalizesContention(t *testing.T) {
	cfg := testCfg()
	cfg.Probes = probe.NewRegistry()
	g, _ := contentionRun(t, cfg, false)
	snap := g.ProbeSnapshot()

	shared, ok := snap.FindOccupancy("noc/tpc0-req/occupancy")
	if !ok {
		t.Fatal("tpc0-req occupancy missing")
	}
	solo, ok := snap.FindOccupancy("noc/tpc1-req/occupancy")
	if !ok {
		t.Fatal("tpc1-req occupancy missing")
	}
	if shared.Value < 1.4*solo.Value {
		t.Errorf("shared-mux occupancy %.3f vs single-sender %.3f: expected >= 1.4x asymmetry",
			shared.Value, solo.Value)
	}

	// Under write traffic even a lone sender saturates its mux (the Fig 2
	// premise), so there the asymmetry shows up as queueing, not occupancy:
	// the shared mux denies grants, a single-sender mux never does.
	wcfg := testCfg()
	wcfg.Probes = probe.NewRegistry()
	wg, _ := contentionRun(t, wcfg, true)
	wsnap := wg.ProbeSnapshot()
	d0, _ := wsnap.FindCounter("noc/tpc0-req/in0/denies")
	d1, _ := wsnap.FindCounter("noc/tpc0-req/in1/denies")
	if d0.Value+d1.Value == 0 {
		t.Error("no arbitration denies on the contended TPC0 mux")
	}
	sd0, _ := wsnap.FindCounter("noc/tpc1-req/in0/denies")
	sd1, _ := wsnap.FindCounter("noc/tpc1-req/in1/denies")
	if sole, contended := sd0.Value+sd1.Value, d0.Value+d1.Value; contended < 10*sole+10 {
		t.Errorf("denies: contended mux %d vs single-sender mux %d, expected strong asymmetry",
			contended, sole)
	}
}
