// Sharded parallel mode for the fabric. The engine's parallel tick loop
// (see internal/engine) partitions the device into per-GPC shards (SMs plus
// the GPC's TPC/GPC links on both subnets) and per-partition-group shards
// (one memory controller, its L2 slices, and their crossbar ports), ticked
// by concurrent workers in two barrier-separated phases per cycle. Exactly
// two edges of the fabric cross a shard boundary:
//
//   - requests: a GPC request channel delivers into the crossbar port of the
//     packet's destination slice (GPC shard -> partition-group shard);
//   - replies: an L2 slice injects into the reply channel of the destination
//     SM's GPC (partition-group shard -> GPC shard).
//
// In sharded mode both edges go through single-owner outboxes instead of
// enqueueing directly: the producing shard appends to its own box during its
// phase, and the consuming shard drains the box — in ascending source-shard
// order, FIFO within each box — at the start of its next phase, performing
// the Enqueue itself. Every Enqueue side effect (queue push, watermark, wake
// edge) therefore runs on the component's owning worker, and no lock is
// needed anywhere: the phase barrier is the only synchronization, and it
// lives in internal/engine's sanctioned worker pool, not here.
//
// State identity with the sequential engine holds by construction:
//
//   - link input queues are per-source FIFOs, so only the per-source order
//     of Enqueues is observable, and the boxes preserve it;
//   - drains replay the exhaustive enqueue order (requests reach a crossbar
//     port before that port ticks in the same cycle; replies enter a GPC
//     reply link after its tick at cycle T and before its tick at T+1) with
//     the original cycle number, so queue-wait accounting and the per-input
//     high-water marks are unchanged;
//   - per-shard active sets mirror the global ones member for member, and
//     members are visited in the same ascending index order.
//
// TestRandomTrafficMatchesExhaustiveTick and the engine lockstep regression
// pin this at worker counts {1, 2, 4, 8}.

package noc

import (
	"fmt"

	"gpunoc/internal/link"
	"gpunoc/internal/packet"
	"gpunoc/internal/sched"
)

// xfer is one packet crossing a shard boundary: the cycle it left its
// producing component, the destination link's index, the input index it
// arrives on there, and the packet itself.
type xfer struct {
	now uint64
	dst int // destination L2 slice (requests) or GPC (replies)
	src int // input index at the destination link: GPC (requests) or slice (replies)
	p   *packet.Packet
}

// shardState holds everything the sharded tick mode adds to a Network:
// the crossbar-boundary outboxes and the per-shard active sets that
// replace the global tick-group sets.
type shardState struct {
	slicesPerMC int
	numGroups   int     // partition groups, one per memory controller
	tpcsOfGPC   [][]int // ascending logical TPC ids per GPC
	gpcOfSM     []int   // precomputed GPC of each SM (reply routing)

	// xbox[g][m] holds requests from GPC g's request channel bound for
	// crossbar ports of partition group m; written by GPC g's worker in
	// phase G, drained by group m's worker in phase P of the same cycle.
	xbox [][][]xfer
	// rbox[m][g] holds replies from group m's slices bound for GPC g's
	// reply channel; written by group m's worker in phase P, drained by
	// GPC g's worker in phase G of the next cycle.
	rbox [][][]xfer

	// Per-shard active sets, indexed by global link id; each holds only
	// its shard's members, so Wake and Park stay single-owner per phase.
	actReqTPC []*sched.ActiveSet // [gpc], members = TPCs of that GPC
	actReqGPC []*sched.ActiveSet // [gpc], single member g
	actRepGPC []*sched.ActiveSet // [gpc], single member g
	actRepTPC []*sched.ActiveSet // [gpc], members = TPCs of that GPC
	actXbar   []*sched.ActiveSet // [group], members = that group's slices
}

// EnableSharding switches the fabric into sharded parallel mode: the two
// cross-shard edges are rerouted through outboxes, and every link's wake
// edge is rewired to its shard's active set. It must be called once, before
// any traffic, and only on a fabric built with activity scheduling and no
// probes (the engine clamps to the sequential loop in both cases, so a
// sharded instrumented network cannot exist).
func (n *Network) EnableSharding() {
	cfg := n.cfg
	if n.shard != nil {
		panic("noc: sharding already enabled")
	}
	if cfg.ExhaustiveTick || cfg.Probes != nil {
		panic("noc: sharded mode requires activity scheduling and a nil probe registry")
	}
	sh := &shardState{
		slicesPerMC: cfg.SlicesPerMC(),
		numGroups:   cfg.NumMCs,
		tpcsOfGPC:   make([][]int, cfg.NumGPCs),
		gpcOfSM:     make([]int, cfg.NumSMs()),
	}
	for g := 0; g < cfg.NumGPCs; g++ {
		sh.tpcsOfGPC[g] = cfg.TPCsOfGPC(g)
	}
	for s := range sh.gpcOfSM {
		sh.gpcOfSM[s] = cfg.GPCOfSM(s)
	}
	sh.xbox = make([][][]xfer, cfg.NumGPCs)
	for g := range sh.xbox {
		sh.xbox[g] = make([][]xfer, sh.numGroups)
	}
	sh.rbox = make([][][]xfer, sh.numGroups)
	for m := range sh.rbox {
		sh.rbox[m] = make([][]xfer, cfg.NumGPCs)
	}

	numTPC := cfg.NumTPCs()
	sh.actReqTPC = make([]*sched.ActiveSet, cfg.NumGPCs)
	sh.actReqGPC = make([]*sched.ActiveSet, cfg.NumGPCs)
	sh.actRepGPC = make([]*sched.ActiveSet, cfg.NumGPCs)
	sh.actRepTPC = make([]*sched.ActiveSet, cfg.NumGPCs)
	for g := 0; g < cfg.NumGPCs; g++ {
		g := g
		sh.actReqTPC[g] = sched.NewActiveSet(numTPC)
		sh.actReqGPC[g] = sched.NewActiveSet(cfg.NumGPCs)
		sh.actRepGPC[g] = sched.NewActiveSet(cfg.NumGPCs)
		sh.actRepTPC[g] = sched.NewActiveSet(numTPC)
		for _, t := range sh.tpcsOfGPC[g] {
			t := t
			n.reqTPC[t].SetWaker(func() { sh.actReqTPC[g].Wake(t) })
			n.repTPC[t].SetWaker(func() { sh.actRepTPC[g].Wake(t) })
		}
		n.reqGPC[g].SetWaker(func() { sh.actReqGPC[g].Wake(g) })
		n.repGPC[g].SetWaker(func() { sh.actRepGPC[g].Wake(g) })
	}
	sh.actXbar = make([]*sched.ActiveSet, sh.numGroups)
	for m := 0; m < sh.numGroups; m++ {
		m := m
		sh.actXbar[m] = sched.NewActiveSet(cfg.NumL2Slices)
		for s := m * sh.slicesPerMC; s < (m+1)*sh.slicesPerMC; s++ {
			s := s
			n.xbarIn[s].SetWaker(func() { sh.actXbar[m].Wake(s) })
		}
	}

	// The global sets must never be consulted again; Tick guards on shard.
	n.actReqTPC, n.actReqGPC, n.actXbar, n.actRepGPC, n.actRepTPC = nil, nil, nil, nil, nil
	n.shard = sh
}

// pushRequest boxes a packet leaving GPC g's request channel for the
// crossbar port of its destination slice. Owner: GPC g's worker (phase G).
func (sh *shardState) pushRequest(now uint64, g int, p *packet.Packet) {
	m := p.Slice / sh.slicesPerMC
	sh.xbox[g][m] = append(sh.xbox[g][m], xfer{now: now, dst: p.Slice, src: g, p: p})
}

// pushReply boxes a reply emitted by slice p.Slice for the destination SM's
// GPC reply channel. Owner: the slice's partition-group worker (phase P).
func (sh *shardState) pushReply(now uint64, p *packet.Packet) {
	g := sh.gpcOfSM[p.Tag.SM]
	m := p.Slice / sh.slicesPerMC
	sh.rbox[m][g] = append(sh.rbox[m][g], xfer{now: now, dst: g, src: p.Slice, p: p})
}

// DrainReplies moves the replies slices emitted last cycle into GPC g's
// reply channel. Boxes drain in ascending partition-group order, FIFO
// within each box, reproducing the exhaustive enqueue order (slices tick in
// ascending id order); each entry carries the cycle its slice emitted it,
// so arrival times and queue-wait accounting are unchanged. Must run at the
// start of phase G, before TickGPCShard. Owner: GPC g's worker.
func (n *Network) DrainReplies(g int) {
	sh := n.shard
	for m := 0; m < sh.numGroups; m++ {
		box := sh.rbox[m][g]
		if len(box) == 0 {
			continue
		}
		for _, e := range box {
			n.repGPC[g].Enqueue(e.now, e.src, e.p)
		}
		sh.rbox[m][g] = box[:0]
	}
}

// TickGPCShard advances GPC g's links one cycle, in the exhaustive group
// order restricted to the shard: TPC request muxes, the GPC request
// channel, the GPC reply channel, then the TPC reply demuxes. No link of
// another GPC is readable or writable from here — requests leave through
// pushRequest, replies arrive through DrainReplies — so cross-shard tick
// order is immaterial. Owner: GPC g's worker (phase G).
func (n *Network) TickGPCShard(now uint64, g int) {
	sh := n.shard
	tickMembers(now, sh.actReqTPC[g], n.reqTPC, sh.tpcsOfGPC[g])
	tickOne(now, sh.actReqGPC[g], n.reqGPC, g)
	tickOne(now, sh.actRepGPC[g], n.repGPC, g)
	tickMembers(now, sh.actRepTPC[g], n.repTPC, sh.tpcsOfGPC[g])
}

// TickXbarShard drains the request outboxes bound for partition group m (in
// ascending GPC order, FIFO within each box — the exhaustive enqueue order,
// since GPC request channels tick in ascending order before any crossbar
// port) and then ticks the group's crossbar ports. Must run before the
// partition shard's Tick so deliveries reach slices in-cycle, exactly as
// under the sequential net-then-partition order. Owner: group m's worker
// (phase P).
func (n *Network) TickXbarShard(now uint64, m int) {
	sh := n.shard
	for g := range sh.xbox {
		box := sh.xbox[g][m]
		if len(box) == 0 {
			continue
		}
		for _, e := range box {
			n.xbarIn[e.dst].Enqueue(e.now, e.src, e.p)
		}
		sh.xbox[g][m] = box[:0]
	}
	set := sh.actXbar[m]
	if set.Empty() {
		return
	}
	for s := m * sh.slicesPerMC; s < (m+1)*sh.slicesPerMC; s++ {
		if !set.Active(s) {
			continue
		}
		l := n.xbarIn[s]
		l.Tick(now)
		if l.Idle() {
			set.Park(s)
		}
	}
}

// tickMembers ticks the active members of one shard's slice of a link
// group, ascending, parking each one that drained.
func tickMembers(now uint64, set *sched.ActiveSet, group []*link.Link, members []int) {
	if set.Empty() {
		return
	}
	for _, i := range members {
		if !set.Active(i) {
			continue
		}
		l := group[i]
		l.Tick(now)
		if l.Idle() {
			set.Park(i)
		}
	}
}

// tickOne ticks the single member i of a one-member shard set.
func tickOne(now uint64, set *sched.ActiveSet, group []*link.Link, i int) {
	if !set.Active(i) {
		return
	}
	l := group[i]
	l.Tick(now)
	if l.Idle() {
		set.Park(i)
	}
}

// GPCShardHasWork reports whether the fabric part of phase-G task g would
// do anything this cycle: a reply waiting to drain or an active link in the
// shard. The engine checks its own SM shard separately and uses the
// combined answer to run sparse phases inline instead of dispatching.
func (n *Network) GPCShardHasWork(g int) bool {
	sh := n.shard
	for m := 0; m < sh.numGroups; m++ {
		if len(sh.rbox[m][g]) != 0 {
			return true
		}
	}
	return !sh.actReqTPC[g].Empty() || !sh.actReqGPC[g].Empty() ||
		!sh.actRepGPC[g].Empty() || !sh.actRepTPC[g].Empty()
}

// XbarShardHasWork reports whether the fabric part of phase-P task m would
// do anything this cycle: a request waiting to drain or an active crossbar
// port. The partition side is Partition.ShardHasWork.
func (n *Network) XbarShardHasWork(m int) bool {
	sh := n.shard
	for g := range sh.xbox {
		if len(sh.xbox[g][m]) != 0 {
			return true
		}
	}
	return !sh.actXbar[m].Empty()
}

// quiet reports whether every shard set is empty and no packet is parked in
// an outbox: the fabric's next cycle would do no work.
func (sh *shardState) quiet() bool {
	for g := range sh.actReqTPC {
		if !sh.actReqTPC[g].Empty() || !sh.actReqGPC[g].Empty() ||
			!sh.actRepGPC[g].Empty() || !sh.actRepTPC[g].Empty() {
			return false
		}
	}
	for _, set := range sh.actXbar {
		if !set.Empty() {
			return false
		}
	}
	return sh.boxesEmpty()
}

// boxesEmpty reports whether no packet is in flight between shards.
func (sh *shardState) boxesEmpty() bool {
	for g := range sh.xbox {
		for m := range sh.xbox[g] {
			if len(sh.xbox[g][m]) != 0 {
				return false
			}
		}
	}
	for m := range sh.rbox {
		for g := range sh.rbox[m] {
			if len(sh.rbox[m][g]) != 0 {
				return false
			}
		}
	}
	return true
}

// assertSequential panics when the sequential entry points are used on a
// sharded fabric; the per-shard methods above are the only valid ones.
func (n *Network) assertSequential(what string) {
	if n.shard != nil {
		panic(fmt.Sprintf("noc: %s called on a sharded fabric (use the per-shard tick methods)", what))
	}
}
