package engine

import (
	"testing"

	"gpunoc/internal/config"
	"gpunoc/internal/device"
)

// TestEngineDeterminismSameConfig pins the engine-level determinism contract
// that gpunoc-lint guards statically: GPUs built from the same config.Config
// (same Seed, jitters enabled so every noise source is exercised) must
// evolve identically — same partition stats and clock readings at every
// checkpoint over a few thousand cycles, and identical per-warp latency
// traces and kernel durations at the end. The instances span the worker
// matrix {1, 2, 4, 8} (with the single-worker build duplicated to keep the
// original run-to-run check), so the lockstep comparison also pins that the
// sharded parallel engine is state-identical to the sequential one at every
// checkpoint, not just at the end of a run.
func TestEngineDeterminismSameConfig(t *testing.T) {
	cfg := config.Small() // keeps the Volta jitters: noise must derive from Seed alone
	cfg.Seed = 42

	type instance struct {
		workers int
		g       *GPU
		progs   map[[2]int]*device.Streamer
		k       *Kernel
	}
	build := func(workers int) instance {
		c := cfg
		c.EngineWorkers = workers
		g := mkGPU(t, c)
		if workers >= 2 && g.Workers() < 2 {
			t.Fatalf("EngineWorkers=%d resolved to %d workers; parallel engine not engaged", workers, g.Workers())
		}
		preloadStreamers(g, 8)
		spec, progs := streamerKernel("det", 4, 2, 25, true, true, cfg.L2LineBytes)
		k, err := g.Launch(spec)
		if err != nil {
			t.Fatal(err)
		}
		return instance{workers: workers, g: g, progs: progs, k: k}
	}
	insts := make([]instance, 0, 5)
	for _, w := range []int{1, 1, 2, 4, 8} {
		inst := build(w)
		defer inst.g.Close()
		insts = append(insts, inst)
	}
	a := insts[0]

	const step, checkpoints = 250, 20 // 5000 cycles, compared in lockstep
	for i := 1; i <= checkpoints; i++ {
		a.g.RunFor(step)
		for _, b := range insts[1:] {
			b.g.RunFor(step)
			if a.g.Now() != b.g.Now() {
				t.Fatalf("checkpoint %d (%d workers): clocks diverged: %d vs %d",
					i, b.workers, a.g.Now(), b.g.Now())
			}
			if a.g.Idle() != b.g.Idle() {
				t.Fatalf("cycle %d (%d workers): idle state diverged", a.g.Now(), b.workers)
			}
			sa, sb := a.g.Partition().Stats(), b.g.Partition().Stats()
			if sa != sb {
				t.Fatalf("cycle %d (%d workers): partition stats diverged: %+v vs %+v",
					a.g.Now(), b.workers, sa, sb)
			}
			for sm := 0; sm < cfg.NumSMs(); sm++ {
				ca, cb := a.g.Clocks().Read(sm, a.g.Now()), b.g.Clocks().Read(sm, b.g.Now())
				if ca != cb {
					t.Fatalf("cycle %d (%d workers): SM %d clock register diverged: %d vs %d",
						a.g.Now(), b.workers, sm, ca, cb)
				}
			}
		}
	}

	traced := 0
	for key, s := range a.progs {
		for _, b := range insts[1:] {
			o, ok := b.progs[key]
			if !ok {
				t.Fatalf("warp %v missing from %d-worker run", key, b.workers)
			}
			if len(s.Latencies) != len(o.Latencies) {
				t.Fatalf("warp %v (%d workers): latency trace lengths diverged: %d vs %d",
					key, b.workers, len(s.Latencies), len(o.Latencies))
			}
			for i := range s.Latencies {
				if s.Latencies[i] != o.Latencies[i] {
					t.Fatalf("warp %v (%d workers): latency %d diverged: %d vs %d",
						key, b.workers, i, s.Latencies[i], o.Latencies[i])
				}
			}
		}
		traced += len(s.Latencies)
	}
	if traced == 0 {
		t.Fatal("no latencies recorded; the workload never exercised the memory path")
	}

	for _, b := range insts[1:] {
		if a.k.Running() != b.k.Running() {
			t.Fatalf("kernel completion diverged at %d workers: running=%v vs %v",
				b.workers, a.k.Running(), b.k.Running())
		}
		if !a.k.Running() && a.k.Duration() != b.k.Duration() {
			t.Fatalf("kernel durations diverged at %d workers: %d vs %d",
				b.workers, a.k.Duration(), b.k.Duration())
		}
	}
}
