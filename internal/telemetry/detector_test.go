package telemetry

import (
	"testing"
)

// feed synthesizes a window stream for one link from a rate series, with
// EWMA baselines computed the way the Sampler records them (pre-window).
func feed(d *Detector, link string, rates []float64, windowCycles uint64) {
	ewma := 0.0
	for i, rate := range rates {
		w := Window{
			Index: uint64(i),
			Start: uint64(i) * windowCycles,
			End:   uint64(i+1) * windowCycles,
		}
		if rate != 0 || ewma >= ewmaFloor {
			w.Occ = map[string]OccWindow{
				link: {Busy: uint64(rate * float64(windowCycles)), Rate: rate, EWMA: ewma},
			}
		}
		ewma += DefaultEWMAAlpha * (rate - ewma)
		d.ObserveWindow(w)
	}
}

// square produces n windows of a square wave alternating between hi and lo
// every half-period of p windows — the footprint of an alternating payload
// sent over timing slots one lag-grid period wide.
func square(n, p int, hi, lo float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		if (i/p)%2 == 0 {
			out[i] = hi
		} else {
			out[i] = lo
		}
	}
	return out
}

// lcg is a tiny deterministic generator for the aperiodic-noise series.
func lcg(seed uint64) func() float64 {
	s := seed
	return func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>40) / float64(1<<24)
	}
}

func newTestDetector(threshold float64) *Detector {
	return NewDetector(DetectorConfig{
		SlotCycles:   1600,
		WindowCycles: 400, // lag = 4 windows, ring = 24
		Threshold:    threshold,
	})
}

// TestDetectorFiresOnSlotPacedSignal checks that a square wave at the slot
// period is flagged once the ring fills, and that SinceActive points back at
// the first active window.
func TestDetectorFiresOnSlotPacedSignal(t *testing.T) {
	d := newTestDetector(0)
	if d.Config().Threshold != DefaultDetectorThreshold {
		t.Fatalf("zero threshold did not default: %+v", d.Config())
	}
	// The wave flips every lag (4 windows), so its period is 2·lag: the
	// autocorrelation at lag is ≈ −1 and at 2·lag ≈ +1.
	feed(d, "noc/tpc0-req/occupancy", square(64, 4, 0.6, 0.05), 400)
	evs := d.Events()
	if len(evs) == 0 {
		t.Fatal("slot-paced square wave not detected")
	}
	e := evs[0]
	if e.Link != "noc/tpc0-req/occupancy" {
		t.Errorf("event link = %q", e.Link)
	}
	if e.Score < DefaultDetectorThreshold {
		t.Errorf("score %.3f below default threshold", e.Score)
	}
	// The ring needs 24 windows; activity starts at window 0, so the first
	// event must land within a few windows of ring-fill.
	if e.SinceActive > 30*400 {
		t.Errorf("first detection %d cycles after activity, want ≤ %d", e.SinceActive, 30*400)
	}
	if e.Cycle != e.SinceActive {
		t.Errorf("activity from window 0: cycle %d != since_active %d", e.Cycle, e.SinceActive)
	}
}

// TestDetectorQuietOnAperiodicNoise pins the false-positive side: busy but
// aperiodic traffic (what internal/noise streams look like per-window) must
// not score at the default threshold.
func TestDetectorQuietOnAperiodicNoise(t *testing.T) {
	d := newTestDetector(0)
	next := lcg(12345)
	rates := make([]float64, 256)
	for i := range rates {
		rates[i] = 0.2 + 0.3*next()
	}
	feed(d, "noc/gpc0-req/occupancy", rates, 400)
	if evs := d.Events(); len(evs) != 0 {
		t.Fatalf("aperiodic noise fired %d event(s), first %+v", len(evs), evs[0])
	}
}

// TestDetectorQuietOnFlatSeries pins the variance gate: an idle link and a
// steadily saturated link both stay silent, however long they run.
func TestDetectorQuietOnFlatSeries(t *testing.T) {
	for _, tc := range []struct {
		name string
		rate float64
	}{{"idle", 0}, {"saturated", 0.95}} {
		d := newTestDetector(0)
		rates := make([]float64, 128)
		for i := range rates {
			rates[i] = tc.rate
		}
		feed(d, "noc/l/occupancy", rates, 400)
		if evs := d.Events(); len(evs) != 0 {
			t.Errorf("%s series fired %d event(s)", tc.name, len(evs))
		}
	}
}

// TestDetectorCooldown checks that a persistent signal re-fires at most once
// per ring length, not every window.
func TestDetectorCooldown(t *testing.T) {
	d := newTestDetector(0)
	n := 24 + 4*24 // ring fill plus four cooldown spans
	feed(d, "noc/l/occupancy", square(n, 4, 0.6, 0.05), 400)
	evs := d.Events()
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	max := n/24 + 1
	if len(evs) > max {
		t.Fatalf("%d events over %d windows; cooldown should cap near %d", len(evs), n, max)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Window < evs[i-1].Window+24 {
			t.Fatalf("events %d and %d closer than one ring: %d vs %d",
				i-1, i, evs[i-1].Window, evs[i].Window)
		}
	}
}

// TestDetectorThresholdMonotone replays one recorded stream at rising
// thresholds and requires the event count to be nonincreasing — the property
// the detector-roc experiment's table is built on.
func TestDetectorThresholdMonotone(t *testing.T) {
	next := lcg(99)
	rates := square(128, 4, 0.55, 0.1)
	for i := range rates {
		rates[i] += 0.05 * next() // periodic signal plus jitter
	}
	prev := -1
	for _, th := range []float64{0.25, 0.4, 0.55, 0.7, 0.85, 0.99} {
		d := newTestDetector(th)
		feed(d, "noc/l/occupancy", rates, 400)
		n := len(d.Events())
		if prev >= 0 && n > prev {
			t.Fatalf("threshold %.2f fired %d > previous %d", th, n, prev)
		}
		prev = n
	}
}

// TestDetectorDenies checks that a firing window's arbitration-deny deltas
// are attributed to the link that scored.
func TestDetectorDenies(t *testing.T) {
	d := newTestDetector(0)
	link := "noc/tpc1-req/occupancy"
	ewma := 0.0
	rates := square(40, 4, 0.6, 0.05)
	for i, rate := range rates {
		w := Window{
			Index: uint64(i), Start: uint64(i) * 400, End: uint64(i+1) * 400,
			Occ: map[string]OccWindow{link: {Rate: rate, EWMA: ewma}},
			Counters: map[string]uint64{
				"noc/tpc1-req/in0/denies": 3,
				"noc/tpc1-req/in1/denies": 4,
				"noc/tpc1-req/in0/grants": 9,  // not a deny
				"noc/gpc0-req/in0/denies": 50, // different link
			},
		}
		ewma += DefaultEWMAAlpha * (rate - ewma)
		d.ObserveWindow(w)
	}
	evs := d.Events()
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	if evs[0].Denies != 7 {
		t.Fatalf("event denies = %d, want 7", evs[0].Denies)
	}
}
