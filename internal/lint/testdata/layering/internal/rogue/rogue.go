// Fixture: a package missing from the layering table is itself a finding, so
// the table must grow with the module.
package rogue
