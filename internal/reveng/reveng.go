// Package reveng implements the reverse-engineering methodology of §3: the
// Algorithm 1 memory-write benchmark that exposes which SMs share a TPC
// channel (Fig 2), the randomized co-activation protocol that groups TPCs
// into GPCs (Fig 3, Fig 4), the clock-register survey (Fig 6), and the
// thread-block scheduler probe (§4.3). The tools treat the GPU as a black
// box: they only launch kernels, read the %smid/clock() analogues, and
// measure execution time — exactly the interface the paper's attacker has.
package reveng

import (
	"fmt"
	"math/rand"
	"sort"

	"gpunoc/internal/config"
	"gpunoc/internal/device"
	"gpunoc/internal/engine"
)

// timedStreamer wraps the Algorithm 1 streamer and records its own start and
// end clocks, so execution time can be read per SM like the paper's kernels
// do with clock().
type timedStreamer struct {
	inner    device.Streamer
	target   func(smid int) bool
	active   bool
	decided  bool
	Start    uint64
	End      uint64
	SMID     int
	finished bool
}

func (t *timedStreamer) Step(ctx *device.Ctx) device.Op {
	if !t.decided {
		t.decided = true
		t.active = t.target == nil || t.target(ctx.SMID)
		if !t.active {
			return device.Done()
		}
		t.SMID = ctx.SMID
		t.Start = ctx.Clock64
	}
	op := t.inner.Step(ctx)
	if op.Kind == device.OpDone && !t.finished {
		t.finished = true
		t.End = ctx.Clock64
	}
	return op
}

// Duration returns the measured execution time in cycles (0 if inactive or
// unfinished).
func (t *timedStreamer) Duration() uint64 {
	if !t.finished {
		return 0
	}
	return t.End - t.Start
}

// runConfig drives one measurement: a full-coverage kernel whose blocks only
// stream on the SMs selected by target.
type runConfig struct {
	cfg    *config.Config
	write  bool
	warps  int
	ops    int
	target func(smid int) bool
}

// runActive executes the benchmark and returns the duration measured on
// every active SM, keyed by SM id.
func runActive(rc runConfig) (map[int]uint64, error) {
	g, err := engine.New(*rc.cfg)
	if err != nil {
		return nil, err
	}
	// Distinct, preloaded, L2-resident window per SM.
	const span = 8192
	g.Preload(0, uint64(rc.cfg.NumSMs())*span)
	var progs []*timedStreamer
	spec := device.KernelSpec{
		Name:          "alg1",
		Blocks:        rc.cfg.NumSMs(),
		WarpsPerBlock: rc.warps,
		New: func(b, w int) device.Program {
			t := &timedStreamer{target: rc.target}
			t.inner = device.Streamer{
				LineBytes:   rc.cfg.L2LineBytes,
				Write:       rc.write,
				Count:       rc.ops,
				Uncoalesced: true,
				WrapBytes:   span / 2,
			}
			progs = append(progs, t)
			return t
		},
	}
	k, err := g.Launch(spec)
	if err != nil {
		return nil, err
	}
	// Bind each program's address window to its placement (block -> SM).
	for range k.Blocks {
	}
	// Windows follow the SM id; programs learn their SM at first step, so
	// patch bases through a second pass using the placement map.
	smOfBlock := make(map[int]int, len(k.Blocks))
	for _, bp := range k.Blocks {
		smOfBlock[bp.Block] = bp.SM
	}
	for i, t := range progs {
		block := i / rc.warps
		warpID := i % rc.warps
		sm := smOfBlock[block]
		t.inner.Base = uint64(sm)*span + uint64(warpID%2)*(span/2)
	}
	if err := g.RunKernels(50_000_000); err != nil {
		return nil, err
	}
	out := make(map[int]uint64)
	for _, t := range progs {
		if t.active && t.Duration() > 0 {
			// Report the slowest warp of the SM (the block's time).
			if t.Duration() > out[t.SMID] {
				out[t.SMID] = t.Duration()
			}
		}
	}
	return out, nil
}

// Fig2Point is one x-position of Fig 2.
type Fig2Point struct {
	OtherSM    int
	BaseTime   uint64  // SM0's execution time with OtherSM active
	Normalized float64 // relative to SM0 running alone
}

// TPCSweep reproduces Fig 2: the Algorithm 1 write benchmark runs on baseSM
// together with each other SM in turn; the co-located SM is the one that
// doubles baseSM's execution time.
func TPCSweep(cfg *config.Config, baseSM int, warps, ops int) ([]Fig2Point, error) {
	if baseSM < 0 || baseSM >= cfg.NumSMs() {
		return nil, fmt.Errorf("reveng: base SM %d out of range", baseSM)
	}
	solo, err := runActive(runConfig{cfg: cfg, write: true, warps: warps, ops: ops,
		target: func(smid int) bool { return smid == baseSM }})
	if err != nil {
		return nil, err
	}
	base := solo[baseSM]
	if base == 0 {
		return nil, fmt.Errorf("reveng: solo run produced no measurement")
	}
	var points []Fig2Point
	for other := 0; other < cfg.NumSMs(); other++ {
		if other == baseSM {
			continue
		}
		other := other
		times, err := runActive(runConfig{cfg: cfg, write: true, warps: warps, ops: ops,
			target: func(smid int) bool { return smid == baseSM || smid == other }})
		if err != nil {
			return nil, err
		}
		points = append(points, Fig2Point{
			OtherSM:    other,
			BaseTime:   times[baseSM],
			Normalized: float64(times[baseSM]) / float64(base),
		})
	}
	return points, nil
}

// PairedSM returns the SM inferred to share baseSM's TPC: the unique SM
// whose co-activation degrades baseSM the most (and by at least 1.5x).
func PairedSM(points []Fig2Point) (int, error) {
	best := -1
	var bestNorm float64
	for _, p := range points {
		if p.Normalized > bestNorm {
			bestNorm = p.Normalized
			best = p.OtherSM
		}
	}
	if best < 0 || bestNorm < 1.5 {
		return -1, fmt.Errorf("reveng: no SM shows TPC-channel contention (max %.2fx)", bestNorm)
	}
	return best, nil
}

// Fig3Point is one x-position of Fig 3: the reference TPC's mean execution
// time when co-activated with a probe TPC plus random background TPCs.
type Fig3Point struct {
	ProbeTPC   int
	MeanTime   float64
	MaxTime    uint64
	Samples    []uint64
	Normalized float64 // mean relative to the overall minimum mean
}

// GPCProbeOptions tunes the Fig 3 protocol.
type GPCProbeOptions struct {
	Reps int // paper: 200
	// Background is the number of random extra TPCs per rep (paper: 5).
	// Zero selects the paper's default; use -1 for a deterministic
	// two-TPC probe (useful on small topologies).
	Background int
	Warps      int
	Ops        int
	Seed       int64
}

func (o *GPCProbeOptions) defaults() {
	if o.Reps == 0 {
		o.Reps = 40
	}
	if o.Background == 0 {
		o.Background = 5
	}
	if o.Warps == 0 {
		o.Warps = 2
	}
	if o.Ops == 0 {
		o.Ops = 12
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// GPCSweep reproduces Fig 3 for one reference TPC: for every probe TPC, the
// reference and probe run the read benchmark together with Background
// randomly chosen extra TPCs, Reps times; probes in the reference's GPC
// occasionally push the shared GPC channel past its speedup and elevate the
// mean. Both SMs of every activated TPC run the benchmark (the model's
// per-SM injection cap means single-SM activation cannot reach the
// channel's saturation point; see DESIGN.md).
func GPCSweep(cfg *config.Config, refTPC int, opt GPCProbeOptions) ([]Fig3Point, error) {
	opt.defaults()
	if refTPC < 0 || refTPC >= cfg.NumTPCs() {
		return nil, fmt.Errorf("reveng: ref TPC %d out of range", refTPC)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	var points []Fig3Point
	for probe := 0; probe < cfg.NumTPCs(); probe++ {
		if probe == refTPC {
			continue
		}
		pt := Fig3Point{ProbeTPC: probe}
		sum := 0.0
		for rep := 0; rep < opt.Reps; rep++ {
			background := opt.Background
			if background < 0 {
				background = 0 // -1 selects the deterministic two-TPC probe
			}
			active := map[int]bool{refTPC: true, probe: true}
			for len(active) < 2+background && len(active) < cfg.NumTPCs() {
				active[rng.Intn(cfg.NumTPCs())] = true
			}
			seedCfg := *cfg
			seedCfg.Seed = cfg.Seed + int64(rep*1000+probe)
			times, err := runActive(runConfig{cfg: &seedCfg, write: false,
				warps: opt.Warps, ops: opt.Ops,
				target: func(smid int) bool { return active[cfg.TPCOfSM(smid)] }})
			if err != nil {
				return nil, err
			}
			// The reference TPC's time = slowest of its two SMs.
			var t uint64
			for _, sm := range cfg.SMsOfTPC(refTPC) {
				if times[sm] > t {
					t = times[sm]
				}
			}
			pt.Samples = append(pt.Samples, t)
			sum += float64(t)
			if t > pt.MaxTime {
				pt.MaxTime = t
			}
		}
		pt.MeanTime = sum / float64(opt.Reps)
		points = append(points, pt)
	}
	min := points[0].MeanTime
	for _, p := range points {
		if p.MeanTime < min {
			min = p.MeanTime
		}
	}
	for i := range points {
		points[i].Normalized = points[i].MeanTime / min
	}
	return points, nil
}

// GroupFromSweep extracts the TPCs inferred to share the reference's GPC.
// With margin > 0 it selects probes whose normalized mean exceeds 1+margin.
// With margin <= 0 it auto-thresholds at the midpoint between the lowest and
// highest probe means, which separates "always contended" group mates from
// probes that were only elevated by random background placement. If the
// spread between probes is inside the noise floor, the reference is reported
// as a singleton group.
func GroupFromSweep(refTPC int, points []Fig3Point, margin float64) []int {
	group := []int{refTPC}
	if len(points) == 0 {
		return group
	}
	cut := 1 + margin
	if margin <= 0 {
		lo, hi := points[0].Normalized, points[0].Normalized
		for _, p := range points {
			if p.Normalized < lo {
				lo = p.Normalized
			}
			if p.Normalized > hi {
				hi = p.Normalized
			}
		}
		if hi-lo < 0.01 {
			return group // no probe stands out: singleton GPC
		}
		cut = (lo + hi) / 2
	}
	for _, p := range points {
		if p.Normalized > cut {
			group = append(group, p.ProbeTPC)
		}
	}
	sort.Ints(group)
	return group
}

// MapGPCs reproduces Fig 4: it repeats the Fig 3 analysis from successive
// reference TPCs until every TPC is assigned to a group, and returns the
// groups sorted by their smallest member.
func MapGPCs(cfg *config.Config, opt GPCProbeOptions, margin float64) ([][]int, error) {
	assigned := make(map[int]bool)
	var groups [][]int
	for ref := 0; ref < cfg.NumTPCs(); ref++ {
		if assigned[ref] {
			continue
		}
		points, err := GPCSweep(cfg, ref, opt)
		if err != nil {
			return nil, err
		}
		group := GroupFromSweep(ref, points, margin)
		for _, t := range group {
			assigned[t] = true
		}
		groups = append(groups, group)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups, nil
}

// ClockSample is one SM's clock-register reading (Fig 6).
type ClockSample struct {
	SM    int
	Value uint32
}

// ClockSurvey launches the Fig 6 kernel: one block per SM, each reading its
// clock register once. The survey kernel reads clock() as its very first
// instruction, so warp-dispatch jitter is damped to a few cycles — the
// measured spread then reflects the register offsets themselves, matching
// the paper's methodology (§4.1).
func ClockSurvey(cfg *config.Config) ([]ClockSample, error) {
	c := *cfg
	if c.WarpIssueJitter > 3 {
		c.WarpIssueJitter = 3
	}
	g, err := engine.New(c)
	if err != nil {
		return nil, err
	}
	readers := make([]*device.ClockReader, 0, cfg.NumSMs())
	spec := device.KernelSpec{
		Name:          "clock-survey",
		Blocks:        cfg.NumSMs(),
		WarpsPerBlock: 1,
		New: func(b, w int) device.Program {
			r := &device.ClockReader{}
			readers = append(readers, r)
			return r
		},
	}
	if _, err := g.Launch(spec); err != nil {
		return nil, err
	}
	if err := g.RunKernels(1_000_000); err != nil {
		return nil, err
	}
	samples := make([]ClockSample, 0, len(readers))
	for _, r := range readers {
		samples = append(samples, ClockSample{SM: r.SMID, Value: r.Value})
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].SM < samples[j].SM })
	return samples, nil
}

// SkewStats summarizes repeated clock surveys (§4.1: "we re-ran this kernel
// 100 times").
type SkewStats struct {
	MeanTPCSkew float64 // mean |clock difference| between TPC mates
	MaxTPCSkew  uint64
	MeanGPCSkew float64 // mean pairwise skew within GPCs
	MaxGPCSkew  uint64
}

// MeasureSkew runs the clock survey reps times and aggregates the intra-TPC
// and intra-GPC skews.
func MeasureSkew(cfg *config.Config, reps int) (SkewStats, error) {
	if reps <= 0 {
		reps = 100
	}
	var st SkewStats
	var tpcSum, gpcSum float64
	var tpcN, gpcN int
	for rep := 0; rep < reps; rep++ {
		c := *cfg
		c.Seed = cfg.Seed + int64(rep)
		samples, err := ClockSurvey(&c)
		if err != nil {
			return st, err
		}
		bySM := make(map[int]uint32, len(samples))
		for _, s := range samples {
			bySM[s.SM] = s.Value
		}
		diff := func(a, b int) uint64 {
			d := int64(bySM[a]) - int64(bySM[b])
			if d < 0 {
				d = -d
			}
			return uint64(d)
		}
		for t := 0; t < c.NumTPCs(); t++ {
			sms := c.SMsOfTPC(t)
			d := diff(sms[0], sms[1])
			tpcSum += float64(d)
			tpcN++
			if d > st.MaxTPCSkew {
				st.MaxTPCSkew = d
			}
		}
		for g := 0; g < c.NumGPCs; g++ {
			var sms []int
			for _, t := range c.TPCsOfGPC(g) {
				sms = append(sms, c.SMsOfTPC(t)...)
			}
			for i := 0; i < len(sms); i++ {
				for j := i + 1; j < len(sms); j++ {
					d := diff(sms[i], sms[j])
					gpcSum += float64(d)
					gpcN++
					if d > st.MaxGPCSkew {
						st.MaxGPCSkew = d
					}
				}
			}
		}
	}
	st.MeanTPCSkew = tpcSum / float64(tpcN)
	st.MeanGPCSkew = gpcSum / float64(gpcN)
	return st, nil
}

// TBProbe launches a marker kernel and reports which SM each block landed
// on, recovering the scheduling policy of §4.3.
func TBProbe(cfg *config.Config, blocks int) ([]int, error) {
	g, err := engine.New(*cfg)
	if err != nil {
		return nil, err
	}
	spec := device.KernelSpec{
		Name:          "tb-probe",
		Blocks:        blocks,
		WarpsPerBlock: 1,
		New:           func(b, w int) device.Program { return &device.ClockReader{} },
	}
	k, err := g.Launch(spec)
	if err != nil {
		return nil, err
	}
	if err := g.RunKernels(1_000_000); err != nil {
		return nil, err
	}
	out := make([]int, blocks)
	for _, bp := range k.Blocks {
		out[bp.Block] = bp.SM
	}
	return out, nil
}

// quadThreshold is the slowdown ratio above which the deterministic
// four-TPC co-activation test declares contention.
const quadThreshold = 1.08

// quadTest deterministically checks whether probe shares the reference's
// GPC, given two TPCs (helpers) already known to be in that GPC: activating
// four same-GPC TPC pairs oversubscribes the GPC reply channel while three
// stay just under its speedup, so the reference's time jumps only when the
// probe completes the quartet.
func quadTest(cfg *config.Config, ref, h1, h2, probe int, warps, ops int) (bool, error) {
	measure := func(tpcs []int) (uint64, error) {
		var target []int
		for _, t := range tpcs {
			target = append(target, cfg.SMsOfTPC(t)...)
		}
		sel := map[int]bool{}
		for _, sm := range target {
			sel[sm] = true
		}
		times, err := runActive(runConfig{cfg: cfg, write: false, warps: warps, ops: ops,
			target: func(smid int) bool { return sel[smid] }})
		if err != nil {
			return 0, err
		}
		var t uint64
		for _, sm := range cfg.SMsOfTPC(ref) {
			if times[sm] > t {
				t = times[sm]
			}
		}
		return t, nil
	}
	base, err := measure([]int{ref, h1, h2})
	if err != nil {
		return false, err
	}
	with, err := measure([]int{ref, h1, h2, probe})
	if err != nil {
		return false, err
	}
	return float64(with)/float64(base) > quadThreshold, nil
}

// MapGPCsAdaptive recovers the TPC->GPC mapping with an adaptive,
// hypothesis-driven protocol that needs orders of magnitude fewer runs than
// the 200-repetition statistical sweep: GPUs assign TPCs to GPCs with strong
// regularity (the paper observes they are "mostly interleaved"), so for each
// reference the attacker first searches for a stride K such that the quartet
// {ref, ref+K, ref+2K, ref+3K} saturates a GPC reply channel together, then
// verifies every remaining TPC with one deterministic quartet test each.
// Irregular members (the spilled TPC39 of Fig 4) are caught by the
// exhaustive verification; topologies whose GPCs hold fewer than four TPCs
// fall back to the statistical grouping.
func MapGPCsAdaptive(cfg *config.Config, opt GPCProbeOptions) ([][]int, error) {
	opt.defaults()
	assigned := make(map[int]bool)
	var groups [][]int
	n := cfg.NumTPCs()
	for ref := 0; ref < n; ref++ {
		if assigned[ref] {
			continue
		}
		var group []int
		// Phase A: stride hypothesis search for two groupmates.
		var h1, h2 int
		found := false
		for k := 1; !found && k <= n/3; k++ {
			a, b, c := ref+k, ref+2*k, ref+3*k
			if c >= n || assigned[a] || assigned[b] || assigned[c] {
				continue
			}
			in, err := quadTest(cfg, ref, a, b, c, opt.Warps, opt.Ops)
			if err != nil {
				return nil, err
			}
			if in {
				h1, h2 = a, b
				found = true
			}
		}
		if found {
			// Phase B: one deterministic quartet test per remaining TPC.
			group = []int{ref, h1, h2}
			for probe := 0; probe < n; probe++ {
				if assigned[probe] || probe == ref || probe == h1 || probe == h2 {
					continue
				}
				in, err := quadTest(cfg, ref, h1, h2, probe, opt.Warps, opt.Ops)
				if err != nil {
					return nil, err
				}
				if in {
					group = append(group, probe)
				}
			}
		} else {
			// No quartet found: the GPC is smaller than four TPCs (or
			// highly irregular); fall back to the statistical sweep. The
			// full probe set (including already-grouped TPCs) keeps the
			// relative normalization meaningful; already-grouped TPCs are
			// then dropped from the result.
			points, err := GPCSweep(cfg, ref, opt)
			if err != nil {
				return nil, err
			}
			group = group[:0]
			for _, t := range GroupFromSweep(ref, points, 0) {
				if t == ref || !assigned[t] {
					group = append(group, t)
				}
			}
		}
		sort.Ints(group)
		for _, t := range group {
			assigned[t] = true
		}
		groups = append(groups, group)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups, nil
}
