package config

import (
	"fmt"
	"hash/fnv"
)

// Hash returns a stable 64-bit FNV-1a hash of every simulation-relevant
// field of the configuration. Two configurations with equal hashes produce
// bit-identical simulations for the same workload, so the hash is the
// config component of both the snapshot header (internal/snap) and the
// content-addressed result cache key (internal/experiments).
//
// Fields that never influence simulation results are excluded, exactly
// mirroring the set Validate ignores: ExhaustiveTick (reference mode),
// EngineWorkers (worker-count independence is CI-enforced), and the
// observer attachments Meter, Probes, and Telemetry.
func (c *Config) Hash() uint64 {
	n := *c
	n.ExhaustiveTick = false
	n.EngineWorkers = 0
	n.Meter = nil
	n.Probes = nil
	n.Telemetry = nil
	h := fnv.New64a()
	// %+v prints field names and values of the nested value-type structs
	// in declaration order — a canonical rendering as long as no pointer
	// field is left set (all are nil'd above).
	fmt.Fprintf(h, "%+v", n)
	return h.Sum64()
}
