// Package core implements the paper's contribution: the interconnect-based
// covert channel (§4). A sender (trojan) and receiver (spy) kernel are
// co-located on the shared NoC hierarchy by exploiting the thread-block
// scheduler (§4.3); they synchronize through the per-SM clock registers
// (§4.1); and they communicate by modulating contention on the TPC or GPC
// channel, which the receiver observes as L2 round-trip latency (§4.2,
// Algorithm 2). Multi-TPC and multi-GPC variants parallelize transmission
// across the whole GPU for the headline ~24 Mbps figure, and a multi-level
// mode trades error rate for ~1.6x more bandwidth by modulating the degree
// of coalescing (§5, Fig 14).
package core

import (
	"fmt"
)

// Kind selects which shared channel carries the covert transmission.
type Kind int

const (
	// TPCChannel uses the 2:1 mux shared by the two SMs of one TPC;
	// the sender modulates *write* contention (§3.4).
	TPCChannel Kind = iota
	// GPCChannel uses the concentrated GPC channel shared by the TPCs of
	// one GPC; the sender modulates *read* contention (§3.4, §4.5).
	GPCChannel
	// NVLinkChannel uses an inter-GPU NVLink link of a multi-GPU mesh
	// (internal/mesh): the sender floods the link with remote writes while
	// the receiver times remote reads whose replies share the same link —
	// the cross-GPU channel of NVBleed / "Beyond the Bridge" (PAPERS.md).
	NVLinkChannel
)

// String names the channel kind.
func (k Kind) String() string {
	switch k {
	case TPCChannel:
		return "TPC"
	case GPCChannel:
		return "GPC"
	case NVLinkChannel:
		return "NVLink"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Params configures a covert-channel transmission (Algorithm 2).
type Params struct {
	Kind Kind

	// Iterations is the number of memory operations used to communicate
	// one symbol (the Fig 10 x-axis). More iterations raise the
	// probability that sender and receiver traffic overlap, trading
	// bandwidth for a lower error rate.
	Iterations int

	// SlotCycles is the timing slot T. Zero derives a default from
	// Iterations and the channel kind.
	SlotCycles uint64

	// SyncPeriod is the number of symbols between clock-register
	// resynchronizations (Algorithm 2's Sync_period). Zero disables
	// periodic resync, reproducing the accumulating drift of Fig 9(a).
	SyncPeriod int

	// SyncModulus is the modulus used by the periodic Synchronization():
	// both sides busy-wait until clock % SyncModulus == 0 ("the lower n
	// bits of the clock registers are compared against a fixed value",
	// §4.4). It only needs to exceed the residual divergence between the
	// two sides, so the default is about two slots — keeping the resync
	// overhead small. Zero derives the default.
	SyncModulus uint64

	// InitModulus is the modulus of the one-time initial synchronization,
	// which must absorb the kernel launch skew. Cooperating MPS processes
	// coordinate their launches on the CPU (§2.2 reports only a one-time
	// synchronization overhead), so the skew the GPU sees is bounded;
	// both kernels land in the same InitModulus window and align on its
	// boundary. Zero derives a default well above typical launch skew.
	InitModulus uint64

	// Threshold separates "contended" from "free" mean slot latency for
	// the 1-bit channel. Use Calibrate to measure it. For multi-level
	// channels, Thresholds holds the level cut points (len = levels-1)
	// and Threshold is ignored.
	Threshold  float64
	Thresholds []float64

	// BitsPerSymbol selects 1 (binary, default) or 2 (the 4-level channel
	// of Fig 14, signalling with 0/8/16/32 uncoalesced requests).
	BitsPerSymbol int

	// SenderWarps is the number of warps the sender activates per SM
	// (the paper uses 5 for the TPC channel and 8 for the GPC channel).
	SenderWarps int

	// SenderCoalesced/ReceiverCoalesced force fully-coalesced accesses
	// (one request per warp) to reproduce the Fig 13 error-rate study.
	SenderCoalesced   bool
	ReceiverCoalesced bool

	// SlotJitter is the maximum per-slot scheduling jitter (cycles) each
	// side experiences before issuing its accesses — the noise source
	// behind the error-vs-iterations trade-off of Fig 10.
	SlotJitter int

	// DriftJitter models the wake-up imprecision of the busy-wait loops
	// that count out each timing slot: every slot ends up to DriftJitter
	// cycles late, independently on each side. Without periodic clock
	// resynchronization these drifts random-walk apart and eventually
	// misalign the slots — the accumulating error of Fig 9(a) that the
	// Synchronization() of Algorithm 2 resets.
	DriftJitter int

	// Coding selects the error-correcting code applied over each unit's
	// Symbol stream before transmission (coding.go). The default,
	// CodingNone, transmits the payload raw — the paper's protocol — and
	// leaves every wire byte identical to the uncoded channel.
	Coding Coding

	// Repeat is the repetition factor for CodingRepetition (default 3).
	// Must be odd so the majority vote cannot tie, and zero unless
	// repetition coding is selected.
	Repeat int

	// PreambleSymbols prepends this many known alternating symbols to each
	// unit's wire stream. The decoder correlates against the pattern to
	// re-acquire slot alignment after desync (see recoverData); zero
	// disables the preamble.
	PreambleSymbols int

	// ResyncGuardSlots extends each receiver's listening window by this
	// many slots beyond the wire stream, giving the preamble search room
	// to find a late-locking receiver. Requires PreambleSymbols > 0.
	ResyncGuardSlots int

	// Seed drives the per-program jitter streams.
	Seed int64
}

// Levels returns the number of distinguishable contention levels.
func (p *Params) Levels() int { return 1 << p.BitsPerSymbol }

// LevelLanes maps a symbol to the number of unique memory requests used to
// signal it: 0 for silence, up to the full 32 uncoalesced requests. For the
// 2-bit channel this yields the paper's 0/8/16/32 split (0%, 25%, 50%, 100%
// of lanes).
func (p *Params) LevelLanes(symbol, simtWidth int) int {
	levels := p.Levels()
	if symbol <= 0 {
		return 0
	}
	if symbol >= levels {
		symbol = levels - 1
	}
	if p.SenderCoalesced {
		// Fig 13: a coalesced sender emits a single request per warp
		// regardless of the symbol.
		return 1
	}
	return simtWidth * symbol / (levels - 1)
}

// withDefaults fills derived fields and validates. It returns a copy.
func (p Params) withDefaults() (Params, error) {
	if p.BitsPerSymbol == 0 {
		p.BitsPerSymbol = 1
	}
	if p.BitsPerSymbol < 1 || p.BitsPerSymbol > 2 {
		return p, fmt.Errorf("core: BitsPerSymbol %d not in {1,2}", p.BitsPerSymbol)
	}
	if p.Iterations == 0 {
		p.Iterations = 4
	}
	if p.Iterations < 1 {
		return p, fmt.Errorf("core: non-positive iterations %d", p.Iterations)
	}
	if p.SenderWarps == 0 {
		switch p.Kind {
		case GPCChannel:
			p.SenderWarps = 8
		default:
			p.SenderWarps = 5
		}
	}
	if p.SenderWarps < 1 {
		return p, fmt.Errorf("core: non-positive sender warps %d", p.SenderWarps)
	}
	if p.SlotCycles == 0 {
		p.SlotCycles = DefaultSlot(p.Kind, p.Iterations)
	}
	if p.SyncPeriod < 0 {
		return p, fmt.Errorf("core: negative sync period %d", p.SyncPeriod)
	}
	if p.SyncModulus == 0 {
		p.SyncModulus = nextPow2(2 * p.SlotCycles)
	}
	if p.InitModulus == 0 {
		p.InitModulus = p.SyncModulus
		if p.InitModulus < 1<<16 {
			p.InitModulus = 1 << 16
		}
	}
	if p.SlotJitter == 0 {
		p.SlotJitter = 260
	}
	if p.DriftJitter == 0 {
		p.DriftJitter = 48
	}
	if p.Threshold == 0 && len(p.Thresholds) == 0 {
		// A usable default for the calibrated Volta model; experiments
		// normally run Calibrate instead.
		p.Threshold = defaultThreshold(p.Kind)
	}
	if len(p.Thresholds) == 0 {
		// Placeholder ladder; Calibrate replaces it with measured
		// midpoints. Spacing mirrors the graded contention of Fig 14.
		for i := 0; i < p.Levels()-1; i++ {
			p.Thresholds = append(p.Thresholds, p.Threshold+float64(25*i))
		}
	}
	if len(p.Thresholds) != p.Levels()-1 {
		return p, fmt.Errorf("core: %d thresholds for %d levels", len(p.Thresholds), p.Levels())
	}
	for i := 1; i < len(p.Thresholds); i++ {
		if p.Thresholds[i] <= p.Thresholds[i-1] {
			return p, fmt.Errorf("core: thresholds not increasing: %v", p.Thresholds)
		}
	}
	switch p.Coding {
	case CodingNone:
		if p.Repeat != 0 {
			return p, fmt.Errorf("core: Repeat %d set without CodingRepetition", p.Repeat)
		}
	case CodingRepetition:
		if p.Repeat == 0 {
			p.Repeat = 3
		}
		if p.Repeat < 1 || p.Repeat%2 == 0 {
			return p, fmt.Errorf("core: repetition factor %d must be odd and positive", p.Repeat)
		}
	case CodingHamming74:
		if p.Repeat != 0 {
			return p, fmt.Errorf("core: Repeat %d set with Hamming coding", p.Repeat)
		}
		if p.BitsPerSymbol != 1 {
			return p, fmt.Errorf("core: Hamming(7,4) codes bits; BitsPerSymbol must be 1, got %d", p.BitsPerSymbol)
		}
	default:
		return p, fmt.Errorf("core: unknown coding %d", int(p.Coding))
	}
	if p.PreambleSymbols < 0 {
		return p, fmt.Errorf("core: negative preamble length %d", p.PreambleSymbols)
	}
	if p.ResyncGuardSlots < 0 {
		return p, fmt.Errorf("core: negative guard slots %d", p.ResyncGuardSlots)
	}
	if p.ResyncGuardSlots > 0 && p.PreambleSymbols == 0 {
		return p, fmt.Errorf("core: ResyncGuardSlots needs a preamble to align against")
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p, nil
}

// DefaultSlot returns the default timing-slot length for a channel kind and
// iteration count: slightly larger than the iterations' worst-case L2
// round-trip time, as §4.4 prescribes ("a value of T that is slightly larger
// than the value of L2 access round-trip latency"). The GPC channel uses a
// larger slot because more SMs communicate per symbol (§4.5).
func DefaultSlot(k Kind, iterations int) uint64 {
	switch k {
	case GPCChannel:
		return uint64(250 + 450*iterations)
	case NVLinkChannel:
		// A remote round trip pays the NVLink hop both ways (~2x180 cycles
		// with the NVLink3 preset) plus the serialization of a whole
		// uncoalesced reply burst through a ~0.52 flits/cycle link, and the
		// slot must also absorb the sender's flood drain, so both terms are
		// far larger than on-die.
		return uint64(2000 + 2000*iterations)
	default:
		// Per-iteration budget: ~288 cycles of shared-channel drain for
		// the sender's flood plus the probe round trip, and a fixed term
		// covering the reply tail and the per-slot scheduling jitter.
		return uint64(160 + 360*iterations)
	}
}

func nextPow2(v uint64) uint64 {
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}

func defaultThreshold(k Kind) float64 {
	switch k {
	case GPCChannel:
		return 260
	case NVLinkChannel:
		return 500
	default:
		return 250
	}
}
