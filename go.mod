module gpunoc

go 1.22
