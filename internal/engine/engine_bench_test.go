package engine

import (
	"testing"

	"gpunoc/internal/config"
)

// BenchmarkEngineTick measures the per-cycle cost of the engine on the full
// Volta topology (80 SMs, 48 slices) in the two regimes the activity
// scheduler targets: a completely idle device, and a sparse workload keeping
// 2 of 80 SMs busy. Exhaustive ticking pays the full component walk in both;
// the activity scheduler fast-forwards the former and ticks only the live
// path in the latter.
func BenchmarkEngineTick(b *testing.B) {
	mk := func(b *testing.B) *GPU {
		cfg := config.Volta()
		cfg.WarpIssueJitter = 0
		cfg.L2ServiceJitter = 0
		g, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return g
	}

	b.Run("idle", func(b *testing.B) {
		g := mk(b)
		b.ResetTimer()
		g.RunFor(uint64(b.N))
	})

	b.Run("sparse-2sm", func(b *testing.B) {
		g := mk(b)
		preloadStreamers(g, 2)
		spec, _ := streamerKernel("bench", 2, 1, 1<<30, true, false, g.Config().L2LineBytes)
		if _, err := g.Launch(spec); err != nil {
			b.Fatal(err)
		}
		g.RunFor(10_000) // past dispatch jitter and into steady state
		b.ResetTimer()
		g.RunFor(uint64(b.N))
	})
}
