// Checkpoint support for the fabric. Snapshots are canonical across engine
// worker counts: a sharded fabric first flushes its crossbar-boundary
// outboxes into the destination links — replaying exactly the enqueues the
// next phase would have performed, with the original cycle stamps, so this
// is a legal state transition, not a perturbation — and then encodes the
// sequential shape (link queues + activity bits). Restore routes the bits
// back into whichever active-set layout the restoring engine runs, which is
// sound because the sharded engine is state-identical to the sequential one
// at every worker count (docs/DETERMINISM.md).
package noc

import (
	"gpunoc/internal/link"
	"gpunoc/internal/sched"
	"gpunoc/internal/snap"
)

// Snapshot appends the fabric's mutable state — every link of the five tick
// groups plus the canonical activity bit of each — to the encoder.
func (n *Network) Snapshot(e *snap.Encoder) {
	if n.shard != nil {
		n.flushShardBoxes()
	}
	e.Mark("noc")
	for _, group := range [][]*link.Link{n.reqTPC, n.reqGPC, n.xbarIn, n.repGPC, n.repTPC} {
		e.Int(len(group))
		for _, l := range group {
			l.Snapshot(e)
		}
	}
	for t, l := range n.reqTPC {
		e.Bool(activeBit(n.actReqTPC, n.shardSetReqTPC(t), t, l))
	}
	for g, l := range n.reqGPC {
		e.Bool(activeBit(n.actReqGPC, n.shardSetGPC(n.shard, g, true), g, l))
	}
	for s, l := range n.xbarIn {
		e.Bool(activeBit(n.actXbar, n.shardSetXbar(s), s, l))
	}
	for g, l := range n.repGPC {
		e.Bool(activeBit(n.actRepGPC, n.shardSetGPC(n.shard, g, false), g, l))
	}
	for t, l := range n.repTPC {
		e.Bool(activeBit(n.actRepTPC, n.shardSetRepTPC(t), t, l))
	}
}

// Restore reads state written by Snapshot into a fabric built from the same
// configuration.
func (n *Network) Restore(d *snap.Decoder) error {
	d.Expect("noc")
	for _, group := range [][]*link.Link{n.reqTPC, n.reqGPC, n.xbarIn, n.repGPC, n.repTPC} {
		if c := d.Int(); d.Err() == nil && c != len(group) {
			return snap.Corruptf("snapshot holds %d links in a fabric group of %d", c, len(group))
		}
		for _, l := range group {
			if err := l.Restore(d); err != nil {
				return err
			}
		}
	}
	for t := range n.reqTPC {
		if d.Bool() {
			wakeBit(n.actReqTPC, n.shardSetReqTPC(t), t)
		}
	}
	for g := range n.reqGPC {
		if d.Bool() {
			wakeBit(n.actReqGPC, n.shardSetGPC(n.shard, g, true), g)
		}
	}
	for s := range n.xbarIn {
		if d.Bool() {
			wakeBit(n.actXbar, n.shardSetXbar(s), s)
		}
	}
	for g := range n.repGPC {
		if d.Bool() {
			wakeBit(n.actRepGPC, n.shardSetGPC(n.shard, g, false), g)
		}
	}
	for t := range n.repTPC {
		if d.Bool() {
			wakeBit(n.actRepTPC, n.shardSetRepTPC(t), t)
		}
	}
	return d.Err()
}

// flushShardBoxes replays the pending cross-shard hand-offs into their
// destination links: request boxes in the TickXbarShard drain order
// (ascending destination group, ascending source GPC), reply boxes in the
// DrainReplies order (ascending GPC, ascending source group). Both are the
// orders the next phases would have used, with the recorded cycle stamps,
// so the flushed fabric is exactly the sequential engine's shape and the
// snapshotted engine may simply keep running afterwards.
func (n *Network) flushShardBoxes() {
	sh := n.shard
	for m := 0; m < sh.numGroups; m++ {
		for g := range sh.xbox {
			box := sh.xbox[g][m]
			for _, x := range box {
				n.xbarIn[x.dst].Enqueue(x.now, x.src, x.p)
			}
			sh.xbox[g][m] = box[:0]
		}
	}
	for g := 0; g < len(sh.actReqGPC); g++ {
		n.DrainReplies(g)
	}
}

// shardSetReqTPC returns the sharded active set owning request-TPC link t,
// or nil outside sharded mode.
func (n *Network) shardSetReqTPC(t int) *sched.ActiveSet {
	if n.shard == nil {
		return nil
	}
	return n.shard.actReqTPC[n.cfg.GPCOfTPC(t)]
}

// shardSetRepTPC returns the sharded active set owning reply-TPC link t.
func (n *Network) shardSetRepTPC(t int) *sched.ActiveSet {
	if n.shard == nil {
		return nil
	}
	return n.shard.actRepTPC[n.cfg.GPCOfTPC(t)]
}

// shardSetGPC returns the sharded active set owning GPC g's request (req
// true) or reply channel.
func (n *Network) shardSetGPC(sh *shardState, g int, req bool) *sched.ActiveSet {
	if sh == nil {
		return nil
	}
	if req {
		return sh.actReqGPC[g]
	}
	return sh.actRepGPC[g]
}

// shardSetXbar returns the sharded active set owning crossbar port s.
func (n *Network) shardSetXbar(s int) *sched.ActiveSet {
	if n.shard == nil {
		return nil
	}
	return n.shard.actXbar[s/n.shard.slicesPerMC]
}

// activeBit reads link i's activity from whichever layout is live; in
// exhaustive mode (no sets) it derives the bit from Idle, which is exact
// for simulation state (parking is only legal when ticking is a no-op).
func activeBit(global, shard *sched.ActiveSet, i int, l *link.Link) bool {
	switch {
	case shard != nil:
		return shard.Active(i)
	case global != nil:
		return global.Active(i)
	default:
		return !l.Idle()
	}
}

// wakeBit routes a restored activity bit into whichever layout is live.
func wakeBit(global, shard *sched.ActiveSet, i int) {
	switch {
	case shard != nil:
		shard.Wake(i)
	case global != nil:
		global.Wake(i)
	}
}
