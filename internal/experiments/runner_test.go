package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"gpunoc/internal/config"
)

// fakeRegistry builds a registry of n lightweight experiments whose Run
// functions call body (used to exercise the Runner without the simulator).
func fakeRegistry(n int, body func(id string, cfg *config.Config, opt Options) (*Figure, error)) *Registry {
	r := NewRegistry()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("exp%02d", i)
		r.MustRegister(Experiment{
			ID: id, Order: i, Title: "fake", Section: "test",
			Run: func(cfg *config.Config, opt Options) (*Figure, error) {
				return body(id, cfg, opt)
			},
		})
	}
	return r
}

func TestRegistryRejectsBadEntries(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Experiment{ID: "", Run: func(*config.Config, Options) (*Figure, error) { return nil, nil }}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := r.Register(Experiment{ID: "x"}); err == nil {
		t.Error("nil Run accepted")
	}
	ok := Experiment{ID: "x", Run: func(*config.Config, Options) (*Figure, error) { return nil, nil }}
	if err := r.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(ok); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestRegistryOrderIsStable(t *testing.T) {
	r := NewRegistry()
	run := func(*config.Config, Options) (*Figure, error) { return &Figure{}, nil }
	r.MustRegister(Experiment{ID: "b", Order: 2, Run: run})
	r.MustRegister(Experiment{ID: "c", Order: 1, Run: run})
	r.MustRegister(Experiment{ID: "a", Order: 2, Run: run})
	got := r.IDs()
	want := []string{"c", "a", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", got, want)
		}
	}
}

// TestDefaultRegistryCoversAllArtifacts pins the registered id set: every
// paper artifact the old hand-maintained ccbench table ran must be present.
func TestDefaultRegistryCoversAllArtifacts(t *testing.T) {
	want := []string{
		"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig8", "fig9",
		"fig10", "fig11", "fig13", "fig14", "fig15", "srr-defeat",
		"srr-tradeoff", "mps", "nvlink-remote-vs-local", "nvlink-channel",
		"noise", "ablation-warps", "ablation-slot",
		"ablation-speedup", "clock-fuzz", "side-channel", "table2",
		"noise-sweep", "coded-vs-uncoded", "detect-latency", "detector-roc",
	}
	got := defaultRegistry.IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments (%v), want %d", len(got), got, len(want))
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("missing experiment %q", id)
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	if a, b := DeriveSeed(5, "fig2"), DeriveSeed(5, "fig2"); a != b {
		t.Errorf("not stable: %d vs %d", a, b)
	}
	if DeriveSeed(5, "fig2") == DeriveSeed(5, "fig3") {
		t.Error("same seed for different ids")
	}
	if DeriveSeed(5, "fig2") == DeriveSeed(6, "fig2") {
		t.Error("same seed for different suite seeds")
	}
	seen := map[int64]string{}
	for _, id := range defaultRegistry.IDs() {
		s := DeriveSeed(5, id)
		if s <= 0 {
			t.Errorf("DeriveSeed(5, %q) = %d, want positive", id, s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("seed collision between %q and %q", prev, id)
		}
		seen[s] = id
	}
}

func TestRunnerUnknownID(t *testing.T) {
	r := Runner{Options: quickOpts()}
	cfg := smallCfg()
	if _, err := r.Run(&cfg, []string{"fig999"}); err == nil ||
		!strings.Contains(err.Error(), "fig999") {
		t.Fatalf("err = %v, want unknown-experiment error naming fig999", err)
	}
}

// TestRunnerResultsInRegistryOrder checks that results come back in registry
// order even when completion order is scrambled by a worker pool, and that
// ids passed out of order are normalized.
func TestRunnerResultsInRegistryOrder(t *testing.T) {
	reg := fakeRegistry(16, func(id string, cfg *config.Config, opt Options) (*Figure, error) {
		return &Figure{ID: id}, nil
	})
	r := Runner{Registry: reg, Parallel: 8, Options: quickOpts()}
	cfg := smallCfg()
	results, err := r.Run(&cfg, []string{"exp07", "exp03", "exp11"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"exp03", "exp07", "exp11"}
	for i, res := range results {
		if res.Experiment.ID != want[i] {
			t.Errorf("result %d = %s, want %s", i, res.Experiment.ID, want[i])
		}
		if res.Figure == nil || res.Figure.ID != want[i] {
			t.Errorf("result %d figure mismatch", i)
		}
	}
}

// TestRunnerBoundsConcurrency verifies the worker pool never exceeds
// Parallel concurrent experiments.
func TestRunnerBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	var mu sync.Mutex
	gate := sync.NewCond(&mu)
	running := 0
	reg := fakeRegistry(12, func(id string, cfg *config.Config, opt Options) (*Figure, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		// Rendezvous: wait until 3 experiments are in flight at once so
		// the test actually observes the pool width.
		mu.Lock()
		running++
		gate.Broadcast()
		for running < 3 {
			gate.Wait()
		}
		mu.Unlock()
		cur.Add(-1)
		return &Figure{ID: id}, nil
	})
	r := Runner{Registry: reg, Parallel: 3, Options: quickOpts()}
	cfg := smallCfg()
	if _, err := r.Run(&cfg, nil); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p != 3 {
		t.Errorf("peak concurrency = %d, want 3", p)
	}
}

// TestRunnerSeedAndConfigIsolation verifies each experiment sees its own
// derived seed in both Options and Config, and that the caller's Config is
// never mutated.
func TestRunnerSeedAndConfigIsolation(t *testing.T) {
	var mu sync.Mutex
	seeds := map[string][2]int64{}
	reg := fakeRegistry(6, func(id string, cfg *config.Config, opt Options) (*Figure, error) {
		mu.Lock()
		seeds[id] = [2]int64{cfg.Seed, opt.Seed}
		mu.Unlock()
		return &Figure{ID: id}, nil
	})
	r := Runner{Registry: reg, Parallel: 4, Options: Options{Scale: Quick, Seed: 5}}
	cfg := smallCfg()
	cfg.Seed = 42
	if _, err := r.Run(&cfg, nil); err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 42 || cfg.Meter != nil {
		t.Errorf("caller config mutated: seed=%d meter=%v", cfg.Seed, cfg.Meter)
	}
	for id, s := range seeds {
		want := DeriveSeed(5, id)
		if s[0] != want || s[1] != want {
			t.Errorf("%s ran with cfg.Seed=%d opt.Seed=%d, want %d", id, s[0], s[1], want)
		}
	}
}

func TestRunnerCheckMode(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Experiment{
		ID: "good", Order: 1,
		Run:   func(*config.Config, Options) (*Figure, error) { return &Figure{ID: "good"}, nil },
		Check: func(*config.Config, *Figure) error { return nil },
	})
	reg.MustRegister(Experiment{
		ID: "bad", Order: 2,
		Run:   func(*config.Config, Options) (*Figure, error) { return &Figure{ID: "bad"}, nil },
		Check: func(*config.Config, *Figure) error { return errors.New("shape violated") },
	})
	cfg := smallCfg()
	r := Runner{Registry: reg, Options: quickOpts()}
	results, err := r.Run(&cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[1].Err != nil {
		t.Errorf("checks ran without Check mode: %v %v", results[0].Err, results[1].Err)
	}
	r.Check = true
	results, err = r.Run(&cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Errorf("good: %v", results[0].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "shape violated") {
		t.Errorf("bad: err = %v, want check failure", results[1].Err)
	}
}

// TestRunnerCollectsCycles runs one real experiment and verifies simulated
// cycles are attributed, and that table1 (which builds no engine) reports 0.
func TestRunnerCollectsCycles(t *testing.T) {
	cfg := smallCfg()
	r := Runner{Parallel: 2, Options: quickOpts()}
	results, err := r.Run(&cfg, []string{"table1", "fig2"})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Experiment.ID != "table1" || results[0].Cycles != 0 {
		t.Errorf("table1 cycles = %d, want 0", results[0].Cycles)
	}
	if results[1].Experiment.ID != "fig2" || results[1].Cycles == 0 {
		t.Error("fig2 reported no simulated cycles")
	}
	if results[1].Err != nil {
		t.Fatal(results[1].Err)
	}
}

func TestReportAndSummary(t *testing.T) {
	results := []Result{
		{Experiment: Experiment{ID: "a"}, Figure: &Figure{ID: "a", Title: "t"}},
		{Experiment: Experiment{ID: "b"}, Err: errors.New("boom")},
	}
	rep := Report(results)
	if !strings.Contains(rep, "== a: t ==") || !strings.Contains(rep, "FAILED b: boom") {
		t.Errorf("report:\n%s", rep)
	}
	sum := Summary(results)
	if !strings.Contains(sum, "2 experiments, 1 failed") {
		t.Errorf("summary:\n%s", sum)
	}
}

// TestSuiteDeterministicAcrossParallelism is the determinism regression the
// concurrent runner ships with: the full registered suite at suite seed 5
// renders a byte-identical report with 1 worker and with 8, and every
// experiment simulates exactly the same number of engine cycles.
func TestSuiteDeterministicAcrossParallelism(t *testing.T) {
	cfg := smallCfg()
	opts := Options{Scale: Quick, Seed: 5}

	seq := Runner{Parallel: 1, Options: opts}
	r1, err := seq.Run(&cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	par := Runner{Parallel: 8, Options: opts}
	r8, err := par.Run(&cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, res := range r1 {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Experiment.ID, res.Err)
		}
	}
	rep1, rep8 := Report(r1), Report(r8)
	if rep1 != rep8 {
		t.Fatalf("reports differ between -parallel 1 and -parallel 8:\n%s",
			firstDiff(rep1, rep8))
	}
	for i := range r1 {
		if r1[i].Cycles != r8[i].Cycles {
			t.Errorf("%s: %d cycles sequential vs %d parallel",
				r1[i].Experiment.ID, r1[i].Cycles, r8[i].Cycles)
		}
	}
}

// firstDiff returns a short context window around the first byte where a
// and b diverge, for readable failure output.
func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo, hiA, hiB := i-80, i+80, i+80
			if lo < 0 {
				lo = 0
			}
			if hiA > len(a) {
				hiA = len(a)
			}
			if hiB > len(b) {
				hiB = len(b)
			}
			return fmt.Sprintf("at byte %d:\n  seq: %q\n  par: %q", i, a[lo:hiA], b[lo:hiB])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}
